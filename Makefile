# Tier-1 gate (see DESIGN.md §7): vet + build + race-clean tests + a
# one-shot smoke run of the parallelism sweeps. fuzz-smoke runs the fuzz
# targets briefly (CI runs it as a separate job).
.PHONY: check vet build test bench-smoke bench fuzz-smoke \
	lint cover bench-json bench-json-batch bench-json-fieldsweep \
	bench-update profile-batch tidy-check wire-regen \
	fleet-smoke fleet-soak-json fleet-update

check: vet build test bench-smoke

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench-smoke:
	go test -run='^$$' -bench=Parallelism -benchtime=1x ./...

bench:
	go test -run='^$$' -bench=. -benchmem ./...

fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzConnRecv -fuzztime=10s ./internal/transport
	go test -run='^$$' -fuzz=FuzzBinaryFrameRecv -fuzztime=10s ./internal/transport
	go test -run='^$$' -fuzz=FuzzWireMsgs -fuzztime=10s ./internal/transport
	go test -run='^$$' -fuzz=FuzzOTWire -fuzztime=10s ./internal/ot
	go test -run='^$$' -fuzz=FuzzOMPEWire -fuzztime=10s ./internal/ompe
	go test -run='^$$' -fuzz=FuzzFromBytes -fuzztime=10s ./internal/field
	go test -run='^$$' -fuzz=FuzzLimbVsBig -fuzztime=10s ./internal/field/limb

# wire-regen rewrites the golden wire transcripts under
# internal/transport/testdata/wire — a committed wire-format contract, so
# regeneration is deliberate: the target refuses to run unless
# PPDC_WIRE_REGEN=1 is set explicitly on the command line.
wire-regen:
ifndef PPDC_WIRE_REGEN
	$(error golden transcripts are a wire-format contract; run `PPDC_WIRE_REGEN=1 make wire-regen` to regenerate deliberately)
endif
	PPDC_WIRE_REGEN=1 go test ./internal/transport -run TestGoldenWire -count=1

# lint runs golangci-lint (config in .golangci.yml). CI installs it via
# the official action; locally it needs the binary on PATH.
lint:
	golangci-lint run ./...

# cover writes the profile plus an HTML report and prints the total.
cover:
	go test -coverprofile=coverage.out -covermode=atomic ./...
	go tool cover -html=coverage.out -o coverage.html
	go tool cover -func=coverage.out | tail -1

# bench-json emits the schema-stable BENCH_*.json document on the pinned
# workload the CI regression gate compares against bench_baseline.json.
# It stays on the legacy engines (math/big field, MODP base OT) so the
# regression gate keeps covering that path now that batched serving runs
# on the fast pair. Flag changes here must be mirrored into a regenerated
# baseline.
bench-json:
	go run ./cmd/ppdc-bench -group 512 -parallelism 1 -queries 16 -json bench

# bench-json-batch emits the batched fast-session workload document on the
# pinned config: the fast engine pair (limb field backend, x25519 base OT,
# fixed-key AES OT pads), batch=64, inflight=2. queries=8192 so the
# post-handshake wall is long enough to measure steady-state throughput (at
# these speeds a 128-query run finishes in ~10ms and even a ~100ms wall
# swings tens of percent run to run on shared hosts; ~400ms of steady
# state keeps the number inside a few percent). CI compares it against the
# committed BENCH_classify_batch.json with the same 20% gate.
bench-json-batch:
	go run ./cmd/ppdc-bench -group x25519 -field-backend limb -pad aes -parallelism 1 \
		-queries 8192 -batch 64 -inflight 2 \
		-json -out BENCH_classify_batch.current.json bench

# bench-json-fieldsweep emits the field-backend × OT-group comparison table
# (BENCH_field_backends.json): the batched workload across
# {big,limb} × {modp512-test,x25519} plus the limb+x25519 speedups.
bench-json-fieldsweep:
	go run ./cmd/ppdc-bench -parallelism 1 -queries 1024 -batch 64 -inflight 2 \
		-json -out BENCH_field_backends.current.json fieldsweep

# profile-batch runs the pinned batched workload under the CPU and heap
# profilers and leaves batch.cpu.pprof / batch.mem.pprof behind for
# `go tool pprof`. Same flags as bench-json-batch so the hot paths match
# what the regression gate measures.
profile-batch:
	go run ./cmd/ppdc-bench -group x25519 -field-backend limb -pad aes -parallelism 1 \
		-queries 8192 -batch 64 -inflight 2 \
		-cpuprofile batch.cpu.pprof -memprofile batch.mem.pprof \
		-json -out BENCH_classify_batch.profile.json bench

# bench-update regenerates the committed baselines in place with the
# exact pinned flags (deterministic workload; wall times reflect the
# machine it runs on). Run it when a change legitimately moves protocol
# cost, then commit the refreshed documents.
bench-update:
	go run ./cmd/ppdc-bench -group 512 -parallelism 1 -queries 16 -json -out bench_baseline.json bench
	go run ./cmd/ppdc-bench -group x25519 -field-backend limb -pad aes -parallelism 1 \
		-queries 8192 -batch 64 -inflight 2 \
		-json -out BENCH_classify_batch.json bench
	go run ./cmd/ppdc-bench -parallelism 1 -queries 1024 -batch 64 -inflight 2 \
		-json -out BENCH_field_backends.json fieldsweep

# fleet-smoke exercises the fleet serving stack end to end: the
# experiments-level soak tests (mem + tcp transports) plus two small
# real-socket soaks through ppdc-loadgen — 3 replicas behind a gateway,
# pipelined clients, every hop a loopback TCP connection; the second run
# redials with session resumption so the ticket path sees real sockets.
fleet-smoke:
	go test ./internal/experiments -run TestBenchFleet -count=1
	go run ./cmd/ppdc-loadgen -replicas 3 -clients 24 -queries 4 -transport tcp soak
	go run ./cmd/ppdc-loadgen -replicas 3 -clients 24 -queries 4 -transport tcp \
		-field-backend limb -group x25519 -pad aes -resume -sessions 2 soak

# fleet-soak-json emits the fleet soak document on the pinned CI config:
# the fast engine (limb field backend, x25519 base OT, AES pads,
# parallelism 1), 3 replicas, 200 concurrent pipelined clients over
# loopback TCP, each running 3 sessions with resumption so the measured
# phase covers the resumed-handshake redial path. CI compares it against
# the committed full-handshake bench_fleet_baseline.json (same shape,
# resume off) with the 20% throughput gate plus the >=3x resume_speedup
# gate; flag changes here must be mirrored into a regenerated baseline.
fleet-soak-json:
	go run ./cmd/ppdc-loadgen -replicas 3 -clients 200 -queries 8 \
		-batch 4 -inflight 2 -transport tcp \
		-field-backend limb -group x25519 -pad aes -parallelism 1 \
		-sessions 3 -resume \
		-json -out BENCH_fleet.current.json soak

# fleet-update regenerates both committed fleet documents in place: the
# CI baseline (TCP, 200 clients, full handshake on every redial — the
# reference the resumed soak is gated against) and the showcase soak
# (in-process mem transport, 10k concurrent pipelined clients with
# resumption — fd-free, so the only limits are memory and CPU). Both run
# the fast engine; wall numbers reflect the machine they run on.
fleet-update:
	go run ./cmd/ppdc-loadgen -replicas 3 -clients 200 -queries 8 \
		-batch 4 -inflight 2 -transport tcp \
		-field-backend limb -group x25519 -pad aes -parallelism 1 \
		-sessions 3 \
		-json -out bench_fleet_baseline.json soak
	go run ./cmd/ppdc-loadgen -replicas 3 -clients 10000 -queries 8 \
		-batch 4 -inflight 2 -transport mem \
		-field-backend limb -group x25519 -pad aes -parallelism 1 \
		-sessions 3 -resume \
		-json -out BENCH_fleet.json soak

tidy-check:
	go mod tidy -diff
