# Tier-1 gate (see DESIGN.md §7): vet + build + race-clean tests + a
# one-shot smoke run of the parallelism sweeps. fuzz-smoke runs the fuzz
# targets briefly (CI runs it as a separate job).
.PHONY: check vet build test bench-smoke bench fuzz-smoke

check: vet build test bench-smoke

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench-smoke:
	go test -run='^$$' -bench=Parallelism -benchtime=1x ./...

bench:
	go test -run='^$$' -bench=. -benchmem ./...

fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzConnRecv -fuzztime=10s ./internal/transport
	go test -run='^$$' -fuzz=FuzzFromBytes -fuzztime=10s ./internal/field
