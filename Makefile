# Tier-1 gate (see DESIGN.md §7): vet + build + race-clean tests + a
# one-shot smoke run of the parallelism sweeps.
.PHONY: check vet build test bench-smoke bench

check: vet build test bench-smoke

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench-smoke:
	go test -run='^$$' -bench=Parallelism -benchtime=1x ./...

bench:
	go test -run='^$$' -bench=. -benchmem ./...
