// Command ppdc-gateway fronts a fleet of ppdc-trainer replicas: it
// accepts client connections, routes each session to the least-loaded
// healthy replica, and splices bytes for the session's lifetime. Clients
// speak the ordinary protocol to the gateway address; the gateway adds
// failover (a dead replica is skipped and probed back in when it
// recovers) and load shedding (sessions beyond -max-sessions are
// answered with a typed fleet-busy error).
//
// Usage:
//
//	ppdc-gateway -replicas host1:7707,host2:7707,host3:7707 \
//	             [-addr :7700] [-max-sessions 0] [-health-interval 500ms] \
//	             [-dial-timeout 2s] [-drain-timeout 30s] \
//	             [-metrics-addr 127.0.0.1:7701]
//
// On SIGINT/SIGTERM the gateway drains: it stops accepting, lets spliced
// sessions run to completion for up to -drain-timeout, then force-closes
// the rest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppdc-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppdc-gateway", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":7700", "listen address for client sessions")
		replicas       = fs.String("replicas", "", "comma-separated trainer replica addresses (required)")
		maxSessions    = fs.Int("max-sessions", 0, "max concurrent spliced sessions (0 = unlimited); extra clients are shed with a fleet-busy error")
		healthInterval = fs.Duration("health-interval", 500*time.Millisecond, "pause between replica health-probe sweeps")
		dialTimeout    = fs.Duration("dial-timeout", 2*time.Second, "per-replica dial budget before failing the session over")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")
		metricsAddr    = fs.String("metrics-addr", "", "serve plain-text /metrics and /debug/pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var replicaAddrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			replicaAddrs = append(replicaAddrs, a)
		}
	}
	if len(replicaAddrs) == 0 {
		return errors.New("-replicas is required (comma-separated trainer addresses)")
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		maddr, srv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		msrv = srv
		defer func() { _ = msrv.Close() }()
		log.Printf("metrics and pprof on http://%s/metrics", maddr)
	}

	gw, err := gateway.New(replicaAddrs, gateway.Options{
		MaxSessions:    *maxSessions,
		HealthInterval: *healthInterval,
		DialTimeout:    *dialTimeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("gateway on %s fronting %d replica(s): %s", ln.Addr(), len(replicaAddrs), strings.Join(replicaAddrs, ", "))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	var draining atomic.Bool
	drained := make(chan error, 1)
	go func() {
		sig, ok := <-sigCh
		if !ok {
			return
		}
		log.Printf("%v: draining sessions for up to %v", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		draining.Store(true)
		drainErr := gw.Shutdown(ctx)
		if msrv != nil {
			if err := msrv.Shutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}
		drained <- drainErr
	}()
	err = gw.Serve(ln)
	if draining.Load() {
		if shutdownErr := <-drained; shutdownErr != nil && !errors.Is(shutdownErr, net.ErrClosed) {
			return fmt.Errorf("drain: %w", shutdownErr)
		}
		stats := gw.Stats()
		log.Printf("drained; routed=%d shed=%d failovers=%d; bye", stats.Routed, stats.Shed, stats.Failovers)
		return nil
	}
	return err
}
