// Command ppdc-loadgen soaks a local classification fleet: it spins up N
// trainer replicas behind a gateway inside its own process, drives
// thousands of concurrent pipelined client sessions through the gateway,
// and reports fleet throughput, per-batch latency quantiles, and the
// gateway's routing ledger as a schema-stable BENCH_fleet.json document.
//
// Usage:
//
//	ppdc-loadgen [flags] soak      # run the fleet soak
//	ppdc-loadgen [flags] compare   # gate a soak against a committed baseline
//
// The default -transport mem runs the whole fleet over in-process pipes,
// so client counts are bounded by memory and CPU rather than file
// descriptors — this is how the committed 10k-client BENCH_fleet.json is
// produced on one machine. -transport tcp puts every hop on a loopback
// socket (~4 fds per client session); CI soaks a few hundred clients
// that way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppdc-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppdc-loadgen", flag.ContinueOnError)
	var (
		seed      = fs.Uint64("seed", 1, "deterministic data seed")
		group     = fs.String("group", "512", "OT group: 512 (toy/fast), 1024, 1536, 2048, x25519")
		backend   = fs.String("field-backend", "", "field arithmetic engine: big (default) or limb")
		codec     = fs.String("codec", "", "envelope codec: empty negotiates (binary preferred), gob or binary pin one")
		par       = fs.Int("parallelism", 0, "worker pool bound per endpoint (0 = all cores, 1 = serial)")
		replicas  = fs.Int("replicas", 3, "trainer replicas behind the gateway")
		clients   = fs.Int("clients", 200, "concurrent client sessions held through the measured phase")
		queries   = fs.Int("queries", 8, "measured queries per client")
		batch     = fs.Int("batch", 4, "samples per pipelined batch")
		inflight  = fs.Int("inflight", 2, "batches each client keeps on the wire")
		trans     = fs.String("transport", experiments.FleetTransportMem, "fleet transport: mem (in-process pipes, fd-free) or tcp (loopback sockets)")
		handshake = fs.Int("handshake-concurrency", 128, "concurrent session handshakes during the connect phase")
		padName   = fs.String("pad", "", "OT pad function clients offer: empty or sha256 (legacy), aes (fixed-key AES)")
		sessions  = fs.Int("sessions", 1, "sessions per client in the measured phase (>1 exercises the redial path)")
		resume    = fs.Bool("resume", false, "offer session resumption: redials present the previous session's ticket and skip the base OTs")
		jsonOut   = fs.Bool("json", false, "soak: emit the machine-readable BENCH_fleet.json document")
		outPath   = fs.String("out", "", "soak: write the JSON document here instead of BENCH_fleet.json")
		basePath  = fs.String("baseline", "bench_fleet_baseline.json", "compare: committed baseline document")
		curPath   = fs.String("current", "", "compare: freshly produced BENCH_fleet.json document")
		maxReg    = fs.Float64("max-regress", 0.20, "compare: maximum tolerated throughput regression (fraction)")
		minSpeed  = fs.Float64("min-resume-speedup", 0, "compare: minimum required resume_speedup in the current document (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need one subcommand: soak or compare")
	}
	switch fs.Arg(0) {
	case "soak":
	case "compare":
		return runCompare(*basePath, *curPath, *maxReg, *minSpeed)
	default:
		return fmt.Errorf("unknown subcommand %q (want soak or compare)", fs.Arg(0))
	}

	g, err := ot.GroupByName(*group)
	if err != nil {
		return err
	}
	fb, err := field.ResolveBackend(*backend)
	if err != nil {
		return err
	}
	wc, err := transport.ResolveWireCodec(*codec)
	if err != nil {
		return err
	}
	pad, err := ot.ResolvePad(*padName)
	if err != nil {
		return err
	}
	opts := experiments.Options{
		Seed:         *seed,
		Group:        g,
		Parallelism:  *par,
		FieldBackend: fb,
		WireCodec:    wc,
		PadFunc:      pad,
	}
	params := experiments.FleetParams{
		Replicas:             *replicas,
		Clients:              *clients,
		QueriesPerClient:     *queries,
		BatchSize:            *batch,
		Inflight:             *inflight,
		Transport:            *trans,
		HandshakeConcurrency: *handshake,
		SessionsPerClient:    *sessions,
		Resume:               *resume,
	}

	fmt.Fprintf(os.Stderr, "soaking %d replica(s) with %d clients x %d queries (batch %d, inflight %d, %s transport)...\n",
		params.Replicas, params.Clients, params.QueriesPerClient, params.BatchSize, params.Inflight, params.Transport)
	start := time.Now()
	doc, err := experiments.BenchFleet(opts, params)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "soak done in %v (measured phase %v)\n", time.Since(start).Round(time.Millisecond), time.Duration(doc.WallNS).Round(time.Millisecond))

	if *jsonOut {
		path := *outPath
		if path == "" {
			path = "BENCH_fleet.json"
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	fmt.Printf("fleet_soak: %d queries in %v = %.1f qps | batch p50 %v p99 %v | routed %d shed %d failovers %d retries %d\n",
		doc.Queries, time.Duration(doc.WallNS).Round(time.Millisecond), doc.ThroughputQPS,
		time.Duration(doc.BatchP50NS).Round(time.Microsecond), time.Duration(doc.BatchP99NS).Round(time.Microsecond),
		doc.Routed, doc.Shed, doc.Failovers, doc.Retries)
	fmt.Printf("  handshake full p50 %v p99 %v",
		time.Duration(doc.HandshakeFullP50NS).Round(time.Microsecond), time.Duration(doc.HandshakeFullP99NS).Round(time.Microsecond))
	if doc.SessionsResumed > 0 {
		fmt.Printf(" | resumed p50 %v p99 %v (%d resumed, %d rejected, %.1fx speedup)",
			time.Duration(doc.HandshakeResumedP50NS).Round(time.Microsecond), time.Duration(doc.HandshakeResumedP99NS).Round(time.Microsecond),
			doc.SessionsResumed, doc.ResumeRejected, doc.ResumeSpeedup)
	}
	fmt.Println()
	for i, n := range doc.ReplicaRouted {
		fmt.Printf("  replica %d: %d session(s)\n", i, n)
	}
	return nil
}

func readFleetDoc(path string) (*experiments.FleetBenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc experiments.FleetBenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func runCompare(basePath, curPath string, maxRegress, minSpeedup float64) error {
	if curPath == "" {
		return fmt.Errorf("compare: -current is required")
	}
	base, err := readFleetDoc(basePath)
	if err != nil {
		return err
	}
	cur, err := readFleetDoc(curPath)
	if err != nil {
		return err
	}
	if err := experiments.CompareFleet(base, cur, maxRegress); err != nil {
		return err
	}
	if minSpeedup > 0 {
		if cur.SessionsResumed == 0 {
			return fmt.Errorf("fleet compare: resume gate %.1fx requested but the current document resumed no sessions", minSpeedup)
		}
		if cur.ResumeSpeedup < minSpeedup {
			return fmt.Errorf("fleet compare: resume_speedup %.2fx below the %.1fx gate (full p50 %v, resumed p50 %v)",
				cur.ResumeSpeedup, minSpeedup,
				time.Duration(cur.HandshakeFullP50NS).Round(time.Microsecond),
				time.Duration(cur.HandshakeResumedP50NS).Round(time.Microsecond))
		}
	}
	fmt.Printf("fleet compare: ok (%.1f qps baseline -> %.1f qps current, gate %.0f%%",
		base.ThroughputQPS, cur.ThroughputQPS, 100*maxRegress)
	if minSpeedup > 0 {
		fmt.Printf("; resume %.2fx >= %.1fx", cur.ResumeSpeedup, minSpeedup)
	}
	fmt.Println(")")
	return nil
}
