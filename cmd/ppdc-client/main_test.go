package main

import "testing"

func TestParseSample(t *testing.T) {
	got, err := parseSample("0.5, -1, 0.25", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.5 || got[1] != -1 || got[2] != 0.25 {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseSample("1,2", 3); err == nil {
		t.Fatal("wrong arity should fail")
	}
	if _, err := parseSample("1,x,3", 3); err == nil {
		t.Fatal("non-numeric should fail")
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing mode should fail")
	}
}
