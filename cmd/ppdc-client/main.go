// Command ppdc-client runs privacy-preserving protocols against a remote
// ppdc-trainer:
//
//	ppdc-client classify -addr host:7707 -sample "0.1,-0.3,..."
//	ppdc-client classify -addr host:7707 -dataset diabetes -n 20
//	ppdc-client classify -addr host:7707 -fast -batch 64 -inflight 4 -n 256
//	ppdc-client similarity -addr host:7707 -dataset diabetes -seed 2
//
// In classify mode the client's samples never leave the process in the
// clear; in similarity mode the client trains its own linear model and
// learns only the triangle metric T.
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/svm"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppdc-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: ppdc-client <classify|similarity> [flags]")
	}
	mode := args[0]
	fs := flag.NewFlagSet("ppdc-client "+mode, flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7707", "trainer address")
		sample   = fs.String("sample", "", "comma-separated sample to classify")
		dsName   = fs.String("dataset", "diabetes", "synthetic dataset for test samples / own model")
		n        = fs.Int("n", 5, "number of test samples to classify")
		seed     = fs.Uint64("seed", 2, "synthetic data seed (client side)")
		fast     = fs.Bool("fast", false, "use the IKNP fast session (one base phase, then no public-key ops per query)")
		redial   = fs.Int("redial", 0, "with -fast: redial up to this many times when the session dies mid-query (against a ppdc-gateway fleet, a fresh session fails over to a surviving replica)")
		resume   = fs.Bool("resume", false, "with -fast: offer session resumption — harvest the trainer's ticket at clean close, and (with -redial) present it on the next dial to skip the base OTs")
		backend  = fs.String("field-backend", "", "field engine to request: limb (default) or big; the session falls back to big unless the trainer supports limb")
		codec    = fs.String("codec", "", "envelope codec to offer: empty negotiates (binary preferred, gob fallback), gob pins legacy envelopes, binary offers only binary")
		padName  = fs.String("pad", "", "OT pad to offer: aes offers the fixed-key AES pads (granted only when the trainer supports them); empty or sha256 stays on the legacy SHA-256 pads")
		batch    = fs.Int("batch", 0, "samples per batched request (0 = one request per sample)")
		inflight = fs.Int("inflight", 1, "batches kept in flight on the connection (with -batch and -fast)")

		timeout     = fs.Duration("timeout", transport.DefaultDialTimeout, "per-attempt dial timeout")
		retries     = fs.Int("retries", transport.DefaultMaxAttempts, "total dial attempts (exponential backoff + jitter between them)")
		msgDeadline = fs.Duration("msg-deadline", transport.DefaultMessageDeadline, "per-message deadline; 0 disables")
		metricsAddr = fs.String("metrics-addr", "", "serve plain-text /metrics and /debug/pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		maddr, msrv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		defer func() { _ = msrv.Close() }()
		fmt.Printf("metrics and pprof on http://%s/metrics\n", maddr)
	}
	if _, err := field.ResolveBackend(*backend); err != nil {
		return err
	}
	if _, err := transport.ResolveWireCodec(*codec); err != nil {
		return err
	}
	if _, err := ot.ResolvePad(*padName); err != nil {
		return err
	}
	opts := transport.Options{
		DialTimeout:     *timeout,
		MessageDeadline: *msgDeadline,
		MaxAttempts:     *retries,
		FieldBackend:    *backend,
		WireCodec:       *codec,
		PadFunc:         *padName,
		OfferResume:     *resume,
	}
	if *msgDeadline <= 0 {
		opts.MessageDeadline = transport.NoDeadline
	}
	switch mode {
	case "classify":
		if *batch < 0 {
			return fmt.Errorf("-batch must be >= 0")
		}
		if *inflight < 1 {
			return fmt.Errorf("-inflight must be >= 1")
		}
		if *inflight > 1 && (*batch == 0 || !*fast) {
			return fmt.Errorf("-inflight > 1 needs -fast and -batch > 0 (pipelining rides the fast-session stream framing)")
		}
		if *redial > 0 && !*fast {
			return fmt.Errorf("-redial needs -fast (session recovery rides the fast-session client)")
		}
		if *resume && !*fast {
			return fmt.Errorf("-resume needs -fast (tickets snapshot the fast session's OT extension state)")
		}
		return runClassify(*addr, *sample, *dsName, *n, *seed, *fast, *batch, *inflight, *redial, opts)
	case "similarity":
		return runSimilarity(*addr, *dsName, *seed, opts)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func runClassify(addr, sampleCSV, dsName string, n int, seed uint64, fast bool, batch, inflight, redial int, opts transport.Options) error {
	ctx := context.Background()
	var classifyFn func([]float64) (int, error)
	var batchFn func([][]float64) ([]int, error)
	var spec classifySpec
	if fast && redial > 0 {
		client := gateway.NewFleetClient(nil, addr, opts, rand.Reader, redial)
		defer func() { _ = client.Close() }()
		classifyFn = func(sample []float64) (int, error) {
			labels, err := client.ClassifyBatch(ctx, [][]float64{sample})
			if err != nil {
				return 0, err
			}
			return labels[0], nil
		}
		if batch > 0 {
			batchFn = func(samples [][]float64) ([]int, error) {
				return client.ClassifyPipelined(ctx, samples, batch, inflight)
			}
		}
		fmt.Printf("fleet client: sessions redial up to %d time(s) on failure\n", redial)
	} else if fast {
		client, err := transport.DialClassifyFastContext(ctx, addr, opts, rand.Reader)
		if err != nil {
			return err
		}
		defer func() { _ = client.Close() }()
		// The fast client's spec is negotiated at dial time; re-dial the
		// plain service just for display would be wasteful, so derive the
		// shape from the first query instead.
		classifyFn = client.Classify
		if batch > 0 {
			batchFn = func(samples [][]float64) ([]int, error) {
				return client.ClassifyPipelined(ctx, samples, batch, inflight)
			}
		}
		fmt.Printf("connected (fast session): base phase complete\n")
	} else {
		client, err := transport.DialClassifyContext(ctx, addr, opts, rand.Reader)
		if err != nil {
			return err
		}
		defer func() { _ = client.Close() }()
		s := client.Spec()
		spec = classifySpec{kind: s.Kernel.Kind.String(), dim: s.Dim, group: s.GroupName}
		classifyFn = client.Classify
		if batch > 0 {
			batchFn = func(samples [][]float64) ([]int, error) {
				labels := make([]int, 0, len(samples))
				for lo := 0; lo < len(samples); lo += batch {
					hi := min(lo+batch, len(samples))
					part, err := client.ClassifyBatch(samples[lo:hi])
					if err != nil {
						return nil, err
					}
					labels = append(labels, part...)
				}
				return labels, nil
			}
		}
		fmt.Printf("connected: %s kernel, %d dims, OT group %s\n", spec.kind, spec.dim, spec.group)
	}

	ds, err := dataset.SpecByName(dsName)
	if err != nil {
		return err
	}
	if sampleCSV != "" {
		s, err := parseSample(sampleCSV, ds.Dim)
		if err != nil {
			return err
		}
		label, err := classifyFn(s)
		if err != nil {
			return err
		}
		fmt.Printf("predicted class: %+d\n", label)
		return nil
	}

	if spec.dim != 0 && ds.Dim != spec.dim {
		return fmt.Errorf("dataset %s has %d dims; trainer expects %d", dsName, ds.Dim, spec.dim)
	}
	_, test, err := dataset.Generate(ds, dataset.Options{Seed: seed})
	if err != nil {
		return err
	}
	if n > test.Len() {
		n = test.Len()
	}
	correct := 0
	start := time.Now()
	if batchFn != nil {
		labels, err := batchFn(test.X[:n])
		if err != nil {
			return err
		}
		for i, label := range labels {
			if label == test.Y[i] {
				correct++
			}
			fmt.Printf("sample %2d: predicted %+d, true %+d\n", i, label, test.Y[i])
		}
	} else {
		for i := 0; i < n; i++ {
			label, err := classifyFn(test.X[i])
			if err != nil {
				return err
			}
			if label == test.Y[i] {
				correct++
			}
			fmt.Printf("sample %2d: predicted %+d, true %+d\n", i, label, test.Y[i])
		}
	}
	fmt.Printf("accuracy %d/%d in %v (%v/query)\n",
		correct, n, time.Since(start).Round(time.Millisecond),
		(time.Since(start) / time.Duration(n)).Round(time.Millisecond))
	return nil
}

func runSimilarity(addr, dsName string, seed uint64, opts transport.Options) error {
	ds, err := dataset.SpecByName(dsName)
	if err != nil {
		return err
	}
	train, _, err := dataset.Generate(ds, dataset.Options{Seed: seed})
	if err != nil {
		return err
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: ds.LinC})
	if err != nil {
		return err
	}
	w, err := model.LinearWeights()
	if err != nil {
		return err
	}
	fmt.Printf("trained own linear model on %s (%d support vectors)\n", train.Name, model.NumSupportVectors())
	start := time.Now()
	res, err := transport.DialSimilarityContext(context.Background(), addr, w, model.Bias, opts, rand.Reader)
	if err != nil {
		return err
	}
	fmt.Printf("similarity T = %.6f (10³T = %.3f) in %v\n", res.T, res.T*1000, time.Since(start).Round(time.Millisecond))
	fmt.Println("smaller T means more similar trained models")
	return nil
}

// classifySpec carries display fields of the negotiated contract.
type classifySpec struct {
	kind  string
	dim   int
	group string
}

func parseSample(csv string, dim int) ([]float64, error) {
	parts := strings.Split(csv, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("sample has %d components; trainer expects %d", len(parts), dim)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
