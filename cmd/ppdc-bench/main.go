// Command ppdc-bench regenerates every table and figure of the paper's
// evaluation section (§VI) from this repository's implementations.
//
// Usage:
//
//	ppdc-bench [flags] <experiment>
//
// where <experiment> is one of: table1, table2, fig5, fig6, fig7, fig8,
// fig9, fig10, bench, fieldsweep, compare, all.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"text/tabwriter"
	"time"

	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppdc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppdc-bench", flag.ContinueOnError)
	var (
		seed      = fs.Uint64("seed", 1, "deterministic data seed")
		group     = fs.String("group", "512", "OT group: 512 (toy/fast), 1024, 1536, 2048, x25519")
		backend   = fs.String("field-backend", "", "field arithmetic engine: big (default) or limb")
		codec     = fs.String("codec", "", "envelope codec: empty negotiates (binary preferred), gob or binary pin one")
		padName   = fs.String("pad", "", "OT pad function the client offers: empty or sha256 (legacy), aes (fixed-key AES)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
		memProf   = fs.String("memprofile", "", "write an allocation profile (after the experiment) to this file")
		quick     = fs.Bool("quick", false, "subsample protocol-heavy experiments")
		fullScale = fs.Bool("full", false, "use the paper's full test-set sizes")
		csvPath   = fs.String("csv", "", "also write the experiment's series to a CSV file (single experiments only)")
		par       = fs.Int("parallelism", 0, "worker pool bound per endpoint (0 = all cores, 1 = serial)")
		jsonOut   = fs.Bool("json", false, "bench: emit the machine-readable BENCH_<name>.json document")
		outPath   = fs.String("out", "", "bench: write the JSON document here instead of BENCH_<name>.json")
		queries   = fs.Int("queries", 8, "bench: classify round trips to measure")
		batch     = fs.Int("batch", 0, "bench: samples per batched request (0 = serial round-trip workload)")
		inflight  = fs.Int("inflight", 1, "bench: batches kept in flight on the connection (with -batch)")
		basePath  = fs.String("baseline", "bench_baseline.json", "compare: committed baseline document")
		curPath   = fs.String("current", "", "compare: freshly produced BENCH_*.json document")
		maxReg    = fs.Float64("max-regress", 0.20, "compare: maximum tolerated throughput regression (fraction)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need one experiment: table1, table2, fig5, fig6, fig7, fig8, fig8x, fig9, fig10, ablation, bench, fieldsweep, compare, all")
	}
	g, err := ot.GroupByName(*group)
	if err != nil {
		return err
	}
	fb, err := field.ResolveBackend(*backend)
	if err != nil {
		return err
	}
	wc, err := transport.ResolveWireCodec(*codec)
	if err != nil {
		return err
	}
	pad, err := ot.ResolvePad(*padName)
	if err != nil {
		return err
	}
	opts := experiments.Options{
		Seed:         *seed,
		Group:        g,
		Quick:        *quick,
		FullScale:    *fullScale,
		Parallelism:  *par,
		FieldBackend: fb,
		WireCodec:    wc,
		PadFunc:      pad,
	}
	csvOut = *csvPath
	if csvOut != "" && fs.Arg(0) == "all" {
		return fmt.Errorf("-csv works with a single experiment, not \"all\"")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ppdc-bench: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ppdc-bench: memprofile:", err)
			}
			_ = f.Close()
		}()
	}
	switch fs.Arg(0) {
	case "table1":
		return runTable1(opts)
	case "table2":
		return runTable2(opts)
	case "fig5":
		return runFig5(opts)
	case "fig6":
		return runFig6(opts)
	case "fig7":
		return runFig7(opts)
	case "fig8":
		return runFig8(opts)
	case "fig9":
		return runFig9(opts)
	case "fig10":
		return runFig10(opts)
	case "fig8x":
		return runFig8x(opts)
	case "ablation":
		return runAblations(opts)
	case "bench":
		return runBench(opts, *queries, *batch, *inflight, *jsonOut, *outPath)
	case "fieldsweep":
		return runFieldSweep(opts, *queries, *batch, *inflight, *jsonOut, *outPath)
	case "compare":
		return runCompare(*basePath, *curPath, *maxReg)
	case "all":
		for _, f := range []func(experiments.Options) error{
			runTable1, runFig5, runFig6, runFig7, runFig8, runFig9, runTable2, runFig10,
		} {
			if err := f(opts); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", fs.Arg(0))
	}
}

// csvOut, when set, receives the active experiment's series.
var csvOut string

// writeCSV dumps one experiment's rows for external plotting.
func writeCSV(header []string, rows [][]string) error {
	if csvOut == "" {
		return nil
	}
	f, err := os.Create(csvOut)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(series written to %s)\n", csvOut)
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func newTable(header string) *tabwriter.Writer {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, header)
	return w
}

func runTable1(opts experiments.Options) error {
	started := time.Now()
	rows, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	fmt.Println("TABLE I: Data Classification Accuracy (ours vs paper)")
	w := newTable("dataset\tdim\ttest\tlinear\tpoly\tpaper-lin\tpaper-poly")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\n",
			r.Dataset, r.Dim, r.TestSize, r.LinearAcc, r.PolyAcc, r.PaperLin, r.PaperPoly)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{r.Dataset, strconv.Itoa(r.Dim), strconv.Itoa(r.TestSize),
			ftoa(r.LinearAcc), ftoa(r.PolyAcc), ftoa(r.PaperLin), ftoa(r.PaperPoly)})
	}
	if err := writeCSV([]string{"dataset", "dim", "test", "linear", "poly", "paper_lin", "paper_poly"}, csvRows); err != nil {
		return err
	}
	fmt.Printf("(%v)\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runTable2(opts experiments.Options) error {
	started := time.Now()
	res, err := experiments.Table2(opts)
	if err != nil {
		return err
	}
	fmt.Println("TABLE II: Privacy-preserving Data Similarity Evaluation")
	w := newTable("subset pair\tK-S avg\tprivate 10³T\tplaintext 10³T")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\n", r.Pair, r.KSAverage, r.PrivateT1000, r.PlainT1000)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("rank concordance (Spearman ρ between K-S and private T): %.3f\n", res.SpearmanRho)
	var csvRows [][]string
	for _, r := range res.Rows {
		csvRows = append(csvRows, []string{r.Pair, ftoa(r.KSAverage), ftoa(r.PrivateT1000), ftoa(r.PlainT1000)})
	}
	if err := writeCSV([]string{"pair", "ks_avg", "private_1000T", "plaintext_1000T"}, csvRows); err != nil {
		return err
	}
	fmt.Printf("(%v)\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runFig5(opts experiments.Options) error {
	rows, err := experiments.Fig5(opts, nil)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 5: Model Estimation from colluding classification results")
	w := newTable("samples\tangle error (deg)\toffset error\tangle error w/o amplifier (deg)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.3f\t%.2f\n", r.Samples, r.AngleErrorDeg, r.OffsetError, r.UnprotectedAngleErrorDeg)
	}
	return w.Flush()
}

func runFig6(opts experiments.Options) error {
	rows, err := experiments.Fig6(opts)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 6: Decision Function Retrieval (n+1 exact values, 2-D model)")
	w := newTable("amplifier\tangle error (deg)\toffset error")
	for _, r := range rows {
		mode := "disabled (insecure)"
		if r.Amplified {
			mode = "fresh per query"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\n", mode, r.AngleErrorDeg, r.OffsetError)
	}
	return w.Flush()
}

func runFig7(opts experiments.Options) error {
	return runAccuracy(opts, false)
}

func runFig8(opts experiments.Options) error {
	return runAccuracy(opts, true)
}

func runAccuracy(opts experiments.Options, nonlinear bool) error {
	started := time.Now()
	var rows []experiments.AccuracyRow
	var err error
	title := "Fig. 7: Accuracy of Linear Data Classification"
	if nonlinear {
		title = "Fig. 8: Accuracy of Nonlinear Data Classification"
		rows, err = experiments.Fig8(opts)
	} else {
		rows, err = experiments.Fig7(opts)
	}
	if err != nil {
		return err
	}
	fmt.Println(title)
	w := newTable("dataset\toriginal\tprivacy-preserving\tsamples\tlabel mismatches")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\t%d\t%d\n",
			r.Dataset, r.OriginalAcc, r.PrivateAcc, r.Samples, r.Mismatches)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("(%v)\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func runFig9(opts experiments.Options) error {
	started := time.Now()
	rows, err := experiments.Fig9(opts)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 9: Computational Cost Comparison of Classification")
	w := newTable("dataset\tdata (KB)\tlin-orig\tnonlin-orig\tlin-private\tlin-private-fast\tnonlin-private\toverhead\tfast overhead")
	for _, r := range rows {
		overhead := float64(r.LinearPrivate) / float64(r.LinearOriginal)
		fastOverhead := float64(r.LinearPrivateFast) / float64(r.LinearOriginal)
		fmt.Fprintf(w, "%s\t%.0f\t%v\t%v\t%v\t%v\t%v\t%.0fx\t%.0fx\n",
			r.Dataset, r.DataKB,
			r.LinearOriginal.Round(time.Millisecond),
			r.NonlinearOriginal.Round(time.Millisecond),
			r.LinearPrivate.Round(time.Millisecond),
			r.LinearPrivateFast.Round(time.Millisecond),
			r.NonlinearPrivate.Round(time.Millisecond),
			overhead, fastOverhead)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{r.Dataset, ftoa(r.DataKB),
			strconv.FormatInt(r.LinearOriginal.Milliseconds(), 10),
			strconv.FormatInt(r.NonlinearOriginal.Milliseconds(), 10),
			strconv.FormatInt(r.LinearPrivate.Milliseconds(), 10),
			strconv.FormatInt(r.NonlinearPrivate.Milliseconds(), 10)})
	}
	if err := writeCSV([]string{"dataset", "data_kb", "lin_orig_ms", "nonlin_orig_ms", "lin_priv_ms", "nonlin_priv_ms"}, csvRows); err != nil {
		return err
	}
	fmt.Printf("(totals projected from %d measured queries per series; %v)\n",
		rows[0].MeasuredQueries, time.Since(started).Round(time.Millisecond))
	return nil
}

func runFig10(opts experiments.Options) error {
	rows, err := experiments.Fig10(opts, nil)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 10: Computational Cost Comparison of Similarity Evaluation")
	w := newTable("dims\tprivate (full, with OT)\tprivate core (masking arith.)\tordinary (full)\tordinary core (metric arith.)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\n",
			r.Dim, r.Private.Round(time.Microsecond), r.PrivateCore.Round(time.Microsecond),
			r.Ordinary.Round(time.Microsecond), r.OrdinaryCore)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{strconv.Itoa(r.Dim),
			strconv.FormatInt(r.Private.Microseconds(), 10),
			strconv.FormatInt(r.PrivateCore.Microseconds(), 10),
			strconv.FormatInt(r.Ordinary.Microseconds(), 10),
			strconv.FormatInt(r.OrdinaryCore.Nanoseconds(), 10)})
	}
	return writeCSV([]string{"dims", "private_us", "private_core_us", "ordinary_us", "ordinary_core_ns"}, csvRows)
}

func runAblations(opts experiments.Options) error {
	type sweep struct {
		title string
		run   func() ([]experiments.AblationRow, error)
	}
	sweeps := []sweep{
		{"Masking degree q (security parameter)", func() ([]experiments.AblationRow, error) {
			return experiments.AblationMaskDegree(opts, nil)
		}},
		{"Cover factor k (decoy multiplier)", func() ([]experiments.AblationRow, error) {
			return experiments.AblationCoverFactor(opts, nil)
		}},
		{"OT group size", func() ([]experiments.AblationRow, error) {
			return experiments.AblationOTGroup(opts)
		}},
		{"Nonlinear evaluation form", func() ([]experiments.AblationRow, error) {
			return experiments.AblationModes(opts)
		}},
		{"OMPE vs Paillier baseline", func() ([]experiments.AblationRow, error) {
			return experiments.AblationPaillier(opts)
		}},
		{"IKNP fast session vs one-shot", func() ([]experiments.AblationRow, error) {
			return experiments.AblationFastPath(opts)
		}},
	}
	for _, s := range sweeps {
		rows, err := s.run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.title, err)
		}
		fmt.Println("Ablation:", s.title)
		w := newTable("config\tper query\tnotes")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%s\n", r.Name, r.PerQuery.Round(10*time.Microsecond), r.Note)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// runBench measures instrumented classify round trips — serial with
// -batch 0, or the batched fast-session pipeline with -batch B and
// -inflight K — and either prints a human-readable phase breakdown or,
// with -json, writes the schema-stable BENCH_<name>.json document the CI
// regression gate consumes.
func runBench(opts experiments.Options, queries, batch, inflight int, jsonOut bool, outPath string) error {
	var doc *experiments.BenchDoc
	var err error
	phaseNames := experiments.BenchPhaseNames()
	if batch > 0 {
		doc, err = experiments.BenchClassifyBatch(opts, queries, batch, inflight)
		phaseNames = experiments.BatchBenchPhaseNames()
	} else {
		doc, err = experiments.BenchClassifyRoundTrip(opts, queries)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		if outPath == "" {
			outPath = fmt.Sprintf("BENCH_%s.json", doc.Name)
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: %.2f qps over %d queries (document written to %s)\n",
			doc.ThroughputQPS, doc.Queries, outPath)
		return nil
	}
	fmt.Printf("Bench: %s (%s, group %s, seed %d)\n", doc.Name, doc.Config.Dataset, doc.Config.Group, doc.Config.Seed)
	if doc.Config.BatchSize > 0 {
		fmt.Printf("batching: %d samples per request, %d batches in flight\n", doc.Config.BatchSize, doc.Config.Inflight)
	}
	fmt.Printf("throughput: %.2f queries/s (%d queries in %v)\n",
		doc.ThroughputQPS, doc.Queries, time.Duration(doc.WallNS).Round(time.Millisecond))
	fmt.Printf("wire: %d B in / %d B out, %d msgs in / %d msgs out, %d OT instances\n",
		doc.BytesIn, doc.BytesOut, doc.MsgsIn, doc.MsgsOut, doc.OTInstances)
	w := newTable("phase\tcount\ttotal\tmean")
	for _, name := range phaseNames {
		p := doc.Phases[name]
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\n", name, p.Count,
			time.Duration(p.TotalNS).Round(time.Microsecond),
			time.Duration(p.MeanNS).Round(time.Microsecond))
	}
	return w.Flush()
}

// runFieldSweep measures the batched classify workload across the
// field-backend × OT-group grid and either prints the comparison table or,
// with -json, writes the BENCH_field_backends.json document. The -group
// and -field-backend flags are ignored: the sweep owns both axes.
func runFieldSweep(opts experiments.Options, queries, batch, inflight int, jsonOut bool, outPath string) error {
	if batch <= 0 {
		batch = 64
	}
	doc, err := experiments.BenchFieldBackendSweep(opts, queries, batch, inflight)
	if err != nil {
		return err
	}
	if jsonOut {
		if outPath == "" {
			outPath = fmt.Sprintf("BENCH_%s.json", doc.Name)
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("fieldsweep: limb+x25519 %.2fx qps, mask %.2fx, interpolate %.2fx vs big+modp512-test; aes pad %.2fx vs sha256 (document written to %s)\n",
			doc.QPSSpeedup, doc.SenderMaskSpeedup, doc.ReceiverInterpolateSpeedup, doc.PadSpeedup, outPath)
		return nil
	}
	fmt.Printf("Field backend sweep: %s, %d queries, batch %d, inflight %d, parallelism %d, seed %d\n",
		doc.Dataset, doc.Queries, doc.BatchSize, doc.Inflight, doc.Parallelism, doc.Seed)
	w := newTable("backend\tgroup\tpad\tpar\tqps\tmask mean\tinterpolate mean")
	for _, c := range doc.Combos {
		padCell := c.PadFunc
		if padCell == "" {
			padCell = "sha256"
		}
		parCell := strconv.Itoa(c.Parallelism)
		if c.Parallelism == 0 {
			parCell = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.1f\t%v\t%v\n", c.FieldBackend, c.Group, padCell, parCell, c.ThroughputQPS,
			time.Duration(c.PhaseMeansNS["ompe.sender.mask_ns"]).Round(time.Microsecond),
			time.Duration(c.PhaseMeansNS["ompe.receiver.interpolate_ns"]).Round(time.Microsecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("limb+x25519 vs big+modp512-test: %.2fx qps, %.2fx sender mask, %.2fx receiver interpolate\n",
		doc.QPSSpeedup, doc.SenderMaskSpeedup, doc.ReceiverInterpolateSpeedup)
	fmt.Printf("aes pad vs sha256 (limb+x25519): %.2fx qps\n", doc.PadSpeedup)
	return nil
}

// runCompare gates a fresh bench document against the committed
// baseline, exiting nonzero on a throughput regression beyond maxReg.
func runCompare(basePath, curPath string, maxReg float64) error {
	if curPath == "" {
		return fmt.Errorf("compare needs -current pointing at a BENCH_*.json document")
	}
	baseline, err := readBenchDoc(basePath)
	if err != nil {
		return err
	}
	current, err := readBenchDoc(curPath)
	if err != nil {
		return err
	}
	if err := experiments.CompareBench(baseline, current, maxReg); err != nil {
		return err
	}
	fmt.Printf("bench compare: ok (%.2f qps vs baseline %.2f qps, gate %.0f%%)\n",
		current.ThroughputQPS, baseline.ThroughputQPS, 100*maxReg)
	return nil
}

func readBenchDoc(path string) (*experiments.BenchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc experiments.BenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func runFig8x(opts experiments.Options) error {
	started := time.Now()
	rows, err := experiments.Fig8x(opts)
	if err != nil {
		return err
	}
	fmt.Println("Extension: private RBF/sigmoid classification (not evaluated by the paper)")
	w := newTable("dataset\tkernel\texact model\ttruncated model\tprivacy-preserving\tmismatches")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%d/%d\n",
			r.Dataset, r.Kernel, r.ExactAcc, r.TruncatedAcc, r.PrivateAcc, r.Mismatches, r.Samples)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("(%v)\n", time.Since(started).Round(time.Millisecond))
	return nil
}
