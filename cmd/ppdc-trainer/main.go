// Command ppdc-trainer trains an SVM on a dataset and serves
// privacy-preserving classification (and linear similarity evaluation)
// over TCP. The model never leaves the process; clients learn only
// predicted labels / the similarity metric.
//
// Usage:
//
//	ppdc-trainer [-addr :7707] [-dataset diabetes] [-kernel linear|poly] \
//	             [-data file.libsvm] [-group 2048] [-seed 1] \
//	             [-max-sessions 0] [-msg-deadline 2m] [-drain-timeout 30s] \
//	             [-metrics-addr 127.0.0.1:7708]
//
// The model serves through a version registry: on SIGHUP the process
// re-reads -load-model and atomically hot-swaps the new version in — new
// sessions bind to it immediately, in-flight sessions drain on the
// version they started with.
//
// On SIGINT/SIGTERM the server drains: it stops accepting, lets in-flight
// sessions finish for up to -drain-timeout, then force-closes stragglers
// (and shuts the -metrics-addr listener down with the same budget).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/registry"
	"repro/internal/similarity"
	"repro/internal/svm"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppdc-trainer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppdc-trainer", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":7707", "listen address")
		dsName     = fs.String("dataset", "diabetes", "synthetic dataset to train on (see catalog)")
		dataFile   = fs.String("data", "", "train on a LIBSVM-format file instead of synthetic data")
		kernelName = fs.String("kernel", "linear", "kernel: linear or poly")
		groupName  = fs.String("group", "2048", "OT group: 512 (toy), 1024, 1536, 2048, x25519")
		backend    = fs.String("field-backend", "", "field arithmetic engine offered to clients: big (default) or limb")
		codec      = fs.String("codec", "", "envelope codec policy: empty grants binary to capable clients with gob fallback; gob pins legacy gob-only envelopes")
		padName    = fs.String("pad", "", "OT pad policy: empty grants the fixed-key AES pads to clients that offer them (SHA-256 otherwise); sha256 pins the legacy pads for every session")
		resume     = fs.Bool("resume", true, "mint session resumption tickets for clients that offer them; false declines every offer and ticket (those clients fall back to full handshakes)")
		seed       = fs.Uint64("seed", 1, "synthetic data seed")
		c          = fs.Float64("C", 0, "soft-margin penalty (0 = dataset default)")
		saveModel  = fs.String("save-model", "", "write the trained model (JSON) and continue serving")
		loadModel  = fs.String("load-model", "", "serve a previously saved model instead of training")

		maxSessions  = fs.Int("max-sessions", 0, "max concurrent sessions (0 = unlimited); extra clients are rejected")
		msgDeadline  = fs.Duration("msg-deadline", transport.DefaultMessageDeadline, "per-message deadline; 0 disables")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")
		metricsAddr  = fs.String("metrics-addr", "", "serve plain-text /metrics and /debug/pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var msrv *http.Server
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		obs.SetDefault(reg)
		var maddr net.Addr
		var err error
		maddr, msrv, err = obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		defer func() { _ = msrv.Close() }()
		log.Printf("metrics and pprof on http://%s/metrics", maddr)
	}
	group, err := ot.GroupByName(*groupName)
	if err != nil {
		return err
	}
	fieldBackend, err := field.ResolveBackend(*backend)
	if err != nil {
		return err
	}

	var model *svm.Model
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			return err
		}
		model, err = svm.ReadModel(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		log.Printf("loaded %s model from %s (%d support vectors, %d dims)",
			model.Kernel.Kind, *loadModel, model.NumSupportVectors(), model.Dim)
	} else {
		train, spec, err := loadTraining(*dsName, *dataFile, *seed)
		if err != nil {
			return err
		}
		kernel := svm.Linear()
		penalty := spec.LinC
		if *kernelName == "poly" {
			kernel = svm.PaperPolynomial(train.Dim())
			penalty = spec.PolyC
		} else if *kernelName != "linear" {
			return fmt.Errorf("unknown kernel %q", *kernelName)
		}
		if *c != 0 {
			penalty = *c
		}
		log.Printf("training %s SVM on %s (%d samples, %d dims)", kernel.Kind, train.Name, train.Len(), train.Dim())
		model, err = svm.Train(train.X, train.Y, svm.Config{Kernel: kernel, C: penalty})
		if err != nil {
			return err
		}
		log.Printf("trained: %d support vectors", model.NumSupportVectors())
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			return err
		}
		if err := svm.WriteModel(f, model); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("saved model to %s", *saveModel)
	}

	// Serve through a version registry: the boot model is version 1, and
	// SIGHUP republishes -load-model as the next version without dropping
	// in-flight sessions.
	modelReg := registry.New(classify.Params{Group: group, FieldBackend: fieldBackend})
	if _, err := modelReg.Publish(model); err != nil {
		return err
	}
	srv := transport.NewServerSource(modelReg)
	srv.MaxSessions = *maxSessions
	srv.DisableResume = !*resume
	switch *codec {
	case "":
		// Default policy: grant binary when offered, gob otherwise.
	case transport.CodecGob:
		srv.WireCodecs = []string{transport.CodecGob}
	default:
		return fmt.Errorf("-codec must be empty or %q", transport.CodecGob)
	}
	if pad, err := ot.ResolvePad(*padName); err != nil {
		return err
	} else if *padName != "" {
		srv.PadFuncs = []string{string(pad)}
	}
	if *msgDeadline <= 0 {
		srv.MessageDeadline = transport.NoDeadline
	} else {
		srv.MessageDeadline = *msgDeadline
	}
	if model.Kernel.Kind == svm.KernelLinear {
		w, err := model.LinearWeights()
		if err != nil {
			return err
		}
		srv.EnableSimilarity(w, model.Bias, similarity.Params{Group: group, FieldBackend: fieldBackend})
		log.Printf("similarity service enabled")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("serving privacy-preserving classification on %s (OT group %s, field backend %s)",
		ln.Addr(), group.Name(), fieldBackend)

	// Hot-reload on SIGHUP: republish -load-model as the next version.
	// In-flight sessions drain on the version they started with; only the
	// classification model swaps (the similarity service stays pinned to
	// the boot model's weights).
	hupCh := make(chan os.Signal, 1)
	signal.Notify(hupCh, syscall.SIGHUP)
	defer signal.Stop(hupCh)
	go func() {
		for range hupCh {
			if *loadModel == "" {
				log.Printf("SIGHUP: hot-reload re-reads -load-model, which is not set; ignoring")
				continue
			}
			e, err := modelReg.PublishFile(*loadModel)
			if err != nil {
				log.Printf("SIGHUP: reload failed, still serving version %d: %v", modelReg.Version(), err)
				continue
			}
			log.Printf("SIGHUP: published model version %d from %s (%d support vectors)",
				e.Version, *loadModel, e.Model.NumSupportVectors())
		}
	}()

	// Drain gracefully on SIGINT/SIGTERM: stop accepting, let in-flight
	// sessions finish for up to -drain-timeout, force-close the rest. The
	// metrics listener shuts down under the same budget so the process
	// exits with no lingering HTTP socket.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	var draining atomic.Bool
	drained := make(chan error, 1)
	go func() {
		sig, ok := <-sigCh
		if !ok {
			return
		}
		log.Printf("%v: draining sessions for up to %v", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		draining.Store(true)
		drainErr := srv.Shutdown(ctx)
		if msrv != nil {
			if err := msrv.Shutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}
		drained <- drainErr
	}()
	err = srv.Serve(ln)
	if draining.Load() {
		// Signal-triggered shutdown: Serve returning net.ErrClosed is the
		// clean path; report only a failed drain.
		if shutdownErr := <-drained; shutdownErr != nil && !errors.Is(shutdownErr, net.ErrClosed) {
			return fmt.Errorf("drain: %w", shutdownErr)
		}
		log.Printf("drained; bye")
		return nil
	}
	return err
}

func loadTraining(dsName, dataFile string, seed uint64) (*dataset.Dataset, dataset.Spec, error) {
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, dataset.Spec{}, err
		}
		defer func() { _ = f.Close() }()
		d, err := dataset.ParseLIBSVM(f, dataFile, 0)
		if err != nil {
			return nil, dataset.Spec{}, err
		}
		return d, dataset.Spec{LinC: 1, PolyC: 100}, nil
	}
	spec, err := dataset.SpecByName(dsName)
	if err != nil {
		return nil, dataset.Spec{}, err
	}
	train, _, err := dataset.Generate(spec, dataset.Options{Seed: seed})
	if err != nil {
		return nil, dataset.Spec{}, err
	}
	return train, spec, nil
}
