package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadTrainingSynthetic(t *testing.T) {
	train, spec, err := loadTraining("diabetes", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Dim() != 8 || spec.LinC == 0 {
		t.Fatalf("dim=%d spec=%+v", train.Dim(), spec)
	}
}

func TestLoadTrainingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "toy.libsvm")
	content := "+1 1:0.5 2:-0.5\n-1 1:-0.5 2:0.5\n+1 1:0.9\n-1 2:0.9\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	train, _, err := loadTraining("ignored", path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 4 || train.Dim() != 2 {
		t.Fatalf("loaded %dx%d", train.Len(), train.Dim())
	}
}

func TestLoadTrainingUnknownDataset(t *testing.T) {
	if _, _, err := loadTraining("nonexistent", "", 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-kernel", "mystery", "-addr", "127.0.0.1:0", "-dataset", "diabetes"}); err == nil {
		t.Fatal("unknown kernel should fail")
	}
	if err := run([]string{"-group", "9999"}); err == nil {
		t.Fatal("unknown group should fail")
	}
}
