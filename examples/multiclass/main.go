// Multiclass extension: a credit bureau trains a 3-class risk model
// (low / medium / high) and serves it privately. The paper's protocols are
// binary; this example exercises the one-vs-one extension, where each
// class pair runs its own private binary protocol and the client tallies
// the majority vote locally — so the bureau never learns which pairwise
// decisions were decisive, let alone the applicant's data.
//
//	go run ./examples/multiclass
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand/v2"

	ppdc "repro"
)

// Applicant features (scaled to [-1,1]): income, debt ratio, credit
// history length, recent defaults.
const nFeatures = 4

// Risk classes.
const (
	riskLow    = 0
	riskMedium = 1
	riskHigh   = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	x, y := simulateApplicants(600, 7)
	model, err := ppdc.TrainMulticlass(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel(), C: 10})
	if err != nil {
		return err
	}
	acc, err := model.Accuracy(x, y)
	if err != nil {
		return err
	}
	fmt.Printf("bureau trained %d-class risk model (%d pairwise SVMs, %.1f%% training accuracy)\n",
		len(model.Classes), len(model.Pairs), acc*100)

	trainer, err := ppdc.NewMulticlassTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup1024()})
	if err != nil {
		return err
	}

	applicants := map[string][]float64{
		"stable high earner":        {0.8, -0.6, 0.7, -0.9},
		"overleveraged borrower":    {-0.2, 0.9, -0.1, 0.6},
		"thin-file young applicant": {0.0, 0.1, -0.8, -0.3},
	}
	names := map[int]string{riskLow: "LOW", riskMedium: "MEDIUM", riskHigh: "HIGH"}
	for who, features := range applicants {
		class, err := ppdc.ClassifyMulticlass(trainer, features, rand.Reader)
		if err != nil {
			return fmt.Errorf("%s: %w", who, err)
		}
		plain, err := model.Classify(features)
		if err != nil {
			return err
		}
		fmt.Printf("  %-26s → risk %s (matches plaintext ensemble: %v)\n",
			who, names[class], class == plain)
	}
	fmt.Println("the bureau never saw the applications; the applicants never saw the model")
	return nil
}

// simulateApplicants stands in for the bureau's historical records.
func simulateApplicants(n int, seed uint64) ([][]float64, []int) {
	rng := mrand.New(mrand.NewPCG(seed, 0xc4ed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		p := make([]float64, nFeatures)
		for j := range p {
			p[j] = rng.Float64()*2 - 1
		}
		x[i] = p
		// Risk score: debt and defaults raise it, income and history
		// lower it.
		score := 0.9*p[1] + 0.7*p[3] - 0.8*p[0] - 0.5*p[2]
		switch {
		case score < -0.5:
			y[i] = riskLow
		case score < 0.5:
			y[i] = riskMedium
		default:
			y[i] = riskHigh
		}
	}
	return x, y
}
