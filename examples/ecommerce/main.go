// E-commerce scenario (the paper's §I motivation): two companies each
// train a sale-trend model from their own records. A clothing seller
// privately tests whether a new design follows company A's trend, and the
// two companies privately evaluate their market similarity to decide
// whether to partner — all without exposing models or designs.
//
//	go run ./examples/ecommerce
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"math"
	mrand "math/rand/v2"

	ppdc "repro"
)

// Feature vector of a clothing item (all scaled to [-1, 1], as the paper
// prescribes): price point, color brightness, formality, seasonality
// (summer..winter), material weight, pattern boldness.
const nFeatures = 6

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Each company's customers follow a different hidden trend; their sale
	// records are labeled "sold well" (+1) / "sold poorly" (−1).
	companyA := trendModel{priceSensitivity: -0.7, colorTaste: 0.5, formality: 0.3, season: 0.4}
	companyB := trendModel{priceSensitivity: -0.6, colorTaste: 0.4, formality: 0.35, season: 0.45} // similar market
	companyC := trendModel{priceSensitivity: 0.6, colorTaste: -0.7, formality: -0.2, season: 0.1}  // different market

	modelA, err := trainCompany("A", companyA, 400, 1)
	if err != nil {
		return err
	}
	modelB, err := trainCompany("B", companyB, 400, 2)
	if err != nil {
		return err
	}
	modelC, err := trainCompany("C", companyC, 400, 3)
	if err != nil {
		return err
	}

	// --- Part 1: a seller privately tests a design against A's trend. ---
	trainerA, err := ppdc.NewTrainer(modelA, ppdc.ClassifyParams{Group: ppdc.OTGroup1024()})
	if err != nil {
		return err
	}
	design := []float64{-0.4, 0.6, 0.2, 0.5, -0.1, 0.3} // cheap, bright, summery
	label, err := ppdc.Classify(trainerA, design, rand.Reader)
	if err != nil {
		return err
	}
	verdict := "follows the trend — keep it"
	if label < 0 {
		verdict = "against the trend — rework it"
	}
	fmt.Printf("seller's private design test against company A: %s\n", verdict)
	fmt.Println("  (company A never saw the design; the seller never saw A's model)")

	// --- Part 2: the consortium privately evaluates market similarity.
	// Every pair runs the three-round protocol; nobody reveals a model. ---
	params := ppdc.SimilarityParams{Group: ppdc.OTGroup1024()}
	models := []*ppdc.Model{modelA, modelB, modelC}
	names := []string{"A", "B", "C"}
	matrix, err := ppdc.SimilarityMatrix(models, params, rand.Reader)
	if err != nil {
		return err
	}
	fmt.Println("pairwise market similarity (10³T, smaller = closer):")
	for i := range matrix {
		for j := i + 1; j < len(matrix); j++ {
			fmt.Printf("  %s↔%s: %.3f\n", names[i], names[j], matrix[i][j]*1000)
		}
	}
	if matrix[0][1] < matrix[0][2] {
		fmt.Println("company B is the closer market: A should explore a partnership with B")
	} else {
		fmt.Println("company C is the closer market: A should explore a partnership with C")
	}
	return nil
}

// trendModel is a company's hidden customer-preference direction.
type trendModel struct {
	priceSensitivity, colorTaste, formality, season float64
}

func (t trendModel) score(item []float64) float64 {
	return t.priceSensitivity*item[0] + t.colorTaste*item[1] +
		t.formality*item[2] + t.season*item[3] + 0.1*item[4] - 0.05*item[5]
}

// trainCompany simulates a company's sale records and trains its
// sale-trend SVM.
func trainCompany(name string, trend trendModel, records int, seed uint64) (*ppdc.Model, error) {
	rng := mrand.New(mrand.NewPCG(seed, 0xec0))
	x := make([][]float64, records)
	y := make([]int, records)
	for i := range x {
		item := make([]float64, nFeatures)
		for j := range item {
			item[j] = rng.Float64()*2 - 1
		}
		x[i] = item
		s := trend.score(item)
		if math.Abs(s) < 0.05 {
			s = 0.05 // borderline items sell unpredictably; call them hits
		}
		y[i] = 1
		if s < 0 {
			y[i] = -1
		}
		if rng.Float64() < 0.05 { // market noise
			y[i] = -y[i]
		}
	}
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		return nil, fmt.Errorf("train company %s: %w", name, err)
	}
	fmt.Printf("company %s trained its sale-trend model (%d records, %d support vectors)\n",
		name, records, model.NumSupportVectors())
	return model, nil
}
