// Medical scenario (paper §I: "hospitals can build disease classification
// models to diagnose or prognosticate new diseases"): a hospital trains a
// nonlinear diagnosis model on its health records; a patient's device
// requests a private diagnosis. The hospital's model (trained on protected
// records) and the patient's measurements both stay private.
//
// The diagnosis boundary is nonlinear, so this example exercises the
// paper's §IV-B path: a polynomial-kernel SVM evaluated obliviously with
// degree-p·q masking.
//
//	go run ./examples/medical
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand/v2"

	ppdc "repro"
)

// Patient features (scaled to [-1,1]): age, BMI, blood pressure, glucose,
// cholesterol.
const nFeatures = 5

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The hospital's records: disease risk follows a nonlinear rule (an
	// interaction of glucose, BMI and age — representable by a cubic
	// kernel, invisible to a linear one).
	records, labels := simulateRecords(600, 42)
	kernel := ppdc.PaperPolynomialKernel(nFeatures) // (x·y/n)³, the paper's default
	model, err := ppdc.Train(records, labels, ppdc.TrainConfig{Kernel: kernel, C: 200})
	if err != nil {
		return err
	}
	acc, err := model.Accuracy(records, labels)
	if err != nil {
		return err
	}
	fmt.Printf("hospital trained nonlinear diagnosis model: %d support vectors, %.1f%% training accuracy\n",
		model.NumSupportVectors(), acc*100)

	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{
		Mode:  ppdc.ModeDirect, // the paper's kernel-form oblivious evaluation
		Group: ppdc.OTGroup1024(),
	})
	if err != nil {
		return err
	}
	// One client is reused across patients (it only depends on the public
	// protocol spec).
	client, err := ppdc.NewClient(trainer.Spec())
	if err != nil {
		return err
	}

	patients := map[string][]float64{
		"patient with high glucose + BMI": {0.3, 0.8, 0.4, 0.9, 0.2},
		"young healthy patient":           {-0.8, -0.3, -0.2, -0.5, -0.1},
		"borderline metabolic profile":    {0.1, 0.3, 0.1, 0.3, 0.4},
	}
	for name, features := range patients {
		label, err := ppdc.ClassifyWith(trainer, client, features, rand.Reader)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		diagnosis := "low risk"
		if label > 0 {
			diagnosis = "HIGH RISK — recommend follow-up"
		}
		// Verify protocol fidelity against the plaintext model (possible
		// only because this demo owns both sides).
		plain, err := model.Classify(features)
		if err != nil {
			return err
		}
		fmt.Printf("  %-32s → %s (matches plaintext model: %v)\n", name, diagnosis, plain == label)
	}
	fmt.Println("the hospital never saw the measurements; the patients never saw the model")
	return nil
}

// simulateRecords stands in for protected health records.
func simulateRecords(n int, seed uint64) ([][]float64, []int) {
	rng := mrand.New(mrand.NewPCG(seed, 0x3d))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		p := make([]float64, nFeatures)
		for j := range p {
			p[j] = rng.Float64()*2 - 1
		}
		x[i] = p
		// Nonlinear risk: glucose×BMI×age interaction plus a cubic
		// cholesterol effect.
		risk := 6*p[0]*p[1]*p[3] + p[4]*p[4]*p[4] + 0.3*p[2]
		y[i] = 1
		if risk < 0 {
			y[i] = -1
		}
	}
	return x, y
}
