// Distributed deployment: the trainer and the client run as separate
// endpoints connected over TCP — the deployment shape the paper's
// "distributed systems" setting assumes.
//
// Run everything in one process (spawns an in-process server):
//
//	go run ./examples/network
//
// Or run the two roles on different machines:
//
//	go run ./examples/network -role trainer -addr :7707
//	go run ./examples/network -role client  -addr host:7707
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	ppdc "repro"
)

func main() {
	role := flag.String("role", "demo", "demo (both roles in-process), trainer, or client")
	addr := flag.String("addr", "127.0.0.1:7707", "listen/dial address")
	flag.Parse()

	var err error
	switch *role {
	case "demo":
		err = runDemo()
	case "trainer":
		err = runTrainer(*addr)
	case "client":
		err = runClient(*addr)
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// trainModel builds the dataset and model both roles agree on for the
// demo (in a real deployment only the trainer would have this data).
func trainModel() (*ppdc.Model, *ppdc.Dataset, error) {
	spec, err := datasetSpec()
	if err != nil {
		return nil, nil, err
	}
	train, test, err := ppdc.GenerateDataset(spec, ppdc.DatasetOptions{Seed: 7})
	if err != nil {
		return nil, nil, err
	}
	model, err := ppdc.Train(train.X, train.Y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel(), C: spec.LinC})
	if err != nil {
		return nil, nil, err
	}
	return model, test, nil
}

func datasetSpec() (ppdc.DatasetSpec, error) {
	for _, s := range ppdc.DatasetCatalog() {
		if s.Name == "breast-cancer" {
			return s, nil
		}
	}
	return ppdc.DatasetSpec{}, fmt.Errorf("breast-cancer spec missing from catalog")
}

func runTrainer(addr string) error {
	model, _, err := trainModel()
	if err != nil {
		return err
	}
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup1024()})
	if err != nil {
		return err
	}
	srv := ppdc.NewServer(trainer)
	w, err := model.LinearWeights()
	if err != nil {
		return err
	}
	srv.EnableSimilarity(w, model.Bias, ppdc.SimilarityParams{Group: ppdc.OTGroup1024()})
	log.Printf("trainer listening on %s", addr)
	return ppdc.Serve(srv, addr)
}

func runClient(addr string) error {
	_, test, err := trainModel()
	if err != nil {
		return err
	}
	client, err := ppdc.DialClassify(addr, 10*time.Second, rand.Reader)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	fmt.Printf("connected to trainer at %s (%s kernel, %d dims)\n", addr, client.Spec().Kernel.Kind, client.Spec().Dim)
	correct := 0
	const queries = 10
	for i := 0; i < queries; i++ {
		label, err := client.Classify(test.X[i])
		if err != nil {
			return err
		}
		if label == test.Y[i] {
			correct++
		}
	}
	fmt.Printf("classified %d private samples over the network: %d/%d correct\n", queries, correct, queries)
	return nil
}

func runDemo() error {
	model, _, err := trainModel()
	if err != nil {
		return err
	}
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{Group: ppdc.OTGroup1024()})
	if err != nil {
		return err
	}
	srv := ppdc.NewServer(trainer)
	srv.Logf = nil // quiet for the demo
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	log.Printf("in-process trainer serving on %s", ln.Addr())

	if err := runClient(ln.Addr().String()); err != nil {
		return err
	}
	fmt.Println("demo complete: model and samples never crossed the wire in the clear")
	return nil
}
