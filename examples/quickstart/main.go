// Quickstart: train a linear SVM, serve it privately, classify one sample.
//
//	go run ./examples/quickstart
//
// The trainer never reveals its model; the client never reveals its
// sample; the client learns only the predicted class, which this example
// checks against the plaintext model.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	ppdc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Training data: a small two-dimensional toy problem — points
	// above the line x+y=0 are class +1.
	x := [][]float64{
		{0.8, 0.6}, {0.5, 0.9}, {0.9, 0.1}, {0.3, 0.4}, {0.7, -0.1},
		{-0.8, -0.6}, {-0.5, -0.9}, {-0.9, -0.1}, {-0.3, -0.4}, {-0.7, 0.1},
	}
	y := []int{1, 1, 1, 1, 1, -1, -1, -1, -1, -1}

	// 2. Train (the paper's substrate: an SMO soft-margin SVM).
	model, err := ppdc.Train(x, y, ppdc.TrainConfig{Kernel: ppdc.LinearKernel()})
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	fmt.Printf("trained linear SVM with %d support vectors\n", model.NumSupportVectors())

	// 3. Wrap the model in a privacy-preserving trainer endpoint. The
	// zero-value params select the paper's defaults (q=2, k=2, 64-bit
	// amplifiers, 2048-bit OT group).
	trainer, err := ppdc.NewTrainer(model, ppdc.ClassifyParams{})
	if err != nil {
		return fmt.Errorf("new trainer: %w", err)
	}

	// 4. A client classifies its private sample. Four protocol messages
	// are exchanged; the trainer never sees the sample, the client never
	// sees the model.
	sample := []float64{0.4, 0.2}
	label, err := ppdc.Classify(trainer, sample, rand.Reader)
	if err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	fmt.Printf("private classification of %v: class %+d\n", sample, label)

	// 5. Sanity check against the plaintext model (only possible here
	// because this process happens to own both sides).
	plain, err := model.Classify(sample)
	if err != nil {
		return err
	}
	fmt.Printf("plaintext model agrees: %v\n", plain == label)
	return nil
}
