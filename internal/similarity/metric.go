// Package similarity implements the paper's primary contribution, part 2:
// privacy-preserving data-similarity evaluation between trained models
// (§V). Two trainers compare decision functions without revealing them,
// using the isosceles-triangle metric T² = ¼(L⁴+L₀⁴)(sin²θ+sin²θ₀) built
// from the centroid distance L of the two bounded hyperplanes and their
// included angle θ.
//
// The metric side (this file) computes boundary points over the bounded
// data space (Eq. 5), centroids, cosine similarity and the triangle area,
// both for linear models (closed form) and for kernel models (boundary
// roots by bisection along box edges). The protocol side (linear.go,
// nonlinear.go) computes the same metric privately with three OMPE rounds.
package similarity

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/svm"
)

// DefaultL0 and DefaultTheta0 are the public regularizing constants of
// Eq. (4): they keep the area positive when the planes are parallel or
// share a centroid, so the two degenerate causes stay indistinguishable.
const (
	DefaultL0     = 0.05
	DefaultTheta0 = math.Pi / 36 // 5° << 90°
)

// Metric fixes the public evaluation geometry both trainers agree on.
type Metric struct {
	// Alpha and Beta bound the data space [α, β]ⁿ (the paper scales all
	// data to [−1, 1]).
	Alpha, Beta float64
	// L0 is the distance regularizer.
	L0 float64
	// Theta0 is the angle regularizer in radians.
	Theta0 float64
}

// DefaultMetric returns the paper's evaluation geometry.
func DefaultMetric() Metric {
	return Metric{Alpha: -1, Beta: 1, L0: DefaultL0, Theta0: DefaultTheta0}
}

// Validate checks the metric parameters.
func (m Metric) Validate() error {
	if !(m.Alpha < m.Beta) {
		return fmt.Errorf("similarity: invalid box [%g, %g]", m.Alpha, m.Beta)
	}
	if m.L0 <= 0 || m.Theta0 <= 0 || m.Theta0 >= math.Pi/2 {
		return fmt.Errorf("similarity: invalid regularizers L0=%g theta0=%g", m.L0, m.Theta0)
	}
	return nil
}

// ErrNoBoundary reports a decision boundary that does not intersect the
// data box, leaving the bounded hyperplane (and its centroid) undefined.
var ErrNoBoundary = errors.New("similarity: decision boundary does not cross the data box")

// maxBoundaryDim caps the boundary-point enumeration (n·2^(n-1) edge
// equations, Eq. 5).
const maxBoundaryDim = 22

// LinearBoundaryPoints solves the paper's Eq. (5): for each dimension d
// treated as the free variable and every α/β assignment of the others,
// solve w·t + b = 0 and keep solutions inside the box. The returned points
// trace the bounded hyperplane's intersection with the box edges.
func LinearBoundaryPoints(w []float64, b float64, m Metric) ([][]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(w)
	if n < 2 {
		return nil, fmt.Errorf("similarity: need >= 2 dimensions, got %d", n)
	}
	if n > maxBoundaryDim {
		return nil, fmt.Errorf("similarity: boundary enumeration capped at %d dims (got %d)", maxBoundaryDim, n)
	}
	var points [][]float64
	corners := 1 << (n - 1)
	for d := 0; d < n; d++ {
		if w[d] == 0 {
			continue
		}
		for mask := 0; mask < corners; mask++ {
			point := make([]float64, n)
			sum := b
			bit := 0
			for j := 0; j < n; j++ {
				if j == d {
					continue
				}
				v := m.Alpha
				if mask&(1<<bit) != 0 {
					v = m.Beta
				}
				point[j] = v
				sum += w[j] * v
				bit++
			}
			u := -sum / w[d]
			if u >= m.Alpha && u <= m.Beta {
				point[d] = u
				points = append(points, point)
			}
		}
	}
	if len(points) == 0 {
		return nil, ErrNoBoundary
	}
	return points, nil
}

// KernelBoundaryPoints finds boundary points of a kernel decision function
// along the same box edges, replacing Eq. (5)'s linear solve with sign
// changes and bisection (the paper's §V-C "equations with nonlinear form").
func KernelBoundaryPoints(model *svm.Model, m Metric) ([][]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n := model.Dim
	if n < 2 {
		return nil, fmt.Errorf("similarity: need >= 2 dimensions, got %d", n)
	}
	if n > 16 {
		return nil, fmt.Errorf("similarity: kernel boundary enumeration capped at 16 dims (got %d)", n)
	}
	const gridSteps = 16
	var points [][]float64
	corners := 1 << (n - 1)
	point := make([]float64, n)
	for d := 0; d < n; d++ {
		for mask := 0; mask < corners; mask++ {
			bit := 0
			for j := 0; j < n; j++ {
				if j == d {
					continue
				}
				if mask&(1<<bit) != 0 {
					point[j] = m.Beta
				} else {
					point[j] = m.Alpha
				}
				bit++
			}
			// Scan the free coordinate for sign changes, then bisect.
			prevU := m.Alpha
			point[d] = prevU
			prevV, err := model.Decision(point)
			if err != nil {
				return nil, err
			}
			step := (m.Beta - m.Alpha) / gridSteps
			for g := 1; g <= gridSteps; g++ {
				u := m.Alpha + float64(g)*step
				point[d] = u
				v, err := model.Decision(point)
				if err != nil {
					return nil, err
				}
				if prevV == 0 || prevV*v < 0 {
					root := prevU
					if prevV != 0 {
						root, err = bisect(model, point, d, prevU, u)
						if err != nil {
							return nil, err
						}
					}
					found := make([]float64, n)
					copy(found, point)
					found[d] = root
					points = append(points, found)
				}
				prevU, prevV = u, v
			}
		}
	}
	if len(points) == 0 {
		return nil, ErrNoBoundary
	}
	return points, nil
}

func bisect(model *svm.Model, point []float64, d int, lo, hi float64) (float64, error) {
	point[d] = lo
	flo, err := model.Decision(point)
	if err != nil {
		return 0, err
	}
	if flo == 0 {
		return lo, nil
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		point[d] = mid
		fm, err := model.Decision(point)
		if err != nil {
			return 0, err
		}
		if fm == 0 {
			return mid, nil
		}
		if (flo < 0) == (fm < 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Centroid averages boundary points.
func Centroid(points [][]float64) ([]float64, error) {
	if len(points) == 0 {
		return nil, ErrNoBoundary
	}
	n := len(points[0])
	c := make([]float64, n)
	for _, p := range points {
		if len(p) != n {
			return nil, fmt.Errorf("similarity: ragged boundary points")
		}
		for j := range c {
			c[j] += p[j]
		}
	}
	for j := range c {
		c[j] /= float64(len(points))
	}
	return c, nil
}

// CosineSimilarity returns cos θ between two normal vectors.
func CosineSimilarity(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("similarity: dim %d vs %d", len(a), len(b))
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, errors.New("similarity: zero normal vector")
	}
	return dot / math.Sqrt(na*nb), nil
}

// TriangleSquared computes Eq. (4)/(6): T² = ¼(L⁴+L₀⁴)(sin²θ+sin²θ₀),
// given the squared centroid distance and cos θ.
func TriangleSquared(l2, cosTheta float64, m Metric) float64 {
	sin2 := 1 - cosTheta*cosTheta
	if sin2 < 0 {
		sin2 = 0
	}
	s0 := math.Sin(m.Theta0)
	return 0.25 * (l2*l2 + math.Pow(m.L0, 4)) * (sin2 + s0*s0)
}

// Result carries a similarity evaluation's outcome.
type Result struct {
	// T is the triangle-area metric (smaller = more similar).
	T float64
	// TSquared is T² as the protocol computes it.
	TSquared float64
	// L is the centroid distance.
	L float64
	// CosTheta is the models' cosine similarity.
	CosTheta float64
}

// EvaluateLinear computes the metric in the clear for two linear models
// (the paper's "ordinary similarity evaluation" baseline of Fig. 10).
func EvaluateLinear(wA []float64, bA float64, wB []float64, bB float64, m Metric) (*Result, error) {
	if len(wA) != len(wB) {
		return nil, fmt.Errorf("similarity: dim %d vs %d", len(wA), len(wB))
	}
	ptsA, err := LinearBoundaryPoints(wA, bA, m)
	if err != nil {
		return nil, fmt.Errorf("model A: %w", err)
	}
	ptsB, err := LinearBoundaryPoints(wB, bB, m)
	if err != nil {
		return nil, fmt.Errorf("model B: %w", err)
	}
	mA, err := Centroid(ptsA)
	if err != nil {
		return nil, err
	}
	mB, err := Centroid(ptsB)
	if err != nil {
		return nil, err
	}
	l2 := 0.0
	for j := range mA {
		d := mA[j] - mB[j]
		l2 += d * d
	}
	cosT, err := CosineSimilarity(wA, wB)
	if err != nil {
		return nil, err
	}
	t2 := TriangleSquared(l2, cosT, m)
	return &Result{T: math.Sqrt(t2), TSquared: t2, L: math.Sqrt(l2), CosTheta: cosT}, nil
}

// EvaluateKernel computes the metric in the clear for two kernel models
// sharing a kernel: centroids come from bisection boundary points, and the
// angle is measured between the feature-space normals via
// cos θ = K(wA,wB)/√(K(wA,wA)·K(wB,wB)) (§V-C).
func EvaluateKernel(a, b *svm.Model, m Metric) (*Result, error) {
	if a.Kernel != b.Kernel {
		return nil, fmt.Errorf("similarity: models use different kernels (%v vs %v)", a.Kernel.Kind, b.Kernel.Kind)
	}
	ptsA, err := KernelBoundaryPoints(a, m)
	if err != nil {
		return nil, fmt.Errorf("model A: %w", err)
	}
	ptsB, err := KernelBoundaryPoints(b, m)
	if err != nil {
		return nil, fmt.Errorf("model B: %w", err)
	}
	mA, err := Centroid(ptsA)
	if err != nil {
		return nil, err
	}
	mB, err := Centroid(ptsB)
	if err != nil {
		return nil, err
	}
	kmm, err := kernelCross(a, b, mA, mB)
	if err != nil {
		return nil, err
	}
	l2 := kmm.aa + kmm.bb - 2*kmm.ab
	if l2 < 0 {
		l2 = 0
	}
	kww, err := normalGram(a, b)
	if err != nil {
		return nil, err
	}
	if kww.aa <= 0 || kww.bb <= 0 {
		return nil, errors.New("similarity: non-positive feature-space norm")
	}
	cosT := kww.ab / math.Sqrt(kww.aa*kww.bb)
	t2 := TriangleSquared(l2, cosT, m)
	return &Result{T: math.Sqrt(t2), TSquared: t2, L: math.Sqrt(l2), CosTheta: cosT}, nil
}

type gram struct{ aa, bb, ab float64 }

// kernelCross computes K(mA,mA), K(mB,mB), K(mA,mB) for the centroid
// distance in feature space.
func kernelCross(a, b *svm.Model, mA, mB []float64) (gram, error) {
	kaa, err := a.Kernel.Eval(mA, mA)
	if err != nil {
		return gram{}, err
	}
	kbb, err := b.Kernel.Eval(mB, mB)
	if err != nil {
		return gram{}, err
	}
	kab, err := a.Kernel.Eval(mA, mB)
	if err != nil {
		return gram{}, err
	}
	return gram{aa: kaa, bb: kbb, ab: kab}, nil
}

// normalGram computes K(wA,wA), K(wB,wB), K(wA,wB) where w = Σ αy·φ(x)
// is the feature-space normal: K(wA,wB) = Σ_s Σ_t αyA_s·αyB_t·K(xA_s,xB_t).
func normalGram(a, b *svm.Model) (gram, error) {
	selfDot := func(m *svm.Model) (float64, error) {
		acc := 0.0
		for i, xi := range m.SupportVectors {
			for j, xj := range m.SupportVectors {
				k, err := m.Kernel.Eval(xi, xj)
				if err != nil {
					return 0, err
				}
				acc += m.AlphaY[i] * m.AlphaY[j] * k
			}
		}
		return acc, nil
	}
	kaa, err := selfDot(a)
	if err != nil {
		return gram{}, err
	}
	kbb, err := selfDot(b)
	if err != nil {
		return gram{}, err
	}
	kab := 0.0
	for i, xi := range a.SupportVectors {
		for j, xj := range b.SupportVectors {
			k, err := a.Kernel.Eval(xi, xj)
			if err != nil {
				return gram{}, err
			}
			kab += a.AlphaY[i] * b.AlphaY[j] * k
		}
	}
	return gram{aa: kaa, bb: kbb, ab: kab}, nil
}
