package similarity

import (
	"bytes"
	"encoding"
	"errors"
	"io"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/svm"
	"repro/internal/wire"
)

type wireMsg interface {
	wire.Msg
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	io.WriterTo
	io.ReaderFrom
}

func sampleSpec() Spec {
	return Spec{
		Dim:           4,
		Metric:        Metric{Alpha: -1, Beta: 1, L0: 0.5, Theta0: 0.25},
		MaskDegree:    4,
		CoverFactor:   2,
		AmplifierBits: 40,
		FieldBits:     1024,
		FracBits:      12,
		GroupName:     "modp512",
		FieldBackend:  "limb",
		WireCodec:     "binary",
	}
}

func similarityWireSamples() map[string]wireMsg {
	spec := sampleSpec()
	return map[string]wireMsg{
		"Spec":       &spec,
		"Metric":     &Metric{Alpha: -2, Beta: 2, L0: 1.5, Theta0: 0.1},
		"ClearShare": &ClearShare{NormM2: 1.25, NormW2: 2.5},
		"KernelSpec": &KernelSpec{Spec: sampleSpec(), Kernel: svm.Polynomial(0.5, 0, 3)},
		"KernelClearShare": &KernelClearShare{
			KmBmB: 3.5, KwBwB: 4.5, NumSupport: 7,
			AlphaSum: new(big.Int).Lsh(big.NewInt(11), 100),
		},
		"AreaScale": &AreaScale{C3Exp: 17, TotalExp: 42},
	}
}

func reencode(t *testing.T, m wireMsg) []byte {
	t.Helper()
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return data
}

func TestSimilarityWireRoundTrips(t *testing.T) {
	for name, in := range similarityWireSamples() {
		t.Run(name, func(t *testing.T) {
			data, err := in.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			var sb bytes.Buffer
			if _, err := in.WriteTo(&sb); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if !bytes.Equal(sb.Bytes(), data) {
				t.Fatalf("WriteTo and MarshalBinary disagree")
			}

			out := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if err := out.UnmarshalBinary(data); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			if !bytes.Equal(reencode(t, out), data) {
				t.Fatalf("slice round trip mismatch")
			}

			out2 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if _, err := out2.ReadFrom(bytes.NewReader(data)); err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if !bytes.Equal(reencode(t, out2), data) {
				t.Fatalf("stream round trip mismatch")
			}

			out3 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if err := out3.UnmarshalBinary(append(append([]byte{}, data...), 0xFF)); !errors.Is(err, wire.ErrTrailing) {
				t.Fatalf("trailing byte: got %v, want ErrTrailing", err)
			}

			for n := 0; n < len(data); n++ {
				out4 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
				if err := out4.UnmarshalBinary(data[:n]); err == nil {
					t.Fatalf("prefix %d/%d decoded cleanly", n, len(data))
				}
			}
		})
	}
}

func TestKernelClearShareNilAlphaSum(t *testing.T) {
	m := &KernelClearShare{KmBmB: 1, KwBwB: 2, NumSupport: 3}
	if _, err := m.MarshalBinary(); !errors.Is(err, wire.ErrNilValue) {
		t.Fatalf("got %v, want ErrNilValue", err)
	}
}
