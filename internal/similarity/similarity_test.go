package similarity_test

import (
	"crypto/rand"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/svm"
)

func fastParams() similarity.Params {
	return similarity.Params{
		MaskDegree:  2,
		CoverFactor: 2,
		Group:       ot.Group512Test(),
	}
}

// TestPrivateMatchesPlaintext checks that the three-round private protocol
// reproduces the clear-text metric to fixed-point precision.
func TestPrivateMatchesPlaintext(t *testing.T) {
	cases := []struct {
		name   string
		wA, wB []float64
		bA, bB float64
	}{
		{"2d-distinct", []float64{1, 0.5}, []float64{0.2, 1.1}, 0.1, -0.3},
		{"2d-nearly-parallel", []float64{1, 1}, []float64{1.01, 1}, 0.2, 0.1},
		{"3d", []float64{0.7, -0.4, 0.2}, []float64{-0.1, 0.9, 0.3}, 0.05, -0.12},
		{"5d", []float64{0.3, -0.2, 0.5, 0.1, -0.4}, []float64{0.1, 0.4, -0.3, 0.2, 0.2}, 0, 0.08},
	}
	metric := similarity.DefaultMetric()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := similarity.EvaluateLinear(tc.wA, tc.bA, tc.wB, tc.bB, metric)
			if err != nil {
				t.Fatal(err)
			}
			got, err := similarity.EvaluatePrivate(tc.wA, tc.bA, tc.wB, tc.bB, fastParams(), rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.TSquared-want.TSquared) > 1e-4*(1+math.Abs(want.TSquared)) {
				t.Fatalf("T²: private %g, plaintext %g", got.TSquared, want.TSquared)
			}
			if math.Abs(got.T-want.T) > 1e-3*(1+want.T) {
				t.Fatalf("T: private %g, plaintext %g", got.T, want.T)
			}
		})
	}
}

// TestIdenticalModelsHitFloor checks the degenerate case the regularizers
// exist for: identical models yield the minimum area ½·L0²·sinθ0, not 0.
func TestIdenticalModelsHitFloor(t *testing.T) {
	metric := similarity.DefaultMetric()
	w := []float64{0.8, -0.6}
	res, err := similarity.EvaluateLinear(w, 0.1, w, 0.1, metric)
	if err != nil {
		t.Fatal(err)
	}
	floor := 0.5 * metric.L0 * metric.L0 * math.Sin(metric.Theta0)
	if math.Abs(res.T-floor) > 1e-9 {
		t.Fatalf("identical models: T=%g, want floor %g", res.T, floor)
	}
	priv, err := similarity.EvaluatePrivate(w, 0.1, w, 0.1, fastParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(priv.T-floor) > 1e-4 {
		t.Fatalf("identical models private: T=%g, want floor %g", priv.T, floor)
	}
}

// TestKernelPrivateMatchesPlaintext checks the kernelized three-round
// protocol against the clear-text kernel metric.
func TestKernelPrivateMatchesPlaintext(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize = 50
	spec.TestSize = 10
	trainA, _, err := dataset.Generate(spec, dataset.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	trainB, _, err := dataset.Generate(spec, dataset.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	k := svm.PaperPolynomial(spec.Dim)
	modelA, err := svm.Train(trainA.X, trainA.Y, svm.Config{Kernel: k, C: 10})
	if err != nil {
		t.Fatal(err)
	}
	modelB, err := svm.Train(trainB.X, trainB.Y, svm.Config{Kernel: k, C: 10})
	if err != nil {
		t.Fatal(err)
	}
	metric := similarity.DefaultMetric()
	want, err := similarity.EvaluateKernel(modelA, modelB, metric)
	if err != nil {
		t.Fatal(err)
	}
	got, err := similarity.EvaluatePrivateKernel(modelA, modelB, fastParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.TSquared-want.TSquared) > 2e-3*(1+math.Abs(want.TSquared)) {
		t.Fatalf("T²: private %g, plaintext %g", got.TSquared, want.TSquared)
	}
}

// TestLimbBackendNegotiation pins the field-engine seam: a limb request
// whose protocol headroom exceeds the 255-bit limb field must silently
// degrade to the math/big engine (a trainer serving both protocols with
// -field-backend limb still answers similarity sessions), while a
// precision that fits keeps the limb engine and advertises it in the spec.
func TestLimbBackendNegotiation(t *testing.T) {
	metric := similarity.DefaultMetric()
	wA, wB := []float64{1, 0.5}, []float64{0.2, 1.1}
	bA, bB := 0.1, -0.3
	want, err := similarity.EvaluateLinear(wA, bA, wB, bB, metric)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		fracBits uint
		wantSpec string
	}{
		// Default 24 fractional bits need ~280 field bits: too wide for
		// the limb engine, so the spec must fall back to the big path.
		{"degrades-to-big", 0, ""},
		// 18 fractional bits fit inside 255 bits: limb serves the session.
		{"limb-fits", 18, "limb"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := fastParams()
			params.FieldBackend = field.BackendLimb
			params.FracBits = tc.fracBits
			alice, err := similarity.NewAlice(wA, bA, params, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if got := alice.Spec().FieldBackend; got != tc.wantSpec {
				t.Fatalf("spec backend %q, want %q", got, tc.wantSpec)
			}
			got, err := similarity.EvaluatePrivate(wA, bA, wB, bB, params, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.T-want.T) > 1e-3*(1+want.T) {
				t.Fatalf("T: private %g, plaintext %g", got.T, want.T)
			}
		})
	}
}
