package similarity_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/similarity"
	"repro/internal/svm"
)

func TestLinearBoundaryPoints2D(t *testing.T) {
	m := similarity.DefaultMetric()
	// x + y = 0 crosses the box at (-1,1) and (1,-1), found twice (once
	// per free dimension).
	pts, err := similarity.LinearBoundaryPoints([]float64{1, 1}, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d boundary points, want 4", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p[0]+p[1]) > 1e-12 {
			t.Fatalf("point %v not on the boundary", p)
		}
		for _, v := range p {
			if v < -1-1e-12 || v > 1+1e-12 {
				t.Fatalf("point %v outside the box", p)
			}
		}
	}
	c, err := similarity.Centroid(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[1]) > 1e-12 {
		t.Fatalf("centroid %v, want origin", c)
	}
}

func TestLinearBoundaryPointsOffset(t *testing.T) {
	m := similarity.DefaultMetric()
	// x = 0.5: the vertical line crosses at (0.5, ±1); the x-free-variable
	// equations give (0.5, α/β); the y-free equations have no solution in
	// range except x must equal 0.5 exactly — w_y = 0 skips that dim.
	pts, err := similarity.LinearBoundaryPoints([]float64{1, 0}, -0.5, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p[0]-0.5) > 1e-12 {
			t.Fatalf("point %v not on x=0.5", p)
		}
	}
	c, err := similarity.Centroid(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-0.5) > 1e-12 || math.Abs(c[1]) > 1e-12 {
		t.Fatalf("centroid %v, want (0.5, 0)", c)
	}
}

func TestLinearBoundaryOutsideBox(t *testing.T) {
	m := similarity.DefaultMetric()
	if _, err := similarity.LinearBoundaryPoints([]float64{1, 1}, 10, m); err == nil {
		t.Fatal("boundary outside the box should fail")
	}
}

func TestBoundaryValidation(t *testing.T) {
	m := similarity.DefaultMetric()
	if _, err := similarity.LinearBoundaryPoints([]float64{1}, 0, m); err == nil {
		t.Fatal("1-D should fail")
	}
	big := make([]float64, 30)
	for i := range big {
		big[i] = 1
	}
	if _, err := similarity.LinearBoundaryPoints(big, 0, m); err == nil {
		t.Fatal("dimension cap should fail")
	}
	bad := similarity.Metric{Alpha: 1, Beta: -1, L0: 0.05, Theta0: 0.1}
	if _, err := similarity.LinearBoundaryPoints([]float64{1, 1}, 0, bad); err == nil {
		t.Fatal("inverted box should fail")
	}
}

func TestCosineSimilarity(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{2, 0}, 1},
		{[]float64{1, 0}, []float64{0, 3}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{1, 1}, []float64{1, 0}, math.Sqrt2 / 2},
	}
	for _, tc := range cases {
		got, err := similarity.CosineSimilarity(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("cos(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if _, err := similarity.CosineSimilarity([]float64{0, 0}, []float64{1, 0}); err == nil {
		t.Fatal("zero vector should fail")
	}
	if _, err := similarity.CosineSimilarity([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestTriangleSquaredKnownValues(t *testing.T) {
	m := similarity.DefaultMetric()
	s0 := math.Sin(m.Theta0)
	// Parallel planes (cos=±1) at distance L: T² = ¼(L⁴+L0⁴)·sin²θ0.
	l2 := 0.36
	got := similarity.TriangleSquared(l2, 1, m)
	want := 0.25 * (l2*l2 + math.Pow(m.L0, 4)) * s0 * s0
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("parallel T² = %v, want %v", got, want)
	}
	// Orthogonal planes with coincident centroids: T² = ¼L0⁴(1+sin²θ0).
	got = similarity.TriangleSquared(0, 0, m)
	want = 0.25 * math.Pow(m.L0, 4) * (1 + s0*s0)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("orthogonal T² = %v, want %v", got, want)
	}
}

// TestMetricProperties: symmetry and the regularized floor.
func TestMetricProperties(t *testing.T) {
	m := similarity.DefaultMetric()
	check := func(a1, a2, b1, b2, c1, c2 float64) bool {
		wA := []float64{clampUnit(a1) + 0.1, clampUnit(a2) - 0.2}
		wB := []float64{clampUnit(b1) - 0.15, clampUnit(b2) + 0.25}
		bA, bB := clampUnit(c1)*0.3, clampUnit(c2)*0.3
		r1, err1 := similarity.EvaluateLinear(wA, bA, wB, bB, m)
		r2, err2 := similarity.EvaluateLinear(wB, bB, wA, bA, m)
		if err1 != nil || err2 != nil {
			// Degenerate boundary (doesn't cross the box): acceptable.
			return (err1 == nil) == (err2 == nil)
		}
		if math.Abs(r1.TSquared-r2.TSquared) > 1e-9*(1+r1.TSquared) {
			return false
		}
		floor := 0.25 * math.Pow(m.L0, 4) * math.Pow(math.Sin(m.Theta0), 2)
		return r1.TSquared >= floor-1e-15
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMoreDifferentModelsScoreHigher: rotating a plane farther away must
// increase T.
func TestMoreDifferentModelsScoreHigher(t *testing.T) {
	m := similarity.DefaultMetric()
	base := []float64{1, 0}
	prev := -1.0
	for _, angle := range []float64{0.05, 0.3, 0.8, 1.3} {
		w := []float64{math.Cos(angle), math.Sin(angle)}
		r, err := similarity.EvaluateLinear(base, 0.02, w, 0.02, m)
		if err != nil {
			t.Fatal(err)
		}
		if r.T <= prev {
			t.Fatalf("angle %v: T=%v did not grow (prev %v)", angle, r.T, prev)
		}
		prev = r.T
	}
}

func TestKernelBoundaryPointsMatchLinear(t *testing.T) {
	m := similarity.DefaultMetric()
	// A linear-kernel model through the SVM interface must produce
	// boundary points on the same hyperplane as the closed form.
	model := &svm.Model{
		Kernel:         svm.Linear(),
		SupportVectors: [][]float64{{1, 1}},
		AlphaY:         []float64{1},
		Bias:           0,
		Dim:            2,
	}
	pts, err := similarity.KernelBoundaryPoints(model, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p[0]+p[1]) > 1e-9 {
			t.Fatalf("point %v not on x+y=0", p)
		}
	}
}

func TestEvaluateKernelMismatchedKernels(t *testing.T) {
	a := &svm.Model{Kernel: svm.PaperPolynomial(2), SupportVectors: [][]float64{{1, 0}}, AlphaY: []float64{1}, Dim: 2}
	b := &svm.Model{Kernel: svm.PaperPolynomial(3), SupportVectors: [][]float64{{1, 0}}, AlphaY: []float64{1}, Dim: 2}
	if _, err := similarity.EvaluateKernel(a, b, similarity.DefaultMetric()); err == nil {
		t.Fatal("mismatched kernels should fail")
	}
}

func clampUnit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(math.Abs(x), 1)
}
