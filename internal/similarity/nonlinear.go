package similarity

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/svm"
)

// Nonlinear (kernelized) similarity evaluation, §V-C. Dot products become
// kernel evaluations in feature space:
//
//	T² = ¼[(K(mA,mA)+K(mB,mB)−2K(mA,mB))² + L0⁴]
//	      ·[(1 − K²(wA,wB)/(K(wA,wA)·K(wB,wB))) + sin²θ0]
//
// Round 1 delivers x1 = r_am·K(mA,mB) via one OMPE on Alice's polynomial
// (a0·mA·z + b0)^p with Bob's centroid as input. Round 2 must produce
// K(wA,wB) = Σ_s Σ_t αyA_s·αyB_t·K(xA_s, xB_t), which the paper leaves
// unspecified; here Bob runs one OMPE per own support vector against
// Alice's polynomial P(z) = Σ_s αyA_s·(a0·xA_s·z+b0)^p (all with the same
// pinned amplifier and shift) and combines the outputs with his own
// fixed-point multipliers:
//
//	x2 = Σ_t Enc(αyB_t)·[r_aw·P(xB_t) + r_b] = r_aw·K(wA,wB)·S^e + r_b·A
//
// where A = Σ_t Enc(αyB_t) is an aggregate Bob discloses so Alice can set
// d3 = −r_b·A (a scalar sum of multipliers — comparable in kind to the
// |wB|² the paper already sends in the clear; documented in DESIGN.md).
//
// Only the polynomial kernel is supported, matching the paper's nonlinear
// experiments.

// KernelClearShare carries Bob's cleartext values for the kernel variant.
type KernelClearShare struct {
	// KmBmB is K(mB, mB).
	KmBmB float64
	// KwBwB is K(wB, wB) in feature space.
	KwBwB float64
	// NumSupport is |S_B|, the number of round-2 executions Bob will run.
	NumSupport int
	// AlphaSum is A = Σ_t Enc(αyB_t) mod p.
	AlphaSum *big.Int
}

// KernelSpec extends the public contract with the kernel and the area
// round's adaptive scale exponents.
type KernelSpec struct {
	Spec
	Kernel svm.Kernel
}

// AreaScale carries the adaptive exponents Alice announces before the
// area round, so Bob can decode the result. C3Exp reveals the rough
// magnitude of K(wA,wA) — a leak of the same class as the paper's clear
// norm shares.
type AreaScale struct {
	// C3Exp is the scale exponent of c3 = 1/(4·K(wA,wA)·K(wB,wB)).
	C3Exp uint
	// TotalExp is the result's scale exponent.
	TotalExp uint
}

// kernelDotExp returns the scale exponent of a polynomial-kernel value
// (a0·x·z + b0)^p computed on base-scale encodings.
func kernelDotExp(k svm.Kernel) uint { return uint(2 * k.Degree) }

// defaultKernelFracBits keeps the very deep kernel-area scale inside the
// built-in primes.
const defaultKernelFracBits = 12

// KernelAlice is the responder for the kernelized evaluation.
type KernelAlice struct {
	spec  KernelSpec
	codec *fixedpoint.Codec
	model *svm.Model
	mA    []float64

	ram, raw, rb *big.Int
	clear        *KernelClearShare
	areaScale    *AreaScale

	parallelism int

	round      Round
	round2Seen int
	sender     *ompe.Sender
}

// NewKernelAlice prepares the responder around a polynomial-kernel model.
func NewKernelAlice(model *svm.Model, params Params, rng io.Reader) (*KernelAlice, error) {
	if model == nil {
		return nil, errors.New("similarity: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Kernel.Kind != svm.KernelPolynomial {
		return nil, fmt.Errorf("similarity: kernel variant supports polynomial kernels, got %v", model.Kernel.Kind)
	}
	params = params.withDefaults()
	if params.FracBits == 24 {
		params.FracBits = defaultKernelFracBits
	}
	spec, err := kernelSpecFor(model.Kernel, model.Dim, params)
	if err != nil {
		return nil, err
	}
	codec, err := spec.Codec()
	if err != nil {
		return nil, err
	}
	boundarySpan := obs.Start(obs.PhaseSimBoundary)
	pts, err := KernelBoundaryPoints(model, spec.Metric)
	if err != nil {
		return nil, err
	}
	mA, err := Centroid(pts)
	if err != nil {
		return nil, err
	}
	boundarySpan.End()
	f := codec.Field()
	bound := new(big.Int).Lsh(big.NewInt(1), uint(spec.AmplifierBits))
	ram, err := f.RandBounded(rng, bound)
	if err != nil {
		return nil, err
	}
	raw, err := f.RandBounded(rng, bound)
	if err != nil {
		return nil, err
	}
	rb, err := f.Rand(rng)
	if err != nil {
		return nil, err
	}
	return &KernelAlice{
		spec:        spec,
		codec:       codec,
		model:       model,
		mA:          mA,
		ram:         ram,
		raw:         raw,
		rb:          rb,
		parallelism: params.Parallelism,
		round:       RoundCentroid,
	}, nil
}

func kernelSpecFor(k svm.Kernel, dim int, p Params) (KernelSpec, error) {
	if err := p.Metric.Validate(); err != nil {
		return KernelSpec{}, err
	}
	e1 := kernelDotExp(k)           // x1 exponent
	e2 := e1 + 2                    // x2 exponent (αy on both sides)
	maxC3 := uint(16)               // headroom for the adaptive c3 exponent
	totalMax := 2*e1 + 2*e2 + maxC3 // worst-case area exponent
	need := max(int(e2+1)*int(p.FracBits)+p.AmplifierBits, int(totalMax)*int(p.FracBits)) + 48 + 24
	f, err := resolveField(p.FieldBackend, need)
	if err != nil {
		return KernelSpec{}, err
	}
	return KernelSpec{
		Spec: Spec{
			Dim:           dim,
			Metric:        p.Metric,
			MaskDegree:    p.MaskDegree,
			CoverFactor:   p.CoverFactor,
			AmplifierBits: p.AmplifierBits,
			FieldBits:     f.Bits(),
			FracBits:      p.FracBits,
			GroupName:     p.Group.Name(),
			FieldBackend:  backendSpecName(p.FieldBackend, f),
		},
		Kernel: k,
	}, nil
}

// Spec returns the public contract.
func (a *KernelAlice) Spec() KernelSpec { return a.spec }

// HandleClearShare stores Bob's cleartext values.
func (a *KernelAlice) HandleClearShare(cs *KernelClearShare) error {
	if cs == nil || cs.KwBwB <= 0 || cs.NumSupport < 1 || cs.AlphaSum == nil ||
		math.IsNaN(cs.KmBmB) || math.IsInf(cs.KmBmB, 0) ||
		math.IsNaN(cs.KwBwB) || math.IsInf(cs.KwBwB, 0) {
		return errors.New("similarity: invalid kernel clear share")
	}
	if !a.codec.Field().Contains(cs.AlphaSum) {
		return errors.New("similarity: alpha sum not in field")
	}
	a.clear = cs
	return nil
}

// AnnounceAreaScale computes and returns the adaptive area-round scale.
// Valid after the clear share arrives.
func (a *KernelAlice) AnnounceAreaScale() (*AreaScale, error) {
	if a.clear == nil {
		return nil, errors.New("similarity: clear share missing")
	}
	if a.areaScale != nil {
		return a.areaScale, nil
	}
	kwawa, err := a.normalSelfGram()
	if err != nil {
		return nil, err
	}
	c3 := 0.25 / (kwawa * a.clear.KwBwB)
	// Pick the c3 exponent so that c3·S^exp has at least fracBits
	// significant bits (but at least 1, at most the headroom).
	exp := uint(1)
	sBits := float64(a.spec.FracBits)
	if c3 > 0 {
		needBits := -math.Log2(c3) + sBits
		exp = uint(math.Max(1, math.Ceil(needBits/sBits)))
	}
	if exp > 16 {
		exp = 16
	}
	e1 := kernelDotExp(a.spec.Kernel)
	e2 := e1 + 2
	a.areaScale = &AreaScale{C3Exp: exp, TotalExp: 2*e1 + 2*e2 + exp}
	return a.areaScale, nil
}

func (a *KernelAlice) normalSelfGram() (float64, error) {
	acc := 0.0
	for i, xi := range a.model.SupportVectors {
		for j, xj := range a.model.SupportVectors {
			k, err := a.model.Kernel.Eval(xi, xj)
			if err != nil {
				return 0, err
			}
			acc += a.model.AlphaY[i] * a.model.AlphaY[j] * k
		}
	}
	if acc <= 0 {
		return 0, errors.New("similarity: non-positive feature-space norm")
	}
	return acc, nil
}

// HandleRequest answers one OMPE request. Round 2 is repeated NumSupport
// times (idx = 0..NumSupport-1, strictly in order).
func (a *KernelAlice) HandleRequest(round Round, req *ompe.EvalRequest, rng io.Reader) (*ot.BatchSetup, error) {
	if round != a.round {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, a.round)
	}
	span := obs.Start(obs.PhaseOfSimilarityRound(int(round)))
	defer span.End()
	eval, opts, degree, err := a.buildRound(round)
	if err != nil {
		return nil, err
	}
	params, err := a.spec.ompeParamsKernel(round, degree)
	if err != nil {
		return nil, err
	}
	params.Parallelism = a.parallelism
	sender, err := ompe.NewSender(params, eval, opts...)
	if err != nil {
		return nil, err
	}
	setup, err := sender.HandleRequest(req, rng)
	if err != nil {
		return nil, err
	}
	a.sender = sender
	return setup, nil
}

// HandleChoice finishes the OT of the current round (or round-2 instance).
func (a *KernelAlice) HandleChoice(round Round, choice *ot.BatchChoice, rng io.Reader) (*ot.BatchTransfer, error) {
	if round != a.round || a.sender == nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, a.round)
	}
	tr, err := a.sender.HandleChoice(choice, rng)
	if err != nil {
		return nil, err
	}
	a.sender = nil
	obs.Add(obs.CtrSimilarityRounds, 1)
	if round == RoundNormal {
		a.round2Seen++
		if a.clear == nil || a.round2Seen < a.clear.NumSupport {
			return tr, nil // stay in round 2 for the next support vector
		}
	}
	a.round++
	return tr, nil
}

// ompeParamsKernel mirrors Spec.ompeParams with a per-round degree.
func (s KernelSpec) ompeParamsKernel(round Round, degree int) (ompe.Params, error) {
	group, err := ot.GroupByName(s.GroupName)
	if err != nil {
		return ompe.Params{}, err
	}
	codec, err := s.Codec()
	if err != nil {
		return ompe.Params{}, err
	}
	backend, err := field.ResolveBackend(s.FieldBackend)
	if err != nil {
		return ompe.Params{}, err
	}
	return ompe.Params{
		Field:         codec.Field(),
		PolyDegree:    degree,
		MaskDegree:    s.MaskDegree,
		CoverFactor:   s.CoverFactor,
		AmplifierBits: s.AmplifierBits,
		Group:         group,
		Backend:       backend,
	}, nil
}

func (a *KernelAlice) buildRound(round Round) (ompe.Evaluator, []ompe.SenderOption, int, error) {
	k := a.spec.Kernel
	switch round {
	case RoundCentroid:
		// P(z) = (a0·mA·z + b0)^p.
		eval, err := a.kernelEval(a.mA, nil)
		if err != nil {
			return nil, nil, 0, err
		}
		return eval, []ompe.SenderOption{ompe.WithAmplifier(a.ram)}, k.Degree, nil
	case RoundNormal:
		// P(z) = Σ_s αyA_s·(a0·xA_s·z + b0)^p.
		eval, err := a.kernelEval(nil, a.model)
		if err != nil {
			return nil, nil, 0, err
		}
		return eval, []ompe.SenderOption{ompe.WithAmplifier(a.raw), ompe.WithShift(a.rb)}, k.Degree, nil
	case RoundArea:
		eval, opts, err := a.buildKernelAreaEvaluator()
		if err != nil {
			return nil, nil, 0, err
		}
		return eval, opts, 4, nil
	default:
		return nil, nil, 0, fmt.Errorf("similarity: unknown round %d", round)
	}
}

// kernelEval builds either the single-vector kernel polynomial (centroid
// given) or the full decision-style sum over a model's support vectors.
func (a *KernelAlice) kernelEval(centroid []float64, model *svm.Model) (ompe.Evaluator, error) {
	f := a.codec.Field()
	k := a.spec.Kernel
	encB0, err := a.codec.EncodeAtScale(k.B0, a.codec.ScalePow(2))
	if err != nil {
		return nil, err
	}
	type row struct {
		vec   field.Vec
		alpha *big.Int // nil for the centroid form
	}
	var rows []row
	if centroid != nil {
		scaled := make([]float64, len(centroid))
		for j, v := range centroid {
			scaled[j] = k.A0 * v
		}
		enc, err := a.codec.EncodeVec(scaled)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{vec: enc})
	} else {
		for s, sv := range model.SupportVectors {
			scaled := make([]float64, len(sv))
			for j, v := range sv {
				scaled[j] = k.A0 * v
			}
			enc, err := a.codec.EncodeVec(scaled)
			if err != nil {
				return nil, err
			}
			alpha, err := a.codec.EncodeAtScale(model.AlphaY[s], a.codec.Scale())
			if err != nil {
				return nil, err
			}
			rows = append(rows, row{vec: enc, alpha: alpha})
		}
	}
	dim := a.spec.Dim
	p := k.Degree
	return ompe.EvaluatorFunc(dim, func(z field.Vec) (*big.Int, error) {
		if len(z) != dim {
			return nil, fmt.Errorf("similarity: arity %d, want %d", len(z), dim)
		}
		acc := new(big.Int)
		for _, r := range rows {
			inner, err := f.Dot(r.vec, z)
			if err != nil {
				return nil, err
			}
			inner = f.Add(inner, encB0)
			pow := f.One()
			for i := 0; i < p; i++ {
				pow = f.Mul(pow, inner)
			}
			if r.alpha != nil {
				pow = f.Mul(r.alpha, pow)
			}
			acc = f.Add(acc, pow)
		}
		return acc, nil
	}), nil
}

// buildKernelAreaEvaluator assembles the kernelized Eq. (7) with adaptive
// scales: x1 at S^e1, x2 at S^e2, c1 at S^e1, c2 at S^{2e1}, c3/4 at
// S^c3Exp, c4/4 at S^{2e2+c3Exp}; result at S^{2e1+2e2+c3Exp}.
func (a *KernelAlice) buildKernelAreaEvaluator() (ompe.Evaluator, []ompe.SenderOption, error) {
	if a.clear == nil {
		return nil, nil, errors.New("similarity: clear share missing before area round")
	}
	scale, err := a.AnnounceAreaScale()
	if err != nil {
		return nil, nil, err
	}
	f := a.codec.Field()
	k := a.spec.Kernel
	e1 := kernelDotExp(k)

	kmama, err := k.Eval(a.mA, a.mA)
	if err != nil {
		return nil, nil, err
	}
	kwawa, err := a.normalSelfGram()
	if err != nil {
		return nil, nil, err
	}
	m := a.spec.Metric
	s0 := math.Sin(m.Theta0)

	encC1, err := a.codec.EncodeAtScale(kmama+a.clear.KmBmB, a.codec.ScalePow(e1))
	if err != nil {
		return nil, nil, err
	}
	encC2, err := a.codec.EncodeAtScale(math.Pow(m.L0, 4), a.codec.ScalePow(2*e1))
	if err != nil {
		return nil, nil, err
	}
	encC3, err := a.codec.EncodeAtScale(0.25/(kwawa*a.clear.KwBwB), a.codec.ScalePow(scale.C3Exp))
	if err != nil {
		return nil, nil, err
	}
	e2 := e1 + 2
	encC4, err := a.codec.EncodeAtScale(0.25*(1+s0*s0), a.codec.ScalePow(2*e2+scale.C3Exp))
	if err != nil {
		return nil, nil, err
	}
	d1, err := f.Inv(a.ram)
	if err != nil {
		return nil, nil, err
	}
	d2, err := f.Inv(f.Mul(a.raw, a.raw))
	if err != nil {
		return nil, nil, err
	}
	// d3 cancels the aggregated shift r_b·A.
	d3 := f.Neg(f.Mul(a.rb, a.clear.AlphaSum))
	two := big.NewInt(2)

	eval := ompe.EvaluatorFunc(2, func(z field.Vec) (*big.Int, error) {
		if len(z) != 2 {
			return nil, fmt.Errorf("similarity: area round arity %d", len(z))
		}
		t1 := f.Sub(encC1, f.Mul(two, f.Mul(d1, z[0])))
		bracket1 := f.Add(f.Mul(t1, t1), encC2)
		t2 := f.Add(d3, z[1])
		bracket2 := f.Sub(encC4, f.Mul(encC3, f.Mul(d2, f.Mul(t2, t2))))
		return f.Mul(bracket1, bracket2), nil
	})
	return eval, []ompe.SenderOption{ompe.WithAmplifier(big.NewInt(1))}, nil
}

// KernelBob is the requester for the kernelized evaluation.
type KernelBob struct {
	spec  KernelSpec
	codec *fixedpoint.Codec
	model *svm.Model
	mB    []float64

	clear     *KernelClearShare
	areaScale *AreaScale

	parallelism int

	round     Round
	round2Idx int
	receiver  *ompe.Receiver
	x1        *big.Int
	x2Acc     *big.Int
	encAlphaB []*big.Int
}

// NewKernelBob prepares the requester around his own polynomial-kernel
// model, from Alice's public spec.
func NewKernelBob(spec KernelSpec, model *svm.Model) (*KernelBob, error) {
	if model == nil {
		return nil, errors.New("similarity: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Kernel != spec.Kernel {
		return nil, fmt.Errorf("similarity: kernel mismatch (%+v vs %+v)", model.Kernel, spec.Kernel)
	}
	if model.Dim != spec.Dim {
		return nil, fmt.Errorf("similarity: model dim %d, spec dim %d", model.Dim, spec.Dim)
	}
	codec, err := spec.Codec()
	if err != nil {
		return nil, err
	}
	boundarySpan := obs.Start(obs.PhaseSimBoundary)
	pts, err := KernelBoundaryPoints(model, spec.Metric)
	if err != nil {
		return nil, err
	}
	mB, err := Centroid(pts)
	if err != nil {
		return nil, err
	}
	boundarySpan.End()
	f := codec.Field()
	encAlpha := make([]*big.Int, len(model.AlphaY))
	alphaSum := new(big.Int)
	for t, a := range model.AlphaY {
		enc, err := codec.EncodeAtScale(a, codec.Scale())
		if err != nil {
			return nil, err
		}
		encAlpha[t] = enc
		alphaSum = f.Add(alphaSum, enc)
	}
	kmbmb, err := model.Kernel.Eval(mB, mB)
	if err != nil {
		return nil, err
	}
	kwbwb := 0.0
	for i, xi := range model.SupportVectors {
		for j, xj := range model.SupportVectors {
			kv, err := model.Kernel.Eval(xi, xj)
			if err != nil {
				return nil, err
			}
			kwbwb += model.AlphaY[i] * model.AlphaY[j] * kv
		}
	}
	if kwbwb <= 0 {
		return nil, errors.New("similarity: non-positive feature-space norm")
	}
	return &KernelBob{
		spec:  spec,
		codec: codec,
		model: model,
		mB:    mB,
		clear: &KernelClearShare{
			KmBmB:      kmbmb,
			KwBwB:      kwbwb,
			NumSupport: len(model.SupportVectors),
			AlphaSum:   alphaSum,
		},
		round:     RoundCentroid,
		x2Acc:     new(big.Int),
		encAlphaB: encAlpha,
	}, nil
}

// ClearShare returns Bob's cleartext values.
func (b *KernelBob) ClearShare() *KernelClearShare { return b.clear }

// SetParallelism bounds Bob's local worker pool (<= 0 selects GOMAXPROCS,
// 1 forces the serial path). Purely local: it does not change any protocol
// message given the same randomness stream.
func (b *KernelBob) SetParallelism(n int) { b.parallelism = n }

// SetAreaScale stores Alice's announced area scale (needed to decode).
func (b *KernelBob) SetAreaScale(s *AreaScale) error {
	if s == nil || s.C3Exp < 1 || s.C3Exp > 16 {
		return errors.New("similarity: invalid area scale")
	}
	e1 := kernelDotExp(b.spec.Kernel)
	e2 := e1 + 2
	if s.TotalExp != 2*e1+2*e2+s.C3Exp {
		return errors.New("similarity: inconsistent area scale")
	}
	b.areaScale = s
	return nil
}

// StartRound opens the OMPE receiver for the given round. RoundNormal
// repeats once per own support vector.
func (b *KernelBob) StartRound(round Round, rng io.Reader) (*ompe.EvalRequest, error) {
	if round != b.round || b.receiver != nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, b.round)
	}
	var input field.Vec
	var degree int
	switch round {
	case RoundCentroid:
		enc, err := b.codec.EncodeVec(b.mB)
		if err != nil {
			return nil, err
		}
		input = enc
		degree = b.spec.Kernel.Degree
	case RoundNormal:
		enc, err := b.codec.EncodeVec(b.model.SupportVectors[b.round2Idx])
		if err != nil {
			return nil, err
		}
		input = enc
		degree = b.spec.Kernel.Degree
	case RoundArea:
		if b.x1 == nil || b.areaScale == nil {
			return nil, errors.New("similarity: area round prerequisites missing")
		}
		input = field.Vec{b.x1, b.x2Acc}
		degree = 4
	default:
		return nil, fmt.Errorf("similarity: unknown round %d", round)
	}
	params, err := b.spec.ompeParamsKernel(round, degree)
	if err != nil {
		return nil, err
	}
	params.Parallelism = b.parallelism
	receiver, req, err := ompe.NewReceiver(params, input, rng)
	if err != nil {
		return nil, err
	}
	b.receiver = receiver
	return req, nil
}

// HandleSetup advances the current round's OT.
func (b *KernelBob) HandleSetup(round Round, setup *ot.BatchSetup, rng io.Reader) (*ot.BatchChoice, error) {
	if round != b.round || b.receiver == nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, b.round)
	}
	return b.receiver.HandleSetup(setup, rng)
}

// FinishRound completes the current round (or round-2 instance). After
// RoundArea it returns the final result.
func (b *KernelBob) FinishRound(round Round, tr *ot.BatchTransfer) (*Result, error) {
	if round != b.round || b.receiver == nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, b.round)
	}
	value, err := b.receiver.Finish(tr)
	if err != nil {
		return nil, err
	}
	b.receiver = nil
	f := b.codec.Field()
	switch round {
	case RoundCentroid:
		b.x1 = value
		b.round++
	case RoundNormal:
		// x2 += Enc(αyB_t)·(r_aw·P(xB_t) + r_b)
		b.x2Acc = f.Add(b.x2Acc, f.Mul(b.encAlphaB[b.round2Idx], value))
		b.round2Idx++
		if b.round2Idx >= len(b.model.SupportVectors) {
			b.round++
		}
	case RoundArea:
		t2, err := b.codec.DecodeAtScale(value, b.codec.ScalePow(b.areaScale.TotalExp))
		if err != nil {
			return nil, err
		}
		if t2 < 0 {
			t2 = 0
		}
		b.round++
		return &Result{T: math.Sqrt(t2), TSquared: t2}, nil
	}
	return nil, nil
}

// EvaluatePrivateKernel runs a complete in-memory kernelized evaluation.
func EvaluatePrivateKernel(modelA, modelB *svm.Model, params Params, rng io.Reader) (*Result, error) {
	alice, err := NewKernelAlice(modelA, params, rng)
	if err != nil {
		return nil, err
	}
	bob, err := NewKernelBob(alice.Spec(), modelB)
	if err != nil {
		return nil, err
	}
	bob.SetParallelism(params.Parallelism)
	if err := alice.HandleClearShare(bob.ClearShare()); err != nil {
		return nil, err
	}
	scale, err := alice.AnnounceAreaScale()
	if err != nil {
		return nil, err
	}
	if err := bob.SetAreaScale(scale); err != nil {
		return nil, err
	}
	runOne := func(round Round) (*Result, error) {
		req, err := bob.StartRound(round, rng)
		if err != nil {
			return nil, err
		}
		setup, err := alice.HandleRequest(round, req, rng)
		if err != nil {
			return nil, err
		}
		choice, err := bob.HandleSetup(round, setup, rng)
		if err != nil {
			return nil, err
		}
		tr, err := alice.HandleChoice(round, choice, rng)
		if err != nil {
			return nil, err
		}
		return bob.FinishRound(round, tr)
	}
	if _, err := runOne(RoundCentroid); err != nil {
		return nil, err
	}
	for t := 0; t < len(modelB.SupportVectors); t++ {
		if _, err := runOne(RoundNormal); err != nil {
			return nil, fmt.Errorf("round 2 instance %d: %w", t, err)
		}
	}
	return runOne(RoundArea)
}
