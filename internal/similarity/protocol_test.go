package similarity_test

import (
	"crypto/rand"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/similarity"
	"repro/internal/svm"
)

func newPair(t *testing.T) (*similarity.Alice, *similarity.Bob) {
	t.Helper()
	wA := []float64{0.8, -0.5}
	wB := []float64{0.2, 0.9}
	alice, err := similarity.NewAlice(wA, 0.1, fastParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := similarity.NewBob(alice.Spec(), wB, -0.2)
	if err != nil {
		t.Fatal(err)
	}
	return alice, bob
}

func TestRoundOrderEnforced(t *testing.T) {
	alice, bob := newPair(t)
	if err := alice.HandleClearShare(bob.ClearShare()); err != nil {
		t.Fatal(err)
	}
	// Bob cannot start the area round first.
	if _, err := bob.StartRound(similarity.RoundArea, rand.Reader); err == nil {
		t.Fatal("area round before dot rounds should fail")
	}
	req, err := bob.StartRound(similarity.RoundCentroid, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Alice rejects a round-2 message while in round 1.
	if _, err := alice.HandleRequest(similarity.RoundNormal, req, rand.Reader); err == nil {
		t.Fatal("round mismatch should fail on Alice's side")
	}
	// Bob cannot start a second round with one in flight.
	if _, err := bob.StartRound(similarity.RoundCentroid, rand.Reader); err == nil {
		t.Fatal("double StartRound should fail")
	}
}

func TestAreaRoundRequiresClearShare(t *testing.T) {
	alice, bob := newPair(t)
	// Skip the clear share entirely and run rounds 1-2.
	for _, round := range []similarity.Round{similarity.RoundCentroid, similarity.RoundNormal} {
		req, err := bob.StartRound(round, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		setup, err := alice.HandleRequest(round, req, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		choice, err := bob.HandleSetup(round, setup, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := alice.HandleChoice(round, choice, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bob.FinishRound(round, tr); err != nil {
			t.Fatal(err)
		}
	}
	req, err := bob.StartRound(similarity.RoundArea, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.HandleRequest(similarity.RoundArea, req, rand.Reader); err == nil {
		t.Fatal("area round without a clear share should fail")
	}
}

func TestClearShareValidation(t *testing.T) {
	alice, _ := newPair(t)
	bad := []*similarity.ClearShare{
		nil,
		{NormM2: -1, NormW2: 1},
		{NormM2: 1, NormW2: 0},
		{NormM2: math.NaN(), NormW2: 1},
		{NormM2: 1, NormW2: math.Inf(1)},
	}
	for i, cs := range bad {
		if err := alice.HandleClearShare(cs); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestNewAliceValidation(t *testing.T) {
	// Degenerate model: boundary misses the box.
	if _, err := similarity.NewAlice([]float64{1, 1}, 10, fastParams(), rand.Reader); err == nil {
		t.Fatal("no-boundary model should fail")
	}
	// 1-D model.
	if _, err := similarity.NewAlice([]float64{1}, 0, fastParams(), rand.Reader); err == nil {
		t.Fatal("1-D model should fail")
	}
}

func TestNewBobValidation(t *testing.T) {
	alice, _ := newPair(t)
	spec := alice.Spec()
	if _, err := similarity.NewBob(spec, []float64{1}, 0); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := similarity.NewBob(spec, []float64{0, 0}, 0); err == nil {
		t.Fatal("zero normal should fail")
	}
	spec.FieldBits = 300
	if _, err := similarity.NewBob(spec, []float64{1, 1}, 0); err == nil {
		t.Fatal("bad spec field bits should fail")
	}
}

func TestFreshRandomizersPerEvaluation(t *testing.T) {
	// Two evaluations of the same pair should produce identical T (the
	// randomizers cancel exactly) — the randomness must not leak into the
	// result.
	wA := []float64{0.7, -0.3, 0.4}
	wB := []float64{-0.2, 0.8, 0.1}
	r1, err := similarity.EvaluatePrivate(wA, 0.1, wB, 0, fastParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := similarity.EvaluatePrivate(wA, 0.1, wB, 0, fastParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.TSquared-r2.TSquared) > 1e-9*(1+r1.TSquared) {
		t.Fatalf("randomizers leaked into the result: %g vs %g", r1.TSquared, r2.TSquared)
	}
}

// TestKernelRoundSequence: KernelBob enforces one RoundNormal instance per
// own support vector, and KernelAlice tracks the count via the clear share.
func TestKernelRoundSequence(t *testing.T) {
	// Covered end-to-end by TestKernelPrivateMatchesPlaintext; here check
	// the misuse paths.
	spec := similarity.KernelSpec{}
	if _, err := similarity.NewKernelBob(spec, nil); err == nil {
		t.Fatal("nil model should fail")
	}
}

func TestSetAreaScaleValidation(t *testing.T) {
	_, bob := newPair(t)
	_ = bob // linear Bob has no area scale; exercise the kernel one below.

	// Build a tiny kernel pair for the validation paths.
	alice, kbob := kernelPair(t)
	scale, err := alice.AnnounceAreaScale()
	if err != nil {
		t.Fatal(err)
	}
	if err := kbob.SetAreaScale(nil); err == nil {
		t.Fatal("nil scale should fail")
	}
	badScale := *scale
	badScale.TotalExp += 1
	if err := kbob.SetAreaScale(&badScale); err == nil {
		t.Fatal("inconsistent scale should fail")
	}
	if err := kbob.SetAreaScale(scale); err != nil {
		t.Fatal(err)
	}
}

func kernelPair(t *testing.T) (*similarity.KernelAlice, *similarity.KernelBob) {
	t.Helper()
	spec, err := datasetSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize, spec.TestSize = 40, 5
	trainA, _, err := generate(spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	trainB, _, err := generate(spec, 32)
	if err != nil {
		t.Fatal(err)
	}
	k := paperPoly(spec.Dim)
	modelA, err := trainSVM(trainA.X, trainA.Y, k, 10)
	if err != nil {
		t.Fatal(err)
	}
	modelB, err := trainSVM(trainB.X, trainB.Y, k, 10)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := similarity.NewKernelAlice(modelA, fastParams(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := similarity.NewKernelBob(alice.Spec(), modelB)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.HandleClearShare(bob.ClearShare()); err != nil {
		t.Fatal(err)
	}
	return alice, bob
}

func datasetSpec() (dataset.Spec, error) { return dataset.SpecByName("diabetes") }

func generate(spec dataset.Spec, seed uint64) (*dataset.Dataset, *dataset.Dataset, error) {
	return dataset.Generate(spec, dataset.Options{Seed: seed})
}

func paperPoly(dim int) svm.Kernel { return svm.PaperPolynomial(dim) }

func trainSVM(x [][]float64, y []int, k svm.Kernel, c float64) (*svm.Model, error) {
	return svm.Train(x, y, svm.Config{Kernel: k, C: c})
}
