package similarity

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
)

// Params fixes the protocol parameters of a private similarity evaluation.
type Params struct {
	// Metric is the public evaluation geometry.
	Metric Metric
	// MaskDegree is the security parameter q (default 2).
	MaskDegree int
	// CoverFactor is the decoy multiplier k (default 2).
	CoverFactor int
	// AmplifierBits bounds r_am and r_aw (default 64).
	AmplifierBits int
	// Group is the OT group (default ot.Group2048).
	Group ot.Group
	// FracBits is the fixed-point precision (default 24).
	FracBits uint
	// FieldBackend selects the field-arithmetic engine (zero value: the
	// math/big path). field.BackendLimb pins the field to 2^255−19, which
	// requires a FracBits small enough for the protocol to fit 255 bits.
	// Alice's choice is published in the Spec, so Bob follows it.
	FieldBackend field.Backend
	// Parallelism bounds each endpoint's local worker pool (<= 0 selects
	// GOMAXPROCS, 1 forces the serial path). Local performance knob only:
	// it is not part of the Spec, and protocol messages are bit-identical
	// at any degree given the same randomness stream.
	Parallelism int
}

func (p Params) withDefaults() Params {
	if p.Metric == (Metric{}) {
		p.Metric = DefaultMetric()
	}
	if p.MaskDegree == 0 {
		p.MaskDegree = 2
	}
	if p.CoverFactor == 0 {
		p.CoverFactor = 2
	}
	if p.AmplifierBits == 0 {
		p.AmplifierBits = ompe.DefaultAmplifierBits
	}
	if p.Group == nil {
		p.Group = ot.Group2048()
	}
	if p.FracBits == 0 {
		p.FracBits = 24
	}
	return p
}

// Spec is the public contract Alice publishes for an evaluation.
type Spec struct {
	Dim           int
	Metric        Metric
	MaskDegree    int
	CoverFactor   int
	AmplifierBits int
	FieldBits     int
	FracBits      uint
	GroupName     string
	// FieldBackend names the field-arithmetic engine for the evaluation
	// ("limb" or empty for math/big). Unlike classification there is no
	// per-session negotiation: Alice picks, the Spec tells Bob, and both
	// sides speak the matching wire form.
	FieldBackend string
	// WireCodec names the envelope codec granted for the rest of the
	// session ("binary" or empty for gob). The Spec itself always
	// crosses in gob; legacy gob decoders drop the unknown field and
	// stay on gob. See internal/transport.
	WireCodec string
}

// Round identifies the three OMPE rounds of §V-B.
type Round int

const (
	// RoundCentroid delivers x1 = r_am·(mA·mB) to Bob.
	RoundCentroid Round = iota + 1
	// RoundNormal delivers x2 = r_aw·(wA·wB) + r_b to Bob.
	RoundNormal
	// RoundArea delivers T²·S⁹ to Bob via Alice's two-variate degree-4
	// polynomial, Eq. (7).
	RoundArea
)

// scale exponents of the three rounds' results.
const (
	dotScaleExp  = 2 // S·S products of two base-scale encodings
	areaScaleExp = 9 // bracket1 (S⁴) · bracket2 (S⁵)
)

// ErrRound reports a protocol message for the wrong round.
var ErrRound = errors.New("similarity: round mismatch")

// specFor derives the public spec from params and dimension.
func specFor(dim int, p Params) (Spec, error) {
	p = p.withDefaults()
	if err := p.Metric.Validate(); err != nil {
		return Spec{}, err
	}
	if dim < 2 {
		return Spec{}, fmt.Errorf("similarity: need >= 2 dims, got %d", dim)
	}
	// Field sizing: rounds 1-2 need 2·fb + amplifier bits; round 3 needs
	// 9·fb. 40 value bits + slack cover the metric's magnitudes.
	need := max(2*int(p.FracBits)+p.AmplifierBits, areaScaleExp*int(p.FracBits)) + 40 + 24
	f, err := resolveField(p.FieldBackend, need)
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Dim:           dim,
		Metric:        p.Metric,
		MaskDegree:    p.MaskDegree,
		CoverFactor:   p.CoverFactor,
		AmplifierBits: p.AmplifierBits,
		FieldBits:     f.Bits(),
		FracBits:      p.FracBits,
		GroupName:     p.Group.Name(),
		FieldBackend:  backendSpecName(p.FieldBackend, f),
	}, nil
}

// resolveField sizes the protocol field for a backend: the limb engine
// computes in 2^255−19 only, everything else picks the smallest built-in
// prime with the needed headroom. A limb request that does not fit in
// 255 bits degrades to the math/big path rather than failing — the
// similarity rounds at default precision need ~280 bits, and a trainer
// serving both protocols with -field-backend limb should still answer
// similarity sessions (the spec then advertises the big engine, so the
// peer sizes its codec identically).
func resolveField(backend field.Backend, need int) (*field.Field, error) {
	if err := backend.Validate(); err != nil {
		return nil, err
	}
	if backend.OrDefault() == field.BackendLimb && need <= 255 {
		return field.NewFromHex(field.P25519Hex)
	}
	return field.ByBits(need)
}

// backendSpecName maps a backend to its Spec encoding (empty for the
// default math/big path, so legacy peers see a zero value). It reflects
// the engine actually in use: a limb request that resolveField degraded
// to a wider math/big field must not advertise limb, or the peer would
// run limb arithmetic over a non-25519 prime.
func backendSpecName(b field.Backend, f *field.Field) string {
	if b.OrDefault() == field.BackendLimb && f.Bits() == 255 {
		return string(field.BackendLimb)
	}
	return ""
}

// Codec reconstructs the protocol codec from the spec.
func (s Spec) Codec() (*fixedpoint.Codec, error) {
	f, err := field.ByBits(s.FieldBits)
	if err != nil {
		return nil, err
	}
	if f.Bits() != s.FieldBits {
		return nil, fmt.Errorf("similarity: no built-in field with exactly %d bits", s.FieldBits)
	}
	return fixedpoint.NewCodec(f, s.FracBits)
}

// ompeParams derives the OMPE parameters of one round.
func (s Spec) ompeParams(round Round) (ompe.Params, error) {
	group, err := ot.GroupByName(s.GroupName)
	if err != nil {
		return ompe.Params{}, err
	}
	codec, err := s.Codec()
	if err != nil {
		return ompe.Params{}, err
	}
	degree := 1
	if round == RoundArea {
		degree = 4
	}
	backend, err := field.ResolveBackend(s.FieldBackend)
	if err != nil {
		return ompe.Params{}, err
	}
	return ompe.Params{
		Field:         codec.Field(),
		PolyDegree:    degree,
		MaskDegree:    s.MaskDegree,
		CoverFactor:   s.CoverFactor,
		AmplifierBits: s.AmplifierBits,
		Group:         group,
		Backend:       backend,
	}, nil
}

// ClearShare carries the values Bob may send in the clear (§V-B: "Bob can
// send |mB|² and |wB|² to Alice directly" — vector norms reveal no single
// dimension).
type ClearShare struct {
	NormM2 float64
	NormW2 float64
}

// linEval is a bias-free linear evaluator c·z over the field.
type linEval struct {
	f   *field.Field
	c   field.Vec
	deg int
}

func (e *linEval) NumVars() int { return len(e.c) }

func (e *linEval) Eval(z field.Vec) (*big.Int, error) { return e.f.Dot(e.c, z) }

// Alice is the responder: she holds model A and answers Bob's three OMPE
// rounds. One Alice value serves a single evaluation (fresh r_am, r_aw,
// r_b per evaluation).
type Alice struct {
	spec  Spec
	codec *fixedpoint.Codec

	wA []float64
	mA []float64

	ram, raw, rb *big.Int
	clear        *ClearShare

	parallelism int

	round  Round
	sender *ompe.Sender
}

// NewAlice prepares the responder for one evaluation of the linear model
// (wA, bA) over the agreed geometry.
func NewAlice(wA []float64, bA float64, params Params, rng io.Reader) (*Alice, error) {
	params = params.withDefaults()
	spec, err := specFor(len(wA), params)
	if err != nil {
		return nil, err
	}
	codec, err := spec.Codec()
	if err != nil {
		return nil, err
	}
	boundarySpan := obs.Start(obs.PhaseSimBoundary)
	pts, err := LinearBoundaryPoints(wA, bA, spec.Metric)
	if err != nil {
		return nil, err
	}
	mA, err := Centroid(pts)
	if err != nil {
		return nil, err
	}
	boundarySpan.End()
	f := codec.Field()
	bound := new(big.Int).Lsh(big.NewInt(1), uint(spec.AmplifierBits))
	ram, err := f.RandBounded(rng, bound)
	if err != nil {
		return nil, err
	}
	raw, err := f.RandBounded(rng, bound)
	if err != nil {
		return nil, err
	}
	rb, err := f.Rand(rng)
	if err != nil {
		return nil, err
	}
	a := &Alice{
		spec:        spec,
		codec:       codec,
		wA:          append([]float64(nil), wA...),
		mA:          mA,
		ram:         ram,
		raw:         raw,
		rb:          rb,
		parallelism: params.Parallelism,
		round:       RoundCentroid,
	}
	return a, nil
}

// Spec returns the public contract for Bob.
func (a *Alice) Spec() Spec { return a.spec }

// HandleClearShare stores Bob's vector norms (must arrive before round 3).
func (a *Alice) HandleClearShare(cs *ClearShare) error {
	if cs == nil || cs.NormM2 < 0 || cs.NormW2 <= 0 ||
		math.IsNaN(cs.NormM2) || math.IsInf(cs.NormM2, 0) ||
		math.IsNaN(cs.NormW2) || math.IsInf(cs.NormW2, 0) {
		return errors.New("similarity: invalid clear share")
	}
	a.clear = cs
	return nil
}

// HandleRequest answers the OMPE request of the given round.
func (a *Alice) HandleRequest(round Round, req *ompe.EvalRequest, rng io.Reader) (*ot.BatchSetup, error) {
	if round != a.round {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, a.round)
	}
	span := obs.Start(obs.PhaseOfSimilarityRound(int(round)))
	defer span.End()
	params, err := a.spec.ompeParams(round)
	if err != nil {
		return nil, err
	}
	params.Parallelism = a.parallelism
	eval, opts, err := a.buildRound(round)
	if err != nil {
		return nil, err
	}
	sender, err := ompe.NewSender(params, eval, opts...)
	if err != nil {
		return nil, err
	}
	setup, err := sender.HandleRequest(req, rng)
	if err != nil {
		return nil, err
	}
	a.sender = sender
	return setup, nil
}

// HandleChoice finishes the OT of the current round.
func (a *Alice) HandleChoice(round Round, choice *ot.BatchChoice, rng io.Reader) (*ot.BatchTransfer, error) {
	if round != a.round || a.sender == nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, a.round)
	}
	tr, err := a.sender.HandleChoice(choice, rng)
	if err != nil {
		return nil, err
	}
	a.sender = nil
	a.round++
	obs.Add(obs.CtrSimilarityRounds, 1)
	return tr, nil
}

func (a *Alice) buildRound(round Round) (ompe.Evaluator, []ompe.SenderOption, error) {
	f := a.codec.Field()
	switch round {
	case RoundCentroid:
		enc, err := a.codec.EncodeVec(a.mA)
		if err != nil {
			return nil, nil, err
		}
		return &linEval{f: f, c: enc}, []ompe.SenderOption{ompe.WithAmplifier(a.ram)}, nil
	case RoundNormal:
		enc, err := a.codec.EncodeVec(a.wA)
		if err != nil {
			return nil, nil, err
		}
		return &linEval{f: f, c: enc},
			[]ompe.SenderOption{ompe.WithAmplifier(a.raw), ompe.WithShift(a.rb)}, nil
	case RoundArea:
		return a.buildAreaEvaluator()
	default:
		return nil, nil, fmt.Errorf("similarity: unknown round %d", round)
	}
}

// buildAreaEvaluator assembles Eq. (7):
//
//	T²(x1,x2) = [(c1 − 2·d1·x1)² + c2] · [c4/4 − (c3/4)·d2·(d3 + x2)²]
//
// with d1 = r_am⁻¹, d2 = r_aw⁻² (the paper writes r_aw⁻¹; the square is
// required for (d3+x2)² = r_aw²·(wA·wB)² to cancel), d3 = −r_b, and the ¼
// folded into c3, c4 to save a multiplication. Scale plan: x1 at S², c1 at
// S², c2 at S⁴, c3/4 at S, c4/4 at S⁵ → result at S⁹.
func (a *Alice) buildAreaEvaluator() (ompe.Evaluator, []ompe.SenderOption, error) {
	if a.clear == nil {
		return nil, nil, errors.New("similarity: clear share missing before area round")
	}
	f := a.codec.Field()
	normMA2 := 0.0
	for _, v := range a.mA {
		normMA2 += v * v
	}
	normWA2 := 0.0
	for _, v := range a.wA {
		normWA2 += v * v
	}
	if normWA2 == 0 {
		return nil, nil, errors.New("similarity: zero normal vector")
	}
	m := a.spec.Metric
	s0 := math.Sin(m.Theta0)

	encC1, err := a.codec.EncodeAtScale(normMA2+a.clear.NormM2, a.codec.ScalePow(dotScaleExp))
	if err != nil {
		return nil, nil, err
	}
	encC2, err := a.codec.EncodeAtScale(math.Pow(m.L0, 4), a.codec.ScalePow(4))
	if err != nil {
		return nil, nil, err
	}
	encC3, err := a.codec.EncodeAtScale(0.25/(normWA2*a.clear.NormW2), a.codec.ScalePow(1))
	if err != nil {
		return nil, nil, err
	}
	encC4, err := a.codec.EncodeAtScale(0.25*(1+s0*s0), a.codec.ScalePow(5))
	if err != nil {
		return nil, nil, err
	}
	d1, err := f.Inv(a.ram)
	if err != nil {
		return nil, nil, err
	}
	rawSq := f.Mul(a.raw, a.raw)
	d2, err := f.Inv(rawSq)
	if err != nil {
		return nil, nil, err
	}
	d3 := f.Neg(a.rb)
	two := big.NewInt(2)

	eval := ompe.EvaluatorFunc(2, func(z field.Vec) (*big.Int, error) {
		if len(z) != 2 {
			return nil, fmt.Errorf("similarity: area round arity %d", len(z))
		}
		// bracket1 = (c1 − 2·d1·z1)² + c2, at S⁴.
		t1 := f.Sub(encC1, f.Mul(two, f.Mul(d1, z[0])))
		bracket1 := f.Add(f.Mul(t1, t1), encC2)
		// bracket2 = c4/4 − (c3/4)·d2·(d3+z2)², at S⁵.
		t2 := f.Add(d3, z[1])
		bracket2 := f.Sub(encC4, f.Mul(encC3, f.Mul(d2, f.Mul(t2, t2))))
		return f.Mul(bracket1, bracket2), nil
	})
	one := big.NewInt(1)
	return eval, []ompe.SenderOption{ompe.WithAmplifier(one)}, nil
}

// Bob is the requester: he holds model B and learns T.
type Bob struct {
	spec  Spec
	codec *fixedpoint.Codec

	wB []float64
	mB []float64

	normM2, normW2 float64

	parallelism int

	round    Round
	receiver *ompe.Receiver
	x1, x2   *big.Int
}

// NewBob prepares the requester from Alice's public spec and Bob's own
// linear model (wB, bB).
func NewBob(spec Spec, wB []float64, bB float64) (*Bob, error) {
	if len(wB) != spec.Dim {
		return nil, fmt.Errorf("similarity: model dim %d, spec dim %d", len(wB), spec.Dim)
	}
	codec, err := spec.Codec()
	if err != nil {
		return nil, err
	}
	boundarySpan := obs.Start(obs.PhaseSimBoundary)
	pts, err := LinearBoundaryPoints(wB, bB, spec.Metric)
	if err != nil {
		return nil, err
	}
	mB, err := Centroid(pts)
	if err != nil {
		return nil, err
	}
	boundarySpan.End()
	normM2, normW2 := 0.0, 0.0
	for _, v := range mB {
		normM2 += v * v
	}
	for _, v := range wB {
		normW2 += v * v
	}
	if normW2 == 0 {
		return nil, errors.New("similarity: zero normal vector")
	}
	return &Bob{
		spec:   spec,
		codec:  codec,
		wB:     append([]float64(nil), wB...),
		mB:     mB,
		normM2: normM2,
		normW2: normW2,
		round:  RoundCentroid,
	}, nil
}

// ClearShare returns the values Bob sends Alice in the clear.
func (b *Bob) ClearShare() *ClearShare {
	return &ClearShare{NormM2: b.normM2, NormW2: b.normW2}
}

// SetParallelism bounds Bob's local worker pool (<= 0 selects GOMAXPROCS,
// 1 forces the serial path). Purely local: it does not change any protocol
// message given the same randomness stream.
func (b *Bob) SetParallelism(n int) { b.parallelism = n }

// StartRound opens the OMPE receiver for the given round and returns the
// evaluation request.
func (b *Bob) StartRound(round Round, rng io.Reader) (*ompe.EvalRequest, error) {
	if round != b.round || b.receiver != nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, b.round)
	}
	var input field.Vec
	switch round {
	case RoundCentroid:
		enc, err := b.codec.EncodeVec(b.mB)
		if err != nil {
			return nil, err
		}
		input = enc
	case RoundNormal:
		enc, err := b.codec.EncodeVec(b.wB)
		if err != nil {
			return nil, err
		}
		input = enc
	case RoundArea:
		if b.x1 == nil || b.x2 == nil {
			return nil, errors.New("similarity: area round before dot rounds")
		}
		input = field.Vec{b.x1, b.x2}
	default:
		return nil, fmt.Errorf("similarity: unknown round %d", round)
	}
	params, err := b.spec.ompeParams(round)
	if err != nil {
		return nil, err
	}
	params.Parallelism = b.parallelism
	receiver, req, err := ompe.NewReceiver(params, input, rng)
	if err != nil {
		return nil, err
	}
	b.receiver = receiver
	return req, nil
}

// HandleSetup advances the OT of the current round.
func (b *Bob) HandleSetup(round Round, setup *ot.BatchSetup, rng io.Reader) (*ot.BatchChoice, error) {
	if round != b.round || b.receiver == nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, b.round)
	}
	return b.receiver.HandleSetup(setup, rng)
}

// FinishRound completes the current round. After RoundArea it returns the
// final result; earlier rounds return nil.
func (b *Bob) FinishRound(round Round, tr *ot.BatchTransfer) (*Result, error) {
	if round != b.round || b.receiver == nil {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrRound, round, b.round)
	}
	value, err := b.receiver.Finish(tr)
	if err != nil {
		return nil, err
	}
	b.receiver = nil
	switch round {
	case RoundCentroid:
		b.x1 = value
	case RoundNormal:
		b.x2 = value
	case RoundArea:
		t2, err := b.codec.DecodeAtScale(value, b.codec.ScalePow(areaScaleExp))
		if err != nil {
			return nil, err
		}
		if t2 < 0 {
			// Fixed-point rounding can nick slightly below zero when the
			// models are near-identical; clamp.
			t2 = 0
		}
		b.round++
		return &Result{T: math.Sqrt(t2), TSquared: t2}, nil
	}
	b.round++
	return nil, nil
}

// EvaluatePrivate runs a complete in-memory private evaluation between two
// linear models and returns Bob's result. Distributed deployments drive
// Alice and Bob over a transport instead.
func EvaluatePrivate(wA []float64, bA float64, wB []float64, bB float64, params Params, rng io.Reader) (*Result, error) {
	alice, err := NewAlice(wA, bA, params, rng)
	if err != nil {
		return nil, err
	}
	bob, err := NewBob(alice.Spec(), wB, bB)
	if err != nil {
		return nil, err
	}
	bob.SetParallelism(params.Parallelism)
	if err := alice.HandleClearShare(bob.ClearShare()); err != nil {
		return nil, err
	}
	for _, round := range []Round{RoundCentroid, RoundNormal, RoundArea} {
		req, err := bob.StartRound(round, rng)
		if err != nil {
			return nil, err
		}
		setup, err := alice.HandleRequest(round, req, rng)
		if err != nil {
			return nil, err
		}
		choice, err := bob.HandleSetup(round, setup, rng)
		if err != nil {
			return nil, err
		}
		tr, err := alice.HandleChoice(round, choice, rng)
		if err != nil {
			return nil, err
		}
		result, err := bob.FinishRound(round, tr)
		if err != nil {
			return nil, err
		}
		if round == RoundArea {
			return result, nil
		}
	}
	return nil, errors.New("similarity: protocol did not complete")
}
