package similarity

import (
	"io"

	"repro/internal/wire"
)

// Binary wire encodings for the similarity message types. Spec and
// KernelSpec normally cross in gob (they carry the codec grant) but
// implement the binary form too so transcripts and future versions can
// frame them natively.

// EncodeWire implements the wire codec.
func (s *Spec) EncodeWire(w *wire.Writer) {
	w.Int(s.Dim)
	s.Metric.EncodeWire(w)
	w.Int(s.MaskDegree)
	w.Int(s.CoverFactor)
	w.Int(s.AmplifierBits)
	w.Int(s.FieldBits)
	w.Uint(s.FracBits)
	w.String(s.GroupName)
	w.String(s.FieldBackend)
	w.String(s.WireCodec)
}

// DecodeWire implements the wire codec.
func (s *Spec) DecodeWire(r *wire.Reader) {
	s.Dim = r.Int()
	s.Metric.DecodeWire(r)
	s.MaskDegree = r.Int()
	s.CoverFactor = r.Int()
	s.AmplifierBits = r.Int()
	s.FieldBits = r.Int()
	s.FracBits = r.Uint()
	s.GroupName = r.String()
	s.FieldBackend = r.String()
	s.WireCodec = r.String()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Spec) MarshalBinary() ([]byte, error) { return wire.Marshal(s) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Spec) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, s) }

// WriteTo implements io.WriterTo.
func (s *Spec) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, s) }

// ReadFrom implements io.ReaderFrom.
func (s *Spec) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, s) }

// EncodeWire implements the wire codec.
func (m *Metric) EncodeWire(w *wire.Writer) {
	w.Float64(m.Alpha)
	w.Float64(m.Beta)
	w.Float64(m.L0)
	w.Float64(m.Theta0)
}

// DecodeWire implements the wire codec.
func (m *Metric) DecodeWire(r *wire.Reader) {
	m.Alpha = r.Float64()
	m.Beta = r.Float64()
	m.L0 = r.Float64()
	m.Theta0 = r.Float64()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Metric) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Metric) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *Metric) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *Metric) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (c *ClearShare) EncodeWire(w *wire.Writer) {
	w.Float64(c.NormM2)
	w.Float64(c.NormW2)
}

// DecodeWire implements the wire codec.
func (c *ClearShare) DecodeWire(r *wire.Reader) {
	c.NormM2 = r.Float64()
	c.NormW2 = r.Float64()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *ClearShare) MarshalBinary() ([]byte, error) { return wire.Marshal(c) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *ClearShare) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, c) }

// WriteTo implements io.WriterTo.
func (c *ClearShare) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, c) }

// ReadFrom implements io.ReaderFrom.
func (c *ClearShare) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, c) }

// EncodeWire implements the wire codec.
func (s *KernelSpec) EncodeWire(w *wire.Writer) {
	s.Spec.EncodeWire(w)
	s.Kernel.EncodeWire(w)
}

// DecodeWire implements the wire codec.
func (s *KernelSpec) DecodeWire(r *wire.Reader) {
	s.Spec.DecodeWire(r)
	s.Kernel.DecodeWire(r)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *KernelSpec) MarshalBinary() ([]byte, error) { return wire.Marshal(s) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *KernelSpec) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, s) }

// WriteTo implements io.WriterTo.
func (s *KernelSpec) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, s) }

// ReadFrom implements io.ReaderFrom.
func (s *KernelSpec) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, s) }

// EncodeWire implements the wire codec.
func (c *KernelClearShare) EncodeWire(w *wire.Writer) {
	w.Float64(c.KmBmB)
	w.Float64(c.KwBwB)
	w.Int(c.NumSupport)
	w.BigInt(c.AlphaSum)
}

// DecodeWire implements the wire codec.
func (c *KernelClearShare) DecodeWire(r *wire.Reader) {
	c.KmBmB = r.Float64()
	c.KwBwB = r.Float64()
	c.NumSupport = r.Int()
	c.AlphaSum = r.BigInt()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *KernelClearShare) MarshalBinary() ([]byte, error) { return wire.Marshal(c) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *KernelClearShare) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, c) }

// WriteTo implements io.WriterTo.
func (c *KernelClearShare) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, c) }

// ReadFrom implements io.ReaderFrom.
func (c *KernelClearShare) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, c) }

// EncodeWire implements the wire codec.
func (a *AreaScale) EncodeWire(w *wire.Writer) {
	w.Uint(a.C3Exp)
	w.Uint(a.TotalExp)
}

// DecodeWire implements the wire codec.
func (a *AreaScale) DecodeWire(r *wire.Reader) {
	a.C3Exp = r.Uint()
	a.TotalExp = r.Uint()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *AreaScale) MarshalBinary() ([]byte, error) { return wire.Marshal(a) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *AreaScale) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, a) }

// WriteTo implements io.WriterTo.
func (a *AreaScale) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, a) }

// ReadFrom implements io.ReaderFrom.
func (a *AreaScale) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, a) }
