// Package attack implements the model-extraction attacks of the paper's
// privacy analysis (§VI-A): a colluding client pool tries to estimate the
// trainer's linear decision function from classification results.
//
//   - With the protocol's fresh per-query amplifier r_a, every returned
//     value carries an independent unknown positive scale; regression over
//     collected (sample, value) pairs yields estimates that "keep
//     rambling" (Fig. 5).
//   - Without the amplifier (the InsecureUnitAmplifier knob), n+1 exact
//     decision values determine the model by solving one linear system —
//     the algebraic form of the paper's tangent-circle construction
//     (Fig. 6).
package attack

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"repro/internal/classify"
)

// ErrSingular reports a linear system without a unique solution.
var ErrSingular = errors.New("attack: singular system")

// EstimateLinear fits ŵ, b̂ by least squares on (sample, value) pairs:
// the attack a colluding client pool mounts using the values it received.
func EstimateLinear(samples [][]float64, values []float64) (w []float64, b float64, err error) {
	if len(samples) == 0 || len(samples) != len(values) {
		return nil, 0, fmt.Errorf("attack: %d samples, %d values", len(samples), len(values))
	}
	n := len(samples[0])
	cols := n + 1
	// Normal equations AᵀA·θ = Aᵀv with A = [samples | 1].
	ata := make([][]float64, cols)
	for i := range ata {
		ata[i] = make([]float64, cols)
	}
	atv := make([]float64, cols)
	row := make([]float64, cols)
	for k, s := range samples {
		if len(s) != n {
			return nil, 0, fmt.Errorf("attack: ragged sample %d", k)
		}
		copy(row, s)
		row[n] = 1
		for i := 0; i < cols; i++ {
			atv[i] += row[i] * values[k]
			for j := 0; j < cols; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	// Ridge regularization keeps underdetermined collusion sets (k <= n)
	// solvable, mirroring an attacker's best effort.
	for i := 0; i < cols; i++ {
		ata[i][i] += 1e-9
	}
	theta, err := solve(ata, atv)
	if err != nil {
		return nil, 0, err
	}
	return theta[:n], theta[n], nil
}

// RecoverExact solves the square system d(t_i) = w·t_i + b from exactly
// n+1 independent (sample, value) pairs — the attack that succeeds when
// values are not amplified.
func RecoverExact(samples [][]float64, values []float64) (w []float64, b float64, err error) {
	if len(samples) == 0 {
		return nil, 0, errors.New("attack: no samples")
	}
	n := len(samples[0])
	if len(samples) != n+1 || len(values) != n+1 {
		return nil, 0, fmt.Errorf("attack: need exactly %d pairs, got %d", n+1, len(samples))
	}
	a := make([][]float64, n+1)
	rhs := make([]float64, n+1)
	for i, s := range samples {
		a[i] = make([]float64, n+1)
		copy(a[i], s)
		a[i][n] = 1
		rhs[i] = values[i]
	}
	theta, err := solve(a, rhs)
	if err != nil {
		return nil, 0, err
	}
	return theta[:n], theta[n], nil
}

// solve runs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		acc := m[i][n]
		for j := i + 1; j < n; j++ {
			acc -= m[i][j] * x[j]
		}
		x[i] = acc / m[i][i]
	}
	return x, nil
}

// AngleError returns the angle in radians between the true and estimated
// normal directions, folded to [0, π/2] (a hyperplane is direction-
// agnostic up to sign).
func AngleError(wTrue, wEst []float64) (float64, error) {
	if len(wTrue) != len(wEst) {
		return 0, fmt.Errorf("attack: dim %d vs %d", len(wTrue), len(wEst))
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range wTrue {
		dot += wTrue[i] * wEst[i]
		na += wTrue[i] * wTrue[i]
		nb += wEst[i] * wEst[i]
	}
	if na == 0 || nb == 0 {
		return math.Pi / 2, nil
	}
	c := math.Abs(dot) / math.Sqrt(na*nb)
	if c > 1 {
		c = 1
	}
	return math.Acos(c), nil
}

// OffsetError returns |b̂/‖ŵ‖ − b/‖w‖|, the difference of the hyperplanes'
// signed distances from the origin under matched orientation.
func OffsetError(wTrue []float64, bTrue float64, wEst []float64, bEst float64) (float64, error) {
	if len(wTrue) != len(wEst) {
		return 0, fmt.Errorf("attack: dim %d vs %d", len(wTrue), len(wEst))
	}
	nt, ne, dot := 0.0, 0.0, 0.0
	for i := range wTrue {
		nt += wTrue[i] * wTrue[i]
		ne += wEst[i] * wEst[i]
		dot += wTrue[i] * wEst[i]
	}
	if nt == 0 || ne == 0 {
		return math.Inf(1), nil
	}
	sign := 1.0
	if dot < 0 {
		sign = -1
	}
	return math.Abs(sign*bEst/math.Sqrt(ne) - bTrue/math.Sqrt(nt)), nil
}

// CollusionResult reports one model-estimation attempt.
type CollusionResult struct {
	// NumSamples is the collusion-pool size.
	NumSamples int
	// AngleErrorDeg is the direction estimation error in degrees.
	AngleErrorDeg float64
	// OffsetError is the hyperplane-offset estimation error.
	OffsetError float64
}

// RunCollusion mounts the Fig. 5 attack: classify numSamples random
// points through the trainer, collect the (amplified) values, regress, and
// report how far the estimate lands from the true model (wTrue, bTrue).
func RunCollusion(trainer *classify.Trainer, wTrue []float64, bTrue float64, numSamples int, protoRNG io.Reader, sampleRNG *rand.Rand) (*CollusionResult, error) {
	if numSamples < 2 {
		return nil, fmt.Errorf("attack: need >= 2 samples, got %d", numSamples)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		return nil, err
	}
	dim := len(wTrue)
	samples := make([][]float64, numSamples)
	values := make([]float64, numSamples)
	for i := 0; i < numSamples; i++ {
		s := make([]float64, dim)
		for j := range s {
			s[j] = sampleRNG.Float64()*2 - 1
		}
		v, err := classifyValue(trainer, client, s, protoRNG)
		if err != nil {
			return nil, err
		}
		samples[i] = s
		values[i] = v
	}
	wEst, bEst, err := EstimateLinear(samples, values)
	if err != nil {
		return nil, err
	}
	angle, err := AngleError(wTrue, wEst)
	if err != nil {
		return nil, err
	}
	offset, err := OffsetError(wTrue, bTrue, wEst, bEst)
	if err != nil {
		return nil, err
	}
	return &CollusionResult{
		NumSamples:    numSamples,
		AngleErrorDeg: angle * 180 / math.Pi,
		OffsetError:   offset,
	}, nil
}

// classifyValue runs one protocol session and returns the client's decoded
// view (the amplified decision value).
func classifyValue(trainer *classify.Trainer, client *classify.Client, sample []float64, rng io.Reader) (float64, error) {
	sender, err := trainer.NewSession()
	if err != nil {
		return 0, err
	}
	receiver, req, err := client.NewSession(sample, rng)
	if err != nil {
		return 0, err
	}
	setup, err := sender.HandleRequest(req, rng)
	if err != nil {
		return 0, err
	}
	choice, err := receiver.HandleSetup(setup, rng)
	if err != nil {
		return 0, err
	}
	tr, err := sender.HandleChoice(choice, rng)
	if err != nil {
		return 0, err
	}
	result, err := receiver.Finish(tr)
	if err != nil {
		return 0, err
	}
	return client.Value(result)
}

// ClassifyValue exposes the client's decoded view for experiments.
func ClassifyValue(trainer *classify.Trainer, client *classify.Client, sample []float64, rng io.Reader) (float64, error) {
	return classifyValue(trainer, client, sample, rng)
}
