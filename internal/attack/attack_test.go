package attack_test

import (
	"crypto/rand"
	"math"
	mrand "math/rand/v2"
	"testing"

	"repro/internal/attack"
	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/svm"
)

func trainLine(t *testing.T) (*svm.Model, []float64) {
	t.Helper()
	rng := mrand.New(mrand.NewPCG(2, 3))
	wTrue := []float64{0.6, -0.8}
	var x [][]float64
	var y []int
	for len(x) < 300 {
		p := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		s := wTrue[0]*p[0] + wTrue[1]*p[1] + 0.1
		if math.Abs(s) < 0.05 {
			continue
		}
		x = append(x, p)
		if s > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	w, err := model.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	return model, w
}

func TestRecoverExactFromTrueValues(t *testing.T) {
	w := []float64{1.5, -2.5}
	b := 0.75
	samples := [][]float64{{0.1, 0.2}, {-0.5, 0.9}, {0.7, -0.3}}
	values := make([]float64, 3)
	for i, s := range samples {
		values[i] = w[0]*s[0] + w[1]*s[1] + b
	}
	wEst, bEst, err := attack.RecoverExact(samples, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wEst[0]-w[0]) > 1e-9 || math.Abs(wEst[1]-w[1]) > 1e-9 || math.Abs(bEst-b) > 1e-9 {
		t.Fatalf("recovered %v, %v", wEst, bEst)
	}
}

func TestRecoverExactValidation(t *testing.T) {
	if _, _, err := attack.RecoverExact(nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	// Two samples for a 2-D model (need 3).
	if _, _, err := attack.RecoverExact([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err == nil {
		t.Fatal("wrong count should fail")
	}
	// Singular: three collinear duplicate samples.
	s := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	if _, _, err := attack.RecoverExact(s, []float64{1, 1, 1}); err == nil {
		t.Fatal("singular system should fail")
	}
}

func TestEstimateLinearOnCleanValues(t *testing.T) {
	rng := mrand.New(mrand.NewPCG(5, 8))
	w := []float64{0.3, 0.9, -0.2}
	b := -0.4
	var samples [][]float64
	var values []float64
	for i := 0; i < 50; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		samples = append(samples, s)
		values = append(values, w[0]*s[0]+w[1]*s[1]+w[2]*s[2]+b)
	}
	wEst, bEst, err := attack.EstimateLinear(samples, values)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if math.Abs(wEst[j]-w[j]) > 1e-6 {
			t.Fatalf("w[%d] = %v, want %v", j, wEst[j], w[j])
		}
	}
	if math.Abs(bEst-b) > 1e-6 {
		t.Fatalf("b = %v, want %v", bEst, b)
	}
}

func TestAngleError(t *testing.T) {
	a := []float64{1, 0}
	cases := []struct {
		b    []float64
		want float64
	}{
		{[]float64{2, 0}, 0},
		{[]float64{-3, 0}, 0}, // sign-agnostic
		{[]float64{0, 1}, math.Pi / 2},
		{[]float64{1, 1}, math.Pi / 4},
	}
	for _, tc := range cases {
		got, err := attack.AngleError(a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("angle(%v) = %v, want %v", tc.b, got, tc.want)
		}
	}
	if _, err := attack.AngleError(a, []float64{1}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestOffsetError(t *testing.T) {
	w := []float64{3, 4} // norm 5
	got, err := attack.OffsetError(w, 5, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("identical models offset error %v", got)
	}
	// Flipped estimate with matching plane: w→−w, b→−b is the same plane.
	neg := []float64{-3, -4}
	got, err = attack.OffsetError(w, 5, neg, -5)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-12 {
		t.Fatalf("sign-flipped same plane: offset error %v", got)
	}
}

// TestUnamplifiedProtocolLeaksModel is the Fig. 6 integration check: three
// protocol outputs with a unit amplifier recover the model almost exactly.
func TestUnamplifiedProtocolLeaksModel(t *testing.T) {
	model, w := trainLine(t)
	trainer, err := classify.NewTrainer(model, classify.Params{
		Group:                 ot.Group512Test(),
		InsecureUnitAmplifier: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	samples := [][]float64{{0.2, 0.5}, {-0.4, 0.1}, {0.7, -0.6}}
	values := make([]float64, len(samples))
	for i, s := range samples {
		v, err := attack.ClassifyValue(trainer, client, s, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		values[i] = v
	}
	wEst, _, err := attack.RecoverExact(samples, values)
	if err != nil {
		t.Fatal(err)
	}
	angle, err := attack.AngleError(w, wEst)
	if err != nil {
		t.Fatal(err)
	}
	if angle > 1e-4 {
		t.Fatalf("unamplified protocol should leak the direction; angle error %v rad", angle)
	}
}

// TestAmplifiedProtocolDefeatsExactRecovery: the same attack with fresh
// amplifiers must NOT recover the direction.
func TestAmplifiedProtocolDefeatsExactRecovery(t *testing.T) {
	model, w := trainLine(t)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	// Average over several attempts: a lucky draw could land close once.
	var total float64
	const attempts = 5
	rng := mrand.New(mrand.NewPCG(11, 12))
	for a := 0; a < attempts; a++ {
		samples := make([][]float64, 3)
		values := make([]float64, 3)
		for i := range samples {
			s := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			v, err := attack.ClassifyValue(trainer, client, s, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			samples[i] = s
			values[i] = v
		}
		wEst, _, err := attack.RecoverExact(samples, values)
		if err != nil {
			continue // singular garbage counts as failure for the attacker
		}
		angle, err := attack.AngleError(w, wEst)
		if err != nil {
			t.Fatal(err)
		}
		total += angle * 180 / math.Pi
	}
	if avg := total / attempts; avg < 5 {
		t.Fatalf("amplified protocol leaked direction: mean angle error %.2f°", avg)
	}
}

func TestRunCollusion(t *testing.T) {
	model, w := trainLine(t)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := attack.RunCollusion(trainer, w, model.Bias, 8, rand.Reader, mrand.New(mrand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSamples != 8 {
		t.Fatalf("samples = %d", res.NumSamples)
	}
	if res.AngleErrorDeg < 0 || res.AngleErrorDeg > 90 {
		t.Fatalf("angle error out of range: %v", res.AngleErrorDeg)
	}
	if _, err := attack.RunCollusion(trainer, w, model.Bias, 1, rand.Reader, mrand.New(mrand.NewPCG(3, 4))); err == nil {
		t.Fatal("k=1 should fail")
	}
}
