package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/mvpoly"
	"repro/internal/ompe"
	"repro/internal/similarity"
	"repro/internal/svm"
)

// Fig9Row is one x-position of Fig. 9: classification time versus data
// size for the four series (linear/nonlinear × original/private).
type Fig9Row struct {
	Dataset  string
	TestSize int
	// DataKB is the paper's horizontal axis: classification data volume
	// (samples × dims × 8 bytes), in KB.
	DataKB float64
	// Totals are the projected cost of classifying the whole test set,
	// measured as per-query cost on MeasuredQueries samples × TestSize.
	LinearOriginal    time.Duration
	NonlinearOriginal time.Duration
	LinearPrivate     time.Duration
	NonlinearPrivate  time.Duration
	// LinearPrivateFast is the IKNP fast-session series (extension):
	// per-query cost with the base phase amortized away.
	LinearPrivateFast time.Duration
	MeasuredQueries   int
}

// Fig9 reproduces "Computational Cost Comparison of Classification" over
// the a1a–a9a series. The expected shape: all four series grow linearly
// with data size; the private schemes cost a constant factor more than
// the originals (the paper reports ≈4× on its C++/LIBSVM substrate), and
// nonlinear costs more than linear.
func Fig9(opts Options) ([]Fig9Row, error) {
	opts = opts.withDefaults()
	names := []string{"a1a", "a2a", "a3a", "a4a", "a5a", "a6a", "a7a", "a8a", "a9a"}
	if opts.Quick {
		names = []string{"a1a", "a3a", "a5a", "a7a", "a9a"}
	}
	measured := 20
	if opts.Quick {
		measured = 6
	}

	var rows []Fig9Row
	for _, name := range names {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			return nil, err
		}
		row, err := fig9Row(spec, opts, measured)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func fig9Row(spec dataset.Spec, opts Options, measured int) (*Fig9Row, error) {
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed, FullScale: opts.FullScale})
	if err != nil {
		return nil, err
	}
	linModel, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		return nil, err
	}
	polyModel, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.PaperPolynomial(spec.Dim), C: spec.PolyC})
	if err != nil {
		return nil, err
	}
	if measured > test.Len() {
		measured = test.Len()
	}
	samples := test.X[:measured]

	perQuery := func(f func(s []float64) error) (time.Duration, error) {
		start := time.Now()
		for _, s := range samples {
			if err := f(s); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(len(samples)), nil
	}

	linOrig, err := perQuery(func(s []float64) error { _, err := linModel.Classify(s); return err })
	if err != nil {
		return nil, err
	}
	polyOrig, err := perQuery(func(s []float64) error { _, err := polyModel.Classify(s); return err })
	if err != nil {
		return nil, err
	}

	linTrainer, err := classify.NewTrainer(linModel, classify.Params{Group: opts.Group, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	linClient, err := classify.NewClient(linTrainer.Spec())
	if err != nil {
		return nil, err
	}
	linClient.SetParallelism(opts.Parallelism)
	linPriv, err := perQuery(func(s []float64) error {
		_, err := classify.ClassifyWith(linTrainer, linClient, s, opts.Rand)
		return err
	})
	if err != nil {
		return nil, err
	}

	polyTrainer, err := classify.NewTrainer(polyModel, classify.Params{Group: opts.Group, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	polyClient, err := classify.NewClient(polyTrainer.Spec())
	if err != nil {
		return nil, err
	}
	polyClient.SetParallelism(opts.Parallelism)
	polyPriv, err := perQuery(func(s []float64) error {
		_, err := classify.ClassifyWith(polyTrainer, polyClient, s, opts.Rand)
		return err
	})
	if err != nil {
		return nil, err
	}

	fastTrainer, fastClient, err := classify.NewFastPair(linTrainer, opts.Rand)
	if err != nil {
		return nil, err
	}
	linFast, err := perQuery(func(s []float64) error {
		_, err := classify.ClassifyFast(fastTrainer, fastClient, s, opts.Rand)
		return err
	})
	if err != nil {
		return nil, err
	}

	size := spec.PaperTestSize
	if !opts.FullScale {
		size = test.Len()
	}
	n := time.Duration(size)
	return &Fig9Row{
		Dataset:           spec.Name,
		TestSize:          size,
		DataKB:            float64(size*spec.Dim*8) / 1024,
		LinearOriginal:    linOrig * n,
		NonlinearOriginal: polyOrig * n,
		LinearPrivate:     linPriv * n,
		NonlinearPrivate:  polyPriv * n,
		LinearPrivateFast: linFast * n,
		MeasuredQueries:   len(samples),
	}, nil
}

// Fig10Row is one x-position of Fig. 10: similarity-evaluation time
// versus hyperplane dimension, private vs ordinary.
//
// Private is the full wall-clock protocol (dominated by the OT group
// arithmetic, nearly flat in n). The paper's nanosecond-scale Fig. 10 can
// only have measured the masking/metric arithmetic itself, so PrivateCore
// times exactly that (cover-polynomial generation + masked evaluations +
// interpolation for all three rounds, no OT) and OrdinaryCore times the
// clear metric arithmetic given precomputed centroids — those two series
// reproduce the paper's shape: per-dimension cost of the private scheme
// grows much faster than the ordinary scheme's single multiplication.
type Fig10Row struct {
	Dim          int
	Private      time.Duration
	PrivateCore  time.Duration
	Ordinary     time.Duration
	OrdinaryCore time.Duration
}

// Fig10Dims are the paper's dimensions.
var Fig10Dims = []int{2, 3, 4, 5, 6, 7, 8}

// Fig10 reproduces "Computational Cost Comparison of Similarity
// Evaluation": random linear models per dimension, timing one private
// evaluation against one ordinary (clear-text) evaluation. Expected
// shape: the private cost grows much faster with dimension (each added
// dimension adds cover polynomials), while the ordinary metric stays
// cheap.
func Fig10(opts Options, dims []int) ([]Fig10Row, error) {
	opts = opts.withDefaults()
	if len(dims) == 0 {
		dims = Fig10Dims
	}
	reps := 3
	if opts.Quick {
		reps = 1
	}
	params := similarity.Params{Group: opts.Group, Parallelism: opts.Parallelism}
	metric := similarity.DefaultMetric()
	var rows []Fig10Row
	for _, dim := range dims {
		srng := opts.sampleRNG(uint64(dim) * 7919)
		wA, bA := randomHyperplane(srng, dim)
		wB, bB := randomHyperplane(srng, dim)

		var privTotal, ordTotal time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := similarity.EvaluatePrivate(wA, bA, wB, bB, params, opts.Rand); err != nil {
				return nil, fmt.Errorf("fig10 dim=%d: %w", dim, err)
			}
			privTotal += time.Since(start)

			start = time.Now()
			if _, err := similarity.EvaluateLinear(wA, bA, wB, bB, metric); err != nil {
				return nil, fmt.Errorf("fig10 dim=%d ordinary: %w", dim, err)
			}
			ordTotal += time.Since(start)
		}
		privCore, err := privateMaskingCore(dim, opts)
		if err != nil {
			return nil, err
		}
		ordCore, err := ordinaryCore(wA, bA, wB, bB, metric)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Dim:          dim,
			Private:      privTotal / time.Duration(reps),
			PrivateCore:  privCore,
			Ordinary:     ordTotal / time.Duration(reps),
			OrdinaryCore: ordCore,
		})
	}
	return rows, nil
}

// ordinaryCore times the clear-text metric arithmetic with centroids
// precomputed (the per-dimension work of the paper's "ordinary" series).
func ordinaryCore(wA []float64, bA float64, wB []float64, bB float64, metric similarity.Metric) (time.Duration, error) {
	ptsA, err := similarity.LinearBoundaryPoints(wA, bA, metric)
	if err != nil {
		return 0, err
	}
	ptsB, err := similarity.LinearBoundaryPoints(wB, bB, metric)
	if err != nil {
		return 0, err
	}
	mA, err := similarity.Centroid(ptsA)
	if err != nil {
		return 0, err
	}
	mB, err := similarity.Centroid(ptsB)
	if err != nil {
		return 0, err
	}
	const iters = 10000
	start := time.Now()
	var sink float64
	for i := 0; i < iters; i++ {
		l2 := 0.0
		for j := range mA {
			d := mA[j] - mB[j]
			l2 += d * d
		}
		cosT, err := similarity.CosineSimilarity(wA, wB)
		if err != nil {
			return 0, err
		}
		sink += similarity.TriangleSquared(l2, cosT, metric)
	}
	_ = sink
	return time.Since(start) / iters, nil
}

// privateMaskingCore times the protocol's n-dependent masking arithmetic
// without OT: cover-polynomial generation and masked evaluations for the
// two n-dimensional linear rounds ("one additional dimension requires more
// random polynomials", §VI-B.2). The area round is n-independent and the
// OT cost is constant in n, so this series carries the dimension scaling.
func privateMaskingCore(dim int, opts Options) (time.Duration, error) {
	f := field.Default()
	wEnc, err := f.RandVec(opts.Rand, dim)
	if err != nil {
		return 0, err
	}
	linEval, err := mvpoly.NewLinear(f, wEnc, f.FromInt64(1))
	if err != nil {
		return 0, err
	}
	linParams := ompe.Params{Field: f, PolyDegree: 1, MaskDegree: 2, CoverFactor: 2, Group: opts.Group}

	input, err := f.RandVec(opts.Rand, dim)
	if err != nil {
		return 0, err
	}

	const iters = 20
	start := time.Now()
	for i := 0; i < iters; i++ {
		// Rounds 1 and 2: n-dimensional linear OMPE arithmetic.
		for r := 0; r < 2; r++ {
			_, req, err := ompe.NewReceiver(linParams, input, opts.Rand)
			if err != nil {
				return 0, err
			}
			if _, err := ompe.MaskedEvaluations(linParams, linEval, req, opts.Rand); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start) / iters, nil
}

// randomHyperplane samples a random unit normal and a small offset whose
// boundary crosses the data box.
func randomHyperplane(rng *rand.Rand, dim int) ([]float64, float64) {
	w := make([]float64, dim)
	norm := 0.0
	for i := range w {
		w[i] = rng.NormFloat64()
		norm += w[i] * w[i]
	}
	norm = math.Sqrt(norm)
	for i := range w {
		w[i] /= norm
	}
	return w, 0.2 * (rng.Float64()*2 - 1)
}
