package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestBenchClassifyRoundTrip is the acceptance test for the observability
// wiring: a real transport round trip must produce nonzero timings for
// every protocol phase and nonzero wire volume.
func TestBenchClassifyRoundTrip(t *testing.T) {
	doc, err := BenchClassifyRoundTrip(Options{Seed: 1, Quick: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != BenchSchemaVersion {
		t.Errorf("schema = %d, want %d", doc.Schema, BenchSchemaVersion)
	}
	if doc.Queries != 2 {
		t.Errorf("queries = %d, want 2", doc.Queries)
	}
	if doc.ThroughputQPS <= 0 || doc.WallNS <= 0 {
		t.Errorf("throughput %.3f qps over %dns, want both > 0", doc.ThroughputQPS, doc.WallNS)
	}
	if doc.BytesIn <= 0 || doc.BytesOut <= 0 || doc.MsgsIn <= 0 || doc.MsgsOut <= 0 {
		t.Errorf("wire volume not counted: %+v", doc)
	}
	if doc.OTInstances <= 0 {
		t.Errorf("ot instances = %d, want > 0", doc.OTInstances)
	}
	for name, p := range doc.Phases {
		if p.Count <= 0 || p.TotalNS <= 0 {
			t.Errorf("phase %s: count=%d total=%dns, want both > 0", name, p.Count, p.TotalNS)
		}
	}
	if _, ok := doc.Phases[obs.PhaseClassifyRoundTrip]; !ok {
		t.Error("round-trip phase missing")
	}
	// The default recorder must be restored after the bench run.
	if obs.Enabled() {
		t.Error("bench run left a recorder installed")
	}

	// The document must round-trip through its JSON schema.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config != doc.Config || back.Queries != doc.Queries {
		t.Errorf("JSON round trip lost fields: %+v vs %+v", back, doc)
	}
}

func TestCompareBench(t *testing.T) {
	base := &BenchDoc{
		Schema: BenchSchemaVersion, Name: "classify_roundtrip",
		Config:        BenchConfig{Dataset: "diabetes", Group: "512", Seed: 1},
		ThroughputQPS: 100,
	}
	clone := func(qps float64) *BenchDoc {
		d := *base
		d.ThroughputQPS = qps
		return &d
	}
	if err := CompareBench(base, clone(95), 0.20); err != nil {
		t.Errorf("5%% regression rejected: %v", err)
	}
	if err := CompareBench(base, clone(130), 0.20); err != nil {
		t.Errorf("improvement rejected: %v", err)
	}
	if err := CompareBench(base, clone(70), 0.20); err == nil {
		t.Error("30% regression passed the 20% gate")
	} else if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("unexpected gate error: %v", err)
	}
	other := clone(100)
	other.Config.Group = "1024"
	if err := CompareBench(base, other, 0.20); err == nil {
		t.Error("config mismatch passed the gate")
	}
	stale := clone(100)
	stale.Schema = BenchSchemaVersion + 1
	if err := CompareBench(base, stale, 0.20); err == nil {
		t.Error("schema mismatch passed the gate")
	}
}
