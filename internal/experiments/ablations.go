package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/ot"
	"repro/internal/paillier"
	"repro/internal/svm"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	// Name identifies the swept knob value ("q=4", "modp2048", ...).
	Name string
	// PerQuery is the measured per-query protocol cost.
	PerQuery time.Duration
	// Note carries configuration detail (message counts, field size, ...).
	Note string
}

// ablationQueries is how many protocol queries each configuration runs.
const ablationQueries = 3

// ablationModel trains the shared linear and polynomial diabetes models.
func ablationModel(opts Options, nonlinear bool) (*svm.Model, [][]float64, error) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		return nil, nil, err
	}
	spec.TrainSize, spec.TestSize = 200, 20
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed})
	if err != nil {
		return nil, nil, err
	}
	kernel, c := svm.Linear(), spec.LinC
	if nonlinear {
		kernel, c = svm.PaperPolynomial(spec.Dim), spec.PolyC
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: kernel, C: c})
	if err != nil {
		return nil, nil, err
	}
	return model, test.X, nil
}

func measure(model *svm.Model, samples [][]float64, params classify.Params, opts Options) (time.Duration, *classify.Trainer, error) {
	params.Parallelism = opts.Parallelism
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		return 0, nil, err
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		return 0, nil, err
	}
	client.SetParallelism(opts.Parallelism)
	start := time.Now()
	for q := 0; q < ablationQueries; q++ {
		if _, err := classify.ClassifyWith(trainer, client, samples[q%len(samples)], opts.Rand); err != nil {
			return 0, nil, err
		}
	}
	return time.Since(start) / ablationQueries, trainer, nil
}

// AblationMaskDegree sweeps the security parameter q on the linear
// protocol.
func AblationMaskDegree(opts Options, degrees []int) ([]AblationRow, error) {
	opts = opts.withDefaults()
	if len(degrees) == 0 {
		degrees = []int{1, 2, 4, 8}
	}
	model, samples, err := ablationModel(opts, false)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, q := range degrees {
		params := classify.Params{Group: opts.Group, MaskDegree: q}
		per, trainer, err := measure(model, samples, params, opts)
		if err != nil {
			return nil, fmt.Errorf("q=%d: %w", q, err)
		}
		op, err := trainer.Spec().OMPEParams()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:     fmt.Sprintf("q=%d", q),
			PerQuery: per,
			Note:     fmt.Sprintf("m=%d genuine of M=%d pairs", op.GenuineCount(), op.TotalPairs()),
		})
	}
	return rows, nil
}

// AblationCoverFactor sweeps the decoy multiplier k.
func AblationCoverFactor(opts Options, factors []int) ([]AblationRow, error) {
	opts = opts.withDefaults()
	if len(factors) == 0 {
		factors = []int{2, 3, 5}
	}
	model, samples, err := ablationModel(opts, false)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, k := range factors {
		params := classify.Params{Group: opts.Group, CoverFactor: k}
		per, trainer, err := measure(model, samples, params, opts)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		op, err := trainer.Spec().OMPEParams()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:     fmt.Sprintf("k=%d", k),
			PerQuery: per,
			Note:     fmt.Sprintf("M=%d pairs", op.TotalPairs()),
		})
	}
	return rows, nil
}

// AblationOTGroup sweeps the oblivious-transfer group size.
func AblationOTGroup(opts Options) ([]AblationRow, error) {
	opts = opts.withDefaults()
	model, samples, err := ablationModel(opts, false)
	if err != nil {
		return nil, err
	}
	groups := []ot.Group{ot.Group512Test(), ot.Group1024(), ot.Group1536(), ot.Group2048()}
	var rows []AblationRow
	for _, g := range groups {
		params := classify.Params{Group: g}
		per, _, err := measure(model, samples, params, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.Name(), err)
		}
		rows = append(rows, AblationRow{
			Name:     g.Name(),
			PerQuery: per,
			Note:     fmt.Sprintf("%d-bit modulus", g.Bits()),
		})
	}
	return rows, nil
}

// AblationModes compares the paper's direct kernel-form evaluation against
// the expanded-τ linear form on the polynomial model.
func AblationModes(opts Options) ([]AblationRow, error) {
	opts = opts.withDefaults()
	model, samples, err := ablationModel(opts, true)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mode := range []classify.Mode{classify.ModeDirect, classify.ModeExpanded} {
		name := "direct (degree p·q masking)"
		if mode == classify.ModeExpanded {
			name = "expanded (τ variates, degree q)"
		}
		params := classify.Params{Group: opts.Group, Mode: mode}
		per, trainer, err := measure(model, samples, params, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		op, err := trainer.Spec().OMPEParams()
		if err != nil {
			return nil, err
		}
		client, err := classify.NewClient(trainer.Spec())
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:     name,
			PerQuery: per,
			Note:     fmt.Sprintf("%d protocol variates, m=%d, field %d bits", client.NumVars(), op.GenuineCount(), trainer.Spec().FieldBits),
		})
	}
	return rows, nil
}

// AblationPaillier prices the Rahulamathavan-style homomorphic baseline
// [15] against the OMPE protocol per query.
func AblationPaillier(opts Options) ([]AblationRow, error) {
	opts = opts.withDefaults()
	model, samples, err := ablationModel(opts, false)
	if err != nil {
		return nil, err
	}
	perOMPE, _, err := measure(model, samples, classify.Params{Group: opts.Group}, opts)
	if err != nil {
		return nil, err
	}
	w, err := model.LinearWeights()
	if err != nil {
		return nil, err
	}
	client, err := paillier.NewBaselineClient(rand.Reader, 1024)
	if err != nil {
		return nil, err
	}
	trainer, err := paillier.NewBaselineTrainer(client.PublicKey(), w, model.Bias)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for q := 0; q < ablationQueries; q++ {
		enc, err := client.EncryptSample(samples[q%len(samples)], rand.Reader)
		if err != nil {
			return nil, err
		}
		ct, err := trainer.Classify(enc, rand.Reader)
		if err != nil {
			return nil, err
		}
		if _, err := client.DecryptLabel(ct); err != nil {
			return nil, err
		}
	}
	perPaillier := time.Since(start) / ablationQueries

	return []AblationRow{
		{Name: "OMPE protocol", PerQuery: perOMPE, Note: fmt.Sprintf("OT group %s", opts.Group.Name())},
		{Name: "Paillier baseline [15]", PerQuery: perPaillier, Note: "1024-bit modulus, linear model"},
	}, nil
}

// AblationFastPath prices the IKNP fast session against the one-shot
// protocol: the fast path's per-query cost is independent of the OT group
// because public-key operations happen only in the base phase.
func AblationFastPath(opts Options) ([]AblationRow, error) {
	opts = opts.withDefaults()
	model, samples, err := ablationModel(opts, false)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, g := range []ot.Group{ot.Group512Test(), ot.Group2048()} {
		params := classify.Params{Group: g}
		perOneShot, trainer, err := measure(model, samples, params, opts)
		if err != nil {
			return nil, fmt.Errorf("one-shot %s: %w", g.Name(), err)
		}
		baseStart := time.Now()
		ft, fc, err := classify.NewFastPair(trainer, opts.Rand)
		if err != nil {
			return nil, fmt.Errorf("fast base %s: %w", g.Name(), err)
		}
		base := time.Since(baseStart)
		fastStart := time.Now()
		for q := 0; q < ablationQueries; q++ {
			if _, err := classify.ClassifyFast(ft, fc, samples[q%len(samples)], opts.Rand); err != nil {
				return nil, fmt.Errorf("fast query %s: %w", g.Name(), err)
			}
		}
		perFast := time.Since(fastStart) / ablationQueries
		rows = append(rows,
			AblationRow{Name: fmt.Sprintf("one-shot / %s", g.Name()), PerQuery: perOneShot, Note: "public-key OT per query"},
			AblationRow{Name: fmt.Sprintf("fast     / %s", g.Name()), PerQuery: perFast, Note: fmt.Sprintf("base phase %v amortized", base.Round(time.Millisecond))},
		)
	}
	return rows, nil
}
