package experiments

import (
	"strings"
	"testing"
)

// fleetSmokeParams is a deliberately small fleet: enough clients to
// exercise concurrent routing across both replicas, small enough to run
// in seconds.
func fleetSmokeParams(transport string) FleetParams {
	return FleetParams{
		Replicas:         2,
		Clients:          8,
		QueriesPerClient: 4,
		BatchSize:        2,
		Inflight:         2,
		Transport:        transport,
	}
}

func checkFleetDoc(t *testing.T, doc *FleetBenchDoc, p FleetParams) {
	t.Helper()
	if doc.Schema != BenchSchemaVersion {
		t.Errorf("schema = %d, want %d", doc.Schema, BenchSchemaVersion)
	}
	if doc.Name != "fleet_soak" {
		t.Errorf("name = %q", doc.Name)
	}
	if want := p.Clients * p.QueriesPerClient; doc.Queries != want {
		t.Errorf("queries = %d, want %d", doc.Queries, want)
	}
	if doc.ThroughputQPS <= 0 {
		t.Errorf("throughput = %f, want > 0", doc.ThroughputQPS)
	}
	// Connect phase opens one session per client; no retries, shedding,
	// or failovers should happen in a healthy soak.
	if doc.Routed < int64(p.Clients) {
		t.Errorf("routed = %d, want >= %d", doc.Routed, p.Clients)
	}
	if doc.Shed != 0 || doc.Failovers != 0 || doc.Retries != 0 {
		t.Errorf("unexpected disruption: shed=%d failovers=%d retries=%d", doc.Shed, doc.Failovers, doc.Retries)
	}
	if len(doc.ReplicaRouted) != p.Replicas {
		t.Fatalf("replica_routed has %d entries, want %d", len(doc.ReplicaRouted), p.Replicas)
	}
	// Least-loaded routing over concurrent long-lived sessions must not
	// pile everything on one replica.
	for i, n := range doc.ReplicaRouted {
		if n == 0 {
			t.Errorf("replica %d routed 0 sessions: %v", i, doc.ReplicaRouted)
		}
	}
	if doc.BatchP50NS <= 0 || doc.BatchP99NS < doc.BatchP50NS {
		t.Errorf("quantiles p50=%d p99=%d", doc.BatchP50NS, doc.BatchP99NS)
	}
}

func TestBenchFleetMem(t *testing.T) {
	p := fleetSmokeParams(FleetTransportMem)
	doc, err := BenchFleet(Options{Quick: true}, p)
	if err != nil {
		t.Fatalf("BenchFleet: %v", err)
	}
	checkFleetDoc(t, doc, p)
	if doc.Config.Transport != FleetTransportMem {
		t.Errorf("config transport = %q", doc.Config.Transport)
	}
}

func TestBenchFleetTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp fleet soak in -short mode")
	}
	p := fleetSmokeParams(FleetTransportTCP)
	doc, err := BenchFleet(Options{Quick: true}, p)
	if err != nil {
		t.Fatalf("BenchFleet: %v", err)
	}
	checkFleetDoc(t, doc, p)
}

func TestBenchFleetUnknownTransport(t *testing.T) {
	_, err := BenchFleet(Options{Quick: true}, FleetParams{Transport: "carrier-pigeon"})
	if err == nil || !strings.Contains(err.Error(), "unknown transport") {
		t.Fatalf("err = %v, want unknown transport", err)
	}
}

func TestCompareFleet(t *testing.T) {
	base := &FleetBenchDoc{
		Schema:        BenchSchemaVersion,
		Name:          "fleet_soak",
		Config:        FleetConfig{Clients: 8, Replicas: 2, Transport: FleetTransportMem},
		ThroughputQPS: 100,
	}
	cur := *base

	cur.ThroughputQPS = 85
	if err := CompareFleet(base, &cur, 0.20); err != nil {
		t.Errorf("15%% regression rejected under 20%% gate: %v", err)
	}
	cur.ThroughputQPS = 75
	if err := CompareFleet(base, &cur, 0.20); err == nil {
		t.Error("25% regression passed a 20% gate")
	}
	cur.ThroughputQPS = 100
	cur.Config.Clients = 16
	if err := CompareFleet(base, &cur, 0.20); err == nil {
		t.Error("config mismatch passed")
	}
	cur.Config.Clients = 8
	cur.Schema = BenchSchemaVersion + 1
	if err := CompareFleet(base, &cur, 0.20); err == nil {
		t.Error("schema mismatch passed")
	}
	if err := CompareFleet(nil, &cur, 0.20); err == nil {
		t.Error("nil baseline passed")
	}
}
