package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/svm"
)

// Fig5Row is one panel of Fig. 5: the quality of a colluding client
// pool's model estimate from k randomized classification results.
type Fig5Row struct {
	Samples       int
	AngleErrorDeg float64
	OffsetError   float64
	// UnprotectedAngleErrorDeg is the same attack against a trainer with
	// the amplifier disabled — the contrast that shows the amplifier is
	// what defeats estimation.
	UnprotectedAngleErrorDeg float64
}

// Fig5SampleCounts are the paper's collusion-pool sizes.
var Fig5SampleCounts = []int{2, 4, 10, 20, 50}

// fig5TrainingSize matches the paper's setup ("a linear two dimensional
// binary classifier ... with 1000 training samples").
const fig5TrainingSize = 1000

// Fig5 mounts the model-estimation attack: a 2-D linear model trained on
// 1000 samples, estimated by regression over k amplified classification
// values. With fresh per-query amplifiers the estimates should stay far
// from the true model for every k — the estimates "keep rambling".
func Fig5(opts Options, counts []int) ([]Fig5Row, error) {
	opts = opts.withDefaults()
	if len(counts) == 0 {
		counts = Fig5SampleCounts
	}
	trainer, w, b, err := fig5Trainer(opts, classify.Params{Group: opts.Group, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	unprotected, _, _, err := fig5Trainer(opts, classify.Params{Group: opts.Group, InsecureUnitAmplifier: true, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, 0, len(counts))
	for _, k := range counts {
		res, err := attack.RunCollusion(trainer, w, b, k, opts.Rand, opts.sampleRNG(uint64(k)))
		if err != nil {
			return nil, fmt.Errorf("fig5 k=%d: %w", k, err)
		}
		unp, err := attack.RunCollusion(unprotected, w, b, k, opts.Rand, opts.sampleRNG(uint64(k)))
		if err != nil {
			return nil, fmt.Errorf("fig5 unprotected k=%d: %w", k, err)
		}
		rows = append(rows, Fig5Row{
			Samples:                  k,
			AngleErrorDeg:            res.AngleErrorDeg,
			OffsetError:              res.OffsetError,
			UnprotectedAngleErrorDeg: unp.AngleErrorDeg,
		})
	}
	return rows, nil
}

// Fig6Row contrasts model recovery with and without the amplifier.
type Fig6Row struct {
	// Amplified reports whether the protocol used fresh amplifiers.
	Amplified bool
	// AngleErrorDeg / OffsetError measure recovery quality from n+1 exact
	// protocol outputs.
	AngleErrorDeg float64
	OffsetError   float64
}

// Fig6 demonstrates the decision-function-retrieval attack of Fig. 6: with
// the amplifier disabled, n+1 = 3 classification values recover the 2-D
// model exactly (the algebraic form of the paper's tangent-circle
// construction); with the amplifier on, the same attack fails.
func Fig6(opts Options) ([]Fig6Row, error) {
	opts = opts.withDefaults()
	var rows []Fig6Row
	for _, amplified := range []bool{false, true} {
		params := classify.Params{Group: opts.Group, InsecureUnitAmplifier: !amplified, Parallelism: opts.Parallelism}
		trainer, w, b, err := fig5Trainer(opts, params)
		if err != nil {
			return nil, err
		}
		client, err := classify.NewClient(trainer.Spec())
		if err != nil {
			return nil, err
		}
		client.SetParallelism(opts.Parallelism)
		srng := opts.sampleRNG(99)
		samples := make([][]float64, 3)
		values := make([]float64, 3)
		for i := range samples {
			s := []float64{srng.Float64()*2 - 1, srng.Float64()*2 - 1}
			v, err := attack.ClassifyValue(trainer, client, s, opts.Rand)
			if err != nil {
				return nil, err
			}
			samples[i] = s
			values[i] = v
		}
		wEst, bEst, err := attack.RecoverExact(samples, values)
		if err != nil {
			return nil, err
		}
		angle, err := attack.AngleError(w, wEst)
		if err != nil {
			return nil, err
		}
		offset, err := attack.OffsetError(w, b, wEst, bEst)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{
			Amplified:     amplified,
			AngleErrorDeg: angle * 180 / 3.141592653589793,
			OffsetError:   offset,
		})
	}
	return rows, nil
}

// fig5Trainer trains the 2-D linear model of the privacy experiments and
// returns its true weights.
func fig5Trainer(opts Options, params classify.Params) (*classify.Trainer, []float64, float64, error) {
	spec := dataset.Spec{
		Name:      "fig5-2d",
		Dim:       2,
		TrainSize: fig5TrainingSize,
		TestSize:  2,
		Structure: dataset.StructureLinear,
		Noise:     0.02,
		LinC:      1,
	}
	train, _, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed})
	if err != nil {
		return nil, nil, 0, err
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: 1})
	if err != nil {
		return nil, nil, 0, err
	}
	w, err := model.LinearWeights()
	if err != nil {
		return nil, nil, 0, err
	}
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		return nil, nil, 0, err
	}
	return trainer, w, model.Bias, nil
}
