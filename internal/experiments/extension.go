package experiments

import (
	"fmt"
	"math"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/svm"
)

// Fig8x is an extension experiment beyond the paper: private
// classification accuracy parity for the RBF and sigmoid kernels, which
// §IV-B describes (via Taylor truncation) but §VI never evaluates. The
// reference for parity is the Taylor-truncated model — the function the
// protocol actually evaluates — with the truncation error reported
// separately against the exact kernel.
type Fig8xRow struct {
	Dataset string
	Kernel  string
	// TruncatedAcc is the Taylor-truncated plaintext model's accuracy.
	TruncatedAcc float64
	// PrivateAcc is the private protocol's accuracy on the same samples.
	PrivateAcc float64
	// ExactAcc is the untruncated kernel model's accuracy (isolates the
	// Taylor error from the protocol error).
	ExactAcc float64
	// Samples evaluated; Mismatches counts private-vs-truncated label
	// disagreements (expected 0).
	Samples    int
	Mismatches int
}

// Fig8x runs the RBF and sigmoid parity experiment on two small datasets.
func Fig8x(opts Options) ([]Fig8xRow, error) {
	opts = opts.withDefaults()
	var rows []Fig8xRow
	for _, name := range []string{"ionosphere", "australian"} {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			return nil, err
		}
		spec.TrainSize = 150
		spec.TestSize = 40
		train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		kernels := []struct {
			label string
			k     svm.Kernel
		}{
			// Taylor truncation converges only for γ·d² ≲ 1, so γ scales
			// inversely with the squared-distance range ~2n/3.
			{"rbf", svm.RBF(1 / float64(2*spec.Dim))},
			{"sigmoid", svm.Sigmoid(1/float64(spec.Dim), 0)},
		}
		for _, kc := range kernels {
			row, err := fig8xRow(name, kc.label, kc.k, train, test, opts)
			if err != nil {
				return nil, fmt.Errorf("fig8x %s/%s: %w", name, kc.label, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func fig8xRow(name, label string, k svm.Kernel, train, test *dataset.Dataset, opts Options) (*Fig8xRow, error) {
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: k, C: 50})
	if err != nil {
		return nil, err
	}
	params := classify.Params{Group: opts.Group, TaylorTerms: 4, Parallelism: opts.Parallelism}
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		return nil, err
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		return nil, err
	}
	client.SetParallelism(opts.Parallelism)
	n := test.Len()
	if opts.Quick && n > 10 {
		n = 10
	}
	correctTrunc, correctPriv, correctExact, mismatches := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		sample := test.X[i]
		exact, err := model.Classify(sample)
		if err != nil {
			return nil, err
		}
		trunc, err := truncatedLabel(model, sample, params.TaylorTerms)
		if err != nil {
			return nil, err
		}
		priv, err := classify.ClassifyWith(trainer, client, sample, opts.Rand)
		if err != nil {
			return nil, err
		}
		if exact == test.Y[i] {
			correctExact++
		}
		if trunc == test.Y[i] {
			correctTrunc++
		}
		if priv == test.Y[i] {
			correctPriv++
		}
		if priv != trunc {
			mismatches++
		}
	}
	return &Fig8xRow{
		Dataset:      name,
		Kernel:       label,
		TruncatedAcc: 100 * float64(correctTrunc) / float64(n),
		PrivateAcc:   100 * float64(correctPriv) / float64(n),
		ExactAcc:     100 * float64(correctExact) / float64(n),
		Samples:      n,
		Mismatches:   mismatches,
	}, nil
}

// truncatedLabel evaluates the Taylor-truncated decision function — the
// exact function the protocol computes.
func truncatedLabel(m *svm.Model, sample []float64, terms int) (int, error) {
	acc := m.Bias
	for s, sv := range m.SupportVectors {
		var kv float64
		var err error
		switch m.Kernel.Kind {
		case svm.KernelRBF:
			d2 := 0.0
			for j := range sv {
				diff := sv[j] - sample[j]
				d2 += diff * diff
			}
			kv, err = kernel.RBFApprox(m.Kernel.Gamma, d2, terms)
		case svm.KernelSigmoid:
			u := m.Kernel.C0
			for j := range sv {
				u += m.Kernel.A0 * sv[j] * sample[j]
			}
			kv, err = kernel.TanhApprox(u, terms)
		default:
			return 0, fmt.Errorf("experiments: unexpected kernel %v", m.Kernel.Kind)
		}
		if err != nil {
			return 0, err
		}
		acc += m.AlphaY[s] * kv
	}
	if math.Signbit(acc) {
		return -1, nil
	}
	return 1, nil
}
