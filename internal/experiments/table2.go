package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/kstest"
	"repro/internal/similarity"
	"repro/internal/svm"
)

// Table2Row is one subset pair of Table II: the K-S baseline against the
// privately computed triangle metric (scaled ×10³ as the paper does).
type Table2Row struct {
	Pair string
	// KSAverage is the per-dimension scaled K-S statistic, averaged.
	KSAverage float64
	// PrivateT1000 is 10³·T from the private protocol.
	PrivateT1000 float64
	// PlainT1000 is 10³·T computed in the clear (protocol fidelity check).
	PlainT1000 float64
}

// Table2Result carries the rows plus the rank concordance between the two
// measures — the paper's actual claim ("they show the same trend of
// comparisons between the subsets").
type Table2Result struct {
	Rows []Table2Row
	// SpearmanRho is the rank correlation between KSAverage and
	// PrivateT1000 across the six pairs (1 = identical ordering).
	SpearmanRho float64
}

// table2Shifts gives each diabetes subset a different distribution shift,
// so subset pairs differ by varied amounts — the synthetic counterpart of
// the real diabetes subsets' natural heterogeneity.
var table2Shifts = []float64{1.4, 0.2, 0.85, 0.0}

// Table2 reproduces the Table II experiment: split the diabetes analog
// into 4 subsets of 192, train a linear model per subset, and for every
// pair compare the K-S average against the (private) similarity metric.
func Table2(opts Options) (*Table2Result, error) {
	opts = opts.withDefaults()
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		return nil, err
	}
	// Lower label noise and a wider margin stabilize the per-subset
	// trained boundaries, so the model-similarity ordering tracks the
	// distribution shifts rather than 192-sample training noise.
	spec.Noise = 0.05
	spec.Margin = 0.15
	subsets, err := dataset.GenerateShiftedSubsets(spec, 4, 192, table2Shifts, dataset.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	type trained struct {
		w []float64
		b float64
	}
	models := make([]trained, len(subsets))
	for i, sub := range subsets {
		model, err := svm.Train(sub.X, sub.Y, svm.Config{Kernel: svm.Linear(), C: 1})
		if err != nil {
			return nil, fmt.Errorf("table2 subset %d: %w", i+1, err)
		}
		w, err := model.LinearWeights()
		if err != nil {
			return nil, err
		}
		models[i] = trained{w: w, b: model.Bias}
	}
	params := similarity.Params{Group: opts.Group, Parallelism: opts.Parallelism}
	metric := similarity.DefaultMetric()

	var rows []Table2Row
	for i := 0; i < len(subsets); i++ {
		for j := i + 1; j < len(subsets); j++ {
			ks, err := kstest.AverageOverDimensions(subsets[i].X, subsets[j].X)
			if err != nil {
				return nil, err
			}
			plain, err := similarity.EvaluateLinear(models[i].w, models[i].b, models[j].w, models[j].b, metric)
			if err != nil {
				return nil, err
			}
			priv, err := similarity.EvaluatePrivate(models[i].w, models[i].b, models[j].w, models[j].b, params, opts.Rand)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Pair:         fmt.Sprintf("S%d vs S%d", i+1, j+1),
				KSAverage:    ks,
				PrivateT1000: priv.T * 1000,
				PlainT1000:   plain.T * 1000,
			})
		}
	}
	return &Table2Result{Rows: rows, SpearmanRho: spearman(rows)}, nil
}

// spearman computes the rank correlation between the K-S and private-T
// columns.
func spearman(rows []Table2Row) float64 {
	n := len(rows)
	if n < 2 {
		return 1
	}
	rank := func(get func(Table2Row) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return get(rows[idx[a]]) < get(rows[idx[b]]) })
		r := make([]float64, n)
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	ra := rank(func(r Table2Row) float64 { return r.KSAverage })
	rb := rank(func(r Table2Row) float64 { return r.PrivateT1000 })
	var d2 float64
	for i := 0; i < n; i++ {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1))
}
