package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/gateway"
	"repro/internal/memnet"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/svm"
	"repro/internal/transport"
)

// Fleet transports selectable in FleetParams.Transport.
const (
	// FleetTransportMem runs the whole fleet over in-process pipes
	// (memnet): zero file descriptors per session, so client counts are
	// bounded by memory and CPU, not the process fd limit. This is how
	// the 10k-client soak runs on one machine.
	FleetTransportMem = "mem"
	// FleetTransportTCP runs gateway and replicas on loopback TCP
	// listeners — every hop a real socket. Each client session costs
	// ~4 fds (client->gateway, gateway->replica, both ends), so scale
	// within the fd limit; CI soaks a few hundred clients this way.
	FleetTransportTCP = "tcp"
)

// benchDialTimeout is the gateway's per-replica dial budget during
// soaks. The default (2s) is tuned for production failover, but a soak
// deliberately saturates the host — with every core busy on handshake
// crypto, a loopback accept can queue long enough to look like a dead
// replica, and a momentary all-down verdict aborts the run with a
// no-healthy-replicas answer. Replicas in the bench harness only die
// when the harness kills them, so a generous budget trades nothing.
const benchDialTimeout = 30 * time.Second

// FleetParams sizes a fleet soak.
type FleetParams struct {
	// Replicas is the trainer replica count behind the gateway.
	Replicas int
	// Clients is the number of concurrent client sessions, each holding
	// its own session through the gateway for the whole measured phase.
	Clients int
	// QueriesPerClient is each client's measured query count.
	QueriesPerClient int
	// BatchSize and Inflight are each client's pipelining shape.
	BatchSize int
	Inflight  int
	// Transport selects FleetTransportMem or FleetTransportTCP.
	Transport string
	// HandshakeConcurrency bounds how many clients handshake at once
	// during the connect phase (default 128). Handshakes are the
	// CPU-expensive part of a session; bounding them keeps the connect
	// phase from thrashing while changing nothing about the measured
	// phase, where all clients run concurrently.
	HandshakeConcurrency int
	// SessionsPerClient is how many sessions each client runs in the
	// measured phase (default 1). Above 1 the measured phase exercises
	// the redial path: each round ends its session cleanly and the next
	// query redials through the gateway — with Resume set, presenting
	// the harvested ticket.
	SessionsPerClient int
	// Resume makes every client offer session resumption: the server
	// mints a sealed ticket at clean session end, and the next dial
	// presents it to skip the κ base OTs.
	Resume bool
}

func (p FleetParams) withDefaults() FleetParams {
	if p.Replicas < 1 {
		p.Replicas = 1
	}
	if p.Clients < 1 {
		p.Clients = 1
	}
	if p.QueriesPerClient < 1 {
		p.QueriesPerClient = 1
	}
	if p.BatchSize < 1 {
		p.BatchSize = 1
	}
	if p.Inflight < 1 {
		p.Inflight = 1
	}
	if p.Transport == "" {
		p.Transport = FleetTransportMem
	}
	if p.HandshakeConcurrency < 1 {
		p.HandshakeConcurrency = 128
	}
	if p.SessionsPerClient < 1 {
		p.SessionsPerClient = 1
	}
	return p
}

// FleetConfig pins a fleet soak's workload inside its document so the CI
// gate refuses apples-to-oranges comparisons.
type FleetConfig struct {
	Dataset           string `json:"dataset"`
	Group             string `json:"group"`
	Seed              uint64 `json:"seed"`
	Parallelism       int    `json:"parallelism"`
	Replicas          int    `json:"replicas"`
	Clients           int    `json:"clients"`
	QueriesPerClient  int    `json:"queries_per_client"`
	BatchSize         int    `json:"batch_size"`
	Inflight          int    `json:"inflight"`
	Transport         string `json:"transport"`
	FieldBackend      string `json:"field_backend,omitempty"`
	PadFunc           string `json:"pad_func,omitempty"`
	SessionsPerClient int    `json:"sessions_per_client"`
	Resume            bool   `json:"resume,omitempty"`
}

// FleetBenchDoc is the schema-stable BENCH_fleet.json document: fleet
// throughput, per-batch latency quantiles, and the gateway's routing
// ledger for the run.
type FleetBenchDoc struct {
	Schema        int         `json:"schema"`
	Name          string      `json:"name"`
	Config        FleetConfig `json:"config"`
	Queries       int         `json:"queries"`
	WallNS        int64       `json:"wall_ns"`
	ThroughputQPS float64     `json:"throughput_qps"`
	// Batch latency quantiles over the measured phase (per pipelined
	// batch round trip, nanoseconds). Measured-phase observations land
	// in a registry swapped in fresh after the connect barrier, so
	// connect-storm handshakes cannot pollute these quantiles.
	BatchP50NS int64 `json:"batch_p50_ns"`
	BatchP99NS int64 `json:"batch_p99_ns"`
	// Handshake latency quantiles over the whole run (nanoseconds),
	// split by path: full runs the κ base OTs, resumed restores the
	// extension state from a ticket.
	HandshakeFullP50NS    int64 `json:"handshake_full_p50_ns"`
	HandshakeFullP99NS    int64 `json:"handshake_full_p99_ns"`
	HandshakeResumedP50NS int64 `json:"handshake_resumed_p50_ns,omitempty"`
	HandshakeResumedP99NS int64 `json:"handshake_resumed_p99_ns,omitempty"`
	// SessionsResumed and ResumeRejected are the server-side resumption
	// ledger; ResumeSpeedup is full handshake p50 over resumed p50
	// (0 when nothing resumed).
	SessionsResumed int64   `json:"sessions_resumed"`
	ResumeRejected  int64   `json:"resume_rejected"`
	ResumeSpeedup   float64 `json:"resume_speedup,omitempty"`
	// Gateway ledger: sessions routed/shed/drained, dial failovers, and
	// client-side session redials over the whole run.
	Routed    int64 `json:"routed"`
	Shed      int64 `json:"shed"`
	Drained   int64 `json:"drained"`
	Failovers int64 `json:"failovers"`
	Retries   int64 `json:"retries"`
	// ReplicaRouted is each replica's share of routed sessions, in
	// replica order.
	ReplicaRouted []int64 `json:"replica_routed"`
}

// classifyParams maps experiment options onto serving parameters.
func classifyParams(o Options) classify.Params {
	return classify.Params{Group: o.Group, Parallelism: o.Parallelism, FieldBackend: o.FieldBackend}
}

// fleetHarness is a running fleet: N replica servers behind one gateway,
// reachable through dial.
type fleetHarness struct {
	reg      *registry.Registry
	servers  []*transport.Server
	gw       *gateway.Gateway
	dial     func(ctx context.Context) (net.Conn, error)
	shutdown func()
}

// startFleet builds the fleet on the requested transport. The model is
// trained once and published through a single registry feeding all
// replicas (in production each replica holds its own registry copy; for
// a single-process fleet one registry is the same serving path with
// less redundant training).
func startFleet(opts Options, p FleetParams) (*fleetHarness, [][]float64, error) {
	const dsName = "diabetes"
	spec, err := dataset.SpecByName(dsName)
	if err != nil {
		return nil, nil, err
	}
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed})
	if err != nil {
		return nil, nil, err
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		return nil, nil, err
	}
	reg := registry.New(classifyParams(opts))
	if _, err := reg.Publish(model); err != nil {
		return nil, nil, err
	}

	h := &fleetHarness{reg: reg}
	var replicaAddrs []string
	var gwDial gateway.Dialer
	var closers []func()

	newServer := func() *transport.Server {
		srv := transport.NewServerSource(reg)
		srv.Logf = nil
		srv.Rand = opts.Rand
		srv.MessageDeadline = transport.NoDeadline
		h.servers = append(h.servers, srv)
		return srv
	}

	switch p.Transport {
	case FleetTransportMem:
		network := memnet.NewNetwork()
		for i := 0; i < p.Replicas; i++ {
			name := fmt.Sprintf("replica-%d", i)
			ln := network.Listen(name)
			srv := newServer()
			go func() { _ = srv.Serve(ln) }()
			replicaAddrs = append(replicaAddrs, name)
		}
		gwDial = network.Dial
		gwLn := network.Listen("gateway")
		gw, err := gateway.New(replicaAddrs, gateway.Options{
			Dial:           gwDial,
			HealthInterval: time.Second,
			DialTimeout:    benchDialTimeout,
			Logf:           func(string, ...any) {},
		})
		if err != nil {
			return nil, nil, err
		}
		go func() { _ = gw.Serve(gwLn) }()
		h.gw = gw
		h.dial = func(ctx context.Context) (net.Conn, error) { return network.Dial(ctx, "gateway") }
	case FleetTransportTCP:
		for i := 0; i < p.Replicas; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			srv := newServer()
			go func() { _ = srv.Serve(ln) }()
			replicaAddrs = append(replicaAddrs, ln.Addr().String())
			closers = append(closers, func() { _ = ln.Close() })
		}
		gwLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		gw, err := gateway.New(replicaAddrs, gateway.Options{
			HealthInterval: time.Second,
			DialTimeout:    benchDialTimeout,
			Logf:           func(string, ...any) {},
		})
		if err != nil {
			return nil, nil, err
		}
		go func() { _ = gw.Serve(gwLn) }()
		h.gw = gw
		gwAddr := gwLn.Addr().String()
		h.dial = func(ctx context.Context) (net.Conn, error) {
			return transport.DialContext(ctx, gwAddr, transport.Options{MaxAttempts: 1})
		}
	default:
		return nil, nil, fmt.Errorf("fleet: unknown transport %q (want %q or %q)", p.Transport, FleetTransportMem, FleetTransportTCP)
	}

	h.shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = h.gw.Shutdown(ctx)
		for _, c := range closers {
			c()
		}
		for _, srv := range h.servers {
			_ = srv.Shutdown(ctx)
		}
	}
	return h, test.X, nil
}

// BenchFleet soaks a local fleet: p.Replicas trainer replicas behind one
// gateway, p.Clients concurrent sessions each pushing pipelined batches.
// The run has two phases — connect (every client dials through the
// gateway and completes its session handshake, concurrency-bounded) and
// a measured load phase entered together once all clients hold live
// sessions — so throughput and latency quantiles cover steady-state
// serving, not handshake amortization.
//
// Like the other benches it swaps the process-default metrics registry
// for the run, so it must not race with other instrumented work.
func BenchFleet(opts Options, p FleetParams) (*FleetBenchDoc, error) {
	opts = opts.withDefaults()
	p = p.withDefaults()

	mreg := obs.NewRegistry()
	prev := obs.SwapDefault(mreg)
	defer obs.SetDefault(prev)

	h, samples, err := startFleet(opts, p)
	if err != nil {
		return nil, err
	}
	defer h.shutdown()

	clientOpts := transport.Options{
		FieldBackend:    string(opts.FieldBackend),
		WireCodec:       opts.WireCodec,
		PadFunc:         string(opts.PadFunc),
		OfferResume:     p.Resume,
		MessageDeadline: transport.NoDeadline,
	}

	// Connect phase: every client dials through the gateway and runs one
	// warmup query, leaving a live session. Handshakes are bounded by a
	// semaphore; failures abort the soak (a bench with broken sessions is
	// not a measurement).
	clients := make([]*gateway.FleetClient, p.Clients)
	dial := func(ctx context.Context, _ string) (net.Conn, error) { return h.dial(ctx) }
	sem := make(chan struct{}, p.HandshakeConcurrency)
	var connectWG sync.WaitGroup
	var connectErr atomic.Pointer[error]
	for i := range clients {
		connectWG.Add(1)
		go func(i int) {
			defer connectWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fc := gateway.NewFleetClient(dial, "gateway", clientOpts, opts.Rand, 2)
			if _, err := fc.ClassifyBatch(context.Background(), samples[:1]); err != nil {
				err = fmt.Errorf("fleet: client %d connect: %w", i, err)
				connectErr.CompareAndSwap(nil, &err)
				return
			}
			clients[i] = fc
		}(i)
	}
	connectWG.Wait()
	if errp := connectErr.Load(); errp != nil {
		return nil, *errp
	}

	// The measured phase observes only its own work: swap in a FRESH
	// registry after the connect barrier. A histogram delta cannot do
	// this — Min/Max carry over from the combined snapshot, and Quantile
	// clamps into [Min, Max], so one connect-storm handshake would pin
	// the measured batch p99 at handshake latency. A fresh registry has
	// no history to clamp to.
	connectSnap := mreg.Snapshot()
	loadReg := obs.NewRegistry()
	obs.SetDefault(loadReg)

	perClient := make([][]float64, p.QueriesPerClient)
	for i := range perClient {
		perClient[i] = samples[i%len(samples)]
	}
	start := make(chan struct{})
	var loadWG sync.WaitGroup
	var loadErr atomic.Pointer[error]
	for i, fc := range clients {
		loadWG.Add(1)
		go func(i int, fc *gateway.FleetClient) {
			defer loadWG.Done()
			<-start
			for s := 0; s < p.SessionsPerClient; s++ {
				if s > 0 {
					// End the previous session cleanly (harvesting the
					// resumption ticket when offered) so the next query
					// redials through the gateway.
					if err := fc.Close(); err != nil {
						err = fmt.Errorf("fleet: client %d session %d close: %w", i, s, err)
						loadErr.CompareAndSwap(nil, &err)
						return
					}
				}
				if _, err := fc.ClassifyPipelined(context.Background(), perClient, p.BatchSize, p.Inflight); err != nil {
					err = fmt.Errorf("fleet: client %d session %d load: %w", i, s, err)
					loadErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(i, fc)
	}
	t0 := time.Now()
	close(start)
	loadWG.Wait()
	wall := time.Since(t0)
	if errp := loadErr.Load(); errp != nil {
		return nil, *errp
	}

	var retries int64
	for _, fc := range clients {
		retries += fc.Retries()
		_ = fc.Close()
	}

	loadSnap := loadReg.Snapshot()
	batchHist := loadSnap.Histograms[obs.PhaseClassifyBatch]
	// Handshakes span both phases (connect storms run full handshakes,
	// measured rounds redial), so merge the two registries' views.
	fullHist := histMerge(connectSnap.Histograms[obs.PhaseHandshakeFull], loadSnap.Histograms[obs.PhaseHandshakeFull])
	resumedHist := histMerge(connectSnap.Histograms[obs.PhaseHandshakeResumed], loadSnap.Histograms[obs.PhaseHandshakeResumed])
	sessionsResumed := connectSnap.Counters[obs.CtrSessionsResumed] + loadSnap.Counters[obs.CtrSessionsResumed]
	resumeRejected := connectSnap.Counters[obs.CtrResumeRejected] + loadSnap.Counters[obs.CtrResumeRejected]
	stats := h.gw.Stats()

	queries := p.Clients * p.QueriesPerClient * p.SessionsPerClient
	doc := &FleetBenchDoc{
		Schema: BenchSchemaVersion,
		Name:   "fleet_soak",
		Config: FleetConfig{
			Dataset:           "diabetes",
			Group:             opts.Group.Name(),
			Seed:              opts.Seed,
			Parallelism:       opts.Parallelism,
			Replicas:          p.Replicas,
			Clients:           p.Clients,
			QueriesPerClient:  p.QueriesPerClient,
			BatchSize:         p.BatchSize,
			Inflight:          p.Inflight,
			Transport:         p.Transport,
			FieldBackend:      backendConfigName(opts.FieldBackend),
			PadFunc:           string(opts.PadFunc),
			SessionsPerClient: p.SessionsPerClient,
			Resume:            p.Resume,
		},
		Queries:               queries,
		WallNS:                int64(wall),
		ThroughputQPS:         float64(queries) / wall.Seconds(),
		BatchP50NS:            batchHist.Quantile(0.50),
		BatchP99NS:            batchHist.Quantile(0.99),
		HandshakeFullP50NS:    fullHist.Quantile(0.50),
		HandshakeFullP99NS:    fullHist.Quantile(0.99),
		HandshakeResumedP50NS: resumedHist.Quantile(0.50),
		HandshakeResumedP99NS: resumedHist.Quantile(0.99),
		SessionsResumed:       sessionsResumed,
		ResumeRejected:        resumeRejected,
		Routed:                stats.Routed,
		Shed:                  stats.Shed,
		Drained:               stats.Drained,
		Failovers:             stats.Failovers,
		Retries:               retries,
	}
	if resumedHist.Count > 0 && doc.HandshakeResumedP50NS > 0 {
		doc.ResumeSpeedup = float64(doc.HandshakeFullP50NS) / float64(doc.HandshakeResumedP50NS)
	}
	for _, r := range stats.Replicas {
		doc.ReplicaRouted = append(doc.ReplicaRouted, r.Routed)
	}
	if batchHist.Count == 0 {
		return nil, fmt.Errorf("fleet: no batches recorded in measured phase (instrumentation gap)")
	}
	return doc, nil
}

// histMerge adds two snapshots of the same histogram taken from
// different registries (the connect-phase registry and the fresh
// measured-phase registry), yielding the union of their observations.
func histMerge(a, b obs.HistSnapshot) obs.HistSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	m := obs.HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Min: a.Min, Max: a.Max}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	n := len(a.Buckets)
	if len(b.Buckets) > n {
		n = len(b.Buckets)
	}
	m.Buckets = make([]int64, n)
	for i := range a.Buckets {
		m.Buckets[i] += a.Buckets[i]
	}
	for i := range b.Buckets {
		m.Buckets[i] += b.Buckets[i]
	}
	return m
}

// CompareFleet gates a fleet soak against its committed baseline: it
// fails when fleet throughput regressed by more than maxRegress, and
// refuses comparisons across different schemas, workloads, or configs.
// Resume is the one config dimension a comparison may cross: resumption
// is a handshake-path optimization, not a workload change, and gating a
// resumed soak against the full-handshake baseline of the same shape is
// exactly what the CI gate does.
func CompareFleet(baseline, current *FleetBenchDoc, maxRegress float64) error {
	if baseline == nil || current == nil {
		return fmt.Errorf("fleet compare: nil document")
	}
	if baseline.Schema != current.Schema {
		return fmt.Errorf("fleet compare: schema %d vs %d", baseline.Schema, current.Schema)
	}
	if baseline.Name != current.Name {
		return fmt.Errorf("fleet compare: workload %q vs %q", baseline.Name, current.Name)
	}
	bCfg, cCfg := baseline.Config, current.Config
	bCfg.Resume, cCfg.Resume = false, false
	if bCfg != cCfg {
		return fmt.Errorf("fleet compare: config mismatch (%+v vs %+v)", baseline.Config, current.Config)
	}
	if baseline.ThroughputQPS <= 0 {
		return fmt.Errorf("fleet compare: baseline throughput %.3f qps is not positive", baseline.ThroughputQPS)
	}
	floor := baseline.ThroughputQPS * (1 - maxRegress)
	if current.ThroughputQPS < floor {
		return fmt.Errorf("fleet compare: throughput regressed %.1f%% (%.2f -> %.2f qps, floor %.2f)",
			100*(1-current.ThroughputQPS/baseline.ThroughputQPS),
			baseline.ThroughputQPS, current.ThroughputQPS, floor)
	}
	return nil
}
