package experiments

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/ot"
)

// FieldBackendCombo is one cell of the field-backend × OT-group sweep: the
// batched classify workload run under one engine combination, distilled to
// throughput and the per-phase means the comparison cares about.
type FieldBackendCombo struct {
	FieldBackend string `json:"field_backend"`
	Group        string `json:"group"`
	// PadFunc is the OT pad function the cell negotiated; empty means the
	// legacy SHA-256 pad (pre-negotiation builds and default sessions).
	PadFunc string `json:"pad_func,omitempty"`
	// Parallelism is the cell's per-endpoint worker bound when it overrides
	// the sweep-wide setting; zero means the document's Parallelism applies.
	Parallelism int `json:"parallelism,omitempty"`

	ThroughputQPS float64 `json:"throughput_qps"`
	WallNS        int64   `json:"wall_ns"`
	BytesIn       int64   `json:"bytes_in"`
	BytesOut      int64   `json:"bytes_out"`
	// PhaseMeansNS maps each batch-workload phase name to its mean
	// nanoseconds per observation (see BatchBenchPhaseNames).
	PhaseMeansNS map[string]int64 `json:"phase_means_ns"`
}

// FieldBackendSweepDoc is the schema-stable BENCH_field_backends.json
// document: the same pinned batched workload measured across the
// {math/big, limb} × {modp512-test, x25519} engine grid — extended with a
// fixed-key AES pad cell and an AES+parallelism-4 cell on the fast pair —
// plus the headline speedups of the fast pair (limb+x25519) over the
// legacy pair (big+modp512-test) and of the AES pad over SHA-256.
type FieldBackendSweepDoc struct {
	Schema  int    `json:"schema"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Seed    uint64 `json:"seed"`

	Parallelism int `json:"parallelism"`
	Queries     int `json:"queries"`
	BatchSize   int `json:"batch_size"`
	Inflight    int `json:"inflight"`

	Combos []FieldBackendCombo `json:"combos"`

	// Speedups of limb+x25519 over big+modp512-test (ratios > 1 mean the
	// fast pair wins).
	QPSSpeedup                 float64 `json:"qps_speedup"`
	SenderMaskSpeedup          float64 `json:"sender_mask_speedup"`
	ReceiverInterpolateSpeedup float64 `json:"receiver_interpolate_speedup"`
	// PadSpeedup compares the AES pad cell against the SHA-256 cell on the
	// same fast engine pair (limb+x25519, sweep parallelism). A ratio below
	// 1 means the fixed-key AES pad regressed below the hash pad.
	PadSpeedup float64 `json:"pad_speedup"`
}

// BenchFieldBackendSweep runs the pinned batched classify workload across
// the engine grid. Options.Group, Options.FieldBackend and Options.PadFunc
// are ignored — the sweep owns those axes; everything else (seed,
// parallelism, rand) is honored per cell unless a cell pins its own
// parallelism. Cells run sequentially so each measurement gets the whole
// machine.
func BenchFieldBackendSweep(opts Options, queries, batchSize, inflight int) (*FieldBackendSweepDoc, error) {
	grid := []struct {
		backend field.Backend
		group   ot.Group
		pad     ot.PadFunc
		par     int // 0 = inherit opts.Parallelism
	}{
		{field.BackendBig, ot.Group512Test(), "", 0},
		{field.BackendBig, ot.X25519(), "", 0},
		{field.BackendLimb, ot.Group512Test(), "", 0},
		{field.BackendLimb, ot.X25519(), "", 0},
		{field.BackendLimb, ot.X25519(), ot.PadAES, 0},
		{field.BackendLimb, ot.X25519(), ot.PadAES, 4},
	}
	doc := &FieldBackendSweepDoc{
		Schema:      BenchSchemaVersion,
		Name:        "field_backends",
		Seed:        opts.Seed,
		Parallelism: opts.Parallelism,
		Queries:     queries,
		BatchSize:   batchSize,
		Inflight:    inflight,
	}
	var legacy, fast, aes *FieldBackendCombo
	for _, cell := range grid {
		cellOpts := opts
		cellOpts.Group = cell.group
		cellOpts.FieldBackend = cell.backend
		cellOpts.PadFunc = cell.pad
		if cell.par > 0 {
			cellOpts.Parallelism = cell.par
		}
		run, err := BenchClassifyBatch(cellOpts, queries, batchSize, inflight)
		if err != nil {
			return nil, fmt.Errorf("sweep %s+%s: %w", cell.backend, cell.group.Name(), err)
		}
		doc.Dataset = run.Config.Dataset
		doc.Seed = run.Config.Seed
		combo := FieldBackendCombo{
			FieldBackend:  string(cell.backend),
			Group:         cell.group.Name(),
			PadFunc:       padConfigName(cell.pad),
			Parallelism:   cell.par,
			ThroughputQPS: run.ThroughputQPS,
			WallNS:        run.WallNS,
			BytesIn:       run.BytesIn,
			BytesOut:      run.BytesOut,
			PhaseMeansNS:  map[string]int64{},
		}
		for name, p := range run.Phases {
			combo.PhaseMeansNS[name] = p.MeanNS
		}
		doc.Combos = append(doc.Combos, combo)
		last := &doc.Combos[len(doc.Combos)-1]
		switch {
		case cell.backend == field.BackendBig && cell.group.Name() == "modp512-test":
			legacy = last
		case cell.backend == field.BackendLimb && cell.group.Name() == "x25519" && cell.pad == "" && cell.par == 0:
			fast = last
		case cell.backend == field.BackendLimb && cell.group.Name() == "x25519" && cell.pad == ot.PadAES && cell.par == 0:
			aes = last
		}
	}
	if legacy != nil && fast != nil {
		doc.QPSSpeedup = ratio(fast.ThroughputQPS, legacy.ThroughputQPS)
		doc.SenderMaskSpeedup = ratio(
			float64(legacy.PhaseMeansNS[obs.PhaseSenderMask]),
			float64(fast.PhaseMeansNS[obs.PhaseSenderMask]))
		doc.ReceiverInterpolateSpeedup = ratio(
			float64(legacy.PhaseMeansNS[obs.PhaseReceiverInterpolate]),
			float64(fast.PhaseMeansNS[obs.PhaseReceiverInterpolate]))
	}
	if fast != nil && aes != nil {
		doc.PadSpeedup = ratio(aes.ThroughputQPS, fast.ThroughputQPS)
	}
	return doc, nil
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}
