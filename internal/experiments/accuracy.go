package experiments

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/svm"
)

// fig78Datasets are the eight datasets of Figs. 7 and 8.
var fig78Datasets = []string{
	"splice", "madelon", "diabetes", "german.numer",
	"australian", "cod-rna", "ionosphere", "breast-cancer",
}

// AccuracyRow is one bar pair of Fig. 7/8: the original SVM's accuracy
// against the privacy-preserving scheme's, on the same evaluation subset.
type AccuracyRow struct {
	Dataset     string
	OriginalAcc float64
	PrivateAcc  float64
	Samples     int
	// Mismatches counts samples where the private label differed from the
	// plaintext model's (expected 0 away from fixed-point boundary noise).
	Mismatches int
}

// Fig7 reproduces "Accuracy of Linear Data Classification": the private
// protocol must predict exactly as the plaintext linear SVM.
func Fig7(opts Options) ([]AccuracyRow, error) {
	return accuracyFigure(opts, false)
}

// Fig8 reproduces "Accuracy of Nonlinear Data Classification" with the
// paper's polynomial kernel.
func Fig8(opts Options) ([]AccuracyRow, error) {
	return accuracyFigure(opts, true)
}

func accuracyFigure(opts Options, nonlinear bool) ([]AccuracyRow, error) {
	opts = opts.withDefaults()
	var rows []AccuracyRow
	for _, name := range fig78Datasets {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			return nil, err
		}
		row, err := accuracyRow(spec, opts, nonlinear)
		if err != nil {
			return nil, fmt.Errorf("accuracy %s: %w", name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func accuracyRow(spec dataset.Spec, opts Options, nonlinear bool) (*AccuracyRow, error) {
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed, FullScale: opts.FullScale})
	if err != nil {
		return nil, err
	}
	kernel, c := svm.Linear(), spec.LinC
	if nonlinear {
		kernel, c = svm.PaperPolynomial(spec.Dim), spec.PolyC
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: kernel, C: c})
	if err != nil {
		return nil, err
	}
	trainer, err := classify.NewTrainer(model, classify.Params{Group: opts.Group, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		return nil, err
	}
	client.SetParallelism(opts.Parallelism)
	n := opts.subsetSize(test.Len())
	correctOrig, correctPriv, mismatches := 0, 0, 0
	for i := 0; i < n; i++ {
		orig, err := model.Classify(test.X[i])
		if err != nil {
			return nil, err
		}
		priv, err := classify.ClassifyWith(trainer, client, test.X[i], opts.Rand)
		if err != nil {
			return nil, err
		}
		if orig == test.Y[i] {
			correctOrig++
		}
		if priv == test.Y[i] {
			correctPriv++
		}
		if orig != priv {
			mismatches++
		}
	}
	return &AccuracyRow{
		Dataset:     spec.Name,
		OriginalAcc: 100 * float64(correctOrig) / float64(n),
		PrivateAcc:  100 * float64(correctPriv) / float64(n),
		Samples:     n,
		Mismatches:  mismatches,
	}, nil
}
