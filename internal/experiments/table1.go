package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/svm"
)

// Table1Row is one dataset row of Table I: LIBSVM-equivalent accuracy of
// the linear and polynomial (a0=1/n, b0=0, p=3) SVMs.
type Table1Row struct {
	Dataset   string
	Dim       int
	TestSize  int
	LinearAcc float64
	PolyAcc   float64
	PaperLin  float64
	PaperPoly float64
	TrainSize int
	NumSVLin  int
	NumSVPoly int
}

// paperTable1 records the paper's reported accuracies for EXPERIMENTS.md
// side-by-side output (a1a–a9a share a reported range; its midpoint is
// used).
var paperTable1 = map[string][2]float64{
	"splice":        {58.57, 76.78},
	"madelon":       {61.6, 100},
	"diabetes":      {77.34, 80.20},
	"german.numer":  {78.5, 96.1},
	"a1a":           {83.6, 83.6},
	"a2a":           {83.6, 83.6},
	"a3a":           {83.6, 83.6},
	"a4a":           {83.6, 83.6},
	"a5a":           {83.6, 83.6},
	"a6a":           {83.6, 83.6},
	"a7a":           {83.6, 83.6},
	"a8a":           {83.6, 83.6},
	"a9a":           {83.6, 83.6},
	"australian":    {85.65, 92.46},
	"cod-rna":       {94.64, 54.25},
	"ionosphere":    {95.16, 96.01},
	"breast-cancer": {97.21, 98.68},
}

// Table1 trains both kernels on every catalog dataset and reports test
// accuracy. Quick mode skips the a2a–a8a rows (the a-series shares one
// generator; a1a and a9a bracket it).
func Table1(opts Options) ([]Table1Row, error) {
	opts = opts.withDefaults()
	var rows []Table1Row
	for _, spec := range dataset.Catalog() {
		if opts.Quick && len(spec.Name) == 3 && spec.Name[0] == 'a' && spec.Name != "a1a" && spec.Name != "a9a" {
			continue
		}
		row, err := table1Row(spec, opts)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", spec.Name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func table1Row(spec dataset.Spec, opts Options) (*Table1Row, error) {
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed, FullScale: opts.FullScale})
	if err != nil {
		return nil, err
	}
	linModel, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		return nil, err
	}
	linAcc, err := linModel.Accuracy(test.X, test.Y)
	if err != nil {
		return nil, err
	}
	polyModel, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.PaperPolynomial(spec.Dim), C: spec.PolyC})
	if err != nil {
		return nil, err
	}
	polyAcc, err := polyModel.Accuracy(test.X, test.Y)
	if err != nil {
		return nil, err
	}
	paper := paperTable1[spec.Name]
	return &Table1Row{
		Dataset:   spec.Name,
		Dim:       spec.Dim,
		TestSize:  test.Len(),
		TrainSize: train.Len(),
		LinearAcc: linAcc * 100,
		PolyAcc:   polyAcc * 100,
		PaperLin:  paper[0],
		PaperPoly: paper[1],
		NumSVLin:  linModel.NumSupportVectors(),
		NumSVPoly: polyModel.NumSupportVectors(),
	}, nil
}
