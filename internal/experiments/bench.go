package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/svm"
	"repro/internal/transport"
)

// BenchSchemaVersion identifies the BENCH_*.json document layout. Bump it
// only for breaking changes; the CI bench gate refuses to compare
// documents with different schema versions.
const BenchSchemaVersion = 1

// BenchPhase is one protocol phase's aggregate over a bench run.
type BenchPhase struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MeanNS  int64 `json:"mean_ns"`
}

// BenchConfig pins the workload so baselines compare like with like.
// BatchSize and Inflight are zero for the serial round-trip workload, so
// documents produced before batching existed still compare equal.
type BenchConfig struct {
	Dataset     string `json:"dataset"`
	Group       string `json:"group"`
	Seed        uint64 `json:"seed"`
	Parallelism int    `json:"parallelism"`
	BatchSize   int    `json:"batch_size,omitempty"`
	Inflight    int    `json:"inflight,omitempty"`
	// FieldBackend names the negotiated field-arithmetic engine; empty
	// means math/big, so documents from before the limb backend existed
	// still compare equal.
	FieldBackend string `json:"field_backend,omitempty"`
	// PadFunc names the negotiated OT-extension pad family; empty means
	// the legacy SHA-256 pad, so documents from before pad negotiation
	// existed still compare equal.
	PadFunc string `json:"pad_func,omitempty"`
}

// BenchDoc is the schema-stable BENCH_*.json document emitted by
// `ppdc-bench -json`: end-to-end throughput plus the per-phase and
// wire-volume breakdown the paper's §VI reports per protocol stage.
type BenchDoc struct {
	Schema        int         `json:"schema"`
	Name          string      `json:"name"`
	Config        BenchConfig `json:"config"`
	Queries       int         `json:"queries"`
	WallNS        int64       `json:"wall_ns"`
	ThroughputQPS float64     `json:"throughput_qps"`
	// BytesIn/BytesOut are the client's received/sent wire bytes (the
	// role-split counters): in-process benches run both endpoints in one
	// registry, so the role-less totals would double-count and report
	// in == out tautologically.
	BytesIn     int64                 `json:"bytes_in"`
	BytesOut    int64                 `json:"bytes_out"`
	MsgsIn      int64                 `json:"msgs_in"`
	MsgsOut     int64                 `json:"msgs_out"`
	OTInstances int64                 `json:"ot_instances"`
	Phases      map[string]BenchPhase `json:"phases"`
}

// benchPhases lists the classify-path phases a round-trip bench must
// surface (the acceptance bar for the instrumentation being wired end to
// end).
var benchPhases = []string{
	obs.PhaseReceiverMask,
	obs.PhaseReceiverDecoy,
	obs.PhaseReceiverInterpolate,
	obs.PhaseSenderMask,
	obs.PhaseOTSenderSetup,
	obs.PhaseOTSenderRespond,
	obs.PhaseOTReceiverChoice,
	obs.PhaseOTReceiverRecover,
	obs.PhaseClassifyRoundTrip,
}

// BenchPhaseNames returns the classify-path phase names in report order.
func BenchPhaseNames() []string {
	names := make([]string, len(benchPhases))
	copy(names, benchPhases)
	return names
}

// BenchClassifyRoundTrip runs `queries` private classifications over an
// in-memory net.Pipe transport (real server, real client, real envelope
// encoding) under a fresh metrics registry, and distills the registry
// snapshot into a BenchDoc.
//
// It swaps the process-default recorder for the duration of the run and
// restores it afterwards, so it must not race with other instrumented
// work in the same process.
func BenchClassifyRoundTrip(opts Options, queries int) (*BenchDoc, error) {
	opts = opts.withDefaults()
	if queries < 1 {
		queries = 1
	}
	const dsName = "diabetes"
	spec, err := dataset.SpecByName(dsName)
	if err != nil {
		return nil, err
	}
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		return nil, err
	}
	trainer, err := classify.NewTrainer(model, classify.Params{Group: opts.Group, Parallelism: opts.Parallelism, FieldBackend: opts.FieldBackend})
	if err != nil {
		return nil, err
	}

	reg := obs.NewRegistry()
	prev := obs.SwapDefault(reg)
	defer obs.SetDefault(prev)

	srv := transport.NewServer(trainer)
	srv.Logf = nil
	srv.Rand = opts.Rand
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	cc, err := transport.NewClassifyClientContext(context.Background(), clientSide, transport.Options{FieldBackend: string(opts.FieldBackend), WireCodec: opts.WireCodec, PadFunc: string(opts.PadFunc)}, opts.Rand)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := cc.Classify(test.X[i%test.Len()]); err != nil {
			_ = cc.Close()
			return nil, fmt.Errorf("bench query %d: %w", i, err)
		}
	}
	wall := time.Since(start)
	if err := cc.Close(); err != nil {
		return nil, err
	}
	<-done

	snap := reg.Snapshot()
	doc := &BenchDoc{
		Schema: BenchSchemaVersion,
		Name:   "classify_roundtrip",
		Config: BenchConfig{
			Dataset:      dsName,
			Group:        opts.Group.Name(),
			Seed:         opts.Seed,
			Parallelism:  opts.Parallelism,
			FieldBackend: backendConfigName(opts.FieldBackend),
			PadFunc:      padConfigName(opts.PadFunc),
		},
		Queries:       queries,
		WallNS:        int64(wall),
		ThroughputQPS: float64(queries) / wall.Seconds(),
		BytesIn:       snap.Counters[obs.CtrClientBytesIn],
		BytesOut:      snap.Counters[obs.CtrClientBytesOut],
		MsgsIn:        snap.Counters[obs.CtrMsgsIn],
		MsgsOut:       snap.Counters[obs.CtrMsgsOut],
		OTInstances:   snap.Counters[obs.CtrOTInstances],
		Phases:        map[string]BenchPhase{},
	}
	for _, name := range benchPhases {
		h, ok := snap.Histograms[name]
		if !ok {
			return nil, fmt.Errorf("bench: phase %s missing from snapshot (instrumentation gap)", name)
		}
		doc.Phases[name] = BenchPhase{Count: h.Count, TotalNS: h.Sum, MeanNS: h.Mean()}
	}
	return doc, nil
}

// batchBenchPhases lists the phases the batched fast-session workload
// must surface. The fast path runs no per-query public-key OT, so the
// Naor–Pinkas phase set does not apply; what matters per batch is the
// sender's masked evaluations, the receiver's Lagrange recovery, the
// OT-extension kernel phases (PRG fill, transpose, pad application),
// and the end-to-end batch round trip.
var batchBenchPhases = []string{
	obs.PhaseSenderMask,
	obs.PhaseReceiverInterpolate,
	obs.PhaseOTExtend,
	obs.PhaseOTTranspose,
	obs.PhaseOTPad,
	obs.PhaseClassifyBatch,
}

// BatchBenchPhaseNames returns the batch-workload phase names in report
// order.
func BatchBenchPhaseNames() []string {
	names := make([]string, len(batchBenchPhases))
	copy(names, batchBenchPhases)
	return names
}

// BenchClassifyBatch measures the batched fast-session serving path:
// `queries` samples pushed through ClassifyPipelined in batches of
// batchSize with up to inflight batches on the wire, over the same
// net.Pipe transport and workload pin as BenchClassifyRoundTrip. The
// clock starts after the IKNP base handshake, mirroring the serial
// bench's post-handshake start, so throughput_qps is directly comparable
// between the two documents; wire counters cover the whole connection
// including the (amortized) handshake.
func BenchClassifyBatch(opts Options, queries, batchSize, inflight int) (*BenchDoc, error) {
	opts = opts.withDefaults()
	if queries < 1 {
		queries = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if inflight < 1 {
		inflight = 1
	}
	const dsName = "diabetes"
	spec, err := dataset.SpecByName(dsName)
	if err != nil {
		return nil, err
	}
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		return nil, err
	}
	trainer, err := classify.NewTrainer(model, classify.Params{Group: opts.Group, Parallelism: opts.Parallelism, FieldBackend: opts.FieldBackend})
	if err != nil {
		return nil, err
	}
	samples := make([][]float64, queries)
	for i := range samples {
		samples[i] = test.X[i%test.Len()]
	}

	reg := obs.NewRegistry()
	prev := obs.SwapDefault(reg)
	defer obs.SetDefault(prev)

	srv := transport.NewServer(trainer)
	srv.Logf = nil
	srv.Rand = opts.Rand
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClientContext(context.Background(), clientSide, transport.Options{FieldBackend: string(opts.FieldBackend), WireCodec: opts.WireCodec, PadFunc: string(opts.PadFunc)}, opts.Rand)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	if _, err := fc.ClassifyPipelined(context.Background(), samples, batchSize, inflight); err != nil {
		_ = fc.Close()
		return nil, fmt.Errorf("bench batch run: %w", err)
	}
	wall := time.Since(start)
	if err := fc.Close(); err != nil {
		return nil, err
	}
	<-done

	snap := reg.Snapshot()
	doc := &BenchDoc{
		Schema: BenchSchemaVersion,
		Name:   "classify_batch",
		Config: BenchConfig{
			Dataset:      dsName,
			Group:        opts.Group.Name(),
			Seed:         opts.Seed,
			Parallelism:  opts.Parallelism,
			BatchSize:    batchSize,
			Inflight:     inflight,
			FieldBackend: backendConfigName(opts.FieldBackend),
			PadFunc:      padConfigName(opts.PadFunc),
		},
		Queries:       queries,
		WallNS:        int64(wall),
		ThroughputQPS: float64(queries) / wall.Seconds(),
		BytesIn:       snap.Counters[obs.CtrClientBytesIn],
		BytesOut:      snap.Counters[obs.CtrClientBytesOut],
		MsgsIn:        snap.Counters[obs.CtrMsgsIn],
		MsgsOut:       snap.Counters[obs.CtrMsgsOut],
		OTInstances:   snap.Counters[obs.CtrOTInstances],
		Phases:        map[string]BenchPhase{},
	}
	for _, name := range batchBenchPhases {
		h, ok := snap.Histograms[name]
		if !ok {
			return nil, fmt.Errorf("bench: phase %s missing from snapshot (instrumentation gap)", name)
		}
		doc.Phases[name] = BenchPhase{Count: h.Count, TotalNS: h.Sum, MeanNS: h.Mean()}
	}
	return doc, nil
}

// backendConfigName maps a backend option to its config encoding (empty
// for the default math/big path, keeping old baselines comparable).
func backendConfigName(b field.Backend) string {
	if b.OrDefault() == field.BackendLimb {
		return string(field.BackendLimb)
	}
	return ""
}

// padConfigName maps a pad option to its config encoding (empty for the
// legacy SHA-256 pad, keeping old baselines comparable).
func padConfigName(p ot.PadFunc) string {
	if p == ot.PadAES {
		return string(ot.PadAES)
	}
	return ""
}

// CompareBench gates a current bench run against a committed baseline:
// it fails when classify round-trip throughput regressed by more than
// maxRegress (e.g. 0.20 for 20%), and refuses apples-to-oranges
// comparisons (different schema, workload name, or config).
func CompareBench(baseline, current *BenchDoc, maxRegress float64) error {
	if baseline == nil || current == nil {
		return fmt.Errorf("bench compare: nil document")
	}
	if baseline.Schema != current.Schema {
		return fmt.Errorf("bench compare: schema %d vs %d", baseline.Schema, current.Schema)
	}
	if baseline.Name != current.Name {
		return fmt.Errorf("bench compare: workload %q vs %q", baseline.Name, current.Name)
	}
	if baseline.Config != current.Config {
		return fmt.Errorf("bench compare: config mismatch (%+v vs %+v)", baseline.Config, current.Config)
	}
	if baseline.ThroughputQPS <= 0 {
		return fmt.Errorf("bench compare: baseline throughput %.3f qps is not positive", baseline.ThroughputQPS)
	}
	floor := baseline.ThroughputQPS * (1 - maxRegress)
	if current.ThroughputQPS < floor {
		return fmt.Errorf("bench compare: throughput regressed %.1f%% (%.2f -> %.2f qps, floor %.2f)",
			100*(1-current.ThroughputQPS/baseline.ThroughputQPS),
			baseline.ThroughputQPS, current.ThroughputQPS, floor)
	}
	return nil
}
