package experiments_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/ot"
)

func quickOpts() experiments.Options {
	return experiments.Options{Seed: 1, Group: ot.Group512Test(), Quick: true}
}

func TestTable1Quick(t *testing.T) {
	rows, err := experiments.Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 8 distinct + a1a + a9a in quick mode
		t.Fatalf("%d rows", len(rows))
	}
	byName := make(map[string]experiments.Table1Row, len(rows))
	for _, r := range rows {
		byName[r.Dataset] = r
		if r.LinearAcc < 40 || r.LinearAcc > 100 || r.PolyAcc < 40 || r.PolyAcc > 100 {
			t.Fatalf("%s: implausible accuracies %+v", r.Dataset, r)
		}
	}
	// Headline shape checks from the paper: poly wins big on the
	// engineered-nonlinear sets, linear wins big on cod-rna.
	for _, name := range []string{"splice", "madelon", "german.numer"} {
		r := byName[name]
		if r.PolyAcc-r.LinearAcc < 10 {
			t.Errorf("%s: poly (%.1f) should beat linear (%.1f) decisively", name, r.PolyAcc, r.LinearAcc)
		}
	}
	if r := byName["cod-rna"]; r.LinearAcc-r.PolyAcc < 20 {
		t.Errorf("cod-rna: linear (%.1f) should beat poly (%.1f) decisively", r.LinearAcc, r.PolyAcc)
	}
}

func TestFig5Quick(t *testing.T) {
	rows, err := experiments.Fig5(quickOpts(), []int{4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// With the amplifier the estimate must stay noticeably off; with
		// k >= 4 unamplified samples recovery is essentially exact.
		if r.Samples >= 4 && r.UnprotectedAngleErrorDeg > 1 {
			t.Errorf("k=%d: unprotected attack should succeed (err %.2f°)", r.Samples, r.UnprotectedAngleErrorDeg)
		}
	}
}

func TestFig6Contrast(t *testing.T) {
	rows, err := experiments.Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var insecure, secure experiments.Fig6Row
	for _, r := range rows {
		if r.Amplified {
			secure = r
		} else {
			insecure = r
		}
	}
	if insecure.AngleErrorDeg > 0.01 {
		t.Errorf("unamplified recovery should be exact, got %.4f°", insecure.AngleErrorDeg)
	}
	if secure.AngleErrorDeg < 1 {
		t.Errorf("amplified recovery should fail, got %.4f°", secure.AngleErrorDeg)
	}
}

func TestFig7PrivateMatchesOriginal(t *testing.T) {
	rows, err := experiments.Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Mismatches != 0 {
			t.Errorf("%s: %d private/plaintext label mismatches", r.Dataset, r.Mismatches)
		}
		if r.OriginalAcc != r.PrivateAcc {
			t.Errorf("%s: accuracies differ: %.2f vs %.2f", r.Dataset, r.OriginalAcc, r.PrivateAcc)
		}
	}
}

func TestTable2Concordance(t *testing.T) {
	res, err := experiments.Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d pairs", len(res.Rows))
	}
	if res.SpearmanRho < 0.7 {
		t.Errorf("K-S vs T rank concordance too weak: ρ=%.3f", res.SpearmanRho)
	}
	for _, r := range res.Rows {
		// Protocol fidelity: private and plaintext T agree closely.
		diff := r.PrivateT1000 - r.PlainT1000
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*(1+r.PlainT1000) {
			t.Errorf("%s: private %.3f vs plaintext %.3f", r.Pair, r.PrivateT1000, r.PlainT1000)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	rows, err := experiments.Fig10(quickOpts(), []int{2, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's claim: dimension growth hits the private masking
	// arithmetic much harder than the ordinary metric arithmetic.
	first, last := rows[0], rows[len(rows)-1]
	if last.PrivateCore <= first.PrivateCore {
		t.Errorf("private core should grow with dimension: %v -> %v", first.PrivateCore, last.PrivateCore)
	}
	for _, r := range rows {
		if r.PrivateCore < 100*r.OrdinaryCore {
			t.Errorf("dim %d: private core (%v) should dwarf ordinary core (%v)", r.Dim, r.PrivateCore, r.OrdinaryCore)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	opts := quickOpts()
	rows, err := experiments.AblationMaskDegree(opts, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].PerQuery <= rows[0].PerQuery {
		t.Fatalf("mask-degree sweep should grow: %+v", rows)
	}
	modeRows, err := experiments.AblationModes(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modeRows) != 2 {
		t.Fatalf("%d mode rows", len(modeRows))
	}
	cf, err := experiments.AblationCoverFactor(opts, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cf) != 2 {
		t.Fatalf("%d cover rows", len(cf))
	}
}

func TestFig8xParity(t *testing.T) {
	rows, err := experiments.Fig8x(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Mismatches != 0 {
			t.Errorf("%s/%s: %d private-vs-truncated mismatches", r.Dataset, r.Kernel, r.Mismatches)
		}
		if r.PrivateAcc != r.TruncatedAcc {
			t.Errorf("%s/%s: private %.1f != truncated %.1f", r.Dataset, r.Kernel, r.PrivateAcc, r.TruncatedAcc)
		}
	}
}
