// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI) from this repository's implementations. Each
// experiment returns structured rows; cmd/ppdc-bench renders them as the
// paper's tables/series and the root benchmarks time their cores.
//
// The per-experiment index lives in DESIGN.md §4; paper-vs-measured
// numbers live in EXPERIMENTS.md.
package experiments

import (
	crand "crypto/rand"
	"io"
	"math/rand/v2"

	"repro/internal/field"
	"repro/internal/ot"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives the deterministic data generators.
	Seed uint64
	// Group is the OT group for private protocols (default: the 512-bit
	// test group — experiment claims are about shape and trends, and the
	// paper's C++ timings carry no OT group either; pass a MODP group to
	// measure production cost).
	Group ot.Group
	// Quick subsamples the protocol-heavy experiments to keep a full run
	// in seconds rather than minutes.
	Quick bool
	// FullScale uses the paper's full test-set sizes.
	FullScale bool
	// Rand is the protocol entropy source (default crypto/rand.Reader).
	Rand io.Reader
	// Parallelism bounds every endpoint's worker pool (<= 0 selects
	// GOMAXPROCS, 1 forces the serial path). Purely local: protocol
	// messages and results are bit-identical at any degree given the same
	// Rand stream.
	Parallelism int
	// FieldBackend selects the field-arithmetic engine for protocol
	// experiments (zero value: math/big; field.BackendLimb runs the
	// fixed-width fast path over 2^255−19).
	FieldBackend field.Backend
	// WireCodec pins the envelope codec for transport experiments
	// (empty negotiates the default: binary preferred, gob fallback).
	WireCodec string
	// PadFunc selects the OT-extension pad family the client offers for
	// fast sessions (zero value: the legacy SHA-256 pad; ot.PadAES
	// offers the fixed-key AES pad, granted when the server supports it).
	PadFunc ot.PadFunc
}

func (o Options) withDefaults() Options {
	if o.Group == nil {
		o.Group = ot.Group512Test()
	}
	if o.Rand == nil {
		o.Rand = crand.Reader
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// sampleRNG derives a deterministic generator for data sampling (distinct
// from protocol entropy).
func (o Options) sampleRNG(salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed+salt, 0x51ab_cafe_f00d_0001+salt))
}

// subsetSize picks how many samples of a test set run through the private
// protocol.
func (o Options) subsetSize(full int) int {
	if o.FullScale {
		return full
	}
	cap := 200
	if o.Quick {
		cap = 30
	}
	if full < cap {
		return full
	}
	return cap
}
