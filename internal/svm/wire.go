package svm

import (
	"io"

	"repro/internal/wire"
)

// EncodeWire implements the wire codec.
func (k *Kernel) EncodeWire(w *wire.Writer) {
	w.Int(int(k.Kind))
	w.Float64(k.A0)
	w.Float64(k.B0)
	w.Int(k.Degree)
	w.Float64(k.Gamma)
	w.Float64(k.C0)
}

// DecodeWire implements the wire codec.
func (k *Kernel) DecodeWire(r *wire.Reader) {
	k.Kind = KernelKind(r.Int())
	k.A0 = r.Float64()
	k.B0 = r.Float64()
	k.Degree = r.Int()
	k.Gamma = r.Float64()
	k.C0 = r.Float64()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (k *Kernel) MarshalBinary() ([]byte, error) { return wire.Marshal(k) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (k *Kernel) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, k) }

// WriteTo implements io.WriterTo.
func (k *Kernel) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, k) }

// ReadFrom implements io.ReaderFrom.
func (k *Kernel) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, k) }
