package svm

import (
	"errors"
	"fmt"
	"math"
)

// Config holds training hyperparameters.
type Config struct {
	// Kernel selects the kernel (Linear() if zero-valued Kind).
	Kernel Kernel
	// C is the soft-margin penalty (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3, LIBSVM's default).
	Tol float64
	// MaxIter hard-bounds pair optimizations (default 100·n, min 10000).
	MaxIter int
	// GramLimit bounds the size n for which the full Gram matrix is
	// precomputed (default 4096; above it kernels are evaluated on
	// demand).
	GramLimit int
}

func (c Config) withDefaults(n int) Config {
	if c.Kernel.Kind == 0 {
		c.Kernel = Linear()
	}
	if c.C == 0 {
		c.C = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxIter == 0 {
		c.MaxIter = 100 * n
		if c.MaxIter < 10000 {
			c.MaxIter = 10000
		}
	}
	if c.GramLimit == 0 {
		c.GramLimit = 4096
	}
	return c
}

// Train fits a binary soft-margin SVM on samples x with labels y ∈ {+1,−1}
// using Platt's sequential minimal optimization with an error cache and
// second-choice heuristic (max |E_i − E_j|). It replaces the paper's use
// of LIBSVM.
func Train(x [][]float64, y []int, cfg Config) (*Model, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("svm: need at least 2 samples, got %d", n)
	}
	if len(y) != n {
		return nil, fmt.Errorf("svm: %d samples but %d labels", n, len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, errors.New("svm: zero-dimensional samples")
	}
	hasPos, hasNeg := false, false
	for i, yi := range y {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("%w: sample %d has dim %d, want %d", ErrDimension, i, len(x[i]), dim)
		}
		switch yi {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		default:
			return nil, fmt.Errorf("svm: label %d at index %d; labels must be ±1", yi, i)
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("svm: training set must contain both classes")
	}
	cfg = cfg.withDefaults(n)
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	if cfg.C <= 0 {
		return nil, fmt.Errorf("svm: C=%v must be positive", cfg.C)
	}

	tr := &trainer{x: x, y: y, cfg: cfg, n: n}
	if err := tr.init(); err != nil {
		return nil, err
	}
	tr.solve()
	return tr.model(dim)
}

type trainer struct {
	x   [][]float64
	y   []int
	cfg Config
	n   int

	alpha []float64
	errs  []float64 // E_i = f(x_i) − y_i with the current b folded in
	b     float64
	gram  [][]float64 // full Gram matrix, or nil when beyond GramLimit
	diag  []float64   // K_ii, always cached
	iters int
}

func (t *trainer) init() error {
	t.alpha = make([]float64, t.n)
	t.errs = make([]float64, t.n)
	t.diag = make([]float64, t.n)
	for i := range t.errs {
		// With α = 0, f(x_i) = b = 0, so E_i = −y_i.
		t.errs[i] = -float64(t.y[i])
	}
	for i := 0; i < t.n; i++ {
		k, err := t.cfg.Kernel.Eval(t.x[i], t.x[i])
		if err != nil {
			return err
		}
		t.diag[i] = k
	}
	if t.n <= t.cfg.GramLimit {
		t.gram = make([][]float64, t.n)
		flat := make([]float64, t.n*t.n)
		for i := 0; i < t.n; i++ {
			t.gram[i], flat = flat[:t.n], flat[t.n:]
			t.gram[i][i] = t.diag[i]
			for j := 0; j < i; j++ {
				k, err := t.cfg.Kernel.Eval(t.x[i], t.x[j])
				if err != nil {
					return err
				}
				t.gram[i][j] = k
				t.gram[j][i] = k
			}
		}
	}
	return nil
}

func (t *trainer) k(i, j int) float64 {
	if t.gram != nil {
		return t.gram[i][j]
	}
	if i == j {
		return t.diag[i]
	}
	k, err := t.cfg.Kernel.Eval(t.x[i], t.x[j])
	if err != nil {
		// Dimensions were validated in Train; kernel eval cannot fail here.
		panic(err)
	}
	return k
}

// solve runs Platt's outer loop: alternate full sweeps with sweeps over
// non-bound multipliers until a full sweep makes no progress.
func (t *trainer) solve() {
	examineAll := true
	changed := 0
	for (changed > 0 || examineAll) && t.iters < t.cfg.MaxIter {
		changed = 0
		for i := 0; i < t.n && t.iters < t.cfg.MaxIter; i++ {
			if !examineAll && (t.alpha[i] <= 0 || t.alpha[i] >= t.cfg.C) {
				continue
			}
			if t.examine(i) {
				changed++
			}
		}
		if examineAll {
			examineAll = false
		} else if changed == 0 {
			examineAll = true
		}
	}
}

// examine checks KKT conditions for multiplier i and, on violation,
// optimizes it against the partner j maximizing |E_i − E_j|.
func (t *trainer) examine(i int) bool {
	yi := float64(t.y[i])
	ri := t.errs[i] * yi
	if !((ri < -t.cfg.Tol && t.alpha[i] < t.cfg.C) || (ri > t.cfg.Tol && t.alpha[i] > 0)) {
		return false
	}
	// Second-choice heuristic: maximize |E_i − E_j|, preferring non-bound
	// partners; fall back to any other index.
	best, bestGap := -1, -1.0
	for j := 0; j < t.n; j++ {
		if j == i || t.alpha[j] <= 0 || t.alpha[j] >= t.cfg.C {
			continue
		}
		gap := math.Abs(t.errs[i] - t.errs[j])
		if gap > bestGap {
			best, bestGap = j, gap
		}
	}
	if best >= 0 && t.step(i, best) {
		return true
	}
	for j := 0; j < t.n; j++ {
		if j == i {
			continue
		}
		if t.step(i, j) {
			return true
		}
	}
	return false
}

// step jointly optimizes the pair (i, j), returning whether it moved.
func (t *trainer) step(i, j int) bool {
	t.iters++
	yi, yj := float64(t.y[i]), float64(t.y[j])
	ai, aj := t.alpha[i], t.alpha[j]
	c := t.cfg.C

	var lo, hi float64
	if t.y[i] != t.y[j] {
		lo = math.Max(0, aj-ai)
		hi = math.Min(c, c+aj-ai)
	} else {
		lo = math.Max(0, ai+aj-c)
		hi = math.Min(c, ai+aj)
	}
	if lo >= hi {
		return false
	}
	kii, kjj, kij := t.k(i, i), t.k(j, j), t.k(i, j)
	eta := 2*kij - kii - kjj
	if eta >= 0 {
		// Non-positive-curvature direction (possible for sigmoid kernels);
		// skip rather than line-search the boundary.
		return false
	}
	ajNew := aj - yj*(t.errs[i]-t.errs[j])/eta
	if ajNew > hi {
		ajNew = hi
	} else if ajNew < lo {
		ajNew = lo
	}
	if math.Abs(ajNew-aj) < 1e-12*(ajNew+aj+1e-12) {
		return false
	}
	aiNew := ai + yi*yj*(aj-ajNew)

	b1 := t.b - t.errs[i] - yi*(aiNew-ai)*kii - yj*(ajNew-aj)*kij
	b2 := t.b - t.errs[j] - yi*(aiNew-ai)*kij - yj*(ajNew-aj)*kjj
	var bNew float64
	switch {
	case aiNew > 0 && aiNew < c:
		bNew = b1
	case ajNew > 0 && ajNew < c:
		bNew = b2
	default:
		bNew = (b1 + b2) / 2
	}

	di, dj, db := yi*(aiNew-ai), yj*(ajNew-aj), bNew-t.b
	for k := 0; k < t.n; k++ {
		t.errs[k] += di*t.k(i, k) + dj*t.k(j, k) + db
	}
	t.alpha[i], t.alpha[j], t.b = aiNew, ajNew, bNew
	return true
}

func (t *trainer) model(dim int) (*Model, error) {
	var sv [][]float64
	var alphaY []float64
	for i, a := range t.alpha {
		if a > 1e-12 {
			vec := make([]float64, dim)
			copy(vec, t.x[i])
			sv = append(sv, vec)
			alphaY = append(alphaY, a*float64(t.y[i]))
		}
	}
	m := &Model{
		Kernel:         t.cfg.Kernel,
		SupportVectors: sv,
		AlphaY:         alphaY,
		Bias:           t.b,
		Dim:            dim,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
