package svm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/wire"
)

func TestKernelWireRoundTrip(t *testing.T) {
	in := &Kernel{Kind: KernelPolynomial, A0: 0.125, B0: -1.5, Degree: 3, Gamma: 0.01, C0: 2.25}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var sb bytes.Buffer
	if _, err := in.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !bytes.Equal(sb.Bytes(), data) {
		t.Fatalf("WriteTo and MarshalBinary disagree")
	}
	var out Kernel
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if out != *in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, *in)
	}
	var out2 Kernel
	if _, err := out2.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if out2 != *in {
		t.Fatalf("stream round trip mismatch")
	}
	for n := 0; n < len(data); n++ {
		var tr Kernel
		if err := tr.UnmarshalBinary(data[:n]); !errors.Is(err, wire.ErrTruncated) && !errors.Is(err, wire.ErrTrailing) {
			t.Fatalf("prefix %d: got %v, want typed error", n, err)
		}
	}
}
