package svm

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: a trainer that retrains on every restart would leak
// schedule information and waste work, so models serialize to a stable
// JSON format (kernel hyperparameters, support vectors, multipliers,
// bias).

// modelJSON is the stable wire form of a Model.
type modelJSON struct {
	Kernel         kernelJSON  `json:"kernel"`
	SupportVectors [][]float64 `json:"supportVectors"`
	AlphaY         []float64   `json:"alphaY"`
	Bias           float64     `json:"bias"`
	Dim            int         `json:"dim"`
}

type kernelJSON struct {
	Kind   string  `json:"kind"`
	A0     float64 `json:"a0,omitempty"`
	B0     float64 `json:"b0,omitempty"`
	Degree int     `json:"degree,omitempty"`
	Gamma  float64 `json:"gamma,omitempty"`
	C0     float64 `json:"c0,omitempty"`
}

func kernelToJSON(k Kernel) kernelJSON {
	return kernelJSON{
		Kind:   k.Kind.String(),
		A0:     k.A0,
		B0:     k.B0,
		Degree: k.Degree,
		Gamma:  k.Gamma,
		C0:     k.C0,
	}
}

func kernelFromJSON(k kernelJSON) (Kernel, error) {
	out := Kernel{A0: k.A0, B0: k.B0, Degree: k.Degree, Gamma: k.Gamma, C0: k.C0}
	switch k.Kind {
	case "linear":
		out.Kind = KernelLinear
	case "polynomial":
		out.Kind = KernelPolynomial
	case "rbf":
		out.Kind = KernelRBF
	case "sigmoid":
		out.Kind = KernelSigmoid
	default:
		return Kernel{}, fmt.Errorf("svm: unknown kernel kind %q", k.Kind)
	}
	return out, out.Validate()
}

// WriteModel serializes a model as JSON.
func WriteModel(w io.Writer, m *Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelJSON{
		Kernel:         kernelToJSON(m.Kernel),
		SupportVectors: m.SupportVectors,
		AlphaY:         m.AlphaY,
		Bias:           m.Bias,
		Dim:            m.Dim,
	})
}

// ReadModel parses a model from its JSON form and validates it.
func ReadModel(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("svm: decode model: %w", err)
	}
	kernel, err := kernelFromJSON(mj.Kernel)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Kernel:         kernel,
		SupportVectors: mj.SupportVectors,
		AlphaY:         mj.AlphaY,
		Bias:           mj.Bias,
		Dim:            mj.Dim,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// multiclassJSON is the stable wire form of a MulticlassModel.
type multiclassJSON struct {
	Classes []int      `json:"classes"`
	Pairs   []pairJSON `json:"pairs"`
}

type pairJSON struct {
	ClassPos int       `json:"classPos"`
	ClassNeg int       `json:"classNeg"`
	Model    modelJSON `json:"model"`
}

// WriteMulticlassModel serializes a one-vs-one ensemble as JSON.
func WriteMulticlassModel(w io.Writer, m *MulticlassModel) error {
	if err := m.Validate(); err != nil {
		return err
	}
	out := multiclassJSON{Classes: m.Classes}
	for _, p := range m.Pairs {
		out.Pairs = append(out.Pairs, pairJSON{
			ClassPos: p.ClassPos,
			ClassNeg: p.ClassNeg,
			Model: modelJSON{
				Kernel:         kernelToJSON(p.Model.Kernel),
				SupportVectors: p.Model.SupportVectors,
				AlphaY:         p.Model.AlphaY,
				Bias:           p.Model.Bias,
				Dim:            p.Model.Dim,
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadMulticlassModel parses a one-vs-one ensemble and validates it.
func ReadMulticlassModel(r io.Reader) (*MulticlassModel, error) {
	var mj multiclassJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("svm: decode multiclass model: %w", err)
	}
	out := &MulticlassModel{Classes: mj.Classes}
	for _, p := range mj.Pairs {
		kernel, err := kernelFromJSON(p.Model.Kernel)
		if err != nil {
			return nil, err
		}
		out.Pairs = append(out.Pairs, PairModel{
			ClassPos: p.ClassPos,
			ClassNeg: p.ClassNeg,
			Model: &Model{
				Kernel:         kernel,
				SupportVectors: p.Model.SupportVectors,
				AlphaY:         p.Model.AlphaY,
				Bias:           p.Model.Bias,
				Dim:            p.Model.Dim,
			},
		})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
