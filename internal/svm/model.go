package svm

import (
	"errors"
	"fmt"
)

// Model is a trained binary SVM classifier: the paper's d(t) =
// Σ_s α_s·y_s·K(x_s, t) + b with labels in {+1, −1}.
type Model struct {
	// Kernel is the kernel the model was trained with.
	Kernel Kernel
	// SupportVectors are the x_s with non-zero multipliers.
	SupportVectors [][]float64
	// AlphaY holds α_s·y_s for each support vector.
	AlphaY []float64
	// Bias is b.
	Bias float64
	// Dim is the feature dimension n.
	Dim int
}

// ErrEmptyModel reports a model without support vectors.
var ErrEmptyModel = errors.New("svm: model has no support vectors")

// Validate checks structural consistency.
func (m *Model) Validate() error {
	if len(m.SupportVectors) == 0 {
		return ErrEmptyModel
	}
	if len(m.SupportVectors) != len(m.AlphaY) {
		return fmt.Errorf("svm: %d support vectors but %d multipliers", len(m.SupportVectors), len(m.AlphaY))
	}
	for i, sv := range m.SupportVectors {
		if len(sv) != m.Dim {
			return fmt.Errorf("%w: support vector %d has dim %d, want %d", ErrDimension, i, len(sv), m.Dim)
		}
	}
	return m.Kernel.Validate()
}

// Decision evaluates d(t).
func (m *Model) Decision(t []float64) (float64, error) {
	if len(t) != m.Dim {
		return 0, fmt.Errorf("%w: sample dim %d, model dim %d", ErrDimension, len(t), m.Dim)
	}
	acc := m.Bias
	for i, sv := range m.SupportVectors {
		k, err := m.Kernel.Eval(sv, t)
		if err != nil {
			return 0, err
		}
		acc += m.AlphaY[i] * k
	}
	return acc, nil
}

// Classify returns sign(d(t)) as a {+1, −1} label (0 maps to +1, matching
// the convention that the boundary belongs to the positive class).
func (m *Model) Classify(t []float64) (int, error) {
	d, err := m.Decision(t)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return -1, nil
	}
	return 1, nil
}

// Accuracy returns the fraction of samples whose predicted label matches y.
func (m *Model) Accuracy(x [][]float64, y []int) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("svm: %d samples but %d labels", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, errors.New("svm: empty evaluation set")
	}
	correct := 0
	for i := range x {
		pred, err := m.Classify(x[i])
		if err != nil {
			return 0, err
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}

// LinearWeights collapses a linear-kernel model into its primal weight
// vector w = Σ_s α_s·y_s·x_s. The similarity protocol (§V-B) needs w and b
// explicitly. Non-linear models return an error; use kernel-space
// operations for them.
func (m *Model) LinearWeights() ([]float64, error) {
	if m.Kernel.Kind != KernelLinear {
		return nil, fmt.Errorf("svm: LinearWeights on %v kernel", m.Kernel.Kind)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	w := make([]float64, m.Dim)
	for i, sv := range m.SupportVectors {
		for j := range w {
			w[j] += m.AlphaY[i] * sv[j]
		}
	}
	return w, nil
}

// NumSupportVectors returns |S|.
func (m *Model) NumSupportVectors() int { return len(m.SupportVectors) }
