package svm_test

import (
	"strings"
	"testing"

	"repro/internal/svm"
)

// FuzzReadModel: arbitrary JSON must either load a valid model or error —
// never panic, never yield a model that fails Validate.
func FuzzReadModel(f *testing.F) {
	f.Add(`{"kernel":{"kind":"linear"},"supportVectors":[[1,2]],"alphaY":[0.5],"bias":0.1,"dim":2}`)
	f.Add(`{"kernel":{"kind":"rbf","gamma":0.5},"supportVectors":[[1]],"alphaY":[1],"dim":1}`)
	f.Add(`{"kernel":{"kind":"polynomial","a0":1,"degree":3},"supportVectors":[[0,0]],"alphaY":[1],"dim":2}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"kernel":{"kind":"linear"},"supportVectors":[[1e400]],"alphaY":[1],"dim":1}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := svm.ReadModel(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadModel returned invalid model: %v", err)
		}
	})
}
