package svm_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/svm"
)

func TestModelSerializationRoundTrip(t *testing.T) {
	x, y, _, _ := separable2D(80, 41, 0.1)
	kernels := []svm.Kernel{
		svm.Linear(),
		svm.Polynomial(0.5, 1, 3),
		svm.RBF(0.7),
		svm.Sigmoid(0.2, 0.1),
	}
	for _, k := range kernels {
		t.Run(k.Kind.String(), func(t *testing.T) {
			model, err := svm.Train(x, y, svm.Config{Kernel: k, C: 10})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := svm.WriteModel(&buf, model); err != nil {
				t.Fatal(err)
			}
			loaded, err := svm.ReadModel(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Kernel != model.Kernel {
				t.Fatalf("kernel changed: %+v vs %+v", loaded.Kernel, model.Kernel)
			}
			// Decisions must agree exactly.
			for i := 0; i < 10; i++ {
				a, err := model.Decision(x[i])
				if err != nil {
					t.Fatal(err)
				}
				b, err := loaded.Decision(x[i])
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("decision changed: %v vs %v", a, b)
				}
			}
		})
	}
}

func TestReadModelRejectsInvalid(t *testing.T) {
	cases := []string{
		"not json",
		`{"kernel":{"kind":"mystery"},"supportVectors":[[1]],"alphaY":[1],"dim":1}`,
		`{"kernel":{"kind":"linear"},"supportVectors":[],"alphaY":[],"dim":1}`,
		`{"kernel":{"kind":"linear"},"supportVectors":[[1,2]],"alphaY":[1,2],"dim":2}`,
	}
	for i, in := range cases {
		if _, err := svm.ReadModel(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestMulticlassSerializationRoundTrip(t *testing.T) {
	// Three linearly separable stripes.
	var x [][]float64
	var y []int
	for i := 0; i < 90; i++ {
		v := -1 + 2*float64(i)/89
		x = append(x, []float64{v, float64(i%7)/7 - 0.5})
		switch {
		case v < -0.3:
			y = append(y, 1)
		case v < 0.3:
			y = append(y, 2)
		default:
			y = append(y, 3)
		}
	}
	model, err := svm.TrainMulticlass(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svm.WriteMulticlassModel(&buf, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := svm.ReadMulticlassModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, err := model.Classify(x[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Classify(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("sample %d: %d vs %d after round trip", i, a, b)
		}
	}
	if _, err := svm.ReadMulticlassModel(strings.NewReader("{}")); err == nil {
		t.Fatal("empty ensemble should fail")
	}
}
