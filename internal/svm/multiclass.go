package svm

import (
	"errors"
	"fmt"
	"sort"
)

// Multiclass extension: the paper's protocols are binary (§III-A), but its
// closest related work (Rahulamathavan et al. [15]) handles multi-class
// SVMs. This file adds the standard one-vs-one decomposition: K classes
// train K(K-1)/2 binary models, and prediction is a majority vote. The
// privacy-preserving counterpart (internal/classify) runs one binary
// protocol per pair and lets the client vote locally, so the trainer never
// learns which pairs were decisive.

// PairModel is one binary member of a one-vs-one ensemble: its +1 side is
// ClassPos, its −1 side ClassNeg.
type PairModel struct {
	ClassPos int
	ClassNeg int
	Model    *Model
}

// MulticlassModel is a one-vs-one ensemble over arbitrary integer labels.
type MulticlassModel struct {
	// Classes lists the distinct labels in ascending order.
	Classes []int
	// Pairs holds one binary model per unordered class pair.
	Pairs []PairModel
}

// TrainMulticlass fits a one-vs-one ensemble. Labels may be any integers
// (at least two distinct values).
func TrainMulticlass(x [][]float64, y []int, cfg Config) (*MulticlassModel, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", len(x), len(y))
	}
	classSet := make(map[int]bool)
	for _, label := range y {
		classSet[label] = true
	}
	if len(classSet) < 2 {
		return nil, errors.New("svm: multiclass training needs >= 2 classes")
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	var pairs []PairModel
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			pos, neg := classes[i], classes[j]
			var px [][]float64
			var py []int
			for k := range x {
				switch y[k] {
				case pos:
					px = append(px, x[k])
					py = append(py, 1)
				case neg:
					px = append(px, x[k])
					py = append(py, -1)
				}
			}
			model, err := Train(px, py, cfg)
			if err != nil {
				return nil, fmt.Errorf("svm: pair (%d,%d): %w", pos, neg, err)
			}
			pairs = append(pairs, PairModel{ClassPos: pos, ClassNeg: neg, Model: model})
		}
	}
	return &MulticlassModel{Classes: classes, Pairs: pairs}, nil
}

// Validate checks structural consistency.
func (m *MulticlassModel) Validate() error {
	if len(m.Classes) < 2 {
		return errors.New("svm: multiclass model needs >= 2 classes")
	}
	want := len(m.Classes) * (len(m.Classes) - 1) / 2
	if len(m.Pairs) != want {
		return fmt.Errorf("svm: %d pair models, want %d", len(m.Pairs), want)
	}
	for _, p := range m.Pairs {
		if err := p.Model.Validate(); err != nil {
			return fmt.Errorf("svm: pair (%d,%d): %w", p.ClassPos, p.ClassNeg, err)
		}
	}
	return nil
}

// Classify predicts by majority vote over the pairwise models; ties break
// toward the smaller label (deterministic, matching LIBSVM).
func (m *MulticlassModel) Classify(t []float64) (int, error) {
	votes := make(map[int]int, len(m.Classes))
	for _, p := range m.Pairs {
		label, err := p.Model.Classify(t)
		if err != nil {
			return 0, err
		}
		if label > 0 {
			votes[p.ClassPos]++
		} else {
			votes[p.ClassNeg]++
		}
	}
	return Vote(m.Classes, votes)
}

// Vote resolves a vote tally deterministically (most votes, smallest
// label on ties). It is exported so the private protocol's client-side
// voting matches exactly.
func Vote(classes []int, votes map[int]int) (int, error) {
	if len(classes) == 0 {
		return 0, errors.New("svm: no classes to vote over")
	}
	best := classes[0]
	for _, c := range classes[1:] {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best, nil
}

// Accuracy evaluates the ensemble.
func (m *MulticlassModel) Accuracy(x [][]float64, y []int) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, fmt.Errorf("svm: bad evaluation set (%d samples, %d labels)", len(x), len(y))
	}
	correct := 0
	for i := range x {
		pred, err := m.Classify(x[i])
		if err != nil {
			return 0, err
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}
