package svm

import (
	"errors"
	"fmt"
)

// Scaler linearly maps each feature into [-1, 1], the preprocessing the
// paper applies to every dataset ("all the data have been scaled to
// [−1,1]", §VI-B). Fit it on training data and apply it to both splits.
type Scaler struct {
	// Min and Max are the per-feature training ranges.
	Min []float64
	Max []float64
}

// FitScaler learns per-feature ranges from x.
func FitScaler(x [][]float64) (*Scaler, error) {
	if len(x) == 0 {
		return nil, errors.New("svm: cannot fit scaler on empty data")
	}
	dim := len(x[0])
	s := &Scaler{Min: make([]float64, dim), Max: make([]float64, dim)}
	copy(s.Min, x[0])
	copy(s.Max, x[0])
	for _, row := range x[1:] {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: row dim %d, want %d", ErrDimension, len(row), dim)
		}
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s, nil
}

// Apply maps one sample into [-1, 1] per feature. Constant features map
// to 0. Values outside the training range extrapolate linearly, matching
// LIBSVM's svm-scale behaviour.
func (s *Scaler) Apply(row []float64) ([]float64, error) {
	if len(row) != len(s.Min) {
		return nil, fmt.Errorf("%w: row dim %d, want %d", ErrDimension, len(row), len(s.Min))
	}
	out := make([]float64, len(row))
	for j, v := range row {
		span := s.Max[j] - s.Min[j]
		if span == 0 {
			out[j] = 0
			continue
		}
		out[j] = -1 + 2*(v-s.Min[j])/span
	}
	return out, nil
}

// ApplyAll maps a whole matrix.
func (s *Scaler) ApplyAll(x [][]float64) ([][]float64, error) {
	out := make([][]float64, len(x))
	for i, row := range x {
		scaled, err := s.Apply(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = scaled
	}
	return out, nil
}
