// Package svm implements the supervised-learning substrate of the paper:
// soft-margin support vector machines trained by sequential minimal
// optimization (SMO), with the linear, polynomial, RBF and sigmoid kernels
// of §III-A and §IV-B. It stands in for LIBSVM, which the paper's
// experiments use as the training black box.
package svm

import (
	"errors"
	"fmt"
	"math"
)

// KernelKind enumerates the supported kernel families.
type KernelKind int

const (
	// KernelLinear is K(x,y) = x·y.
	KernelLinear KernelKind = iota + 1
	// KernelPolynomial is K(x,y) = (a0·x·y + b0)^p (paper default
	// a0 = 1/n, b0 = 0, p = 3).
	KernelPolynomial
	// KernelRBF is K(x,y) = exp(−γ·‖x−y‖²).
	KernelRBF
	// KernelSigmoid is K(x,y) = tanh(a0·x·y + c0).
	KernelSigmoid
)

// String implements fmt.Stringer.
func (k KernelKind) String() string {
	switch k {
	case KernelLinear:
		return "linear"
	case KernelPolynomial:
		return "polynomial"
	case KernelRBF:
		return "rbf"
	case KernelSigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// ErrDimension reports vectors of mismatched dimension.
var ErrDimension = errors.New("svm: dimension mismatch")

// Kernel is a positive-definite (or conditionally usable) kernel function
// together with its parameters.
type Kernel struct {
	Kind KernelKind
	// A0 scales the inner product for polynomial and sigmoid kernels.
	A0 float64
	// B0 is the polynomial kernel's additive constant.
	B0 float64
	// Degree is the polynomial kernel's exponent p.
	Degree int
	// Gamma is the RBF kernel's width.
	Gamma float64
	// C0 is the sigmoid kernel's additive constant.
	C0 float64
}

// Linear returns the linear kernel.
func Linear() Kernel { return Kernel{Kind: KernelLinear} }

// Polynomial returns (a0·x·y + b0)^degree.
func Polynomial(a0, b0 float64, degree int) Kernel {
	return Kernel{Kind: KernelPolynomial, A0: a0, B0: b0, Degree: degree}
}

// PaperPolynomial returns the paper's default nonlinear kernel for an
// n-dimensional dataset: a0 = 1/n, b0 = 0, p = 3 (§VI-B.1).
func PaperPolynomial(n int) Kernel {
	return Polynomial(1/float64(n), 0, 3)
}

// RBF returns exp(−γ‖x−y‖²).
func RBF(gamma float64) Kernel { return Kernel{Kind: KernelRBF, Gamma: gamma} }

// Sigmoid returns tanh(a0·x·y + c0).
func Sigmoid(a0, c0 float64) Kernel { return Kernel{Kind: KernelSigmoid, A0: a0, C0: c0} }

// Validate checks the kernel's parameters.
func (k Kernel) Validate() error {
	switch k.Kind {
	case KernelLinear:
		return nil
	case KernelPolynomial:
		if k.Degree < 1 {
			return fmt.Errorf("svm: polynomial kernel degree %d", k.Degree)
		}
		if k.A0 == 0 {
			return errors.New("svm: polynomial kernel a0 must be non-zero")
		}
		return nil
	case KernelRBF:
		if k.Gamma <= 0 {
			return fmt.Errorf("svm: rbf gamma %v must be positive", k.Gamma)
		}
		return nil
	case KernelSigmoid:
		if k.A0 == 0 {
			return errors.New("svm: sigmoid kernel a0 must be non-zero")
		}
		return nil
	default:
		return fmt.Errorf("svm: unknown kernel kind %d", int(k.Kind))
	}
}

// Eval computes K(x, y).
func (k Kernel) Eval(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimension, len(x), len(y))
	}
	switch k.Kind {
	case KernelLinear:
		return dot(x, y), nil
	case KernelPolynomial:
		return math.Pow(k.A0*dot(x, y)+k.B0, float64(k.Degree)), nil
	case KernelRBF:
		return math.Exp(-k.Gamma * sqDist(x, y)), nil
	case KernelSigmoid:
		return math.Tanh(k.A0*dot(x, y) + k.C0), nil
	default:
		return 0, fmt.Errorf("svm: unknown kernel kind %d", int(k.Kind))
	}
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func sqDist(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}
