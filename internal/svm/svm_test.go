package svm_test

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/svm"
)

// separable2D builds a linearly separable 2-D set around w·x + b = 0.
func separable2D(n int, seed uint64, margin float64) ([][]float64, []int, []float64, float64) {
	rng := rand.New(rand.NewPCG(seed, 17))
	w := []float64{0.8, -0.6}
	b := 0.1
	var x [][]float64
	var y []int
	for len(x) < n {
		p := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		s := w[0]*p[0] + w[1]*p[1] + b
		if math.Abs(s) < margin {
			continue
		}
		x = append(x, p)
		if s > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y, w, b
}

func TestTrainSeparableLinear(t *testing.T) {
	x, y, _, _ := separable2D(200, 3, 0.1)
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := model.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("training accuracy %.3f on separable data", acc)
	}
}

func TestTrainRecoversDirection(t *testing.T) {
	x, y, wTrue, _ := separable2D(400, 5, 0.15)
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	w, err := model.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	cos := (w[0]*wTrue[0] + w[1]*wTrue[1]) /
		(math.Hypot(w[0], w[1]) * math.Hypot(wTrue[0], wTrue[1]))
	if cos < 0.98 {
		t.Fatalf("learned direction cos=%.3f from true normal", cos)
	}
}

func TestTrainValidation(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	if _, err := svm.Train(x[:1], []int{1}, svm.Config{}); err == nil {
		t.Fatal("single sample should fail")
	}
	if _, err := svm.Train(x, []int{1}, svm.Config{}); err == nil {
		t.Fatal("label count mismatch should fail")
	}
	if _, err := svm.Train(x, []int{1, 2}, svm.Config{}); err == nil {
		t.Fatal("non-±1 label should fail")
	}
	if _, err := svm.Train(x, []int{1, 1}, svm.Config{}); err == nil {
		t.Fatal("single-class set should fail")
	}
	if _, err := svm.Train([][]float64{{1, 2}, {3}}, []int{1, -1}, svm.Config{}); err == nil {
		t.Fatal("ragged rows should fail")
	}
	if _, err := svm.Train(x, []int{1, -1}, svm.Config{C: -1}); err == nil {
		t.Fatal("negative C should fail")
	}
}

func TestTrainXORWithPolynomialKernel(t *testing.T) {
	// XOR on {±1}²: unlearnable linearly, exactly representable by the
	// inhomogeneous quadratic kernel.
	x := [][]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	y := []int{1, -1, -1, 1}
	// Repeat to give the optimizer more than one point per corner.
	var xs [][]float64
	var ys []int
	for r := 0; r < 10; r++ {
		xs = append(xs, x...)
		ys = append(ys, y...)
	}
	linModel, err := svm.Train(xs, ys, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	linAcc, _ := linModel.Accuracy(xs, ys)
	polyModel, err := svm.Train(xs, ys, svm.Config{Kernel: svm.Polynomial(1, 1, 2), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	polyAcc, _ := polyModel.Accuracy(xs, ys)
	if polyAcc != 1 {
		t.Fatalf("poly kernel accuracy %.2f on XOR, want 1.0", polyAcc)
	}
	if linAcc > 0.75 {
		t.Fatalf("linear kernel accuracy %.2f on XOR, should be <= 0.75", linAcc)
	}
}

func TestTrainRBF(t *testing.T) {
	// A disc: +1 inside radius 0.5, −1 outside — RBF territory.
	rng := rand.New(rand.NewPCG(7, 7))
	var x [][]float64
	var y []int
	for len(x) < 300 {
		p := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		r := math.Hypot(p[0], p[1])
		if math.Abs(r-0.5) < 0.08 {
			continue
		}
		x = append(x, p)
		if r < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.RBF(2), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := model.Accuracy(x, y)
	if acc < 0.95 {
		t.Fatalf("RBF accuracy %.3f on disc data", acc)
	}
}

func TestTrainSigmoid(t *testing.T) {
	x, y, _, _ := separable2D(150, 11, 0.15)
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Sigmoid(0.5, 0), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := model.Accuracy(x, y)
	if acc < 0.9 {
		t.Fatalf("sigmoid accuracy %.3f on separable data", acc)
	}
}

func TestGramLimitFallback(t *testing.T) {
	// Force on-the-fly kernel evaluation and check it trains identically.
	x, y, _, _ := separable2D(80, 13, 0.1)
	withGram, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	withoutGram, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 1, GramLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	accA, _ := withGram.Accuracy(x, y)
	accB, _ := withoutGram.Accuracy(x, y)
	if math.Abs(accA-accB) > 0.05 {
		t.Fatalf("gram cache changed the solution: %.3f vs %.3f", accA, accB)
	}
}

func TestKernelValues(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{-1, 0.5, 2}
	dot := -1 + 1 + 6.0

	lin, err := svm.Linear().Eval(x, y)
	if err != nil || lin != dot {
		t.Fatalf("linear = %v, %v", lin, err)
	}
	poly, err := svm.Polynomial(0.5, 1, 2).Eval(x, y)
	if err != nil || math.Abs(poly-math.Pow(0.5*dot+1, 2)) > 1e-12 {
		t.Fatalf("poly = %v, %v", poly, err)
	}
	d2 := 4 + 2.25 + 1.0
	rbf, err := svm.RBF(0.3).Eval(x, y)
	if err != nil || math.Abs(rbf-math.Exp(-0.3*d2)) > 1e-12 {
		t.Fatalf("rbf = %v, %v", rbf, err)
	}
	sig, err := svm.Sigmoid(0.1, 0.2).Eval(x, y)
	if err != nil || math.Abs(sig-math.Tanh(0.1*dot+0.2)) > 1e-12 {
		t.Fatalf("sigmoid = %v, %v", sig, err)
	}
	if _, err := svm.Linear().Eval(x, y[:2]); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestKernelSymmetry(t *testing.T) {
	kernels := []svm.Kernel{
		svm.Linear(), svm.Polynomial(0.25, 0.5, 3), svm.RBF(1.5), svm.Sigmoid(0.2, -0.1),
	}
	rng := rand.New(rand.NewPCG(19, 23))
	check := func(int) bool {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		for _, k := range kernels {
			a, err := k.Eval(x, y)
			if err != nil {
				return false
			}
			b, err := k.Eval(y, x)
			if err != nil {
				return false
			}
			if math.Abs(a-b) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKernelValidate(t *testing.T) {
	bad := []svm.Kernel{
		{Kind: svm.KernelPolynomial, A0: 1, Degree: 0},
		{Kind: svm.KernelPolynomial, A0: 0, Degree: 2},
		{Kind: svm.KernelRBF, Gamma: 0},
		{Kind: svm.KernelSigmoid, A0: 0},
		{Kind: svm.KernelKind(99)},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
	if svm.PaperPolynomial(10).A0 != 0.1 {
		t.Fatal("paper kernel a0 != 1/n")
	}
}

func TestModelValidate(t *testing.T) {
	m := &svm.Model{Kernel: svm.Linear(), Dim: 2}
	if err := m.Validate(); err == nil {
		t.Fatal("empty model should fail")
	}
	m = &svm.Model{
		Kernel:         svm.Linear(),
		SupportVectors: [][]float64{{1, 2}},
		AlphaY:         []float64{1, 2},
		Dim:            2,
	}
	if err := m.Validate(); err == nil {
		t.Fatal("multiplier count mismatch should fail")
	}
	m.AlphaY = []float64{1}
	m.SupportVectors = [][]float64{{1}}
	if err := m.Validate(); err == nil {
		t.Fatal("support vector dim mismatch should fail")
	}
}

func TestLinearWeightsEquivalence(t *testing.T) {
	x, y, _, _ := separable2D(120, 29, 0.1)
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := model.LinearWeights()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		s := x[trial]
		viaKernel, err := model.Decision(s)
		if err != nil {
			t.Fatal(err)
		}
		viaWeights := model.Bias
		for j := range w {
			viaWeights += w[j] * s[j]
		}
		if math.Abs(viaKernel-viaWeights) > 1e-9 {
			t.Fatalf("decision mismatch: kernel %v vs weights %v", viaKernel, viaWeights)
		}
	}
	polyModel, err := svm.Train(x, y, svm.Config{Kernel: svm.Polynomial(1, 0, 3), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := polyModel.LinearWeights(); err == nil {
		t.Fatal("LinearWeights must fail on nonlinear models")
	}
}

func TestClassifyBoundaryConvention(t *testing.T) {
	x, y, _, _ := separable2D(60, 31, 0.1)
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Classify([]float64{0}); err == nil {
		t.Fatal("wrong dim should fail")
	}
	if _, err := model.Accuracy(x, y[:3]); err == nil {
		t.Fatal("mismatched accuracy inputs should fail")
	}
	if _, err := model.Accuracy(nil, nil); err == nil {
		t.Fatal("empty accuracy inputs should fail")
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{0, 10, -5}, {4, 20, -5}, {2, 15, -5}}
	s, err := svm.FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := s.ApplyAll(x)
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0][0] != -1 || scaled[1][0] != 1 || scaled[2][0] != 0 {
		t.Fatalf("feature 0 scaling wrong: %v", scaled)
	}
	// Constant features map to 0.
	for i := range scaled {
		if scaled[i][2] != 0 {
			t.Fatalf("constant feature should map to 0, got %v", scaled[i][2])
		}
	}
	// Out-of-range values extrapolate.
	out, err := s.Apply([]float64{8, 10, -5})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("extrapolation = %v, want 3", out[0])
	}
	if _, err := s.Apply([]float64{1}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	if _, err := svm.FitScaler(nil); err == nil {
		t.Fatal("empty fit should fail")
	}
}

func TestMaxIterTerminates(t *testing.T) {
	x, y, _, _ := separable2D(100, 37, 0.01)
	model, err := svm.Train(x, y, svm.Config{Kernel: svm.Linear(), C: 1e6, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if model.NumSupportVectors() == 0 {
		t.Fatal("no support vectors after iteration cap")
	}
}
