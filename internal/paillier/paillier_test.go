package paillier_test

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/paillier"
)

// testKey caches one key pair — generation dominates test time otherwise.
var (
	keyOnce sync.Once
	testKey *paillier.PrivateKey
	keyErr  error
)

func key(t *testing.T) *paillier.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		testKey, keyErr = paillier.GenerateKey(rand.Reader, 512)
	})
	if keyErr != nil {
		t.Fatal(keyErr)
	}
	return testKey
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, 42, 1 << 30} {
		ct, err := sk.Encrypt(big.NewInt(m), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Int64() != m {
			t.Fatalf("round trip %d -> %d", m, pt.Int64())
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 5, -5, -(1 << 40), 1 << 40} {
		ct, err := sk.EncryptSigned(big.NewInt(m), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := sk.DecryptSigned(ct)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Int64() != m {
			t.Fatalf("signed round trip %d -> %d", m, pt.Int64())
		}
	}
}

// TestAdditiveHomomorphism: Dec(E(a)·E(b)) = a+b.
func TestAdditiveHomomorphism(t *testing.T) {
	sk := key(t)
	check := func(a, b int32) bool {
		ca, err := sk.EncryptSigned(big.NewInt(int64(a)), rand.Reader)
		if err != nil {
			return false
		}
		cb, err := sk.EncryptSigned(big.NewInt(int64(b)), rand.Reader)
		if err != nil {
			return false
		}
		sum, err := sk.DecryptSigned(sk.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestScalarHomomorphism: Dec(E(m)^k) = k·m, including negative k via the
// centered embedding.
func TestScalarHomomorphism(t *testing.T) {
	sk := key(t)
	check := func(m, k int16) bool {
		cm, err := sk.EncryptSigned(big.NewInt(int64(m)), rand.Reader)
		if err != nil {
			return false
		}
		prod, err := sk.DecryptSigned(sk.MulPlain(cm, big.NewInt(int64(k))))
		if err != nil {
			return false
		}
		return prod.Int64() == int64(m)*int64(k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := key(t)
	m := big.NewInt(7)
	c1, err := sk.Encrypt(m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same message collided")
	}
}

func TestValidation(t *testing.T) {
	sk := key(t)
	if _, err := sk.Encrypt(big.NewInt(-1), rand.Reader); err == nil {
		t.Fatal("negative plaintext should fail Encrypt")
	}
	if _, err := sk.Encrypt(sk.N, rand.Reader); err == nil {
		t.Fatal("m = N should fail")
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("zero ciphertext should fail")
	}
	if _, err := sk.Decrypt(sk.N2); err == nil {
		t.Fatal("ciphertext >= N² should fail")
	}
	half := new(big.Int).Rsh(sk.N, 1)
	if _, err := sk.EncryptSigned(half, rand.Reader); err == nil {
		t.Fatal("signed value >= N/2 should fail")
	}
	if _, err := paillier.GenerateKey(rand.Reader, 32); err == nil {
		t.Fatal("tiny modulus should fail")
	}
}

func TestBaselineClassifier(t *testing.T) {
	client, err := paillier.NewBaselineClient(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.5, -1.25, 2}
	b := -0.75
	trainer, err := paillier.NewBaselineTrainer(client.PublicKey(), w, b)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sample []float64
		want   int
	}{
		{[]float64{1, 0, 0}, -1},   // 0.5 - 0.75 < 0
		{[]float64{0, 0, 1}, 1},    // 2 - 0.75 > 0
		{[]float64{0, 1, 0}, -1},   // -1.25 - 0.75 < 0
		{[]float64{1, -1, 0.5}, 1}, // 0.5+1.25+1-0.75 > 0
		{[]float64{-1, 1, -1}, -1}, // all negative contributions
	}
	for i, tc := range cases {
		enc, err := client.EncryptSample(tc.sample, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := trainer.Classify(enc, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		label, err := client.DecryptLabel(ct)
		if err != nil {
			t.Fatal(err)
		}
		if label != tc.want {
			t.Fatalf("case %d: label %d, want %d", i, label, tc.want)
		}
	}
}

func TestBaselineValidation(t *testing.T) {
	client, err := paillier.NewBaselineClient(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := paillier.NewBaselineTrainer(client.PublicKey(), []float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Classify([]*big.Int{big.NewInt(1)}, rand.Reader); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	if _, err := trainer.Classify([]*big.Int{big.NewInt(0), big.NewInt(1)}, rand.Reader); err == nil {
		t.Fatal("invalid ciphertext should fail")
	}
	if _, err := paillier.NewBaselineTrainer(nil, []float64{1}, 0); err == nil {
		t.Fatal("nil key should fail")
	}
}
