// Package paillier implements the Paillier additively homomorphic
// cryptosystem and a Paillier-based private linear classifier in the style
// of Rahulamathavan et al. (the paper's reference [15]) — the related-work
// baseline the paper argues "introduces too much complexity for the
// computations". The ablation benches compare it against the OMPE
// protocol.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	// ErrMessageRange reports a plaintext outside [0, N).
	ErrMessageRange = errors.New("paillier: message out of range")
	// ErrBadCiphertext reports a ciphertext outside [0, N²) or not
	// invertible.
	ErrBadCiphertext = errors.New("paillier: invalid ciphertext")
)

// PublicKey is a Paillier public key with g = N+1.
type PublicKey struct {
	N  *big.Int
	N2 *big.Int // N²
}

// PrivateKey holds the decryption trapdoor.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod N²))⁻¹ mod N
}

// GenerateKey creates a key pair with an N of the given bit length.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus too small (%d bits)", bits)
	}
	for {
		p, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(rng, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)

		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, big.NewInt(1))
		// mu = (L(g^lambda mod N²))⁻¹ mod N
		gl := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(gl, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
}

func lFunc(x, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, big.NewInt(1)), n)
}

// Encrypt encrypts m ∈ [0, N) as c = (1+N)^m · r^N mod N².
func (pk *PublicKey) Encrypt(m *big.Int, rng io.Reader) (*big.Int, error) {
	if m == nil || m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	r, err := pk.randomUnit(rng)
	if err != nil {
		return nil, err
	}
	// (1+N)^m = 1 + m·N mod N², which is much cheaper than a modexp.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pk.N2), nil
}

// EncryptSigned embeds a signed integer via centered representation.
func (pk *PublicKey) EncryptSigned(m *big.Int, rng io.Reader) (*big.Int, error) {
	half := new(big.Int).Rsh(pk.N, 1)
	if new(big.Int).Abs(m).Cmp(half) >= 0 {
		return nil, ErrMessageRange
	}
	return pk.Encrypt(new(big.Int).Mod(m, pk.N), rng)
}

// Decrypt recovers m ∈ [0, N).
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c == nil || c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, ErrBadCiphertext
	}
	cl := new(big.Int).Exp(c, sk.lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.mu)
	return m.Mod(m, sk.N), nil
}

// DecryptSigned recovers a signed integer from centered representation.
func (sk *PrivateKey) DecryptSigned(c *big.Int) (*big.Int, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return nil, err
	}
	half := new(big.Int).Rsh(sk.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, sk.N)
	}
	return m, nil
}

// Add homomorphically adds two ciphertexts: Dec(Add(c1,c2)) = m1+m2.
func (pk *PublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// MulPlain homomorphically multiplies by a plaintext scalar:
// Dec(MulPlain(c,k)) = k·m. Negative scalars use the centered embedding.
func (pk *PublicKey) MulPlain(c, k *big.Int) *big.Int {
	e := new(big.Int).Mod(k, pk.N)
	return new(big.Int).Exp(c, e, pk.N2)
}

// randomUnit samples r ∈ [1, N) coprime to N.
func (pk *PublicKey) randomUnit(rng io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(rng, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			return r, nil
		}
	}
}
