package paillier

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
)

// Baseline private linear classification in the style of Rahulamathavan et
// al. [15]: the client encrypts its sample under its own Paillier key; the
// trainer evaluates the linear decision function homomorphically
// (Enc(d·S²) = Π Enc(t_j)^{round(w_j·S)} · Enc(round(b·S²))) and returns
// the ciphertext; the client decrypts and takes the sign. This measures
// the dominant homomorphic-evaluation cost of the cryptographic
// alternative the paper dismisses as impractical.

// ClassifierScaleBits is the fixed-point precision of the baseline.
const ClassifierScaleBits = 32

// BaselineClient is the sample owner: it holds the Paillier key pair.
type BaselineClient struct {
	key   *PrivateKey
	scale *big.Int
}

// BaselineTrainer is the model owner: it evaluates under the client's
// public key.
type BaselineTrainer struct {
	pk      *PublicKey
	weights []*big.Int // round(w_j·S)
	bias    *big.Int   // round(b·S²)
}

// NewBaselineClient generates a key pair of the given modulus size.
func NewBaselineClient(rng io.Reader, bits int) (*BaselineClient, error) {
	key, err := GenerateKey(rng, bits)
	if err != nil {
		return nil, err
	}
	return &BaselineClient{
		key:   key,
		scale: new(big.Int).Lsh(big.NewInt(1), ClassifierScaleBits),
	}, nil
}

// PublicKey returns the client's public key for the trainer.
func (c *BaselineClient) PublicKey() *PublicKey { return &c.key.PublicKey }

// EncryptSample encrypts a sample component-wise at the base scale.
func (c *BaselineClient) EncryptSample(sample []float64, rng io.Reader) ([]*big.Int, error) {
	out := make([]*big.Int, len(sample))
	for i, v := range sample {
		m, err := encodeFixed(v, c.scale)
		if err != nil {
			return nil, fmt.Errorf("paillier: component %d: %w", i, err)
		}
		ct, err := c.key.EncryptSigned(m, rng)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// DecryptLabel decrypts the returned ciphertext and maps to a ±1 label.
func (c *BaselineClient) DecryptLabel(ct *big.Int) (int, error) {
	m, err := c.key.DecryptSigned(ct)
	if err != nil {
		return 0, err
	}
	if m.Sign() < 0 {
		return -1, nil
	}
	return 1, nil
}

// NewBaselineTrainer fixes a linear model (w, b) under the client's key.
func NewBaselineTrainer(pk *PublicKey, w []float64, b float64) (*BaselineTrainer, error) {
	if pk == nil || len(w) == 0 {
		return nil, errors.New("paillier: invalid trainer inputs")
	}
	scale := new(big.Int).Lsh(big.NewInt(1), ClassifierScaleBits)
	scale2 := new(big.Int).Lsh(big.NewInt(1), 2*ClassifierScaleBits)
	weights := make([]*big.Int, len(w))
	for i, v := range w {
		m, err := encodeFixed(v, scale)
		if err != nil {
			return nil, fmt.Errorf("paillier: weight %d: %w", i, err)
		}
		weights[i] = m
	}
	bias, err := encodeFixed(b, scale2)
	if err != nil {
		return nil, err
	}
	return &BaselineTrainer{pk: pk, weights: weights, bias: bias}, nil
}

// Classify evaluates Enc(d(t)·S²) homomorphically from the encrypted
// sample.
func (t *BaselineTrainer) Classify(encSample []*big.Int, rng io.Reader) (*big.Int, error) {
	if len(encSample) != len(t.weights) {
		return nil, fmt.Errorf("paillier: sample dim %d, model dim %d", len(encSample), len(t.weights))
	}
	acc, err := t.pk.EncryptSigned(t.bias, rng)
	if err != nil {
		return nil, err
	}
	for i, ct := range encSample {
		if ct == nil || ct.Sign() <= 0 || ct.Cmp(t.pk.N2) >= 0 {
			return nil, ErrBadCiphertext
		}
		acc = t.pk.Add(acc, t.pk.MulPlain(ct, t.weights[i]))
	}
	return acc, nil
}

func encodeFixed(v float64, scale *big.Int) (*big.Int, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, errors.New("value not finite")
	}
	r := new(big.Rat).SetFloat64(v)
	r.Mul(r, new(big.Rat).SetInt(scale))
	num := new(big.Int).Set(r.Num())
	den := r.Denom()
	q := new(big.Int).Quo(num, den)
	return q, nil
}
