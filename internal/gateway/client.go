package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// FleetClient is a classification client that rides the gateway's
// failover: it lazily opens a fast-classification session through the
// gateway and, when a query fails mid-session (replica death tears the
// splice down), discards the session and redials. The gateway routes
// the fresh session to a surviving replica, so a replica crash costs
// the client one retried batch, not an error. Shedding answers
// (ErrFleetBusy, ErrShuttingDown) are deliberate and are never retried.
//
// FleetClient is not safe for concurrent use; pipelining happens inside
// a session (ClassifyPipelined), not across clients.
type FleetClient struct {
	dial     Dialer
	addr     string
	opts     transport.Options
	rng      io.Reader
	retryMax int

	mu      sync.Mutex
	client  *transport.FastClassifyClient
	conn    net.Conn
	retries atomic.Int64
	// resume caches the state harvested at the last clean Close when the
	// options offer resumption; the next dial presents it (single-use —
	// consumed whether or not the server grants it).
	resume  *transport.ResumeState
	resumed atomic.Int64
}

// Resumed reports how many of this client's sessions skipped the base
// phase by presenting a ticket.
func (c *FleetClient) Resumed() int64 { return c.resumed.Load() }

// NewFleetClient builds a client that reaches the gateway at addr via
// dial (nil dials TCP with opts' retry policy). retryMax bounds redial
// attempts per query batch (0 selects 2: one per surviving replica in
// the smallest interesting fleet).
func NewFleetClient(dial Dialer, addr string, opts transport.Options, rng io.Reader, retryMax int) *FleetClient {
	if dial == nil {
		dial = func(ctx context.Context, a string) (net.Conn, error) {
			return transport.DialContext(ctx, a, opts)
		}
	}
	if retryMax <= 0 {
		retryMax = 2
	}
	return &FleetClient{dial: dial, addr: addr, opts: opts, rng: rng, retryMax: retryMax}
}

// Retries reports how many sessions were discarded and redialed.
func (c *FleetClient) Retries() int64 { return c.retries.Load() }

// session returns the live session, dialing a fresh one if needed.
func (c *FleetClient) session(ctx context.Context) (*transport.FastClassifyClient, error) {
	if c.client != nil {
		return c.client, nil
	}
	nc, err := c.dial(ctx, c.addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: fleet dial: %w", err)
	}
	opts := c.opts
	if c.resume != nil {
		opts.Resume = c.resume
		c.resume = nil
	}
	cl, err := transport.NewFastClassifyClientContext(ctx, nc, opts, c.rng)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	if cl.Resumed() {
		c.resumed.Add(1)
	}
	c.client = cl
	c.conn = nc
	return cl, nil
}

// discard tears the current session down after a failure.
func (c *FleetClient) discard() {
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.client = nil
	c.conn = nil
}

// retryable reports whether err is worth a redial: infrastructure
// failures are (the gateway fails the next session over to a surviving
// replica), deliberate shedding is not.
func retryable(err error) bool {
	if IsFleetBusy(err) || IsNoReplicas(err) {
		return false
	}
	if errors.Is(err, transport.ErrRemote) && strings.Contains(err.Error(), ErrShuttingDown.Error()) {
		return false
	}
	return true
}

// ClassifyBatch classifies samples in one round trip, redialing through
// the gateway on session failure.
func (c *FleetClient) ClassifyBatch(ctx context.Context, samples [][]float64) ([]int, error) {
	return c.retry(ctx, func(cl *transport.FastClassifyClient) ([]int, error) {
		return cl.ClassifyBatchContext(ctx, samples)
	})
}

// ClassifyPipelined classifies samples in pipelined batches, redialing
// through the gateway on session failure. A retry replays the whole
// sample set on the fresh session (queries are stateless, so replay is
// idempotent).
func (c *FleetClient) ClassifyPipelined(ctx context.Context, samples [][]float64, batchSize, inflight int) ([]int, error) {
	return c.retry(ctx, func(cl *transport.FastClassifyClient) ([]int, error) {
		return cl.ClassifyPipelined(ctx, samples, batchSize, inflight)
	})
}

func (c *FleetClient) retry(ctx context.Context, op func(*transport.FastClassifyClient) ([]int, error)) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.retryMax; attempt++ {
		if err := ctx.Err(); err != nil {
			break
		}
		cl, err := c.session(ctx)
		if err != nil {
			lastErr = err
			if !retryable(err) {
				return nil, err
			}
			c.retries.Add(1)
			continue
		}
		out, err := op(cl)
		if err == nil {
			return out, nil
		}
		lastErr = err
		c.discard()
		if !retryable(err) {
			return nil, err
		}
		c.retries.Add(1)
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, fmt.Errorf("gateway: fleet query failed after %d redial(s): %w", c.retries.Load(), lastErr)
}

// Close ends the current session, if any, harvesting its resumption
// state for the next dial (sessions end but the client object lives on:
// the per-query methods transparently redial).
func (c *FleetClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.client != nil {
		err := c.client.Close()
		if st := c.client.ResumeState(); st != nil {
			c.resume = st
		}
		c.client = nil
		c.conn = nil
		return err
	}
	return nil
}
