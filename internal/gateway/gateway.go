// Package gateway is the fleet's front door: it shards client sessions
// across N trainer replicas. The protocol is session-oriented — one
// connection carries one negotiated session (handshake, codec switch,
// then any number of pipelined queries) — so affinity is structural: the
// gateway picks a replica per accepted connection and splices raw bytes
// both ways for the connection's lifetime. The replica sees the pristine
// client byte stream (the gateway never re-frames, so codec negotiation,
// golden transcripts, and wire determinism are untouched), and a session
// can never straddle two replicas.
//
// On top of the splice the gateway adds fleet mechanics: least-loaded
// routing over healthy replicas, dial failover (a replica that refuses a
// connection is marked down and the session lands on the next choice),
// background health probing that revives recovered replicas, per-replica
// draining, load shedding with the typed ErrFleetBusy answer, and a
// graceful Shutdown that drains spliced sessions under a budget.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// ErrFleetBusy is reported to clients shed at the gateway's MaxSessions
// cap. It crosses the wire as a transport error envelope; clients detect
// it with IsFleetBusy.
var ErrFleetBusy = errors.New("gateway: fleet at capacity")

// ErrNoReplicas is reported to clients when no healthy replica accepted
// the session (all down, draining, or failing to dial).
var ErrNoReplicas = errors.New("gateway: no healthy replicas")

// ErrShuttingDown is reported to clients that connect while the gateway
// drains.
var ErrShuttingDown = errors.New("gateway: shutting down")

// IsFleetBusy reports whether err is ErrFleetBusy, locally or as the
// remote form a shed client receives (remote errors cross as text inside
// an ErrRemote envelope, so sentinel identity does not survive the wire).
func IsFleetBusy(err error) bool {
	return errors.Is(err, ErrFleetBusy) ||
		(errors.Is(err, transport.ErrRemote) && strings.Contains(err.Error(), ErrFleetBusy.Error()))
}

// IsNoReplicas reports whether err is ErrNoReplicas, locally or in its
// remote form.
func IsNoReplicas(err error) bool {
	return errors.Is(err, ErrNoReplicas) ||
		(errors.Is(err, transport.ErrRemote) && strings.Contains(err.Error(), ErrNoReplicas.Error()))
}

// IsShuttingDown reports whether err is ErrShuttingDown, locally or in
// its remote form.
func IsShuttingDown(err error) bool {
	return errors.Is(err, ErrShuttingDown) ||
		(errors.Is(err, transport.ErrRemote) && strings.Contains(err.Error(), ErrShuttingDown.Error()))
}

// Dialer opens a connection to a replica address. The default dials TCP
// with transport's retry policy; in-memory fleets (tests, the 10k soak)
// plug a memnet dialer in instead.
type Dialer func(ctx context.Context, addr string) (net.Conn, error)

// Options configures a Gateway.
type Options struct {
	// MaxSessions caps concurrently spliced sessions; connections beyond
	// the cap are shed with ErrFleetBusy. Zero means unlimited.
	MaxSessions int
	// HealthInterval is the pause between health-probe sweeps (default
	// 500ms). Probes dial each replica and immediately close.
	HealthInterval time.Duration
	// DialTimeout bounds each replica dial attempt (default 2s). Routing
	// makes one attempt per replica and fails over instead of retrying in
	// place, so a dead replica costs one timeout, not a backoff ladder.
	DialTimeout time.Duration
	// Dial overrides the replica dialer (default: TCP via transport).
	Dial Dialer
	// Logf logs fleet events (default log.Printf; set to a no-op for
	// quiet operation).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.HealthInterval <= 0 {
		o.HealthInterval = 500 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// replica is one trainer endpoint's routing state.
type replica struct {
	index    int
	addr     string
	down     atomic.Bool
	draining atomic.Bool
	active   atomic.Int64
	routed   atomic.Int64
	// affinity counts sessions that landed here because they presented a
	// ticket this replica minted.
	affinity atomic.Int64
	// mintID is the replica's ticket-minting identity as learned by the
	// health prober (stored as a string for atomicity; empty = unknown).
	mintID atomic.Value
}

// setMintID publishes the prober-learned minting identity.
func (r *replica) setMintID(id []byte) { r.mintID.Store(string(id)) }

// mintIDEquals reports whether the replica's known minting identity
// matches id (false while unknown).
func (r *replica) mintIDEquals(id []byte) bool {
	known, _ := r.mintID.Load().(string)
	return known != "" && known == string(id)
}

// Gateway shards client sessions across trainer replicas.
type Gateway struct {
	opts     Options
	replicas []*replica

	routed         atomic.Int64
	shed           atomic.Int64
	failovers      atomic.Int64
	drained        atomic.Int64
	affinityHits   atomic.Int64
	affinityMisses atomic.Int64

	mu       sync.Mutex
	wg       sync.WaitGroup
	ln       net.Listener
	closed   bool
	sessions map[net.Conn]struct{}
	stopCh   chan struct{}
}

// New builds a gateway over the given replica addresses.
func New(replicaAddrs []string, opts Options) (*Gateway, error) {
	if len(replicaAddrs) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	opts = opts.withDefaults()
	if opts.Dial == nil {
		dialOpts := transport.Options{DialTimeout: opts.DialTimeout, MaxAttempts: 1}
		opts.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return transport.DialContext(ctx, addr, dialOpts)
		}
	}
	g := &Gateway{
		opts:     opts,
		sessions: make(map[net.Conn]struct{}),
		stopCh:   make(chan struct{}),
	}
	for i, addr := range replicaAddrs {
		g.replicas = append(g.replicas, &replica{index: i, addr: addr})
	}
	g.publishHealth()
	go g.probeLoop()
	return g, nil
}

func (g *Gateway) logf(format string, args ...any) { g.opts.Logf(format, args...) }

// Serve accepts client sessions on the listener until Shutdown. It
// returns net.ErrClosed after a clean shutdown.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return net.ErrClosed
	}
	g.ln = ln
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go g.ServeConn(conn)
	}
}

// ServeConn routes one accepted client connection (exported so in-memory
// fleets can feed pipe connections in without a listener).
//
// The gateway peeks the client's Hello before picking a replica: a
// session presenting a resumption ticket is steered to the replica whose
// mint ID (learned by the health prober) matches the ticket's cleartext
// header, since only the minting process holds the sealing key. Every
// byte the peek consumes is recorded and replayed to the chosen replica
// verbatim, so the replica still sees the pristine client stream and the
// splice semantics are unchanged. A ticket whose minter is unknown,
// down, or draining routes least-loaded as before — the receiving
// replica declines the foreign ticket into a full handshake.
func (g *Gateway) ServeConn(client net.Conn) {
	if err := g.register(client); err != nil {
		g.reject(client, err)
		return
	}
	defer g.deregister(client)
	rec := &recordingConn{Conn: client}
	var mintID []byte
	if hello, err := transport.PeekHello(rec); err == nil {
		if id, ok := transport.TicketMintID(hello.ResumeTicket); ok {
			mintID = id
		}
	} else {
		// An unreadable Hello still routes: the replica owns protocol
		// errors, the gateway only moves bytes.
		g.logf("gateway: peek hello: %v", err)
	}
	upstream, rep, err := g.dialReplica(context.Background(), mintID)
	if err != nil {
		g.rejectHelloConsumed(client, err)
		return
	}
	if mintID != nil {
		if rep.mintIDEquals(mintID) {
			rep.affinity.Add(1)
			g.affinityHits.Add(1)
			obs.Add(obs.CtrGatewayResumeAffinity, 1)
		} else {
			g.affinityMisses.Add(1)
			obs.Add(obs.CtrGatewayResumeMisses, 1)
		}
	}
	rep.routed.Add(1)
	g.routed.Add(1)
	obs.Add(obs.CtrGatewayRouted, 1)
	obs.Set(obs.GaugeReplicaSessions(rep.index), rep.active.Load())
	// Replay what the peek consumed before splicing live traffic.
	if _, err := upstream.Write(rec.recorded()); err != nil {
		g.logf("gateway: replay hello: %v", err)
		_ = client.Close()
		_ = upstream.Close()
	} else {
		g.splice(client, upstream)
	}
	rep.active.Add(-1)
	obs.Set(obs.GaugeReplicaSessions(rep.index), rep.active.Load())
}

// recordingConn captures every byte read from the client so the Hello
// peek can be replayed to the chosen replica.
type recordingConn struct {
	net.Conn
	buf []byte
}

func (rc *recordingConn) Read(p []byte) (int, error) {
	n, err := rc.Conn.Read(p)
	if n > 0 {
		rc.buf = append(rc.buf, p[:n]...)
	}
	return n, err
}

func (rc *recordingConn) recorded() []byte { return rc.buf }

// register admits a session under the drain flag and the shed cap.
func (g *Gateway) register(client net.Conn) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrShuttingDown
	}
	if g.opts.MaxSessions > 0 && len(g.sessions) >= g.opts.MaxSessions {
		g.shed.Add(1)
		obs.Add(obs.CtrGatewayShed, 1)
		return ErrFleetBusy
	}
	g.sessions[client] = struct{}{}
	g.wg.Add(1)
	obs.Set(obs.GaugeGatewaySessions, int64(len(g.sessions)))
	return nil
}

func (g *Gateway) deregister(client net.Conn) {
	g.mu.Lock()
	delete(g.sessions, client)
	obs.Set(obs.GaugeGatewaySessions, int64(len(g.sessions)))
	g.mu.Unlock()
	g.wg.Done()
}

// reject answers the client's session attempt with a typed error on the
// protocol's error envelope: the Hello is drained first (over
// synchronous pipes, writing before reading would deadlock both sides),
// the error goes out, and the client's handshake surfaces it as
// ErrRemote text matched by IsFleetBusy/IsNoReplicas.
func (g *Gateway) reject(client net.Conn, cause error) {
	g.logf("gateway: reject session: %v", cause)
	conn := transport.NewConn(client)
	conn.SetMessageDeadline(5 * time.Second)
	_, _ = transport.Recv[*transport.Hello](conn)
	_ = conn.SendErr(cause)
	_ = conn.Close()
}

// rejectHelloConsumed is reject for the post-peek path: the client's
// Hello has already been read off the stream, so only the error goes out.
func (g *Gateway) rejectHelloConsumed(client net.Conn, cause error) {
	g.logf("gateway: reject session: %v", cause)
	conn := transport.NewConn(client)
	conn.SetMessageDeadline(5 * time.Second)
	_ = conn.SendErr(cause)
	_ = conn.Close()
}

// dialReplica picks a replica and dials it, failing over down the
// preference order (least active sessions first, among healthy
// non-draining replicas; a matching ticket mint moves its replica to the
// front). A replica whose dial fails is marked down on the spot — the
// prober revives it — and any session that lands past its first choice
// counts as a failover.
func (g *Gateway) dialReplica(ctx context.Context, mintID []byte) (net.Conn, *replica, error) {
	order := g.routeOrder()
	if len(order) == 0 {
		obs.Add(obs.CtrGatewayUnrouteable, 1)
		return nil, nil, ErrNoReplicas
	}
	if len(mintID) > 0 {
		// Ticket affinity: prefer the minting replica, keeping the
		// least-loaded order behind it as the transparent fallback chain
		// (the fallback replica declines the ticket into a full handshake).
		for i, rep := range order {
			if rep.mintIDEquals(mintID) {
				copy(order[1:i+1], order[:i])
				order[0] = rep
				break
			}
		}
	}
	for i, rep := range order {
		// Reserve the session slot before dialing: concurrent arrivals
		// must see each other's placements, or they all pick the same
		// "least-loaded" replica and pile onto it.
		rep.active.Add(1)
		dialCtx, cancel := context.WithTimeout(ctx, g.opts.DialTimeout)
		conn, err := g.opts.Dial(dialCtx, rep.addr)
		cancel()
		if err == nil {
			if i > 0 {
				g.failovers.Add(1)
				obs.Add(obs.CtrGatewayFailovers, 1)
			}
			return conn, rep, nil
		}
		rep.active.Add(-1)
		g.markDown(rep, err)
	}
	obs.Add(obs.CtrGatewayUnrouteable, 1)
	return nil, nil, fmt.Errorf("%w (%d tried)", ErrNoReplicas, len(order))
}

// routeOrder returns the healthy, non-draining replicas sorted by
// current load (ties keep configuration order, which spreads equally
// loaded replicas by arrival since load changes between calls).
func (g *Gateway) routeOrder() []*replica {
	order := make([]*replica, 0, len(g.replicas))
	for _, rep := range g.replicas {
		if !rep.down.Load() && !rep.draining.Load() {
			order = append(order, rep)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].active.Load() < order[j-1].active.Load(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

func (g *Gateway) markDown(rep *replica, cause error) {
	if !rep.down.Swap(true) {
		obs.Add(obs.CtrGatewayReplicaDown, 1)
		g.logf("gateway: replica %s down: %v", rep.addr, cause)
		g.publishHealth()
	}
}

func (g *Gateway) markUp(rep *replica) {
	if rep.down.Swap(false) {
		g.logf("gateway: replica %s recovered", rep.addr)
		g.publishHealth()
	}
}

// publishHealth refreshes the healthy-replica gauge.
func (g *Gateway) publishHealth() {
	healthy := int64(0)
	for _, rep := range g.replicas {
		if !rep.down.Load() {
			healthy++
		}
	}
	obs.Set(obs.GaugeGatewayHealthy, healthy)
}

// probeLoop sweeps the replicas on the health interval: each probe dials
// and runs the cheap "resume-info" whoami to learn the replica's ticket
// mint identity. Probing runs for down replicas (to revive them) and up
// ones (to catch silent deaths before a client session pays the dial
// timeout). A replica that answers the dial but errors the whoami — a
// legacy build, or one with resumption disabled — still counts alive; it
// just never attracts ticket affinity. The first sweep runs immediately
// so mint identities are known before the first resuming redial, not one
// interval in.
func (g *Gateway) probeLoop() {
	ticker := time.NewTicker(g.opts.HealthInterval)
	defer ticker.Stop()
	for {
		g.probeSweep()
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
		}
	}
}

// probeSweep probes every replica once.
func (g *Gateway) probeSweep() {
	for _, rep := range g.replicas {
		ctx, cancel := context.WithTimeout(context.Background(), g.opts.DialTimeout)
		conn, err := g.opts.Dial(ctx, rep.addr)
		cancel()
		if err != nil {
			g.markDown(rep, err)
			continue
		}
		g.probeMintID(rep, conn)
		g.markUp(rep)
	}
}

// probeMintID runs the resume-info exchange on an established probe
// connection, updating the replica's known mint identity. It owns the
// connection and closes it.
func (g *Gateway) probeMintID(rep *replica, conn net.Conn) {
	tc := transport.NewConn(conn)
	tc.SetMessageDeadline(g.opts.DialTimeout)
	defer func() { _ = tc.Close() }()
	if err := tc.Send(&transport.Hello{Service: "resume-info"}); err != nil {
		return
	}
	info, err := transport.Recv[*transport.ResumeInfo](tc)
	if err != nil {
		// A definitive "no" (legacy service table, resumption disabled)
		// clears any stale identity; transport noise keeps the last one.
		if errors.Is(err, transport.ErrRemote) {
			rep.setMintID(nil)
		}
		return
	}
	rep.setMintID(info.MintID)
}

// SetDraining marks a replica as draining (true: routing skips it while
// its in-flight sessions run to completion) or re-admits it. Unknown
// addresses are an error.
func (g *Gateway) SetDraining(addr string, draining bool) error {
	for _, rep := range g.replicas {
		if rep.addr == addr {
			rep.draining.Store(draining)
			return nil
		}
	}
	return fmt.Errorf("gateway: unknown replica %s", addr)
}

// splice copies bytes between the client and the replica until either
// side ends. When one direction finishes, both connections are closed to
// unblock the other copier: the protocol ends sessions by closing, so
// half-open lingering only pins resources.
func (g *Gateway) splice(client, upstream net.Conn) {
	var once sync.Once
	closeBoth := func() {
		_ = client.Close()
		_ = upstream.Close()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	copyDir := func(dst, src net.Conn) {
		defer wg.Done()
		buf := make([]byte, 16<<10)
		_, _ = io.CopyBuffer(dst, src, buf)
		once.Do(closeBoth)
	}
	go copyDir(upstream, client)
	copyDir(client, upstream)
	wg.Wait()
}

// ActiveSessions reports the number of spliced sessions.
func (g *Gateway) ActiveSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// Close stops accepting and waits for spliced sessions to end, with no
// bound on the wait.
func (g *Gateway) Close() error { return g.Shutdown(context.Background()) }

// Shutdown gracefully stops the gateway: it closes the listener, sheds
// new sessions with ErrShuttingDown, stops the health prober, and waits
// for spliced sessions to end. If ctx expires first the remaining
// sessions are force-closed and ctx.Err() is returned.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	alreadyClosed := g.closed
	g.closed = true
	ln := g.ln
	g.mu.Unlock()
	if !alreadyClosed {
		close(g.stopCh)
	}
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return lnErr
	case <-ctx.Done():
		g.mu.Lock()
		n := int64(len(g.sessions))
		g.drained.Add(n)
		obs.Add(obs.CtrGatewayDrained, n)
		for c := range g.sessions {
			_ = c.Close()
		}
		g.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ReplicaStats is one replica's routing snapshot.
type ReplicaStats struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Active   int64  `json:"active"`
	Routed   int64  `json:"routed"`
	// Affinity counts sessions that landed here via ticket affinity
	// (Routed - Affinity is this replica's full-handshake intake).
	Affinity int64 `json:"affinity"`
}

// Stats is a point-in-time fleet snapshot.
type Stats struct {
	Replicas  []ReplicaStats `json:"replicas"`
	Routed    int64          `json:"routed"`
	Shed      int64          `json:"shed"`
	Failovers int64          `json:"failovers"`
	Drained   int64          `json:"drained"`
	// AffinityHits / AffinityMisses split ticket-bearing sessions into
	// those steered to their minting replica and those routed elsewhere
	// (minting replica unknown, down, draining, or failed to dial).
	AffinityHits   int64 `json:"affinity_hits"`
	AffinityMisses int64 `json:"affinity_misses"`
}

// Stats snapshots the gateway's routing state.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Routed:         g.routed.Load(),
		Shed:           g.shed.Load(),
		Failovers:      g.failovers.Load(),
		Drained:        g.drained.Load(),
		AffinityHits:   g.affinityHits.Load(),
		AffinityMisses: g.affinityMisses.Load(),
	}
	for _, rep := range g.replicas {
		s.Replicas = append(s.Replicas, ReplicaStats{
			Addr:     rep.addr,
			Healthy:  !rep.down.Load(),
			Draining: rep.draining.Load(),
			Active:   rep.active.Load(),
			Routed:   rep.routed.Load(),
			Affinity: rep.affinity.Load(),
		})
	}
	return s
}
