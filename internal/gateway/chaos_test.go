package gateway

// Fleet chaos cases: replica death under live sessions, registry
// hot-swap under load, and session churn racing model swaps. These run
// the full private-classification protocol over in-memory fleets, so
// every assertion is about end-to-end behavior a client can observe.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestFleetReplicaDeathFailover kills a replica that holds a live
// session: the victim client's next batch fails mid-session, and the
// fleet client must transparently redial through the gateway onto the
// surviving replica. The survivor's own in-flight session must not
// notice anything.
func TestFleetReplicaDeathFailover(t *testing.T) {
	f := startTestFleet(t, 2, Options{DialTimeout: time.Second})

	// victim lands on replica 0 (first choice at equal load), survivorC
	// on replica 1.
	victim := f.newClient()
	defer func() { _ = victim.Close() }()
	if _, err := victim.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatalf("victim warmup: %v", err)
	}
	survivorC := f.newClient()
	defer func() { _ = survivorC.Close() }()
	if _, err := survivorC.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatalf("survivor warmup: %v", err)
	}
	if stats := f.gw.Stats(); stats.Replicas[0].Routed != 1 || stats.Replicas[1].Routed != 1 {
		t.Fatalf("unexpected initial placement: %+v", stats.Replicas)
	}

	f.killReplica(0)

	// The victim's session died with the replica; the batch must still
	// succeed via redial -> gateway -> replica 1.
	labels, err := victim.ClassifyPipelined(context.Background(), f.samples, 2, 2)
	if err != nil {
		t.Fatalf("batch after replica death: %v", err)
	}
	if err := f.checkPredictions(labels, 0); err != nil {
		t.Fatal(err)
	}
	if got := victim.Retries(); got < 1 {
		t.Errorf("victim retries = %d, want >= 1", got)
	}
	stats := f.gw.Stats()
	if stats.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", stats.Failovers)
	}
	if stats.Replicas[0].Healthy {
		t.Error("dead replica still marked healthy")
	}

	// The survivor's in-flight session was untouched: same session, no
	// redial, correct answers.
	labels, err = survivorC.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		t.Fatalf("survivor after death: %v", err)
	}
	if err := f.checkPredictions(labels, 0); err != nil {
		t.Fatal(err)
	}
	if got := survivorC.Retries(); got != 0 {
		t.Errorf("survivor retries = %d, want 0 (session must survive sibling death)", got)
	}
}

// TestFleetHotSwapUnderLoad publishes a new model version (trained on
// inverted labels, so every prediction flips) while sessions are live.
// The invariant under test: a session observes exactly one version for
// its whole lifetime — never a torn mix — and sessions opened after the
// swap observe the new version.
func TestFleetHotSwapUnderLoad(t *testing.T) {
	f := startTestFleet(t, 2, Options{})

	// Sanity: the two models must disagree everywhere for the tear check
	// to have teeth.
	for i := range f.expected[0] {
		if f.expected[0][i] == f.expected[1][i] {
			t.Fatalf("models agree on sample %d; inverted training lost its signal", i)
		}
	}

	// Pre-swap sessions, one per replica.
	pre := make([]*FleetClient, 2)
	for i := range pre {
		pre[i] = f.newClient()
		defer func(c *FleetClient) { _ = c.Close() }(pre[i])
		labels, err := pre[i].ClassifyBatch(context.Background(), f.samples)
		if err != nil {
			t.Fatalf("pre-swap client %d: %v", i, err)
		}
		if err := f.checkPredictions(labels, 0); err != nil {
			t.Fatalf("pre-swap client %d: %v", i, err)
		}
	}

	if _, err := f.reg.Publish(f.model2); err != nil {
		t.Fatalf("hot-swap publish: %v", err)
	}

	// In-flight sessions keep serving version 1 — they captured their
	// trainer at handshake and must drain on it.
	for i, c := range pre {
		labels, err := c.ClassifyBatch(context.Background(), f.samples)
		if err != nil {
			t.Fatalf("post-swap batch on pre-swap session %d: %v", i, err)
		}
		if err := f.checkPredictions(labels, 0); err != nil {
			t.Errorf("pre-swap session %d observed the swap (torn session): %v", i, err)
		}
	}

	// New sessions bind to version 2.
	post := f.newClient()
	defer func() { _ = post.Close() }()
	labels, err := post.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		t.Fatalf("post-swap client: %v", err)
	}
	if err := f.checkPredictions(labels, 1); err != nil {
		t.Errorf("post-swap session did not get version 2: %v", err)
	}
	if v := f.reg.Version(); v != 2 {
		t.Errorf("registry version = %d, want 2", v)
	}
}

// TestFleetSwapChurnRace races continuous hot-swaps against session
// churn through the gateway (run under -race via `make test`). Every
// batch must match exactly one published version — a mixed batch means
// a session saw a torn model.
func TestFleetSwapChurnRace(t *testing.T) {
	f := startTestFleet(t, 2, Options{})

	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := f.model1
			if i%2 == 0 {
				m = f.model2
			}
			if _, err := f.reg.Publish(m); err != nil {
				t.Errorf("swap publish: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const churners = 3
	const sessionsPerChurner = 5
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < sessionsPerChurner; s++ {
				fc := f.newClient()
				labels, err := fc.ClassifyPipelined(context.Background(), f.samples, 4, 2)
				if err != nil {
					t.Errorf("churner %d session %d: %v", c, s, err)
					_ = fc.Close()
					return
				}
				// The whole result set must come from one version.
				v1err := f.checkPredictions(labels, 0)
				v2err := f.checkPredictions(labels, 1)
				if v1err != nil && v2err != nil {
					t.Errorf("churner %d session %d observed a torn model: %v / %v", c, s, v1err, v2err)
				}
				_ = fc.Close()
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	swapWG.Wait()

	if stats := f.gw.Stats(); stats.Routed < churners*sessionsPerChurner {
		t.Errorf("routed = %d, want >= %d", stats.Routed, churners*sessionsPerChurner)
	}
}
