package gateway

// Fleet-level resumption: ticket affinity routing, fallback after the
// minting replica dies (the chaos case), and hot-swap semantics —
// resumption restores crypto state, never a stale model. All of this
// runs under -race via the normal test target.

import (
	"context"
	"crypto/rand"
	"testing"
	"time"

	"repro/internal/transport"
)

// newResumeClient is newClient with resumption offered: each clean Close
// harvests a ticket and the next redial presents it.
func (f *testFleet) newResumeClient() *FleetClient {
	return NewFleetClient(f.dial, "gateway",
		transport.Options{MessageDeadline: 10 * time.Second, OfferResume: true}, rand.Reader, 2)
}

// warmTicket runs one full session to completion and closes it, leaving
// the client holding a ticket for the replica that served it.
func (f *testFleet) warmTicket(c *FleetClient) {
	f.t.Helper()
	labels, err := c.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		f.t.Fatalf("warm session: %v", err)
	}
	if err := f.checkPredictions(labels, 0); err != nil {
		f.t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		f.t.Fatalf("warm close: %v", err)
	}
}

// TestFleetResumeAffinity: a redialing ticket holder must land on the
// replica that minted the ticket (only that process can unseal it), even
// when least-loaded routing would have picked the other one.
func TestFleetResumeAffinity(t *testing.T) {
	f := startTestFleet(t, 2, Options{})

	c := f.newResumeClient()
	defer func() { _ = c.Close() }()
	f.warmTicket(c)

	labels, err := c.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		t.Fatalf("redial session: %v", err)
	}
	if err := f.checkPredictions(labels, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Resumed(); got != 1 {
		t.Fatalf("resumed sessions = %d, want 1", got)
	}
	stats := f.gw.Stats()
	if stats.AffinityHits != 1 || stats.AffinityMisses != 0 {
		t.Fatalf("affinity hits/misses = %d/%d, want 1/0", stats.AffinityHits, stats.AffinityMisses)
	}
	var affinity int64
	for _, r := range stats.Replicas {
		affinity += r.Affinity
	}
	if affinity != 1 {
		t.Fatalf("per-replica affinity total = %d, want 1 (%+v)", affinity, stats.Replicas)
	}
}

// TestFleetResumeReplicaDeathFallback is the chaos case: the minting
// replica dies between sessions, so the redial fails over to the
// survivor, which cannot unseal a foreign ticket — the session silently
// completes as a full handshake with correct answers.
func TestFleetResumeReplicaDeathFallback(t *testing.T) {
	f := startTestFleet(t, 2, Options{DialTimeout: time.Second})

	c := f.newResumeClient()
	defer func() { _ = c.Close() }()
	f.warmTicket(c)

	minter := -1
	for i, r := range f.gw.Stats().Replicas {
		if r.Routed == 1 {
			minter = i
		}
	}
	if minter < 0 {
		t.Fatal("could not locate the minting replica")
	}
	f.killReplica(minter)

	labels, err := c.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		t.Fatalf("redial after replica death: %v", err)
	}
	if err := f.checkPredictions(labels, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Resumed(); got != 0 {
		t.Fatalf("resumed sessions = %d, want 0 (survivor cannot unseal a foreign ticket)", got)
	}
	stats := f.gw.Stats()
	if stats.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", stats.Failovers)
	}
	if stats.AffinityMisses != 1 {
		t.Errorf("affinity misses = %d, want 1", stats.AffinityMisses)
	}
	if stats.Replicas[minter].Healthy {
		t.Error("dead minting replica still marked healthy")
	}
}

// TestFleetResumeHotSwapServesCurrentModel pins the registry half of the
// contract: a resumed session skips the base OTs but still captures the
// model version current at redial time. A same-shape hot-swap between
// sessions must not serve stale predictions — and must not break
// resumption either, because the crypto contract (kernel shape, field,
// group) is unchanged.
func TestFleetResumeHotSwapServesCurrentModel(t *testing.T) {
	f := startTestFleet(t, 1, Options{})

	c := f.newResumeClient()
	defer func() { _ = c.Close() }()
	f.warmTicket(c)

	if _, err := f.reg.Publish(f.model2); err != nil {
		t.Fatal(err)
	}
	labels, err := c.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		t.Fatalf("redial after hot-swap: %v", err)
	}
	if err := f.checkPredictions(labels, 1); err != nil {
		t.Fatalf("resumed session served a stale model: %v", err)
	}
	if got := c.Resumed(); got != 1 {
		t.Fatalf("resumed sessions = %d, want 1 (same-shape swap keeps the ticket valid)", got)
	}
}
