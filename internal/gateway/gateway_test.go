package gateway

import (
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/memnet"
	"repro/internal/ot"
	"repro/internal/registry"
	"repro/internal/svm"
	"repro/internal/transport"
)

// testFleet is a fully in-memory fleet: N replica servers (all fed by
// one registry) behind a gateway, plus local models to check private
// predictions against.
type testFleet struct {
	t        *testing.T
	network  *memnet.Network
	reg      *registry.Registry
	servers  []*transport.Server
	lns      []*memnet.Listener
	gw       *Gateway
	gwLn     *memnet.Listener
	samples  [][]float64
	model1   *svm.Model // boot model (version 1)
	model2   *svm.Model // inverted-labels model (hot-swap target)
	expected [2][]int   // local predictions under model1 / model2
}

func quiet(string, ...any) {}

// startTestFleet boots a fleet. Zero-valued gwOpts fields get test
// defaults; tests that need deterministic probe behavior pin
// HealthInterval themselves.
func startTestFleet(t *testing.T, replicas int, gwOpts Options) *testFleet {
	t.Helper()
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model1, err := svm.Train(train.X, train.Y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		t.Fatal(err)
	}
	inverted := make([]int, len(train.Y))
	for i, v := range train.Y {
		inverted[i] = -v
	}
	model2, err := svm.Train(train.X, inverted, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		t.Fatal(err)
	}

	f := &testFleet{
		t:       t,
		network: memnet.NewNetwork(),
		reg:     registry.New(classify.Params{Group: ot.Group512Test()}),
		samples: test.X[:8],
		model1:  model1,
		model2:  model2,
	}
	for v, m := range []*svm.Model{model1, model2} {
		f.expected[v] = make([]int, len(f.samples))
		for i, s := range f.samples {
			label, err := m.Classify(s)
			if err != nil {
				t.Fatal(err)
			}
			f.expected[v][i] = label
		}
	}
	if _, err := f.reg.Publish(model1); err != nil {
		t.Fatal(err)
	}

	var replicaAddrs []string
	for i := 0; i < replicas; i++ {
		name := fmt.Sprintf("replica-%d", i)
		ln := f.network.Listen(name)
		srv := transport.NewServerSource(f.reg)
		srv.Logf = nil
		go func() { _ = srv.Serve(ln) }()
		f.servers = append(f.servers, srv)
		f.lns = append(f.lns, ln)
		replicaAddrs = append(replicaAddrs, name)
	}

	if gwOpts.Dial == nil {
		gwOpts.Dial = f.network.Dial
	}
	if gwOpts.HealthInterval == 0 {
		gwOpts.HealthInterval = time.Hour // tests drive state transitions explicitly
	}
	if gwOpts.Logf == nil {
		gwOpts.Logf = quiet
	}
	gw, err := New(replicaAddrs, gwOpts)
	if err != nil {
		t.Fatal(err)
	}
	f.gw = gw
	f.gwLn = f.network.Listen("gateway")
	go func() { _ = gw.Serve(f.gwLn) }()

	// The prober's startup sweep runs concurrently with the test body;
	// wait for it to learn every replica's mint ID (all replicas are up
	// at this point) so tests that kill listeners or count failovers
	// aren't racing the initial probe.
	waitFor(t, 5*time.Second, func() bool {
		for _, rep := range gw.replicas {
			if known, _ := rep.mintID.Load().(string); known == "" {
				return false
			}
		}
		return true
	})

	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = gw.Shutdown(ctx)
		for _, srv := range f.servers {
			_ = srv.Shutdown(ctx)
		}
	})
	return f
}

func (f *testFleet) dial(ctx context.Context, _ string) (net.Conn, error) {
	return f.network.Dial(ctx, "gateway")
}

func (f *testFleet) newClient() *FleetClient {
	return NewFleetClient(f.dial, "gateway", transport.Options{MessageDeadline: 10 * time.Second}, rand.Reader, 2)
}

// killReplica makes replica i unreachable and force-closes its in-flight
// sessions (process death, as the fleet sees it).
func (f *testFleet) killReplica(i int) {
	_ = f.lns[i].Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired budget: force-close stragglers immediately
	_ = f.servers[i].Shutdown(ctx)
}

func (f *testFleet) checkPredictions(labels []int, version int) error {
	want := f.expected[version]
	if len(labels) != len(want) {
		return fmt.Errorf("got %d labels, want %d", len(labels), len(want))
	}
	for i := range labels {
		if labels[i] != want[i] {
			return fmt.Errorf("label[%d] = %+d, want %+d (version %d)", i, labels[i], want[i], version+1)
		}
	}
	return nil
}

func TestGatewayRoutesAndBalances(t *testing.T) {
	f := startTestFleet(t, 2, Options{})
	// Four clients holding concurrent sessions: least-loaded routing must
	// spread them 2/2 across the replicas.
	clients := make([]*FleetClient, 4)
	for i := range clients {
		clients[i] = f.newClient()
		defer func(c *FleetClient) { _ = c.Close() }(clients[i])
		labels, err := clients[i].ClassifyBatch(context.Background(), f.samples)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if err := f.checkPredictions(labels, 0); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	stats := f.gw.Stats()
	if stats.Routed != 4 {
		t.Errorf("routed = %d, want 4", stats.Routed)
	}
	for i, r := range stats.Replicas {
		if r.Routed != 2 {
			t.Errorf("replica %d routed %d sessions, want 2 (%+v)", i, r.Routed, stats.Replicas)
		}
		if !r.Healthy || r.Draining {
			t.Errorf("replica %d state: %+v", i, r)
		}
	}
	if got := f.gw.ActiveSessions(); got != 4 {
		t.Errorf("active sessions = %d, want 4", got)
	}
}

func TestGatewayShedsWithTypedError(t *testing.T) {
	f := startTestFleet(t, 1, Options{MaxSessions: 1})
	first := f.newClient()
	defer func() { _ = first.Close() }()
	if _, err := first.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatalf("first session: %v", err)
	}

	second := f.newClient()
	defer func() { _ = second.Close() }()
	_, err := second.ClassifyBatch(context.Background(), f.samples[:1])
	if err == nil {
		t.Fatal("second session should be shed at MaxSessions=1")
	}
	if !IsFleetBusy(err) {
		t.Fatalf("shed error = %v, want IsFleetBusy", err)
	}
	if stats := f.gw.Stats(); stats.Shed != 1 {
		t.Errorf("shed = %d, want 1", stats.Shed)
	}

	// Capacity frees up when the first session ends.
	_ = first.Close()
	waitFor(t, time.Second, func() bool { return f.gw.ActiveSessions() == 0 })
	if _, err := second.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatalf("session after capacity freed: %v", err)
	}
}

func TestGatewayDialFailover(t *testing.T) {
	f := startTestFleet(t, 2, Options{DialTimeout: time.Second})
	// Replica 0 (the first routing choice at equal load) is unreachable:
	// the session must land on replica 1 with one failover, and replica 0
	// must be marked down.
	_ = f.lns[0].Close()

	c := f.newClient()
	defer func() { _ = c.Close() }()
	labels, err := c.ClassifyBatch(context.Background(), f.samples)
	if err != nil {
		t.Fatalf("failover session: %v", err)
	}
	if err := f.checkPredictions(labels, 0); err != nil {
		t.Fatal(err)
	}
	stats := f.gw.Stats()
	if stats.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", stats.Failovers)
	}
	if stats.Replicas[0].Healthy {
		t.Error("replica 0 should be marked down after failed dial")
	}
	if stats.Replicas[1].Routed != 1 {
		t.Errorf("replica 1 routed = %d, want 1", stats.Replicas[1].Routed)
	}
}

func TestGatewayNoReplicasTypedError(t *testing.T) {
	f := startTestFleet(t, 1, Options{DialTimeout: time.Second})
	_ = f.lns[0].Close()
	c := f.newClient()
	defer func() { _ = c.Close() }()
	_, err := c.ClassifyBatch(context.Background(), f.samples[:1])
	if err == nil || !IsNoReplicas(err) {
		t.Fatalf("err = %v, want IsNoReplicas", err)
	}
}

func TestGatewayDrainingReplicaSkipped(t *testing.T) {
	f := startTestFleet(t, 2, Options{})
	if err := f.gw.SetDraining("replica-0", true); err != nil {
		t.Fatal(err)
	}
	if err := f.gw.SetDraining("nope", true); err == nil {
		t.Fatal("unknown replica should error")
	}
	for i := 0; i < 2; i++ {
		c := f.newClient()
		defer func(c *FleetClient) { _ = c.Close() }(c)
		if _, err := c.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	stats := f.gw.Stats()
	if stats.Replicas[0].Routed != 0 || stats.Replicas[1].Routed != 2 {
		t.Fatalf("draining replica took sessions: %+v", stats.Replicas)
	}
	if stats.Failovers != 0 {
		t.Errorf("draining is not a failover, got %d", stats.Failovers)
	}

	// Re-admit: traffic flows back (least-loaded prefers the idle one).
	if err := f.gw.SetDraining("replica-0", false); err != nil {
		t.Fatal(err)
	}
	c := f.newClient()
	defer func() { _ = c.Close() }()
	if _, err := c.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatal(err)
	}
	if stats := f.gw.Stats(); stats.Replicas[0].Routed != 1 {
		t.Fatalf("re-admitted replica got no traffic: %+v", stats.Replicas)
	}
}

func TestGatewayHealthProbeRevivesReplica(t *testing.T) {
	f := startTestFleet(t, 2, Options{HealthInterval: 20 * time.Millisecond, DialTimeout: time.Second})
	_ = f.lns[0].Close()
	// The prober notices the death without any client traffic...
	waitFor(t, 2*time.Second, func() bool { return !f.gw.Stats().Replicas[0].Healthy })

	// ...and revives the replica when it comes back on the same address.
	ln := f.network.Listen("replica-0")
	f.lns[0] = ln
	go func() { _ = f.servers[0].Serve(ln) }()
	waitFor(t, 2*time.Second, func() bool { return f.gw.Stats().Replicas[0].Healthy })

	c := f.newClient()
	defer func() { _ = c.Close() }()
	if _, err := c.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatalf("session after revival: %v", err)
	}
}

func TestGatewayShutdownRejectsNewSessions(t *testing.T) {
	f := startTestFleet(t, 1, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := f.gw.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// A connection handed to ServeConn after shutdown gets the typed
	// shutting-down answer on the protocol's error envelope.
	client, server := net.Pipe()
	go f.gw.ServeConn(server)
	_, err := transport.NewFastClassifyClientContext(context.Background(), client, transport.Options{MessageDeadline: 2 * time.Second}, rand.Reader)
	if err == nil {
		t.Fatal("handshake should fail against a draining gateway")
	}
	if !IsShuttingDown(err) {
		t.Fatalf("err = %v, want shutting-down", err)
	}
}

func TestGatewayShutdownForceClosesStragglers(t *testing.T) {
	f := startTestFleet(t, 1, Options{})
	c := f.newClient()
	defer func() { _ = c.Close() }()
	if _, err := c.ClassifyBatch(context.Background(), f.samples[:1]); err != nil {
		t.Fatal(err)
	}
	// The session stays open; an already-expired budget must force-close
	// it rather than hang.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.gw.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("shutdown = %v, want context.Canceled", err)
	}
	if stats := f.gw.Stats(); stats.Drained != 1 {
		t.Errorf("drained = %d, want 1", stats.Drained)
	}
	if got := f.gw.ActiveSessions(); got != 0 {
		t.Errorf("active sessions after force shutdown = %d", got)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
