// Package wire provides the primitives of the hand-rolled binary codec:
// a sticky-error Writer/Reader pair over a small set of canonical field
// encodings (bytes, varints, floats, big.Ints), plus adapters that derive
// the four standard serialization interfaces — encoding.BinaryMarshaler,
// encoding.BinaryUnmarshaler, io.WriterTo, io.ReaderFrom — from a single
// EncodeWire/DecodeWire pair per message type.
//
// The encoding is deliberately boring: no reflection, no type
// descriptors, no schema evolution inside a message. Fixed-width values
// are big-endian; lengths and counts are unsigned varints; byte slices
// and big.Int magnitudes are length-prefixed. Every length and count read
// is bounds-checked before allocation, so a hostile peer cannot make a
// decoder allocate more than the bytes it actually sent (slice inputs)
// or more than MaxBytes/MaxCount (stream inputs). Versioning lives one
// layer up, in the transport frame header — a message encoding never
// changes shape silently; incompatible changes get a new frame version.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
)

// Decode-side resource bounds. Slice-mode reads are additionally bounded
// by the bytes actually present; these caps are the last line of defense
// for stream-mode reads where the total is not known up front.
const (
	// MaxBytes bounds any single length-prefixed byte field (256 MiB).
	MaxBytes = 1 << 28
	// MaxCount bounds any element count (16M elements).
	MaxCount = 1 << 24
)

// Typed decode errors. Every malformed input surfaces as one of these
// (wrapped with context), never as a panic.
var (
	// ErrTruncated reports input that ends mid-field.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrOversize reports a length or count beyond the decoder's bounds.
	ErrOversize = errors.New("wire: length exceeds bound")
	// ErrInvalid reports a syntactically well-formed but semantically
	// impossible value (e.g. a bool byte that is neither 0 nor 1).
	ErrInvalid = errors.New("wire: invalid value")
	// ErrNilValue reports an attempt to encode a nil required field.
	ErrNilValue = errors.New("wire: nil value")
	// ErrTrailing reports leftover bytes after a complete message.
	ErrTrailing = errors.New("wire: trailing bytes after message")
)

// Msg is the single pair of methods a type implements to join the codec;
// the package-level adapters derive the four standard interfaces from it.
type Msg interface {
	EncodeWire(*Writer)
	DecodeWire(*Reader)
}

// Writer serializes canonical field encodings into either an append
// buffer or an io.Writer. Errors are sticky: after the first failure
// every subsequent call is a no-op and Err returns the cause, so message
// encoders read as straight-line field lists.
type Writer struct {
	w       io.Writer // stream sink; nil in append mode
	buf     []byte    // append-mode accumulator
	n       int64     // bytes written (stream mode)
	err     error
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter returns a stream-mode Writer. Each field costs one small
// Write on w; pass a buffered writer on hot paths.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// NewAppendWriter returns an append-mode Writer accumulating onto buf
// (which may be nil, or a recycled buffer sliced to length 0).
func NewAppendWriter(buf []byte) *Writer { return &Writer{buf: buf} }

// Bytes returns the append-mode accumulator.
func (w *Writer) Bytes() []byte { return w.buf }

// N returns the number of bytes written in stream mode.
func (w *Writer) N() int64 { return w.n }

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if w.w == nil {
		w.buf = append(w.buf, p...)
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	if err != nil {
		w.fail(err)
	}
}

// Byte writes one raw byte.
func (w *Writer) Byte(b byte) { w.write([]byte{b}) }

// Bool writes a bool as a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.write(w.scratch[:n])
}

// Int writes a signed int as a zigzag varint.
func (w *Writer) Int(v int) {
	n := binary.PutVarint(w.scratch[:], int64(v))
	w.write(w.scratch[:n])
}

// Uint writes an unsigned int as an unsigned varint.
func (w *Writer) Uint(v uint) { w.Uvarint(uint64(v)) }

// Float64 writes the IEEE-754 bits, big-endian.
func (w *Writer) Float64(v float64) {
	binary.BigEndian.PutUint64(w.scratch[:8], math.Float64bits(v))
	w.write(w.scratch[:8])
}

// ByteSlice writes a length-prefixed byte slice (nil encodes as empty).
func (w *Writer) ByteSlice(p []byte) {
	if len(p) > MaxBytes {
		w.fail(fmt.Errorf("%w: %d bytes", ErrOversize, len(p)))
		return
	}
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	if len(s) > MaxBytes {
		w.fail(fmt.Errorf("%w: %d bytes", ErrOversize, len(s)))
		return
	}
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	if w.w == nil {
		w.buf = append(w.buf, s...)
		return
	}
	n, err := io.WriteString(w.w, s)
	w.n += int64(n)
	if err != nil {
		w.fail(err)
	}
}

// Count writes an element count for a following sequence.
func (w *Writer) Count(n int) {
	if n < 0 || n > MaxCount {
		w.fail(fmt.Errorf("%w: count %d", ErrOversize, n))
		return
	}
	w.Uvarint(uint64(n))
}

// BigInt writes a non-negative big.Int as its length-prefixed big-endian
// magnitude (zero encodes as an empty slice). Nil and negative values are
// encoding errors: the protocols only put field/group elements on the
// wire, and those are canonical non-negative residues.
func (w *Writer) BigInt(x *big.Int) {
	if x == nil {
		w.fail(fmt.Errorf("%w: big.Int", ErrNilValue))
		return
	}
	if x.Sign() < 0 {
		w.fail(fmt.Errorf("%w: negative big.Int", ErrInvalid))
		return
	}
	w.ByteSlice(x.Bytes())
}

// Reader deserializes canonical field encodings from either a byte slice
// (zero-copy bounds checks against the remaining input) or an io.Reader
// (bounds checks against MaxBytes/MaxCount). Errors are sticky; decoded
// values after a failure are zero.
type Reader struct {
	buf     []byte // slice mode
	off     int
	r       io.Reader     // stream mode
	br      io.ByteReader // stream mode varint source
	n       int64         // bytes consumed (stream mode)
	err     error
	scratch [8]byte
}

// NewReader returns a slice-mode Reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// byteReaderShim adapts a plain io.Reader to io.ByteReader.
type byteReaderShim struct{ r io.Reader }

func (s byteReaderShim) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(s.r, b[:])
	return b[0], err
}

// NewStreamReader returns a stream-mode Reader over r. Reads are exact:
// the Reader never consumes bytes past the end of one message, so a
// following message on the same stream is untouched. Pass a buffered
// reader on hot paths (an unbuffered one costs a syscall-sized read per
// field).
func NewStreamReader(r io.Reader) *Reader {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = byteReaderShim{r}
	}
	return &Reader{r: r, br: br}
}

// N returns the number of bytes consumed in stream mode.
func (r *Reader) N() int64 { return r.n }

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Done checks that a slice-mode Reader consumed its entire input.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.r == nil && r.off != len(r.buf) {
		r.fail(fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailing, r.off, len(r.buf)))
	}
	return r.err
}

// More reports whether unread input remains, gating optional trailing
// fields appended to a message's encoding after transcripts of the
// original layout shipped: encoders write the tail only when it is
// non-zero, so pre-extension bytes simply end earlier and decode to the
// zero tail. Only slice mode can see the input bound; stream mode
// reports true (current encoders of extended messages always run against
// slice-mode Unmarshal, and a truncated stream still fails typed).
func (r *Reader) More() bool {
	if r.err != nil {
		return false
	}
	if r.r == nil {
		return r.off < len(r.buf)
	}
	return true
}

// remaining reports the unread byte count in slice mode (stream mode has
// no known bound and returns MaxBytes).
func (r *Reader) remaining() int {
	if r.r == nil {
		return len(r.buf) - r.off
	}
	return MaxBytes
}

// take reads exactly n bytes into the scratch buffer (n <= 8).
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return r.scratch[:n]
	}
	if r.r == nil {
		if len(r.buf)-r.off < n {
			r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(r.buf)-r.off))
			return r.scratch[:n]
		}
		copy(r.scratch[:n], r.buf[r.off:])
		r.off += n
		return r.scratch[:n]
	}
	m, err := io.ReadFull(r.r, r.scratch[:n])
	r.n += int64(m)
	if err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrTruncated, err))
	}
	return r.scratch[:n]
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte { return r.take(1)[0] }

// Bool reads a 0/1 byte; any other value is ErrInvalid.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err != nil {
		return false
	}
	switch b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: bool byte 0x%02x", ErrInvalid, b))
		return false
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	if r.r == nil {
		v, n := binary.Uvarint(r.buf[r.off:])
		if n <= 0 {
			r.fail(fmt.Errorf("%w: uvarint", ErrTruncated))
			return 0
		}
		r.off += n
		return v
	}
	v, err := binary.ReadUvarint(countingByteReader{r})
	if err != nil {
		r.fail(fmt.Errorf("%w: uvarint: %v", ErrTruncated, err))
		return 0
	}
	return v
}

// countingByteReader advances the stream Reader's byte count as varint
// bytes are consumed.
type countingByteReader struct{ r *Reader }

func (c countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.br.ReadByte()
	if err == nil {
		c.r.n++
	}
	return b, err
}

// Int reads a zigzag varint into an int.
func (r *Reader) Int() int {
	if r.err != nil {
		return 0
	}
	if r.r == nil {
		v, n := binary.Varint(r.buf[r.off:])
		if n <= 0 {
			r.fail(fmt.Errorf("%w: varint", ErrTruncated))
			return 0
		}
		r.off += n
		return int(v)
	}
	v, err := binary.ReadVarint(countingByteReader{r})
	if err != nil {
		r.fail(fmt.Errorf("%w: varint: %v", ErrTruncated, err))
		return 0
	}
	return int(v)
}

// Uint reads an unsigned varint into a uint.
func (r *Reader) Uint() uint { return uint(r.Uvarint()) }

// Float64 reads big-endian IEEE-754 bits.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(r.take(8)))
}

// Count reads an element count, bounded by MaxCount and — in slice mode —
// by the remaining input (every element costs at least one byte, so a
// count beyond that is provably truncated or hostile).
func (r *Reader) Count() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > MaxCount {
		r.fail(fmt.Errorf("%w: count %d > %d", ErrOversize, v, MaxCount))
		return 0
	}
	if rem := r.remaining(); v > uint64(rem) {
		r.fail(fmt.Errorf("%w: count %d with %d bytes left", ErrTruncated, v, rem))
		return 0
	}
	return int(v)
}

// ByteSlice reads a length-prefixed byte slice. The result is a fresh
// copy: UnmarshalBinary callers may reuse the input buffer.
func (r *Reader) ByteSlice() []byte {
	v := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if v > MaxBytes {
		r.fail(fmt.Errorf("%w: %d bytes > %d", ErrOversize, v, MaxBytes))
		return nil
	}
	n := int(v)
	if r.r == nil {
		if len(r.buf)-r.off < n {
			r.fail(fmt.Errorf("%w: %d-byte field with %d bytes left", ErrTruncated, n, len(r.buf)-r.off))
			return nil
		}
		out := make([]byte, n)
		copy(out, r.buf[r.off:])
		r.off += n
		return out
	}
	// Stream mode: grow in bounded chunks so a hostile length prefix
	// cannot force a huge up-front allocation before any payload bytes
	// actually arrive off the stream.
	const chunk = 1 << 20
	out := make([]byte, min(n, chunk))
	filled := 0
	for {
		m, err := io.ReadFull(r.r, out[filled:])
		r.n += int64(m)
		if err != nil {
			r.fail(fmt.Errorf("%w: %v", ErrTruncated, err))
			return nil
		}
		filled = len(out)
		if filled == n {
			return out
		}
		out = append(out, make([]byte, min(n-filled, chunk))...)
	}
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.ByteSlice()) }

// BigInt reads a length-prefixed big-endian magnitude into a fresh
// non-negative big.Int.
func (r *Reader) BigInt() *big.Int {
	p := r.ByteSlice()
	if r.err != nil {
		return nil
	}
	return new(big.Int).SetBytes(p)
}

// Marshal encodes m into a fresh buffer (the BinaryMarshaler body).
func Marshal(m Msg) ([]byte, error) {
	w := NewAppendWriter(nil)
	m.EncodeWire(w)
	return w.Bytes(), w.Err()
}

// Append encodes m onto buf, returning the extended buffer. Callers that
// recycle buf get allocation-free steady-state encoding.
func Append(buf []byte, m Msg) ([]byte, error) {
	w := NewAppendWriter(buf)
	m.EncodeWire(w)
	return w.Bytes(), w.Err()
}

// Unmarshal decodes m from data, requiring the message to consume the
// input exactly (the BinaryUnmarshaler body).
func Unmarshal(data []byte, m Msg) error {
	r := NewReader(data)
	m.DecodeWire(r)
	return r.Done()
}

// WriteTo streams m's encoding to w (the io.WriterTo body).
func WriteTo(w io.Writer, m Msg) (int64, error) {
	ww := NewWriter(w)
	m.EncodeWire(ww)
	return ww.N(), ww.Err()
}

// ReadFrom decodes one message from r, consuming exactly the message's
// bytes (the io.ReaderFrom body).
func ReadFrom(r io.Reader, m Msg) (int64, error) {
	rr := NewStreamReader(r)
	m.DecodeWire(rr)
	return rr.N(), rr.Err()
}

// SliceCap bounds the initial capacity of a count-prefixed slice
// allocation. Decode loops append up to the claimed count, but a hostile
// count must not force a large up-front allocation before the elements
// actually arrive; loops grow past this hint via append.
func SliceCap(n int) int { return min(n, 4096) }
