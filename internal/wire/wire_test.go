package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/big"
	"testing"
)

// testMsg exercises every primitive through the Msg adapters.
type testMsg struct {
	B   byte
	OK  bool
	U   uint64
	I   int
	UN  uint
	F   float64
	P   []byte
	S   string
	X   *big.Int
	Seq []*big.Int
}

func (m *testMsg) EncodeWire(w *Writer) {
	w.Byte(m.B)
	w.Bool(m.OK)
	w.Uvarint(m.U)
	w.Int(m.I)
	w.Uint(m.UN)
	w.Float64(m.F)
	w.ByteSlice(m.P)
	w.String(m.S)
	w.BigInt(m.X)
	w.Count(len(m.Seq))
	for _, x := range m.Seq {
		w.BigInt(x)
	}
}

func (m *testMsg) DecodeWire(r *Reader) {
	m.B = r.Byte()
	m.OK = r.Bool()
	m.U = r.Uvarint()
	m.I = r.Int()
	m.UN = r.Uint()
	m.F = r.Float64()
	m.P = r.ByteSlice()
	m.S = r.String()
	m.X = r.BigInt()
	n := r.Count()
	if r.Err() != nil {
		return
	}
	m.Seq = m.Seq[:0]
	for i := 0; i < n; i++ {
		m.Seq = append(m.Seq, r.BigInt())
	}
}

func sampleMsg() *testMsg {
	return &testMsg{
		B:   0xAB,
		OK:  true,
		U:   1 << 60,
		I:   -123456789,
		UN:  42,
		F:   -math.Pi,
		P:   []byte{1, 2, 3},
		S:   "hello, wire",
		X:   new(big.Int).Lsh(big.NewInt(0x1234), 500),
		Seq: []*big.Int{big.NewInt(0), big.NewInt(7), new(big.Int).SetUint64(math.MaxUint64)},
	}
}

func msgEqual(a, b *testMsg) bool {
	if a.B != b.B || a.OK != b.OK || a.U != b.U || a.I != b.I || a.UN != b.UN ||
		a.F != b.F || !bytes.Equal(a.P, b.P) || a.S != b.S || a.X.Cmp(b.X) != 0 ||
		len(a.Seq) != len(b.Seq) {
		return false
	}
	for i := range a.Seq {
		if a.Seq[i].Cmp(b.Seq[i]) != 0 {
			return false
		}
	}
	return true
}

func TestRoundTripAppendAndStream(t *testing.T) {
	in := sampleMsg()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	// Append mode and stream mode must produce identical bytes.
	var sb bytes.Buffer
	n, err := WriteTo(&sb, in)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(len(data)) {
		t.Fatalf("WriteTo wrote %d bytes, Marshal produced %d", n, len(data))
	}
	if !bytes.Equal(sb.Bytes(), data) {
		t.Fatalf("stream and append encodings differ")
	}

	var outA testMsg
	if err := Unmarshal(data, &outA); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !msgEqual(in, &outA) {
		t.Fatalf("slice round trip mismatch: %+v != %+v", in, &outA)
	}

	var outS testMsg
	m, err := ReadFrom(bytes.NewReader(data), &outS)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if m != int64(len(data)) {
		t.Fatalf("ReadFrom consumed %d bytes, want %d", m, len(data))
	}
	if !msgEqual(in, &outS) {
		t.Fatalf("stream round trip mismatch")
	}
}

func TestReadFromStopsAtMessageBoundary(t *testing.T) {
	in := sampleMsg()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Two messages back to back on one stream: the first decode must not
	// consume a single byte of the second.
	stream := bytes.NewReader(append(append([]byte{}, data...), data...))
	for i := 0; i < 2; i++ {
		var out testMsg
		if _, err := ReadFrom(stream, &out); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !msgEqual(in, &out) {
			t.Fatalf("message %d mismatch", i)
		}
	}
	if stream.Len() != 0 {
		t.Fatalf("%d stray bytes after two messages", stream.Len())
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	data, err := Marshal(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	var out testMsg
	err = Unmarshal(append(data, 0x00), &out)
	if !errors.Is(err, ErrTrailing) {
		t.Fatalf("got %v, want ErrTrailing", err)
	}
}

func TestTruncationEveryPrefix(t *testing.T) {
	data, err := Marshal(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		var out testMsg
		err := Unmarshal(data[:n], &out)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTrailing) && !errors.Is(err, ErrInvalid) {
			t.Fatalf("prefix %d: untyped error %v", n, err)
		}
		var outS testMsg
		if _, err := ReadFrom(bytes.NewReader(data[:n]), &outS); err == nil {
			t.Fatalf("stream prefix of %d/%d bytes decoded cleanly", n, len(data))
		}
	}
}

func TestBoolRejectsOtherBytes(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrInvalid) {
		t.Fatalf("got %v, want ErrInvalid", r.Err())
	}
}

func TestCountBounds(t *testing.T) {
	// A count larger than the remaining input is provably truncated.
	w := NewAppendWriter(nil)
	w.Uvarint(1000)
	r := NewReader(w.Bytes())
	r.Count()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("slice-mode count: got %v, want ErrTruncated", r.Err())
	}

	// Stream mode has no remaining bound; MaxCount is the cap.
	w2 := NewAppendWriter(nil)
	w2.Uvarint(MaxCount + 1)
	r2 := NewStreamReader(bytes.NewReader(w2.Bytes()))
	r2.Count()
	if !errors.Is(r2.Err(), ErrOversize) {
		t.Fatalf("stream-mode count: got %v, want ErrOversize", r2.Err())
	}
}

func TestByteSliceOversize(t *testing.T) {
	w := NewAppendWriter(nil)
	w.Uvarint(MaxBytes + 1)
	r := NewStreamReader(bytes.NewReader(w.Bytes()))
	r.ByteSlice()
	if !errors.Is(r.Err(), ErrOversize) {
		t.Fatalf("got %v, want ErrOversize", r.Err())
	}
}

func TestByteSliceIsFreshCopy(t *testing.T) {
	w := NewAppendWriter(nil)
	w.ByteSlice([]byte{1, 2, 3})
	data := w.Bytes()
	r := NewReader(data)
	out := r.ByteSlice()
	data[len(data)-1] = 99
	if out[2] != 3 {
		t.Fatalf("decoded slice aliases the input buffer")
	}
}

func TestBigIntErrors(t *testing.T) {
	w := NewAppendWriter(nil)
	w.BigInt(nil)
	if !errors.Is(w.Err(), ErrNilValue) {
		t.Fatalf("nil: got %v, want ErrNilValue", w.Err())
	}
	w2 := NewAppendWriter(nil)
	w2.BigInt(big.NewInt(-1))
	if !errors.Is(w2.Err(), ErrInvalid) {
		t.Fatalf("negative: got %v, want ErrInvalid", w2.Err())
	}
}

func TestBigIntZeroRoundTrip(t *testing.T) {
	w := NewAppendWriter(nil)
	w.BigInt(big.NewInt(0))
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes())
	x := r.BigInt()
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if x.Sign() != 0 {
		t.Fatalf("got %v, want 0", x)
	}
}

func TestStickyWriterError(t *testing.T) {
	w := NewAppendWriter(nil)
	w.BigInt(nil)
	before := len(w.Bytes())
	w.Int(7)
	w.String("more")
	if len(w.Bytes()) != before {
		t.Fatalf("writes continued after sticky error")
	}
}

// failWriter errors after the first write.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n > 0 {
		return 0, io.ErrClosedPipe
	}
	f.n++
	return len(p), nil
}

func TestStreamWriterPropagatesSinkError(t *testing.T) {
	w := NewWriter(&failWriter{})
	w.Float64(1)
	w.Float64(2)
	if w.Err() == nil {
		t.Fatalf("sink error not propagated")
	}
}

func TestAppendRecyclesBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	out, err := Append(buf, sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatalf("Append reallocated despite sufficient capacity")
	}
}
