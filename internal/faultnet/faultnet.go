// Package faultnet wraps byte streams with deterministic, seedable fault
// injection for chaos-testing the transport layer. A wrapped connection
// can add latency to every operation, fragment writes into small chunks,
// fail a read or write once a byte budget is exhausted, reset the
// connection mid-protocol, or stall silently — each fault triggered at an
// exact byte offset so failures land at reproducible points inside a
// protocol run.
//
// The wrapper honors read/write deadlines itself (and forwards them to
// the underlying stream when it supports them), so a stalled or delayed
// connection still unblocks when its deadline passes — the property the
// transport layer's per-message deadlines rely on.
package faultnet

import (
	"errors"
	"io"
	mrand "math/rand"
	"net"
	"sync"
	"time"
)

var (
	// ErrInjected is the error returned by a read/write that trips an
	// injected fault.
	ErrInjected = errors.New("faultnet: injected fault")
	// ErrReset is returned after a connection reset fault; the underlying
	// stream is closed so the peer observes the failure too.
	ErrReset = errors.New("faultnet: connection reset")
	// ErrClosed is returned by operations on a closed connection.
	ErrClosed = errors.New("faultnet: connection closed")
)

// timeoutError satisfies net.Error with Timeout() == true so callers that
// classify errors the standard way (errors.Is(err, os.ErrDeadlineExceeded)
// aside) see a timeout.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrDeadline is returned when an operation exceeds the configured
// deadline while a fault (latency, stall) holds it up. It reports
// Timeout() == true like the net package's deadline errors.
var ErrDeadline error = timeoutError{}

// Profile configures the faults injected on one direction-agnostic
// connection. The zero Profile injects nothing and is a transparent
// wrapper.
type Profile struct {
	// Seed makes latency jitter deterministic. The byte-offset faults are
	// deterministic regardless of seed.
	Seed int64

	// Latency is added before every Read and Write. Jitter, when
	// non-zero, adds a uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// ChunkWrites, when > 0, fragments every Write into chunks of at most
	// this many bytes, forwarded separately to the underlying stream
	// (with per-chunk latency). The call still reports the full count —
	// the io.Writer contract is preserved; only the framing the peer
	// observes changes.
	ChunkWrites int

	// FailReadAfter / FailWriteAfter, when > 0, make the read or write
	// that would cross the Nth byte fail with ErrInjected. Bytes up to
	// the budget are still delivered.
	FailReadAfter  int64
	FailWriteAfter int64

	// ResetAfter, when > 0, resets the connection once N total bytes
	// (reads + writes) have passed: the underlying stream is closed (the
	// peer sees EOF / a closed pipe) and the local side gets ErrReset.
	ResetAfter int64

	// StallAfter, when > 0, silently stalls the connection once N total
	// bytes have passed: every subsequent operation blocks until the
	// deadline passes (ErrDeadline) or the connection is closed
	// (ErrClosed). This models a peer that goes dark without closing.
	StallAfter int64
}

// deadliner is the optional deadline surface of the underlying stream.
type deadliner interface {
	SetDeadline(time.Time) error
}

// Conn wraps an io.ReadWriteCloser with the faults of a Profile. It
// implements io.ReadWriteCloser and SetDeadline, which is the surface the
// transport layer requires.
type Conn struct {
	rw      io.ReadWriteCloser
	profile Profile

	mu          sync.Mutex
	rng         *mrand.Rand
	readN       int64 // total bytes read
	writeN      int64 // total bytes written
	deadline    time.Time
	deadlineSet chan struct{} // closed and replaced on each SetDeadline
	stalled     bool
	closed      bool
	done        chan struct{} // closed on Close
}

// Wrap wraps rw with the faults described by p.
func Wrap(rw io.ReadWriteCloser, p Profile) *Conn {
	return &Conn{
		rw:          rw,
		profile:     p,
		rng:         mrand.New(mrand.NewSource(p.Seed)),
		done:        make(chan struct{}),
		deadlineSet: make(chan struct{}),
	}
}

// Pipe returns the two ends of an in-memory duplex connection (net.Pipe),
// each wrapped with its own fault profile.
func Pipe(a, b Profile) (*Conn, *Conn) {
	x, y := net.Pipe()
	return Wrap(x, a), Wrap(y, b)
}

// SetDeadline bounds every subsequent Read and Write — and, like a real
// net.Conn, interrupts operations already blocked in a latency or stall
// fault. It is forwarded to the underlying stream when supported, and
// additionally enforced by the wrapper itself so latency and stall faults
// cannot outlast it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	wake := c.deadlineSet
	c.deadlineSet = make(chan struct{})
	c.mu.Unlock()
	close(wake) // blocked waits re-read the deadline
	if d, ok := c.rw.(deadliner); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// Close closes the wrapper and the underlying stream, unblocking any
// stalled or delayed operations.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	return c.rw.Close()
}

// sleep waits for d, cut short by the deadline (ErrDeadline) or Close
// (ErrClosed). It re-reads the deadline whenever SetDeadline fires, so a
// cancellation that forces the deadline into the past interrupts an
// in-flight latency wait. Returns nil when the full duration elapsed.
func (c *Conn) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	target := time.Now().Add(d)
	for {
		c.mu.Lock()
		deadline := c.deadline
		wake := c.deadlineSet
		c.mu.Unlock()
		now := time.Now()
		if !deadline.IsZero() && !deadline.After(now) {
			return ErrDeadline
		}
		if !target.After(now) {
			return nil
		}
		next := target
		deadlineFirst := false
		if !deadline.IsZero() && deadline.Before(target) {
			next = deadline
			deadlineFirst = true
		}
		t := time.NewTimer(time.Until(next))
		select {
		case <-t.C:
			if deadlineFirst {
				return ErrDeadline
			}
			return nil
		case <-c.done:
			t.Stop()
			return ErrClosed
		case <-wake:
			t.Stop() // deadline changed: recompute
		}
	}
}

// stall blocks until the deadline passes (ErrDeadline) or the connection
// is closed (ErrClosed), tracking deadline updates like sleep.
func (c *Conn) stall() error {
	for {
		c.mu.Lock()
		deadline := c.deadline
		wake := c.deadlineSet
		c.mu.Unlock()
		if deadline.IsZero() {
			select {
			case <-c.done:
				return ErrClosed
			case <-wake:
				continue
			}
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrDeadline
		}
		t := time.NewTimer(remain)
		select {
		case <-t.C:
			return ErrDeadline
		case <-c.done:
			t.Stop()
			return ErrClosed
		case <-wake:
			t.Stop()
		}
	}
}

// latency returns this operation's injected delay.
func (c *Conn) latency() time.Duration {
	p := c.profile
	if p.Latency <= 0 && p.Jitter <= 0 {
		return 0
	}
	d := p.Latency
	if p.Jitter > 0 {
		c.mu.Lock()
		d += time.Duration(c.rng.Int63n(int64(p.Jitter)))
		c.mu.Unlock()
	}
	return d
}

// checkOpen returns an error when the connection is closed or was reset.
func (c *Conn) checkOpen() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return nil
}

// total returns total bytes in both directions.
func (c *Conn) total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readN + c.writeN
}

// preOp runs the faults common to reads and writes: stall, reset, and
// latency, in that order of precedence.
func (c *Conn) preOp() error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	p := c.profile
	if p.StallAfter > 0 && c.total() >= p.StallAfter {
		c.mu.Lock()
		c.stalled = true
		c.mu.Unlock()
		return c.stall()
	}
	if p.ResetAfter > 0 && c.total() >= p.ResetAfter {
		_ = c.Close()
		return ErrReset
	}
	return c.sleep(c.latency())
}

// Read reads from the underlying stream, applying latency, injected
// errors, resets, and stalls.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.preOp(); err != nil {
		return 0, err
	}
	p := c.profile
	if p.FailReadAfter > 0 {
		c.mu.Lock()
		remain := p.FailReadAfter - c.readN
		c.mu.Unlock()
		if remain <= 0 {
			return 0, ErrInjected
		}
		if int64(len(b)) > remain {
			b = b[:remain]
		}
	}
	n, err := c.rw.Read(b)
	c.mu.Lock()
	c.readN += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write writes to the underlying stream, applying latency, chunking,
// injected errors, resets, and stalls.
func (c *Conn) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		if err := c.preOp(); err != nil {
			return total, err
		}
		chunk := b
		if c.profile.ChunkWrites > 0 && len(chunk) > c.profile.ChunkWrites {
			chunk = chunk[:c.profile.ChunkWrites]
		}
		if fail := c.profile.FailWriteAfter; fail > 0 {
			c.mu.Lock()
			remain := fail - c.writeN
			c.mu.Unlock()
			if remain <= 0 {
				return total, ErrInjected
			}
			if int64(len(chunk)) > remain {
				chunk = chunk[:remain]
			}
		}
		n, err := c.rw.Write(chunk)
		c.mu.Lock()
		c.writeN += int64(n)
		c.mu.Unlock()
		total += n
		if err != nil {
			return total, err
		}
		b = b[n:]
		if c.profile.ChunkWrites == 0 && c.profile.FailWriteAfter == 0 {
			// No fragmentation faults: the single underlying Write
			// consumed everything.
			break
		}
	}
	return total, nil
}

// Stalled reports whether the stall fault has triggered.
func (c *Conn) Stalled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalled
}

// BytesRead returns the total bytes delivered to Read callers.
func (c *Conn) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readN
}

// BytesWritten returns the total bytes accepted from Write callers.
func (c *Conn) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeN
}
