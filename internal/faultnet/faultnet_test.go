package faultnet_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// echoPeer reads everything from its end and writes it back, stopping on
// the first error.
func echoPeer(conn net.Conn) {
	buf := make([]byte, 256)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			if _, werr := conn.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestTransparent: a zero profile passes bytes through unchanged.
func TestTransparent(t *testing.T) {
	a, b := net.Pipe()
	go echoPeer(b)
	c := faultnet.Wrap(a, faultnet.Profile{})
	defer c.Close()

	msg := []byte("hello, fault-free world")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip corrupted: %q", got)
	}
	if c.BytesWritten() != int64(len(msg)) || c.BytesRead() != int64(len(msg)) {
		t.Fatalf("counters: wrote %d read %d", c.BytesWritten(), c.BytesRead())
	}
}

// TestChunkedWritesReassemble: fragmentation must be invisible to the
// reader — the full payload arrives, just in more pieces.
func TestChunkedWritesReassemble(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{ChunkWrites: 3})
	defer c.Close()
	defer b.Close()

	msg := bytes.Repeat([]byte("0123456789"), 10)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var readErr error
	go func() {
		defer wg.Done()
		got = make([]byte, len(msg))
		_, readErr = io.ReadFull(b, got)
	}()
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chunked payload corrupted")
	}
}

// TestFailWriteAfter: the write crossing the byte budget fails with
// ErrInjected, and bytes up to the budget still arrive.
func TestFailWriteAfter(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{FailWriteAfter: 5})
	defer c.Close()
	defer b.Close()

	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	n, err := c.Write([]byte("0123456789"))
	if !errors.Is(err, faultnet.ErrInjected) {
		t.Fatalf("want ErrInjected, got n=%d err=%v", n, err)
	}
	if n != 5 {
		t.Fatalf("delivered %d bytes before fault, want 5", n)
	}
}

// TestFailReadAfter: same for the read direction.
func TestFailReadAfter(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{FailReadAfter: 4})
	defer c.Close()
	defer b.Close()

	go func() { _, _ = b.Write([]byte("0123456789")) }()
	buf := make([]byte, 10)
	n, err := io.ReadFull(c, buf)
	if !errors.Is(err, faultnet.ErrInjected) {
		t.Fatalf("want ErrInjected, got n=%d err=%v", n, err)
	}
	if n != 4 {
		t.Fatalf("read %d bytes before fault, want 4", n)
	}
}

// TestResetClosesBothEnds: a reset fault errors locally and surfaces at
// the peer as a closed stream.
func TestResetClosesBothEnds(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{ResetAfter: 4})
	defer c.Close()
	defer b.Close()

	go func() {
		buf := make([]byte, 4)
		_, _ = io.ReadFull(b, buf)
	}()
	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("more")); !errors.Is(err, faultnet.ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
	// The peer must observe the closed stream, not block.
	_ = b.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read after reset should fail")
	}
}

// TestStallRespectsDeadline: a stalled connection unblocks when its
// deadline passes, with a timeout error.
func TestStallRespectsDeadline(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{StallAfter: 1})
	defer c.Close()
	defer b.Close()

	go func() {
		buf := make([]byte, 4)
		_, _ = io.ReadFull(b, buf)
		_, _ = b.Write([]byte("resp"))
	}()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Read(make([]byte, 4))
	if !errors.Is(err, faultnet.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stall outlived deadline: %v", elapsed)
	}
	if !c.Stalled() {
		t.Fatal("Stalled() should report the triggered fault")
	}
	var nerr interface{ Timeout() bool }
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stall error should be a timeout, got %v", err)
	}
}

// TestStallUnblocksOnClose: closing a stalled connection frees the
// blocked operation even with no deadline set.
func TestStallUnblocksOnClose(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{StallAfter: 1})
	defer b.Close()

	go func() {
		buf := make([]byte, 4)
		_, _ = io.ReadFull(b, buf)
	}()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, faultnet.ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not unblock on Close")
	}
}

// TestLatencyIsDeterministic: the same seed yields the same jitter
// sequence (observed via total elapsed floor), and latency still honors
// deadlines.
func TestLatencyDeadline(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{Latency: 200 * time.Millisecond})
	defer c.Close()
	defer b.Close()

	if err := c.SetDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Write([]byte("late"))
	if !errors.Is(err, faultnet.ErrDeadline) {
		t.Fatalf("latency past deadline should time out, got %v", err)
	}
}

// TestLatencyDelays: added latency is observable but bounded.
func TestLatencyDelays(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{Latency: 30 * time.Millisecond, Jitter: 10 * time.Millisecond, Seed: 7})
	defer c.Close()
	defer b.Close()

	go echoPeer(b)
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond {
		t.Fatalf("two ops with 30ms latency finished in %v", elapsed)
	}
}

// TestDeadlineForwarding: deadlines reach the underlying net.Conn, so a
// read blocked inside it (no wrapper fault active) still unblocks.
func TestDeadlineForwarding(t *testing.T) {
	a, b := net.Pipe()
	c := faultnet.Wrap(a, faultnet.Profile{})
	defer c.Close()
	defer b.Close()

	if err := c.SetDeadline(time.Now().Add(40 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read with no peer data should hit the deadline")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want os.ErrDeadlineExceeded from the inner conn, got %v", err)
	}
}

// TestPipeHelper: faultnet.Pipe wires two profiled ends together.
func TestPipeHelper(t *testing.T) {
	x, y := faultnet.Pipe(faultnet.Profile{}, faultnet.Profile{ChunkWrites: 2})
	defer x.Close()
	defer y.Close()
	go func() {
		buf := make([]byte, 6)
		if _, err := io.ReadFull(y, buf); err == nil {
			_, _ = y.Write(buf)
		}
	}()
	if _, err := x.Write([]byte("sixsix")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := io.ReadFull(x, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "sixsix" {
		t.Fatalf("got %q", got)
	}
}
