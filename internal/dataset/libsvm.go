package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseLIBSVM reads the sparse LIBSVM text format ("label idx:val ...",
// 1-based indices). When dim is zero the dimension is inferred from the
// largest index seen; otherwise rows are padded/validated against dim.
// Labels must parse to ±1 (0 and 2 are accepted as the negative class,
// matching common LIBSVM binary encodings).
func ParseLIBSVM(r io.Reader, name string, dim int) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)

	type sparseRow struct {
		label   int
		indices []int
		values  []float64
	}
	var rows []sparseRow
	maxIdx := dim
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		labelF, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		var label int
		switch {
		case labelF > 0 && labelF != 2:
			label = 1
		default:
			label = -1
		}
		row := sparseRow{label: label}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("dataset: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("dataset: line %d: bad feature index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad feature value %q: %w", lineNo, f[colon+1:], err)
			}
			if dim > 0 && idx > dim {
				return nil, fmt.Errorf("dataset: line %d: index %d exceeds dim %d", lineNo, idx, dim)
			}
			if idx > maxIdx {
				maxIdx = idx
			}
			row.indices = append(row.indices, idx)
			row.values = append(row.values, val)
		}
		rows = append(rows, row)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read libsvm: %w", err)
	}
	if len(rows) == 0 {
		return nil, ErrEmpty
	}

	d := &Dataset{Name: name, X: make([][]float64, len(rows)), Y: make([]int, len(rows))}
	for i, row := range rows {
		x := make([]float64, maxIdx)
		for j, idx := range row.indices {
			x[idx-1] = row.values[j]
		}
		d.X[i] = x
		d.Y[i] = row.label
	}
	return d, d.Validate()
}

// WriteLIBSVM writes the dataset in sparse LIBSVM format (zero features
// omitted).
func WriteLIBSVM(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for i, row := range d.X {
		if _, err := fmt.Fprintf(bw, "%+d", d.Y[i]); err != nil {
			return err
		}
		for j, v := range row {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw, " %d:%g", j+1, v); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
