package dataset_test

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestCatalogSpecsGenerate(t *testing.T) {
	for _, spec := range dataset.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			// Shrink for test speed; the structure checks don't need bulk.
			spec.TrainSize = 50
			spec.TestSize = 30
			train, test, err := dataset.Generate(spec, dataset.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := train.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := test.Validate(); err != nil {
				t.Fatal(err)
			}
			if train.Dim() != spec.Dim || train.Len() != 50 || test.Len() != 30 {
				t.Fatalf("shape: dim=%d train=%d test=%d", train.Dim(), train.Len(), test.Len())
			}
			for _, row := range train.X {
				for _, v := range row {
					if v < -1 || v > 1 {
						t.Fatalf("feature %v outside [-1,1]", v)
					}
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize, spec.TestSize = 20, 10
	a1, b1, err := dataset.Generate(spec, dataset.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := dataset.Generate(spec, dataset.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.X {
		for j := range a1.X[i] {
			if a1.X[i][j] != a2.X[i][j] {
				t.Fatal("same seed must reproduce identical data")
			}
		}
		if a1.Y[i] != a2.Y[i] {
			t.Fatal("labels must be deterministic")
		}
	}
	if b1.Len() != b2.Len() {
		t.Fatal("test split size differs")
	}
	a3, _, err := dataset.Generate(spec, dataset.Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1.X {
		if a1.X[i][0] != a3.X[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := dataset.SpecByName("nonexistent"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestBothClassesPresent(t *testing.T) {
	for _, name := range []string{"diabetes", "a1a", "splice", "cod-rna"} {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec.TrainSize, spec.TestSize = 100, 10
		train, _, err := dataset.Generate(spec, dataset.Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		pos, neg := 0, 0
		for _, y := range train.Y {
			if y > 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			t.Fatalf("%s: classes %d/%d", name, pos, neg)
		}
	}
}

func TestSliceSplitSubsets(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize, spec.TestSize = 40, 10
	d, _, err := dataset.Generate(spec, dataset.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := d.Split(30)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 30 || test.Len() != 10 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if _, _, err := d.Split(0); err == nil {
		t.Fatal("zero train size should fail")
	}
	if _, _, err := d.Split(40); err == nil {
		t.Fatal("full train size should fail")
	}

	subs, err := d.Subsets(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("%d subsets", len(subs))
	}
	for _, s := range subs {
		if s.Len() != 10 {
			t.Fatalf("subset size %d", s.Len())
		}
	}
	if _, err := d.Subsets(1); err == nil {
		t.Fatal("k=1 should fail")
	}
	// Slices must be deep copies.
	subs[0].X[0][0] = 99
	if d.X[0][0] == 99 {
		t.Fatal("Subsets must deep-copy rows")
	}
}

func TestShuffle(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize, spec.TestSize = 50, 10
	d, _, err := dataset.Generate(spec, dataset.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := d.X[0][0]
	d.Shuffle(rand.New(rand.NewPCG(1, 2)))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = first // a shuffle may fix a point; validity is the real check
}

func TestGenerateShiftedSubsets(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	subs, err := dataset.GenerateShiftedSubsets(spec, 3, 50, []float64{0.8, 0.3, 0}, dataset.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("%d subsets", len(subs))
	}
	// The most-shifted subset's mean must be farther from the unshifted
	// subset's mean than the mid-shifted one's.
	meanDist := func(a, b *dataset.Dataset) float64 {
		da, db := colMeans(a), colMeans(b)
		s := 0.0
		for j := range da {
			d := da[j] - db[j]
			s += d * d
		}
		return s
	}
	if meanDist(subs[0], subs[2]) <= meanDist(subs[1], subs[2]) {
		t.Fatal("larger shift should move the subset mean farther")
	}
	if _, err := dataset.GenerateShiftedSubsets(spec, 3, 50, []float64{1, 2}, dataset.Options{}); err == nil {
		t.Fatal("shift count mismatch should fail")
	}
	if _, err := dataset.GenerateShiftedSubsets(spec, 1, 50, []float64{1}, dataset.Options{}); err == nil {
		t.Fatal("k=1 should fail")
	}
}

func colMeans(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Dim())
	for _, row := range d.X {
		for j, v := range row {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(d.Len())
	}
	return out
}

func TestLIBSVMRoundTrip(t *testing.T) {
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize, spec.TestSize = 25, 5
	d, _, err := dataset.Generate(spec, dataset.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteLIBSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	parsed, err := dataset.ParseLIBSVM(&buf, "roundtrip", d.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != d.Len() || parsed.Dim() != d.Dim() {
		t.Fatalf("round-trip shape %dx%d", parsed.Len(), parsed.Dim())
	}
	for i := range d.X {
		if parsed.Y[i] != d.Y[i] {
			t.Fatalf("label %d changed", i)
		}
		for j := range d.X[i] {
			diff := parsed.X[i][j] - d.X[i][j]
			if diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, parsed.X[i][j], d.X[i][j])
			}
		}
	}
}

func TestParseLIBSVMFormats(t *testing.T) {
	input := `+1 1:0.5 3:-0.25
-1 2:1
# comment line

0 1:0.1
2 3:0.9
`
	d, err := dataset.ParseLIBSVM(strings.NewReader(input), "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("parsed %d rows", d.Len())
	}
	if d.Dim() != 3 {
		t.Fatalf("inferred dim %d", d.Dim())
	}
	if d.X[0][0] != 0.5 || d.X[0][2] != -0.25 || d.X[0][1] != 0 {
		t.Fatalf("row 0 = %v", d.X[0])
	}
	// 0 and 2 map to the negative class.
	if d.Y[2] != -1 || d.Y[3] != -1 {
		t.Fatalf("labels %v", d.Y)
	}
}

func TestParseLIBSVMErrors(t *testing.T) {
	cases := []string{
		"abc 1:0.5",
		"+1 0:0.5",
		"+1 1:xyz",
		"+1 nocolon",
	}
	for _, in := range cases {
		if _, err := dataset.ParseLIBSVM(strings.NewReader(in), "bad", 0); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
	if _, err := dataset.ParseLIBSVM(strings.NewReader(""), "empty", 0); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := dataset.ParseLIBSVM(strings.NewReader("+1 5:1"), "overdim", 3); err == nil {
		t.Fatal("index beyond declared dim should fail")
	}
}

func TestValidate(t *testing.T) {
	d := &dataset.Dataset{Name: "x", X: [][]float64{{1, 2}}, Y: []int{2}}
	if err := d.Validate(); err == nil {
		t.Fatal("label 2 should fail")
	}
	d = &dataset.Dataset{Name: "x", X: [][]float64{{1, 2}, {3}}, Y: []int{1, -1}}
	if err := d.Validate(); err == nil {
		t.Fatal("ragged rows should fail")
	}
	d = &dataset.Dataset{}
	if err := d.Validate(); err == nil {
		t.Fatal("empty dataset should fail")
	}
}

func TestFeatureColumn(t *testing.T) {
	d := &dataset.Dataset{Name: "x", X: [][]float64{{1, 2}, {3, 4}}, Y: []int{1, -1}}
	col, err := d.FeatureColumn(1)
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("column = %v", col)
	}
	if _, err := d.FeatureColumn(2); err == nil {
		t.Fatal("out-of-range column should fail")
	}
}
