package dataset_test

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// FuzzParseLIBSVM: arbitrary text must either parse into a valid dataset
// or error — never panic, never produce an invalid dataset.
func FuzzParseLIBSVM(f *testing.F) {
	f.Add("+1 1:0.5 2:-0.25\n-1 3:1\n")
	f.Add("0 1:1\n2 2:2\n")
	f.Add("# comment\n\n+1 1:1e-3\n")
	f.Add("+1 1:nan\n")
	f.Add("+1 0:1\n")
	f.Add("garbage")
	f.Add("+1 1:")
	f.Add("1 999999:1\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := dataset.ParseLIBSVM(strings.NewReader(input), "fuzz", 0)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parser returned invalid dataset: %v", err)
		}
	})
}
