// Package dataset supplies the evaluation data substrate of §VI-B. The
// paper uses 17 LIBSVM datasets; real data cannot ship with an offline
// module, so this package provides (a) deterministic synthetic generators
// whose dimensionality, size, and linear-vs-nonlinear separability match
// each paper dataset's character, and (b) a LIBSVM-format parser so the
// genuine files can be dropped in when available. DESIGN.md §5 documents
// the substitution.
package dataset

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// Dataset is a labeled binary-classification sample set with labels ±1.
type Dataset struct {
	// Name identifies the dataset (for reports).
	Name string
	// X is the sample matrix.
	X [][]float64
	// Y holds one ±1 label per sample.
	Y []int
}

// ErrEmpty reports an operation on an empty dataset.
var ErrEmpty = errors.New("dataset: empty dataset")

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 when empty).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmpty
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset %q: %d samples but %d labels", d.Name, len(d.X), len(d.Y))
	}
	dim := len(d.X[0])
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("dataset %q: row %d has dim %d, want %d", d.Name, i, len(row), dim)
		}
	}
	for i, y := range d.Y {
		if y != 1 && y != -1 {
			return fmt.Errorf("dataset %q: label %d at row %d; want ±1", d.Name, y, i)
		}
	}
	return nil
}

// Slice returns the half-open row range [lo, hi) as a view-copy.
func (d *Dataset) Slice(lo, hi int) (*Dataset, error) {
	if lo < 0 || hi > d.Len() || lo >= hi {
		return nil, fmt.Errorf("dataset %q: invalid slice [%d, %d) of %d", d.Name, lo, hi, d.Len())
	}
	out := &Dataset{
		Name: fmt.Sprintf("%s[%d:%d]", d.Name, lo, hi),
		X:    make([][]float64, hi-lo),
		Y:    make([]int, hi-lo),
	}
	for i := lo; i < hi; i++ {
		row := make([]float64, len(d.X[i]))
		copy(row, d.X[i])
		out.X[i-lo] = row
		out.Y[i-lo] = d.Y[i]
	}
	return out, nil
}

// Shuffle permutes samples in place with the given source.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(d.Len(), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset into a training prefix of trainSize rows
// and a test remainder.
func (d *Dataset) Split(trainSize int) (train, test *Dataset, err error) {
	if trainSize <= 0 || trainSize >= d.Len() {
		return nil, nil, fmt.Errorf("dataset %q: train size %d of %d", d.Name, trainSize, d.Len())
	}
	train, err = d.Slice(0, trainSize)
	if err != nil {
		return nil, nil, err
	}
	test, err = d.Slice(trainSize, d.Len())
	if err != nil {
		return nil, nil, err
	}
	train.Name = d.Name + "/train"
	test.Name = d.Name + "/test"
	return train, test, nil
}

// Subsets divides the dataset into k equal contiguous subsets (the Table
// II construction: "we split 4 subsets from the dataset diabetes ... each
// subset has 192 items").
func (d *Dataset) Subsets(k int) ([]*Dataset, error) {
	if k < 2 || d.Len() < k {
		return nil, fmt.Errorf("dataset %q: cannot form %d subsets of %d rows", d.Name, k, d.Len())
	}
	size := d.Len() / k
	out := make([]*Dataset, k)
	for i := 0; i < k; i++ {
		s, err := d.Slice(i*size, (i+1)*size)
		if err != nil {
			return nil, err
		}
		s.Name = fmt.Sprintf("%s/S%d", d.Name, i+1)
		out[i] = s
	}
	return out, nil
}

// FeatureColumn extracts feature j as a vector (used by the K-S baseline,
// which tests one dimension at a time).
func (d *Dataset) FeatureColumn(j int) ([]float64, error) {
	if j < 0 || j >= d.Dim() {
		return nil, fmt.Errorf("dataset %q: feature %d of %d", d.Name, j, d.Dim())
	}
	col := make([]float64, d.Len())
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col, nil
}
