package field

import (
	"fmt"
	"math/big"
)

// Mersenne exponents of the built-in large fields. 2^521-1, 2^607-1 and
// 2^1279-1 are Mersenne primes; they give cheap reduction and plenty of
// headroom for high-degree fixed-point products (a degree-d protocol
// polynomial at 40 fractional bits needs roughly 40·(d+1) bits plus
// amplifier and value headroom; see DESIGN.md §3).
const (
	MersenneExp521  = 521
	MersenneExp607  = 607
	MersenneExp1279 = 1279
)

// Mersenne returns the field F_{2^exp - 1}. The caller must pass a Mersenne
// prime exponent; the built-in constants are verified by tests.
func Mersenne(exp uint) (*Field, error) {
	p := new(big.Int).Lsh(big.NewInt(1), exp)
	p.Sub(p, big.NewInt(1))
	return New(p)
}

// ByBits returns the smallest built-in prime field with at least minBits
// bits, for protocols that compute their own headroom requirement.
func ByBits(minBits int) (*Field, error) {
	switch {
	case minBits <= 192:
		return NewFromHex(P192Hex)
	case minBits <= 255:
		return NewFromHex(P25519Hex)
	case minBits <= MersenneExp521:
		return Mersenne(MersenneExp521)
	case minBits <= MersenneExp607:
		return Mersenne(MersenneExp607)
	case minBits <= MersenneExp1279:
		return Mersenne(MersenneExp1279)
	default:
		return nil, fmt.Errorf("field: no built-in prime with %d bits (max %d)", minBits, MersenneExp1279)
	}
}
