package field

import (
	"errors"
	"io"
	"math/big"
)

// ErrDimensionMismatch reports vectors of different lengths.
var ErrDimensionMismatch = errors.New("field: vector dimension mismatch")

// Vec is a vector of canonical field elements.
type Vec []*big.Int

// NewVec returns a zero vector of dimension n.
func (f *Field) NewVec(n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

// RandVec samples a uniform vector of dimension n.
func (f *Field) RandVec(rng io.Reader, n int) (Vec, error) {
	v := make(Vec, n)
	for i := range v {
		x, err := f.Rand(rng)
		if err != nil {
			return nil, err
		}
		v[i] = x
	}
	return v, nil
}

// Dot returns the inner product of a and b in the field.
func (f *Field) Dot(a, b Vec) (*big.Int, error) {
	if len(a) != len(b) {
		return nil, ErrDimensionMismatch
	}
	acc := new(big.Int)
	tmp := new(big.Int)
	for i := range a {
		tmp.Mul(a[i], b[i])
		acc.Add(acc, tmp)
	}
	return acc.Mod(acc, f.p), nil
}

// AddVec returns the componentwise sum of a and b.
func (f *Field) AddVec(a, b Vec) (Vec, error) {
	if len(a) != len(b) {
		return nil, ErrDimensionMismatch
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = f.Add(a[i], b[i])
	}
	return out, nil
}

// SubVec returns the componentwise difference a-b.
func (f *Field) SubVec(a, b Vec) (Vec, error) {
	if len(a) != len(b) {
		return nil, ErrDimensionMismatch
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = f.Sub(a[i], b[i])
	}
	return out, nil
}

// ScaleVec returns s*a componentwise.
func (f *Field) ScaleVec(s *big.Int, a Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = f.Mul(s, a[i])
	}
	return out
}

// CopyVec returns a deep copy of v.
func CopyVec(v Vec) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = new(big.Int).Set(v[i])
	}
	return out
}
