package field_test

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func defaultField(t *testing.T) *field.Field {
	t.Helper()
	return field.Default()
}

func TestBuiltinModuliArePrime(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*field.Field, error)
	}{
		{"p25519", func() (*field.Field, error) { return field.NewFromHex(field.P25519Hex) }},
		{"p192", func() (*field.Field, error) { return field.NewFromHex(field.P192Hex) }},
		{"mersenne521", func() (*field.Field, error) { return field.Mersenne(field.MersenneExp521) }},
		{"mersenne607", func() (*field.Field, error) { return field.Mersenne(field.MersenneExp607) }},
		{"mersenne1279", func() (*field.Field, error) { return field.Mersenne(field.MersenneExp1279) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := tc.f()
			if err != nil {
				t.Fatal(err)
			}
			if !f.Modulus().ProbablyPrime(32) {
				t.Fatalf("%s modulus is not prime", tc.name)
			}
		})
	}
}

func TestByBitsReturnsSmallestSufficientField(t *testing.T) {
	cases := []struct {
		min  int
		want int
	}{
		{1, 192}, {192, 192}, {193, 255}, {255, 255},
		{256, 521}, {521, 521}, {522, 607}, {608, 1279}, {1279, 1279},
	}
	for _, tc := range cases {
		f, err := field.ByBits(tc.min)
		if err != nil {
			t.Fatalf("ByBits(%d): %v", tc.min, err)
		}
		if f.Bits() != tc.want {
			t.Fatalf("ByBits(%d) = %d bits, want %d", tc.min, f.Bits(), tc.want)
		}
	}
	if _, err := field.ByBits(1280); err == nil {
		t.Fatal("ByBits(1280) should fail")
	}
}

func TestNewRejectsBadModulus(t *testing.T) {
	for _, p := range []*big.Int{nil, big.NewInt(0), big.NewInt(-7), big.NewInt(1)} {
		if _, err := field.New(p); err == nil {
			t.Fatalf("New(%v) should fail", p)
		}
	}
}

// randElem draws a uniform element for property tests.
func randElem(t *testing.T, f *field.Field) *big.Int {
	t.Helper()
	x, err := f.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestFieldAxioms property-tests the ring laws on random elements.
func TestFieldAxioms(t *testing.T) {
	f := defaultField(t)
	cfg := &quick.Config{MaxCount: 200}

	commutativeAdd := func(seed1, seed2 int64) bool {
		a, b := randElem(t, f), randElem(t, f)
		return f.Add(a, b).Cmp(f.Add(b, a)) == 0
	}
	if err := quick.Check(commutativeAdd, cfg); err != nil {
		t.Error("add not commutative:", err)
	}

	associativeMul := func(int64) bool {
		a, b, c := randElem(t, f), randElem(t, f), randElem(t, f)
		return f.Mul(f.Mul(a, b), c).Cmp(f.Mul(a, f.Mul(b, c))) == 0
	}
	if err := quick.Check(associativeMul, cfg); err != nil {
		t.Error("mul not associative:", err)
	}

	distributive := func(int64) bool {
		a, b, c := randElem(t, f), randElem(t, f), randElem(t, f)
		return f.Mul(a, f.Add(b, c)).Cmp(f.Add(f.Mul(a, b), f.Mul(a, c))) == 0
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Error("not distributive:", err)
	}

	inverses := func(int64) bool {
		a := randElem(t, f)
		if a.Sign() == 0 {
			return true
		}
		inv, err := f.Inv(a)
		if err != nil {
			return false
		}
		return f.Mul(a, inv).Cmp(f.One()) == 0
	}
	if err := quick.Check(inverses, cfg); err != nil {
		t.Error("inverse law fails:", err)
	}

	negation := func(int64) bool {
		a := randElem(t, f)
		return f.Add(a, f.Neg(a)).Sign() == 0
	}
	if err := quick.Check(negation, cfg); err != nil {
		t.Error("negation law fails:", err)
	}
}

func TestInvZeroFails(t *testing.T) {
	f := defaultField(t)
	if _, err := f.Inv(f.Zero()); err == nil {
		t.Fatal("Inv(0) should fail")
	}
	if _, err := f.Div(f.One(), f.Zero()); err == nil {
		t.Fatal("Div by 0 should fail")
	}
}

func TestCenteredRoundTrip(t *testing.T) {
	f := defaultField(t)
	for _, v := range []int64{0, 1, -1, 12345, -98765, 1 << 40, -(1 << 40)} {
		e := f.FromInt64(v)
		if got := f.Centered(e).Int64(); got != v {
			t.Fatalf("Centered(FromInt64(%d)) = %d", v, got)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := defaultField(t)
	check := func(int64) bool {
		x := randElem(t, f)
		b, err := f.Bytes(x)
		if err != nil {
			return false
		}
		if len(b) != f.ElementLen() {
			return false
		}
		y, err := f.FromBytes(b)
		if err != nil {
			return false
		}
		return x.Cmp(y) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFromBytesRejectsInvalid(t *testing.T) {
	f := defaultField(t)
	if _, err := f.FromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short input should fail")
	}
	// The modulus itself is not canonical.
	raw := make([]byte, f.ElementLen())
	f.Modulus().FillBytes(raw)
	if _, err := f.FromBytes(raw); err == nil {
		t.Fatal("modulus bytes should be rejected")
	}
}

func TestBytesRejectsNonCanonical(t *testing.T) {
	f := defaultField(t)
	if _, err := f.Bytes(f.Modulus()); err == nil {
		t.Fatal("Bytes(p) should fail")
	}
	if _, err := f.Bytes(big.NewInt(-1)); err == nil {
		t.Fatal("Bytes(-1) should fail")
	}
}

func TestRandBounded(t *testing.T) {
	f := defaultField(t)
	bound := big.NewInt(1000)
	for i := 0; i < 200; i++ {
		x, err := f.RandBounded(rand.Reader, bound)
		if err != nil {
			t.Fatal(err)
		}
		if x.Sign() <= 0 || x.Cmp(big.NewInt(1001)) >= 0 {
			t.Fatalf("RandBounded out of [1,1000]: %v", x)
		}
	}
	if _, err := f.RandBounded(rand.Reader, big.NewInt(0)); err == nil {
		t.Fatal("zero bound should fail")
	}
	if _, err := f.RandBounded(rand.Reader, f.Modulus()); err == nil {
		t.Fatal("bound >= p/2 should fail")
	}
}

func TestRandNonZero(t *testing.T) {
	f := defaultField(t)
	for i := 0; i < 100; i++ {
		x, err := f.RandNonZero(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if x.Sign() == 0 || !f.Contains(x) {
			t.Fatalf("RandNonZero returned %v", x)
		}
	}
}

func TestVectorOps(t *testing.T) {
	f := defaultField(t)
	a := field.Vec{f.FromInt64(1), f.FromInt64(2), f.FromInt64(3)}
	b := field.Vec{f.FromInt64(4), f.FromInt64(-5), f.FromInt64(6)}

	dot, err := f.Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Centered(dot).Int64() != 4-10+18 {
		t.Fatalf("dot = %v", f.Centered(dot))
	}
	sum, err := f.AddVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Centered(sum[1]).Int64() != -3 {
		t.Fatalf("addvec[1] = %v", f.Centered(sum[1]))
	}
	diff, err := f.SubVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Centered(diff[0]).Int64() != -3 {
		t.Fatalf("subvec[0] = %v", f.Centered(diff[0]))
	}
	scaled := f.ScaleVec(f.FromInt64(10), a)
	if f.Centered(scaled[2]).Int64() != 30 {
		t.Fatalf("scalevec[2] = %v", f.Centered(scaled[2]))
	}
	if _, err := f.Dot(a, b[:2]); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	cp := field.CopyVec(a)
	cp[0].SetInt64(99)
	if a[0].Int64() == 99 {
		t.Fatal("CopyVec must deep-copy")
	}
}

func TestFieldEqualAndString(t *testing.T) {
	a := field.Default()
	b := field.Default()
	c, err := field.NewFromHex(field.P192Hex)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || a.Equal(c) || a.Equal(nil) {
		t.Fatal("Equal misbehaves")
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
	if !bytes.Contains([]byte(a.String()), []byte("255")) {
		t.Fatalf("String should mention bit size: %s", a.String())
	}
}

func TestRandVec(t *testing.T) {
	f := defaultField(t)
	v, err := f.RandVec(rand.Reader, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if !f.Contains(x) {
			t.Fatalf("element %v out of field", x)
		}
	}
}
