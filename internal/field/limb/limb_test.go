package limb_test

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/field"
	"repro/internal/field/limb"
)

func bigField(t testing.TB) *field.Field {
	t.Helper()
	return field.Default()
}

func randomBig(t testing.TB, f *field.Field) *big.Int {
	t.Helper()
	x, err := f.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestModulusMatchesDefaultField(t *testing.T) {
	if limb.Modulus().Cmp(bigField(t).Modulus()) != 0 {
		t.Fatal("limb modulus differs from field.Default()")
	}
}

func TestRoundTripBytesAndBig(t *testing.T) {
	f := bigField(t)
	for i := 0; i < 200; i++ {
		x := randomBig(t, f)
		var e limb.Element
		if err := e.SetBig(x); err != nil {
			t.Fatal(err)
		}
		if e.ToBig().Cmp(x) != 0 {
			t.Fatalf("big round trip: got %v want %v", e.ToBig(), x)
		}
		wb, err := f.Bytes(x)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e.Bytes(), wb) {
			t.Fatal("limb encoding differs from field encoding")
		}
		var d limb.Element
		if err := d.SetBytes(wb); err != nil {
			t.Fatal(err)
		}
		if !d.Equal(&e) {
			t.Fatal("byte round trip mismatch")
		}
	}
}

func TestSetBytesRejectsNonCanonical(t *testing.T) {
	var e limb.Element
	over := limb.Modulus().Bytes() // exactly p: 32 bytes, not canonical
	if err := e.SetBytes(over); err == nil {
		t.Fatal("accepted p")
	}
	all := bytes.Repeat([]byte{0xff}, 32)
	if err := e.SetBytes(all); err == nil {
		t.Fatal("accepted 2^256-1")
	}
	if err := e.SetBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short input")
	}
	if err := e.SetBig(big.NewInt(-1)); err == nil {
		t.Fatal("accepted negative")
	}
}

func TestArithmeticMatchesBig(t *testing.T) {
	f := bigField(t)
	for i := 0; i < 300; i++ {
		a, b := randomBig(t, f), randomBig(t, f)
		var ea, eb, er limb.Element
		if err := ea.SetBig(a); err != nil {
			t.Fatal(err)
		}
		if err := eb.SetBig(b); err != nil {
			t.Fatal(err)
		}
		if got, want := er.Add(&ea, &eb).ToBig(), f.Add(a, b); got.Cmp(want) != 0 {
			t.Fatalf("add mismatch: %v vs %v", got, want)
		}
		if got, want := er.Sub(&ea, &eb).ToBig(), f.Sub(a, b); got.Cmp(want) != 0 {
			t.Fatalf("sub mismatch: %v vs %v", got, want)
		}
		if got, want := er.Neg(&ea).ToBig(), f.Neg(a); got.Cmp(want) != 0 {
			t.Fatalf("neg mismatch: %v vs %v", got, want)
		}
		if got, want := er.Mul(&ea, &eb).ToBig(), f.Mul(a, b); got.Cmp(want) != 0 {
			t.Fatalf("mul mismatch: %v vs %v", got, want)
		}
		if got, want := er.Square(&ea).ToBig(), f.Mul(a, a); got.Cmp(want) != 0 {
			t.Fatalf("square mismatch: %v vs %v", got, want)
		}
	}
}

func TestArithmeticEdgeValues(t *testing.T) {
	f := bigField(t)
	p := f.Modulus()
	edges := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(19), big.NewInt(38),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(19)),
		new(big.Int).Rsh(p, 1),
	}
	for _, a := range edges {
		for _, b := range edges {
			var ea, eb, er limb.Element
			if err := ea.SetBig(a); err != nil {
				t.Fatal(err)
			}
			if err := eb.SetBig(b); err != nil {
				t.Fatal(err)
			}
			if got, want := er.Mul(&ea, &eb).ToBig(), f.Mul(a, b); got.Cmp(want) != 0 {
				t.Fatalf("mul(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got, want := er.Add(&ea, &eb).ToBig(), f.Add(a, b); got.Cmp(want) != 0 {
				t.Fatalf("add(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got, want := er.Sub(&ea, &eb).ToBig(), f.Sub(a, b); got.Cmp(want) != 0 {
				t.Fatalf("sub(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestInv(t *testing.T) {
	f := bigField(t)
	var zero limb.Element
	if _, err := zero.Inv(&zero); err == nil {
		t.Fatal("inverted zero")
	}
	for i := 0; i < 50; i++ {
		a := randomBig(t, f)
		if a.Sign() == 0 {
			continue
		}
		var ea, inv, prod limb.Element
		if err := ea.SetBig(a); err != nil {
			t.Fatal(err)
		}
		if _, err := inv.Inv(&ea); err != nil {
			t.Fatal(err)
		}
		want, err := f.Inv(a)
		if err != nil {
			t.Fatal(err)
		}
		if inv.ToBig().Cmp(want) != 0 {
			t.Fatalf("inv mismatch for %v", a)
		}
		one := limb.One()
		if !prod.Mul(&ea, &inv).Equal(&one) {
			t.Fatal("a·a⁻¹ != 1")
		}
	}
}

func TestBatchInvert(t *testing.T) {
	f := bigField(t)
	for _, n := range []int{1, 2, 3, 7, 16} {
		xs := make([]limb.Element, n)
		want := make([]*big.Int, n)
		for i := range xs {
			a := randomBig(t, f)
			for a.Sign() == 0 {
				a = randomBig(t, f)
			}
			if err := xs[i].SetBig(a); err != nil {
				t.Fatal(err)
			}
			w, err := f.Inv(a)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = w
		}
		if err := limb.BatchInvert(xs); err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i].ToBig().Cmp(want[i]) != 0 {
				t.Fatalf("batch invert [%d/%d] mismatch", i, n)
			}
		}
	}
	// A zero anywhere must error and leave inputs untouched.
	xs := make([]limb.Element, 3)
	xs[0].SetUint64(5)
	xs[2].SetUint64(7)
	before := make([]limb.Element, 3)
	copy(before, xs)
	if err := limb.BatchInvert(xs); err == nil {
		t.Fatal("batch inverted a zero")
	}
	for i := range xs {
		if !xs[i].Equal(&before[i]) {
			t.Fatal("failed batch invert modified inputs")
		}
	}
}

func TestExpUint(t *testing.T) {
	f := bigField(t)
	for _, e := range []uint64{0, 1, 2, 3, 5, 17, 64} {
		a := randomBig(t, f)
		var ea, got limb.Element
		if err := ea.SetBig(a); err != nil {
			t.Fatal(err)
		}
		got.ExpUint(&ea, e)
		want := f.Exp(a, new(big.Int).SetUint64(e))
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("exp %d mismatch", e)
		}
	}
}

func TestRand(t *testing.T) {
	var a, b limb.Element
	if err := a.Rand(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := b.RandNonZero(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if b.IsZero() {
		t.Fatal("RandNonZero returned zero")
	}
	if !bigField(t).Contains(a.ToBig()) {
		t.Fatal("Rand produced non-canonical residue")
	}
}

// TestElementOpAllocs pins the zero-alloc contract of the per-element hot
// operations, in the internal/obs disabled-path pin style.
func TestElementOpAllocs(t *testing.T) {
	var a, b, z limb.Element
	a.SetUint64(12345678901234567)
	b.SetUint64(98765432109876543)
	var buf [limb.ElementLen]byte
	allocs := testing.AllocsPerRun(1000, func() {
		z.Add(&a, &b)
		z.Sub(&z, &b)
		z.Mul(&z, &a)
		z.Square(&z)
		z.Neg(&z)
		z.PutBytes(buf[:])
	})
	if allocs != 0 {
		t.Errorf("element ops allocate %.1f per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := z.Inv(&a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Inv allocates %.1f per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := z.SetBytes(buf[:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SetBytes allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkLimbMul(b *testing.B) {
	var x, y, z limb.Element
	x.SetUint64(0xdeadbeefcafebabe)
	y.SetUint64(0x123456789abcdef0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Mul(&x, &y)
	}
}

func BenchmarkBigMul(b *testing.B) {
	f := field.Default()
	x := new(big.Int).SetUint64(0xdeadbeefcafebabe)
	y := new(big.Int).SetUint64(0x123456789abcdef0)
	x = f.Mul(x, x)
	y = f.Mul(y, y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Mul(x, y)
	}
}

func BenchmarkLimbInv(b *testing.B) {
	var x, z limb.Element
	x.SetUint64(0xdeadbeefcafebabe)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := z.Inv(&x); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRandBytesMatchesRandPutBytes pins RandBytes to the reference draw:
// same rng bytes in, same canonical encoding out.
func TestRandBytesMatchesRandPutBytes(t *testing.T) {
	seed := make([]byte, 32*200)
	if _, err := rand.Read(seed); err != nil {
		t.Fatal(err)
	}
	var ref limb.Element
	refRng := bytes.NewReader(seed)
	fastRng := bytes.NewReader(seed)
	var want, got [limb.ElementLen]byte
	for i := 0; i < 200; i++ {
		if err := ref.Rand(refRng); err != nil {
			t.Fatal(err)
		}
		ref.PutBytes(want[:])
		if err := limb.RandBytes(fastRng, got[:]); err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("draw %d: RandBytes %x != Rand+PutBytes %x", i, got, want)
		}
	}
	if err := limb.RandBytes(bytes.NewReader(seed), make([]byte, 31)); err == nil {
		t.Fatal("RandBytes accepted short dst")
	}
}
