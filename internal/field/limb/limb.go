// Package limb implements fixed-width arithmetic in F_p for the default
// protocol prime p = 2^255 − 19 on four 64-bit limbs. It is the fast
// backend behind field.Backend: every operation works on stack values with
// zero heap allocations, in contrast to the math/big path where each Mul
// carries a division and at least one allocation.
//
// Elements are kept in Montgomery form (x·R mod p with R = 2^256)
// internally; multiplication is a 4-limb CIOS Montgomery reduction whose
// final conditional subtraction is the only normalization step (the lazy
// reduction of the classic algorithm). Conversion in and out of Montgomery
// form happens only at the serialization boundary, where the encoding is
// the same canonical fixed-width big-endian byte string the math/big field
// produces — so wire bytes are backend-independent representations of the
// same residues.
//
// The Montgomery constants collapse for this prime: R mod p = 38 and
// R² mod p = 1444, because 2^256 = 2·(p + 19) ≡ 38 (mod p).
package limb

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/bits"
)

// ElementLen is the canonical encoded size in bytes, matching
// field.Default().ElementLen().
const ElementLen = 32

// Limbs is the fixed limb count of an element.
const Limbs = 4

// p = 2^255 − 19, little-endian limbs.
var pLimbs = [Limbs]uint64{
	0xffffffffffffffed,
	0xffffffffffffffff,
	0xffffffffffffffff,
	0x7fffffffffffffff,
}

// montInv = −p⁻¹ mod 2^64, derived from the low limb by Newton iteration
// (five doublings of precision reach 64 bits).
var montInv = func() uint64 {
	inv := pLimbs[0] // correct mod 2^4 already for odd p
	for i := 0; i < 5; i++ {
		inv *= 2 - pLimbs[0]*inv
	}
	return -inv
}()

var (
	// ErrNotCanonical reports an encoding or integer outside [0, p).
	ErrNotCanonical = errors.New("limb: value not a canonical field element")
	// ErrNoInverse reports an attempt to invert zero.
	ErrNoInverse = errors.New("limb: zero has no multiplicative inverse")
)

// Element is a field element in Montgomery form. The zero value is the
// additive identity and ready to use.
type Element [Limbs]uint64

// rSquared is R² mod p in plain form — multiplying by it through montMul
// converts a plain residue into Montgomery form.
var rSquared = Element{1444, 0, 0, 0}

// one is 1 in Montgomery form: R mod p = 38.
var one = Element{38, 0, 0, 0}

// Modulus returns p as a big integer.
func Modulus() *big.Int {
	return new(big.Int).SetBytes([]byte{
		0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xed,
	})
}

// One returns the multiplicative identity.
func One() Element { return one }

// SetZero sets z to 0 and returns it.
func (z *Element) SetZero() *Element {
	*z = Element{}
	return z
}

// SetOne sets z to 1 and returns it.
func (z *Element) SetOne() *Element {
	*z = one
	return z
}

// Set copies x into z and returns z.
func (z *Element) Set(x *Element) *Element {
	*z = *x
	return z
}

// IsZero reports whether z is the additive identity.
func (z *Element) IsZero() bool {
	return z[0]|z[1]|z[2]|z[3] == 0
}

// Equal reports whether z and x represent the same residue.
func (z *Element) Equal(x *Element) bool {
	return z[0] == x[0] && z[1] == x[1] && z[2] == x[2] && z[3] == x[3]
}

// Add sets z = x + y mod p and returns z.
func (z *Element) Add(x, y *Element) *Element {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], c = bits.Add64(x[3], y[3], c)
	// x, y < p < 2^255, so the raw sum fits 256 bits (c is always 0) and a
	// single conditional subtraction restores the canonical range.
	_ = c
	z.condSubP()
	return z
}

// Sub sets z = x − y mod p and returns z.
func (z *Element) Sub(x, y *Element) *Element {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		z[0], c = bits.Add64(z[0], pLimbs[0], 0)
		z[1], c = bits.Add64(z[1], pLimbs[1], c)
		z[2], c = bits.Add64(z[2], pLimbs[2], c)
		z[3], _ = bits.Add64(z[3], pLimbs[3], c)
	}
	return z
}

// Neg sets z = −x mod p and returns z.
func (z *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	var b uint64
	z[0], b = bits.Sub64(pLimbs[0], x[0], 0)
	z[1], b = bits.Sub64(pLimbs[1], x[1], b)
	z[2], b = bits.Sub64(pLimbs[2], x[2], b)
	z[3], _ = bits.Sub64(pLimbs[3], x[3], b)
	return z
}

// condSubP subtracts p once when z >= p.
func (z *Element) condSubP() {
	var b uint64
	var t Element
	t[0], b = bits.Sub64(z[0], pLimbs[0], 0)
	t[1], b = bits.Sub64(z[1], pLimbs[1], b)
	t[2], b = bits.Sub64(z[2], pLimbs[2], b)
	t[3], b = bits.Sub64(z[3], pLimbs[3], b)
	if b == 0 {
		*z = t
	}
}

// madd returns the 128-bit value t + a·b + c as (hi, lo). The sum cannot
// overflow: (2^64−1)² + 2·(2^64−1) = 2^128 − 1.
func madd(a, b, t, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, t, 0)
	hi += carry
	lo, carry = bits.Add64(lo, c, 0)
	hi += carry
	return hi, lo
}

// Mul sets z = x·y mod p (inputs and output in Montgomery form) by the
// 4-limb CIOS method: interleaved multiply and Montgomery reduction with a
// single final conditional subtraction.
//
// The reduction step exploits p = 2^255 − 19: adding m·p is adding
// (m << 255) − 19·m, which costs one 64×64 multiply (19·m), a borrow
// chain, and two word-shifted adds — instead of the four madds a generic
// modulus needs. The intermediate t − 19·m may dip negative before the
// (m << 255) term lands; the chain runs in two's complement over the
// six-word window, and the final sum is exact because the true value is
// non-negative and fits the window.
func (z *Element) Mul(x, y *Element) *Element {
	var t [Limbs + 1]uint64
	var tExtra uint64 // the (s+2)-th word of CIOS; always 0 or 1
	for i := 0; i < Limbs; i++ {
		// t += x[i] · y
		var c uint64
		c, t[0] = madd(x[i], y[0], t[0], 0)
		c, t[1] = madd(x[i], y[1], t[1], c)
		c, t[2] = madd(x[i], y[2], t[2], c)
		c, t[3] = madd(x[i], y[3], t[3], c)
		var o uint64
		t[4], o = bits.Add64(t[4], c, 0)
		tExtra += o
		// Reduce: add m·p = (m << 255) − 19·m with m chosen so the low
		// word cancels, then shift one word.
		m := t[0] * montInv
		hi19, lo19 := bits.Mul64(m, 19)
		var b uint64
		_, b = bits.Sub64(t[0], lo19, 0) // ≡ 0 mod 2^64 by choice of m
		r1, b := bits.Sub64(t[1], hi19, b)
		r2, b := bits.Sub64(t[2], 0, b)
		r3, b := bits.Sub64(t[3], 0, b)
		r4, b := bits.Sub64(t[4], 0, b)
		r5 := tExtra - b
		r3, c = bits.Add64(r3, m<<63, 0)
		r4, c = bits.Add64(r4, m>>1, c)
		r5 += c
		t[0], t[1], t[2], t[3], t[4] = r1, r2, r3, r4, r5
		tExtra = 0
	}
	z[0], z[1], z[2], z[3] = t[0], t[1], t[2], t[3]
	if t[4] != 0 {
		var b uint64
		z[0], b = bits.Sub64(z[0], pLimbs[0], 0)
		z[1], b = bits.Sub64(z[1], pLimbs[1], b)
		z[2], b = bits.Sub64(z[2], pLimbs[2], b)
		z[3], _ = bits.Sub64(z[3], pLimbs[3], b)
		return z
	}
	z.condSubP()
	return z
}

// Square sets z = x² mod p and returns z.
func (z *Element) Square(x *Element) *Element { return z.Mul(x, x) }

// sqn squares z in place n times.
func (z *Element) sqn(n int) *Element {
	for i := 0; i < n; i++ {
		z.Square(z)
	}
	return z
}

// Inv sets z = x⁻¹ mod p via Fermat's little theorem (x^(p−2), using the
// standard 2^255−19 addition chain: 254 squarings and 11 multiplications),
// and reports ErrNoInverse for zero. Constant work for all non-zero inputs.
func (z *Element) Inv(x *Element) (*Element, error) {
	if x.IsZero() {
		return nil, ErrNoInverse
	}
	// p − 2 = 2^255 − 21 = (2^250 − 1)·2^5 + 11.
	var z2, z9, z11, z2_5_0, z2_10_0, z2_20_0, z2_50_0, z2_100_0, t Element
	z2.Square(x)                // 2
	t.Square(&z2).Square(&t)    // 8
	z9.Mul(&t, x)               // 9
	z11.Mul(&z9, &z2)           // 11
	t.Square(&z11)              // 22
	z2_5_0.Mul(&t, &z9)         // 31 = 2^5 − 1
	t.Set(&z2_5_0).sqn(5)       // 2^10 − 2^5
	z2_10_0.Mul(&t, &z2_5_0)    // 2^10 − 1
	t.Set(&z2_10_0).sqn(10)     // 2^20 − 2^10
	z2_20_0.Mul(&t, &z2_10_0)   // 2^20 − 1
	t.Set(&z2_20_0).sqn(20)     // 2^40 − 2^20
	t.Mul(&t, &z2_20_0)         // 2^40 − 1
	t.sqn(10)                   // 2^50 − 2^10
	z2_50_0.Mul(&t, &z2_10_0)   // 2^50 − 1
	t.Set(&z2_50_0).sqn(50)     // 2^100 − 2^50
	z2_100_0.Mul(&t, &z2_50_0)  // 2^100 − 1
	t.Set(&z2_100_0).sqn(100)   // 2^200 − 2^100
	t.Mul(&t, &z2_100_0)        // 2^200 − 1
	t.sqn(50)                   // 2^250 − 2^50
	t.Mul(&t, &z2_50_0)         // 2^250 − 1
	t.sqn(5)                    // 2^255 − 2^5
	return z.Mul(&t, &z11), nil // 2^255 − 21
}

// ExpUint sets z = x^e mod p for a small non-negative exponent by
// square-and-multiply (variable time in e; e is public protocol structure).
func (z *Element) ExpUint(x *Element, e uint64) *Element {
	if e == 0 {
		return z.SetOne()
	}
	base := *x
	acc := one
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			acc.Mul(&acc, &base)
		}
		base.Square(&base)
	}
	return z.Set(&acc)
}

// BatchInvert inverts every element of xs in place with Montgomery's trick:
// one Inv plus 3(n−1) multiplications. Any zero input yields ErrNoInverse
// and leaves xs unmodified.
func BatchInvert(xs []Element) error {
	if len(xs) == 0 {
		return nil
	}
	return BatchInvertScratch(xs, make([]Element, len(xs)))
}

// BatchInvertScratch is BatchInvert with caller-provided scratch of
// len(xs) elements, for hot loops that amortize the allocation.
func BatchInvertScratch(xs, scratch []Element) error {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if len(scratch) < n {
		return fmt.Errorf("limb: batch-invert scratch %d < %d", len(scratch), n)
	}
	// prods[i] = xs[0]·…·xs[i]
	prods := scratch[:n]
	prods[0] = xs[0]
	for i := 1; i < n; i++ {
		prods[i].Mul(&prods[i-1], &xs[i])
	}
	var inv Element
	if _, err := inv.Inv(&prods[n-1]); err != nil {
		// Distinguish "some element is zero" for a precise error; the
		// aggregated product is zero iff one factor is.
		for i := range xs {
			if xs[i].IsZero() {
				return ErrNoInverse
			}
		}
		return err
	}
	for i := n - 1; i > 0; i-- {
		var xi Element
		xi.Mul(&inv, &prods[i-1]) // xs[i]⁻¹
		inv.Mul(&inv, &xs[i])     // (xs[0]·…·xs[i−1])⁻¹
		xs[i] = xi
	}
	xs[0] = inv
	return nil
}

// isCanonicalPlain reports whether the plain (non-Montgomery) limbs are < p.
func isCanonicalPlain(v *[Limbs]uint64) bool {
	var b uint64
	_, b = bits.Sub64(v[0], pLimbs[0], 0)
	_, b = bits.Sub64(v[1], pLimbs[1], b)
	_, b = bits.Sub64(v[2], pLimbs[2], b)
	_, b = bits.Sub64(v[3], pLimbs[3], b)
	return b != 0
}

// SetBytes parses the canonical fixed-width big-endian encoding (the same
// 32-byte form field.Field.Bytes produces), rejecting values >= p.
func (z *Element) SetBytes(b []byte) error {
	if len(b) != ElementLen {
		return fmt.Errorf("limb: element must be %d bytes, got %d", ElementLen, len(b))
	}
	var v [Limbs]uint64
	for i := 0; i < Limbs; i++ {
		v[i] = uint64(b[31-8*i]) | uint64(b[30-8*i])<<8 | uint64(b[29-8*i])<<16 | uint64(b[28-8*i])<<24 |
			uint64(b[27-8*i])<<32 | uint64(b[26-8*i])<<40 | uint64(b[25-8*i])<<48 | uint64(b[24-8*i])<<56
	}
	if !isCanonicalPlain(&v) {
		return ErrNotCanonical
	}
	*z = v
	z.Mul(z, &rSquared)
	return nil
}

// PutBytes writes the canonical fixed-width big-endian encoding into dst,
// which must be at least ElementLen bytes. It allocates nothing.
func (z *Element) PutBytes(dst []byte) {
	_ = dst[ElementLen-1]
	var t Element
	t.Mul(z, &one1) // Montgomery reduction by 1 leaves the plain residue
	for i := 0; i < Limbs; i++ {
		v := t[i]
		dst[31-8*i] = byte(v)
		dst[30-8*i] = byte(v >> 8)
		dst[29-8*i] = byte(v >> 16)
		dst[28-8*i] = byte(v >> 24)
		dst[27-8*i] = byte(v >> 32)
		dst[26-8*i] = byte(v >> 40)
		dst[25-8*i] = byte(v >> 48)
		dst[24-8*i] = byte(v >> 56)
	}
}

// one1 is the plain integer 1, used to strip the Montgomery factor.
var one1 = Element{1, 0, 0, 0}

// Bytes returns the canonical fixed-width big-endian encoding.
func (z *Element) Bytes() []byte {
	out := make([]byte, ElementLen)
	z.PutBytes(out)
	return out
}

// SetUint64 sets z to the given small integer.
func (z *Element) SetUint64(v uint64) *Element {
	*z = Element{v, 0, 0, 0}
	return z.Mul(z, &rSquared)
}

// SetBig sets z from a canonical big integer in [0, p), rejecting anything
// else (mirroring field.FromBytes semantics).
func (z *Element) SetBig(v *big.Int) error {
	if v == nil || v.Sign() < 0 || v.BitLen() > 255 {
		return ErrNotCanonical
	}
	var buf [ElementLen]byte
	v.FillBytes(buf[:])
	return z.SetBytes(buf[:])
}

// SetBigReduce sets z to v mod p for an arbitrary big integer (mirroring
// field.FromBig semantics).
func (z *Element) SetBigReduce(v *big.Int) *Element {
	r := new(big.Int).Mod(v, Modulus())
	var buf [ElementLen]byte
	r.FillBytes(buf[:])
	// r is canonical by construction.
	_ = z.SetBytes(buf[:])
	return z
}

// ToBig returns the residue as a canonical big integer.
func (z *Element) ToBig() *big.Int {
	return new(big.Int).SetBytes(z.Bytes())
}

// Rand sets z to a field element derived from 32 rng bytes reduced mod p.
// The 2^−250 sampling bias against the smallest residues is cryptographically
// irrelevant for masks and decoys; what matters for the protocol is that the
// draw consumes a fixed number of rng bytes, keeping the stream — and hence
// the wire bytes — deterministic at any parallelism degree.
func (z *Element) Rand(rng io.Reader) error {
	var buf [ElementLen]byte
	if _, err := io.ReadFull(rng, buf[:]); err != nil {
		return fmt.Errorf("limb: sample element: %w", err)
	}
	var v [Limbs]uint64
	for i := 0; i < Limbs; i++ {
		v[i] = uint64(buf[31-8*i]) | uint64(buf[30-8*i])<<8 | uint64(buf[29-8*i])<<16 | uint64(buf[28-8*i])<<24 |
			uint64(buf[27-8*i])<<32 | uint64(buf[26-8*i])<<40 | uint64(buf[25-8*i])<<48 | uint64(buf[24-8*i])<<56
	}
	// v < 2^256 = 2p + 38, so at most two conditional subtractions.
	*z = v
	z.condSubP()
	z.condSubP()
	z.Mul(z, &rSquared)
	return nil
}

// RandNonZero sets z to a non-zero field element (rejection on zero).
func (z *Element) RandNonZero(rng io.Reader) error {
	for {
		if err := z.Rand(rng); err != nil {
			return err
		}
		if !z.IsZero() {
			return nil
		}
	}
}

// RandBytes writes a uniform field element directly in canonical encoded
// form into dst (exactly ElementLen bytes), consuming the same 32 rng bytes
// and producing the same residue as Rand followed by PutBytes — but without
// the two Montgomery domain conversions, which the caller does not need
// when the element only exists to be serialized (decoy records).
func RandBytes(rng io.Reader, dst []byte) error {
	if len(dst) != ElementLen {
		return fmt.Errorf("limb: element must be %d bytes, got %d", ElementLen, len(dst))
	}
	var buf [ElementLen]byte
	if _, err := io.ReadFull(rng, buf[:]); err != nil {
		return fmt.Errorf("limb: sample element: %w", err)
	}
	var v [Limbs]uint64
	for i := 0; i < Limbs; i++ {
		v[i] = uint64(buf[31-8*i]) | uint64(buf[30-8*i])<<8 | uint64(buf[29-8*i])<<16 | uint64(buf[28-8*i])<<24 |
			uint64(buf[27-8*i])<<32 | uint64(buf[26-8*i])<<40 | uint64(buf[25-8*i])<<48 | uint64(buf[24-8*i])<<56
	}
	// v < 2^256 = 2p + 38, so at most two conditional subtractions; the
	// limbs stay in the plain (non-Montgomery) domain throughout.
	e := (*Element)(&v)
	e.condSubP()
	e.condSubP()
	for i := 0; i < Limbs; i++ {
		w := e[i]
		dst[31-8*i] = byte(w)
		dst[30-8*i] = byte(w >> 8)
		dst[29-8*i] = byte(w >> 16)
		dst[28-8*i] = byte(w >> 24)
		dst[27-8*i] = byte(w >> 32)
		dst[26-8*i] = byte(w >> 40)
		dst[25-8*i] = byte(w >> 48)
		dst[24-8*i] = byte(w >> 56)
	}
	return nil
}
