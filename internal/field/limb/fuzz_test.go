package limb_test

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/field"
	"repro/internal/field/limb"
)

// FuzzLimbVsBig differentially checks every limb-field operation against
// the math/big field: two arbitrary 32-byte strings are interpreted as
// (possibly non-canonical) big-endian integers; reduction, encoding,
// decoding, and the full arithmetic set must agree bit-for-bit with the
// big.Int reference on the reduced residues.
func FuzzLimbVsBig(f *testing.F) {
	fl := field.Default()
	f.Add(make([]byte, 32), make([]byte, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 32), bytes.Repeat([]byte{0xff}, 32))
	f.Add(fl.Modulus().Bytes(), big.NewInt(19).FillBytes(make([]byte, 32)))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		if len(rawA) > 32 || len(rawB) > 32 {
			return
		}
		ia := new(big.Int).SetBytes(rawA)
		ib := new(big.Int).SetBytes(rawB)

		// Reduce: SetBigReduce must match field.FromBig for arbitrary ints.
		var ea, eb limb.Element
		ea.SetBigReduce(ia)
		eb.SetBigReduce(ib)
		a := fl.FromBig(ia)
		b := fl.FromBig(ib)
		if ea.ToBig().Cmp(a) != 0 || eb.ToBig().Cmp(b) != 0 {
			t.Fatal("reduce disagrees with big field")
		}

		// Decode: canonical acceptance must match field.FromBytes exactly.
		if len(rawA) == 32 {
			var d limb.Element
			limbErr := d.SetBytes(rawA)
			_, bigErr := fl.FromBytes(rawA)
			if (limbErr == nil) != (bigErr == nil) {
				t.Fatalf("canonicality disagreement: limb=%v big=%v", limbErr, bigErr)
			}
			if limbErr == nil && d.ToBig().Cmp(a) != 0 {
				t.Fatal("decode disagrees with big field")
			}
		}

		// Encode: serialized form must be the big field's fixed-width bytes.
		wantBytes, err := fl.Bytes(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ea.Bytes(), wantBytes) {
			t.Fatal("encode disagrees with big field")
		}

		var r limb.Element
		if got, want := r.Add(&ea, &eb).ToBig(), fl.Add(a, b); got.Cmp(want) != 0 {
			t.Fatalf("add: %v vs %v", got, want)
		}
		if got, want := r.Sub(&ea, &eb).ToBig(), fl.Sub(a, b); got.Cmp(want) != 0 {
			t.Fatalf("sub: %v vs %v", got, want)
		}
		if got, want := r.Neg(&ea).ToBig(), fl.Neg(a); got.Cmp(want) != 0 {
			t.Fatalf("neg: %v vs %v", got, want)
		}
		if got, want := r.Mul(&ea, &eb).ToBig(), fl.Mul(a, b); got.Cmp(want) != 0 {
			t.Fatalf("mul: %v vs %v", got, want)
		}

		_, limbInvErr := r.Inv(&ea)
		wantInv, bigInvErr := fl.Inv(a)
		if (limbInvErr == nil) != (bigInvErr == nil) {
			t.Fatalf("inv error disagreement: limb=%v big=%v", limbInvErr, bigInvErr)
		}
		if limbInvErr == nil && r.ToBig().Cmp(wantInv) != 0 {
			t.Fatalf("inv: %v vs %v", r.ToBig(), wantInv)
		}
	})
}
