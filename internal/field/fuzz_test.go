package field_test

import (
	"testing"

	"repro/internal/field"
)

// FuzzFromBytes: arbitrary byte strings must either parse to a canonical
// element that re-serializes identically, or error — never panic.
func FuzzFromBytes(f *testing.F) {
	fl := field.Default()
	f.Add(make([]byte, 32))
	f.Add([]byte{0xff})
	big := make([]byte, 32)
	for i := range big {
		big[i] = 0xff
	}
	f.Add(big)
	f.Fuzz(func(t *testing.T, input []byte) {
		x, err := fl.FromBytes(input)
		if err != nil {
			return
		}
		out, err := fl.Bytes(x)
		if err != nil {
			t.Fatalf("parsed element failed to serialize: %v", err)
		}
		if len(out) != len(input) {
			t.Fatalf("length changed: %d vs %d", len(out), len(input))
		}
		for i := range out {
			if out[i] != input[i] {
				t.Fatal("round trip not identical")
			}
		}
	})
}
