// Package field implements arithmetic in a prime field F_p on top of
// math/big. It is the exact substrate on which every protocol in this
// repository (OMPE, oblivious transfer payloads, fixed-point encodings)
// operates: all masking polynomials, cover polynomials, and amplified
// decision values are elements of one shared field.
//
// Elements are canonical *big.Int values in [0, p). The Field type is
// immutable after construction and safe for concurrent use; element values
// returned by its methods are freshly allocated.
package field

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Well-known primes usable as protocol fields.
const (
	// P25519Hex is 2^255 - 19 (the Curve25519 base-field prime). It is the
	// default protocol field: large enough that fixed-point values with a
	// 2^40 scale and degree-4 polynomials never wrap, small enough that
	// element operations stay cheap.
	P25519Hex = "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"

	// P192Hex is the NIST P-192 base-field prime 2^192 - 2^64 - 1, offered
	// for benchmarks that want a smaller field.
	P192Hex = "fffffffffffffffffffffffffffffffeffffffffffffffff"
)

var (
	// ErrNotInField reports a value outside [0, p).
	ErrNotInField = errors.New("field: value not a canonical field element")
	// ErrNoInverse reports an attempt to invert zero.
	ErrNoInverse = errors.New("field: zero has no multiplicative inverse")
)

// Field is a prime field F_p.
type Field struct {
	p    *big.Int // the modulus, prime
	half *big.Int // floor(p/2), used for centered decoding
	bits int
}

// New returns the field with the given prime modulus. The primality of p is
// the caller's responsibility; NewFromHex validates the library's built-in
// constants in tests.
func New(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 || p.Cmp(big.NewInt(2)) < 0 {
		return nil, errors.New("field: modulus must be a prime >= 2")
	}
	f := &Field{
		p:    new(big.Int).Set(p),
		half: new(big.Int).Rsh(p, 1),
		bits: p.BitLen(),
	}
	return f, nil
}

// NewFromHex constructs a field from a hexadecimal modulus string.
func NewFromHex(hexModulus string) (*Field, error) {
	p, ok := new(big.Int).SetString(hexModulus, 16)
	if !ok {
		return nil, fmt.Errorf("field: invalid hex modulus %q", hexModulus)
	}
	return New(p)
}

// Default returns the default protocol field F_{2^255-19}.
func Default() *Field {
	f, err := NewFromHex(P25519Hex)
	if err != nil {
		// The constant is compile-time fixed; failure is a programming error.
		panic(err)
	}
	return f
}

// Modulus returns a copy of p.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.p) }

// Bits returns the bit length of the modulus.
func (f *Field) Bits() int { return f.bits }

// ElementLen returns the fixed byte length of a serialized element.
func (f *Field) ElementLen() int { return (f.bits + 7) / 8 }

// Contains reports whether x is a canonical element, i.e. 0 <= x < p.
func (f *Field) Contains(x *big.Int) bool {
	return x != nil && x.Sign() >= 0 && x.Cmp(f.p) < 0
}

// Reduce returns x mod p as a canonical element.
func (f *Field) Reduce(x *big.Int) *big.Int {
	r := new(big.Int).Mod(x, f.p)
	return r
}

// Zero returns the additive identity.
func (f *Field) Zero() *big.Int { return new(big.Int) }

// One returns the multiplicative identity.
func (f *Field) One() *big.Int { return big.NewInt(1) }

// Add returns a+b mod p.
func (f *Field) Add(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Add(a, b))
}

// Sub returns a-b mod p.
func (f *Field) Sub(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Sub(a, b))
}

// Neg returns -a mod p.
func (f *Field) Neg(a *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Neg(a))
}

// Mul returns a*b mod p.
func (f *Field) Mul(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Mul(a, b))
}

// Exp returns a^e mod p for e >= 0.
func (f *Field) Exp(a, e *big.Int) *big.Int {
	return new(big.Int).Exp(a, e, f.p)
}

// Inv returns the multiplicative inverse of a, or ErrNoInverse for zero.
func (f *Field) Inv(a *big.Int) (*big.Int, error) {
	if f.Reduce(a).Sign() == 0 {
		return nil, ErrNoInverse
	}
	inv := new(big.Int).ModInverse(a, f.p)
	if inv == nil {
		return nil, fmt.Errorf("field: %v and modulus not coprime", a)
	}
	return inv, nil
}

// Div returns a/b mod p, erroring when b is zero.
func (f *Field) Div(a, b *big.Int) (*big.Int, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return nil, err
	}
	return f.Mul(a, bi), nil
}

// Rand returns a uniform element of [0, p) using the given entropy source
// (crypto/rand.Reader in production code).
func (f *Field) Rand(rng io.Reader) (*big.Int, error) {
	x, err := rand.Int(rng, f.p)
	if err != nil {
		return nil, fmt.Errorf("field: sample element: %w", err)
	}
	return x, nil
}

// RandNonZero returns a uniform element of [1, p).
func (f *Field) RandNonZero(rng io.Reader) (*big.Int, error) {
	pm1 := new(big.Int).Sub(f.p, big.NewInt(1))
	x, err := rand.Int(rng, pm1)
	if err != nil {
		return nil, fmt.Errorf("field: sample nonzero element: %w", err)
	}
	return x.Add(x, big.NewInt(1)), nil
}

// RandBounded returns a uniform integer in [1, bound] as a field element.
// Protocol amplifiers (r_a, r_am, r_aw) use this: they must be positive and
// small enough that amplified fixed-point values stay within the centered
// range, so the classification sign survives amplification.
func (f *Field) RandBounded(rng io.Reader, bound *big.Int) (*big.Int, error) {
	if bound == nil || bound.Sign() <= 0 {
		return nil, errors.New("field: amplifier bound must be positive")
	}
	if bound.Cmp(f.half) >= 0 {
		return nil, errors.New("field: amplifier bound exceeds centered range")
	}
	x, err := rand.Int(rng, bound)
	if err != nil {
		return nil, fmt.Errorf("field: sample bounded element: %w", err)
	}
	return x.Add(x, big.NewInt(1)), nil
}

// Centered maps a canonical element into the symmetric interval
// (-p/2, p/2]. Fixed-point decodings use this to recover signed values.
func (f *Field) Centered(x *big.Int) *big.Int {
	c := new(big.Int).Set(x)
	if c.Cmp(f.half) > 0 {
		c.Sub(c, f.p)
	}
	return c
}

// FromInt64 embeds a signed integer into the field.
func (f *Field) FromInt64(v int64) *big.Int {
	return f.Reduce(big.NewInt(v))
}

// FromBig embeds a (possibly negative or oversized) integer into the field.
func (f *Field) FromBig(v *big.Int) *big.Int { return f.Reduce(v) }

// Bytes serializes a canonical element as a fixed-width big-endian slice.
func (f *Field) Bytes(x *big.Int) ([]byte, error) {
	if !f.Contains(x) {
		return nil, ErrNotInField
	}
	out := make([]byte, f.ElementLen())
	x.FillBytes(out)
	return out, nil
}

// FromBytes parses a fixed-width big-endian element, rejecting values >= p.
func (f *Field) FromBytes(b []byte) (*big.Int, error) {
	if len(b) != f.ElementLen() {
		return nil, fmt.Errorf("field: element must be %d bytes, got %d", f.ElementLen(), len(b))
	}
	x := new(big.Int).SetBytes(b)
	if !f.Contains(x) {
		return nil, ErrNotInField
	}
	return x, nil
}

// Equal reports whether two fields share the same modulus.
func (f *Field) Equal(other *Field) bool {
	return other != nil && f.p.Cmp(other.p) == 0
}

// String implements fmt.Stringer.
func (f *Field) String() string {
	return fmt.Sprintf("F_p (%d bits)", f.bits)
}
