package field

import (
	"fmt"

	"repro/internal/field/limb"
)

// Backend names a field-arithmetic implementation. The protocol semantics
// are identical across backends — both compute in the same prime field and
// produce the same canonical byte encodings — but the execution strategy
// differs:
//
//   - BackendBig is the portable math/big path. It works over every
//     built-in prime and allocates per operation.
//   - BackendLimb is the fixed-width [4]uint64 path (internal/field/limb)
//     with Montgomery multiplication and zero allocations per element op.
//     It is only valid over the 2^255−19 field.
//
// The zero value selects BackendBig, so gob-decoded structs from peers
// that predate the seam keep their legacy behavior.
type Backend string

const (
	// BackendBig selects the math/big implementation (default).
	BackendBig Backend = "big"
	// BackendLimb selects the fixed-width limb implementation; requires
	// the 2^255−19 field.
	BackendLimb Backend = "limb"
)

// ResolveBackend parses a backend name. The empty string resolves to
// BackendBig for compatibility with peers that never set the field.
func ResolveBackend(name string) (Backend, error) {
	switch Backend(name) {
	case "", BackendBig:
		return BackendBig, nil
	case BackendLimb:
		return BackendLimb, nil
	default:
		return "", fmt.Errorf("field: unknown backend %q (want %q or %q)", name, BackendBig, BackendLimb)
	}
}

// OrDefault maps the zero value to BackendBig.
func (b Backend) OrDefault() Backend {
	if b == "" {
		return BackendBig
	}
	return b
}

// Validate rejects unknown backend names.
func (b Backend) Validate() error {
	_, err := ResolveBackend(string(b))
	return err
}

// SupportsLimb reports whether the limb backend can serve this field,
// i.e. whether the modulus is exactly 2^255−19.
func (f *Field) SupportsLimb() bool {
	return f.p.Cmp(limb.Modulus()) == 0
}

// CheckBackend verifies that the given backend can run over f.
func (f *Field) CheckBackend(b Backend) error {
	switch b.OrDefault() {
	case BackendBig:
		return nil
	case BackendLimb:
		if !f.SupportsLimb() {
			return fmt.Errorf("field: limb backend requires the 2^255−19 field, have %d bits", f.bits)
		}
		return nil
	default:
		return b.Validate()
	}
}
