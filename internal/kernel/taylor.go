// Package kernel provides polynomial approximations of the RBF and sigmoid
// kernels (paper §IV-B): both are transcendental, so before the OMPE
// protocol can evaluate them obliviously they are truncated to Taylor
// polynomials of a configurable order, "using a large number p to
// approximate the infinity".
package kernel

import (
	"errors"
	"fmt"
	"math"
)

// ErrOrder reports an unsupported truncation order.
var ErrOrder = errors.New("kernel: unsupported truncation order")

// ExpSeries returns the coefficients c_0..c_terms of the truncated series
// exp(a·u) ≈ Σ_i c_i·uⁱ with c_i = aⁱ/i!. The RBF kernel uses a = −γ and
// u = ‖x−t‖², making the truncated kernel a polynomial of degree 2·terms
// in t.
func ExpSeries(a float64, terms int) ([]float64, error) {
	if terms < 1 {
		return nil, fmt.Errorf("%w: %d exp terms", ErrOrder, terms)
	}
	coeffs := make([]float64, terms+1)
	coeffs[0] = 1
	for i := 1; i <= terms; i++ {
		coeffs[i] = coeffs[i-1] * a / float64(i)
	}
	return coeffs, nil
}

// ExpTailBound bounds the truncation error |exp(a·u) − Σ_{i<=terms}| for
// |a·u| <= bound, using the Lagrange remainder with the alternating-series
// improvement unavailable in general (bound·e^bound / (terms+1)! form).
func ExpTailBound(a, uBound float64, terms int) float64 {
	z := math.Abs(a) * math.Abs(uBound)
	// |R_n(z)| <= z^{n+1}/(n+1)! · e^z for the exponential series.
	logR := float64(terms+1)*math.Log(z) - logFactorial(terms+1) + z
	return math.Exp(logR)
}

// tanhCoeffs holds the Taylor coefficients of tanh(u) at odd degrees
// 1, 3, 5, ...: tanh u = u − u³/3 + 2u⁵/15 − 17u⁷/315 + 62u⁹/2835 − ...
// (the closed form uses Bernoulli numbers, as the paper's §IV-B notes).
var tanhCoeffs = []float64{
	1,
	-1.0 / 3,
	2.0 / 15,
	-17.0 / 315,
	62.0 / 2835,
	-1382.0 / 155925,
	21844.0 / 6081075,
	-929569.0 / 638512875,
}

// TanhSeries returns the odd-degree coefficients of tanh truncated to the
// given number of terms (degree 2·terms−1). At most 8 terms are tabulated;
// the series only converges for |u| < π/2, so deeper truncations are not
// useful in practice.
func TanhSeries(terms int) ([]float64, error) {
	if terms < 1 || terms > len(tanhCoeffs) {
		return nil, fmt.Errorf("%w: %d tanh terms (1..%d)", ErrOrder, terms, len(tanhCoeffs))
	}
	out := make([]float64, terms)
	copy(out, tanhCoeffs[:terms])
	return out, nil
}

// TanhApprox evaluates the truncated tanh series at u.
func TanhApprox(u float64, terms int) (float64, error) {
	coeffs, err := TanhSeries(terms)
	if err != nil {
		return 0, err
	}
	u2 := u * u
	acc := 0.0
	pow := u
	for _, c := range coeffs {
		acc += c * pow
		pow *= u2
	}
	return acc, nil
}

// RBFApprox evaluates the truncated RBF kernel exp(−γ·d²) ≈ Σ (−γ·d²)ⁱ/i!
// where d² is the squared distance.
func RBFApprox(gamma, sqDist float64, terms int) (float64, error) {
	coeffs, err := ExpSeries(-gamma, terms)
	if err != nil {
		return 0, err
	}
	acc := 0.0
	pow := 1.0
	for _, c := range coeffs {
		acc += c * pow
		pow *= sqDist
	}
	return acc, nil
}

func logFactorial(n int) float64 {
	s := 0.0
	for i := 2; i <= n; i++ {
		s += math.Log(float64(i))
	}
	return s
}
