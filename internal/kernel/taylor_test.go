package kernel_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

func TestExpSeriesCoefficients(t *testing.T) {
	coeffs, err := kernel.ExpSeries(-2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 2, -4.0 / 3, 2.0 / 3}
	for i, w := range want {
		if math.Abs(coeffs[i]-w) > 1e-12 {
			t.Fatalf("coeff %d = %v, want %v", i, coeffs[i], w)
		}
	}
	if _, err := kernel.ExpSeries(1, 0); err == nil {
		t.Fatal("zero terms should fail")
	}
}

// TestRBFApproxConverges: increasing truncation order must drive the
// approximation to the true kernel within the tail bound.
func TestRBFApproxConverges(t *testing.T) {
	gamma := 0.5
	for _, d2 := range []float64{0.1, 0.5, 1.0, 2.0} {
		exact := math.Exp(-gamma * d2)
		prevErr := math.Inf(1)
		for _, terms := range []int{2, 4, 8, 16} {
			got, err := kernel.RBFApprox(gamma, d2, terms)
			if err != nil {
				t.Fatal(err)
			}
			e := math.Abs(got - exact)
			if e > prevErr+1e-15 {
				t.Fatalf("d2=%v terms=%d: error %v did not shrink (prev %v)", d2, terms, e, prevErr)
			}
			prevErr = e
		}
		got, _ := kernel.RBFApprox(gamma, d2, 16)
		if math.Abs(got-exact) > 1e-9 {
			t.Fatalf("d2=%v: 16-term error %v too large", d2, math.Abs(got-exact))
		}
	}
}

func TestExpTailBoundIsABound(t *testing.T) {
	gamma := 1.0
	for _, d2 := range []float64{0.2, 0.8, 1.5} {
		for _, terms := range []int{3, 6, 10} {
			got, err := kernel.RBFApprox(gamma, d2, terms)
			if err != nil {
				t.Fatal(err)
			}
			exact := math.Exp(-gamma * d2)
			bound := kernel.ExpTailBound(-gamma, d2, terms)
			if math.Abs(got-exact) > bound {
				t.Fatalf("d2=%v terms=%d: error %v exceeds bound %v", d2, terms, math.Abs(got-exact), bound)
			}
		}
	}
}

func TestTanhSeriesKnownCoefficients(t *testing.T) {
	coeffs, err := kernel.TanhSeries(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -1.0 / 3, 2.0 / 15, -17.0 / 315}
	for i, w := range want {
		if math.Abs(coeffs[i]-w) > 1e-15 {
			t.Fatalf("tanh coeff %d = %v, want %v", i, coeffs[i], w)
		}
	}
	if _, err := kernel.TanhSeries(0); err == nil {
		t.Fatal("zero terms should fail")
	}
	if _, err := kernel.TanhSeries(100); err == nil {
		t.Fatal("too many terms should fail")
	}
}

// TestTanhApproxAccuracy: within the convergence radius the truncated
// series tracks tanh tightly.
func TestTanhApproxAccuracy(t *testing.T) {
	check := func(u float64) bool {
		if math.IsNaN(u) || math.Abs(u) > 1 {
			return true // series radius is π/2; protocol inputs are scaled small
		}
		got, err := kernel.TanhApprox(u, 8)
		if err != nil {
			return false
		}
		return math.Abs(got-math.Tanh(u)) < 2e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTanhApproxOdd: the truncation preserves tanh's oddness.
func TestTanhApproxOdd(t *testing.T) {
	for _, u := range []float64{0.1, 0.4, 0.9} {
		a, err := kernel.TanhApprox(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := kernel.TanhApprox(-u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a+b) > 1e-15 {
			t.Fatalf("tanh approx not odd at %v", u)
		}
	}
}
