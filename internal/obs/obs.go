// Package obs is the protocol stack's zero-dependency observability
// layer: atomic counters, gauges, fixed-bucket histograms, and monotonic
// phase timers behind a pluggable Recorder interface.
//
// The default recorder is a no-op, and every instrumentation call site is
// written so the disabled path costs one atomic load and no allocations —
// the hot protocol paths (field arithmetic, OT exponentiations) pay
// ~nothing unless a process opts in with SetDefault(NewRegistry()).
//
// The phase taxonomy (the Phase* and Ctr*/Gauge* constants below) maps
// the paper's per-phase cost breakdown (§VI) onto the implementation:
// cover/mask generation and decoy assembly on the receiver (§IV-A.2),
// masked amplified evaluations on the sender (§IV-A.1), the k parallel
// Naor–Pinkas OT instances (§III-B), Lagrange recovery (§IV-A.3), the
// similarity rounds (§V-B), and wire bytes counted at the transport
// envelope. DESIGN.md §9 documents the full name set.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Recorder receives metric events. Implementations must be safe for
// concurrent use; all methods must be cheap and non-blocking.
type Recorder interface {
	// Add increments the named counter.
	Add(name string, delta int64)
	// Observe records one histogram observation (nanoseconds for Phase*
	// names, raw magnitudes otherwise).
	Observe(name string, value int64)
	// Set stores the named gauge's current value.
	Set(name string, value int64)
}

// nop is the default do-nothing recorder.
type nop struct{}

func (nop) Add(string, int64)     {}
func (nop) Observe(string, int64) {}
func (nop) Set(string, int64)     {}

// Nop is the no-op recorder installed by default.
var Nop Recorder = nop{}

// defaultRec holds the process-wide recorder. An atomic.Value (not a
// plain interface variable) keeps Default() safe and cheap from any
// goroutine: one atomic load on every instrumentation call.
var defaultRec atomic.Value

func init() { defaultRec.Store(&holder{Nop}) }

// holder keeps the stored concrete type stable (atomic.Value requires a
// consistent dynamic type across Store calls).
type holder struct{ r Recorder }

// Default returns the process-wide recorder (Nop until SetDefault).
func Default() Recorder { return defaultRec.Load().(*holder).r }

// SetDefault installs the process-wide recorder. Passing nil restores
// Nop. Intended for process startup and test setup, not the hot path.
func SetDefault(r Recorder) {
	if r == nil {
		r = Nop
	}
	defaultRec.Store(&holder{r})
}

// SwapDefault installs r and returns the previous recorder, so tests and
// scoped measurements can restore it.
func SwapDefault(r Recorder) Recorder {
	prev := Default()
	SetDefault(r)
	return prev
}

// Enabled reports whether a real recorder is installed.
func Enabled() bool { return Default() != Nop }

// Add increments a counter on the default recorder.
func Add(name string, delta int64) { Default().Add(name, delta) }

// Observe records a histogram observation on the default recorder.
func Observe(name string, value int64) { Default().Observe(name, value) }

// Set stores a gauge value on the default recorder.
func Set(name string, value int64) { Default().Set(name, value) }

// Span is an in-flight phase timer. The zero Span (returned when
// recording is disabled) is inert: Start and End then perform no clock
// reads, no interface calls, and no allocations.
type Span struct {
	rec   Recorder
	name  string
	start time.Time
}

// Start opens a phase span against the default recorder. Call End (on
// the returned value) exactly once when the phase completes.
func Start(name string) Span {
	r := Default()
	if r == Nop {
		return Span{}
	}
	return Span{rec: r, name: name, start: time.Now()}
}

// End records the elapsed nanoseconds as a histogram observation. End on
// a zero Span is a no-op.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.Observe(s.name, int64(time.Since(s.start)))
}

// Phase names: histogram metrics in nanoseconds, one per protocol phase.
const (
	// PhaseReceiverMask times cover-polynomial (mask) generation on the
	// OMPE receiver (the g_i of §IV-A.2).
	PhaseReceiverMask = "ompe.receiver.mask_ns"
	// PhaseReceiverDecoy times evaluation-point sampling, decoy drawing,
	// genuine-position shuffling, and request assembly on the receiver.
	PhaseReceiverDecoy = "ompe.receiver.decoy_ns"
	// PhaseReceiverInterpolate times Lagrange recovery of B(0) (§IV-A.3).
	PhaseReceiverInterpolate = "ompe.receiver.interpolate_ns"
	// PhaseSenderMask times the sender's masked amplified evaluations
	// h(v_i) + amp·P(z_i) + shift across all M pairs (§IV-A.1).
	PhaseSenderMask = "ompe.sender.mask_ns"

	// PhaseOTSenderSetup times Naor–Pinkas batch-sender setup (the k
	// parallel instance constructions).
	PhaseOTSenderSetup = "ot.sender.setup_ns"
	// PhaseOTSenderRespond times the sender's batched OT response.
	PhaseOTSenderRespond = "ot.sender.respond_ns"
	// PhaseOTReceiverChoice times the receiver's batched choice
	// construction.
	PhaseOTReceiverChoice = "ot.receiver.choice_ns"
	// PhaseOTReceiverRecover times decryption of the k transferred
	// messages.
	PhaseOTReceiverRecover = "ot.receiver.recover_ns"

	// PhaseOTExtend times the IKNP extension's PRG column fills (the
	// AES-CTR expansion of the base seeds, both endpoints).
	PhaseOTExtend = "ot.extend_ns"
	// PhaseOTTranspose times the κ-column → m-row bit transpose.
	PhaseOTTranspose = "ot.transpose_ns"
	// PhaseOTPad times pad application: correlation-robust row hashes
	// plus tree-key encryption/decryption of the k-of-n payloads. This is
	// the symmetric tail the PadFunc negotiation exists to shrink.
	PhaseOTPad = "ot.pad_ns"

	// PhaseClassifyRoundTrip times one complete private classification
	// (request construction through label interpretation).
	PhaseClassifyRoundTrip = "classify.roundtrip_ns"
	// PhaseClassifyBatch times one complete batched classification round
	// trip (B samples, one message pair).
	PhaseClassifyBatch = "classify.batch_ns"

	// PhaseSimBoundary times boundary-point solving + centroid
	// computation when a similarity endpoint is built (§V-A geometry).
	PhaseSimBoundary = "similarity.boundary_ns"
	// PhaseSimCentroid / PhaseSimNormal / PhaseSimArea time Alice's
	// per-round masked evaluation + OT answer for the centroid
	// dot-product, normal dot-product, and area rounds of §V-B.
	PhaseSimCentroid = "similarity.round.centroid_ns"
	PhaseSimNormal   = "similarity.round.normal_ns"
	PhaseSimArea     = "similarity.round.area_ns"

	// PhaseHandshakeFull / PhaseHandshakeResumed time one fast-session
	// client handshake (Hello through base-phase completion) split by
	// outcome: full runs the κ base OTs, resumed restores from a ticket.
	// The pair is the resumption speedup's measured substrate.
	PhaseHandshakeFull    = "session.handshake_ns.full"
	PhaseHandshakeResumed = "session.handshake_ns.resumed"
)

// Counter names.
const (
	// CtrBytesIn / CtrBytesOut count wire bytes at the transport
	// envelope (gob stream, both directions named from the local
	// process's point of view), summed over every endpoint in the
	// process regardless of role.
	CtrBytesIn  = "transport.bytes_in"
	CtrBytesOut = "transport.bytes_out"
	// Role-split byte counters: when client and server share a process
	// (benches, in-process fleets over memnet), the totals above count
	// every byte twice — once per endpoint — and in == out tautologically.
	// The per-role counters keep the directions meaningful: a bench's
	// request bytes are CtrClientBytesOut ( == CtrServerBytesIn ), its
	// response bytes CtrClientBytesIn.
	CtrClientBytesIn  = "transport.client.bytes_in"
	CtrClientBytesOut = "transport.client.bytes_out"
	CtrServerBytesIn  = "transport.server.bytes_in"
	CtrServerBytesOut = "transport.server.bytes_out"
	// CtrMsgsIn / CtrMsgsOut count transport envelopes.
	CtrMsgsIn  = "transport.msgs_in"
	CtrMsgsOut = "transport.msgs_out"
	// CtrDialRetries counts dial attempts beyond each first attempt.
	CtrDialRetries = "transport.dial_retries"
	// CtrSessionsServed counts sessions admitted by the server.
	CtrSessionsServed = "transport.sessions_served"
	// CtrSessionsRejected counts sessions refused by the MaxSessions cap
	// or the drain state.
	CtrSessionsRejected = "transport.sessions_rejected"
	// CtrSessionsDrained counts sessions force-closed when a Shutdown
	// budget expired.
	CtrSessionsDrained = "transport.sessions_drained"
	// CtrOTInstances counts Naor–Pinkas 1-out-of-n instances executed:
	// k per batch transfer, plus the κ base transfers behind each IKNP
	// extension endpoint.
	CtrOTInstances = "ot.np_instances"
	// CtrGroupExp counts DDH-group exponentiations (scalar
	// multiplications on curve backends) performed by the OT layer — the
	// unit the field/OT backend sweep prices.
	CtrGroupExp = "ot.group_exp"
	// CtrClassifyQueries counts completed private classifications.
	CtrClassifyQueries = "classify.queries"
	// CtrClassifyBatches counts completed batched classifications (each
	// batch also adds its sample count to CtrClassifyQueries).
	CtrClassifyBatches = "classify.batches"
	// CtrSimilarityRounds counts completed similarity OMPE rounds.
	CtrSimilarityRounds = "similarity.rounds"

	// CtrRegistrySwaps counts model hot-swaps published to a registry.
	CtrRegistrySwaps = "registry.swaps"

	// CtrSessionsResumed counts fast sessions the server restored from a
	// resumption ticket (the base OT phase was skipped).
	CtrSessionsResumed = "sessions.resumed"
	// CtrResumeRejected counts presented tickets the server declined
	// (expired, tampered, replayed, spec-mismatched, or unknown mint);
	// each decline falls back to a full handshake.
	CtrResumeRejected = "resume.rejected"
	// CtrTicketsMinted counts resumption tickets minted at clean session
	// ends.
	CtrTicketsMinted = "transport.tickets_minted"

	// CtrGatewayRouted counts sessions the gateway admitted and spliced
	// to a replica.
	CtrGatewayRouted = "gateway.sessions_routed"
	// CtrGatewayShed counts sessions the gateway rejected at its own
	// capacity cap (the typed ErrFleetBusy path).
	CtrGatewayShed = "gateway.sessions_shed"
	// CtrGatewayUnrouteable counts sessions rejected because no healthy
	// replica could be dialed.
	CtrGatewayUnrouteable = "gateway.sessions_unrouteable"
	// CtrGatewayFailovers counts sessions that landed on a replica other
	// than the router's first choice because dialing it failed.
	CtrGatewayFailovers = "gateway.failovers"
	// CtrGatewayReplicaDown counts healthy→down transitions observed by
	// the gateway (probe failures and dial failures alike).
	CtrGatewayReplicaDown = "gateway.replica_down_transitions"
	// CtrGatewayDrained counts spliced sessions force-closed when a
	// gateway Shutdown budget expired.
	CtrGatewayDrained = "gateway.sessions_drained"
	// CtrGatewayResumeAffinity counts sessions the gateway routed to the
	// replica that minted their presented ticket.
	CtrGatewayResumeAffinity = "gateway.resume_affinity_hits"
	// CtrGatewayResumeMisses counts ticket-bearing sessions routed
	// elsewhere (minting replica unknown, unhealthy, or draining); the
	// replica that receives them silently declines into a full handshake.
	CtrGatewayResumeMisses = "gateway.resume_affinity_misses"
)

// Gauge names.
const (
	// GaugeSessionsActive is the server's current in-flight session count.
	GaugeSessionsActive = "transport.sessions_active"
	// GaugeRegistryVersion is the registry's currently published model
	// version.
	GaugeRegistryVersion = "registry.model_version"
	// GaugeGatewaySessions is the gateway's current spliced-session count.
	GaugeGatewaySessions = "gateway.sessions_active"
	// GaugeGatewayHealthy is the gateway's current healthy-replica count.
	GaugeGatewayHealthy = "gateway.replicas_healthy"
)

// GaugeReplicaSessions names the gateway's per-replica active-session
// gauge for replica index i (stable across health transitions, so fleet
// dashboards can plot each replica as one series).
func GaugeReplicaSessions(i int) string {
	return fmt.Sprintf("gateway.replica_sessions.%d", i)
}

// Magnitude histogram names (raw values, not nanoseconds).
const (
	// HistBatchSize records the sample count of each batched
	// classification served.
	HistBatchSize = "classify.batch_size"
	// HistInflightDepth records, at each pipelined send, how many batches
	// the client then has in flight on the connection.
	HistInflightDepth = "transport.inflight_depth"
)

// PhaseOfSimilarityRound maps a similarity round index (1=centroid,
// 2=normal, 3=area) to its phase name; unknown rounds map to the area
// phase's sibling namespace root and are still recorded.
func PhaseOfSimilarityRound(round int) string {
	switch round {
	case 1:
		return PhaseSimCentroid
	case 2:
		return PhaseSimNormal
	case 3:
		return PhaseSimArea
	default:
		return "similarity.round.other_ns"
	}
}
