package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// histBounds are the shared fixed bucket upper bounds (inclusive) of
// every histogram: powers of four from 1µs up to ~4.6 minutes when read
// as nanoseconds. A fixed geometry keeps Observe allocation-free and
// makes snapshots comparable across processes and runs.
var histBounds = func() []int64 {
	b := make([]int64, 15)
	v := int64(1 << 10) // 1024 ns
	for i := range b {
		b[i] = v
		v <<= 2
	}
	return b
}()

// Bounds returns the histogram bucket upper bounds (shared by all
// histograms; the final implicit bucket is +Inf).
func Bounds() []int64 { return append([]int64(nil), histBounds...) }

// histogram is a fixed-bucket concurrent histogram.
type histogram struct {
	counts [16]atomic.Int64 // len(histBounds) buckets + overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid when count > 0
	max    atomic.Int64
}

func (h *histogram) observe(v int64) {
	i := sort.Search(len(histBounds), func(i int) bool { return v <= histBounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Registry is the concrete Recorder: a concurrent map of named atomic
// counters, gauges, and histograms. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	counters   sync.Map // string -> *atomic.Int64
	gauges     sync.Map // string -> *atomic.Int64
	histograms sync.Map // string -> *histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func loadOrStoreInt64(m *sync.Map, name string) *atomic.Int64 {
	if v, ok := m.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := m.LoadOrStore(name, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// Add implements Recorder.
func (g *Registry) Add(name string, delta int64) {
	loadOrStoreInt64(&g.counters, name).Add(delta)
}

// Set implements Recorder.
func (g *Registry) Set(name string, value int64) {
	loadOrStoreInt64(&g.gauges, name).Store(value)
}

// Observe implements Recorder.
func (g *Registry) Observe(name string, value int64) {
	var h *histogram
	if v, ok := g.histograms.Load(name); ok {
		h = v.(*histogram)
	} else {
		fresh := &histogram{}
		fresh.min.Store(math.MaxInt64)
		fresh.max.Store(math.MinInt64)
		v, _ := g.histograms.LoadOrStore(name, fresh)
		h = v.(*histogram)
	}
	h.observe(value)
}

// Counter returns a counter's current value (0 if never written).
func (g *Registry) Counter(name string) int64 {
	if v, ok := g.counters.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// Gauge returns a gauge's current value (0 if never written).
func (g *Registry) Gauge(name string) int64 {
	if v, ok := g.gauges.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// HistSnapshot is one histogram's state at snapshot time.
type HistSnapshot struct {
	// Count and Sum aggregate all observations; Sum/Count is the mean.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets holds per-bucket observation counts, parallel to Bounds()
	// with one trailing overflow bucket (+Inf).
	Buckets []int64 `json:"buckets"`
}

// Mean returns the average observation (0 when empty).
func (h HistSnapshot) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the fixed
// bucket counts, interpolating linearly inside the target bucket and
// clamping to the recorded Min/Max so the coarse power-of-four geometry
// cannot report a value outside the observed range. Returns 0 when the
// histogram is empty.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		// The rank falls inside bucket i, spanning (lo, hi].
		var lo, hi int64
		if i == 0 {
			lo = 0
		} else {
			lo = histBounds[i-1]
		}
		if i < len(histBounds) {
			hi = histBounds[i]
		} else {
			// Overflow bucket: the best finite upper bound is the max.
			hi = h.Max
		}
		frac := (rank - float64(prev)) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		if v < h.Min {
			v = h.Min
		}
		if v > h.Max {
			v = h.Max
		}
		return v
	}
	return h.Max
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// individual values are read atomically (the set of values is not
// globally fenced, which is fine for monitoring and benchmark reports).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (g *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	g.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	g.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	g.histograms.Range(func(k, v any) bool {
		h := v.(*histogram)
		hs := HistSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Buckets: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Buckets[i] = h.counts[i].Load()
		}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		s.Histograms[k.(string)] = hs
		return true
	})
	return s
}

// metricName flattens a dotted metric name into the conventional
// exposition charset (dots to underscores).
func metricName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// WriteText renders the snapshot in a Prometheus-style plain-text form:
// one "name value" line per counter/gauge, and _count/_sum/_min/_max plus
// cumulative le-labeled bucket lines per histogram. Output is sorted for
// deterministic scrapes and tests.
func (s Snapshot) WriteText(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", metricName(n), s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", metricName(n), s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		base := metricName(n)
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %d\n%s_min %d\n%s_max %d\n",
			base, h.Count, base, h.Sum, base, h.Min, base, h.Max); err != nil {
			return err
		}
		cum := int64(0)
		for i, c := range h.Buckets {
			cum += c
			le := "+Inf"
			if i < len(histBounds) {
				le = fmt.Sprintf("%d", histBounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", base, le, cum); err != nil {
				return err
			}
		}
	}
	return nil
}
