package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapForTest installs r as the default recorder and restores the
// previous one when the test ends.
func swapForTest(t *testing.T, r Recorder) {
	t.Helper()
	prev := SwapDefault(r)
	t.Cleanup(func() { SetDefault(prev) })
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	g := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add("ctr", 1)
				g.Add("ctr2", 3)
				g.Observe("hist", int64(i%4096)+1)
				g.Set("gauge", int64(w))
			}
		}(w)
	}
	wg.Wait()

	if got := g.Counter("ctr"); got != workers*perWorker {
		t.Errorf("ctr = %d, want %d", got, workers*perWorker)
	}
	if got := g.Counter("ctr2"); got != 3*workers*perWorker {
		t.Errorf("ctr2 = %d, want %d", got, 3*workers*perWorker)
	}
	s := g.Snapshot()
	h := s.Histograms["hist"]
	if h.Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketTotal int64
	for _, c := range h.Buckets {
		bucketTotal += c
	}
	if bucketTotal != h.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, h.Count)
	}
	if h.Min != 1 || h.Max != perWorker {
		t.Errorf("min/max = %d/%d, want 1/%d", h.Min, h.Max, perWorker)
	}
	// Sum of 1..4096 cycling: each worker observes (i%4096)+1 for
	// i in [0, perWorker).
	var wantSum int64
	for i := 0; i < perWorker; i++ {
		wantSum += int64(i%4096) + 1
	}
	wantSum *= workers
	if h.Sum != wantSum {
		t.Errorf("hist sum = %d, want %d", h.Sum, wantSum)
	}
	if gv := s.Gauges["gauge"]; gv < 0 || gv >= workers {
		t.Errorf("gauge = %d, want in [0,%d)", gv, workers)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	g := NewRegistry()
	bounds := Bounds()
	// One observation exactly on each bound (inclusive), one past the
	// last bound (overflow bucket).
	for _, b := range bounds {
		g.Observe("h", b)
	}
	g.Observe("h", bounds[len(bounds)-1]+1)
	h := g.Snapshot().Histograms["h"]
	for i := range bounds {
		if h.Buckets[i] != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Buckets[i])
		}
	}
	if over := h.Buckets[len(bounds)]; over != 1 {
		t.Errorf("overflow bucket = %d, want 1", over)
	}
}

// TestDisabledPathAllocs locks in the "pay ~nothing when disabled"
// contract: with the Nop recorder installed, spans, counters, and
// observations must not allocate at all.
func TestDisabledPathAllocs(t *testing.T) {
	swapForTest(t, nil) // nil restores Nop
	if Enabled() {
		t.Fatal("Nop recorder should report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Start(PhaseSenderMask)
		Add(CtrOTInstances, 7)
		Observe(PhaseReceiverInterpolate, 42)
		Set(GaugeSessionsActive, 3)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestSpanRecordsElapsed(t *testing.T) {
	g := NewRegistry()
	swapForTest(t, g)
	sp := Start("phase.test_ns")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	h := g.Snapshot().Histograms["phase.test_ns"]
	if h.Count != 1 {
		t.Fatalf("span count = %d, want 1", h.Count)
	}
	if h.Sum < int64(time.Millisecond) {
		t.Errorf("span recorded %dns, want >= 1ms", h.Sum)
	}
}

func TestZeroSpanEndIsSafe(t *testing.T) {
	var sp Span
	sp.End() // must not panic
	swapForTest(t, nil)
	Start("x").End() // disabled: also inert
}

func TestSnapshotJSONSchema(t *testing.T) {
	g := NewRegistry()
	g.Add(CtrBytesIn, 10)
	g.Set(GaugeSessionsActive, 2)
	g.Observe(PhaseSenderMask, 5000)
	raw, err := json.Marshal(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters[CtrBytesIn] != 10 || round.Gauges[GaugeSessionsActive] != 2 {
		t.Errorf("round-tripped snapshot lost values: %+v", round)
	}
	if h := round.Histograms[PhaseSenderMask]; h.Count != 1 || h.Sum != 5000 {
		t.Errorf("round-tripped histogram lost values: %+v", h)
	}
}

func TestWriteTextAndHandler(t *testing.T) {
	g := NewRegistry()
	g.Add(CtrBytesOut, 99)
	g.Observe(PhaseReceiverMask, 2048)
	var sb strings.Builder
	if err := g.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"transport_bytes_out 99",
		"ompe_receiver_mask_ns_count 1",
		"ompe_receiver_mask_ns_sum 2048",
		`ompe_receiver_mask_ns_bucket{le="4096"} 1`,
		`ompe_receiver_mask_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q in:\n%s", want, text)
		}
	}

	srv := httptest.NewServer(NewMux(g))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(body.String(), "transport_bytes_out 99") {
		t.Errorf("/metrics missing counter:\n%s", body.String())
	}
	// pprof index must be mounted on the same mux.
	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d, want 200", resp2.StatusCode)
	}
}

func TestSwapDefaultRestores(t *testing.T) {
	g := NewRegistry()
	prev := SwapDefault(g)
	if Default() != Recorder(g) {
		t.Error("SwapDefault did not install new recorder")
	}
	SetDefault(prev)
	if Default() != prev {
		t.Error("SetDefault did not restore previous recorder")
	}
}

func TestPhaseOfSimilarityRound(t *testing.T) {
	cases := map[int]string{
		1: PhaseSimCentroid,
		2: PhaseSimNormal,
		3: PhaseSimArea,
		9: "similarity.round.other_ns",
	}
	for round, want := range cases {
		if got := PhaseOfSimilarityRound(round); got != want {
			t.Errorf("round %d -> %q, want %q", round, got, want)
		}
	}
}
