package obs

import "testing"

func TestQuantileEmpty(t *testing.T) {
	var h HistSnapshot
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	reg := NewRegistry()
	// 100 observations of the same value land in one bucket; any quantile
	// must interpolate inside it and clamp to the observed range.
	for i := 0; i < 100; i++ {
		reg.Observe("h", 2000)
	}
	h := reg.Snapshot().Histograms["h"]
	for _, q := range []float64{0.01, 0.5, 0.99} {
		v := h.Quantile(q)
		if v != 2000 {
			t.Errorf("q%.2f = %d, want clamped to 2000", q, v)
		}
	}
	if h.Quantile(0) != h.Min || h.Quantile(1) != h.Max {
		t.Error("q0/q1 must be min/max")
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	reg := NewRegistry()
	// 90 fast observations, 10 slow ones two buckets up: the median must
	// come from the fast bucket, the p99 from the slow one.
	for i := 0; i < 90; i++ {
		reg.Observe("h", 1500) // bucket (1024, 4096]
	}
	for i := 0; i < 10; i++ {
		reg.Observe("h", 30000) // bucket (16384, 65536]
	}
	h := reg.Snapshot().Histograms["h"]
	p50 := h.Quantile(0.50)
	if p50 < 1024 || p50 > 4096 {
		t.Errorf("p50 = %d, want inside (1024, 4096]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 16384 || p99 > 30000 {
		t.Errorf("p99 = %d, want inside (16384, 30000]", p99)
	}
	if p99 <= p50 {
		t.Errorf("p99 %d <= p50 %d", p99, p50)
	}
}

func TestQuantileOverflowBucketClampsToMax(t *testing.T) {
	reg := NewRegistry()
	bounds := Bounds()
	huge := bounds[len(bounds)-1] * 3 // beyond the last finite bound
	for i := 0; i < 10; i++ {
		reg.Observe("h", huge)
	}
	h := reg.Snapshot().Histograms["h"]
	if q := h.Quantile(0.99); q != huge {
		t.Fatalf("overflow p99 = %d, want clamped to max %d", q, huge)
	}
}

func TestQuantileMonotone(t *testing.T) {
	reg := NewRegistry()
	for i := int64(1); i <= 1000; i++ {
		reg.Observe("h", i*i) // spread across several buckets
	}
	h := reg.Snapshot().Histograms["h"]
	prev := int64(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q%.3f = %d < %d", q, v, prev)
		}
		prev = v
	}
}
