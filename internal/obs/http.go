package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry as plain text at any path it is mounted on.
func (g *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = g.Snapshot().WriteText(w)
	})
}

// NewMux builds the diagnostics mux: /metrics (plain-text registry dump)
// plus the standard net/http/pprof endpoints under /debug/pprof/. The
// pprof handlers are mounted explicitly rather than via the package's
// DefaultServeMux side effect, so importing obs never pollutes a caller's
// default mux.
func NewMux(g *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", g.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeMetrics binds addr and serves /metrics and /debug/pprof/ in a
// background goroutine, returning the bound listener address (useful with
// ":0") and the server for shutdown. Serve errors after a successful bind
// are dropped: diagnostics must never take the protocol process down.
func ServeMetrics(addr string, g *Registry) (net.Addr, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           NewMux(g),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv, nil
}
