package ec25519_test

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ec25519"
	"repro/internal/field/limb"
)

// TestBasepointEncoding pins the RFC 8032 compressed basepoint: y = 4/5
// little-endian with an even x, i.e. 0x58 followed by 31 bytes of 0x66.
func TestBasepointEncoding(t *testing.T) {
	b := ec25519.Basepoint()
	enc := b.Bytes()
	want := append([]byte{0x58}, bytes.Repeat([]byte{0x66}, 31)...)
	if !bytes.Equal(enc, want) {
		t.Fatalf("basepoint encoding = %x, want %x", enc, want)
	}
	var d ec25519.Point
	if err := d.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(&b) {
		t.Fatal("decode(encode(B)) != B")
	}
}

func TestIdentityAndOrder(t *testing.T) {
	b := ec25519.Basepoint()
	var p ec25519.Point
	if !p.ScalarBaseMult(ec25519.Order()).IsIdentity() {
		t.Fatal("L·B != identity (fixed base)")
	}
	if !p.ScalarMult(ec25519.Order(), &b).IsIdentity() {
		t.Fatal("L·B != identity (variable base)")
	}
	if !p.ScalarBaseMult(big.NewInt(1)).Equal(&b) {
		t.Fatal("1·B != B")
	}
	if !p.ScalarMult(big.NewInt(0), &b).IsIdentity() {
		t.Fatal("0·B != identity")
	}
	var id ec25519.Point
	id.SetIdentity()
	enc := id.Bytes()
	var back ec25519.Point
	if err := back.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if !back.IsIdentity() {
		t.Fatal("identity does not round trip")
	}
}

func randScalar(t *testing.T) *big.Int {
	t.Helper()
	k, err := rand.Int(rand.Reader, ec25519.Order())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestGroupLaws(t *testing.T) {
	b := ec25519.Basepoint()
	ka, kb := randScalar(t), randScalar(t)
	var pa, pb, lhs, rhs ec25519.Point
	pa.ScalarBaseMult(ka)
	pb.ScalarBaseMult(kb)

	// Fixed-base and variable-base multiplication agree.
	if !lhs.ScalarMult(ka, &b).Equal(&pa) {
		t.Fatal("ScalarMult(k, B) != ScalarBaseMult(k)")
	}
	// Commutativity.
	if !lhs.Add(&pa, &pb).Equal(rhs.Add(&pb, &pa)) {
		t.Fatal("addition not commutative")
	}
	// Homomorphism: (ka+kb)·B = ka·B + kb·B.
	sum := new(big.Int).Add(ka, kb)
	if !lhs.ScalarBaseMult(sum).Equal(rhs.Add(&pa, &pb)) {
		t.Fatal("(a+b)·B != a·B + b·B")
	}
	// Inverse: P + (−P) = identity.
	var neg ec25519.Point
	neg.Neg(&pa)
	if !lhs.Add(&pa, &neg).IsIdentity() {
		t.Fatal("P + (−P) != identity")
	}
	// Unified doubling: P + P = 2P via Double.
	if !lhs.Add(&pa, &pa).Equal(rhs.Double(&pa)) {
		t.Fatal("Add(P,P) != Double(P)")
	}
	// Encode/decode round trip for a random point.
	var back ec25519.Point
	if err := back.Decode(pa.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(&pa) {
		t.Fatal("random point does not round trip")
	}
}

// TestMatchesECDH cross-checks the scalar ladder against the standard
// library's X25519 via the birational map u = (1+y)/(1−y): for a clamped
// private key k, the Montgomery u of our [k]B must be crypto/ecdh's
// public key.
func TestMatchesECDH(t *testing.T) {
	curve := ecdh.X25519()
	p := limb.Modulus()
	for i := 0; i < 8; i++ {
		seed := make([]byte, 32)
		if _, err := rand.Read(seed); err != nil {
			t.Fatal(err)
		}
		priv, err := curve.NewPrivateKey(seed)
		if err != nil {
			t.Fatal(err)
		}
		want := priv.PublicKey().Bytes()

		// Apply the X25519 clamping to the little-endian seed, then
		// interpret it as an integer scalar.
		clamped := append([]byte(nil), seed...)
		clamped[0] &= 248
		clamped[31] &= 127
		clamped[31] |= 64
		be := make([]byte, 32)
		for j := range be {
			be[j] = clamped[31-j]
		}
		k := new(big.Int).SetBytes(be)

		var pt ec25519.Point
		pt.ScalarBaseMult(k)
		enc := pt.Bytes()
		// Recover y (little-endian, sign bit stripped).
		yBE := make([]byte, 32)
		for j := range yBE {
			yBE[j] = enc[31-j]
		}
		yBE[0] &= 0x7f
		y := new(big.Int).SetBytes(yBE)
		num := new(big.Int).Add(big.NewInt(1), y)
		den := new(big.Int).Sub(big.NewInt(1), y)
		den.Mod(den, p)
		den.ModInverse(den, p)
		u := num.Mul(num, den)
		u.Mod(u, p)
		uLE := make([]byte, 32)
		u.FillBytes(uLE)
		for l, r := 0, 31; l < r; l, r = l+1, r-1 {
			uLE[l], uLE[r] = uLE[r], uLE[l]
		}
		if !bytes.Equal(uLE, want) {
			t.Fatalf("u(k·B) = %x, ecdh says %x", uLE, want)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	var pt ec25519.Point
	// y = p (non-canonical).
	pLE := make([]byte, 32)
	limbModLE(pLE)
	if err := pt.Decode(pLE); err == nil {
		t.Fatal("accepted y = p")
	}
	// Negative zero: identity y=1 with the sign bit set.
	negZero := make([]byte, 32)
	negZero[0] = 1
	negZero[31] = 0x80
	if err := pt.Decode(negZero); err == nil {
		t.Fatal("accepted negative zero")
	}
	// Wrong length.
	if err := pt.Decode(make([]byte, 31)); err == nil {
		t.Fatal("accepted short encoding")
	}
	// At least one small y must be off-curve (roughly half of all y are).
	rejected := false
	for y := int64(2); y < 20; y++ {
		enc := make([]byte, 32)
		big.NewInt(y).FillBytes(enc)
		for l, r := 0, 31; l < r; l, r = l+1, r-1 {
			enc[l], enc[r] = enc[r], enc[l]
		}
		if err := pt.Decode(enc); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("no off-curve y rejected in [2,20)")
	}
}

func limbModLE(dst []byte) {
	be := limb.Modulus().Bytes()
	for i := range be {
		dst[i] = be[len(be)-1-i]
	}
}

// TestMulByCofactor checks that 8·P of an arbitrary decoded point lands in
// the prime-order subgroup.
func TestMulByCofactor(t *testing.T) {
	var pt ec25519.Point
	found := false
	for i := 0; i < 64 && !found; i++ {
		raw := make([]byte, 32)
		if _, err := rand.Read(raw); err != nil {
			t.Fatal(err)
		}
		if err := pt.Decode(raw); err != nil {
			continue
		}
		found = true
	}
	if !found {
		t.Fatal("no decodable random encoding in 64 tries")
	}
	var q ec25519.Point
	q.MulByCofactor(&pt)
	if !q.ScalarMult(ec25519.Order(), &q).IsIdentity() {
		t.Fatal("8·P not killed by L")
	}
}

func BenchmarkScalarBaseMult(b *testing.B) {
	k, _ := rand.Int(rand.Reader, ec25519.Order())
	var p ec25519.Point
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ScalarBaseMult(k)
	}
}

func BenchmarkScalarMult(b *testing.B) {
	k, _ := rand.Int(rand.Reader, ec25519.Order())
	base := ec25519.Basepoint()
	var p ec25519.Point
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ScalarMult(k, &base)
	}
}
