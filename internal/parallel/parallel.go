// Package parallel is the shared worker-pool engine behind every
// data-parallel hot path of the protocol stack: the sender's masked
// evaluations over all M = m·k pairs, the receiver's cover evaluations,
// and the k independent Naor–Pinkas instances of the batch oblivious
// transfer.
//
// The engine parallelizes *pure computation only*. Randomness is never
// drawn inside a parallel region: callers pre-draw every rng value in the
// exact order the serial code would, then fan the deterministic arithmetic
// out across workers. Results are therefore bit-identical at every
// parallelism degree given the same rng stream (see DESIGN.md §7).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Degree resolves a parallelism setting to a worker count: values <= 0
// select GOMAXPROCS (use all available cores), 1 forces the serial path,
// and larger values request exactly that many workers.
func Degree(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n), distributing iterations across
// min(Degree(degree), n) workers. Iterations are handed out one index at a
// time from an atomic counter, which balances uneven per-item cost (big.Int
// work varies with operand values) without any chunk tuning.
//
// Error handling is deadlock-free by construction: the first failure sets a
// flag that stops workers from claiming new iterations, every worker exits
// on its own (nothing blocks on a channel), and For returns the error with
// the lowest iteration index among those that were reported. With degree 1
// the loop runs inline and matches a plain serial for-loop exactly,
// including which error is returned.
func For(degree, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Degree(degree)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		minIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if minIdx == -1 || i < minIdx {
						minIdx, first = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
