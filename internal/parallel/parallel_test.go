package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Degree(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Degree(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Degree(n); got != n {
			t.Fatalf("Degree(%d) = %d", n, got)
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, degree := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n)
			err := For(degree, n, func(i int) error {
				if i < 0 || i >= n {
					return fmt.Errorf("index %d out of range", i)
				}
				if seen[i].Swap(true) {
					return fmt.Errorf("index %d visited twice", i)
				}
				hits.Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("degree=%d n=%d: %v", degree, n, err)
			}
			if int(hits.Load()) != n {
				t.Fatalf("degree=%d n=%d: %d iterations ran", degree, n, hits.Load())
			}
		}
	}
}

func TestForSerialErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := For(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if ran != 4 {
		t.Fatalf("serial path ran %d iterations after error, want 4", ran)
	}
}

func TestForParallelReportsLowestIndexError(t *testing.T) {
	// Every iteration fails with an index-tagged error; the winner must be
	// the lowest index that actually ran, and the call must not deadlock.
	for trial := 0; trial < 20; trial++ {
		var lowest atomic.Int64
		lowest.Store(1 << 30)
		err := For(8, 50, func(i int) error {
			for {
				cur := lowest.Load()
				if int64(i) >= cur || lowest.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return fmt.Errorf("fail-%d", i)
		})
		if err == nil {
			t.Fatal("want an error")
		}
		want := fmt.Sprintf("fail-%d", lowest.Load())
		if err.Error() != want {
			t.Fatalf("got %q, want lowest ran error %q", err, want)
		}
	}
}

func TestForEmpty(t *testing.T) {
	if err := For(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
