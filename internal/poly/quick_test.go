package poly_test

// Property-based tests (testing/quick) for the two polynomial invariants
// the OMPE protocol rests on: masking polynomials vanish at zero (and
// receiver covers hit their target there), and mask-then-interpolate
// round trips recover the protocol payload r_a·d(t̃) at v=0.

import (
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/poly"
)

var quickCfg = &quick.Config{MaxCount: 40}

// TestQuickMaskValueAtZero: for random degrees and targets, Random(f,
// rng, deg, 0) is a valid sender mask (h(0)=0, exact degree) and
// Random(f, rng, deg, t) a valid receiver cover (g(0)=t).
func TestQuickMaskValueAtZero(t *testing.T) {
	f := field.Default()
	prop := func(seed int64, degRaw uint8, target int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		deg := int(degRaw%40) + 1
		h, err := poly.Random(f, rng, deg, big.NewInt(0))
		if err != nil {
			t.Logf("mask: %v", err)
			return false
		}
		if h.Eval(big.NewInt(0)).Sign() != 0 {
			t.Logf("h(0) != 0 for degree %d", deg)
			return false
		}
		if h.Degree() != deg {
			t.Logf("mask degree %d, want %d", h.Degree(), deg)
			return false
		}
		ti := f.FromInt64(target)
		g, err := poly.Random(f, rng, deg, ti)
		if err != nil {
			t.Logf("cover: %v", err)
			return false
		}
		if g.Eval(big.NewInt(0)).Cmp(ti) != 0 {
			t.Logf("g(0) != t̃ for degree %d target %d", deg, target)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// distinctNonZero samples n distinct non-zero field elements.
func distinctNonZero(t *testing.T, f *field.Field, rng *mrand.Rand, n int) []*big.Int {
	t.Helper()
	seen := make(map[string]bool, n)
	out := make([]*big.Int, 0, n)
	for len(out) < n {
		v, err := f.RandNonZero(rng)
		if err != nil {
			t.Fatal(err)
		}
		key := v.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, v)
	}
	return out
}

// TestQuickMaskInterpolateRoundTrip: the protocol's core algebra. For
// random degrees and coefficients, build B(v) = h(v) + Q(v) where h is a
// fresh mask (h(0)=0) and Q(0) = r_a·d(t̃) is the amplified payload; then
// D+1 evaluations at distinct non-zero points must interpolate back to
// exactly the payload at v=0 — both via the materialized polynomial and
// via the allocation-free InterpolateAtZero hot path.
func TestQuickMaskInterpolateRoundTrip(t *testing.T) {
	f := field.Default()
	prop := func(seed int64, pRaw, qRaw uint8, payloadSeed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		// D = p·q as in the protocol (composed degree of B).
		p := int(pRaw%5) + 1
		q := int(qRaw%6) + 1
		deg := p * q

		// The payload r_a·d(t̃): an arbitrary field element.
		payload, err := f.Rand(mrand.New(mrand.NewSource(payloadSeed)))
		if err != nil {
			t.Logf("payload: %v", err)
			return false
		}
		h, err := poly.Random(f, rng, deg, big.NewInt(0))
		if err != nil {
			t.Logf("mask: %v", err)
			return false
		}
		qPoly, err := poly.Random(f, rng, deg, payload)
		if err != nil {
			t.Logf("payload poly: %v", err)
			return false
		}
		b := h.Add(qPoly)

		nodes := distinctNonZero(t, f, rng, deg+1)
		points := make([]poly.Point, len(nodes))
		for i, v := range nodes {
			points[i] = poly.Point{X: v, Y: b.Eval(v)}
		}

		got, err := poly.InterpolateAtZero(f, points)
		if err != nil {
			t.Logf("interpolate at zero: %v", err)
			return false
		}
		if got.Cmp(payload) != 0 {
			t.Logf("deg %d: B(0) = %v, want payload %v", deg, got, payload)
			return false
		}
		full, err := poly.Interpolate(f, points)
		if err != nil {
			t.Logf("interpolate: %v", err)
			return false
		}
		if full.Eval(big.NewInt(0)).Cmp(payload) != 0 {
			t.Log("materialized interpolation disagrees at zero")
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInterpolateIdentity: interpolating D+1 samples of a random
// polynomial reproduces it exactly (coefficient-level equality), so the
// mask layer cannot smuggle information through interpolation error.
func TestQuickInterpolateIdentity(t *testing.T) {
	f := field.Default()
	prop := func(seed int64, degRaw uint8, v0 int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		deg := int(degRaw%20) + 1
		orig, err := poly.Random(f, rng, deg, f.FromInt64(v0))
		if err != nil {
			t.Logf("random poly: %v", err)
			return false
		}
		nodes := distinctNonZero(t, f, rng, deg+1)
		points := make([]poly.Point, len(nodes))
		for i, x := range nodes {
			points[i] = poly.Point{X: x, Y: orig.Eval(x)}
		}
		back, err := poly.Interpolate(f, points)
		if err != nil {
			t.Logf("interpolate: %v", err)
			return false
		}
		return back.Equal(orig)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}
