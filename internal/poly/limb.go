package poly

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/field/limb"
)

// LimbPoly is a univariate polynomial over the 2^255−19 field with
// fixed-width limb coefficients. It is the field.BackendLimb counterpart of
// Poly: coefficients are stored by value in ascending degree order, so
// construction performs the only allocations and evaluation is
// allocation-free. The zero polynomial has an empty coefficient slice.
type LimbPoly struct {
	coeffs []limb.Element
}

// NewLimb constructs a polynomial from ascending-degree coefficients,
// copying the slice and trimming leading zeros.
func NewLimb(coeffs []limb.Element) *LimbPoly {
	n := len(coeffs)
	for n > 0 && coeffs[n-1].IsZero() {
		n--
	}
	cs := make([]limb.Element, n)
	copy(cs, coeffs[:n])
	return &LimbPoly{coeffs: cs}
}

// RandomLimb returns a uniform polynomial of exactly the given degree (its
// leading coefficient is non-zero) with the prescribed value at x=0. The
// rng draw order mirrors Random: constant term fixed, then the middle
// coefficients in ascending order, then the leading coefficient — one
// fixed-width 32-byte draw per coefficient, so the stream position after a
// call is input-independent.
func RandomLimb(rng io.Reader, degree int, valueAtZero *limb.Element) (*LimbPoly, error) {
	if degree < 0 {
		return nil, fmt.Errorf("poly: negative degree %d", degree)
	}
	coeffs := make([]limb.Element, degree+1)
	coeffs[0].Set(valueAtZero)
	for i := 1; i < degree; i++ {
		if err := coeffs[i].Rand(rng); err != nil {
			return nil, err
		}
	}
	if degree >= 1 {
		if err := coeffs[degree].RandNonZero(rng); err != nil {
			return nil, err
		}
	}
	return &LimbPoly{coeffs: coeffs}, nil
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p *LimbPoly) Degree() int { return len(p.coeffs) - 1 }

// Coeff copies the coefficient of x^i into out (zero beyond the degree).
func (p *LimbPoly) Coeff(i int, out *limb.Element) {
	if i < 0 || i >= len(p.coeffs) {
		out.SetZero()
		return
	}
	out.Set(&p.coeffs[i])
}

// EvalInto evaluates p at x by Horner's rule into out. out and x may
// alias. It allocates nothing.
func (p *LimbPoly) EvalInto(out, x *limb.Element) {
	var acc limb.Element
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc.Mul(&acc, x)
		acc.Add(&acc, &p.coeffs[i])
	}
	out.Set(&acc)
}

// LimbInterpolator evaluates interpolating polynomials at x=0 over limb
// elements, reusing its scratch buffers across calls so the per-sample
// steady state allocates nothing. The zero value is ready to use; it must
// not be shared between goroutines.
type LimbInterpolator struct {
	den []limb.Element // per-node denominators, batch-inverted in place
	pre []limb.Element // pre[j] = x_0·…·x_{j−1}
	suf []limb.Element // suf[j] = x_{j+1}·…·x_{n−1}
	inv []limb.Element // batch-inversion scratch
}

func (ip *LimbInterpolator) grow(n int) {
	if cap(ip.den) < n {
		ip.den = make([]limb.Element, n)
		ip.pre = make([]limb.Element, n)
		ip.suf = make([]limb.Element, n)
		ip.inv = make([]limb.Element, n)
	}
	ip.den = ip.den[:n]
	ip.pre = ip.pre[:n]
	ip.suf = ip.suf[:n]
	ip.inv = ip.inv[:n]
}

// AtZero evaluates the unique polynomial through (xs[j], ys[j]) at x=0:
// R(0) = Σ_j y_j · Π_{i≠j} x_i / (x_i − x_j). This is the limb-backend
// counterpart of InterpolateAtZero, replacing the per-node modular
// inversion with a single batch inversion (Montgomery's trick): one
// Fermat inversion plus O(n) multiplications for the whole sample.
func (ip *LimbInterpolator) AtZero(xs, ys []limb.Element) (limb.Element, error) {
	var acc limb.Element
	n := len(xs)
	if n == 0 {
		return acc, ErrEmptyInput
	}
	if len(ys) != n {
		return acc, fmt.Errorf("poly: %d nodes but %d values", n, len(ys))
	}
	ip.grow(n)
	// Π_{i≠j} x_i as prefix·suffix products: 2n multiplications total
	// instead of n² in the per-term loop of the big path.
	ip.pre[0].SetOne()
	for j := 1; j < n; j++ {
		ip.pre[j].Mul(&ip.pre[j-1], &xs[j-1])
	}
	ip.suf[n-1].SetOne()
	for j := n - 2; j >= 0; j-- {
		ip.suf[j].Mul(&ip.suf[j+1], &xs[j+1])
	}
	var t limb.Element
	for j := 0; j < n; j++ {
		d := &ip.den[j]
		d.SetOne()
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			t.Sub(&xs[i], &xs[j])
			if t.IsZero() {
				return acc, ErrDuplicateNode
			}
			d.Mul(d, &t)
		}
	}
	if err := limb.BatchInvertScratch(ip.den, ip.inv); err != nil {
		// Unreachable given the zero check above, but translate anyway.
		if errors.Is(err, limb.ErrNoInverse) {
			return acc, ErrDuplicateNode
		}
		return acc, err
	}
	for j := 0; j < n; j++ {
		t.Mul(&ip.pre[j], &ip.suf[j])
		t.Mul(&t, &ip.den[j])
		t.Mul(&t, &ys[j])
		acc.Add(&acc, &t)
	}
	return acc, nil
}

// InterpolateAtZeroLimb is a convenience wrapper over LimbInterpolator for
// one-shot calls.
func InterpolateAtZeroLimb(xs, ys []limb.Element) (limb.Element, error) {
	var ip LimbInterpolator
	return ip.AtZero(xs, ys)
}

// LimbNodes is one sample's interpolation input: equal-length node and
// value slices.
type LimbNodes struct {
	Xs, Ys []limb.Element
}

// AtZeroBatch interpolates every sample at x=0 into out (len(out) ==
// len(samples)). The denominators of ALL samples share one batch
// inversion, so a whole batch costs a single Fermat inversion plus O(total
// nodes) multiplications — the inversion was the dominant per-sample cost
// of AtZero in batched serving.
func (ip *LimbInterpolator) AtZeroBatch(samples []LimbNodes, out []limb.Element) error {
	if len(out) != len(samples) {
		return fmt.Errorf("poly: %d outputs for %d samples", len(out), len(samples))
	}
	total := 0
	for s, sm := range samples {
		if len(sm.Xs) == 0 {
			return ErrEmptyInput
		}
		if len(sm.Ys) != len(sm.Xs) {
			return fmt.Errorf("poly: sample %d: %d nodes but %d values", s, len(sm.Xs), len(sm.Ys))
		}
		total += len(sm.Xs)
	}
	ip.grow(total)
	var t limb.Element
	off := 0
	for _, sm := range samples {
		xs := sm.Xs
		n := len(xs)
		pre, suf, den := ip.pre[off:off+n], ip.suf[off:off+n], ip.den[off:off+n]
		pre[0].SetOne()
		for j := 1; j < n; j++ {
			pre[j].Mul(&pre[j-1], &xs[j-1])
		}
		suf[n-1].SetOne()
		for j := n - 2; j >= 0; j-- {
			suf[j].Mul(&suf[j+1], &xs[j+1])
		}
		for j := 0; j < n; j++ {
			d := &den[j]
			d.SetOne()
			for i := 0; i < n; i++ {
				if i == j {
					continue
				}
				t.Sub(&xs[i], &xs[j])
				if t.IsZero() {
					return ErrDuplicateNode
				}
				d.Mul(d, &t)
			}
		}
		off += n
	}
	if err := limb.BatchInvertScratch(ip.den, ip.inv); err != nil {
		if errors.Is(err, limb.ErrNoInverse) {
			return ErrDuplicateNode
		}
		return err
	}
	off = 0
	for s, sm := range samples {
		n := len(sm.Xs)
		acc := &out[s]
		acc.SetZero()
		for j := 0; j < n; j++ {
			t.Mul(&ip.pre[off+j], &ip.suf[off+j])
			t.Mul(&t, &ip.den[off+j])
			t.Mul(&t, &sm.Ys[j])
			acc.Add(acc, &t)
		}
		off += n
	}
	return nil
}
