package poly_test

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/poly"
)

func f(t *testing.T) *field.Field {
	t.Helper()
	return field.Default()
}

func TestNewTrimsAndReduces(t *testing.T) {
	fl := f(t)
	p := poly.New(fl, []*big.Int{big.NewInt(-3), big.NewInt(2), big.NewInt(0), big.NewInt(0)})
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	if fl.Centered(p.Coeff(0)).Int64() != -3 {
		t.Fatalf("coeff(0) = %v", fl.Centered(p.Coeff(0)))
	}
	if p.Coeff(5).Sign() != 0 {
		t.Fatal("out-of-range coeff must be zero")
	}
}

func TestZeroAndConstant(t *testing.T) {
	fl := f(t)
	z := poly.Zero(fl)
	if z.Degree() != -1 {
		t.Fatalf("zero degree = %d", z.Degree())
	}
	if z.Eval(big.NewInt(42)).Sign() != 0 {
		t.Fatal("zero poly must evaluate to 0")
	}
	c := poly.Constant(fl, big.NewInt(7))
	if c.Eval(big.NewInt(12345)).Int64() != 7 {
		t.Fatal("constant poly must evaluate to its constant")
	}
}

func TestEvalKnownPolynomial(t *testing.T) {
	fl := f(t)
	// p(x) = 2x² − 3x + 5
	p := poly.New(fl, []*big.Int{big.NewInt(5), big.NewInt(-3), big.NewInt(2)})
	cases := map[int64]int64{0: 5, 1: 4, 2: 7, -1: 10, 10: 175}
	for x, want := range cases {
		got := fl.Centered(p.Eval(fl.FromInt64(x)))
		if got.Int64() != want {
			t.Fatalf("p(%d) = %v, want %d", x, got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	fl := f(t)
	p := poly.New(fl, []*big.Int{big.NewInt(1), big.NewInt(2)})  // 1 + 2x
	q := poly.New(fl, []*big.Int{big.NewInt(-1), big.NewInt(3)}) // -1 + 3x

	sum := p.Add(q) // 5x
	if sum.Degree() != 1 || fl.Centered(sum.Coeff(1)).Int64() != 5 || sum.Coeff(0).Sign() != 0 {
		t.Fatalf("sum = %v", sum)
	}
	diff := p.Sub(q) // 2 - x
	if fl.Centered(diff.Coeff(0)).Int64() != 2 || fl.Centered(diff.Coeff(1)).Int64() != -1 {
		t.Fatalf("diff = %v", diff)
	}
	prod := p.Mul(q) // -1 + x + 6x²
	want := []int64{-1, 1, 6}
	for i, w := range want {
		if fl.Centered(prod.Coeff(i)).Int64() != w {
			t.Fatalf("prod coeff %d = %v, want %d", i, fl.Centered(prod.Coeff(i)), w)
		}
	}
	scaled := p.ScalarMul(fl.FromInt64(-2)) // -2 - 4x
	if fl.Centered(scaled.Coeff(1)).Int64() != -4 {
		t.Fatalf("scaled = %v", scaled)
	}
}

// TestMulAgainstEval cross-checks multiplication by the evaluation
// homomorphism (p·q)(x) = p(x)·q(x).
func TestMulAgainstEval(t *testing.T) {
	fl := f(t)
	check := func(a0, a1, a2, b0, b1 int64, x int64) bool {
		p := poly.New(fl, []*big.Int{big.NewInt(a0), big.NewInt(a1), big.NewInt(a2)})
		q := poly.New(fl, []*big.Int{big.NewInt(b0), big.NewInt(b1)})
		xe := fl.FromInt64(x)
		lhs := p.Mul(q).Eval(xe)
		rhs := fl.Mul(p.Eval(xe), q.Eval(xe))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomPolynomialShape(t *testing.T) {
	fl := f(t)
	v0 := fl.FromInt64(42)
	for _, deg := range []int{0, 1, 3, 10} {
		p, err := poly.Random(fl, rand.Reader, deg, v0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Eval(fl.Zero()).Cmp(v0) != 0 {
			t.Fatalf("deg %d: p(0) != 42", deg)
		}
		if deg >= 1 && p.Degree() != deg {
			t.Fatalf("degree = %d, want exactly %d", p.Degree(), deg)
		}
	}
	if _, err := poly.Random(fl, rand.Reader, -1, v0); err == nil {
		t.Fatal("negative degree should fail")
	}
}

// TestMaskingCancellation is the OMPE sender's core property: h with
// h(0)=0 contributes nothing at x=0 but randomizes everywhere else.
func TestMaskingCancellation(t *testing.T) {
	fl := f(t)
	secret := poly.New(fl, []*big.Int{big.NewInt(99), big.NewInt(-5)})
	h, err := poly.Random(fl, rand.Reader, 4, fl.Zero())
	if err != nil {
		t.Fatal(err)
	}
	masked := secret.Add(h)
	if masked.Eval(fl.Zero()).Cmp(secret.Eval(fl.Zero())) != 0 {
		t.Fatal("masking must vanish at 0")
	}
	x := fl.FromInt64(3)
	if masked.Eval(x).Cmp(secret.Eval(x)) == 0 {
		t.Fatal("masking left p(3) unchanged (vanishing improbability)")
	}
}

// TestInterpolateRoundTrip: interpolating deg+1 evaluations of a random
// polynomial recovers it exactly.
func TestInterpolateRoundTrip(t *testing.T) {
	fl := f(t)
	for _, deg := range []int{0, 1, 2, 5, 12} {
		p, err := poly.Random(fl, rand.Reader, deg, fl.FromInt64(7))
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]poly.Point, deg+1)
		for i := range pts {
			x := fl.FromInt64(int64(i + 1))
			pts[i] = poly.Point{X: x, Y: p.Eval(x)}
		}
		q, err := poly.Interpolate(fl, pts)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(q) {
			t.Fatalf("deg %d: interpolation did not recover the polynomial", deg)
		}
	}
}

// TestInterpolateAtZeroMatchesFull: the streamlined R(0) equals the full
// interpolation evaluated at 0 (paper Eq. 3's use).
func TestInterpolateAtZeroMatchesFull(t *testing.T) {
	fl := f(t)
	check := func(seed int64) bool {
		p, err := poly.Random(fl, rand.Reader, 6, fl.FromInt64(seed%1000))
		if err != nil {
			return false
		}
		pts := make([]poly.Point, 7)
		for i := range pts {
			x, err := fl.RandNonZero(rand.Reader)
			if err != nil {
				return false
			}
			pts[i] = poly.Point{X: x, Y: p.Eval(x)}
		}
		v, err := poly.InterpolateAtZero(fl, pts)
		if err != nil {
			// Collision of random xs is negligible but legal to reject.
			return true
		}
		return v.Cmp(p.Eval(fl.Zero())) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterpolateRejectsDuplicates(t *testing.T) {
	fl := f(t)
	pts := []poly.Point{
		{X: fl.FromInt64(1), Y: fl.FromInt64(2)},
		{X: fl.FromInt64(1), Y: fl.FromInt64(3)},
	}
	if _, err := poly.Interpolate(fl, pts); err == nil {
		t.Fatal("duplicate nodes should fail")
	}
	if _, err := poly.InterpolateAtZero(fl, pts); err == nil {
		t.Fatal("duplicate nodes should fail at-zero too")
	}
	if _, err := poly.Interpolate(fl, nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestString(t *testing.T) {
	fl := f(t)
	if got := poly.Zero(fl).String(); got != "0" {
		t.Fatalf("zero String = %q", got)
	}
	p := poly.New(fl, []*big.Int{big.NewInt(5), big.NewInt(3), big.NewInt(1)})
	if p.String() == "" {
		t.Fatal("empty String for nonzero poly")
	}
}

func TestCoeffsCopy(t *testing.T) {
	fl := f(t)
	p := poly.New(fl, []*big.Int{big.NewInt(1), big.NewInt(2)})
	cs := p.Coeffs()
	cs[0].SetInt64(100)
	if p.Coeff(0).Int64() == 100 {
		t.Fatal("Coeffs must return a copy")
	}
}
