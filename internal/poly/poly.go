// Package poly implements univariate polynomials over a prime field. It
// supplies the two polynomial primitives the OMPE protocol is built from:
// random masking polynomials with a fixed value at zero (the sender's h(u)
// with h(0)=0 and the receiver's covers g_i(v) with g_i(0)=t̃_i), and exact
// Lagrange interpolation used to reconstruct B(v) from the oblivious
// transfer output (paper Eq. 3).
package poly

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/field"
)

var (
	// ErrDuplicateNode reports repeated x-coordinates in interpolation input.
	ErrDuplicateNode = errors.New("poly: duplicate interpolation node")
	// ErrEmptyInput reports an interpolation call with no points.
	ErrEmptyInput = errors.New("poly: no interpolation points")
)

// Poly is a univariate polynomial over a field. Coefficients are stored in
// ascending degree order; coeffs[i] multiplies x^i. The zero polynomial has
// an empty coefficient slice.
type Poly struct {
	f      *field.Field
	coeffs []*big.Int
}

// New constructs a polynomial from ascending-degree coefficients, reducing
// each into the field and trimming leading zeros.
func New(f *field.Field, coeffs []*big.Int) *Poly {
	cs := make([]*big.Int, len(coeffs))
	for i, c := range coeffs {
		cs[i] = f.FromBig(c)
	}
	return (&Poly{f: f, coeffs: cs}).trim()
}

// Zero returns the zero polynomial.
func Zero(f *field.Field) *Poly { return &Poly{f: f} }

// Constant returns the degree-0 polynomial with the given value.
func Constant(f *field.Field, c *big.Int) *Poly {
	return New(f, []*big.Int{c})
}

// Random returns a uniform polynomial of exactly the given degree (its
// leading coefficient is non-zero) with the prescribed value at x=0.
//
// OMPE masking polynomials are Random(f, rng, deg, 0); receiver covers are
// Random(f, rng, deg, encodedSample_i).
func Random(f *field.Field, rng io.Reader, degree int, valueAtZero *big.Int) (*Poly, error) {
	if degree < 0 {
		return nil, fmt.Errorf("poly: negative degree %d", degree)
	}
	coeffs := make([]*big.Int, degree+1)
	coeffs[0] = f.FromBig(valueAtZero)
	for i := 1; i < degree; i++ {
		c, err := f.Rand(rng)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	if degree >= 1 {
		lead, err := f.RandNonZero(rng)
		if err != nil {
			return nil, err
		}
		coeffs[degree] = lead
	}
	return &Poly{f: f, coeffs: coeffs}, nil
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p *Poly) Degree() int { return len(p.coeffs) - 1 }

// Field returns the polynomial's field.
func (p *Poly) Field() *field.Field { return p.f }

// Coeff returns a copy of the coefficient of x^i (zero beyond the degree).
func (p *Poly) Coeff(i int) *big.Int {
	if i < 0 || i >= len(p.coeffs) {
		return new(big.Int)
	}
	return new(big.Int).Set(p.coeffs[i])
}

// Coeffs returns a copy of all coefficients in ascending degree order.
func (p *Poly) Coeffs() []*big.Int {
	out := make([]*big.Int, len(p.coeffs))
	for i, c := range p.coeffs {
		out[i] = new(big.Int).Set(c)
	}
	return out
}

// Eval evaluates p at x by Horner's rule with a single in-place
// accumulator: one Mul/Add/Mod per coefficient, no per-step allocation.
func (p *Poly) Eval(x *big.Int) *big.Int {
	acc := new(big.Int)
	if len(p.coeffs) == 0 {
		return acc
	}
	m := p.f.Modulus()
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, p.coeffs[i])
		acc.Mod(acc, m)
	}
	return acc
}

// Add returns p+q.
func (p *Poly) Add(q *Poly) *Poly {
	n := max(len(p.coeffs), len(q.coeffs))
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		var a, b *big.Int
		if i < len(p.coeffs) {
			a = p.coeffs[i]
		} else {
			a = new(big.Int)
		}
		if i < len(q.coeffs) {
			b = q.coeffs[i]
		} else {
			b = new(big.Int)
		}
		coeffs[i] = p.f.Add(a, b)
	}
	return (&Poly{f: p.f, coeffs: coeffs}).trim()
}

// Sub returns p-q.
func (p *Poly) Sub(q *Poly) *Poly {
	return p.Add(q.ScalarMul(p.f.FromInt64(-1)))
}

// Mul returns p*q by schoolbook convolution; protocol polynomials are small
// (degree <= pq, typically < 100) so asymptotically faster methods are not
// warranted.
func (p *Poly) Mul(q *Poly) *Poly {
	if len(p.coeffs) == 0 || len(q.coeffs) == 0 {
		return Zero(p.f)
	}
	coeffs := make([]*big.Int, len(p.coeffs)+len(q.coeffs)-1)
	for i := range coeffs {
		coeffs[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i, a := range p.coeffs {
		for j, b := range q.coeffs {
			tmp.Mul(a, b)
			coeffs[i+j].Add(coeffs[i+j], tmp)
		}
	}
	for i := range coeffs {
		coeffs[i] = p.f.Reduce(coeffs[i])
	}
	return (&Poly{f: p.f, coeffs: coeffs}).trim()
}

// ScalarMul returns s*p.
func (p *Poly) ScalarMul(s *big.Int) *Poly {
	coeffs := make([]*big.Int, len(p.coeffs))
	for i, c := range p.coeffs {
		coeffs[i] = p.f.Mul(s, c)
	}
	return (&Poly{f: p.f, coeffs: coeffs}).trim()
}

// Equal reports whether p and q have identical coefficients.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.coeffs) != len(q.coeffs) {
		return false
	}
	for i := range p.coeffs {
		if p.coeffs[i].Cmp(q.coeffs[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the polynomial for diagnostics.
func (p *Poly) String() string {
	if len(p.coeffs) == 0 {
		return "0"
	}
	s := ""
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		if p.coeffs[i].Sign() == 0 && len(p.coeffs) > 1 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch i {
		case 0:
			s += p.coeffs[i].String()
		case 1:
			s += p.coeffs[i].String() + "*x"
		default:
			s += fmt.Sprintf("%v*x^%d", p.coeffs[i], i)
		}
	}
	return s
}

func (p *Poly) trim() *Poly {
	n := len(p.coeffs)
	for n > 0 && p.coeffs[n-1].Sign() == 0 {
		n--
	}
	p.coeffs = p.coeffs[:n]
	return p
}

// Point is an (x, y) evaluation pair used for interpolation.
type Point struct {
	X *big.Int
	Y *big.Int
}

// Interpolate returns the unique polynomial of degree < len(points) through
// the given points (paper Eq. 3). Node x-coordinates must be distinct.
func Interpolate(f *field.Field, points []Point) (*Poly, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if points[i].X.Cmp(points[j].X) == 0 {
				return nil, fmt.Errorf("%w: x=%v", ErrDuplicateNode, points[i].X)
			}
		}
	}
	result := Zero(f)
	for j := range points {
		// basis_j(x) = prod_{i != j} (x - x_i) / (x_j - x_i)
		basis := Constant(f, f.One())
		denom := f.One()
		for i := range points {
			if i == j {
				continue
			}
			basis = basis.Mul(New(f, []*big.Int{f.Neg(points[i].X), f.One()}))
			denom = f.Mul(denom, f.Sub(points[j].X, points[i].X))
		}
		invDenom, err := f.Inv(denom)
		if err != nil {
			return nil, fmt.Errorf("poly: interpolate: %w", err)
		}
		result = result.Add(basis.ScalarMul(f.Mul(points[j].Y, invDenom)))
	}
	return result, nil
}

// InterpolateAtZero evaluates the interpolating polynomial at x=0 without
// materializing it: R(0) = sum_j y_j * prod_{i != j} x_i / (x_i - x_j).
// This is the hot path of OMPE result retrieval (B(0) = r_a·d(t̃)).
func InterpolateAtZero(f *field.Field, points []Point) (*big.Int, error) {
	if len(points) == 0 {
		return nil, ErrEmptyInput
	}
	// All basis scratch is allocated once and reused across terms; the
	// inner products run on raw big.Int ops against a single modulus copy.
	m := f.Modulus()
	var (
		acc = new(big.Int)
		num = new(big.Int)
		den = new(big.Int)
		tmp = new(big.Int)
	)
	for j := range points {
		num.SetInt64(1)
		den.SetInt64(1)
		for i := range points {
			if i == j {
				continue
			}
			num.Mul(num, points[i].X)
			num.Mod(num, m)
			tmp.Sub(points[i].X, points[j].X)
			den.Mul(den, tmp)
			den.Mod(den, m)
		}
		invDen, err := f.Inv(den)
		if err != nil {
			if errors.Is(err, field.ErrNoInverse) {
				return nil, ErrDuplicateNode
			}
			return nil, err
		}
		tmp.Mul(num, invDen)
		tmp.Mod(tmp, m)
		tmp.Mul(tmp, points[j].Y)
		tmp.Mod(tmp, m)
		acc.Add(acc, tmp)
	}
	return acc.Mod(acc, m), nil
}
