package poly

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand/v2"
	"testing"

	"repro/internal/field"
	"repro/internal/field/limb"
)

func p25519(t testing.TB) *field.Field {
	t.Helper()
	f, err := field.NewFromHex(field.P25519Hex)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randLimbs(t testing.TB, n int) []limb.Element {
	t.Helper()
	out := make([]limb.Element, n)
	for i := range out {
		if err := out[i].Rand(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestLimbPolyEvalMatchesBig checks Horner evaluation against the math/big
// path coefficient-for-coefficient.
func TestLimbPolyEvalMatchesBig(t *testing.T) {
	f := p25519(t)
	for _, deg := range []int{0, 1, 2, 5, 17} {
		cs := randLimbs(t, deg+1)
		big := make([]*big.Int, len(cs))
		for i := range cs {
			big[i] = cs[i].ToBig()
		}
		lp := NewLimb(cs)
		bp := New(f, big)
		for trial := 0; trial < 8; trial++ {
			var x, got limb.Element
			if err := x.Rand(rand.Reader); err != nil {
				t.Fatal(err)
			}
			lp.EvalInto(&got, &x)
			want := bp.Eval(x.ToBig())
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("deg %d: eval mismatch: %v != %v", deg, got.ToBig(), want)
			}
		}
	}
}

func TestNewLimbTrimsAndCopies(t *testing.T) {
	cs := make([]limb.Element, 4)
	cs[0].SetUint64(7)
	cs[1].SetUint64(9)
	p := NewLimb(cs)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1 after trim", p.Degree())
	}
	cs[1].SetUint64(1) // mutating the input must not affect the poly
	var c limb.Element
	p.Coeff(1, &c)
	var want limb.Element
	want.SetUint64(9)
	if !c.Equal(&want) {
		t.Fatal("NewLimb did not copy coefficients")
	}
	p.Coeff(5, &c)
	if !c.IsZero() {
		t.Fatal("Coeff beyond degree not zero")
	}
	if NewLimb(nil).Degree() != -1 {
		t.Fatal("zero polynomial degree")
	}
}

func TestRandomLimbShape(t *testing.T) {
	var v limb.Element
	v.SetUint64(42)
	for _, deg := range []int{0, 1, 2, 4} {
		p, err := RandomLimb(rand.Reader, deg, &v)
		if err != nil {
			t.Fatal(err)
		}
		if p.Degree() != deg {
			t.Fatalf("degree = %d, want %d", p.Degree(), deg)
		}
		var at0 limb.Element
		var x limb.Element
		p.EvalInto(&at0, x.SetZero())
		if !at0.Equal(&v) {
			t.Fatalf("p(0) = %v, want 42", at0.ToBig())
		}
	}
	if _, err := RandomLimb(rand.Reader, -1, &v); err == nil {
		t.Fatal("negative degree accepted")
	}
}

// TestInterpolateAtZeroLimbMatchesBig cross-checks the batch-inverted
// limb interpolation against the math/big reference on random node sets.
func TestInterpolateAtZeroLimbMatchesBig(t *testing.T) {
	f := p25519(t)
	for _, n := range []int{1, 2, 3, 7, 12} {
		xs := randLimbs(t, n)
		ys := randLimbs(t, n)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{X: xs[i].ToBig(), Y: ys[i].ToBig()}
		}
		got, err := InterpolateAtZeroLimb(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		want, err := InterpolateAtZero(f, points)
		if err != nil {
			t.Fatal(err)
		}
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("n=%d: %v != %v", n, got.ToBig(), want)
		}
	}
}

func TestInterpolateAtZeroLimbErrors(t *testing.T) {
	if _, err := InterpolateAtZeroLimb(nil, nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty input: %v", err)
	}
	xs := randLimbs(t, 3)
	xs[2] = xs[0]
	ys := randLimbs(t, 3)
	if _, err := InterpolateAtZeroLimb(xs, ys); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate node: %v", err)
	}
	if _, err := InterpolateAtZeroLimb(xs[:2], ys[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestLimbHornerAllocs pins the ported Horner loop at zero allocations per
// evaluation — the contract that makes the limb backend worth having.
func TestLimbHornerAllocs(t *testing.T) {
	p, err := RandomLimb(rand.Reader, 8, &limb.Element{})
	if err != nil {
		t.Fatal(err)
	}
	var x, out limb.Element
	if err := x.Rand(rand.Reader); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p.EvalInto(&out, &x)
	})
	if allocs != 0 {
		t.Fatalf("EvalInto allocates %.1f/op, want 0", allocs)
	}
}

// TestLimbInterpolatorAllocs pins the ported Lagrange loop at zero
// steady-state allocations (the scratch buffers amortize across samples).
func TestLimbInterpolatorAllocs(t *testing.T) {
	xs := randLimbs(t, 9)
	ys := randLimbs(t, 9)
	var ip LimbInterpolator
	if _, err := ip.AtZero(xs, ys); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ip.AtZero(xs, ys); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AtZero allocates %.1f/op steady-state, want 0", allocs)
	}
}

// TestAtZeroBatchMatchesAtZero pins the shared-inversion batch
// interpolator to the per-sample path on random samples of varying size.
func TestAtZeroBatchMatchesAtZero(t *testing.T) {
	rng := mrand.New(mrand.NewPCG(21, 21))
	draw := func() limb.Element {
		var e limb.Element
		var buf [32]byte
		for i := range buf {
			buf[i] = byte(rng.Uint32())
		}
		buf[0] &= 0x3f
		if err := e.SetBytes(buf[:]); err != nil {
			t.Fatal(err)
		}
		return e
	}
	samples := make([]LimbNodes, 9)
	for s := range samples {
		n := 1 + s%5
		xs := make([]limb.Element, n)
		ys := make([]limb.Element, n)
		seen := map[limb.Element]bool{}
		for j := 0; j < n; j++ {
			for {
				xs[j] = draw()
				if !seen[xs[j]] && !xs[j].IsZero() {
					seen[xs[j]] = true
					break
				}
			}
			ys[j] = draw()
		}
		samples[s] = LimbNodes{Xs: xs, Ys: ys}
	}
	out := make([]limb.Element, len(samples))
	var ip LimbInterpolator
	if err := ip.AtZeroBatch(samples, out); err != nil {
		t.Fatal(err)
	}
	for s, sm := range samples {
		want, err := InterpolateAtZeroLimb(sm.Xs, sm.Ys)
		if err != nil {
			t.Fatal(err)
		}
		if !out[s].Equal(&want) {
			t.Fatalf("sample %d: batch result diverges from AtZero", s)
		}
	}
	// Duplicate nodes must be rejected, not silently folded.
	dup := LimbNodes{Xs: []limb.Element{samples[0].Xs[0], samples[0].Xs[0]}, Ys: samples[1].Xs[:2]}
	if err := ip.AtZeroBatch([]LimbNodes{dup}, out[:1]); err == nil {
		t.Fatal("duplicate node should fail")
	}
}
