package entropy_test

import (
	"bytes"
	"crypto/rand"
	"io"
	"testing"

	"repro/internal/entropy"
)

// TestBufferedWrapsOnlyCryptoRand pins the contract: the exact
// crypto/rand.Reader gets a buffering wrapper, every other source (test
// rngs whose byte streams the protocols replay for determinism) passes
// through untouched.
func TestBufferedWrapsOnlyCryptoRand(t *testing.T) {
	det := bytes.NewReader(make([]byte, 64))
	if got := entropy.Buffered(det); got != io.Reader(det) {
		t.Fatalf("deterministic reader was wrapped: %T", got)
	}
	wrapped := entropy.Buffered(rand.Reader)
	if wrapped == rand.Reader {
		t.Fatal("crypto/rand.Reader was not wrapped")
	}
	// The wrapper must still serve reads of arbitrary size, including
	// ones larger than its internal buffer.
	for _, n := range []int{1, 32, 5000} {
		buf := make([]byte, n)
		if _, err := io.ReadFull(wrapped, buf); err != nil {
			t.Fatalf("read %d bytes: %v", n, err)
		}
	}
}
