// Package entropy amortizes operating-system entropy reads. The
// protocols draw randomness a few dozen bytes at a time (field elements,
// OT seeds, subset indices), and each read of crypto/rand.Reader is a
// getrandom call — several percent of a batched classification's CPU
// budget goes to that syscall alone. Buffering turns thousands of small
// reads into a few page-sized ones.
package entropy

import (
	"bufio"
	"crypto/rand"
	"io"
)

// bufSize is one page of buffered entropy: large enough to amortize the
// syscall across hundreds of field-element draws, small enough to be
// cheap per session.
const bufSize = 4096

// Buffered wraps the process entropy source in a read buffer. Only the
// exact crypto/rand.Reader is wrapped: any other reader is returned
// unchanged, because deterministic test streams must not have their read
// sizes altered and callers may rely on their own reader's concurrency
// guarantees.
//
// The returned reader is NOT safe for concurrent use — give each
// connection or protocol endpoint its own, never a shared one.
func Buffered(rng io.Reader) io.Reader {
	if rng == rand.Reader {
		return bufio.NewReaderSize(rand.Reader, bufSize)
	}
	return rng
}
