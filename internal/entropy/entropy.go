// Package entropy amortizes operating-system entropy reads. The
// protocols draw randomness a few dozen bytes at a time (field elements,
// OT seeds, subset indices), and a batched classification session goes
// through megabytes of it — masking polynomials, cover polynomials, and
// decoy components for every sample. Reading all of that straight from
// the kernel costs real CPU: getrandom generates per byte, and the
// syscall showed up at ~8% of the serving profile even behind a 64 KiB
// read buffer. Expanding a single OS seed with a userspace AES-CTR
// generator removes that cost while keeping every draw unpredictable.
package entropy

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"io"
)

// ctrReader streams an AES-256-CTR keystream: the standard CTR-DRBG
// construction minus reseeding, which a connection-lifetime generator
// does not need (2^64 blocks is unreachable before the session ends).
// Forward secrecy across connections comes from seeding each reader
// fresh; draws are as unpredictable as the 48-byte OS seed.
//
// The keystream is produced a page at a time: protocol draws are 32–64
// bytes, and feeding those straight to XORKeyStream lands on the
// unpipelined single-block AES path, which benchmarked no faster than
// the kernel generator it replaces.
type ctrReader struct {
	stream cipher.Stream
	buf    [4096]byte
	off    int // buf[off:] is unserved keystream
}

func (c *ctrReader) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if c.off == len(c.buf) {
			// XORKeyStream over zeroed bytes yields the raw keystream.
			for i := range c.buf {
				c.buf[i] = 0
			}
			c.stream.XORKeyStream(c.buf[:], c.buf[:])
			c.off = 0
		}
		m := copy(p, c.buf[c.off:])
		c.off += m
		p = p[m:]
	}
	return n, nil
}

// Buffered wraps the process entropy source in a fast userspace
// expander: one 48-byte getrandom seed (key + IV), then AES-CTR output
// for the life of the connection. Only the exact crypto/rand.Reader is
// wrapped: any other reader is returned unchanged, because deterministic
// test streams must not have their byte sequences altered and callers
// may rely on their own reader's concurrency guarantees. If seeding
// fails (no OS entropy at all), the raw reader is returned and the
// protocols surface the read error where they always did.
//
// The returned reader is NOT safe for concurrent use — give each
// connection or protocol endpoint its own, never a shared one.
func Buffered(rng io.Reader) io.Reader {
	if rng != rand.Reader {
		return rng
	}
	var seed [48]byte
	if _, err := io.ReadFull(rand.Reader, seed[:]); err != nil {
		return rng
	}
	blk, err := aes.NewCipher(seed[:32])
	if err != nil {
		return rng // unreachable: 32-byte key
	}
	return &ctrReader{stream: cipher.NewCTR(blk, seed[32:]), off: 4096}
}
