// Package mvpoly implements sparse multivariate polynomials, both over a
// prime field (the sender-side objects OMPE evaluates obliviously) and the
// float-coefficient expansion utilities of paper §IV-B: a polynomial-kernel
// decision function (a0·xᵀt + b0)^p over n variables expands into
// n' = C(n+p-1, n-1) monomial variates τ_j = Π t_i^{k_i}, turning the
// nonlinear protocol into the linear one over τ-space.
package mvpoly

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/field"
	"repro/internal/field/limb"
)

var (
	// ErrArity reports an evaluation point of the wrong dimension.
	ErrArity = errors.New("mvpoly: evaluation point has wrong arity")
	// ErrBadDegree reports a non-positive expansion degree.
	ErrBadDegree = errors.New("mvpoly: degree must be >= 1")
)

// Term is one monomial: Coeff * Π x_i^Exps[i].
type Term struct {
	Coeff *big.Int
	Exps  []uint
}

// Poly is a sparse multivariate polynomial over a prime field.
type Poly struct {
	f     *field.Field
	nvars int
	terms []Term

	// Limb-encoded coefficients, built lazily on the first EvalLimb call
	// (only valid over the 2^255−19 field).
	limbOnce   sync.Once
	limbCoeffs []limb.Element
	limbErr    error
}

// New builds a polynomial from terms, reducing coefficients into the field
// and dropping zero terms. Every term must have exactly nvars exponents.
func New(f *field.Field, nvars int, terms []Term) (*Poly, error) {
	if nvars < 0 {
		return nil, fmt.Errorf("mvpoly: negative arity %d", nvars)
	}
	out := make([]Term, 0, len(terms))
	for i, t := range terms {
		if len(t.Exps) != nvars {
			return nil, fmt.Errorf("mvpoly: term %d has %d exponents, want %d", i, len(t.Exps), nvars)
		}
		c := f.FromBig(t.Coeff)
		if c.Sign() == 0 {
			continue
		}
		exps := make([]uint, nvars)
		copy(exps, t.Exps)
		out = append(out, Term{Coeff: c, Exps: exps})
	}
	return &Poly{f: f, nvars: nvars, terms: out}, nil
}

// NewLinear builds w·x + b, the linear SVM decision shape of §IV-A.
func NewLinear(f *field.Field, w field.Vec, b *big.Int) (*Poly, error) {
	terms := make([]Term, 0, len(w)+1)
	for i, wi := range w {
		exps := make([]uint, len(w))
		exps[i] = 1
		terms = append(terms, Term{Coeff: wi, Exps: exps})
	}
	terms = append(terms, Term{Coeff: b, Exps: make([]uint, len(w))})
	return New(f, len(w), terms)
}

// NumVars returns the polynomial's arity.
func (p *Poly) NumVars() int { return p.nvars }

// NumTerms returns the number of non-zero monomials.
func (p *Poly) NumTerms() int { return len(p.terms) }

// TotalDegree returns the maximum term degree (0 for constants and the zero
// polynomial).
func (p *Poly) TotalDegree() int {
	maxDeg := 0
	for _, t := range p.terms {
		d := 0
		for _, e := range t.Exps {
			d += int(e)
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Terms returns a deep copy of the term list.
func (p *Poly) Terms() []Term {
	out := make([]Term, len(p.terms))
	for i, t := range p.terms {
		exps := make([]uint, len(t.Exps))
		copy(exps, t.Exps)
		out[i] = Term{Coeff: new(big.Int).Set(t.Coeff), Exps: exps}
	}
	return out
}

// Eval evaluates the polynomial at a field point.
func (p *Poly) Eval(x field.Vec) (*big.Int, error) {
	if len(x) != p.nvars {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrArity, len(x), p.nvars)
	}
	acc := new(big.Int)
	mono := new(big.Int)
	for _, t := range p.terms {
		mono.Set(t.Coeff)
		for i, e := range t.Exps {
			for k := uint(0); k < e; k++ {
				mono.Mul(mono, x[i])
				mono = p.f.Reduce(mono)
			}
		}
		acc.Add(acc, mono)
		acc = p.f.Reduce(acc)
	}
	return p.f.Reduce(acc), nil
}

// EvalLimb evaluates the polynomial at a fixed-width limb point (the
// ompe.LimbEvaluator contract). The coefficient encodings are built once
// on first use; after that the evaluation allocates nothing. Only valid
// when the polynomial's field is 2^255−19.
func (p *Poly) EvalLimb(x []limb.Element, out *limb.Element) error {
	if len(x) != p.nvars {
		return fmt.Errorf("%w: got %d, want %d", ErrArity, len(x), p.nvars)
	}
	p.limbOnce.Do(func() {
		if !p.f.SupportsLimb() {
			p.limbErr = fmt.Errorf("mvpoly: limb evaluation requires the 2^255−19 field")
			return
		}
		cs := make([]limb.Element, len(p.terms))
		for i, t := range p.terms {
			if err := cs[i].SetBig(t.Coeff); err != nil {
				p.limbErr = fmt.Errorf("mvpoly: term %d coefficient: %w", i, err)
				return
			}
		}
		p.limbCoeffs = cs
	})
	if p.limbErr != nil {
		return p.limbErr
	}
	var acc, mono limb.Element
	for ti := range p.terms {
		mono = p.limbCoeffs[ti]
		for i, e := range p.terms[ti].Exps {
			for k := uint(0); k < e; k++ {
				mono.Mul(&mono, &x[i])
			}
		}
		acc.Add(&acc, &mono)
	}
	out.Set(&acc)
	return nil
}

// Add returns p+q (same arity required).
func (p *Poly) Add(q *Poly) (*Poly, error) {
	if p.nvars != q.nvars {
		return nil, ErrArity
	}
	merged := append(p.Terms(), q.Terms()...)
	return New(p.f, p.nvars, normalizeTerms(p.f, merged))
}

// ScalarMul returns s*p.
func (p *Poly) ScalarMul(s *big.Int) (*Poly, error) {
	terms := p.Terms()
	for i := range terms {
		terms[i].Coeff = p.f.Mul(terms[i].Coeff, s)
	}
	return New(p.f, p.nvars, terms)
}

// normalizeTerms merges duplicate exponent vectors.
func normalizeTerms(f *field.Field, terms []Term) []Term {
	index := make(map[string]int, len(terms))
	out := make([]Term, 0, len(terms))
	for _, t := range terms {
		key := expsKey(t.Exps)
		if i, ok := index[key]; ok {
			out[i].Coeff = f.Add(out[i].Coeff, t.Coeff)
			continue
		}
		index[key] = len(out)
		out = append(out, t)
	}
	return out
}

func expsKey(exps []uint) string {
	b := make([]byte, 0, len(exps)*3)
	for _, e := range exps {
		b = append(b, byte(e), byte(e>>8), ',')
	}
	return string(b)
}

// ExpandDotPower expands coeff*(a·x)^p into homogeneous degree-p field
// terms using the multinomial theorem (paper §IV-B). The number of terms is
// C(n+p-1, n-1); callers must keep n and p small enough for that to be
// tractable (the direct kernel-form protocol avoids expansion entirely).
func ExpandDotPower(f *field.Field, a field.Vec, p int, coeff *big.Int) (*Poly, error) {
	if p < 1 {
		return nil, ErrBadDegree
	}
	n := len(a)
	var terms []Term
	for _, exps := range Compositions(n, p) {
		c := new(big.Int).Set(Multinomial(p, exps))
		c = f.Mul(f.FromBig(c), coeff)
		for i, e := range exps {
			for k := uint(0); k < e; k++ {
				c = f.Mul(c, a[i])
			}
		}
		terms = append(terms, Term{Coeff: c, Exps: exps})
	}
	return New(f, n, terms)
}

// Compositions enumerates every way to write total as an ordered sum of n
// non-negative integers, i.e. all exponent vectors of homogeneous degree
// `total` monomials in n variables.
func Compositions(n, total int) [][]uint {
	if n == 0 {
		if total == 0 {
			return [][]uint{{}}
		}
		return nil
	}
	var out [][]uint
	cur := make([]uint, n)
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == n-1 {
			cur[pos] = uint(remaining)
			c := make([]uint, n)
			copy(c, cur)
			out = append(out, c)
			return
		}
		for v := 0; v <= remaining; v++ {
			cur[pos] = uint(v)
			rec(pos+1, remaining-v)
		}
	}
	rec(0, total)
	return out
}

// CompositionsUpTo enumerates exponent vectors of total degree <= maxTotal,
// the variate set of an inhomogeneous degree-p expansion.
func CompositionsUpTo(n, maxTotal int) [][]uint {
	var out [][]uint
	for d := 0; d <= maxTotal; d++ {
		out = append(out, Compositions(n, d)...)
	}
	return out
}

// Multinomial returns p! / (k_1! · ... · k_n!) for sum(k)=p.
func Multinomial(p int, ks []uint) *big.Int {
	result := big.NewInt(1)
	remaining := p
	for _, k := range ks {
		result.Mul(result, binomial(remaining, int(k)))
		remaining -= int(k)
	}
	return result
}

// NumMonomials returns C(n+p-1, n-1), the paper's n' variate count for a
// homogeneous degree-p expansion over n variables.
func NumMonomials(n, p int) *big.Int {
	return binomial(n+p-1, n-1)
}

func binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return new(big.Int)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}
