package mvpoly

import (
	"fmt"
	"math"
	"math/big"
)

// FloatTerm is one monomial of a float-coefficient multivariate polynomial,
// used on the model-owner side to pre-expand a kernel decision function
// before fixed-point encoding.
type FloatTerm struct {
	Coeff float64
	Exps  []uint
}

// FloatExpansion is an expanded decision function over monomial variates:
// d(τ) = Σ_j Coeffs[j]·τ_j + Bias, where τ_j = Π_i t_i^Exps[j][i].
// This is the τ-space linearization of §IV-B: a client who computes its own
// τ̃ monomials can run the *linear* protocol over n' variates.
type FloatExpansion struct {
	// Exps enumerates the monomial exponent vectors (the τ variates).
	Exps [][]uint
	// Coeffs holds one coefficient per variate.
	Coeffs []float64
	// Bias is the additive constant.
	Bias float64
}

// NumVariates returns n', the number of τ variates.
func (e *FloatExpansion) NumVariates() int { return len(e.Exps) }

// MonomialValues maps a raw sample t to its τ̃ vector.
func (e *FloatExpansion) MonomialValues(t []float64) ([]float64, error) {
	out := make([]float64, len(e.Exps))
	for j, exps := range e.Exps {
		if len(exps) != len(t) {
			return nil, fmt.Errorf("%w: sample dim %d, variate arity %d", ErrArity, len(t), len(exps))
		}
		v := 1.0
		for i, k := range exps {
			for c := uint(0); c < k; c++ {
				v *= t[i]
			}
		}
		out[j] = v
	}
	return out, nil
}

// Eval evaluates the expansion directly on a raw sample.
func (e *FloatExpansion) Eval(t []float64) (float64, error) {
	tau, err := e.MonomialValues(t)
	if err != nil {
		return 0, err
	}
	acc := e.Bias
	for j, c := range e.Coeffs {
		acc += c * tau[j]
	}
	return acc, nil
}

// ExpandPolyKernel expands the polynomial-kernel decision function
//
//	d(t) = Σ_s α_s y_s (a0·x_s·t + b0)^p + b
//
// into a FloatExpansion over the τ variates of total degree <= p (exactly p
// when b0 == 0). alphaY[s] carries α_s·y_s for support vector sv[s].
func ExpandPolyKernel(sv [][]float64, alphaY []float64, a0, b0 float64, p int, bias float64) (*FloatExpansion, error) {
	if p < 1 {
		return nil, ErrBadDegree
	}
	if len(sv) != len(alphaY) {
		return nil, fmt.Errorf("mvpoly: %d support vectors but %d multipliers", len(sv), len(alphaY))
	}
	if len(sv) == 0 {
		return nil, fmt.Errorf("mvpoly: no support vectors")
	}
	n := len(sv[0])

	var exps [][]uint
	if b0 == 0 {
		exps = Compositions(n, p)
	} else {
		exps = CompositionsUpTo(n, p)
	}
	coeffIdx := make(map[string]int, len(exps))
	for j, e := range exps {
		coeffIdx[expsKey(e)] = j
	}
	coeffs := make([]float64, len(exps))
	biasOut := bias

	// (a0·x·t + b0)^p = Σ_{j=0..p} C(p,j)·b0^(p-j)·a0^j·(x·t)^j, and each
	// (x·t)^j expands by the multinomial theorem.
	for s, x := range sv {
		if len(x) != n {
			return nil, fmt.Errorf("mvpoly: support vector %d has dim %d, want %d", s, len(x), n)
		}
		lo := p
		if b0 != 0 {
			lo = 0
		}
		for j := p; j >= lo; j-- {
			outer := alphaY[s] * float64FromBig(binomial(p, j)) * math.Pow(b0, float64(p-j)) * math.Pow(a0, float64(j))
			if outer == 0 {
				continue
			}
			if j == 0 {
				biasOut += outer
				continue
			}
			for _, ks := range Compositions(n, j) {
				c := outer * float64FromBig(Multinomial(j, ks))
				for i, k := range ks {
					for cnt := uint(0); cnt < k; cnt++ {
						c *= x[i]
					}
				}
				if c == 0 {
					continue
				}
				idx, ok := coeffIdx[expsKey(ks)]
				if !ok {
					// Degree-j exponent vectors with j < p only exist when
					// b0 != 0, in which case exps covers all of them.
					return nil, fmt.Errorf("mvpoly: internal: missing variate for %v", ks)
				}
				coeffs[idx] += c
			}
		}
	}

	// The constant variate (all-zero exponents) duplicates the bias when
	// b0 != 0; fold it in so the expansion has a single constant.
	if b0 != 0 {
		if idx, ok := coeffIdx[expsKey(make([]uint, n))]; ok {
			biasOut += coeffs[idx]
			coeffs[idx] = 0
		}
	}
	return &FloatExpansion{Exps: exps, Coeffs: coeffs, Bias: biasOut}, nil
}

func float64FromBig(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}
