package mvpoly_test

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/mvpoly"
)

func fld() *field.Field { return field.Default() }

func TestNewValidation(t *testing.T) {
	f := fld()
	if _, err := mvpoly.New(f, -1, nil); err == nil {
		t.Fatal("negative arity should fail")
	}
	_, err := mvpoly.New(f, 2, []mvpoly.Term{{Coeff: big.NewInt(1), Exps: []uint{1}}})
	if err == nil {
		t.Fatal("wrong exponent count should fail")
	}
}

func TestZeroTermsDropped(t *testing.T) {
	f := fld()
	p, err := mvpoly.New(f, 2, []mvpoly.Term{
		{Coeff: big.NewInt(0), Exps: []uint{1, 0}},
		{Coeff: big.NewInt(5), Exps: []uint{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTerms() != 1 {
		t.Fatalf("terms = %d, want 1", p.NumTerms())
	}
}

func TestEvalKnown(t *testing.T) {
	f := fld()
	// p(x,y) = 3x²y + 2y − 7
	p, err := mvpoly.New(f, 2, []mvpoly.Term{
		{Coeff: big.NewInt(3), Exps: []uint{2, 1}},
		{Coeff: big.NewInt(2), Exps: []uint{0, 1}},
		{Coeff: big.NewInt(-7), Exps: []uint{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Eval(field.Vec{f.FromInt64(2), f.FromInt64(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Centered(v).Int64(); got != 3*4*5+2*5-7 {
		t.Fatalf("p(2,5) = %d", got)
	}
	if _, err := p.Eval(field.Vec{f.One()}); err == nil {
		t.Fatal("wrong arity should fail")
	}
	if p.TotalDegree() != 3 {
		t.Fatalf("total degree = %d", p.TotalDegree())
	}
}

func TestNewLinear(t *testing.T) {
	f := fld()
	w := field.Vec{f.FromInt64(2), f.FromInt64(-3)}
	p, err := mvpoly.NewLinear(f, w, f.FromInt64(10))
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Eval(field.Vec{f.FromInt64(4), f.FromInt64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Centered(v).Int64(); got != 8-3+10 {
		t.Fatalf("linear eval = %d", got)
	}
}

func TestAddAndScalarMul(t *testing.T) {
	f := fld()
	p, _ := mvpoly.NewLinear(f, field.Vec{f.FromInt64(1), f.FromInt64(2)}, f.Zero())
	q, _ := mvpoly.NewLinear(f, field.Vec{f.FromInt64(3), f.FromInt64(-2)}, f.FromInt64(5))
	sum, err := p.Add(q)
	if err != nil {
		t.Fatal(err)
	}
	x := field.Vec{f.FromInt64(7), f.FromInt64(11)}
	sv, _ := sum.Eval(x)
	pv, _ := p.Eval(x)
	qv, _ := q.Eval(x)
	if sv.Cmp(f.Add(pv, qv)) != 0 {
		t.Fatal("(p+q)(x) != p(x)+q(x)")
	}
	scaled, err := p.ScalarMul(f.FromInt64(-4))
	if err != nil {
		t.Fatal(err)
	}
	scv, _ := scaled.Eval(x)
	if scv.Cmp(f.Mul(f.FromInt64(-4), pv)) != 0 {
		t.Fatal("(c·p)(x) != c·p(x)")
	}
}

// TestExpandDotPowerMatchesDirect: the multinomial expansion of (a·x)^p
// must agree with computing the dot product and cubing (§IV-B).
func TestExpandDotPowerMatchesDirect(t *testing.T) {
	f := fld()
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{1, 2, 3, 5} {
		for _, p := range []int{1, 2, 3, 4} {
			a := make(field.Vec, n)
			x := make(field.Vec, n)
			for i := 0; i < n; i++ {
				a[i] = f.FromInt64(int64(rng.IntN(41) - 20))
				x[i] = f.FromInt64(int64(rng.IntN(41) - 20))
			}
			expanded, err := mvpoly.ExpandDotPower(f, a, p, f.FromInt64(3))
			if err != nil {
				t.Fatal(err)
			}
			got, err := expanded.Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			dot, err := f.Dot(a, x)
			if err != nil {
				t.Fatal(err)
			}
			want := f.FromInt64(3)
			for i := 0; i < p; i++ {
				want = f.Mul(want, dot)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d p=%d: expansion %v != direct %v", n, p, got, want)
			}
		}
	}
}

func TestCompositionsCount(t *testing.T) {
	// |Compositions(n, p)| must equal C(n+p-1, n-1) (the paper's n').
	for _, tc := range []struct{ n, p int }{{2, 3}, {3, 3}, {4, 2}, {5, 4}, {1, 7}} {
		got := len(mvpoly.Compositions(tc.n, tc.p))
		want := mvpoly.NumMonomials(tc.n, tc.p)
		if !want.IsInt64() || got != int(want.Int64()) {
			t.Fatalf("n=%d p=%d: %d compositions, want %v", tc.n, tc.p, got, want)
		}
		for _, c := range mvpoly.Compositions(tc.n, tc.p) {
			sum := uint(0)
			for _, e := range c {
				sum += e
			}
			if int(sum) != tc.p {
				t.Fatalf("composition %v does not sum to %d", c, tc.p)
			}
		}
	}
}

func TestCompositionsUpTo(t *testing.T) {
	got := len(mvpoly.CompositionsUpTo(3, 2))
	// degree 0: 1, degree 1: 3, degree 2: 6.
	if got != 10 {
		t.Fatalf("CompositionsUpTo(3,2) = %d terms, want 10", got)
	}
}

func TestMultinomial(t *testing.T) {
	cases := []struct {
		p    int
		ks   []uint
		want int64
	}{
		{3, []uint{3, 0}, 1},
		{3, []uint{2, 1}, 3},
		{3, []uint{1, 1, 1}, 6},
		{4, []uint{2, 2}, 6},
		{5, []uint{1, 2, 2}, 30},
	}
	for _, tc := range cases {
		if got := mvpoly.Multinomial(tc.p, tc.ks); got.Int64() != tc.want {
			t.Fatalf("Multinomial(%d, %v) = %v, want %d", tc.p, tc.ks, got, tc.want)
		}
	}
}

// TestExpandPolyKernelMatchesKernel: the float expansion must reproduce
// the kernel decision function on arbitrary samples.
func TestExpandPolyKernelMatchesKernel(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 4))
	sv := [][]float64{
		{0.5, -0.3, 0.8},
		{-0.2, 0.9, 0.1},
		{0.7, 0.4, -0.6},
	}
	alphaY := []float64{1.5, -2.0, 0.7}
	for _, cfg := range []struct {
		a0, b0 float64
		p      int
	}{
		{1.0 / 3, 0, 3},
		{0.5, 1, 2},
		{1, -0.5, 3},
	} {
		exp, err := mvpoly.ExpandPolyKernel(sv, alphaY, cfg.a0, cfg.b0, cfg.p, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			got, err := exp.Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.25
			for s := range sv {
				dot := 0.0
				for j := range x {
					dot += sv[s][j] * x[j]
				}
				want += alphaY[s] * math.Pow(cfg.a0*dot+cfg.b0, float64(cfg.p))
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("a0=%v b0=%v p=%d: expansion %v != kernel %v", cfg.a0, cfg.b0, cfg.p, got, want)
			}
		}
	}
}

// TestExpandPolyKernelProperty is the same check, quick-checked over
// random support vectors.
func TestExpandPolyKernelProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	check := func() bool {
		n := 2 + rng.IntN(3)
		m := 1 + rng.IntN(4)
		sv := make([][]float64, m)
		ay := make([]float64, m)
		for i := range sv {
			sv[i] = make([]float64, n)
			for j := range sv[i] {
				sv[i][j] = rng.Float64()*2 - 1
			}
			ay[i] = rng.Float64()*4 - 2
		}
		exp, err := mvpoly.ExpandPolyKernel(sv, ay, 1.0/float64(n), 0, 3, 0.1)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		got, err := exp.Eval(x)
		if err != nil {
			return false
		}
		want := 0.1
		for i := range sv {
			dot := 0.0
			for j := range x {
				dot += sv[i][j] * x[j]
			}
			want += ay[i] * math.Pow(dot/float64(n), 3)
		}
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(func(int) bool { return check() }, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpandPolyKernelValidation(t *testing.T) {
	if _, err := mvpoly.ExpandPolyKernel(nil, nil, 1, 0, 3, 0); err == nil {
		t.Fatal("empty support vectors should fail")
	}
	if _, err := mvpoly.ExpandPolyKernel([][]float64{{1}}, []float64{1, 2}, 1, 0, 3, 0); err == nil {
		t.Fatal("mismatched multipliers should fail")
	}
	if _, err := mvpoly.ExpandPolyKernel([][]float64{{1}}, []float64{1}, 1, 0, 0, 0); err == nil {
		t.Fatal("degree 0 should fail")
	}
}

func TestMonomialValuesArity(t *testing.T) {
	exp := &mvpoly.FloatExpansion{
		Exps:   [][]uint{{1, 0}, {0, 1}},
		Coeffs: []float64{1, 2},
	}
	if _, err := exp.MonomialValues([]float64{1}); err == nil {
		t.Fatal("wrong arity should fail")
	}
	vals, err := exp.MonomialValues([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3 || vals[1] != 4 {
		t.Fatalf("monomial values = %v", vals)
	}
}
