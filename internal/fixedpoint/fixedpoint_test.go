package fixedpoint_test

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/fixedpoint"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := fixedpoint.Default()
	check := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true // out of scope for the protocol's data range
		}
		e, err := c.Encode(x)
		if err != nil {
			return false
		}
		y, err := c.Decode(e)
		if err != nil {
			return false
		}
		return math.Abs(x-y) <= 1.0/float64(int64(1)<<c.FracBits())+math.Abs(x)*1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeExactValues(t *testing.T) {
	c := fixedpoint.Default()
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 1024, -123.0625} {
		e, err := c.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		y, err := c.Decode(e)
		if err != nil {
			t.Fatal(err)
		}
		if y != x {
			t.Fatalf("Encode/Decode(%v) = %v (dyadic rationals must round-trip exactly)", x, y)
		}
	}
}

// TestAdditionHomomorphism checks Enc(a)+Enc(b) decodes to a+b.
func TestAdditionHomomorphism(t *testing.T) {
	c := fixedpoint.Default()
	f := c.Field()
	check := func(a, b float64) bool {
		if !inRange(a) || !inRange(b) {
			return true
		}
		ea, err := c.Encode(a)
		if err != nil {
			return false
		}
		eb, err := c.Encode(b)
		if err != nil {
			return false
		}
		sum, err := c.Decode(f.Add(ea, eb))
		if err != nil {
			return false
		}
		return math.Abs(sum-(a+b)) <= 2.0/float64(int64(1)<<c.FracBits())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestProductScale checks Enc_S(a)·Enc_S(b) decodes at scale S².
func TestProductScale(t *testing.T) {
	c := fixedpoint.Default()
	f := c.Field()
	check := func(a, b float64) bool {
		if !inRange(a) || !inRange(b) {
			return true
		}
		ea, err := c.Encode(a)
		if err != nil {
			return false
		}
		eb, err := c.Encode(b)
		if err != nil {
			return false
		}
		prod, err := c.DecodeAtScale(f.Mul(ea, eb), c.ScalePow(2))
		if err != nil {
			return false
		}
		tol := (math.Abs(a) + math.Abs(b) + 1) / float64(int64(1)<<c.FracBits())
		return math.Abs(prod-a*b) <= tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScaleNormalizedCoefficient checks the DESIGN.md §3 invariant: a
// coefficient encoded at S_target/S_in^k times a degree-k product of
// base-scale inputs decodes at S_target.
func TestScaleNormalizedCoefficient(t *testing.T) {
	c := fixedpoint.Default()
	f := c.Field()
	coeff, in1, in2 := 0.75, -1.5, 2.25
	target := c.ScalePow(3)

	// coeff at S^(3-2) = S, inputs at S: coeff·in1·in2 decodes at S³.
	ec, err := c.EncodeAtScale(coeff, c.ScalePow(1))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.Encode(in1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Encode(in2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeAtScale(f.Mul(ec, f.Mul(e1, e2)), target)
	if err != nil {
		t.Fatal(err)
	}
	want := coeff * in1 * in2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("normalized product = %v, want %v", got, want)
	}
}

func TestSign(t *testing.T) {
	c := fixedpoint.Default()
	cases := []struct {
		x    float64
		want int
	}{{3.5, 1}, {-2.25, -1}, {0, 0}}
	for _, tc := range cases {
		e, err := c.Encode(tc.x)
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Sign(e)
		if err != nil {
			t.Fatal(err)
		}
		if s != tc.want {
			t.Fatalf("Sign(%v) = %d, want %d", tc.x, s, tc.want)
		}
	}
}

// TestSignSurvivesAmplification is the protocol-critical invariant of
// §IV-A.3: multiplying by a positive bounded amplifier preserves sign.
func TestSignSurvivesAmplification(t *testing.T) {
	c := fixedpoint.Default()
	f := c.Field()
	amps := []*big.Int{big.NewInt(1), big.NewInt(12345), new(big.Int).Lsh(big.NewInt(1), 64)}
	for _, x := range []float64{0.001, -0.001, 7.5, -123.25} {
		e, err := c.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, amp := range amps {
			s, err := c.Sign(f.Mul(amp, e))
			if err != nil {
				t.Fatal(err)
			}
			want := 1
			if x < 0 {
				want = -1
			}
			if s != want {
				t.Fatalf("sign of %v × %v = %d, want %d", amp, x, s, want)
			}
		}
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	c := fixedpoint.Default()
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := c.Encode(x); err == nil {
			t.Fatalf("Encode(%v) should fail", x)
		}
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	c := fixedpoint.Default()
	if _, err := c.Encode(1e75); err == nil {
		t.Fatal("huge value should overflow a 255-bit field at 2^40 scale")
	}
}

func TestNewCodecValidation(t *testing.T) {
	f := field.Default()
	if _, err := fixedpoint.NewCodec(nil, 40); err == nil {
		t.Fatal("nil field should fail")
	}
	if _, err := fixedpoint.NewCodec(f, 0); err == nil {
		t.Fatal("zero fracBits should fail")
	}
	if _, err := fixedpoint.NewCodec(f, 300); err == nil {
		t.Fatal("fracBits >= field bits should fail")
	}
}

func TestEncodeVecReportsComponent(t *testing.T) {
	c := fixedpoint.Default()
	_, err := c.EncodeVec([]float64{1, math.NaN(), 3})
	if err == nil {
		t.Fatal("NaN component should fail")
	}
}

func TestDecodeValidation(t *testing.T) {
	c := fixedpoint.Default()
	if _, err := c.Decode(big.NewInt(-5)); err == nil {
		t.Fatal("non-canonical element should fail")
	}
	e, err := c.Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeAtScale(e, big.NewInt(0)); err == nil {
		t.Fatal("zero scale should fail")
	}
}

func inRange(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9
}

// TestEncodePow2MatchesRatPath pins the mantissa-shift encode fast path
// to the exact big.Rat reference across magnitudes, signs, and scales
// (including non-power-of-two scales, which must take the slow path and
// still agree with the reference).
func TestEncodePow2MatchesRatPath(t *testing.T) {
	f, err := field.NewFromHex(field.P25519Hex)
	if err != nil {
		t.Fatal(err)
	}
	c, err := fixedpoint.NewCodec(f, 40)
	if err != nil {
		t.Fatal(err)
	}
	ratEncode := func(x float64, scale *big.Int) *big.Int {
		r := new(big.Rat).SetFloat64(x)
		r.Mul(r, new(big.Rat).SetInt(scale))
		num := new(big.Int).Set(r.Num())
		den := r.Denom()
		neg := num.Sign() < 0
		if neg {
			num.Neg(num)
		}
		q, rem := new(big.Int).QuoRem(num, den, new(big.Int))
		rem.Lsh(rem, 1)
		if rem.Cmp(den) >= 0 {
			q.Add(q, big.NewInt(1))
		}
		if neg {
			q.Neg(q)
		}
		return q.Mod(q, f.Modulus())
	}
	scales := []*big.Int{
		c.Scale(),
		new(big.Int).Lsh(big.NewInt(1), 1),
		new(big.Int).Lsh(big.NewInt(1), 80),
		big.NewInt(1),
		big.NewInt(3), // not a power of two: slow path
		big.NewInt(1000000),
	}
	rng := rand.New(rand.NewPCG(11, 11))
	values := []float64{0, 1, -1, 0.5, -0.5, 1.5e-20, -1.5e-20, 3.25e9, -3.25e9, 1e-40}
	for i := 0; i < 500; i++ {
		values = append(values, (rng.Float64()-0.5)*math.Pow(10, float64(rng.IntN(25)-12)))
	}
	for _, scale := range scales {
		for _, x := range values {
			got, err := c.EncodeAtScale(x, scale)
			want := ratEncode(x, scale)
			overflow := new(big.Int).Abs(f.Centered(want)).Cmp(new(big.Int).Rsh(f.Modulus(), 1)) >= 0
			if err != nil {
				continue // overflow errors are checked elsewhere
			}
			if overflow {
				t.Fatalf("x=%g scale=%s: expected overflow error", x, scale)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("x=%g scale=%s: got %s, want %s", x, scale, got, want)
			}
		}
	}
}
