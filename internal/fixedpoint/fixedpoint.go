// Package fixedpoint provides exact fixed-point encoding of real values
// into prime-field elements, the numeric bridge between the SVM layer
// (float64 models and samples) and the protocol layer (field arithmetic).
//
// A real x is encoded as round(x * 2^fracBits) mod p. Sums of encodings at
// one scale decode exactly; a product of two encodings carries the product
// of their scales. Because OMPE evaluates polynomials whose monomials have
// different degrees, the Codec supports "scale-normalized" coefficient
// encoding: the coefficient of a degree-k monomial is encoded at scale
// 2^(target - k*input), so every monomial — and hence the whole polynomial
// value — decodes at the single target scale. See DESIGN.md §3.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"repro/internal/field"
)

// DefaultFracBits is the default number of fractional bits for data values.
const DefaultFracBits = 40

var (
	// ErrNotFinite reports an attempt to encode NaN or ±Inf.
	ErrNotFinite = errors.New("fixedpoint: value is not finite")
	// ErrOverflow reports a value whose encoding would leave the centered
	// range of the field and therefore lose its sign.
	ErrOverflow = errors.New("fixedpoint: encoded value overflows field")
)

// Codec encodes and decodes reals at a fixed fractional precision over a
// given field. It is immutable and safe for concurrent use.
type Codec struct {
	f        *field.Field
	fracBits uint
	scale    *big.Int // 2^fracBits
	// maxAbs bounds |x*scale| so encodings stay strictly inside (-p/2, p/2).
	maxAbs *big.Int
	// modulus is a private copy of the field modulus so the power-of-two
	// encode fast path can reduce by one addition instead of a division.
	modulus *big.Int
}

// NewCodec returns a codec with the given fractional precision.
func NewCodec(f *field.Field, fracBits uint) (*Codec, error) {
	if f == nil {
		return nil, errors.New("fixedpoint: nil field")
	}
	if fracBits == 0 || int(fracBits) >= f.Bits()-2 {
		return nil, fmt.Errorf("fixedpoint: fracBits %d out of range for %d-bit field", fracBits, f.Bits())
	}
	half := new(big.Int).Rsh(f.Modulus(), 1)
	return &Codec{
		f:        f,
		fracBits: fracBits,
		scale:    new(big.Int).Lsh(big.NewInt(1), fracBits),
		maxAbs:   half,
		modulus:  f.Modulus(),
	}, nil
}

// Default returns a codec over the default field with DefaultFracBits.
func Default() *Codec {
	c, err := NewCodec(field.Default(), DefaultFracBits)
	if err != nil {
		panic(err) // compile-time-fixed parameters
	}
	return c
}

// Field returns the underlying field.
func (c *Codec) Field() *field.Field { return c.f }

// FracBits returns the fractional precision in bits.
func (c *Codec) FracBits() uint { return c.fracBits }

// Scale returns a copy of 2^fracBits.
func (c *Codec) Scale() *big.Int { return new(big.Int).Set(c.scale) }

// ScalePow returns a copy of 2^(k*fracBits), the scale of a degree-k
// product of data encodings.
func (c *Codec) ScalePow(k uint) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), c.fracBits*k)
}

// Encode maps a real to a field element at the codec's base scale.
func (c *Codec) Encode(x float64) (*big.Int, error) {
	return c.EncodeAtScale(x, c.scale)
}

// EncodeAtScale maps a real to round(x*scale) mod p for an arbitrary
// integer scale. Scale-normalized polynomial coefficients use this with
// scale = 2^(target - degree*input).
func (c *Codec) EncodeAtScale(x float64, scale *big.Int) (*big.Int, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, ErrNotFinite
	}
	// Every scale the codec hands out is 2^k (base scale and the
	// scale-normalized coefficient scales alike), so the exact product
	// x·2^k is just the float's mantissa shifted — no big.Rat, and the
	// overflow check already bounds |v| < p/2, so the final reduction is
	// one conditional addition instead of a division.
	if shift, ok := pow2Exp(scale); ok {
		v := scaleByPow2(x, shift)
		if v.CmpAbs(c.maxAbs) >= 0 {
			return nil, ErrOverflow
		}
		if v.Sign() < 0 {
			v.Add(v, c.modulus)
		}
		return v, nil
	}
	r := new(big.Rat).SetFloat64(x)
	r.Mul(r, new(big.Rat).SetInt(scale))
	v := ratRound(r)
	if new(big.Int).Abs(v).Cmp(c.maxAbs) >= 0 {
		return nil, ErrOverflow
	}
	return c.f.FromBig(v), nil
}

// pow2Exp reports whether scale is an exact power of two, returning its
// exponent.
func pow2Exp(scale *big.Int) (int, bool) {
	if scale.Sign() <= 0 {
		return 0, false
	}
	b := scale.BitLen()
	if scale.TrailingZeroBits() == uint(b-1) {
		return b - 1, true
	}
	return 0, false
}

// scaleByPow2 returns round(x·2^shift) exactly (half away from zero),
// matching ratRound on the rational x·2^shift: the float64 is decomposed
// into its 53-bit integer mantissa m with x = ±m·2^e, so the product is
// ±m·2^(e+shift) — an exact left shift, or a right shift rounded on the
// dropped bits.
func scaleByPow2(x float64, shift int) *big.Int {
	if x == 0 {
		return new(big.Int)
	}
	fr, exp := math.Frexp(math.Abs(x))
	m := uint64(fr * (1 << 53)) // exact: fr has at most 53 mantissa bits
	t := exp - 53 + shift
	var v *big.Int
	switch {
	case t >= 0:
		v = new(big.Int).Lsh(new(big.Int).SetUint64(m), uint(t))
	case t >= -63:
		r := uint(-t)
		v = new(big.Int).SetUint64((m + 1<<(r-1)) >> r)
	default:
		// |x·2^shift| < 2^-10: rounds to zero (m < 2^53, r ≥ 64).
		v = new(big.Int)
	}
	if x < 0 {
		v.Neg(v)
	}
	return v
}

// EncodeVec encodes a float vector at the base scale.
func (c *Codec) EncodeVec(xs []float64) (field.Vec, error) {
	out := make(field.Vec, len(xs))
	for i, x := range xs {
		e, err := c.Encode(x)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

// Decode recovers the real value of an element encoded at the base scale.
func (c *Codec) Decode(e *big.Int) (float64, error) {
	return c.DecodeAtScale(e, c.scale)
}

// DecodeAtScale recovers the real value of an element at the given scale,
// interpreting the element in centered representation.
func (c *Codec) DecodeAtScale(e *big.Int, scale *big.Int) (float64, error) {
	if !c.f.Contains(e) {
		return 0, field.ErrNotInField
	}
	if scale == nil || scale.Sign() <= 0 {
		return 0, errors.New("fixedpoint: scale must be positive")
	}
	centered := c.f.Centered(e)
	r := new(big.Rat).SetFrac(centered, scale)
	out, _ := r.Float64()
	if math.IsInf(out, 0) {
		return 0, ErrOverflow
	}
	return out, nil
}

// Sign returns the sign (-1, 0, +1) of an encoded value in centered
// representation, regardless of its scale. Classification only needs this.
func (c *Codec) Sign(e *big.Int) (int, error) {
	if !c.f.Contains(e) {
		return 0, field.ErrNotInField
	}
	return c.f.Centered(e).Sign(), nil
}

// ratRound rounds a rational to the nearest integer, half away from zero.
func ratRound(r *big.Rat) *big.Int {
	num := new(big.Int).Set(r.Num())
	den := r.Denom() // always positive
	neg := num.Sign() < 0
	if neg {
		num.Neg(num)
	}
	q, rem := new(big.Int).QuoRem(num, den, new(big.Int))
	rem.Lsh(rem, 1)
	if rem.Cmp(den) >= 0 {
		q.Add(q, big.NewInt(1))
	}
	if neg {
		q.Neg(q)
	}
	return q
}
