package ot

import (
	"crypto/rand"
	"fmt"
	"io"
)

// Extended k-out-of-n transfer: after one IKNP base phase per session,
// every k-of-n transfer costs only symmetric crypto — no public-key
// operations. Each of the k instances uses the tree construction's key
// idea: the sender draws ⌈log₂ n⌉ key pairs, encrypts all n messages
// under per-index key paths, and delivers exactly the receiver's path keys
// through extended 1-of-2 transfers (k·⌈log₂ n⌉ of them, batched into one
// IKNP extension round).
//
// One query is in flight at a time per session (the IKNP endpoints keep
// lockstep batch state), matching the transport layer's sequential
// session model.

// ExtKofNRequest is the receiver's per-query message.
type ExtKofNRequest struct {
	IKNP *IKNPReceiverMsg
	// K and N are the transfer shape (public).
	K, N int
}

// ExtKofNResponse is the sender's per-query message.
type ExtKofNResponse struct {
	IKNP *IKNPSenderMsg
	// Cts[i][j] is instance i's encryption of message j.
	Cts [][][]byte
}

// ExtKofNQuery is the receiver's in-flight query state.
type ExtKofNQuery struct {
	iknp    *IKNPReceiver
	indices []int
	n       int
	depth   int
}

// NewExtKofNQuery opens one k-of-n transfer for the given distinct
// indices, producing the request message.
func NewExtKofNQuery(r *IKNPReceiver, n int, indices []int) (*ExtKofNQuery, *ExtKofNRequest, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("ot: need at least 2 messages, got %d", n)
	}
	if len(indices) == 0 || len(indices) > n {
		return nil, nil, fmt.Errorf("ot: invalid k=%d for n=%d", len(indices), n)
	}
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			return nil, nil, fmt.Errorf("%w: %d", ErrBadIndex, idx)
		}
		if seen[idx] {
			return nil, nil, fmt.Errorf("%w: %d", ErrDuplicateIndex, idx)
		}
		seen[idx] = true
	}
	depth := treeDepth(n)
	choices := make([]int, len(indices)*depth)
	for i, idx := range indices {
		for j := 0; j < depth; j++ {
			choices[i*depth+j] = (idx >> j) & 1
		}
	}
	msg, err := r.Extend(choices)
	if err != nil {
		return nil, nil, err
	}
	q := &ExtKofNQuery{
		iknp:    r,
		indices: append([]int(nil), indices...),
		n:       n,
		depth:   depth,
	}
	return q, &ExtKofNRequest{IKNP: msg, K: len(indices), N: n}, nil
}

// ExtKofNRespond answers one query: the sender's messages (all the same
// length) are encrypted per instance under fresh tree keys, and the keys
// are delivered through the extended 1-of-2 batch.
func ExtKofNRespond(s *IKNPSender, req *ExtKofNRequest, msgs [][]byte, rng io.Reader) (*ExtKofNResponse, error) {
	if req == nil || req.IKNP == nil {
		return nil, fmt.Errorf("%w: nil request", ErrIKNP)
	}
	n := len(msgs)
	if n != req.N || n < 2 {
		return nil, fmt.Errorf("%w: %d messages for declared n=%d", ErrIKNP, n, req.N)
	}
	for _, m := range msgs[1:] {
		if len(m) != len(msgs[0]) {
			return nil, ErrMessageLen
		}
	}
	depth := treeDepth(n)
	k := req.K
	if k < 1 || k > n || req.IKNP.M != k*depth {
		return nil, fmt.Errorf("%w: batch size %d for k=%d depth=%d", ErrIKNP, req.IKNP.M, k, depth)
	}
	// Fresh key pairs per (instance, level); x0/x1 feed the extension.
	keys := make([][][2][]byte, k)
	x0 := make([][]byte, k*depth)
	x1 := make([][]byte, k*depth)
	for i := 0; i < k; i++ {
		keys[i] = make([][2][]byte, depth)
		for j := 0; j < depth; j++ {
			for b := 0; b < 2; b++ {
				key := make([]byte, treeKeyLen)
				if _, err := rand.Read(key); err != nil {
					return nil, err
				}
				keys[i][j][b] = key
			}
			x0[i*depth+j] = keys[i][j][0]
			x1[i*depth+j] = keys[i][j][1]
		}
	}
	iknpResp, err := s.Respond(req.IKNP, x0, x1)
	if err != nil {
		return nil, err
	}
	cts := make([][][]byte, k)
	for i := 0; i < k; i++ {
		cts[i] = make([][]byte, n)
		for m := 0; m < n; m++ {
			path := make([][]byte, depth)
			for j := 0; j < depth; j++ {
				path[j] = keys[i][j][(m>>j)&1]
			}
			pad := treePadFromKeys(path, m, len(msgs[m]))
			ct := make([]byte, len(msgs[m]))
			for p := range ct {
				ct[p] = msgs[m][p] ^ pad[p]
			}
			cts[i][m] = ct
		}
	}
	return &ExtKofNResponse{IKNP: iknpResp, Cts: cts}, nil
}

// Recover decrypts the query's chosen messages, in index order.
func (q *ExtKofNQuery) Recover(resp *ExtKofNResponse) ([][]byte, error) {
	if resp == nil || resp.IKNP == nil || len(resp.Cts) != len(q.indices) {
		return nil, fmt.Errorf("%w: bad response", ErrIKNP)
	}
	pathKeys, err := q.iknp.Recover(resp.IKNP)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(q.indices))
	for i, idx := range q.indices {
		if len(resp.Cts[i]) != q.n {
			return nil, fmt.Errorf("%w: instance %d has %d ciphertexts", ErrIKNP, i, len(resp.Cts[i]))
		}
		path := make([][]byte, q.depth)
		for j := 0; j < q.depth; j++ {
			key := pathKeys[i*q.depth+j]
			if len(key) != treeKeyLen {
				return nil, fmt.Errorf("%w: instance %d level %d key length", ErrIKNP, i, j)
			}
			path[j] = key
		}
		ct := resp.Cts[i][idx]
		pad := treePadFromKeys(path, idx, len(ct))
		x := make([]byte, len(ct))
		for p := range ct {
			x[p] = ct[p] ^ pad[p]
		}
		out[i] = x
	}
	return out, nil
}
