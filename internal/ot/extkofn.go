package ot

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Extended k-out-of-n transfer: after one IKNP base phase per session,
// every k-of-n transfer costs only symmetric crypto — no public-key
// operations. Each of the k instances uses the tree construction's key
// idea: the sender draws ⌈log₂ n⌉ key pairs, encrypts all n messages
// under per-index key paths, and delivers exactly the receiver's path keys
// through extended 1-of-2 transfers (k·⌈log₂ n⌉ of them, batched into one
// IKNP extension round).
//
// Several queries may be in flight per session (each holds its own
// IKNPExtension state), as long as the sender answers them in Extend
// order — its lockstep batch counter must advance in the receiver's
// sequence. The batched variant goes further: one Extend call covers all
// B samples of a ExtKofNBatch, amortizing the extension round itself.

// ExtKofNRequest is the receiver's per-query message.
type ExtKofNRequest struct {
	IKNP *IKNPReceiverMsg
	// K and N are the transfer shape (public).
	K, N int
}

// ExtKofNResponse is the sender's per-query message.
type ExtKofNResponse struct {
	IKNP *IKNPSenderMsg
	// Cts is the k×n ciphertext matrix as one flat blob, instance-major:
	// instance i's encryption of message j occupies
	// Cts[(i·n+j)·MsgLen : (i·n+j+1)·MsgLen].
	Cts    []byte
	MsgLen int
}

// ExtKofNQuery is the receiver's in-flight query state.
type ExtKofNQuery struct {
	ext     *IKNPExtension
	indices []int
	n       int
	depth   int
	pad     PadFunc
}

// checkKofNIndices validates one sample's index set for a k-of-n query.
func checkKofNIndices(n int, indices []int) error {
	if n < 2 {
		return fmt.Errorf("ot: need at least 2 messages, got %d", n)
	}
	if len(indices) == 0 || len(indices) > n {
		return fmt.Errorf("ot: invalid k=%d for n=%d", len(indices), n)
	}
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			return fmt.Errorf("%w: %d", ErrBadIndex, idx)
		}
		if seen[idx] {
			return fmt.Errorf("%w: %d", ErrDuplicateIndex, idx)
		}
		seen[idx] = true
	}
	return nil
}

// appendPathChoices appends the ⌈log₂ n⌉ bit-path choices of every index.
func appendPathChoices(choices []int, indices []int, depth int) []int {
	for _, idx := range indices {
		for j := 0; j < depth; j++ {
			choices = append(choices, (idx>>j)&1)
		}
	}
	return choices
}

// NewExtKofNQuery opens one k-of-n transfer for the given distinct
// indices, producing the request message.
func NewExtKofNQuery(r *IKNPReceiver, n int, indices []int) (*ExtKofNQuery, *ExtKofNRequest, error) {
	if err := checkKofNIndices(n, indices); err != nil {
		return nil, nil, err
	}
	depth := treeDepth(n)
	choices := appendPathChoices(make([]int, 0, len(indices)*depth), indices, depth)
	ext, msg, err := r.Extend(choices)
	if err != nil {
		return nil, nil, err
	}
	q := &ExtKofNQuery{
		ext:     ext,
		indices: append([]int(nil), indices...),
		n:       n,
		depth:   depth,
		pad:     r.pad,
	}
	return q, &ExtKofNRequest{IKNP: msg, K: len(indices), N: n}, nil
}

// drawTreeKeys draws fresh key pairs for k instances of depth levels from
// rng, appending the halves to x0/x1 in (instance, level) order. Keys are
// drawn in a fixed serial order so a deterministic rng yields identical
// wire bytes run to run.
func drawTreeKeys(rng io.Reader, k, depth int, x0, x1 [][]byte) ([][][2][]byte, [][]byte, [][]byte, error) {
	keys := make([][][2][]byte, k)
	for i := 0; i < k; i++ {
		keys[i] = make([][2][]byte, depth)
		for j := 0; j < depth; j++ {
			for b := 0; b < 2; b++ {
				key := make([]byte, treeKeyLen)
				if _, err := io.ReadFull(rng, key); err != nil {
					return nil, nil, nil, err
				}
				keys[i][j][b] = key
			}
			x0 = append(x0, keys[i][j][0])
			x1 = append(x1, keys[i][j][1])
		}
	}
	return keys, x0, x1, nil
}

// encryptInstances writes the k×n ciphertext block of one sample into dst
// (k·n·msgLen bytes, instance-major): message m is encrypted under
// instance i's key path for index m.
func encryptInstances(pad PadFunc, keys [][][2][]byte, msgs [][]byte, depth int, dst []byte) {
	k := len(keys)
	n := len(msgs)
	msgLen := len(msgs[0])
	path := make([][]byte, depth)
	for i := 0; i < k; i++ {
		for m := 0; m < n; m++ {
			for j := 0; j < depth; j++ {
				path[j] = keys[i][j][(m>>j)&1]
			}
			pad.treePadXor(dst[(i*n+m)*msgLen:(i*n+m+1)*msgLen], msgs[m], path, m)
		}
	}
}

// checkUniformLen verifies all messages share one length.
func checkUniformLen(msgs [][]byte) error {
	for _, m := range msgs[1:] {
		if len(m) != len(msgs[0]) {
			return ErrMessageLen
		}
	}
	return nil
}

// ExtKofNRespond answers one query: the sender's messages (all the same
// length) are encrypted per instance under fresh tree keys, and the keys
// are delivered through the extended 1-of-2 batch.
func ExtKofNRespond(s *IKNPSender, req *ExtKofNRequest, msgs [][]byte, rng io.Reader) (*ExtKofNResponse, error) {
	if req == nil || req.IKNP == nil {
		return nil, fmt.Errorf("%w: nil request", ErrIKNP)
	}
	n := len(msgs)
	if n != req.N || n < 2 {
		return nil, fmt.Errorf("%w: %d messages for declared n=%d", ErrIKNP, n, req.N)
	}
	if err := checkUniformLen(msgs); err != nil {
		return nil, err
	}
	depth := treeDepth(n)
	k := req.K
	if k < 1 || k > n || req.IKNP.M != k*depth {
		return nil, fmt.Errorf("%w: batch size %d for k=%d depth=%d", ErrIKNP, req.IKNP.M, k, depth)
	}
	// Fresh key pairs per (instance, level); x0/x1 feed the extension.
	keys, x0, x1, err := drawTreeKeys(rng, k, depth, make([][]byte, 0, k*depth), make([][]byte, 0, k*depth))
	if err != nil {
		return nil, err
	}
	iknpResp, err := s.Respond(req.IKNP, x0, x1)
	if err != nil {
		return nil, err
	}
	msgLen := len(msgs[0])
	cts := make([]byte, k*n*msgLen)
	span := obs.Start(obs.PhaseOTPad)
	encryptInstances(s.pad, keys, msgs, depth, cts)
	span.End()
	return &ExtKofNResponse{IKNP: iknpResp, Cts: cts, MsgLen: msgLen}, nil
}

// recoverSample decrypts one sample's chosen messages from its flat
// ciphertext block, given that sample's path keys in (instance, level)
// order.
func recoverSample(pad PadFunc, cts []byte, msgLen int, pathKeys [][]byte, indices []int, n, depth int) ([][]byte, error) {
	if msgLen < 0 || len(cts) != len(indices)*n*msgLen {
		return nil, fmt.Errorf("%w: ciphertext block length %d for k=%d n=%d msgLen=%d", ErrIKNP, len(cts), len(indices), n, msgLen)
	}
	out := make([][]byte, len(indices))
	flat := make([]byte, len(indices)*msgLen)
	path := make([][]byte, depth)
	for i, idx := range indices {
		for j := 0; j < depth; j++ {
			key := pathKeys[i*depth+j]
			if len(key) != treeKeyLen {
				return nil, fmt.Errorf("%w: instance %d level %d key length", ErrIKNP, i, j)
			}
			path[j] = key
		}
		ct := cts[(i*n+idx)*msgLen : (i*n+idx+1)*msgLen]
		x := flat[i*msgLen : (i+1)*msgLen]
		pad.treePadXor(x, ct, path, idx)
		out[i] = x
	}
	return out, nil
}

// Recover decrypts the query's chosen messages, in index order.
func (q *ExtKofNQuery) Recover(resp *ExtKofNResponse) ([][]byte, error) {
	if resp == nil || resp.IKNP == nil {
		return nil, fmt.Errorf("%w: bad response", ErrIKNP)
	}
	pathKeys, err := q.ext.Recover(resp.IKNP)
	if err != nil {
		return nil, err
	}
	return recoverSample(q.pad, resp.Cts, resp.MsgLen, pathKeys, q.indices, q.n, q.depth)
}

// Batched k-of-n: one IKNP Extend call covers all B samples' choice bits,
// so a whole batch of transfers costs a single extension round — B·k·⌈log₂
// n⌉ extended 1-of-2 transfers in one message pair. Each sample keeps its
// own fresh tree keys and ciphertext matrix; nothing is shared between
// samples beyond the (already index-hiding) extension columns, so the
// per-sample secrecy argument is exactly the single-query one.

// ExtKofNBatchRequest is the receiver's one message for B samples.
type ExtKofNBatchRequest struct {
	IKNP *IKNPReceiverMsg
	// K and N are the per-sample transfer shape; B is the sample count.
	K, N, B int
}

// ExtKofNBatchResponse is the sender's one message for B samples.
type ExtKofNBatchResponse struct {
	IKNP *IKNPSenderMsg
	// Cts concatenates every sample's flat k×n ciphertext block (see
	// ExtKofNResponse.Cts) in batch order: sample b's block starts at
	// b·k·n·MsgLen. One blob instead of B·k·n nested slices keeps the
	// codec's work linear in bytes, not in message count.
	Cts    []byte
	MsgLen int
}

// ExtKofNBatchQuery is the receiver's in-flight batch state.
type ExtKofNBatchQuery struct {
	ext     *IKNPExtension
	indices [][]int
	n       int
	depth   int
	pad     PadFunc
	par     int
}

// NewExtKofNBatchQuery opens B k-of-n transfers — one per index set — over
// a single IKNP extension round. Every sample must select exactly k
// distinct indices out of the same n.
func NewExtKofNBatchQuery(r *IKNPReceiver, n int, indices [][]int) (*ExtKofNBatchQuery, *ExtKofNBatchRequest, error) {
	if len(indices) == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrIKNP)
	}
	k := len(indices[0])
	for b, idx := range indices {
		if len(idx) != k {
			return nil, nil, fmt.Errorf("%w: sample %d selects %d indices, want %d", ErrIKNP, b, len(idx), k)
		}
		if err := checkKofNIndices(n, idx); err != nil {
			return nil, nil, fmt.Errorf("ot: batch sample %d: %w", b, err)
		}
	}
	depth := treeDepth(n)
	choices := make([]int, 0, len(indices)*k*depth)
	kept := make([][]int, len(indices))
	for b, idx := range indices {
		choices = appendPathChoices(choices, idx, depth)
		kept[b] = append([]int(nil), idx...)
	}
	ext, msg, err := r.Extend(choices)
	if err != nil {
		return nil, nil, err
	}
	q := &ExtKofNBatchQuery{ext: ext, indices: kept, n: n, depth: depth, pad: r.pad, par: r.par}
	return q, &ExtKofNBatchRequest{IKNP: msg, K: k, N: n, B: len(indices)}, nil
}

// ExtKofNBatchRespond answers one batch: msgs[b] holds sample b's n
// messages (uniform length within a sample). Fresh tree keys are drawn
// per sample and all B·k·depth key pairs ride one extension response.
func ExtKofNBatchRespond(s *IKNPSender, req *ExtKofNBatchRequest, msgs [][][]byte, rng io.Reader) (*ExtKofNBatchResponse, error) {
	if req == nil || req.IKNP == nil {
		return nil, fmt.Errorf("%w: nil batch request", ErrIKNP)
	}
	if len(msgs) != req.B || req.B < 1 {
		return nil, fmt.Errorf("%w: %d samples for declared B=%d", ErrIKNP, len(msgs), req.B)
	}
	n := req.N
	k := req.K
	depth := treeDepth(n)
	if n < 2 || k < 1 || k > n || req.IKNP.M != req.B*k*depth {
		return nil, fmt.Errorf("%w: batch size %d for B=%d k=%d depth=%d", ErrIKNP, req.IKNP.M, req.B, k, depth)
	}
	msgLen := len(msgs[0][0])
	for b, sample := range msgs {
		if len(sample) != n {
			return nil, fmt.Errorf("%w: sample %d has %d messages for n=%d", ErrIKNP, b, len(sample), n)
		}
		if err := checkUniformLen(sample); err != nil {
			return nil, fmt.Errorf("ot: batch sample %d: %w", b, err)
		}
		if len(sample[0]) != msgLen {
			return nil, fmt.Errorf("%w: sample %d message length %d, want %d across the batch", ErrIKNP, b, len(sample[0]), msgLen)
		}
	}
	perSample := make([][][][2][]byte, 0, req.B)
	x0 := make([][]byte, 0, req.B*k*depth)
	x1 := make([][]byte, 0, req.B*k*depth)
	for b := 0; b < req.B; b++ {
		keys, nx0, nx1, err := drawTreeKeys(rng, k, depth, x0, x1)
		if err != nil {
			return nil, err
		}
		x0, x1 = nx0, nx1
		perSample = append(perSample, keys)
	}
	iknpResp, err := s.Respond(req.IKNP, x0, x1)
	if err != nil {
		return nil, err
	}
	block := k * n * msgLen
	cts := make([]byte, req.B*block)
	// All randomness (tree keys) was drawn serially above, so sharding
	// the per-sample tree encryption across workers is pure arithmetic:
	// the ciphertext blob is bit-identical at every parallelism degree.
	span := obs.Start(obs.PhaseOTPad)
	_ = parallel.For(s.par, req.B, func(b int) error {
		encryptInstances(s.pad, perSample[b], msgs[b], depth, cts[b*block:(b+1)*block])
		return nil
	})
	span.End()
	return &ExtKofNBatchResponse{IKNP: iknpResp, Cts: cts, MsgLen: msgLen}, nil
}

// Recover decrypts every sample's chosen messages, in per-sample index
// order.
func (q *ExtKofNBatchQuery) Recover(resp *ExtKofNBatchResponse) ([][][]byte, error) {
	if resp == nil || resp.IKNP == nil || resp.MsgLen < 0 {
		return nil, fmt.Errorf("%w: bad batch response", ErrIKNP)
	}
	k := 0
	if len(q.indices) > 0 {
		k = len(q.indices[0])
	}
	block := k * q.n * resp.MsgLen
	if len(resp.Cts) != len(q.indices)*block {
		return nil, fmt.Errorf("%w: ciphertext blob length %d for B=%d k=%d n=%d msgLen=%d", ErrIKNP, len(resp.Cts), len(q.indices), k, q.n, resp.MsgLen)
	}
	pathKeys, err := q.ext.Recover(resp.IKNP)
	if err != nil {
		return nil, err
	}
	out := make([][][]byte, len(q.indices))
	span := obs.Start(obs.PhaseOTPad)
	defer span.End()
	k2 := 0
	if len(q.indices) > 0 {
		k2 = len(q.indices[0])
	}
	err = parallel.For(q.par, len(q.indices), func(b int) error {
		idx := q.indices[b]
		stride := b * k2 * q.depth
		got, err := recoverSample(q.pad, resp.Cts[b*block:(b+1)*block], resp.MsgLen, pathKeys[stride:stride+len(idx)*q.depth], idx, q.n, q.depth)
		if err != nil {
			return fmt.Errorf("ot: batch sample %d: %w", b, err)
		}
		out[b] = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
