package ot_test

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/ot"
)

func TestX25519GroupByName(t *testing.T) {
	for _, name := range []string{"x25519", "25519"} {
		g, err := ot.GroupByName(name)
		if err != nil {
			t.Fatalf("GroupByName(%q): %v", name, err)
		}
		if g.Name() != "x25519" {
			t.Fatalf("name = %q", g.Name())
		}
		if g.ElementLen() != 32 {
			t.Fatalf("element len = %d", g.ElementLen())
		}
	}
	found := false
	for _, n := range ot.GroupNames() {
		if n == "x25519" {
			found = true
		}
		if _, err := ot.GroupByName(n); err != nil {
			t.Fatalf("GroupNames lists unresolvable %q: %v", n, err)
		}
	}
	if !found {
		t.Fatal("GroupNames omits x25519")
	}
}

// TestX25519GroupOps checks the DDH-group contract the Naor–Pinkas
// construction relies on: ExpG agrees with Exp on the generator's image,
// Mul/Inv cancel, and exponent arithmetic is homomorphic.
func TestX25519GroupOps(t *testing.T) {
	g := ot.X25519()
	a, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ga := g.ExpG(a)
	gb := g.ExpG(b)
	if !g.ValidElement(ga) || !g.ValidElement(gb) {
		t.Fatal("generator powers not valid elements")
	}
	// (g^a)^b == (g^b)^a == g^(ab)
	ab := g.Exp(ga, b)
	ba := g.Exp(gb, a)
	if ab.Cmp(ba) != 0 {
		t.Fatal("Exp not commutative in the exponent")
	}
	// g^a · g^b == g^(a+b)
	sum := g.Mul(ga, gb)
	if sum.Cmp(g.ExpG(new(big.Int).Add(a, b))) != 0 {
		t.Fatal("Mul does not match exponent addition")
	}
	// g^a · (g^a)^{-1} is the identity, and multiplying by it is a no-op.
	inv, err := g.Inv(ga)
	if err != nil {
		t.Fatal(err)
	}
	id := g.Mul(ga, inv)
	if got := g.Mul(gb, id); got.Cmp(gb) != 0 {
		t.Fatal("identity element not neutral")
	}
	// Random elements are valid and do not repeat.
	e1, err := g.RandomElementSeed(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	el := g.ElementFromSeed(e1)
	if !g.ValidElement(el) {
		t.Fatal("sampled element invalid")
	}
}

func TestX25519ValidElementRejects(t *testing.T) {
	g := ot.X25519()
	if g.ValidElement(nil) {
		t.Fatal("nil accepted")
	}
	if g.ValidElement(new(big.Int).Lsh(big.NewInt(1), 260)) {
		t.Fatal("out-of-range accepted")
	}
	if g.ValidElement(new(big.Int).Neg(big.NewInt(5))) {
		t.Fatal("negative accepted")
	}
	// Scan a few small integers: any off-curve y must be rejected.
	rejected := 0
	for v := int64(0); v < 32; v++ {
		if !g.ValidElement(big.NewInt(v)) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no small invalid encodings rejected")
	}
}

// TestIKNPOverX25519 runs the OT extension's curve-based base phase end to
// end: 128 base transfers on edwards25519, then an extended batch.
func TestIKNPOverX25519(t *testing.T) {
	g := ot.X25519()
	send, recv, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	const m = 33
	choices := make([]int, m)
	x0 := make([][]byte, m)
	x1 := make([][]byte, m)
	for j := 0; j < m; j++ {
		choices[j] = j % 2
		x0[j] = []byte{byte(j), 0xaa}
		x1[j] = []byte{byte(j), 0xbb}
	}
	ext, msg, err := recv.Extend(choices)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := send.Respond(msg, x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ext.Recover(reply)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m; j++ {
		want := x0[j]
		if choices[j] == 1 {
			want = x1[j]
		}
		if !bytes.Equal(got[j], want) {
			t.Fatalf("transfer %d: got %x want %x", j, got[j], want)
		}
	}
}

// BenchmarkIKNPBase prices the per-session base phase on each backend —
// the setup cost the limb+x25519 configuration is built to kill.
func BenchmarkIKNPBase(b *testing.B) {
	for _, g := range []ot.Group{ot.Group512Test(), ot.Group2048(), ot.X25519()} {
		b.Run(g.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ot.NewIKNP(g, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
