// Package ot implements the oblivious transfer protocols of paper §III-B:
// 1-out-of-2, 1-out-of-n, and k-out-of-n transfers in the Naor–Pinkas
// style over DDH groups. The k-out-of-n form is the primitive OMPE uses to
// deliver the receiver's m genuine evaluations out of M = m·k pairs
// (§IV-A.3) without revealing which indices were genuine.
//
// The k-out-of-n transfer is realized as k parallel 1-out-of-n instances,
// which has identical functionality and privacy in the honest-but-curious
// model the paper assumes (the receiver is trusted to pick distinct
// indices; a malicious-receiver variant would need the Chu–Tzeng
// construction the paper cites).
//
// Two DDH group backends are provided: the classic safe-prime MODP
// subgroups the paper benchmarks against (ModpGroup), and the edwards25519
// prime-order subgroup (X25519Group), whose scalar multiplications are
// microseconds instead of milliseconds. Both present group elements to
// this package as *big.Int — for the curve, the integer is the 32-byte
// compressed point encoding — so every protocol message, serialization,
// and key-derivation path is backend-agnostic.
package ot

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Group is a DDH group for the Naor–Pinkas transfers. Elements and
// scalars travel as *big.Int (see the package comment for the curve
// encoding); implementations must be safe for concurrent use.
//
// Element sampling is split into a cheap seed draw and an expensive
// finish so batch constructors can consume the rng serially — keeping the
// stream, and hence the wire bytes, deterministic at any parallelism
// degree — while fanning the heavy part out to workers:
// RandomElementSeed consumes the rng, ElementFromSeed is pure.
type Group interface {
	// Name returns the flag-friendly group identifier.
	Name() string
	// Bits returns the bit size of the underlying field modulus.
	Bits() int
	// ElementLen returns the fixed byte length of a serialized element.
	ElementLen() int
	// Exp returns base^e (multiplicative notation; scalar multiplication
	// for curve backends). base must satisfy ValidElement.
	Exp(base, e *big.Int) *big.Int
	// ExpG returns g^e for the group generator, typically via a fixed-base
	// table.
	ExpG(e *big.Int) *big.Int
	// Mul returns the group product a·b of two valid elements.
	Mul(a, b *big.Int) *big.Int
	// Inv returns the group inverse of a valid element.
	Inv(a *big.Int) (*big.Int, error)
	// ValidElement reports whether x decodes to a group element.
	ValidElement(x *big.Int) bool
	// RandomScalar samples a uniform non-zero exponent.
	RandomScalar(rng io.Reader) (*big.Int, error)
	// RandomElementSeed draws the serial randomness behind one element.
	RandomElementSeed(rng io.Reader) (*big.Int, error)
	// ElementFromSeed deterministically finishes a seed into a uniform
	// group element. It must be safe to call from multiple goroutines.
	ElementFromSeed(seed *big.Int) *big.Int
}

// randomElement samples a uniform group element (seed + finish in one
// step, for the serial construction paths).
func randomElement(g Group, rng io.Reader) (*big.Int, error) {
	seed, err := g.RandomElementSeed(rng)
	if err != nil {
		return nil, err
	}
	return g.ElementFromSeed(seed), nil
}

// ModpGroup is a subgroup of Z_p^* of prime order q = (p-1)/2 for a safe
// prime p, with generator g. All built-in groups use g = 2, which
// generates the order-q subgroup because their primes satisfy p ≡ 7
// (mod 8).
//
// A ModpGroup must be used by pointer (it carries a lazily built
// fixed-base exponentiation table guarded by a sync.Once); all methods
// are safe for concurrent use.
type ModpGroup struct {
	// P is the safe-prime modulus.
	P *big.Int
	// Q is the subgroup order (P-1)/2.
	Q *big.Int
	// G is the subgroup generator.
	G *big.Int

	name string

	fixedBase fixedBaseTable
}

// Built-in group moduli. Group512TestHex offers fast benchmarks and tests
// at toy security; the others are the RFC 2409 / RFC 3526 MODP groups.
const (
	// Group512TestHex is a locally generated 512-bit safe prime. TOY
	// SECURITY — benchmarks and tests only.
	Group512TestHex = "e61075b1c3282dc0ad77be6ffbb3a55b46d9a86430680b1b2b8b7045b2807dd370d5c65159b5ff757373ce1dc53da775de56d86eda471148ec231ead25c4c467"

	// Group1024Hex is the RFC 2409 Oakley Group 2 prime (legacy security).
	Group1024Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
		"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
		"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF"

	// Group1536Hex is the RFC 3526 group 5 prime.
	Group1536Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
		"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
		"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05" +
		"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB" +
		"9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

	// Group2048Hex is the RFC 3526 group 14 prime.
	Group2048Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
		"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
		"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05" +
		"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB" +
		"9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
		"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718" +
		"3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"
)

var errBadGroupHex = errors.New("ot: invalid built-in group modulus")

func newModpGroup(name, hexP string) *ModpGroup {
	p, ok := new(big.Int).SetString(strings.ToLower(hexP), 16)
	if !ok {
		panic(errBadGroupHex) // compile-time constants, validated by tests
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &ModpGroup{P: p, Q: q, G: big.NewInt(2), name: name}
}

// Group512Test returns the 512-bit toy group for tests and benchmarks.
func Group512Test() *ModpGroup { return newModpGroup("modp512-test", Group512TestHex) }

// Group1024 returns the RFC 2409 Oakley Group 2 (legacy security).
func Group1024() *ModpGroup { return newModpGroup("modp1024", Group1024Hex) }

// Group1536 returns the RFC 3526 group 5.
func Group1536() *ModpGroup { return newModpGroup("modp1536", Group1536Hex) }

// Group2048 returns the RFC 3526 group 14, the recommended MODP default.
func Group2048() *ModpGroup { return newModpGroup("modp2048", Group2048Hex) }

// GroupByName resolves a group by its flag-friendly name.
func GroupByName(name string) (Group, error) {
	switch name {
	case "modp512-test", "512":
		return Group512Test(), nil
	case "modp1024", "1024":
		return Group1024(), nil
	case "modp1536", "1536":
		return Group1536(), nil
	case "modp2048", "2048":
		return Group2048(), nil
	case "x25519", "25519":
		return X25519(), nil
	default:
		return nil, fmt.Errorf("ot: unknown group %q", name)
	}
}

// GroupNames lists the resolvable group names (canonical spellings), for
// flag help and sweeps.
func GroupNames() []string {
	return []string{"modp512-test", "modp1024", "modp1536", "modp2048", "x25519"}
}

// Name returns the group's identifier.
func (g *ModpGroup) Name() string { return g.name }

// Bits returns the modulus bit length.
func (g *ModpGroup) Bits() int { return g.P.BitLen() }

// ElementLen returns the fixed byte length of a serialized group element.
func (g *ModpGroup) ElementLen() int { return (g.P.BitLen() + 7) / 8 }

// Exp returns base^e mod P.
func (g *ModpGroup) Exp(base, e *big.Int) *big.Int {
	obs.Add(obs.CtrGroupExp, 1)
	return new(big.Int).Exp(base, e, g.P)
}

// fixedBaseWindow is the digit width (bits) of the fixed-base table. Width
// 4 costs (2^4 − 1)·⌈|q|/4⌉ stored elements (≈2 MB for the 2048-bit group,
// built once per Group value) and answers g^e in ⌈|q|/4⌉ modular
// multiplications with no squarings — about 5× fewer multiplications than
// generic square-and-multiply.
const fixedBaseWindow = 4

// fixedBaseTable caches windowed powers of the generator:
// windows[j][v-1] = g^(v·2^(j·w)) for v in [1, 2^w).
type fixedBaseTable struct {
	once    sync.Once
	windows [][]*big.Int
}

func (g *ModpGroup) buildFixedBase() {
	const w = fixedBaseWindow
	nWindows := (g.Q.BitLen() + w - 1) / w
	windows := make([][]*big.Int, nWindows)
	base := new(big.Int).Set(g.G)
	for j := range windows {
		row := make([]*big.Int, (1<<w)-1)
		row[0] = new(big.Int).Set(base)
		for v := 2; v < 1<<w; v++ {
			row[v-1] = g.Mul(row[v-2], base)
		}
		windows[j] = row
		// Advance to the next window's base: base^(2^w) = base^(2^w−1)·base.
		base = g.Mul(row[len(row)-1], base)
	}
	g.fixedBase.windows = windows
}

// ExpG returns g^e for e >= 0 using the lazily built fixed-base window
// table. One batch OT run performs a g^r or g^x exponentiation per
// instance; they all share this table. Exponents beyond the subgroup
// order's bit length fall back to generic Exp.
func (g *ModpGroup) ExpG(e *big.Int) *big.Int {
	if e.Sign() < 0 {
		return g.Exp(g.G, e)
	}
	obs.Add(obs.CtrGroupExp, 1)
	g.fixedBase.once.Do(g.buildFixedBase)
	const w = fixedBaseWindow
	windows := g.fixedBase.windows
	if e.BitLen() > len(windows)*w {
		return new(big.Int).Exp(g.G, e, g.P) // already counted above
	}
	acc := big.NewInt(1)
	tmp := new(big.Int)
	for j := 0; j*w < e.BitLen(); j++ {
		v := uint(0)
		for b := 0; b < w; b++ {
			v |= e.Bit(j*w+b) << b
		}
		if v != 0 {
			tmp.Mul(acc, windows[j][v-1])
			acc.Mod(tmp, g.P)
		}
	}
	return acc
}

// Mul returns a*b mod P.
func (g *ModpGroup) Mul(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), g.P)
}

// Inv returns a^{-1} mod P.
func (g *ModpGroup) Inv(a *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(a, g.P)
	if inv == nil {
		return nil, fmt.Errorf("ot: %v not invertible in group", a)
	}
	return inv, nil
}

// ValidElement reports whether x is in [1, P).
func (g *ModpGroup) ValidElement(x *big.Int) bool {
	return x != nil && x.Sign() > 0 && x.Cmp(g.P) < 0
}

// Equal reports whether two MODP groups share the same parameters.
func (g *ModpGroup) Equal(other *ModpGroup) bool {
	return other != nil && g.P.Cmp(other.P) == 0 && g.G.Cmp(other.G) == 0
}

// RandomScalar samples a uniform exponent in [1, q).
func (g *ModpGroup) RandomScalar(rng io.Reader) (*big.Int, error) {
	qm1 := new(big.Int).Sub(g.Q, big.NewInt(1))
	x, err := rand.Int(rng, qm1)
	if err != nil {
		return nil, fmt.Errorf("ot: sample exponent: %w", err)
	}
	return x.Add(x, big.NewInt(1)), nil
}

// RandomElementSeed draws a uniform element of Z_p^*; squaring it lands in
// the order-q subgroup (squares form the subgroup for a safe prime).
func (g *ModpGroup) RandomElementSeed(rng io.Reader) (*big.Int, error) {
	pm1 := new(big.Int).Sub(g.P, big.NewInt(1))
	x, err := rand.Int(rng, pm1)
	if err != nil {
		return nil, fmt.Errorf("ot: sample element: %w", err)
	}
	return x.Add(x, big.NewInt(1)), nil
}

// ElementFromSeed squares the seed into the subgroup.
func (g *ModpGroup) ElementFromSeed(seed *big.Int) *big.Int {
	return g.Mul(seed, seed)
}
