package ot_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"repro/internal/ot"
)

// BenchmarkDirect1ofN vs BenchmarkTree1ofN quantify the crossover between
// the direct Naor–Pinkas construction (n+1 exponentiations) and the tree
// construction (≈3·log₂ n exponentiations + n hashes). OMPE uses the
// direct form because its message counts are small (M = m·k ≈ 6–36);
// the tree form wins once M grows past a few dozen.

func benchMessages(b *testing.B, n int) [][]byte {
	b.Helper()
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = make([]byte, 32)
		if _, err := rand.Read(msgs[i]); err != nil {
			b.Fatal(err)
		}
	}
	return msgs
}

func BenchmarkDirect1ofN(b *testing.B) {
	g := ot.Group512Test()
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			msgs := benchMessages(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ot.Transfer1ofN(g, msgs, i%n, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTree1ofN(b *testing.B) {
	g := ot.Group512Test()
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			msgs := benchMessages(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ot.Transfer1ofNTree(g, msgs, i%n, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKofN(b *testing.B) {
	g := ot.Group512Test()
	msgs := benchMessages(b, 6)
	indices := []int{0, 2, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ot.TransferKofN(g, msgs, indices, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(indices))*float64(b.N)/b.Elapsed().Seconds(), "transfers/s")
}

// BenchmarkKofNParallel sweeps the worker-pool bound on a wide batch
// (k=16 of n=64). Per-instance exponentiations dominate, so throughput
// should scale with cores until the pool saturates them; par=1 is the
// serial baseline.
func BenchmarkKofNParallel(b *testing.B) {
	g := ot.Group512Test()
	msgs := benchMessages(b, 64)
	indices := make([]int, 16)
	for i := range indices {
		indices[i] = i * 4
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ot.TransferKofNParallel(g, msgs, indices, par, rand.Reader); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(indices))*float64(b.N)/b.Elapsed().Seconds(), "transfers/s")
		})
	}
}

// BenchmarkExpG prices the fixed-base window table against generic
// square-and-multiply for the generator exponentiations every OT instance
// performs.
func BenchmarkExpG(b *testing.B) {
	g := ot.Group512Test()
	e, err := rand.Int(rand.Reader, g.Q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fixed-base", func(b *testing.B) {
		g.ExpG(e) // build the table outside the timed region
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ExpG(e)
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Exp(g.G, e)
		}
	})
}

// BenchmarkIKNPBatch1of2 vs BenchmarkDirectBatch1of2: the amortization
// argument for OT extension. The base phase (κ=128 public-key OTs) is
// setup cost paid once per session; each extended batch is pure symmetric
// crypto.
func BenchmarkIKNPBatch1of2(b *testing.B) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	const m = 1024
	choices := make([]int, m)
	x0 := make([][]byte, m)
	x1 := make([][]byte, m)
	for j := 0; j < m; j++ {
		choices[j] = j % 2
		x0[j] = make([]byte, 32)
		x1[j] = make([]byte, 32)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, msg, err := receiver.Extend(choices)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := sender.Respond(msg, x0, x1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ext.Recover(resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectBatch1of2(b *testing.B) {
	g := ot.Group512Test()
	msgs := [2][]byte{make([]byte, 32), make([]byte, 32)}
	const m = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < m; j++ {
			if _, err := ot.Transfer1of2(g, msgs, j%2, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIKNPBasePhase(b *testing.B) {
	g := ot.Group512Test()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ot.NewIKNP(g, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
