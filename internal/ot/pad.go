package ot

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// PadFunc names the symmetric pad family a session's OT extension uses for
// its correlation-robust row hashes and tree-key pads. It is negotiated in
// the transport Hello alongside the group, field backend, and wire codec:
// the client offers a set, the server grants one, and both endpoints must
// derive identical pads or every transfer decrypts to garbage.
//
//   - PadSHA256 is the legacy pad: one SHA-256 compression per row/tree
//     pad (rowHashXor, treePadXor). It is the implied default when a peer's
//     Hello predates pad negotiation, so committed golden transcripts and
//     old binaries keep interoperating byte-for-byte.
//   - PadAES is the fixed-key AES pad: a single AES-128 call per 16-byte
//     block through a Matyas–Meyer–Oseas compression under one process-wide
//     fixed key (crypto/aes, AES-NI on amd64). Security rests on the usual
//     fixed-key-AES-as-random-permutation model for correlation-robust
//     hashing from the OT-extension literature (Guo et al. 2019 analyze
//     exactly this family); the semi-honest setting here needs nothing
//     stronger. It exists because the SHA-256 pads dominate the serving
//     profile once field arithmetic runs on the limb backend.
type PadFunc string

const (
	// PadSHA256 is the legacy SHA-256 pad (the zero value "" means the
	// same, so un-negotiated sessions land here).
	PadSHA256 PadFunc = "sha256"
	// PadAES is the fixed-key AES-128 MMO pad.
	PadAES PadFunc = "aes"
)

// ErrPadFunc reports an unknown or un-offered pad function.
var ErrPadFunc = errors.New("ot: unsupported pad function")

// ResolvePad maps a flag/wire string to a PadFunc ("" selects the legacy
// SHA-256 pad).
func ResolvePad(name string) (PadFunc, error) {
	switch name {
	case "", string(PadSHA256):
		return PadSHA256, nil
	case string(PadAES):
		return PadAES, nil
	}
	return "", fmt.Errorf("%w: %q", ErrPadFunc, name)
}

// SupportedPads lists every pad this build implements, preference-last
// (legacy first) so an unordered membership check reads naturally.
func SupportedPads() []string {
	return []string{string(PadSHA256), string(PadAES)}
}

// rowPadXor writes dst = src ⊕ H_pad(j, row) for one extended transfer.
func (p PadFunc) rowPadXor(dst, src []byte, j int, row []byte) {
	if p == PadAES {
		rowPadXorAES(dst, src, j, row)
		return
	}
	rowHashXor(dst, src, j, row)
}

// treePadXor writes dst = src ⊕ pad(path, index) for one tree ciphertext.
func (p PadFunc) treePadXor(dst, src []byte, path [][]byte, index int) {
	if p == PadAES {
		treePadXorAES(dst, src, path, index)
		return
	}
	treePadXor(dst, src, path, index)
}

// padAESKey fixes the process-wide AES key: pads need no secrecy in the
// key itself (the row/path inputs carry the secret), only a public random
// permutation, so a published constant is exactly right and lets every
// session share one expanded key schedule.
var padAES cipher.Block

func init() {
	sum := sha256.Sum256([]byte("ppdc-ot-pad-aes-v1"))
	blk, err := aes.NewCipher(sum[:16])
	if err != nil {
		panic(err) // unreachable: 16-byte key
	}
	padAES = blk
}

// mmoScratch holds the block buffers one pad derivation cycles through.
// cipher.Block is an interface, so any buffer handed to Encrypt escapes;
// keeping the buffers in a pooled heap object turns what would be one
// 16-byte allocation per AES call (over a million per benchmark run) into
// one pool round trip per pad invocation.
type mmoScratch struct {
	x, y [aes.BlockSize]byte
}

var mmoPool = sync.Pool{New: func() any { return new(mmoScratch) }}

// compress computes the Matyas–Meyer–Oseas compression y = E(x) ⊕ x under
// the fixed key, reading s.x and writing s.y.
func (s *mmoScratch) compress() {
	padAES.Encrypt(s.y[:], s.x[:])
	for i := range s.y {
		s.y[i] ^= s.x[i]
	}
}

// mmoBlock computes one MMO compression into dst (dst may alias x). Used
// by tests and one-off derivations; the hot loops drive mmoScratch
// directly.
func mmoBlock(dst, x *[aes.BlockSize]byte) {
	s := mmoPool.Get().(*mmoScratch)
	s.x = *x
	s.compress()
	*dst = s.y
	mmoPool.Put(s)
}

// rowPadXorAES is the AES row pad: block i of the pad is the MMO
// compression of the 16-byte row with the tweak (j, i) folded in, so one
// AES call covers a 16-byte payload (the tree keys every fast-session
// transfer actually carries) and two cover a 32-byte field element.
func rowPadXorAES(dst, src []byte, j int, row []byte) {
	if len(row) != iknpRowBytes {
		// Row width is fixed by the extension; anything else is a caller
		// bug, but fall back to the generic derivation rather than panic.
		rowHashXor(dst, src, j, row)
		return
	}
	s := mmoPool.Get().(*mmoScratch)
	for off := 0; off < len(src); off += aes.BlockSize {
		copy(s.x[:], row)
		s.x[0] ^= byte(uint32(j))
		s.x[1] ^= byte(uint32(j) >> 8)
		s.x[2] ^= byte(uint32(j) >> 16)
		s.x[3] ^= byte(uint32(j) >> 24)
		s.x[4] ^= byte(off / aes.BlockSize)
		s.compress()
		n := len(src) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		for b := 0; b < n; b++ {
			dst[off+b] = src[off+b] ^ s.y[b]
		}
	}
	mmoPool.Put(s)
}

// treePadXorAES is the AES tree pad: the path keys are absorbed through an
// MMO Merkle–Damgård chain (one AES call per 16-byte level key), then the
// digest is expanded with the (index, counter) tweak — one more AES call
// per 16 payload bytes.
func treePadXorAES(dst, src []byte, path [][]byte, index int) {
	for _, k := range path {
		if len(k) != treeKeyLen {
			// Tree keys are fixed-width by construction; fall back to the
			// generic SHA derivation for robustness on malformed input.
			treePadXor(dst, src, path, index)
			return
		}
	}
	s := mmoPool.Get().(*mmoScratch)
	var h [aes.BlockSize]byte
	for _, k := range path {
		for i := 0; i < aes.BlockSize; i++ {
			s.x[i] = h[i] ^ k[i]
		}
		s.compress()
		h = s.y
	}
	for off := 0; off < len(src); off += aes.BlockSize {
		s.x = h
		s.x[0] ^= byte(uint32(index))
		s.x[1] ^= byte(uint32(index) >> 8)
		s.x[2] ^= byte(uint32(index) >> 16)
		s.x[3] ^= byte(uint32(index) >> 24)
		s.x[4] ^= byte(off / aes.BlockSize)
		s.compress()
		n := len(src) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		for b := 0; b < n; b++ {
			dst[off+b] = src[off+b] ^ s.y[b]
		}
	}
	mmoPool.Put(s)
}
