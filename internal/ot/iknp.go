package ot

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// IKNP oblivious-transfer extension (Ishai–Kilian–Nissim–Petrank, semi-
// honest variant): m 1-out-of-2 transfers for the price of κ = 128 base
// transfers plus symmetric crypto. The roles of the base phase are
// reversed — the OT-extension SENDER acts as the base-OT *receiver* with a
// random choice vector s, and the OT-extension RECEIVER acts as the base-
// OT *sender* with random seed pairs.
//
// Protocol (column i < κ, row j < m):
//
//	receiver: seeds (k0_i, k1_i); t_i = G(k0_i); u_i = t_i ⊕ G(k1_i) ⊕ r
//	sender:   learns k(s_i)_i by base OT; q_i = G(k(s_i)_i) ⊕ s_i·u_i
//	          ⇒ row q_j = t_j ⊕ r_j·s
//	sender:   y0_j = x0_j ⊕ H(j, q_j); y1_j = x1_j ⊕ H(j, q_j ⊕ s)
//	receiver: x(r_j)_j = y(r_j)_j ⊕ H(j, t_j)
//
// The PRG G is AES-128 in counter mode (the 16-byte seeds are AES keys,
// each expanded through a cipher built once per session), columns are
// turned into rows with an 8×8 bit-block transpose, and the correlation-
// robust hash H is a single SHA-256 compression for the common short
// messages — together these keep the extension's per-transfer cost to a
// few dozen nanoseconds of symmetric work.

// iknpKappa is the computational security parameter (base-OT count).
const iknpKappa = 128

// iknpRowBytes is the packed size of one transposed row (κ bits).
const iknpRowBytes = iknpKappa / 8

// ErrIKNP reports malformed extension-protocol messages.
var ErrIKNP = errors.New("ot: malformed IKNP message")

// IKNPReceiverMsg carries the receiver's masked columns u_1..u_κ.
type IKNPReceiverMsg struct {
	// U holds κ packed bit-columns of ⌈m/8⌉ bytes each, concatenated in
	// column order — one flat blob so the codec moves it as a single
	// byte-slice instead of κ separate ones.
	U []byte
	// M is the number of extended transfers.
	M int
}

// IKNPSenderMsg carries the sender's ciphertext pairs: m rows of MsgLen
// bytes each, row-major, one flat blob per column of the pair.
type IKNPSenderMsg struct {
	Y0     []byte
	Y1     []byte
	MsgLen int
}

// IKNPSender is the OT-extension sender: it inputs m message pairs and
// runs the base phase as a base-OT receiver with random choice bits.
type IKNPSender struct {
	s       []byte // κ choice bits, packed
	ciphers []cipher.Block
	seeds   []byte  // κ recovered base seeds, flat 16-byte rows (kept for Snapshot)
	batch   uint32  // lockstep batch counter: fresh PRG columns per batch
	pad     PadFunc // negotiated row/tree pad family
	par     int     // parallelism degree for the pure fan-out regions

	// Per-batch scratch reused across Respond calls (the response only
	// references its own fresh Y0/Y1 buffers, never these).
	qFlat []byte
	rows  []byte

	baseReceivers []*Receiver // base-phase state, nil once finished
}

// IKNPReceiver is the OT-extension receiver: it inputs m choice bits and
// runs the base phase as a base-OT sender of seed pairs.
type IKNPReceiver struct {
	seed0    [][]byte
	seed1    [][]byte
	ciphers0 []cipher.Block
	ciphers1 []cipher.Block
	batch    uint32  // lockstep batch counter: fresh PRG columns per batch
	pad      PadFunc // negotiated row/tree pad family
	par      int     // parallelism degree for the pure fan-out regions

	baseSenders []*Sender // base-phase state, nil once finished
}

// IKNPExtension is the receiver-side state of one Extend batch. Each
// batch's choice bits and PRG columns live here rather than on the
// receiver, so several batches can be in flight at once: the caller may
// issue Extend for batch n+1 before recovering batch n, as long as the
// sender answers batches in Extend order (its lockstep batch counter must
// advance in the same sequence).
type IKNPExtension struct {
	r   []byte // m choice bits, packed
	m   int
	t   [][]byte // κ columns of m bits
	pad PadFunc  // copied from the receiver at Extend time
	par int
}

// Base-phase messages: κ parallel 1-of-2 transfers in which the
// OT-extension receiver plays the base-OT sender of its seed pairs. Three
// messages total, so the base phase fits one round trip plus one message
// over a transport.
type (
	// IKNPBaseSetup is the extension receiver's first message.
	IKNPBaseSetup struct{ Setups []*SenderSetup }
	// IKNPBaseChoice is the extension sender's reply (choices under its
	// secret vector s).
	IKNPBaseChoice struct{ Choices []*ReceiverChoice }
	// IKNPBaseTransfer completes the seed delivery.
	IKNPBaseTransfer struct{ Transfers []*SenderTransfer }
)

// SetPad selects the pad family this endpoint derives row hashes and tree
// pads with. Both endpoints of a session must agree (the transport
// negotiates it in the Hello); the zero value is the legacy SHA-256 pad.
func (s *IKNPSender) SetPad(pad PadFunc) { s.pad = pad }

// SetPad selects the receiver's pad family (see IKNPSender.SetPad).
func (r *IKNPReceiver) SetPad(pad PadFunc) { r.pad = pad }

// SetParallelism bounds the worker fan-out of the sender's pure crypto
// regions (PRG fills, row pads, tree encryption). Randomness is never
// drawn inside those regions, so wire bytes are bit-identical at every
// setting; 1 (or 0 meaning all cores, per parallel.Degree) is always safe.
func (s *IKNPSender) SetParallelism(n int) { s.par = n }

// SetParallelism bounds the receiver's pure fan-out regions.
func (r *IKNPReceiver) SetParallelism(n int) { r.par = n }

// NewIKNPReceiverBase creates the extension receiver and its base-phase
// setup message (it acts as the base-OT sender of κ seed pairs).
func NewIKNPReceiverBase(group Group, rng io.Reader) (*IKNPReceiver, *IKNPBaseSetup, error) {
	// The base phase runs κ real Naor–Pinkas 1-of-2 instances; count them
	// like the direct batch path does, so session metrics show the base-OT
	// work the extension amortizes.
	obs.Add(obs.CtrOTInstances, iknpKappa)
	recv := &IKNPReceiver{
		seed0:    make([][]byte, iknpKappa),
		seed1:    make([][]byte, iknpKappa),
		ciphers0: make([]cipher.Block, iknpKappa),
		ciphers1: make([]cipher.Block, iknpKappa),
	}
	recv.baseSenders = make([]*Sender, iknpKappa)
	setups := make([]*SenderSetup, iknpKappa)
	for i := 0; i < iknpKappa; i++ {
		recv.seed0[i] = make([]byte, treeKeyLen)
		recv.seed1[i] = make([]byte, treeKeyLen)
		if _, err := io.ReadFull(rng, recv.seed0[i]); err != nil {
			return nil, nil, err
		}
		if _, err := io.ReadFull(rng, recv.seed1[i]); err != nil {
			return nil, nil, err
		}
		var err error
		if recv.ciphers0[i], err = aes.NewCipher(recv.seed0[i]); err != nil {
			return nil, nil, err
		}
		if recv.ciphers1[i], err = aes.NewCipher(recv.seed1[i]); err != nil {
			return nil, nil, err
		}
		s, setup, err := NewSender(group, [][]byte{recv.seed0[i], recv.seed1[i]}, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: iknp base sender %d: %w", i, err)
		}
		recv.baseSenders[i] = s
		setups[i] = setup
	}
	return recv, &IKNPBaseSetup{Setups: setups}, nil
}

// NewIKNPSenderBase creates the extension sender from the receiver's
// base setup, returning its choice message.
func NewIKNPSenderBase(group Group, setup *IKNPBaseSetup, rng io.Reader) (*IKNPSender, *IKNPBaseChoice, error) {
	if setup == nil || len(setup.Setups) != iknpKappa {
		return nil, nil, fmt.Errorf("%w: base setup must carry %d transfers", ErrIKNP, iknpKappa)
	}
	send := &IKNPSender{
		s:       make([]byte, iknpKappa/8),
		ciphers: make([]cipher.Block, iknpKappa),
	}
	if _, err := io.ReadFull(rng, send.s); err != nil {
		return nil, nil, err
	}
	send.baseReceivers = make([]*Receiver, iknpKappa)
	choices := make([]*ReceiverChoice, iknpKappa)
	for i := 0; i < iknpKappa; i++ {
		r, c, err := NewReceiver(group, 2, getBit(send.s, i), setup.Setups[i], rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: iknp base receiver %d: %w", i, err)
		}
		send.baseReceivers[i] = r
		choices[i] = c
	}
	return send, &IKNPBaseChoice{Choices: choices}, nil
}

// BaseRespond is the extension receiver's answer to the sender's base
// choices.
func (r *IKNPReceiver) BaseRespond(choice *IKNPBaseChoice, rng io.Reader) (*IKNPBaseTransfer, error) {
	if choice == nil || len(choice.Choices) != iknpKappa || r.baseSenders == nil {
		return nil, fmt.Errorf("%w: bad base choice", ErrIKNP)
	}
	transfers := make([]*SenderTransfer, iknpKappa)
	for i, s := range r.baseSenders {
		tr, err := s.Respond(choice.Choices[i], rng)
		if err != nil {
			return nil, fmt.Errorf("ot: iknp base respond %d: %w", i, err)
		}
		transfers[i] = tr
	}
	r.baseSenders = nil // one-shot
	return &IKNPBaseTransfer{Transfers: transfers}, nil
}

// BaseFinish completes the extension sender's base phase.
func (s *IKNPSender) BaseFinish(tr *IKNPBaseTransfer) error {
	if tr == nil || len(tr.Transfers) != iknpKappa || s.baseReceivers == nil {
		return fmt.Errorf("%w: bad base transfer", ErrIKNP)
	}
	// Retain the recovered seeds alongside the expanded ciphers: a session
	// snapshot (see resume.go) must carry the raw key material, because a
	// cipher.Block cannot be serialized back into its key.
	s.seeds = make([]byte, iknpKappa*treeKeyLen)
	for i, r := range s.baseReceivers {
		seed, err := r.Recover(tr.Transfers[i])
		if err != nil {
			return fmt.Errorf("ot: iknp base recover %d: %w", i, err)
		}
		if len(seed) != treeKeyLen {
			return fmt.Errorf("%w: base seed %d has length %d", ErrIKNP, i, len(seed))
		}
		copy(s.seeds[i*treeKeyLen:], seed)
		if s.ciphers[i], err = aes.NewCipher(seed); err != nil {
			return err
		}
	}
	s.baseReceivers = nil
	return nil
}

// NewIKNP runs the complete base phase in memory (both roles) and returns
// the two extension endpoints ready for any number of batches.
func NewIKNP(group Group, rng io.Reader) (*IKNPSender, *IKNPReceiver, error) {
	recv, setup, err := NewIKNPReceiverBase(group, rng)
	if err != nil {
		return nil, nil, err
	}
	send, choice, err := NewIKNPSenderBase(group, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	tr, err := recv.BaseRespond(choice, rng)
	if err != nil {
		return nil, nil, err
	}
	if err := send.BaseFinish(tr); err != nil {
		return nil, nil, err
	}
	return send, recv, nil
}

// Extend prepares the receiver's side of one batch: choice bits r (one per
// transfer) produce the masked-column message for the sender and the
// per-batch state that later recovers the chosen messages.
func (r *IKNPReceiver) Extend(choices []int) (*IKNPExtension, *IKNPReceiverMsg, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrIKNP)
	}
	ext := &IKNPExtension{m: m, r: make([]byte, (m+7)/8)}
	for j, c := range choices {
		if c != 0 && c != 1 {
			return nil, nil, fmt.Errorf("%w: choice %d at %d", ErrIKNP, c, j)
		}
		if c == 1 {
			setBit(ext.r, j)
		}
	}
	cols := (m + 7) / 8
	r.batch++
	ext.pad = r.pad
	ext.par = r.par
	ext.t = make([][]byte, iknpKappa)
	tFlat := make([]byte, iknpKappa*cols)
	uFlat := make([]byte, iknpKappa*cols)
	span := obs.Start(obs.PhaseOTExtend)
	batch := r.batch
	_ = parallel.For(r.par, iknpKappa, func(i int) error {
		// Fresh pseudorandom columns per batch: reusing a column across
		// two choice vectors would leak r ⊕ r' and repeat pads. The fills
		// are pure (seeds fixed at the base phase, batch counter already
		// advanced), so fanning columns across workers keeps the wire
		// bytes bit-identical at any parallelism.
		t0 := tFlat[i*cols : (i+1)*cols]
		prgInto(r.ciphers0[i], i, batch, t0)
		ext.t[i] = t0
		ui := uFlat[i*cols : (i+1)*cols]
		prgInto(r.ciphers1[i], i, batch, ui)
		for b := range ui {
			ui[b] ^= t0[b] ^ ext.r[b]
		}
		return nil
	})
	span.End()
	return ext, &IKNPReceiverMsg{U: uFlat, M: m}, nil
}

// Respond consumes the receiver's columns and encrypts the message pairs
// (x0[j], x1[j]); all messages must share one length.
func (s *IKNPSender) Respond(msg *IKNPReceiverMsg, x0, x1 [][]byte) (*IKNPSenderMsg, error) {
	if msg == nil || msg.M <= 0 {
		return nil, fmt.Errorf("%w: bad column message", ErrIKNP)
	}
	m := msg.M
	cols := (m + 7) / 8
	if len(msg.U) != iknpKappa*cols {
		return nil, fmt.Errorf("%w: column block length %d, want %d", ErrIKNP, len(msg.U), iknpKappa*cols)
	}
	if len(x0) != m || len(x1) != m {
		return nil, fmt.Errorf("%w: %d pairs for %d transfers", ErrIKNP, len(x0), m)
	}
	msgLen := len(x0[0])
	for j := range x0 {
		if len(x0[j]) != msgLen || len(x1[j]) != msgLen {
			return nil, ErrMessageLen
		}
	}
	s.batch++
	// q columns: q_i = G(k(s_i)_i) ⊕ s_i·u_i. The flats are per-sender
	// scratch: the response never references them, so reusing them across
	// batches trades ~2·κ·cols bytes of garbage per batch for none.
	if cap(s.qFlat) < iknpKappa*cols {
		s.qFlat = make([]byte, iknpKappa*cols)
	}
	qFlat := s.qFlat[:iknpKappa*cols]
	q := make([][]byte, iknpKappa)
	span := obs.Start(obs.PhaseOTExtend)
	batch := s.batch
	_ = parallel.For(s.par, iknpKappa, func(i int) error {
		qi := qFlat[i*cols : (i+1)*cols]
		prgInto(s.ciphers[i], i, batch, qi)
		if getBit(s.s, i) == 1 {
			ui := msg.U[i*cols : (i+1)*cols]
			for b := range qi {
				qi[b] ^= ui[b]
			}
		}
		q[i] = qi
		return nil
	})
	span.End()
	spanT := obs.Start(obs.PhaseOTTranspose)
	if cap(s.rows) < ((m+7)/8)*8*iknpRowBytes {
		s.rows = make([]byte, ((m+7)/8)*8*iknpRowBytes)
	}
	rows := transposeColumnsInto(s.rows[:((m+7)/8)*8*iknpRowBytes], q, m)
	spanT.End()
	out := &IKNPSenderMsg{Y0: make([]byte, m*msgLen), Y1: make([]byte, m*msgLen), MsgLen: msgLen}
	spanP := obs.Start(obs.PhaseOTPad)
	pad := s.pad
	_ = parallel.For(s.par, m, func(j int) error {
		var rowQS [iknpRowBytes]byte
		rowQ := rows[j*iknpRowBytes : (j+1)*iknpRowBytes]
		for i := range rowQS {
			rowQS[i] = rowQ[i] ^ s.s[i]
		}
		pad.rowPadXor(out.Y0[j*msgLen:(j+1)*msgLen], x0[j], j, rowQ)
		pad.rowPadXor(out.Y1[j*msgLen:(j+1)*msgLen], x1[j], j, rowQS[:])
		return nil
	})
	spanP.End()
	return out, nil
}

// Recover decrypts the chosen message of every transfer in the batch.
func (e *IKNPExtension) Recover(msg *IKNPSenderMsg) ([][]byte, error) {
	if msg == nil || msg.MsgLen < 0 ||
		len(msg.Y0) != e.m*msg.MsgLen || len(msg.Y1) != e.m*msg.MsgLen {
		return nil, fmt.Errorf("%w: bad ciphertext batch", ErrIKNP)
	}
	msgLen := msg.MsgLen
	out := make([][]byte, e.m)
	spanT := obs.Start(obs.PhaseOTTranspose)
	rows := transposeColumns(e.t, e.m)
	spanT.End()
	flat := make([]byte, e.m*msgLen)
	spanP := obs.Start(obs.PhaseOTPad)
	pad := e.pad
	_ = parallel.For(e.par, e.m, func(j int) error {
		ct := msg.Y0[j*msgLen : (j+1)*msgLen]
		if getBit(e.r, j) == 1 {
			ct = msg.Y1[j*msgLen : (j+1)*msgLen]
		}
		x := flat[j*msgLen : (j+1)*msgLen]
		pad.rowPadXor(x, ct, j, rows[j*iknpRowBytes:(j+1)*iknpRowBytes])
		out[j] = x
		return nil
	})
	spanP.End()
	return out, nil
}

// prgInto expands a column seed into pseudorandom bytes: AES-128 (the
// seed is the key, the cipher is built once per session) in counter mode
// over a block domain-separated by column index and batch number.
func prgInto(blk cipher.Block, column int, batch uint32, dst []byte) {
	var ctr, ks [aes.BlockSize]byte
	binary.BigEndian.PutUint32(ctr[0:4], uint32(column))
	binary.BigEndian.PutUint32(ctr[4:8], batch)
	off := 0
	for counter := uint32(0); off < len(dst); counter++ {
		binary.BigEndian.PutUint32(ctr[8:12], counter)
		if len(dst)-off >= aes.BlockSize {
			blk.Encrypt(dst[off:off+aes.BlockSize], ctr[:])
			off += aes.BlockSize
		} else {
			blk.Encrypt(ks[:], ctr[:])
			off += copy(dst[off:], ks[:])
		}
	}
}

// iknpHashPrefix domain-separates the correlation-robust hash.
const iknpHashPrefix = "ppdc-iknp-hash-v1"

// rowHashXor writes dst = src ⊕ H(j, row). For messages up to one
// SHA-256 output (every OMPE payload: field elements and tree keys are
// ≤ 32 bytes) the hash is a single stack-buffer Sum256; longer messages
// fall back to counter mode.
func rowHashXor(dst, src []byte, j int, row []byte) {
	if len(src) <= sha256.Size && len(row) == iknpRowBytes {
		var buf [len(iknpHashPrefix) + 8 + iknpRowBytes]byte
		copy(buf[:], iknpHashPrefix)
		binary.BigEndian.PutUint32(buf[len(iknpHashPrefix):], uint32(j))
		binary.BigEndian.PutUint32(buf[len(iknpHashPrefix)+4:], 0)
		copy(buf[len(iknpHashPrefix)+8:], row)
		sum := sha256.Sum256(buf[:])
		for b := range src {
			dst[b] = src[b] ^ sum[b]
		}
		return
	}
	pad := rowHash(j, row, len(src))
	for b := range src {
		dst[b] = src[b] ^ pad[b]
	}
}

// rowHash is the correlation-robust hash H(j, row) expanded to msgLen
// (counter mode; rowHashXor's single-shot fast path is its counter-0
// prefix).
func rowHash(j int, row []byte, msgLen int) []byte {
	out := make([]byte, 0, msgLen)
	var block [8]byte
	for counter := uint32(0); len(out) < msgLen; counter++ {
		h := sha256.New()
		h.Write([]byte(iknpHashPrefix))
		binary.BigEndian.PutUint32(block[:4], uint32(j))
		binary.BigEndian.PutUint32(block[4:], counter)
		h.Write(block[:])
		h.Write(row)
		out = h.Sum(out)
	}
	return out[:msgLen]
}

// transposeColumns turns κ packed bit-columns (column i, bit j = transfer
// j) into packed bit-rows (row j, bit i), 16 bytes per row in one flat
// slice.
func transposeColumns(cols [][]byte, m int) []byte {
	rowBytes := (m + 7) / 8
	return transposeColumnsInto(make([]byte, rowBytes*8*iknpRowBytes), cols, m)
}

// transposeColumnsInto is transposeColumns writing into caller-owned
// scratch (len(out) must be ((m+7)/8)·8·iknpRowBytes). The bulk path is
// widened: 8 columns × 8 bytes are loaded as uint64 words, transposed at
// the byte level with three rounds of block swaps, and only then run
// through the classic 8×8 single-word bit transpose — ~64 rows of output
// per 8 wide loads instead of 64 single-byte column probes. A byte-at-a-
// time loop covers the sub-8-byte tail.
func transposeColumnsInto(out []byte, cols [][]byte, m int) []byte {
	rowBytes := (m + 7) / 8
	wide := rowBytes &^ 7
	for ci := 0; ci < iknpRowBytes; ci++ {
		c0, c1, c2, c3 := cols[ci*8], cols[ci*8+1], cols[ci*8+2], cols[ci*8+3]
		c4, c5, c6, c7 := cols[ci*8+4], cols[ci*8+5], cols[ci*8+6], cols[ci*8+7]
		for bj := 0; bj < wide; bj += 8 {
			w0 := binary.LittleEndian.Uint64(c0[bj:])
			w1 := binary.LittleEndian.Uint64(c1[bj:])
			w2 := binary.LittleEndian.Uint64(c2[bj:])
			w3 := binary.LittleEndian.Uint64(c3[bj:])
			w4 := binary.LittleEndian.Uint64(c4[bj:])
			w5 := binary.LittleEndian.Uint64(c5[bj:])
			w6 := binary.LittleEndian.Uint64(c6[bj:])
			w7 := binary.LittleEndian.Uint64(c7[bj:])
			// Byte-level 8×8 transpose across the words: after the three
			// rounds, word b holds byte b of every original column.
			w0, w4 = w0&0x00000000FFFFFFFF|w4<<32, w0>>32|w4&0xFFFFFFFF00000000
			w1, w5 = w1&0x00000000FFFFFFFF|w5<<32, w1>>32|w5&0xFFFFFFFF00000000
			w2, w6 = w2&0x00000000FFFFFFFF|w6<<32, w2>>32|w6&0xFFFFFFFF00000000
			w3, w7 = w3&0x00000000FFFFFFFF|w7<<32, w3>>32|w7&0xFFFFFFFF00000000
			const m2 = 0x0000FFFF0000FFFF
			w0, w2 = w0&m2|(w2&m2)<<16, (w0>>16)&m2|w2&^m2
			w1, w3 = w1&m2|(w3&m2)<<16, (w1>>16)&m2|w3&^m2
			w4, w6 = w4&m2|(w6&m2)<<16, (w4>>16)&m2|w6&^m2
			w5, w7 = w5&m2|(w7&m2)<<16, (w5>>16)&m2|w7&^m2
			const m1 = 0x00FF00FF00FF00FF
			w0, w1 = w0&m1|(w1&m1)<<8, (w0>>8)&m1|w1&^m1
			w2, w3 = w2&m1|(w3&m1)<<8, (w2>>8)&m1|w3&^m1
			w4, w5 = w4&m1|(w5&m1)<<8, (w4>>8)&m1|w5&^m1
			w6, w7 = w6&m1|(w7&m1)<<8, (w6>>8)&m1|w7&^m1
			for b, x := range [8]uint64{w0, w1, w2, w3, w4, w5, w6, w7} {
				x = transpose8x8(x)
				base := (bj + b) * 8 * iknpRowBytes
				out[base+ci] = byte(x)
				out[base+iknpRowBytes+ci] = byte(x >> 8)
				out[base+2*iknpRowBytes+ci] = byte(x >> 16)
				out[base+3*iknpRowBytes+ci] = byte(x >> 24)
				out[base+4*iknpRowBytes+ci] = byte(x >> 32)
				out[base+5*iknpRowBytes+ci] = byte(x >> 40)
				out[base+6*iknpRowBytes+ci] = byte(x >> 48)
				out[base+7*iknpRowBytes+ci] = byte(x >> 56)
			}
		}
		for bj := wide; bj < rowBytes; bj++ {
			x := uint64(c0[bj]) | uint64(c1[bj])<<8 | uint64(c2[bj])<<16 | uint64(c3[bj])<<24 |
				uint64(c4[bj])<<32 | uint64(c5[bj])<<40 | uint64(c6[bj])<<48 | uint64(c7[bj])<<56
			x = transpose8x8(x)
			base := bj * 8 * iknpRowBytes
			out[base+ci] = byte(x)
			out[base+iknpRowBytes+ci] = byte(x >> 8)
			out[base+2*iknpRowBytes+ci] = byte(x >> 16)
			out[base+3*iknpRowBytes+ci] = byte(x >> 24)
			out[base+4*iknpRowBytes+ci] = byte(x >> 32)
			out[base+5*iknpRowBytes+ci] = byte(x >> 40)
			out[base+6*iknpRowBytes+ci] = byte(x >> 48)
			out[base+7*iknpRowBytes+ci] = byte(x >> 56)
		}
	}
	return out
}

// transpose8x8 transposes a uint64 viewed as an 8×8 bit matrix (byte k,
// bit r) ↦ (byte r, bit k) — the recursive block-swap trick.
func transpose8x8(x uint64) uint64 {
	t := (x ^ (x >> 7)) & 0x00AA00AA00AA00AA
	x = x ^ t ^ (t << 7)
	t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCC
	x = x ^ t ^ (t << 14)
	t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0
	x = x ^ t ^ (t << 28)
	return x
}

func getBit(b []byte, i int) int {
	return int(b[i/8]>>(uint(i)%8)) & 1
}

func setBit(b []byte, i int) {
	b[i/8] |= 1 << (uint(i) % 8)
}
