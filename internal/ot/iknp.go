package ot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// IKNP oblivious-transfer extension (Ishai–Kilian–Nissim–Petrank, semi-
// honest variant): m 1-out-of-2 transfers for the price of κ = 128 base
// transfers plus symmetric crypto. The roles of the base phase are
// reversed — the OT-extension SENDER acts as the base-OT *receiver* with a
// random choice vector s, and the OT-extension RECEIVER acts as the base-
// OT *sender* with random seed pairs.
//
// Protocol (column i < κ, row j < m):
//
//	receiver: seeds (k0_i, k1_i); t_i = G(k0_i); u_i = t_i ⊕ G(k1_i) ⊕ r
//	sender:   learns k(s_i)_i by base OT; q_i = G(k(s_i)_i) ⊕ s_i·u_i
//	          ⇒ row q_j = t_j ⊕ r_j·s
//	sender:   y0_j = x0_j ⊕ H(j, q_j); y1_j = x1_j ⊕ H(j, q_j ⊕ s)
//	receiver: x(r_j)_j = y(r_j)_j ⊕ H(j, t_j)
//
// This primitive demonstrates the scaling path for batch-heavy
// deployments (BenchmarkIKNP vs BenchmarkDirect1of2Batch); the OMPE
// protocol keeps per-query Naor–Pinkas because its per-query message
// counts are small and sessions are one-shot.

// iknpKappa is the computational security parameter (base-OT count).
const iknpKappa = 128

// ErrIKNP reports malformed extension-protocol messages.
var ErrIKNP = errors.New("ot: malformed IKNP message")

// IKNPReceiverMsg carries the receiver's masked columns u_1..u_κ.
type IKNPReceiverMsg struct {
	// U holds κ columns of m bits each (packed, m bytes rounded up).
	U [][]byte
	// M is the number of extended transfers.
	M int
}

// IKNPSenderMsg carries the sender's ciphertext pairs.
type IKNPSenderMsg struct {
	Y0 [][]byte
	Y1 [][]byte
}

// IKNPSender is the OT-extension sender: it inputs m message pairs and
// runs the base phase as a base-OT receiver with random choice bits.
type IKNPSender struct {
	s     []byte // κ choice bits, packed
	seeds [][]byte
	batch uint32 // lockstep batch counter: fresh PRG columns per batch

	baseReceivers []*Receiver // base-phase state, nil once finished
}

// IKNPReceiver is the OT-extension receiver: it inputs m choice bits and
// runs the base phase as a base-OT sender of seed pairs.
type IKNPReceiver struct {
	seed0 [][]byte
	seed1 [][]byte
	batch uint32 // lockstep batch counter: fresh PRG columns per batch

	baseSenders []*Sender // base-phase state, nil once finished
}

// IKNPExtension is the receiver-side state of one Extend batch. Each
// batch's choice bits and PRG columns live here rather than on the
// receiver, so several batches can be in flight at once: the caller may
// issue Extend for batch n+1 before recovering batch n, as long as the
// sender answers batches in Extend order (its lockstep batch counter must
// advance in the same sequence).
type IKNPExtension struct {
	r []byte // m choice bits, packed
	m int
	t [][]byte // κ columns of m bits
}

// Base-phase messages: κ parallel 1-of-2 transfers in which the
// OT-extension receiver plays the base-OT sender of its seed pairs. Three
// messages total, so the base phase fits one round trip plus one message
// over a transport.
type (
	// IKNPBaseSetup is the extension receiver's first message.
	IKNPBaseSetup struct{ Setups []*SenderSetup }
	// IKNPBaseChoice is the extension sender's reply (choices under its
	// secret vector s).
	IKNPBaseChoice struct{ Choices []*ReceiverChoice }
	// IKNPBaseTransfer completes the seed delivery.
	IKNPBaseTransfer struct{ Transfers []*SenderTransfer }
)

// NewIKNPReceiverBase creates the extension receiver and its base-phase
// setup message (it acts as the base-OT sender of κ seed pairs).
func NewIKNPReceiverBase(group *Group, rng io.Reader) (*IKNPReceiver, *IKNPBaseSetup, error) {
	recv := &IKNPReceiver{
		seed0: make([][]byte, iknpKappa),
		seed1: make([][]byte, iknpKappa),
	}
	recv.baseSenders = make([]*Sender, iknpKappa)
	setups := make([]*SenderSetup, iknpKappa)
	for i := 0; i < iknpKappa; i++ {
		recv.seed0[i] = make([]byte, treeKeyLen)
		recv.seed1[i] = make([]byte, treeKeyLen)
		if _, err := io.ReadFull(rng, recv.seed0[i]); err != nil {
			return nil, nil, err
		}
		if _, err := io.ReadFull(rng, recv.seed1[i]); err != nil {
			return nil, nil, err
		}
		s, setup, err := NewSender(group, [][]byte{recv.seed0[i], recv.seed1[i]}, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: iknp base sender %d: %w", i, err)
		}
		recv.baseSenders[i] = s
		setups[i] = setup
	}
	return recv, &IKNPBaseSetup{Setups: setups}, nil
}

// NewIKNPSenderBase creates the extension sender from the receiver's
// base setup, returning its choice message.
func NewIKNPSenderBase(group *Group, setup *IKNPBaseSetup, rng io.Reader) (*IKNPSender, *IKNPBaseChoice, error) {
	if setup == nil || len(setup.Setups) != iknpKappa {
		return nil, nil, fmt.Errorf("%w: base setup must carry %d transfers", ErrIKNP, iknpKappa)
	}
	send := &IKNPSender{
		s:     make([]byte, iknpKappa/8),
		seeds: make([][]byte, iknpKappa),
	}
	if _, err := io.ReadFull(rng, send.s); err != nil {
		return nil, nil, err
	}
	send.baseReceivers = make([]*Receiver, iknpKappa)
	choices := make([]*ReceiverChoice, iknpKappa)
	for i := 0; i < iknpKappa; i++ {
		r, c, err := NewReceiver(group, 2, getBit(send.s, i), setup.Setups[i], rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: iknp base receiver %d: %w", i, err)
		}
		send.baseReceivers[i] = r
		choices[i] = c
	}
	return send, &IKNPBaseChoice{Choices: choices}, nil
}

// BaseRespond is the extension receiver's answer to the sender's base
// choices.
func (r *IKNPReceiver) BaseRespond(choice *IKNPBaseChoice, rng io.Reader) (*IKNPBaseTransfer, error) {
	if choice == nil || len(choice.Choices) != iknpKappa || r.baseSenders == nil {
		return nil, fmt.Errorf("%w: bad base choice", ErrIKNP)
	}
	transfers := make([]*SenderTransfer, iknpKappa)
	for i, s := range r.baseSenders {
		tr, err := s.Respond(choice.Choices[i], rng)
		if err != nil {
			return nil, fmt.Errorf("ot: iknp base respond %d: %w", i, err)
		}
		transfers[i] = tr
	}
	r.baseSenders = nil // one-shot
	return &IKNPBaseTransfer{Transfers: transfers}, nil
}

// BaseFinish completes the extension sender's base phase.
func (s *IKNPSender) BaseFinish(tr *IKNPBaseTransfer) error {
	if tr == nil || len(tr.Transfers) != iknpKappa || s.baseReceivers == nil {
		return fmt.Errorf("%w: bad base transfer", ErrIKNP)
	}
	for i, r := range s.baseReceivers {
		seed, err := r.Recover(tr.Transfers[i])
		if err != nil {
			return fmt.Errorf("ot: iknp base recover %d: %w", i, err)
		}
		s.seeds[i] = seed
	}
	s.baseReceivers = nil
	return nil
}

// NewIKNP runs the complete base phase in memory (both roles) and returns
// the two extension endpoints ready for any number of batches.
func NewIKNP(group *Group, rng io.Reader) (*IKNPSender, *IKNPReceiver, error) {
	recv, setup, err := NewIKNPReceiverBase(group, rng)
	if err != nil {
		return nil, nil, err
	}
	send, choice, err := NewIKNPSenderBase(group, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	tr, err := recv.BaseRespond(choice, rng)
	if err != nil {
		return nil, nil, err
	}
	if err := send.BaseFinish(tr); err != nil {
		return nil, nil, err
	}
	return send, recv, nil
}

// Extend prepares the receiver's side of one batch: choice bits r (one per
// transfer) produce the masked-column message for the sender and the
// per-batch state that later recovers the chosen messages.
func (r *IKNPReceiver) Extend(choices []int) (*IKNPExtension, *IKNPReceiverMsg, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrIKNP)
	}
	ext := &IKNPExtension{m: m, r: make([]byte, (m+7)/8)}
	for j, c := range choices {
		if c != 0 && c != 1 {
			return nil, nil, fmt.Errorf("%w: choice %d at %d", ErrIKNP, c, j)
		}
		if c == 1 {
			setBit(ext.r, j)
		}
	}
	cols := (m + 7) / 8
	r.batch++
	ext.t = make([][]byte, iknpKappa)
	u := make([][]byte, iknpKappa)
	for i := 0; i < iknpKappa; i++ {
		// Fresh pseudorandom columns per batch: reusing a column across
		// two choice vectors would leak r ⊕ r' and repeat pads.
		t0 := prg(r.seed0[i], i, r.batch, cols)
		t1 := prg(r.seed1[i], i, r.batch, cols)
		ext.t[i] = t0
		ui := make([]byte, cols)
		for b := range ui {
			ui[b] = t0[b] ^ t1[b] ^ ext.r[b]
		}
		u[i] = ui
	}
	return ext, &IKNPReceiverMsg{U: u, M: m}, nil
}

// Respond consumes the receiver's columns and encrypts the message pairs
// (x0[j], x1[j]); all messages must share one length.
func (s *IKNPSender) Respond(msg *IKNPReceiverMsg, x0, x1 [][]byte) (*IKNPSenderMsg, error) {
	if msg == nil || len(msg.U) != iknpKappa || msg.M <= 0 {
		return nil, fmt.Errorf("%w: bad column message", ErrIKNP)
	}
	m := msg.M
	if len(x0) != m || len(x1) != m {
		return nil, fmt.Errorf("%w: %d pairs for %d transfers", ErrIKNP, len(x0), m)
	}
	msgLen := len(x0[0])
	for j := range x0 {
		if len(x0[j]) != msgLen || len(x1[j]) != msgLen {
			return nil, ErrMessageLen
		}
	}
	cols := (m + 7) / 8
	s.batch++
	// q columns: q_i = G(k(s_i)_i) ⊕ s_i·u_i.
	q := make([][]byte, iknpKappa)
	for i := 0; i < iknpKappa; i++ {
		if len(msg.U[i]) != cols {
			return nil, fmt.Errorf("%w: column %d length", ErrIKNP, i)
		}
		qi := prg(s.seeds[i], i, s.batch, cols)
		if getBit(s.s, i) == 1 {
			for b := range qi {
				qi[b] ^= msg.U[i][b]
			}
		}
		q[i] = qi
	}
	out := &IKNPSenderMsg{Y0: make([][]byte, m), Y1: make([][]byte, m)}
	rowQ := make([]byte, iknpKappa/8)
	rowQS := make([]byte, iknpKappa/8)
	for j := 0; j < m; j++ {
		// Transpose on the fly: row j of the q matrix.
		for i := range rowQ {
			rowQ[i] = 0
		}
		for i := 0; i < iknpKappa; i++ {
			if getBit(q[i], j) == 1 {
				setBit(rowQ, i)
			}
		}
		for i := range rowQ {
			rowQS[i] = rowQ[i] ^ s.s[i]
		}
		pad0 := rowHash(j, rowQ, msgLen)
		pad1 := rowHash(j, rowQS, msgLen)
		y0 := make([]byte, msgLen)
		y1 := make([]byte, msgLen)
		for b := 0; b < msgLen; b++ {
			y0[b] = x0[j][b] ^ pad0[b]
			y1[b] = x1[j][b] ^ pad1[b]
		}
		out.Y0[j] = y0
		out.Y1[j] = y1
	}
	return out, nil
}

// Recover decrypts the chosen message of every transfer in the batch.
func (e *IKNPExtension) Recover(msg *IKNPSenderMsg) ([][]byte, error) {
	if msg == nil || len(msg.Y0) != e.m || len(msg.Y1) != e.m {
		return nil, fmt.Errorf("%w: bad ciphertext batch", ErrIKNP)
	}
	out := make([][]byte, e.m)
	rowT := make([]byte, iknpKappa/8)
	for j := 0; j < e.m; j++ {
		for i := range rowT {
			rowT[i] = 0
		}
		for i := 0; i < iknpKappa; i++ {
			if getBit(e.t[i], j) == 1 {
				setBit(rowT, i)
			}
		}
		ct := msg.Y0[j]
		if getBit(e.r, j) == 1 {
			ct = msg.Y1[j]
		}
		pad := rowHash(j, rowT, len(ct))
		x := make([]byte, len(ct))
		for b := range ct {
			x[b] = ct[b] ^ pad[b]
		}
		out[j] = x
	}
	return out, nil
}

// prg expands a seed into n pseudorandom bytes (SHA-256 counter mode,
// domain-separated by column index and batch number).
func prg(seed []byte, column int, batch uint32, n int) []byte {
	out := make([]byte, 0, n)
	var block [12]byte
	for counter := uint32(0); len(out) < n; counter++ {
		h := sha256.New()
		h.Write([]byte("ppdc-iknp-prg-v1"))
		h.Write(seed)
		binary.BigEndian.PutUint32(block[:4], uint32(column))
		binary.BigEndian.PutUint32(block[4:8], batch)
		binary.BigEndian.PutUint32(block[8:], counter)
		h.Write(block[:])
		out = h.Sum(out)
	}
	return out[:n]
}

// rowHash is the correlation-robust hash H(j, row) expanded to msgLen.
func rowHash(j int, row []byte, msgLen int) []byte {
	out := make([]byte, 0, msgLen)
	var block [8]byte
	for counter := uint32(0); len(out) < msgLen; counter++ {
		h := sha256.New()
		h.Write([]byte("ppdc-iknp-hash-v1"))
		binary.BigEndian.PutUint32(block[:4], uint32(j))
		binary.BigEndian.PutUint32(block[4:], counter)
		h.Write(block[:])
		h.Write(row)
		out = h.Sum(out)
	}
	return out[:msgLen]
}

func getBit(b []byte, i int) int {
	return int(b[i/8]>>(uint(i)%8)) & 1
}

func setBit(b []byte, i int) {
	b[i/8] |= 1 << (uint(i) % 8)
}
