package ot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	// ErrBadIndex reports a choice index outside [0, n).
	ErrBadIndex = errors.New("ot: choice index out of range")
	// ErrBadMessage reports malformed or inconsistent protocol messages.
	ErrBadMessage = errors.New("ot: malformed protocol message")
	// ErrMessageLen reports sender messages of unequal length.
	ErrMessageLen = errors.New("ot: all sender messages must have equal length")
)

// SenderSetup is the sender's first message of a 1-out-of-n transfer: the
// n-1 random group elements C_1..C_{n-1} that constrain the receiver's
// public keys.
type SenderSetup struct {
	Cs []*big.Int
}

// ReceiverChoice is the receiver's message: the single public key PK_0 from
// which the sender derives all n per-index keys. PK_0 is uniform in the
// group regardless of the chosen index, which is what hides the choice.
type ReceiverChoice struct {
	PK0 *big.Int
}

// SenderTransfer is the sender's final message: the ephemeral value
// R = g^r and one ciphertext per message.
type SenderTransfer struct {
	R   *big.Int
	Cts [][]byte
}

// Sender runs the sender role of a Naor–Pinkas 1-out-of-n transfer.
type Sender struct {
	group Group
	msgs  [][]byte
	setup *SenderSetup
}

// NewSender prepares a transfer of the given messages (all the same
// length) and returns the setup message for the receiver.
func NewSender(group Group, msgs [][]byte, rng io.Reader) (*Sender, *SenderSetup, error) {
	if len(msgs) < 2 {
		return nil, nil, fmt.Errorf("ot: need at least 2 messages, got %d", len(msgs))
	}
	for _, m := range msgs[1:] {
		if len(m) != len(msgs[0]) {
			return nil, nil, ErrMessageLen
		}
	}
	cs := make([]*big.Int, len(msgs)-1)
	for i := range cs {
		c, err := randomElement(group, rng)
		if err != nil {
			return nil, nil, err
		}
		cs[i] = c
	}
	copied := make([][]byte, len(msgs))
	for i, m := range msgs {
		copied[i] = append([]byte(nil), m...)
	}
	setup := &SenderSetup{Cs: cs}
	return &Sender{group: group, msgs: copied, setup: setup}, setup, nil
}

// Respond consumes the receiver's choice and produces the ciphertexts.
func (s *Sender) Respond(choice *ReceiverChoice, rng io.Reader) (*SenderTransfer, error) {
	if err := s.checkChoice(choice); err != nil {
		return nil, err
	}
	r, err := s.group.RandomScalar(rng)
	if err != nil {
		return nil, err
	}
	return s.respond(choice, r)
}

func (s *Sender) checkChoice(choice *ReceiverChoice) error {
	if choice == nil || !s.group.ValidElement(choice.PK0) {
		return fmt.Errorf("%w: invalid PK0", ErrBadMessage)
	}
	return nil
}

// respond computes the transfer from a pre-drawn ephemeral exponent. The
// batch path samples every instance's exponent serially (keeping the rng
// stream deterministic) and then runs the exponentiation-heavy remainder
// of the instances in parallel through this method.
func (s *Sender) respond(choice *ReceiverChoice, r *big.Int) (*SenderTransfer, error) {
	bigR := s.group.ExpG(r)

	// PK_i = C_i / PK_0, so PK_i^r = C_i^r * (PK_0^r)^{-1}.
	pk0r := s.group.Exp(choice.PK0, r)
	pk0rInv, err := s.group.Inv(pk0r)
	if err != nil {
		return nil, fmt.Errorf("ot: respond: %w", err)
	}

	cts := make([][]byte, len(s.msgs))
	for i, m := range s.msgs {
		var keyElem *big.Int
		if i == 0 {
			keyElem = pk0r
		} else {
			keyElem = s.group.Mul(s.group.Exp(s.setup.Cs[i-1], r), pk0rInv)
		}
		pad, err := s.keystream(keyElem, i, len(m))
		if err != nil {
			return nil, err
		}
		ct := make([]byte, len(m))
		for j := range m {
			ct[j] = m[j] ^ pad[j]
		}
		cts[i] = ct
	}
	return &SenderTransfer{R: bigR, Cts: cts}, nil
}

// Receiver runs the receiver role of a 1-out-of-n transfer.
type Receiver struct {
	group Group
	n     int
	sigma int
	x     *big.Int // secret exponent; PK_sigma = g^x
}

// NewReceiver prepares the receiver's choice of index sigma among n
// messages, given the sender's setup.
func NewReceiver(group Group, n, sigma int, setup *SenderSetup, rng io.Reader) (*Receiver, *ReceiverChoice, error) {
	if err := checkReceiverArgs(group, n, sigma, setup); err != nil {
		return nil, nil, err
	}
	x, err := group.RandomScalar(rng)
	if err != nil {
		return nil, nil, err
	}
	return newReceiverWithSecret(group, n, sigma, setup, x)
}

func checkReceiverArgs(group Group, n, sigma int, setup *SenderSetup) error {
	if n < 2 {
		return fmt.Errorf("ot: need at least 2 messages, got %d", n)
	}
	if sigma < 0 || sigma >= n {
		return fmt.Errorf("%w: sigma=%d n=%d", ErrBadIndex, sigma, n)
	}
	if setup == nil || len(setup.Cs) != n-1 {
		return fmt.Errorf("%w: setup must carry %d constraints", ErrBadMessage, n-1)
	}
	for _, c := range setup.Cs {
		if !group.ValidElement(c) {
			return fmt.Errorf("%w: invalid constraint element", ErrBadMessage)
		}
	}
	return nil
}

// newReceiverWithSecret computes the choice from a pre-drawn secret
// exponent; arguments must already be validated. The batch path samples
// secrets serially and parallelizes these exponentiations.
func newReceiverWithSecret(group Group, n, sigma int, setup *SenderSetup, x *big.Int) (*Receiver, *ReceiverChoice, error) {
	gx := group.ExpG(x)
	pk0 := gx
	if sigma > 0 {
		// PK_0 = C_sigma / g^x so that PK_sigma = C_sigma / PK_0 = g^x.
		gxInv, err := group.Inv(gx)
		if err != nil {
			return nil, nil, err
		}
		pk0 = group.Mul(setup.Cs[sigma-1], gxInv)
	}
	r := &Receiver{group: group, n: n, sigma: sigma, x: x}
	return r, &ReceiverChoice{PK0: pk0}, nil
}

// Recover decrypts the chosen message from the sender's transfer.
func (r *Receiver) Recover(tr *SenderTransfer) ([]byte, error) {
	if tr == nil || !r.group.ValidElement(tr.R) {
		return nil, fmt.Errorf("%w: invalid R", ErrBadMessage)
	}
	if len(tr.Cts) != r.n {
		return nil, fmt.Errorf("%w: got %d ciphertexts, want %d", ErrBadMessage, len(tr.Cts), r.n)
	}
	ct := tr.Cts[r.sigma]
	// PK_sigma = g^x in both branches of NewReceiver, so PK_sigma^r = R^x.
	keyElem := r.group.Exp(tr.R, r.x)
	pad, err := keystream(r.group, keyElem, r.sigma, len(ct))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ct))
	for j := range ct {
		out[j] = ct[j] ^ pad[j]
	}
	return out, nil
}

func (s *Sender) keystream(elem *big.Int, index, n int) ([]byte, error) {
	return keystream(s.group, elem, index, n)
}

// keystream derives n bytes from a group element with SHA-256 in counter
// mode, domain-separated by the message index.
func keystream(group Group, elem *big.Int, index, n int) ([]byte, error) {
	eb := make([]byte, group.ElementLen())
	elem.FillBytes(eb)
	out := make([]byte, 0, n)
	var block [8]byte
	for counter := uint32(0); len(out) < n; counter++ {
		h := sha256.New()
		h.Write([]byte("ppdc-ot-kdf-v1"))
		h.Write(eb)
		binary.BigEndian.PutUint32(block[:4], uint32(index))
		binary.BigEndian.PutUint32(block[4:], counter)
		h.Write(block[:])
		out = h.Sum(out)
	}
	return out[:n], nil
}
