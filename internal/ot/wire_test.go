package ot

import (
	"bytes"
	"encoding"
	"errors"
	"io"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// wireMsg is the full serialization contract every OT wire type must
// satisfy: the codec pair plus the four standard interfaces.
type wireMsg interface {
	wire.Msg
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	io.WriterTo
	io.ReaderFrom
}

func sampleSetup() *SenderSetup {
	return &SenderSetup{Cs: []*big.Int{big.NewInt(12345), new(big.Int).Lsh(big.NewInt(7), 300)}}
}

func sampleChoice() *ReceiverChoice {
	return &ReceiverChoice{PK0: new(big.Int).Lsh(big.NewInt(99), 120)}
}

func sampleTransfer() *SenderTransfer {
	return &SenderTransfer{R: big.NewInt(31337), Cts: [][]byte{{1, 2}, {}, {3, 4, 5}}}
}

func otWireSamples() map[string]wireMsg {
	return map[string]wireMsg{
		"SenderSetup":      sampleSetup(),
		"ReceiverChoice":   sampleChoice(),
		"SenderTransfer":   sampleTransfer(),
		"BatchSetup":       &BatchSetup{Setups: []*SenderSetup{sampleSetup(), sampleSetup()}},
		"BatchChoice":      &BatchChoice{Choices: []*ReceiverChoice{sampleChoice()}},
		"BatchTransfer":    &BatchTransfer{Transfers: []*SenderTransfer{sampleTransfer()}},
		"IKNPBaseSetup":    &IKNPBaseSetup{Setups: []*SenderSetup{sampleSetup()}},
		"IKNPBaseChoice":   &IKNPBaseChoice{Choices: []*ReceiverChoice{sampleChoice(), sampleChoice()}},
		"IKNPBaseTransfer": &IKNPBaseTransfer{Transfers: []*SenderTransfer{sampleTransfer()}},
		"IKNPReceiverMsg":  &IKNPReceiverMsg{U: bytes.Repeat([]byte{0x5A}, 64), M: 17},
		"IKNPSenderMsg":    &IKNPSenderMsg{Y0: []byte{1, 2, 3, 4}, Y1: []byte{5, 6, 7, 8}, MsgLen: 2},
		"ExtKofNRequest": &ExtKofNRequest{
			IKNP: &IKNPReceiverMsg{U: []byte{9, 9}, M: 3}, K: 2, N: 5,
		},
		"ExtKofNResponse": &ExtKofNResponse{
			IKNP: &IKNPSenderMsg{Y0: []byte{1}, Y1: []byte{2}, MsgLen: 1}, Cts: []byte{7, 7, 7}, MsgLen: 1,
		},
		"ExtKofNBatchRequest": &ExtKofNBatchRequest{
			IKNP: &IKNPReceiverMsg{U: []byte{4}, M: 1}, K: 1, N: 2, B: 3,
		},
		"ExtKofNBatchResponse": &ExtKofNBatchResponse{
			IKNP: &IKNPSenderMsg{Y0: []byte{3}, Y1: []byte{4}, MsgLen: 1}, Cts: []byte{8, 8}, MsgLen: 2,
		},
		"IKNPSenderState": &IKNPSenderState{
			S: bytes.Repeat([]byte{0xA5}, iknpKappa/8), Seeds: bytes.Repeat([]byte{0x3C}, iknpKappa*treeKeyLen), Batch: 7,
		},
		"IKNPReceiverState": &IKNPReceiverState{
			Seed0: bytes.Repeat([]byte{0x11}, iknpKappa*treeKeyLen), Seed1: bytes.Repeat([]byte{0x22}, iknpKappa*treeKeyLen), Batch: 9,
		},
	}
}

// reencode canonicalizes a message for equality: two messages are equal
// iff their encodings are byte-identical (the codec is canonical).
func reencode(t *testing.T, m wireMsg) []byte {
	t.Helper()
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return data
}

func TestOTWireRoundTrips(t *testing.T) {
	for name, in := range otWireSamples() {
		t.Run(name, func(t *testing.T) {
			data, err := in.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			var sb bytes.Buffer
			if _, err := in.WriteTo(&sb); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if !bytes.Equal(sb.Bytes(), data) {
				t.Fatalf("WriteTo and MarshalBinary disagree")
			}

			out := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if err := out.UnmarshalBinary(data); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			if !bytes.Equal(reencode(t, out), data) {
				t.Fatalf("slice round trip mismatch:\n in: %#v\nout: %#v", in, out)
			}

			out2 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if _, err := out2.ReadFrom(bytes.NewReader(data)); err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if !bytes.Equal(reencode(t, out2), data) {
				t.Fatalf("stream round trip mismatch")
			}

			// Trailing garbage after the message must be rejected.
			out3 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if err := out3.UnmarshalBinary(append(append([]byte{}, data...), 0xFF)); !errors.Is(err, wire.ErrTrailing) {
				t.Fatalf("trailing byte: got %v, want ErrTrailing", err)
			}

			// Every strict prefix of the encoding fails with some typed error.
			for n := 0; n < len(data); n++ {
				out4 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
				if err := out4.UnmarshalBinary(data[:n]); err == nil {
					t.Fatalf("prefix %d/%d decoded cleanly", n, len(data))
				}
			}
		})
	}
}

func TestOTWireNilElements(t *testing.T) {
	cases := map[string]wireMsg{
		"nil-setup-elem":    &BatchSetup{Setups: []*SenderSetup{nil}},
		"nil-bigint":        &SenderSetup{Cs: []*big.Int{nil}},
		"nil-pk0":           &ReceiverChoice{},
		"nil-iknp-request":  &ExtKofNRequest{K: 1, N: 2},
		"nil-iknp-response": &ExtKofNResponse{Cts: []byte{1}, MsgLen: 1},
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := m.MarshalBinary(); !errors.Is(err, wire.ErrNilValue) {
				t.Fatalf("got %v, want ErrNilValue", err)
			}
		})
	}
}
