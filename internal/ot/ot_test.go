package ot_test

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/ot"
)

func testGroup() ot.Group { return ot.Group512Test() }

func randomMessages(t *testing.T, n, size int) [][]byte {
	t.Helper()
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = make([]byte, size)
		if _, err := rand.Read(msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return msgs
}

func TestGroupsAreSafePrimes(t *testing.T) {
	groups := []*ot.ModpGroup{ot.Group512Test(), ot.Group1024(), ot.Group1536(), ot.Group2048()}
	for _, g := range groups {
		t.Run(g.Name(), func(t *testing.T) {
			if !g.P.ProbablyPrime(32) {
				t.Fatal("P not prime")
			}
			if !g.Q.ProbablyPrime(32) {
				t.Fatal("Q not prime")
			}
			// p = 2q+1
			check := new(big.Int).Lsh(g.Q, 1)
			check.Add(check, big.NewInt(1))
			if check.Cmp(g.P) != 0 {
				t.Fatal("P != 2Q+1")
			}
			// g generates the order-q subgroup: g^q == 1.
			if g.Exp(g.G, g.Q).Cmp(big.NewInt(1)) != 0 {
				t.Fatal("generator does not have order Q")
			}
		})
	}
}

func TestGroupByName(t *testing.T) {
	for _, name := range []string{"512", "1024", "1536", "2048", "modp2048"} {
		if _, err := ot.GroupByName(name); err != nil {
			t.Fatalf("GroupByName(%s): %v", name, err)
		}
	}
	if _, err := ot.GroupByName("4096"); err == nil {
		t.Fatal("unknown group should fail")
	}
}

func Test1of2AllChoices(t *testing.T) {
	g := testGroup()
	msgs := [2][]byte{[]byte("message-zero-000"), []byte("message-one-1111")}
	for bit := 0; bit < 2; bit++ {
		got, err := ot.Transfer1of2(g, msgs, bit, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msgs[bit]) {
			t.Fatalf("bit %d: got %q", bit, got)
		}
	}
}

func Test1ofNEveryIndex(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 7, 32)
	for sigma := 0; sigma < len(msgs); sigma++ {
		got, err := ot.Transfer1ofN(g, msgs, sigma, rand.Reader)
		if err != nil {
			t.Fatalf("sigma=%d: %v", sigma, err)
		}
		if !bytes.Equal(got, msgs[sigma]) {
			t.Fatalf("sigma=%d: wrong message", sigma)
		}
	}
}

func TestKofN(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 10, 48)
	indices := []int{0, 3, 7, 9}
	got, err := ot.TransferKofN(g, msgs, indices, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		if !bytes.Equal(got[i], msgs[idx]) {
			t.Fatalf("index %d: wrong message", idx)
		}
	}
}

func TestKofNRejectsDuplicates(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 5, 16)
	sender, setup, err := ot.NewBatchSender(g, msgs, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_ = sender
	if _, _, err := ot.NewBatchReceiver(g, len(msgs), []int{2, 2}, setup, rand.Reader); err == nil {
		t.Fatal("duplicate indices should fail")
	}
}

func TestSenderValidation(t *testing.T) {
	g := testGroup()
	if _, _, err := ot.NewSender(g, [][]byte{[]byte("one")}, rand.Reader); err == nil {
		t.Fatal("single message should fail")
	}
	if _, _, err := ot.NewSender(g, [][]byte{[]byte("aa"), []byte("bbb")}, rand.Reader); err == nil {
		t.Fatal("unequal lengths should fail")
	}
}

func TestReceiverValidation(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 4, 16)
	_, setup, err := ot.NewSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ot.NewReceiver(g, 4, -1, setup, rand.Reader); err == nil {
		t.Fatal("negative sigma should fail")
	}
	if _, _, err := ot.NewReceiver(g, 4, 4, setup, rand.Reader); err == nil {
		t.Fatal("sigma >= n should fail")
	}
	if _, _, err := ot.NewReceiver(g, 4, 0, nil, rand.Reader); err == nil {
		t.Fatal("nil setup should fail")
	}
	bad := &ot.SenderSetup{Cs: []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(1)}}
	if _, _, err := ot.NewReceiver(g, 4, 0, bad, rand.Reader); err == nil {
		t.Fatal("invalid constraint element should fail")
	}
}

func TestRespondValidation(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 3, 16)
	sender, _, err := ot.NewSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Respond(nil, rand.Reader); err == nil {
		t.Fatal("nil choice should fail")
	}
	if _, err := sender.Respond(&ot.ReceiverChoice{PK0: big.NewInt(0)}, rand.Reader); err == nil {
		t.Fatal("PK0=0 should fail")
	}
}

func TestRecoverValidation(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 3, 16)
	sender, setup, err := ot.NewSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	receiver, choice, err := ot.NewReceiver(g, 3, 1, setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sender.Respond(choice, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Recover(nil); err == nil {
		t.Fatal("nil transfer should fail")
	}
	if _, err := receiver.Recover(&ot.SenderTransfer{R: tr.R, Cts: tr.Cts[:2]}); err == nil {
		t.Fatal("short ciphertext list should fail")
	}
	if _, err := receiver.Recover(&ot.SenderTransfer{R: big.NewInt(0), Cts: tr.Cts}); err == nil {
		t.Fatal("invalid R should fail")
	}
}

// TestTamperedCiphertextDecryptsGarbage: flipping ciphertext bits must
// change the recovered plaintext (the OT stream cipher is malleable by
// design; integrity is the upper layer's concern — the field layer rejects
// out-of-range values).
func TestTamperedCiphertextDecryptsGarbage(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 3, 16)
	sender, setup, err := ot.NewSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	receiver, choice, err := ot.NewReceiver(g, 3, 2, setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sender.Respond(choice, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr.Cts[2][0] ^= 0xFF
	got, err := receiver.Recover(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msgs[2]) {
		t.Fatal("tampered ciphertext recovered the original message")
	}
}

// TestNonChosenMessagesUnreadable: decrypting a non-chosen slot with the
// receiver's key yields garbage (sender privacy, §III-B).
func TestNonChosenMessagesUnreadable(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 4, 24)
	sender, setup, err := ot.NewSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	receiver, choice, err := ot.NewReceiver(g, 4, 1, setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sender.Respond(choice, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Recover(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgs[1]) {
		t.Fatal("chosen message wrong")
	}
	// A receiver that lies about sigma post-hoc (tries index 2's slot with
	// its index-1 key) must not get message 2: swap ciphertexts so the
	// receiver decrypts slot 2's bytes with its own key/pad.
	tr.Cts[1] = tr.Cts[2]
	leaked, err := receiver.Recover(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(leaked, msgs[2]) {
		t.Fatal("receiver decrypted a non-chosen message")
	}
}

// TestChoiceHidesIndex: the receiver's PK0 distribution must not reveal
// sigma. We sanity-check that PK0 values differ across runs and are valid
// group elements for every sigma.
func TestChoiceHidesIndex(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 4, 16)
	_, setup, err := ot.NewSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for sigma := 0; sigma < 4; sigma++ {
		for run := 0; run < 3; run++ {
			_, choice, err := ot.NewReceiver(g, 4, sigma, setup, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if !g.ValidElement(choice.PK0) {
				t.Fatal("PK0 not a valid element")
			}
			key := choice.PK0.String()
			if seen[key] {
				t.Fatal("PK0 collision across runs (randomness broken)")
			}
			seen[key] = true
		}
	}
}

func TestElementLen(t *testing.T) {
	g := ot.Group2048()
	if g.ElementLen() != 256 {
		t.Fatalf("2048-bit group element length = %d", g.ElementLen())
	}
	if g.Bits() != 2048 {
		t.Fatalf("bits = %d", g.Bits())
	}
}

func TestLargeGroupRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large-group modexp")
	}
	for _, g := range []ot.Group{ot.Group1024(), ot.Group2048()} {
		t.Run(g.Name(), func(t *testing.T) {
			msgs := randomMessages(t, 3, 32)
			got, err := ot.Transfer1ofN(g, msgs, 2, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msgs[2]) {
				t.Fatal("wrong message")
			}
		})
	}
}

func TestBatchMismatchedCounts(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 5, 16)
	sender, setup, err := ot.NewBatchSender(g, msgs, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ot.NewBatchReceiver(g, 5, []int{1, 2, 3}, setup, rand.Reader); err == nil {
		t.Fatal("k mismatch should fail")
	}
	_, choice, err := ot.NewBatchReceiver(g, 5, []int{1, 2}, setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Respond(&ot.BatchChoice{Choices: choice.Choices[:1]}, rand.Reader); err == nil {
		t.Fatal("short choice should fail")
	}
	if _, _, err := ot.NewBatchSender(g, msgs, 0, rand.Reader); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, _, err := ot.NewBatchSender(g, msgs, 6, rand.Reader); err == nil {
		t.Fatal("k>n should fail")
	}
}

func ExampleTransfer1ofN() {
	g := ot.Group512Test()
	msgs := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("carol")}
	got, err := ot.Transfer1ofN(g, msgs, 1, rand.Reader)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(got))
	// Output: bravo
}

func TestTree1ofNEveryIndex(t *testing.T) {
	g := testGroup()
	for _, n := range []int{2, 3, 5, 8, 13} {
		msgs := randomMessages(t, n, 32)
		for sigma := 0; sigma < n; sigma++ {
			got, err := ot.Transfer1ofNTree(g, msgs, sigma, rand.Reader)
			if err != nil {
				t.Fatalf("n=%d sigma=%d: %v", n, sigma, err)
			}
			if !bytes.Equal(got, msgs[sigma]) {
				t.Fatalf("n=%d sigma=%d: wrong message", n, sigma)
			}
		}
	}
}

func TestTreeValidation(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 4, 16)
	if _, _, err := ot.NewTreeSender(g, msgs[:1], rand.Reader); err == nil {
		t.Fatal("single message should fail")
	}
	if _, _, err := ot.NewTreeSender(g, [][]byte{{1}, {1, 2}}, rand.Reader); err == nil {
		t.Fatal("unequal lengths should fail")
	}
	_, setup, err := ot.NewTreeSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ot.NewTreeReceiver(g, 4, 4, setup, rand.Reader); err == nil {
		t.Fatal("sigma out of range should fail")
	}
	if _, _, err := ot.NewTreeReceiver(g, 4, 0, nil, rand.Reader); err == nil {
		t.Fatal("nil setup should fail")
	}
	bad := &ot.TreeSetup{Levels: setup.Levels[:1], Cts: setup.Cts}
	if _, _, err := ot.NewTreeReceiver(g, 4, 0, bad, rand.Reader); err == nil {
		t.Fatal("wrong level count should fail")
	}
}

// TestTreeNonChosenUnreadable: the receiver's path keys must not decrypt
// any other index.
func TestTreeNonChosenUnreadable(t *testing.T) {
	g := testGroup()
	msgs := randomMessages(t, 8, 24)
	sender, setup, err := ot.NewTreeSender(g, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	receiver, choice, err := ot.NewTreeReceiver(g, 8, 5, setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sender.Respond(choice, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Recover(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgs[5]) {
		t.Fatal("chosen message wrong")
	}
	// Swap another ciphertext into the chosen slot: the receiver's path
	// pad (index-separated) must not decrypt it.
	setup2 := &ot.TreeSetup{Levels: setup.Levels, Cts: append([][]byte(nil), setup.Cts...)}
	setup2.Cts[5] = setup.Cts[6]
	receiver2, choice2, err := ot.NewTreeReceiver(g, 8, 5, setup2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := sender.Respond(choice2, rand.Reader)
	if err != nil {
		// The level senders are one-shot; rebuild a fresh sender for the
		// second exchange.
		sender2, setup3, err := ot.NewTreeSender(g, msgs, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		setup3.Cts[5] = setup3.Cts[6]
		receiver2, choice2, err = ot.NewTreeReceiver(g, 8, 5, setup3, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err = sender2.Respond(choice2, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
	}
	leaked, err := receiver2.Recover(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(leaked, msgs[6]) {
		t.Fatal("tree receiver decrypted a non-chosen message")
	}
}
