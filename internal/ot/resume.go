package ot

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Session resumption for the IKNP extension. Once the base phase is done,
// each endpoint's entire cryptographic position is a handful of AES keys
// plus the lockstep batch counter: the sender holds its packed choice
// vector s and the κ recovered seeds, the receiver holds its κ seed
// pairs. Snapshot captures that position; Restore rebuilds a live
// endpoint from it with the counter carried forward, never reset, so a
// resumed session's PRG columns and pads start exactly where the previous
// session stopped — the (column, batch, counter) domain separation in
// prgInto guarantees no pad or correlation block is ever derived twice
// across the whole resumption chain.
//
// The transport seals these states inside opaque tickets (the sender
// state lives server-side inside the ticket it mints; the receiver state
// stays in the client's memory next to the ticket). Neither state is ever
// sent in the clear: the sender state contains s, whose secrecy is what
// makes y1 ciphertexts opaque to the receiver.

// ErrIKNPResume reports a malformed or inconsistent resumption state.
var ErrIKNPResume = errors.New("ot: invalid IKNP resume state")

// IKNPSenderState is the serializable position of an extension sender
// whose base phase has completed: the secret choice vector, the κ
// recovered base seeds (flat 16-byte rows), and the batch counter.
type IKNPSenderState struct {
	S     []byte
	Seeds []byte
	Batch uint32
}

// IKNPReceiverState is the serializable position of an extension
// receiver: the κ seed pairs (flat 16-byte rows per side) and the batch
// counter.
type IKNPReceiverState struct {
	Seed0 []byte
	Seed1 []byte
	Batch uint32
}

// Snapshot captures the sender's post-base-phase state. It fails while
// the base phase is still in flight (there is nothing coherent to save)
// and on endpoints built before seed retention (never the case for
// endpoints this package constructs).
func (s *IKNPSender) Snapshot() (*IKNPSenderState, error) {
	if s.baseReceivers != nil || len(s.seeds) != iknpKappa*treeKeyLen {
		return nil, fmt.Errorf("%w: sender base phase incomplete", ErrIKNPResume)
	}
	st := &IKNPSenderState{
		S:     append([]byte(nil), s.s...),
		Seeds: append([]byte(nil), s.seeds...),
		Batch: s.batch,
	}
	return st, nil
}

// Snapshot captures the receiver's post-base-phase state.
func (r *IKNPReceiver) Snapshot() (*IKNPReceiverState, error) {
	if r.baseSenders != nil {
		return nil, fmt.Errorf("%w: receiver base phase incomplete", ErrIKNPResume)
	}
	st := &IKNPReceiverState{
		Seed0: make([]byte, iknpKappa*treeKeyLen),
		Seed1: make([]byte, iknpKappa*treeKeyLen),
		Batch: r.batch,
	}
	for i := 0; i < iknpKappa; i++ {
		if len(r.seed0[i]) != treeKeyLen || len(r.seed1[i]) != treeKeyLen {
			return nil, fmt.Errorf("%w: seed %d malformed", ErrIKNPResume, i)
		}
		copy(st.Seed0[i*treeKeyLen:], r.seed0[i])
		copy(st.Seed1[i*treeKeyLen:], r.seed1[i])
	}
	return st, nil
}

// RestoreIKNPSender rebuilds a live extension sender from a snapshot. The
// batch counter resumes at the saved value: the first Respond after a
// restore advances it past every batch the previous session consumed.
func RestoreIKNPSender(st *IKNPSenderState) (*IKNPSender, error) {
	if st == nil || len(st.S) != iknpKappa/8 || len(st.Seeds) != iknpKappa*treeKeyLen {
		return nil, fmt.Errorf("%w: bad sender state shape", ErrIKNPResume)
	}
	send := &IKNPSender{
		s:       append([]byte(nil), st.S...),
		seeds:   append([]byte(nil), st.Seeds...),
		ciphers: make([]cipher.Block, iknpKappa),
		batch:   st.Batch,
	}
	for i := 0; i < iknpKappa; i++ {
		blk, err := aes.NewCipher(send.seeds[i*treeKeyLen : (i+1)*treeKeyLen])
		if err != nil {
			return nil, err
		}
		send.ciphers[i] = blk
	}
	return send, nil
}

// RestoreIKNPReceiver rebuilds a live extension receiver from a snapshot,
// carrying the batch counter forward (see RestoreIKNPSender).
func RestoreIKNPReceiver(st *IKNPReceiverState) (*IKNPReceiver, error) {
	if st == nil || len(st.Seed0) != iknpKappa*treeKeyLen || len(st.Seed1) != iknpKappa*treeKeyLen {
		return nil, fmt.Errorf("%w: bad receiver state shape", ErrIKNPResume)
	}
	recv := &IKNPReceiver{
		seed0:    make([][]byte, iknpKappa),
		seed1:    make([][]byte, iknpKappa),
		ciphers0: make([]cipher.Block, iknpKappa),
		ciphers1: make([]cipher.Block, iknpKappa),
		batch:    st.Batch,
	}
	for i := 0; i < iknpKappa; i++ {
		recv.seed0[i] = append([]byte(nil), st.Seed0[i*treeKeyLen:(i+1)*treeKeyLen]...)
		recv.seed1[i] = append([]byte(nil), st.Seed1[i*treeKeyLen:(i+1)*treeKeyLen]...)
		var err error
		if recv.ciphers0[i], err = aes.NewCipher(recv.seed0[i]); err != nil {
			return nil, err
		}
		if recv.ciphers1[i], err = aes.NewCipher(recv.seed1[i]); err != nil {
			return nil, err
		}
	}
	return recv, nil
}

// Batch reports the endpoint's lockstep batch counter (test/diagnostic
// visibility for the monotonicity discipline).
func (s *IKNPSender) Batch() uint32 { return s.batch }

// Batch reports the receiver's lockstep batch counter.
func (r *IKNPReceiver) Batch() uint32 { return r.batch }

// EncodeWire implements the wire codec.
func (st *IKNPSenderState) EncodeWire(w *wire.Writer) {
	w.ByteSlice(st.S)
	w.ByteSlice(st.Seeds)
	w.Uvarint(uint64(st.Batch))
}

// DecodeWire implements the wire codec.
func (st *IKNPSenderState) DecodeWire(r *wire.Reader) {
	st.S = r.ByteSlice()
	st.Seeds = r.ByteSlice()
	// The counter is 32-bit on the endpoints; wider hostile values are
	// truncated here and rejected by the shape checks in Restore.
	st.Batch = uint32(r.Uvarint())
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (st *IKNPSenderState) MarshalBinary() ([]byte, error) { return wire.Marshal(st) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (st *IKNPSenderState) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, st) }

// WriteTo implements io.WriterTo.
func (st *IKNPSenderState) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, st) }

// ReadFrom implements io.ReaderFrom.
func (st *IKNPSenderState) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, st) }

// EncodeWire implements the wire codec.
func (st *IKNPReceiverState) EncodeWire(w *wire.Writer) {
	w.ByteSlice(st.Seed0)
	w.ByteSlice(st.Seed1)
	w.Uvarint(uint64(st.Batch))
}

// DecodeWire implements the wire codec.
func (st *IKNPReceiverState) DecodeWire(r *wire.Reader) {
	st.Seed0 = r.ByteSlice()
	st.Seed1 = r.ByteSlice()
	st.Batch = uint32(r.Uvarint())
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (st *IKNPReceiverState) MarshalBinary() ([]byte, error) { return wire.Marshal(st) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (st *IKNPReceiverState) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, st) }

// WriteTo implements io.WriterTo.
func (st *IKNPReceiverState) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, st) }

// ReadFrom implements io.ReaderFrom.
func (st *IKNPReceiverState) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, st) }
