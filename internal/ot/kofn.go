package ot

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// ErrDuplicateIndex reports repeated indices in a k-out-of-n choice.
var ErrDuplicateIndex = errors.New("ot: duplicate choice index")

// BatchSetup carries the setups of the k parallel instances of a
// k-out-of-n transfer.
type BatchSetup struct {
	Setups []*SenderSetup
}

// BatchChoice carries the receiver's k public keys.
type BatchChoice struct {
	Choices []*ReceiverChoice
}

// BatchTransfer carries the k transfers.
type BatchTransfer struct {
	Transfers []*SenderTransfer
}

// BatchSender runs the sender role of a k-out-of-n transfer as k parallel
// 1-out-of-n instances (honest-but-curious; see package doc).
//
// The per-instance exponentiations — the OT bottleneck — are distributed
// across a worker pool (internal/parallel). All randomness is drawn
// serially before any parallel region, so the rng stream and every message
// are bit-identical at any parallelism degree.
type BatchSender struct {
	senders []*Sender
	par     int
}

// NewBatchSender prepares a k-out-of-n transfer of the given messages
// using all available cores (parallelism 0 = GOMAXPROCS).
func NewBatchSender(group Group, msgs [][]byte, k int, rng io.Reader) (*BatchSender, *BatchSetup, error) {
	return NewBatchSenderParallel(group, msgs, k, 0, rng)
}

// NewBatchSenderParallel is NewBatchSender with an explicit worker count
// (<= 0 selects GOMAXPROCS, 1 forces the serial path).
func NewBatchSenderParallel(group Group, msgs [][]byte, k, parallelism int, rng io.Reader) (*BatchSender, *BatchSetup, error) {
	span := obs.Start(obs.PhaseOTSenderSetup)
	defer span.End()
	if k < 1 || k > len(msgs) {
		return nil, nil, fmt.Errorf("ot: invalid k=%d for n=%d", k, len(msgs))
	}
	if len(msgs) < 2 {
		return nil, nil, fmt.Errorf("ot: need at least 2 messages, got %d", len(msgs))
	}
	for _, m := range msgs[1:] {
		if len(m) != len(msgs[0]) {
			return nil, nil, ErrMessageLen
		}
	}
	// One defensive copy of the messages, shared read-only by all k
	// instances (the serial construction copied them per instance).
	copied := make([][]byte, len(msgs))
	for i, m := range msgs {
		copied[i] = append([]byte(nil), m...)
	}
	// Draw every instance's constraint randomness serially, in the same
	// nested order as instance-by-instance construction; only the heavy
	// seed-to-element finish (a subgroup squaring for MODP groups, a
	// scalar multiplication for curves) runs in parallel.
	raw := make([][]*big.Int, k)
	for i := 0; i < k; i++ {
		rs := make([]*big.Int, len(msgs)-1)
		for j := range rs {
			x, err := group.RandomElementSeed(rng)
			if err != nil {
				return nil, nil, fmt.Errorf("ot: instance %d: %w", i, err)
			}
			rs[j] = x
		}
		raw[i] = rs
	}
	senders := make([]*Sender, k)
	setups := make([]*SenderSetup, k)
	_ = parallel.For(parallelism, k, func(i int) error {
		cs := make([]*big.Int, len(raw[i]))
		for j, x := range raw[i] {
			cs[j] = group.ElementFromSeed(x)
		}
		setup := &SenderSetup{Cs: cs}
		senders[i] = &Sender{group: group, msgs: copied, setup: setup}
		setups[i] = setup
		return nil
	})
	obs.Add(obs.CtrOTInstances, int64(k))
	return &BatchSender{senders: senders, par: parallelism}, &BatchSetup{Setups: setups}, nil
}

// Respond consumes the receiver's batched choice.
func (bs *BatchSender) Respond(choice *BatchChoice, rng io.Reader) (*BatchTransfer, error) {
	span := obs.Start(obs.PhaseOTSenderRespond)
	defer span.End()
	if choice == nil || len(choice.Choices) != len(bs.senders) {
		return nil, fmt.Errorf("%w: want %d choices", ErrBadMessage, len(bs.senders))
	}
	// Validate every choice and draw every ephemeral exponent serially
	// (matching the serial instance order), then fan out the
	// exponentiation-heavy responses.
	rs := make([]*big.Int, len(bs.senders))
	for i, s := range bs.senders {
		if err := s.checkChoice(choice.Choices[i]); err != nil {
			return nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		r, err := s.group.RandomScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		rs[i] = r
	}
	transfers := make([]*SenderTransfer, len(bs.senders))
	err := parallel.For(bs.par, len(bs.senders), func(i int) error {
		tr, err := bs.senders[i].respond(choice.Choices[i], rs[i])
		if err != nil {
			return fmt.Errorf("ot: instance %d: %w", i, err)
		}
		transfers[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &BatchTransfer{Transfers: transfers}, nil
}

// BatchReceiver runs the receiver role of a k-out-of-n transfer.
type BatchReceiver struct {
	receivers []*Receiver
	par       int
}

// NewBatchReceiver prepares the receiver's choice of the (distinct) indices
// among n messages using all available cores (parallelism 0 = GOMAXPROCS).
func NewBatchReceiver(group Group, n int, indices []int, setup *BatchSetup, rng io.Reader) (*BatchReceiver, *BatchChoice, error) {
	return NewBatchReceiverParallel(group, n, indices, setup, 0, rng)
}

// NewBatchReceiverParallel is NewBatchReceiver with an explicit worker
// count (<= 0 selects GOMAXPROCS, 1 forces the serial path).
func NewBatchReceiverParallel(group Group, n int, indices []int, setup *BatchSetup, parallelism int, rng io.Reader) (*BatchReceiver, *BatchChoice, error) {
	span := obs.Start(obs.PhaseOTReceiverChoice)
	defer span.End()
	if setup == nil || len(setup.Setups) != len(indices) {
		return nil, nil, fmt.Errorf("%w: setup count must equal k", ErrBadMessage)
	}
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if seen[idx] {
			return nil, nil, fmt.Errorf("%w: %d", ErrDuplicateIndex, idx)
		}
		seen[idx] = true
	}
	// Per instance: validate, then draw the secret exponent — the same
	// order as serial construction — before the parallel exponentiations.
	xs := make([]*big.Int, len(indices))
	for i, idx := range indices {
		if err := checkReceiverArgs(group, n, idx, setup.Setups[i]); err != nil {
			return nil, nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		x, err := group.RandomScalar(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		xs[i] = x
	}
	receivers := make([]*Receiver, len(indices))
	choices := make([]*ReceiverChoice, len(indices))
	err := parallel.For(parallelism, len(indices), func(i int) error {
		r, c, err := newReceiverWithSecret(group, n, indices[i], setup.Setups[i], xs[i])
		if err != nil {
			return fmt.Errorf("ot: instance %d: %w", i, err)
		}
		receivers[i] = r
		choices[i] = c
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return &BatchReceiver{receivers: receivers, par: parallelism}, &BatchChoice{Choices: choices}, nil
}

// Recover decrypts the k chosen messages, in choice order.
func (br *BatchReceiver) Recover(tr *BatchTransfer) ([][]byte, error) {
	span := obs.Start(obs.PhaseOTReceiverRecover)
	defer span.End()
	if tr == nil || len(tr.Transfers) != len(br.receivers) {
		return nil, fmt.Errorf("%w: want %d transfers", ErrBadMessage, len(br.receivers))
	}
	out := make([][]byte, len(br.receivers))
	err := parallel.For(br.par, len(br.receivers), func(i int) error {
		m, err := br.receivers[i].Recover(tr.Transfers[i])
		if err != nil {
			return fmt.Errorf("ot: instance %d: %w", i, err)
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Transfer1of2 runs a complete in-memory 1-out-of-2 transfer: the receiver
// learns msgs[bit] and nothing about the other message, the sender learns
// nothing about bit. It exists as the paper's base protocol (§III-B step 1)
// and as a convenience for tests and examples.
func Transfer1of2(group Group, msgs [2][]byte, bit int, rng io.Reader) ([]byte, error) {
	return Transfer1ofN(group, [][]byte{msgs[0], msgs[1]}, bit, rng)
}

// Transfer1ofN runs a complete in-memory 1-out-of-n transfer.
func Transfer1ofN(group Group, msgs [][]byte, sigma int, rng io.Reader) ([]byte, error) {
	sender, setup, err := NewSender(group, msgs, rng)
	if err != nil {
		return nil, err
	}
	receiver, choice, err := NewReceiver(group, len(msgs), sigma, setup, rng)
	if err != nil {
		return nil, err
	}
	tr, err := sender.Respond(choice, rng)
	if err != nil {
		return nil, err
	}
	return receiver.Recover(tr)
}

// TransferKofN runs a complete in-memory k-out-of-n transfer.
func TransferKofN(group Group, msgs [][]byte, indices []int, rng io.Reader) ([][]byte, error) {
	return TransferKofNParallel(group, msgs, indices, 0, rng)
}

// TransferKofNParallel is TransferKofN with an explicit worker count.
func TransferKofNParallel(group Group, msgs [][]byte, indices []int, parallelism int, rng io.Reader) ([][]byte, error) {
	sender, setup, err := NewBatchSenderParallel(group, msgs, len(indices), parallelism, rng)
	if err != nil {
		return nil, err
	}
	receiver, choice, err := NewBatchReceiverParallel(group, len(msgs), indices, setup, parallelism, rng)
	if err != nil {
		return nil, err
	}
	tr, err := sender.Respond(choice, rng)
	if err != nil {
		return nil, err
	}
	return receiver.Recover(tr)
}
