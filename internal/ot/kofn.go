package ot

import (
	"errors"
	"fmt"
	"io"
)

// ErrDuplicateIndex reports repeated indices in a k-out-of-n choice.
var ErrDuplicateIndex = errors.New("ot: duplicate choice index")

// BatchSetup carries the setups of the k parallel instances of a
// k-out-of-n transfer.
type BatchSetup struct {
	Setups []*SenderSetup
}

// BatchChoice carries the receiver's k public keys.
type BatchChoice struct {
	Choices []*ReceiverChoice
}

// BatchTransfer carries the k transfers.
type BatchTransfer struct {
	Transfers []*SenderTransfer
}

// BatchSender runs the sender role of a k-out-of-n transfer as k parallel
// 1-out-of-n instances (honest-but-curious; see package doc).
type BatchSender struct {
	senders []*Sender
}

// NewBatchSender prepares a k-out-of-n transfer of the given messages.
func NewBatchSender(group *Group, msgs [][]byte, k int, rng io.Reader) (*BatchSender, *BatchSetup, error) {
	if k < 1 || k > len(msgs) {
		return nil, nil, fmt.Errorf("ot: invalid k=%d for n=%d", k, len(msgs))
	}
	senders := make([]*Sender, k)
	setups := make([]*SenderSetup, k)
	for i := 0; i < k; i++ {
		s, setup, err := NewSender(group, msgs, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		senders[i] = s
		setups[i] = setup
	}
	return &BatchSender{senders: senders}, &BatchSetup{Setups: setups}, nil
}

// Respond consumes the receiver's batched choice.
func (bs *BatchSender) Respond(choice *BatchChoice, rng io.Reader) (*BatchTransfer, error) {
	if choice == nil || len(choice.Choices) != len(bs.senders) {
		return nil, fmt.Errorf("%w: want %d choices", ErrBadMessage, len(bs.senders))
	}
	transfers := make([]*SenderTransfer, len(bs.senders))
	for i, s := range bs.senders {
		tr, err := s.Respond(choice.Choices[i], rng)
		if err != nil {
			return nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		transfers[i] = tr
	}
	return &BatchTransfer{Transfers: transfers}, nil
}

// BatchReceiver runs the receiver role of a k-out-of-n transfer.
type BatchReceiver struct {
	receivers []*Receiver
}

// NewBatchReceiver prepares the receiver's choice of the (distinct) indices
// among n messages.
func NewBatchReceiver(group *Group, n int, indices []int, setup *BatchSetup, rng io.Reader) (*BatchReceiver, *BatchChoice, error) {
	if setup == nil || len(setup.Setups) != len(indices) {
		return nil, nil, fmt.Errorf("%w: setup count must equal k", ErrBadMessage)
	}
	seen := make(map[int]bool, len(indices))
	for _, idx := range indices {
		if seen[idx] {
			return nil, nil, fmt.Errorf("%w: %d", ErrDuplicateIndex, idx)
		}
		seen[idx] = true
	}
	receivers := make([]*Receiver, len(indices))
	choices := make([]*ReceiverChoice, len(indices))
	for i, idx := range indices {
		r, c, err := NewReceiver(group, n, idx, setup.Setups[i], rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		receivers[i] = r
		choices[i] = c
	}
	return &BatchReceiver{receivers: receivers}, &BatchChoice{Choices: choices}, nil
}

// Recover decrypts the k chosen messages, in choice order.
func (br *BatchReceiver) Recover(tr *BatchTransfer) ([][]byte, error) {
	if tr == nil || len(tr.Transfers) != len(br.receivers) {
		return nil, fmt.Errorf("%w: want %d transfers", ErrBadMessage, len(br.receivers))
	}
	out := make([][]byte, len(br.receivers))
	for i, r := range br.receivers {
		m, err := r.Recover(tr.Transfers[i])
		if err != nil {
			return nil, fmt.Errorf("ot: instance %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// Transfer1of2 runs a complete in-memory 1-out-of-2 transfer: the receiver
// learns msgs[bit] and nothing about the other message, the sender learns
// nothing about bit. It exists as the paper's base protocol (§III-B step 1)
// and as a convenience for tests and examples.
func Transfer1of2(group *Group, msgs [2][]byte, bit int, rng io.Reader) ([]byte, error) {
	return Transfer1ofN(group, [][]byte{msgs[0], msgs[1]}, bit, rng)
}

// Transfer1ofN runs a complete in-memory 1-out-of-n transfer.
func Transfer1ofN(group *Group, msgs [][]byte, sigma int, rng io.Reader) ([]byte, error) {
	sender, setup, err := NewSender(group, msgs, rng)
	if err != nil {
		return nil, err
	}
	receiver, choice, err := NewReceiver(group, len(msgs), sigma, setup, rng)
	if err != nil {
		return nil, err
	}
	tr, err := sender.Respond(choice, rng)
	if err != nil {
		return nil, err
	}
	return receiver.Recover(tr)
}

// TransferKofN runs a complete in-memory k-out-of-n transfer.
func TransferKofN(group *Group, msgs [][]byte, indices []int, rng io.Reader) ([][]byte, error) {
	sender, setup, err := NewBatchSender(group, msgs, len(indices), rng)
	if err != nil {
		return nil, err
	}
	receiver, choice, err := NewBatchReceiver(group, len(msgs), indices, setup, rng)
	if err != nil {
		return nil, err
	}
	tr, err := sender.Respond(choice, rng)
	if err != nil {
		return nil, err
	}
	return receiver.Recover(tr)
}
