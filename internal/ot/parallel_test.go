package ot

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"testing"
)

// detReader is a deterministic byte stream (SHA-256 in counter mode) so two
// protocol runs can consume identical randomness.
type detReader struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newDetReader(seed string) *detReader {
	return &detReader{seed: sha256.Sum256([]byte(seed))}
}

func (d *detReader) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		h := sha256.New()
		h.Write(d.seed[:])
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], d.counter)
		d.counter++
		h.Write(c[:])
		d.buf = h.Sum(d.buf)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// TestExpGMatchesExp checks the fixed-base window table against generic
// exponentiation across random and edge-case exponents.
func TestExpGMatchesExp(t *testing.T) {
	g := Group512Test()
	exps := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(15),
		big.NewInt(16),
		new(big.Int).Sub(g.Q, big.NewInt(1)),
		new(big.Int).Set(g.Q),
		new(big.Int).Add(g.Q, g.Q), // beyond the table width: fallback path
	}
	for i := 0; i < 32; i++ {
		e, err := rand.Int(rand.Reader, g.Q)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	for _, e := range exps {
		want := g.Exp(g.G, e)
		if got := g.ExpG(e); got.Cmp(want) != 0 {
			t.Fatalf("ExpG(%v) = %v, want %v", e, got, want)
		}
	}
}

// TestKofNParallelRoundTrip runs the batch transfer across worker counts,
// checking the recovered messages at each degree.
func TestKofNParallelRoundTrip(t *testing.T) {
	for _, group := range []Group{Group512Test(), X25519()} {
		t.Run(group.Name(), func(t *testing.T) {
			msgs := make([][]byte, 8)
			for i := range msgs {
				msgs[i] = []byte(fmt.Sprintf("message-%02d", i))
			}
			indices := []int{6, 0, 3}
			for _, par := range []int{0, 1, 2, 4, 8} {
				got, err := TransferKofNParallel(group, msgs, indices, par, rand.Reader)
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				for j, idx := range indices {
					if !bytes.Equal(got[j], msgs[idx]) {
						t.Fatalf("par=%d: recovered[%d] = %q, want %q", par, j, got[j], msgs[idx])
					}
				}
			}
		})
	}
}

// TestKofNParallelDeterministic checks that every protocol message is
// bit-identical across parallelism degrees when the rng stream is fixed:
// randomness is drawn serially, only the exponentiations fan out.
func TestKofNParallelDeterministic(t *testing.T) {
	for _, group := range []Group{Group512Test(), X25519()} {
		t.Run(group.Name(), func(t *testing.T) { testKofNDeterministic(t, group) })
	}
}

func testKofNDeterministic(t *testing.T, group Group) {
	msgs := make([][]byte, 6)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("payload-%02d", i))
	}
	indices := []int{4, 1}

	type trace struct {
		setups    []*SenderSetup
		choices   []*ReceiverChoice
		transfers []*SenderTransfer
	}
	runOnce := func(par int) trace {
		rng := newDetReader("kofn-determinism")
		sender, setup, err := NewBatchSenderParallel(group, msgs, len(indices), par, rng)
		if err != nil {
			t.Fatalf("par=%d sender: %v", par, err)
		}
		receiver, choice, err := NewBatchReceiverParallel(group, len(msgs), indices, setup, par, rng)
		if err != nil {
			t.Fatalf("par=%d receiver: %v", par, err)
		}
		tr, err := sender.Respond(choice, rng)
		if err != nil {
			t.Fatalf("par=%d respond: %v", par, err)
		}
		out, err := receiver.Recover(tr)
		if err != nil {
			t.Fatalf("par=%d recover: %v", par, err)
		}
		for j, idx := range indices {
			if !bytes.Equal(out[j], msgs[idx]) {
				t.Fatalf("par=%d: wrong message %d", par, j)
			}
		}
		return trace{setups: setup.Setups, choices: choice.Choices, transfers: tr.Transfers}
	}

	base := runOnce(1)
	for _, par := range []int{2, 4, 0} {
		got := runOnce(par)
		for i := range base.setups {
			for j := range base.setups[i].Cs {
				if base.setups[i].Cs[j].Cmp(got.setups[i].Cs[j]) != 0 {
					t.Fatalf("par=%d: setup %d constraint %d differs", par, i, j)
				}
			}
		}
		for i := range base.choices {
			if base.choices[i].PK0.Cmp(got.choices[i].PK0) != 0 {
				t.Fatalf("par=%d: choice %d differs", par, i)
			}
		}
		for i := range base.transfers {
			if base.transfers[i].R.Cmp(got.transfers[i].R) != 0 {
				t.Fatalf("par=%d: transfer %d R differs", par, i)
			}
			for j := range base.transfers[i].Cts {
				if !bytes.Equal(base.transfers[i].Cts[j], got.transfers[i].Cts[j]) {
					t.Fatalf("par=%d: transfer %d ciphertext %d differs", par, i, j)
				}
			}
		}
	}
}

// TestBatchRespondBadChoiceParallel checks that a malformed instance inside
// a batched choice fails cleanly (no hang, no partial success) on the
// parallel path.
func TestBatchRespondBadChoiceParallel(t *testing.T) {
	group := Group512Test()
	msgs := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc"), []byte("dd")}
	indices := []int{0, 2}
	sender, setup, err := NewBatchSenderParallel(group, msgs, len(indices), 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, choice, err := NewBatchReceiverParallel(group, len(msgs), indices, setup, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	choice.Choices[1] = &ReceiverChoice{PK0: new(big.Int)} // zero is invalid
	if _, err := sender.Respond(choice, rand.Reader); err == nil {
		t.Fatal("want error for invalid PK0 in batch")
	}
}
