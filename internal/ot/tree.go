package ot

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Tree-based 1-out-of-n oblivious transfer (Naor–Pinkas tree
// construction): the sender draws one key pair per index bit, encrypts
// message i under the hash of the keys selected by i's bits, and the
// receiver runs ⌈log₂ n⌉ parallel 1-out-of-2 transfers to learn exactly
// the keys on its own index's path. Public-key work drops from n+1
// exponentiations to 2·⌈log₂ n⌉+⌈log₂ n⌉ per transfer, at the cost of n
// hash evaluations — the better trade once n grows past a dozen or so
// (BenchmarkAblation in the root bench suite quantifies the crossover).
//
// Semi-honest security: the receiver learns one key per level, which
// decrypts exactly one ciphertext (the index whose bits all match its
// choices); the sender sees only the 1-of-2 public keys, which are
// uniform.

const treeKeyLen = 16

// TreeSetup carries the per-level 1-of-2 setups plus the ciphertexts.
type TreeSetup struct {
	Levels []*SenderSetup
	Cts    [][]byte
}

// TreeChoice carries the receiver's per-level 1-of-2 choices.
type TreeChoice struct {
	Levels []*ReceiverChoice
}

// TreeTransfer carries the per-level 1-of-2 transfers.
type TreeTransfer struct {
	Levels []*SenderTransfer
}

// TreeSender is the sender role of a tree 1-of-n transfer.
type TreeSender struct {
	levels []*Sender
}

// NewTreeSender prepares a tree transfer of the given equal-length
// messages.
func NewTreeSender(group Group, msgs [][]byte, rng io.Reader) (*TreeSender, *TreeSetup, error) {
	n := len(msgs)
	if n < 2 {
		return nil, nil, fmt.Errorf("ot: need at least 2 messages, got %d", n)
	}
	for _, m := range msgs[1:] {
		if len(m) != len(msgs[0]) {
			return nil, nil, ErrMessageLen
		}
	}
	depth := treeDepth(n)
	// One random key pair per level.
	keys := make([][2][]byte, depth)
	for j := range keys {
		for b := 0; b < 2; b++ {
			k := make([]byte, treeKeyLen)
			if _, err := rand.Read(k); err != nil {
				return nil, nil, err
			}
			keys[j][b] = k
		}
	}
	cts := make([][]byte, n)
	ctFlat := make([]byte, n*len(msgs[0]))
	path := make([][]byte, depth)
	for i, m := range msgs {
		for j := 0; j < depth; j++ {
			path[j] = keys[j][(i>>j)&1]
		}
		ct := ctFlat[i*len(m) : (i+1)*len(m)]
		treePadXor(ct, m, path, i)
		cts[i] = ct
	}
	// One 1-of-2 OT per level carrying that level's key pair.
	senders := make([]*Sender, depth)
	setups := make([]*SenderSetup, depth)
	for j := 0; j < depth; j++ {
		s, setup, err := NewSender(group, [][]byte{keys[j][0], keys[j][1]}, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: tree level %d: %w", j, err)
		}
		senders[j] = s
		setups[j] = setup
	}
	return &TreeSender{levels: senders}, &TreeSetup{Levels: setups, Cts: cts}, nil
}

// Respond answers the receiver's per-level choices.
func (ts *TreeSender) Respond(choice *TreeChoice, rng io.Reader) (*TreeTransfer, error) {
	if choice == nil || len(choice.Levels) != len(ts.levels) {
		return nil, fmt.Errorf("%w: want %d level choices", ErrBadMessage, len(ts.levels))
	}
	transfers := make([]*SenderTransfer, len(ts.levels))
	for j, s := range ts.levels {
		tr, err := s.Respond(choice.Levels[j], rng)
		if err != nil {
			return nil, fmt.Errorf("ot: tree level %d: %w", j, err)
		}
		transfers[j] = tr
	}
	return &TreeTransfer{Levels: transfers}, nil
}

// TreeReceiver is the receiver role of a tree 1-of-n transfer.
type TreeReceiver struct {
	levels []*Receiver
	sigma  int
	depth  int
	n      int
	cts    [][]byte
}

// NewTreeReceiver prepares the choice of index sigma given the sender's
// setup.
func NewTreeReceiver(group Group, n, sigma int, setup *TreeSetup, rng io.Reader) (*TreeReceiver, *TreeChoice, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("ot: need at least 2 messages, got %d", n)
	}
	if sigma < 0 || sigma >= n {
		return nil, nil, fmt.Errorf("%w: sigma=%d n=%d", ErrBadIndex, sigma, n)
	}
	depth := treeDepth(n)
	if setup == nil || len(setup.Levels) != depth || len(setup.Cts) != n {
		return nil, nil, fmt.Errorf("%w: malformed tree setup", ErrBadMessage)
	}
	receivers := make([]*Receiver, depth)
	choices := make([]*ReceiverChoice, depth)
	for j := 0; j < depth; j++ {
		bit := (sigma >> j) & 1
		r, c, err := NewReceiver(group, 2, bit, setup.Levels[j], rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ot: tree level %d: %w", j, err)
		}
		receivers[j] = r
		choices[j] = c
	}
	cts := make([][]byte, n)
	for i, ct := range setup.Cts {
		cts[i] = append([]byte(nil), ct...)
	}
	tr := &TreeReceiver{levels: receivers, sigma: sigma, depth: depth, n: n, cts: cts}
	return tr, &TreeChoice{Levels: choices}, nil
}

// Recover decrypts the chosen message.
func (tr *TreeReceiver) Recover(transfer *TreeTransfer) ([]byte, error) {
	if transfer == nil || len(transfer.Levels) != tr.depth {
		return nil, fmt.Errorf("%w: want %d level transfers", ErrBadMessage, tr.depth)
	}
	keys := make([][]byte, tr.depth)
	for j, r := range tr.levels {
		k, err := r.Recover(transfer.Levels[j])
		if err != nil {
			return nil, fmt.Errorf("ot: tree level %d: %w", j, err)
		}
		if len(k) != treeKeyLen {
			return nil, fmt.Errorf("%w: level %d key length %d", ErrBadMessage, j, len(k))
		}
		keys[j] = k
	}
	ct := tr.cts[tr.sigma]
	out := make([]byte, len(ct))
	treePadXor(out, ct, keys, tr.sigma)
	return out, nil
}

// Transfer1ofNTree runs a complete in-memory tree transfer.
func Transfer1ofNTree(group Group, msgs [][]byte, sigma int, rng io.Reader) ([]byte, error) {
	sender, setup, err := NewTreeSender(group, msgs, rng)
	if err != nil {
		return nil, err
	}
	receiver, choice, err := NewTreeReceiver(group, len(msgs), sigma, setup, rng)
	if err != nil {
		return nil, err
	}
	tr, err := sender.Respond(choice, rng)
	if err != nil {
		return nil, err
	}
	return receiver.Recover(tr)
}

func treeDepth(n int) int {
	return bits.Len(uint(n - 1))
}

// treePadPrefix domain-separates the tree-OT pad derivation.
const treePadPrefix = "ppdc-ot-tree-v1"

// treePadXor writes dst = src ⊕ pad(path, index). Pads up to one SHA-256
// output with paths up to 8 levels (n ≤ 256, which covers every OMPE
// decoy set) cost a single compression over a stack buffer; anything
// larger falls back to the counter-mode derivation, whose counter-0 block
// the fast path reproduces exactly.
func treePadXor(dst, src []byte, path [][]byte, index int) {
	if len(src) <= sha256.Size && len(path) <= 8 {
		var buf [len(treePadPrefix) + 8*treeKeyLen + 8]byte
		off := copy(buf[:], treePadPrefix)
		fixed := true
		for _, k := range path {
			if len(k) != treeKeyLen {
				fixed = false
				break
			}
			off += copy(buf[off:], k)
		}
		if fixed {
			binary.BigEndian.PutUint32(buf[off:], uint32(index))
			binary.BigEndian.PutUint32(buf[off+4:], 0)
			sum := sha256.Sum256(buf[:off+8])
			for p := range src {
				dst[p] = src[p] ^ sum[p]
			}
			return
		}
	}
	pad := treePadFromKeys(path, index, len(src))
	for p := range src {
		dst[p] = src[p] ^ pad[p]
	}
}

// treePadFromKeys derives the pad from one key per level, in counter mode
// over SHA-256, domain-separated by the index.
func treePadFromKeys(path [][]byte, index, n int) []byte {
	out := make([]byte, 0, n)
	var block [8]byte
	for counter := uint32(0); len(out) < n; counter++ {
		h := sha256.New()
		h.Write([]byte(treePadPrefix))
		for _, k := range path {
			h.Write(k)
		}
		binary.BigEndian.PutUint32(block[:4], uint32(index))
		binary.BigEndian.PutUint32(block[4:], counter)
		h.Write(block[:])
		out = h.Sum(out)
	}
	return out[:n]
}
