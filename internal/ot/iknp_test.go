package ot_test

import (
	"bytes"
	"crypto/rand"
	mrand "math/rand/v2"
	"testing"

	"repro/internal/ot"
)

func TestIKNPBatch(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	const m = 200
	rng := mrand.New(mrand.NewPCG(1, 2))
	choices := make([]int, m)
	x0 := make([][]byte, m)
	x1 := make([][]byte, m)
	for j := 0; j < m; j++ {
		choices[j] = rng.IntN(2)
		x0[j] = make([]byte, 32)
		x1[j] = make([]byte, 32)
		if _, err := rand.Read(x0[j]); err != nil {
			t.Fatal(err)
		}
		if _, err := rand.Read(x1[j]); err != nil {
			t.Fatal(err)
		}
	}
	ext, recvMsg, err := receiver.Extend(choices)
	if err != nil {
		t.Fatal(err)
	}
	sendMsg, err := sender.Respond(recvMsg, x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ext.Recover(sendMsg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m; j++ {
		want := x0[j]
		other := x1[j]
		if choices[j] == 1 {
			want, other = x1[j], x0[j]
		}
		if !bytes.Equal(got[j], want) {
			t.Fatalf("transfer %d: wrong message", j)
		}
		if bytes.Equal(got[j], other) {
			t.Fatalf("transfer %d: recovered the non-chosen message", j)
		}
	}
}

// TestIKNPNonChosenUnreadable: decrypting the other slot with the
// receiver's row must yield garbage — the pad for q_j⊕s differs by the
// secret s.
func TestIKNPNonChosenUnreadable(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	choices := []int{0, 1, 0, 1}
	x0 := [][]byte{[]byte("zero-msg-0000000"), []byte("zero-msg-1111111"), []byte("zero-msg-2222222"), []byte("zero-msg-3333333")}
	x1 := [][]byte{[]byte("one-msg-00000000"), []byte("one-msg-11111111"), []byte("one-msg-22222222"), []byte("one-msg-33333333")}
	ext, recvMsg, err := receiver.Extend(choices)
	if err != nil {
		t.Fatal(err)
	}
	sendMsg, err := sender.Respond(recvMsg, x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the ciphertext pairs so the receiver decrypts the slot it did
	// not choose with its own pads.
	swapped := &ot.IKNPSenderMsg{Y0: sendMsg.Y1, Y1: sendMsg.Y0, MsgLen: sendMsg.MsgLen}
	leaked, err := ext.Recover(swapped)
	if err != nil {
		t.Fatal(err)
	}
	for j := range choices {
		other := x1[j]
		if choices[j] == 1 {
			other = x0[j]
		}
		if bytes.Equal(leaked[j], other) {
			t.Fatalf("transfer %d: non-chosen message readable", j)
		}
	}
}

func TestIKNPValidation(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := receiver.Extend(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, _, err := receiver.Extend([]int{2}); err == nil {
		t.Fatal("non-bit choice should fail")
	}
	ext, msg, err := receiver.Extend([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Respond(nil, nil, nil); err == nil {
		t.Fatal("nil message should fail")
	}
	if _, err := sender.Respond(msg, [][]byte{{1}}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("pair-count mismatch should fail")
	}
	if _, err := sender.Respond(msg, [][]byte{{1}, {2, 3}}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("unequal message lengths should fail")
	}
	if _, err := ext.Recover(nil); err == nil {
		t.Fatal("nil ciphertext batch should fail")
	}
}

// TestIKNPSecondBatch: one base phase serves multiple Extend batches —
// both endpoints advance a lockstep batch counter so every batch gets
// fresh pseudorandom columns (reuse would leak r ⊕ r').
func TestIKNPSecondBatch(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		choices := []int{1, 0, 1}
		x0 := [][]byte{{10}, {20}, {30}}
		x1 := [][]byte{{11}, {21}, {31}}
		ext, recvMsg, err := receiver.Extend(choices)
		if err != nil {
			t.Fatal(err)
		}
		sendMsg, err := sender.Respond(recvMsg, x0, x1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ext.Recover(sendMsg)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{11, 20, 31}
		for j := range want {
			if got[j][0] != want[j] {
				t.Fatalf("round %d transfer %d: got %d want %d", round, j, got[j][0], want[j])
			}
		}
	}
}

func TestExtKofN(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Several sequential queries on one session.
	for round := 0; round < 3; round++ {
		msgs := make([][]byte, 6)
		for i := range msgs {
			msgs[i] = make([]byte, 32)
			if _, err := rand.Read(msgs[i]); err != nil {
				t.Fatal(err)
			}
		}
		indices := []int{5, 0, 3}
		q, req, err := ot.NewExtKofNQuery(receiver, len(msgs), indices)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ot.ExtKofNRespond(sender, req, msgs, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Recover(resp)
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range indices {
			if !bytes.Equal(got[i], msgs[idx]) {
				t.Fatalf("round %d: index %d wrong", round, idx)
			}
		}
	}
}

func TestExtKofNValidation(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ot.NewExtKofNQuery(receiver, 1, []int{0}); err == nil {
		t.Fatal("n=1 should fail")
	}
	if _, _, err := ot.NewExtKofNQuery(receiver, 4, []int{1, 1}); err == nil {
		t.Fatal("duplicate indices should fail")
	}
	if _, _, err := ot.NewExtKofNQuery(receiver, 4, []int{4}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	_, req, err := ot.NewExtKofNQuery(receiver, 4, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{{1}, {2}, {3}, {4}}
	if _, err := ot.ExtKofNRespond(sender, req, msgs[:3], rand.Reader); err == nil {
		t.Fatal("message-count mismatch should fail")
	}
	if _, err := ot.ExtKofNRespond(sender, nil, msgs, rand.Reader); err == nil {
		t.Fatal("nil request should fail")
	}
}

// TestExtKofNNonChosenUnreadable: an instance's path keys decrypt only
// its chosen index.
func TestExtKofNNonChosenUnreadable(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 8)
	for i := range msgs {
		msgs[i] = make([]byte, 24)
		if _, err := rand.Read(msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	q, req, err := ot.NewExtKofNQuery(receiver, len(msgs), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ot.ExtKofNRespond(sender, req, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Swap another ciphertext into the chosen slot: the path pad must not
	// decrypt it (index domain separation + different key path).
	copy(resp.Cts[2*resp.MsgLen:3*resp.MsgLen], resp.Cts[5*resp.MsgLen:6*resp.MsgLen])
	leaked, err := q.Recover(resp)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(leaked[0], msgs[5]) {
		t.Fatal("non-chosen message readable through the path keys")
	}
}

func TestExtKofNBatch(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	indices := [][]int{{5, 0, 3}, {1, 2, 4}, {0, 1, 5}, {3, 4, 2}}
	msgs := make([][][]byte, len(indices))
	for b := range msgs {
		msgs[b] = make([][]byte, n)
		for i := range msgs[b] {
			msgs[b][i] = make([]byte, 32)
			if _, err := rand.Read(msgs[b][i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	q, req, err := ot.NewExtKofNBatchQuery(receiver, n, indices)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ot.ExtKofNBatchRespond(sender, req, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Recover(resp)
	if err != nil {
		t.Fatal(err)
	}
	for b, idx := range indices {
		for i, sel := range idx {
			if !bytes.Equal(got[b][i], msgs[b][sel]) {
				t.Fatalf("sample %d index %d wrong", b, sel)
			}
		}
	}
}

// TestExtKofNInFlight: two queries opened before either response arrives —
// the per-batch extension state must not be clobbered by the second
// Extend, as long as responses come back in FIFO order.
func TestExtKofNInFlight(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 4)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i * 7), byte(i * 13)}
	}
	q1, req1, err := ot.NewExtKofNQuery(receiver, len(msgs), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	q2, req2, err := ot.NewExtKofNQuery(receiver, len(msgs), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	resp1, err := ot.ExtKofNRespond(sender, req1, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := ot.ExtKofNRespond(sender, req2, msgs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := q1.Recover(resp1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := q2.Recover(resp2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1[0], msgs[2]) {
		t.Fatal("first in-flight query corrupted")
	}
	if !bytes.Equal(got2[0], msgs[1]) || !bytes.Equal(got2[1], msgs[3]) {
		t.Fatal("second in-flight query corrupted")
	}
}

func TestExtKofNBatchValidation(t *testing.T) {
	g := ot.Group512Test()
	sender, receiver, err := ot.NewIKNP(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ot.NewExtKofNBatchQuery(receiver, 4, nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, _, err := ot.NewExtKofNBatchQuery(receiver, 4, [][]int{{0, 1}, {2}}); err == nil {
		t.Fatal("ragged index sets should fail")
	}
	if _, _, err := ot.NewExtKofNBatchQuery(receiver, 4, [][]int{{0, 0}}); err == nil {
		t.Fatal("duplicate indices should fail")
	}
	_, req, err := ot.NewExtKofNBatchQuery(receiver, 4, [][]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][][]byte{{{1}, {2}, {3}, {4}}, {{5}, {6}, {7}, {8}}}
	if _, err := ot.ExtKofNBatchRespond(sender, req, msgs[:1], rand.Reader); err == nil {
		t.Fatal("sample-count mismatch should fail")
	}
	if _, err := ot.ExtKofNBatchRespond(sender, nil, msgs, rand.Reader); err == nil {
		t.Fatal("nil request should fail")
	}
}
