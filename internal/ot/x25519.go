package ot

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"repro/internal/ec25519"
	"repro/internal/obs"
)

// X25519Group adapts the edwards25519 prime-order subgroup (internal/
// ec25519) to the Group interface. A group element is the 32-byte
// compressed point encoding, carried as the big-endian *big.Int of those
// bytes so that the Naor–Pinkas message structs, gob wire format, and
// key-derivation path (elem.FillBytes) are identical to the MODP
// backends'. "Exponentiation" is scalar multiplication; per-operation
// cost drops from milliseconds (modp2048 square-and-multiply) to tens of
// microseconds, which is what makes per-session base-OT setup disappear
// under IKNP amortization.
//
// Random elements are sampled as g^s for a secret uniform scalar s — the
// sampler's knowledge of s is harmless in the paper's honest-but-curious
// model, where the Naor–Pinkas constraint elements are chosen by the
// sender about its own messages. The seed/finish split lets batch
// constructors draw s serially and run the scalar multiplications in
// parallel, keeping wire bytes deterministic at any parallelism.
type X25519Group struct{}

// X25519 returns the edwards25519 OT group backend.
func X25519() *X25519Group { return &X25519Group{} }

// Name returns "x25519".
func (g *X25519Group) Name() string { return "x25519" }

// Bits returns the field size (255) of the underlying curve.
func (g *X25519Group) Bits() int { return 255 }

// ElementLen returns the compressed point size (32 bytes).
func (g *X25519Group) ElementLen() int { return ec25519.PointLen }

// decodePoint interprets a wire integer as a compressed point.
func (g *X25519Group) decodePoint(x *big.Int) (*ec25519.Point, error) {
	if x == nil || x.Sign() < 0 || x.BitLen() > 8*ec25519.PointLen {
		return nil, fmt.Errorf("%w: element out of range", ErrBadMessage)
	}
	var buf [ec25519.PointLen]byte
	x.FillBytes(buf[:])
	var p ec25519.Point
	if err := p.Decode(buf[:]); err != nil {
		return nil, err
	}
	return &p, nil
}

func encodePoint(p *ec25519.Point) *big.Int {
	return new(big.Int).SetBytes(p.Bytes())
}

// identityElem is the wire form of the neutral element, returned by the
// error-less group operations for inputs that fail to decode. Protocol
// paths never hit it: every element is checked with ValidElement on
// receipt, before any arithmetic.
func identityElem() *big.Int {
	var id ec25519.Point
	return encodePoint(id.SetIdentity())
}

// Exp returns [e]·base.
func (g *X25519Group) Exp(base, e *big.Int) *big.Int {
	obs.Add(obs.CtrGroupExp, 1)
	p, err := g.decodePoint(base)
	if err != nil {
		return identityElem()
	}
	return encodePoint(p.ScalarMult(e, p))
}

// ExpG returns [e]·B via the fixed-base table.
func (g *X25519Group) ExpG(e *big.Int) *big.Int {
	obs.Add(obs.CtrGroupExp, 1)
	var p ec25519.Point
	return encodePoint(p.ScalarBaseMult(e))
}

// Mul returns the point sum a + b.
func (g *X25519Group) Mul(a, b *big.Int) *big.Int {
	pa, err := g.decodePoint(a)
	if err != nil {
		return identityElem()
	}
	pb, err := g.decodePoint(b)
	if err != nil {
		return identityElem()
	}
	return encodePoint(pa.Add(pa, pb))
}

// Inv returns the point negation −a.
func (g *X25519Group) Inv(a *big.Int) (*big.Int, error) {
	p, err := g.decodePoint(a)
	if err != nil {
		return nil, fmt.Errorf("ot: %w", err)
	}
	return encodePoint(p.Neg(p)), nil
}

// ValidElement reports whether x decodes to a canonical curve point.
func (g *X25519Group) ValidElement(x *big.Int) bool {
	_, err := g.decodePoint(x)
	return err == nil
}

// RandomScalar samples a uniform scalar in [1, L).
func (g *X25519Group) RandomScalar(rng io.Reader) (*big.Int, error) {
	lm1 := new(big.Int).Sub(ec25519.Order(), big.NewInt(1))
	x, err := rand.Int(rng, lm1)
	if err != nil {
		return nil, fmt.Errorf("ot: sample scalar: %w", err)
	}
	return x.Add(x, big.NewInt(1)), nil
}

// RandomElementSeed draws the secret scalar behind a random element.
func (g *X25519Group) RandomElementSeed(rng io.Reader) (*big.Int, error) {
	return g.RandomScalar(rng)
}

// ElementFromSeed finishes the sample: [seed]·B.
func (g *X25519Group) ElementFromSeed(seed *big.Int) *big.Int {
	var p ec25519.Point
	return encodePoint(p.ScalarBaseMult(seed))
}
