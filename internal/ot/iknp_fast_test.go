package ot

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// TestTranspose8x8 checks the word-level 8×8 transpose against a per-bit
// reference: element (byte k, bit r) must move to (byte r, bit k).
func TestTranspose8x8(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		x := rng.Uint64()
		got := transpose8x8(x)
		var want uint64
		for k := 0; k < 8; k++ {
			for r := 0; r < 8; r++ {
				bit := (x >> (8*k + r)) & 1
				want |= bit << (8*r + k)
			}
		}
		if got != want {
			t.Fatalf("transpose8x8(%#x) = %#x, want %#x", x, got, want)
		}
		if transpose8x8(got) != x {
			t.Fatalf("transpose8x8 is not an involution at %#x", x)
		}
	}
}

// TestTransposeColumns checks the blocked column→row transpose against a
// naive getBit/setBit reference across awkward row counts.
func TestTransposeColumns(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for _, m := range []int{1, 7, 8, 9, 63, 64, 65, 129, 300} {
		colBytes := (m + 7) / 8
		cols := make([][]byte, iknpKappa)
		for i := range cols {
			cols[i] = make([]byte, colBytes)
			for b := range cols[i] {
				cols[i][b] = byte(rng.Uint32())
			}
		}
		got := transposeColumns(cols, m)
		want := make([]byte, len(got))
		for j := 0; j < m; j++ {
			row := want[j*iknpRowBytes : (j+1)*iknpRowBytes]
			for i := 0; i < iknpKappa; i++ {
				if getBit(cols[i], j) == 1 {
					setBit(row, i)
				}
			}
		}
		for j := 0; j < m; j++ {
			g := got[j*iknpRowBytes : (j+1)*iknpRowBytes]
			w := want[j*iknpRowBytes : (j+1)*iknpRowBytes]
			if !bytes.Equal(g, w) {
				t.Fatalf("m=%d row %d: got %x, want %x", m, j, g, w)
			}
		}
	}
}

// TestRowHashXorMatchesCounterMode pins the single-compression fast path
// to the counter-mode derivation it shortcuts.
func TestRowHashXorMatchesCounterMode(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	row := make([]byte, iknpRowBytes)
	for _, msgLen := range []int{1, 16, 32, 33, 100} {
		for b := range row {
			row[b] = byte(rng.Uint32())
		}
		src := make([]byte, msgLen)
		for b := range src {
			src[b] = byte(rng.Uint32())
		}
		dst := make([]byte, msgLen)
		rowHashXor(dst, src, 42, row)
		pad := rowHash(42, row, msgLen)
		for b := range src {
			if dst[b] != src[b]^pad[b] {
				t.Fatalf("msgLen=%d byte %d: fast path diverges from counter mode", msgLen, b)
			}
		}
	}
}

// TestTreePadXorMatchesCounterMode pins the stack-buffer tree-pad fast
// path to treePadFromKeys, including the fallback sizes.
func TestTreePadXorMatchesCounterMode(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	for _, depth := range []int{1, 3, 8, 9} {
		path := make([][]byte, depth)
		for j := range path {
			path[j] = make([]byte, treeKeyLen)
			for b := range path[j] {
				path[j][b] = byte(rng.Uint32())
			}
		}
		for _, msgLen := range []int{1, 32, 33, 80} {
			src := make([]byte, msgLen)
			for b := range src {
				src[b] = byte(rng.Uint32())
			}
			dst := make([]byte, msgLen)
			treePadXor(dst, src, path, 5)
			pad := treePadFromKeys(path, 5, msgLen)
			for b := range src {
				if dst[b] != src[b]^pad[b] {
					t.Fatalf("depth=%d msgLen=%d byte %d: fast path diverges", depth, msgLen, b)
				}
			}
		}
	}
}
