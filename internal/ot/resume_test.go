package ot_test

// Snapshot/restore differential tests: a restored IKNP pair must be
// byte-for-byte indistinguishable from the original pair continuing the
// same session, and the batch counter must carry forward monotonically —
// the property that makes cross-session pad reuse impossible.

import (
	"bytes"
	"crypto/rand"
	"errors"
	mrand "math/rand/v2"
	"testing"

	"repro/internal/ot"
)

// extBatch runs one extension batch with deterministic inputs derived
// from seed and returns the two wire messages plus the recovered
// transfers.
func extBatch(t *testing.T, sender *ot.IKNPSender, receiver *ot.IKNPReceiver, seed uint64, m int) (*ot.IKNPReceiverMsg, *ot.IKNPSenderMsg, [][]byte) {
	t.Helper()
	rng := mrand.New(mrand.NewPCG(seed, seed^0xdead))
	choices := make([]int, m)
	x0 := make([][]byte, m)
	x1 := make([][]byte, m)
	for j := 0; j < m; j++ {
		choices[j] = rng.IntN(2)
		x0[j] = make([]byte, 32)
		x1[j] = make([]byte, 32)
		for i := range x0[j] {
			x0[j][i] = byte(rng.Uint32())
			x1[j][i] = byte(rng.Uint32())
		}
	}
	ext, recvMsg, err := receiver.Extend(choices)
	if err != nil {
		t.Fatal(err)
	}
	sendMsg, err := sender.Respond(recvMsg, x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ext.Recover(sendMsg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m; j++ {
		want := x0[j]
		if choices[j] == 1 {
			want = x1[j]
		}
		if !bytes.Equal(got[j], want) {
			t.Fatalf("transfer %d: wrong message", j)
		}
	}
	return recvMsg, sendMsg, got
}

// TestIKNPSnapshotRestoreDifferential: after one extension batch, both
// endpoints are snapshotted; the restored pair then runs the next batch
// on the same inputs as the original pair. Extension is deterministic
// given the base state and the batch counter, so every wire byte and
// recovered transfer must match exactly — any divergence means the
// restore lost or reset part of the cryptographic position.
func TestIKNPSnapshotRestoreDifferential(t *testing.T) {
	sender, receiver, err := ot.NewIKNP(ot.Group512Test(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	extBatch(t, sender, receiver, 1, 64)

	sst, err := sender.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rst, err := receiver.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sst.Batch != rst.Batch {
		t.Fatalf("snapshot counters out of lockstep: sender %d, receiver %d", sst.Batch, rst.Batch)
	}
	if sst.Batch == 0 {
		t.Fatal("batch counter did not advance before snapshot")
	}

	restoredSender, err := ot.RestoreIKNPSender(sst)
	if err != nil {
		t.Fatal(err)
	}
	restoredReceiver, err := ot.RestoreIKNPReceiver(rst)
	if err != nil {
		t.Fatal(err)
	}
	if restoredSender.Batch() != sst.Batch || restoredReceiver.Batch() != rst.Batch {
		t.Fatal("restore reset the batch counter")
	}

	// Same next-batch inputs on both pairs: identical wire bytes and
	// transfers.
	recvA, sendA, gotA := extBatch(t, sender, receiver, 2, 48)
	recvB, sendB, gotB := extBatch(t, restoredSender, restoredReceiver, 2, 48)
	if !bytes.Equal(recvA.U, recvB.U) || recvA.M != recvB.M {
		t.Fatal("restored receiver's extension message diverges from the original")
	}
	if !bytes.Equal(sendA.Y0, sendB.Y0) || !bytes.Equal(sendA.Y1, sendB.Y1) || sendA.MsgLen != sendB.MsgLen {
		t.Fatal("restored sender's response diverges from the original")
	}
	for j := range gotA {
		if !bytes.Equal(gotA[j], gotB[j]) {
			t.Fatalf("transfer %d diverges after restore", j)
		}
	}
	if restoredSender.Batch() != sender.Batch() {
		t.Fatalf("counters diverged after the differential batch: %d vs %d", restoredSender.Batch(), sender.Batch())
	}
}

// TestIKNPResumeCounterMonotonic: a chain of snapshot/restore hops never
// repeats a batch counter value — each hop resumes strictly past
// everything the previous sessions consumed, so the (column, batch,
// counter) PRG domains never collide across the chain.
func TestIKNPResumeCounterMonotonic(t *testing.T) {
	sender, receiver, err := ot.NewIKNP(ot.Group512Test(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var last uint32
	for hop := 0; hop < 3; hop++ {
		extBatch(t, sender, receiver, uint64(10+hop), 16)
		sst, err := sender.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if hop > 0 && sst.Batch <= last {
			t.Fatalf("hop %d: counter %d did not advance past %d", hop, sst.Batch, last)
		}
		last = sst.Batch
		if sender, err = ot.RestoreIKNPSender(sst); err != nil {
			t.Fatal(err)
		}
		rst, err := receiver.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if receiver, err = ot.RestoreIKNPReceiver(rst); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIKNPRestoreValidation: hostile or truncated states are rejected by
// shape, never partially accepted.
func TestIKNPRestoreValidation(t *testing.T) {
	sender, receiver, err := ot.NewIKNP(ot.Group512Test(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := sender.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rst, err := receiver.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func() error
	}{
		{"nil sender", func() error { _, err := ot.RestoreIKNPSender(nil); return err }},
		{"short s", func() error {
			bad := *sst
			bad.S = bad.S[:len(bad.S)-1]
			_, err := ot.RestoreIKNPSender(&bad)
			return err
		}},
		{"short sender seeds", func() error {
			bad := *sst
			bad.Seeds = bad.Seeds[:len(bad.Seeds)-1]
			_, err := ot.RestoreIKNPSender(&bad)
			return err
		}},
		{"nil receiver", func() error { _, err := ot.RestoreIKNPReceiver(nil); return err }},
		{"short seed0", func() error {
			bad := *rst
			bad.Seed0 = bad.Seed0[:16]
			_, err := ot.RestoreIKNPReceiver(&bad)
			return err
		}},
		{"short seed1", func() error {
			bad := *rst
			bad.Seed1 = nil
			_, err := ot.RestoreIKNPReceiver(&bad)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.mut(); !errors.Is(err, ot.ErrIKNPResume) {
			t.Errorf("%s: error = %v, want ErrIKNPResume", tc.name, err)
		}
	}
}
