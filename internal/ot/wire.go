package ot

import (
	"io"
	"math/big"

	"repro/internal/wire"
)

// Binary wire encodings for every OT message type. Each type implements
// encoding.BinaryMarshaler/Unmarshaler and io.WriterTo/ReaderFrom via a
// single EncodeWire/DecodeWire pair (see internal/wire); the transport's
// binary codec frames these encodings, and the golden-transcript suite
// pins their bytes.

// EncodeWire implements the wire codec.
func (s *SenderSetup) EncodeWire(w *wire.Writer) {
	w.Count(len(s.Cs))
	for _, c := range s.Cs {
		w.BigInt(c)
	}
}

// DecodeWire implements the wire codec.
func (s *SenderSetup) DecodeWire(r *wire.Reader) {
	n := r.Count()
	if r.Err() != nil {
		return
	}
	s.Cs = make([]*big.Int, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		s.Cs = append(s.Cs, r.BigInt())
		if r.Err() != nil {
			return
		}
	}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SenderSetup) MarshalBinary() ([]byte, error) { return wire.Marshal(s) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *SenderSetup) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, s) }

// WriteTo implements io.WriterTo.
func (s *SenderSetup) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, s) }

// ReadFrom implements io.ReaderFrom.
func (s *SenderSetup) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, s) }

// EncodeWire implements the wire codec.
func (c *ReceiverChoice) EncodeWire(w *wire.Writer) { w.BigInt(c.PK0) }

// DecodeWire implements the wire codec.
func (c *ReceiverChoice) DecodeWire(r *wire.Reader) { c.PK0 = r.BigInt() }

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *ReceiverChoice) MarshalBinary() ([]byte, error) { return wire.Marshal(c) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *ReceiverChoice) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, c) }

// WriteTo implements io.WriterTo.
func (c *ReceiverChoice) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, c) }

// ReadFrom implements io.ReaderFrom.
func (c *ReceiverChoice) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, c) }

// EncodeWire implements the wire codec.
func (t *SenderTransfer) EncodeWire(w *wire.Writer) {
	w.BigInt(t.R)
	w.Count(len(t.Cts))
	for _, ct := range t.Cts {
		w.ByteSlice(ct)
	}
}

// DecodeWire implements the wire codec.
func (t *SenderTransfer) DecodeWire(r *wire.Reader) {
	t.R = r.BigInt()
	n := r.Count()
	if r.Err() != nil {
		return
	}
	t.Cts = make([][]byte, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		t.Cts = append(t.Cts, r.ByteSlice())
		if r.Err() != nil {
			return
		}
	}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *SenderTransfer) MarshalBinary() ([]byte, error) { return wire.Marshal(t) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *SenderTransfer) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, t) }

// WriteTo implements io.WriterTo.
func (t *SenderTransfer) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, t) }

// ReadFrom implements io.ReaderFrom.
func (t *SenderTransfer) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, t) }

// setupSeq/choiceSeq/transferSeq factor the shared list encodings of the
// batch and IKNP-base message families.

func encodeSetupSeq(w *wire.Writer, setups []*SenderSetup) {
	w.Count(len(setups))
	for _, s := range setups {
		if s == nil {
			w.BigInt(nil) // typed ErrNilValue via the sticky writer
			return
		}
		s.EncodeWire(w)
	}
}

func decodeSetupSeq(r *wire.Reader) []*SenderSetup {
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	out := make([]*SenderSetup, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		s := new(SenderSetup)
		s.DecodeWire(r)
		if r.Err() != nil {
			return nil
		}
		out = append(out, s)
	}
	return out
}

func encodeChoiceSeq(w *wire.Writer, choices []*ReceiverChoice) {
	w.Count(len(choices))
	for _, c := range choices {
		if c == nil {
			w.BigInt(nil)
			return
		}
		c.EncodeWire(w)
	}
}

func decodeChoiceSeq(r *wire.Reader) []*ReceiverChoice {
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	out := make([]*ReceiverChoice, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		c := new(ReceiverChoice)
		c.DecodeWire(r)
		if r.Err() != nil {
			return nil
		}
		out = append(out, c)
	}
	return out
}

func encodeTransferSeq(w *wire.Writer, transfers []*SenderTransfer) {
	w.Count(len(transfers))
	for _, t := range transfers {
		if t == nil {
			w.BigInt(nil)
			return
		}
		t.EncodeWire(w)
	}
}

func decodeTransferSeq(r *wire.Reader) []*SenderTransfer {
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	out := make([]*SenderTransfer, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		t := new(SenderTransfer)
		t.DecodeWire(r)
		if r.Err() != nil {
			return nil
		}
		out = append(out, t)
	}
	return out
}

// EncodeWire implements the wire codec.
func (b *BatchSetup) EncodeWire(w *wire.Writer) { encodeSetupSeq(w, b.Setups) }

// DecodeWire implements the wire codec.
func (b *BatchSetup) DecodeWire(r *wire.Reader) { b.Setups = decodeSetupSeq(r) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *BatchSetup) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *BatchSetup) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *BatchSetup) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *BatchSetup) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *BatchChoice) EncodeWire(w *wire.Writer) { encodeChoiceSeq(w, b.Choices) }

// DecodeWire implements the wire codec.
func (b *BatchChoice) DecodeWire(r *wire.Reader) { b.Choices = decodeChoiceSeq(r) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *BatchChoice) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *BatchChoice) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *BatchChoice) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *BatchChoice) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *BatchTransfer) EncodeWire(w *wire.Writer) { encodeTransferSeq(w, b.Transfers) }

// DecodeWire implements the wire codec.
func (b *BatchTransfer) DecodeWire(r *wire.Reader) { b.Transfers = decodeTransferSeq(r) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *BatchTransfer) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *BatchTransfer) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *BatchTransfer) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *BatchTransfer) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *IKNPBaseSetup) EncodeWire(w *wire.Writer) { encodeSetupSeq(w, b.Setups) }

// DecodeWire implements the wire codec.
func (b *IKNPBaseSetup) DecodeWire(r *wire.Reader) { b.Setups = decodeSetupSeq(r) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *IKNPBaseSetup) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *IKNPBaseSetup) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *IKNPBaseSetup) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *IKNPBaseSetup) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *IKNPBaseChoice) EncodeWire(w *wire.Writer) { encodeChoiceSeq(w, b.Choices) }

// DecodeWire implements the wire codec.
func (b *IKNPBaseChoice) DecodeWire(r *wire.Reader) { b.Choices = decodeChoiceSeq(r) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *IKNPBaseChoice) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *IKNPBaseChoice) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *IKNPBaseChoice) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *IKNPBaseChoice) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (b *IKNPBaseTransfer) EncodeWire(w *wire.Writer) { encodeTransferSeq(w, b.Transfers) }

// DecodeWire implements the wire codec.
func (b *IKNPBaseTransfer) DecodeWire(r *wire.Reader) { b.Transfers = decodeTransferSeq(r) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (b *IKNPBaseTransfer) MarshalBinary() ([]byte, error) { return wire.Marshal(b) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *IKNPBaseTransfer) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, b) }

// WriteTo implements io.WriterTo.
func (b *IKNPBaseTransfer) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, b) }

// ReadFrom implements io.ReaderFrom.
func (b *IKNPBaseTransfer) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, b) }

// EncodeWire implements the wire codec.
func (m *IKNPReceiverMsg) EncodeWire(w *wire.Writer) {
	w.ByteSlice(m.U)
	w.Int(m.M)
}

// DecodeWire implements the wire codec.
func (m *IKNPReceiverMsg) DecodeWire(r *wire.Reader) {
	m.U = r.ByteSlice()
	m.M = r.Int()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *IKNPReceiverMsg) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *IKNPReceiverMsg) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *IKNPReceiverMsg) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *IKNPReceiverMsg) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *IKNPSenderMsg) EncodeWire(w *wire.Writer) {
	w.ByteSlice(m.Y0)
	w.ByteSlice(m.Y1)
	w.Int(m.MsgLen)
}

// DecodeWire implements the wire codec.
func (m *IKNPSenderMsg) DecodeWire(r *wire.Reader) {
	m.Y0 = r.ByteSlice()
	m.Y1 = r.ByteSlice()
	m.MsgLen = r.Int()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *IKNPSenderMsg) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *IKNPSenderMsg) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *IKNPSenderMsg) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *IKNPSenderMsg) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// encodeIKNPReceiver writes a required inner IKNP receiver message.
func encodeIKNPReceiver(w *wire.Writer, m *IKNPReceiverMsg) {
	if m == nil {
		w.BigInt(nil) // typed ErrNilValue
		return
	}
	m.EncodeWire(w)
}

func decodeIKNPReceiver(r *wire.Reader) *IKNPReceiverMsg {
	m := new(IKNPReceiverMsg)
	m.DecodeWire(r)
	if r.Err() != nil {
		return nil
	}
	return m
}

func encodeIKNPSender(w *wire.Writer, m *IKNPSenderMsg) {
	if m == nil {
		w.BigInt(nil)
		return
	}
	m.EncodeWire(w)
}

func decodeIKNPSender(r *wire.Reader) *IKNPSenderMsg {
	m := new(IKNPSenderMsg)
	m.DecodeWire(r)
	if r.Err() != nil {
		return nil
	}
	return m
}

// EncodeWire implements the wire codec.
func (m *ExtKofNRequest) EncodeWire(w *wire.Writer) {
	encodeIKNPReceiver(w, m.IKNP)
	w.Int(m.K)
	w.Int(m.N)
}

// DecodeWire implements the wire codec.
func (m *ExtKofNRequest) DecodeWire(r *wire.Reader) {
	m.IKNP = decodeIKNPReceiver(r)
	m.K = r.Int()
	m.N = r.Int()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ExtKofNRequest) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ExtKofNRequest) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *ExtKofNRequest) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *ExtKofNRequest) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *ExtKofNResponse) EncodeWire(w *wire.Writer) {
	encodeIKNPSender(w, m.IKNP)
	w.ByteSlice(m.Cts)
	w.Int(m.MsgLen)
}

// DecodeWire implements the wire codec.
func (m *ExtKofNResponse) DecodeWire(r *wire.Reader) {
	m.IKNP = decodeIKNPSender(r)
	m.Cts = r.ByteSlice()
	m.MsgLen = r.Int()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ExtKofNResponse) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ExtKofNResponse) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *ExtKofNResponse) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *ExtKofNResponse) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *ExtKofNBatchRequest) EncodeWire(w *wire.Writer) {
	encodeIKNPReceiver(w, m.IKNP)
	w.Int(m.K)
	w.Int(m.N)
	w.Int(m.B)
}

// DecodeWire implements the wire codec.
func (m *ExtKofNBatchRequest) DecodeWire(r *wire.Reader) {
	m.IKNP = decodeIKNPReceiver(r)
	m.K = r.Int()
	m.N = r.Int()
	m.B = r.Int()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ExtKofNBatchRequest) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ExtKofNBatchRequest) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *ExtKofNBatchRequest) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *ExtKofNBatchRequest) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *ExtKofNBatchResponse) EncodeWire(w *wire.Writer) {
	encodeIKNPSender(w, m.IKNP)
	w.ByteSlice(m.Cts)
	w.Int(m.MsgLen)
}

// DecodeWire implements the wire codec.
func (m *ExtKofNBatchResponse) DecodeWire(r *wire.Reader) {
	m.IKNP = decodeIKNPSender(r)
	m.Cts = r.ByteSlice()
	m.MsgLen = r.Int()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ExtKofNBatchResponse) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ExtKofNBatchResponse) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *ExtKofNBatchResponse) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *ExtKofNBatchResponse) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }
