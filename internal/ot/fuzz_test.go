package ot

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/wire"
)

// typedWireErr reports whether err is (a wrap of) one of the codec's
// typed decode errors — the only errors a decoder is allowed to return.
func typedWireErr(err error) bool {
	return errors.Is(err, wire.ErrTruncated) ||
		errors.Is(err, wire.ErrOversize) ||
		errors.Is(err, wire.ErrInvalid) ||
		errors.Is(err, wire.ErrNilValue) ||
		errors.Is(err, wire.ErrTrailing)
}

// FuzzOTWire throws arbitrary bytes at every OT decoder, slice and
// stream mode. The contract: no panics, no untyped errors, bounded
// allocation, and any input that decodes cleanly must re-encode to a
// canonical form that round-trips to itself (varints admit non-minimal
// encodings, so the re-encoding need not equal the input).
func FuzzOTWire(f *testing.F) {
	samples := otWireSamples()
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := samples[name].MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	// Maximal varint: a hostile length prefix with no payload behind it.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return
		}
		for _, name := range names {
			proto := samples[name]
			out := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(wireMsg)
			if err := out.UnmarshalBinary(input); err != nil {
				if !typedWireErr(err) {
					t.Fatalf("%s: untyped decode error: %v", name, err)
				}
			} else {
				re := reencode(t, out)
				out2 := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(wireMsg)
				if err := out2.UnmarshalBinary(re); err != nil {
					t.Fatalf("%s: canonical re-encoding does not decode: %v", name, err)
				}
				if !bytes.Equal(reencode(t, out2), re) {
					t.Fatalf("%s: re-encoding is not a fixed point", name)
				}
			}
			out3 := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(wireMsg)
			if _, err := out3.ReadFrom(bytes.NewReader(input)); err != nil && !typedWireErr(err) {
				t.Fatalf("%s: untyped stream decode error: %v", name, err)
			}
		}
	})
}
