package ot

import (
	"bytes"
	"crypto/aes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"testing"
)

// naiveMMO recomputes the fixed-key Matyas–Meyer–Oseas compression from
// the documented spec with its own cipher instance, independent of the
// production code path.
func naiveMMO(t *testing.T, x [16]byte) [16]byte {
	t.Helper()
	sum := sha256.Sum256([]byte("ppdc-ot-pad-aes-v1"))
	blk, err := aes.NewCipher(sum[:16])
	if err != nil {
		t.Fatal(err)
	}
	var y [16]byte
	blk.Encrypt(y[:], x[:])
	for i := range y {
		y[i] ^= x[i]
	}
	return y
}

// naiveRowPadAES derives the row pad exactly as pad.go documents it:
// block i of the pad is MMO(row ⊕ tweak(j, i)), truncated to the payload.
func naiveRowPadAES(t *testing.T, size, j int, row []byte) []byte {
	t.Helper()
	pad := make([]byte, 0, size)
	for off := 0; off < size; off += 16 {
		var x [16]byte
		copy(x[:], row)
		x[0] ^= byte(uint32(j))
		x[1] ^= byte(uint32(j) >> 8)
		x[2] ^= byte(uint32(j) >> 16)
		x[3] ^= byte(uint32(j) >> 24)
		x[4] ^= byte(off / 16)
		y := naiveMMO(t, x)
		n := size - off
		if n > 16 {
			n = 16
		}
		pad = append(pad, y[:n]...)
	}
	return pad
}

// naiveTreePadAES derives the tree pad per spec: absorb the path keys
// through an MMO Merkle–Damgård chain, then expand the digest with the
// (index, counter) tweak.
func naiveTreePadAES(t *testing.T, size int, path [][]byte, index int) []byte {
	t.Helper()
	var h [16]byte
	for _, k := range path {
		var x [16]byte
		for i := range x {
			x[i] = h[i] ^ k[i]
		}
		h = naiveMMO(t, x)
	}
	pad := make([]byte, 0, size)
	for off := 0; off < size; off += 16 {
		x := h
		x[0] ^= byte(uint32(index))
		x[1] ^= byte(uint32(index) >> 8)
		x[2] ^= byte(uint32(index) >> 16)
		x[3] ^= byte(uint32(index) >> 24)
		x[4] ^= byte(off / 16)
		y := naiveMMO(t, x)
		n := size - off
		if n > 16 {
			n = 16
		}
		pad = append(pad, y[:n]...)
	}
	return pad
}

// TestRowPadAESDifferential checks the production AES row pad against the
// naive spec reference across payload sizes and transfer indices.
func TestRowPadAESDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{1, 15, 16, 17, 31, 32, 33, 48, 64} {
		for _, j := range []int{0, 1, 255, 1 << 16, 1<<31 - 1} {
			row := make([]byte, iknpRowBytes)
			rng.Read(row)
			src := make([]byte, size)
			rng.Read(src)
			got := make([]byte, size)
			rowPadXorAES(got, src, j, row)
			want := naiveRowPadAES(t, size, j, row)
			for i := range want {
				want[i] ^= src[i]
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("size %d j %d: AES row pad diverges from spec reference", size, j)
			}
		}
	}
}

// TestTreePadAESDifferential checks the production AES tree pad against
// the naive spec reference across path depths, indices and sizes.
func TestTreePadAESDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, depth := range []int{1, 2, 5, 9} {
		for _, size := range []int{1, 16, 17, 32, 80} {
			path := make([][]byte, depth)
			for i := range path {
				path[i] = make([]byte, treeKeyLen)
				rng.Read(path[i])
			}
			src := make([]byte, size)
			rng.Read(src)
			got := make([]byte, size)
			treePadXorAES(got, src, path, 12345)
			want := naiveTreePadAES(t, size, path, 12345)
			for i := range want {
				want[i] ^= src[i]
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("depth %d size %d: AES tree pad diverges from spec reference", depth, size)
			}
		}
	}
}

// TestPadDispatch pins the PadFunc method dispatch: SHA-256 (and the ""
// zero value) reach the legacy derivations, AES reaches the MMO pads, and
// malformed widths fall back to the legacy derivations instead of
// panicking.
func TestPadDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	row := make([]byte, iknpRowBytes)
	rng.Read(row)
	src := make([]byte, 40)
	rng.Read(src)

	legacy := make([]byte, len(src))
	rowHashXor(legacy, src, 3, row)
	for _, p := range []PadFunc{"", PadSHA256} {
		got := make([]byte, len(src))
		p.rowPadXor(got, src, 3, row)
		if !bytes.Equal(got, legacy) {
			t.Fatalf("pad %q: row dispatch does not match legacy SHA-256", p)
		}
	}
	aesOut := make([]byte, len(src))
	PadAES.rowPadXor(aesOut, src, 3, row)
	direct := make([]byte, len(src))
	rowPadXorAES(direct, src, 3, row)
	if !bytes.Equal(aesOut, direct) {
		t.Fatal("PadAES row dispatch does not reach the AES pad")
	}
	if bytes.Equal(aesOut, legacy) {
		t.Fatal("AES and SHA-256 row pads agree — dispatch is not switching")
	}

	// Malformed row width: the AES path must fall back to the legacy
	// derivation so both peers still agree.
	shortRow := row[:iknpRowBytes-1]
	fallback := make([]byte, len(src))
	PadAES.rowPadXor(fallback, src, 3, shortRow)
	legacyShort := make([]byte, len(src))
	rowHashXor(legacyShort, src, 3, shortRow)
	if !bytes.Equal(fallback, legacyShort) {
		t.Fatal("malformed-width row did not fall back to the legacy pad")
	}

	path := [][]byte{make([]byte, treeKeyLen), make([]byte, treeKeyLen)}
	rng.Read(path[0])
	rng.Read(path[1])
	treeLegacy := make([]byte, len(src))
	treePadXor(treeLegacy, src, path, 6)
	treeSHA := make([]byte, len(src))
	PadSHA256.treePadXor(treeSHA, src, path, 6)
	if !bytes.Equal(treeSHA, treeLegacy) {
		t.Fatal("PadSHA256 tree dispatch does not match legacy derivation")
	}
	treeAES := make([]byte, len(src))
	PadAES.treePadXor(treeAES, src, path, 6)
	if bytes.Equal(treeAES, treeLegacy) {
		t.Fatal("AES and SHA-256 tree pads agree — dispatch is not switching")
	}
	badPath := [][]byte{path[0][:treeKeyLen-2]}
	badOut := make([]byte, len(src))
	PadAES.treePadXor(badOut, src, badPath, 6)
	badLegacy := make([]byte, len(src))
	treePadXor(badLegacy, src, badPath, 6)
	if !bytes.Equal(badOut, badLegacy) {
		t.Fatal("malformed-width tree key did not fall back to the legacy pad")
	}
}

func TestResolvePad(t *testing.T) {
	for name, want := range map[string]PadFunc{
		"":       PadSHA256,
		"sha256": PadSHA256,
		"aes":    PadAES,
	} {
		got, err := ResolvePad(name)
		if err != nil || got != want {
			t.Fatalf("ResolvePad(%q) = %q, %v; want %q", name, got, err, want)
		}
	}
	if _, err := ResolvePad("chacha"); !errors.Is(err, ErrPadFunc) {
		t.Fatalf("ResolvePad(chacha) = %v; want ErrPadFunc", err)
	}
}
