package ompe

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/field"
	"repro/internal/mvpoly"
	"repro/internal/ot"
)

func testParams(t *testing.T, polyDegree int) Params {
	t.Helper()
	return Params{
		Field:       field.Default(),
		PolyDegree:  polyDegree,
		MaskDegree:  2,
		CoverFactor: 2,
		Group:       ot.Group512Test(),
	}
}

// TestRunLinear checks end-to-end that the receiver recovers amp·P(α) for
// a linear polynomial, mirroring §IV-A.
func TestRunLinear(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)

	w := field.Vec{f.FromInt64(3), f.FromInt64(-5), f.FromInt64(7)}
	b := f.FromInt64(11)
	p, err := mvpoly.NewLinear(f, w, b)
	if err != nil {
		t.Fatal(err)
	}
	input := field.Vec{f.FromInt64(2), f.FromInt64(4), f.FromInt64(-1)}

	res, err := Run(params, p, input, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// P(α) = 3·2 − 5·4 + 7·(−1) + 11 = −10.
	want := f.Mul(res.Amplifier, f.FromInt64(-10))
	if res.Value.Cmp(want) != 0 {
		t.Fatalf("got %v, want amp·P(α)=%v (amp=%v)", res.Value, want, res.Amplifier)
	}
	if f.Centered(res.Value).Sign() >= 0 {
		t.Fatalf("amplified negative value must stay negative in centered form")
	}
}

// TestRunNonlinearWithShift checks a degree-3 polynomial with a pinned
// amplifier and shift, the configuration the similarity protocol uses.
func TestRunNonlinearWithShift(t *testing.T) {
	f := field.Default()
	params := testParams(t, 3)

	// P(x) = x0^3 + 2·x0·x1 + 5
	p, err := mvpoly.New(f, 2, []mvpoly.Term{
		{Coeff: big.NewInt(1), Exps: []uint{3, 0}},
		{Coeff: big.NewInt(2), Exps: []uint{1, 1}},
		{Coeff: big.NewInt(5), Exps: []uint{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	input := field.Vec{f.FromInt64(2), f.FromInt64(3)}
	amp := big.NewInt(17)
	shift := f.FromInt64(-1000)

	res, err := Run(params, p, input, rand.Reader, WithAmplifier(amp), WithShift(shift))
	if err != nil {
		t.Fatal(err)
	}
	// P(α) = 8 + 12 + 5 = 25; amp·P + shift = 17·25 − 1000 = −575.
	want := f.FromInt64(-575)
	if res.Value.Cmp(want) != 0 {
		t.Fatalf("got %v, want %v", f.Centered(res.Value), f.Centered(want))
	}
}

// TestMatchesPlaintextProperty: for random linear polynomials and inputs,
// the protocol output equals amp·P(α) computed directly.
func TestMatchesPlaintextProperty(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	for trial := 0; trial < 10; trial++ {
		n := 1 + trial%4
		w, err := f.RandVec(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		p, err := mvpoly.NewLinear(f, w, b)
		if err != nil {
			t.Fatal(err)
		}
		input, err := f.RandVec(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(params, p, input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := p.Eval(input)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Mul(res.Amplifier, direct)
		if res.Value.Cmp(want) != 0 {
			t.Fatalf("trial %d: protocol %v != direct %v", trial, res.Value, want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	good := testParams(t, 1)
	bad := []Params{
		{},
		{Field: good.Field, PolyDegree: 0, MaskDegree: 1, CoverFactor: 2, Group: good.Group},
		{Field: good.Field, PolyDegree: 1, MaskDegree: 0, CoverFactor: 2, Group: good.Group},
		{Field: good.Field, PolyDegree: 1, MaskDegree: 1, CoverFactor: 1, Group: good.Group},
		{Field: good.Field, PolyDegree: 1, MaskDegree: 1, CoverFactor: 2, Group: nil},
		{Field: good.Field, PolyDegree: 1, MaskDegree: 1, CoverFactor: 2, AmplifierBits: -1, Group: good.Group},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.GenuineCount() != good.ComposedDegree()+1 {
		t.Fatal("m != D+1")
	}
	if good.TotalPairs() != good.GenuineCount()*good.CoverFactor {
		t.Fatal("M != m·k")
	}
}

func buildLinear(t *testing.T, f *field.Field, n int) Evaluator {
	t.Helper()
	w, err := f.RandVec(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mvpoly.NewLinear(f, w, f.FromInt64(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSenderRejectsMalformedRequests is the failure-injection suite for
// the sender's request validation.
func TestSenderRejectsMalformedRequests(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 2)
	input := field.Vec{f.FromInt64(1), f.FromInt64(2)}

	fresh := func() (*Sender, *EvalRequest) {
		s, err := NewSender(params, eval)
		if err != nil {
			t.Fatal(err)
		}
		_, req, err := NewReceiver(params, input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		return s, req
	}

	t.Run("nil request", func(t *testing.T) {
		s, _ := fresh()
		if _, err := s.HandleRequest(nil, rand.Reader); err == nil {
			t.Fatal("nil request should fail")
		}
	})
	t.Run("wrong pair count", func(t *testing.T) {
		s, req := fresh()
		req.Pairs = req.Pairs[:len(req.Pairs)-1]
		if _, err := s.HandleRequest(req, rand.Reader); err == nil {
			t.Fatal("short request should fail")
		}
	})
	t.Run("zero evaluation point", func(t *testing.T) {
		s, req := fresh()
		req.Pairs[0].V = f.Zero()
		if _, err := s.HandleRequest(req, rand.Reader); err == nil {
			t.Fatal("v=0 should fail (it would expose P(alpha) directly)")
		}
	})
	t.Run("duplicate evaluation points", func(t *testing.T) {
		s, req := fresh()
		req.Pairs[1].V = new(big.Int).Set(req.Pairs[0].V)
		if _, err := s.HandleRequest(req, rand.Reader); err == nil {
			t.Fatal("duplicate v should fail")
		}
	})
	t.Run("wrong arity", func(t *testing.T) {
		s, req := fresh()
		req.Pairs[0].Z = req.Pairs[0].Z[:1]
		if _, err := s.HandleRequest(req, rand.Reader); err == nil {
			t.Fatal("short z should fail")
		}
	})
	t.Run("out-of-field component", func(t *testing.T) {
		s, req := fresh()
		req.Pairs[0].Z[0] = f.Modulus()
		if _, err := s.HandleRequest(req, rand.Reader); err == nil {
			t.Fatal("non-canonical z should fail")
		}
	})
}

func TestStateMachineOrder(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 2)
	input := field.Vec{f.FromInt64(3), f.FromInt64(4)}

	sender, err := NewSender(params, eval)
	if err != nil {
		t.Fatal(err)
	}
	receiver, req, err := NewReceiver(params, input, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Choice before request: state violation.
	if _, err := sender.HandleChoice(nil, rand.Reader); err == nil {
		t.Fatal("HandleChoice before HandleRequest should fail")
	}
	// Finish before setup: state violation.
	if _, err := receiver.Finish(nil); err == nil {
		t.Fatal("Finish before HandleSetup should fail")
	}
	setup, err := sender.HandleRequest(req, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Double request: one-shot.
	if _, err := sender.HandleRequest(req, rand.Reader); err == nil {
		t.Fatal("second HandleRequest should fail")
	}
	choice, err := receiver.HandleSetup(setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sender.HandleChoice(choice, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Finish(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Finish(tr); err == nil {
		t.Fatal("double Finish should fail")
	}
}

func TestReceiverValidatesInput(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	if _, _, err := NewReceiver(params, nil, rand.Reader); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, _, err := NewReceiver(params, field.Vec{f.Modulus()}, rand.Reader); err == nil {
		t.Fatal("non-canonical input should fail")
	}
}

// TestRequestHidesInput checks the cover structure: the request must not
// contain the raw input components in genuine positions at any fixed
// index pattern (statistically — we check the input value appears nowhere
// verbatim, which holds with overwhelming probability for random covers).
func TestRequestHidesInput(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	secret := f.FromInt64(123456789)
	input := field.Vec{secret, f.FromInt64(42)}
	_, req, err := NewReceiver(params, input, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range req.Pairs {
		for j, z := range pair.Z {
			if z.Cmp(secret) == 0 {
				t.Fatalf("raw secret appears verbatim at pair %d component %d", i, j)
			}
		}
	}
}

// TestFreshAmplifierPerExecution: two executions against the same sender
// configuration must use different amplifiers (Level-2 privacy).
func TestFreshAmplifierPerExecution(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 2)
	input := field.Vec{f.FromInt64(1), f.FromInt64(1)}
	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		res, err := Run(params, eval, input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		key := res.Amplifier.String()
		if seen[key] {
			t.Fatal("amplifier repeated across executions")
		}
		seen[key] = true
	}
}

// TestMaskedEvaluationsMatchesProtocol: the exported arithmetic core must
// produce values consistent with a full protocol run's genuine points.
func TestMaskedEvaluationsMatchesProtocol(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 3)
	input := field.Vec{f.FromInt64(1), f.FromInt64(2), f.FromInt64(3)}
	_, req, err := NewReceiver(params, input, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := MaskedEvaluations(params, eval, req, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != params.TotalPairs() {
		t.Fatalf("%d masked evaluations, want %d", len(msgs), params.TotalPairs())
	}
	for i, m := range msgs {
		if _, err := f.FromBytes(m); err != nil {
			t.Fatalf("masked evaluation %d not a field element: %v", i, err)
		}
	}
}

func TestEvaluatorFunc(t *testing.T) {
	f := field.Default()
	ev := EvaluatorFunc(2, func(z field.Vec) (*big.Int, error) {
		return f.Add(z[0], z[1]), nil
	})
	if ev.NumVars() != 2 {
		t.Fatal("arity")
	}
	v, err := ev.Eval(field.Vec{f.FromInt64(3), f.FromInt64(4)})
	if err != nil || v.Int64() != 7 {
		t.Fatalf("eval = %v, %v", v, err)
	}
}

// TestRequestStatisticallyHidesInput: the trainer's complete view (the M
// pairs) should look the same regardless of the receiver's input. As a
// cheap distinguisher, compare the fraction of Z-component top bits set
// for a fixed extreme input versus a random input — both must sit near
// 1/2 (covers are uniform except at v=0, which never appears).
func TestRequestStatisticallyHidesInput(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	topBitFraction := func(input field.Vec) float64 {
		ones, total := 0, 0
		for trial := 0; trial < 40; trial++ {
			_, req, err := NewReceiver(params, input, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			for _, pair := range req.Pairs {
				for _, z := range pair.Z {
					total++
					if z.BitLen() >= f.Bits()-1 {
						ones++
					}
				}
			}
		}
		return float64(ones) / float64(total)
	}
	fixed := topBitFraction(field.Vec{f.FromInt64(0), f.FromInt64(0)})
	random := topBitFraction(field.Vec{f.FromInt64(1 << 40), f.FromInt64(-(1 << 40))})
	// A uniform element of [0, 2^255-19) has BitLen >= 254 with
	// probability 1 - 2^253/2^255 = 3/4.
	for name, frac := range map[string]float64{"zero-input": fixed, "large-input": random} {
		if frac < 0.65 || frac > 0.85 {
			t.Errorf("%s: top-bit fraction %.3f far from the uniform 0.75", name, frac)
		}
	}
	if fixed-random > 0.1 || random-fixed > 0.1 {
		t.Errorf("views distinguishable by top-bit fraction: %.3f vs %.3f", fixed, random)
	}
}

// TestSessionMatchesPlaintext: the fast-session path must compute exactly
// what the one-shot path computes, across several sequential queries.
func TestSessionMatchesPlaintext(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 3)

	sender, receiver, err := NewSession(params, eval, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		input, err := f.RandVec(rand.Reader, 3)
		if err != nil {
			t.Fatal(err)
		}
		q, req, err := receiver.NewQuery(input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := sender.HandleQuery(req, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Finish(resp)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eval.Eval(input)
		if err != nil {
			t.Fatal(err)
		}
		// got = amp·P(α) for an unknown fresh amplifier; verify the ratio
		// is a plausible positive bounded integer.
		if direct.Sign() == 0 {
			continue
		}
		inv, err := f.Inv(direct)
		if err != nil {
			t.Fatal(err)
		}
		amp := f.Mul(got, inv)
		bound := new(big.Int).Lsh(big.NewInt(1), uint(DefaultAmplifierBits)+1)
		if amp.Sign() <= 0 || amp.Cmp(bound) > 0 {
			t.Fatalf("round %d: implied amplifier %v out of range", round, amp)
		}
	}
}

// TestSessionInFlightQueries: two queries opened before either response
// must both complete, provided responses come back in FIFO order (the
// transport's single-worker sessions guarantee exactly that).
func TestSessionInFlightQueries(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 2)
	sender, receiver, err := NewSession(params, eval, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []field.Vec{
		{f.FromInt64(1), f.FromInt64(2)},
		{f.FromInt64(3), f.FromInt64(4)},
	}
	q1, req1, err := receiver.NewQuery(inputs[0], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	q2, req2, err := receiver.NewQuery(inputs[1], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	resp1, err := sender.HandleQuery(req1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := sender.HandleQuery(req2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range []struct {
		q    *SessionQuery
		resp *FastResponse
	}{{q1, resp1}, {q2, resp2}} {
		got, err := pair.q.Finish(pair.resp)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Sign() == 0 {
			t.Fatalf("query %d: zero recovery", i)
		}
	}
}

// TestSessionBatch: a batched query recovers every sample's amp·P(α),
// matching what direct evaluation says up to the per-sample amplifier.
func TestSessionBatch(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 2)
	sender, receiver, err := NewSession(params, eval, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]field.Vec, 5)
	for i := range inputs {
		inputs[i] = field.Vec{f.FromInt64(int64(i + 1)), f.FromInt64(int64(2*i + 1))}
	}
	batch, req, err := receiver.NewBatch(inputs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != len(inputs) {
		t.Fatalf("batch length %d, want %d", batch.Len(), len(inputs))
	}
	resp, err := sender.HandleBatch(req, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batch.Finish(resp)
	if err != nil {
		t.Fatal(err)
	}
	bound := new(big.Int).Lsh(big.NewInt(1), uint(DefaultAmplifierBits)+1)
	for i, input := range inputs {
		direct, err := eval.Eval(input)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Sign() == 0 {
			continue
		}
		inv, err := f.Inv(direct)
		if err != nil {
			t.Fatal(err)
		}
		amp := f.Mul(got[i], inv)
		if amp.Sign() <= 0 || amp.Cmp(bound) > 0 {
			t.Fatalf("sample %d: implied amplifier %v out of range", i, amp)
		}
	}
}

// TestSessionBatchValidation: malformed batches must be rejected.
func TestSessionBatchValidation(t *testing.T) {
	f := field.Default()
	params := testParams(t, 1)
	eval := buildLinear(t, f, 2)
	sender, receiver, err := NewSession(params, eval, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := receiver.NewBatch(nil, rand.Reader); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, err := sender.HandleBatch(nil, rand.Reader); err == nil {
		t.Fatal("nil batch request should fail")
	}
	input := field.Vec{f.FromInt64(1), f.FromInt64(2)}
	_, req, err := receiver.NewBatch([]field.Vec{input, input}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	req.Evals = req.Evals[:1]
	if _, err := sender.HandleBatch(req, rand.Reader); err == nil {
		t.Fatal("eval/OT count mismatch should fail")
	}
}
