package ompe

import (
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/field"
	"repro/internal/field/limb"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// Limb-backend execution engine. When Params.Backend selects
// field.BackendLimb (valid only over the 2^255−19 field), both roles run
// the entire per-query arithmetic — cover construction, decoys, masked
// evaluations, interpolation — on fixed-width limb elements, and the
// evaluation request travels in the packed form below instead of as
// []Pair of big.Ints. The protocol semantics are identical: the same
// residues flow through the same construction; only their representation
// (and therefore the wire encoding of the request) changes, which is why
// the backend is negotiated per session exactly like the OT group.

// LimbEvaluator is implemented by evaluators that can run natively on limb
// elements. Senders on the limb backend use EvalLimb when available and
// otherwise fall back to converting each pair through math/big.
type LimbEvaluator interface {
	Evaluator
	// EvalLimb evaluates the polynomial at z, writing the result to out.
	// Like Eval it must be safe for concurrent use.
	EvalLimb(z []limb.Element, out *limb.Element) error
}

// limbBackend reports whether the limb engine serves this execution.
func (p Params) limbBackend() bool {
	return p.Backend.OrDefault() == field.BackendLimb
}

// packedStride is the byte length of one packed (v_i, z_i) record.
func packedStride(numVars int) int { return (1 + numVars) * limb.ElementLen }

// newReceiverLimb is the limb-engine half of NewReceiver: same construction
// and rng draw order (covers, points, subset, decoys in pair order; genuine
// cover evaluations in the parallel region), with the request emitted in
// packed form.
func newReceiverLimb(params Params, input field.Vec, rng io.Reader) (*Receiver, *EvalRequest, error) {
	n := len(input)
	lin := make([]limb.Element, n)
	for i, x := range input {
		if err := lin[i].SetBig(x); err != nil {
			return nil, nil, fmt.Errorf("%w: input component %d not in field", ErrParams, i)
		}
	}

	maskSpan := obs.Start(obs.PhaseReceiverMask)
	covers := make([]*poly.LimbPoly, n)
	for i := range lin {
		g, err := poly.RandomLimb(rng, params.MaskDegree, &lin[i])
		if err != nil {
			return nil, nil, err
		}
		covers[i] = g
	}
	maskSpan.End()

	decoySpan := obs.Start(obs.PhaseReceiverDecoy)
	total := params.TotalPairs()
	points, err := distinctNonZeroLimb(total, rng)
	if err != nil {
		return nil, nil, err
	}
	genuine, err := randomSubset(total, params.GenuineCount(), rng)
	if err != nil {
		return nil, nil, err
	}
	isGenuine := make([]bool, total)
	for _, idx := range genuine {
		isGenuine[idx] = true
	}

	// Serial decoy draws in pair order, then parallel pure-arithmetic
	// cover evaluations — the same stream discipline as the big engine,
	// so the request is deterministic at any parallelism degree.
	stride := packedStride(n)
	packed := make([]byte, total*stride)
	for i := 0; i < total; i++ {
		rec := packed[i*stride : (i+1)*stride]
		points[i].PutBytes(rec[:limb.ElementLen])
		if !isGenuine[i] {
			// Decoy components are drawn straight into their wire slots:
			// RandBytes consumes the same rng bytes and yields the same
			// canonical encoding as Rand+PutBytes, minus two Montgomery
			// conversions per element.
			for j := 0; j < n; j++ {
				if err := limb.RandBytes(rng, rec[(1+j)*limb.ElementLen:(2+j)*limb.ElementLen]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	_ = parallel.For(params.Parallelism, total, func(i int) error {
		if !isGenuine[i] {
			return nil
		}
		rec := packed[i*stride : (i+1)*stride]
		var y limb.Element
		for j, g := range covers {
			g.EvalInto(&y, &points[i])
			y.PutBytes(rec[(1+j)*limb.ElementLen : (2+j)*limb.ElementLen])
		}
		return nil
	})
	decoySpan.End()

	r := &Receiver{
		params:  params,
		state:   receiverAwaitingSetup,
		lpoints: points,
		genuine: genuine,
	}
	return r, &EvalRequest{Packed: packed}, nil
}

// distinctNonZeroLimb samples n distinct non-zero limb elements. n is a
// few dozen at most, so a linear rescan beats allocating and hashing a
// dedup map on every query.
func distinctNonZeroLimb(n int, rng io.Reader) ([]limb.Element, error) {
	out := make([]limb.Element, 0, n)
	var x limb.Element
sample:
	for len(out) < n {
		if err := x.RandNonZero(rng); err != nil {
			return nil, err
		}
		for i := range out {
			if out[i] == x {
				continue sample
			}
		}
		out = append(out, x)
	}
	return out, nil
}

// checkPackedShape performs the cheap structural validation of a packed
// request; the full canonical/dedup checks happen in parsePackedRequest on
// the sender's masking path, so each record is decoded exactly once.
func checkPackedShape(params Params, numVars int, req *EvalRequest) error {
	if req == nil {
		return fmt.Errorf("%w: nil request", ErrBadRequest)
	}
	if len(req.Pairs) != 0 {
		return fmt.Errorf("%w: pair-form request on limb backend", ErrBadRequest)
	}
	if want := params.TotalPairs() * packedStride(numVars); len(req.Packed) != want {
		return fmt.Errorf("%w: packed request is %d bytes, want %d", ErrBadRequest, len(req.Packed), want)
	}
	return nil
}

// flatPool recycles the parsed-record buffers of parsePackedRequest: the
// sender decodes one per sample, and at batch sizes in the tens of
// samples the per-query slice was a measurable share of the serving
// allocation profile. putFlat returns a buffer once the masking pass is
// done with it.
var flatPool sync.Pool

func getFlat(n int) []limb.Element {
	if v := flatPool.Get(); v != nil {
		s := v.([]limb.Element)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]limb.Element, n)
}

func putFlat(s []limb.Element) { flatPool.Put(s) } //nolint:staticcheck // slice header churn is fine here

// parsePackedRequest decodes and fully validates a packed request,
// returning the records as a flat slice of (1+numVars)-element groups:
// flat[i*(1+numVars)] is v_i, the rest of the group is z_i. The returned
// slice comes from flatPool; callers hand it back via putFlat when done.
func parsePackedRequest(params Params, numVars int, req *EvalRequest) ([]limb.Element, error) {
	if err := checkPackedShape(params, numVars, req); err != nil {
		return nil, err
	}
	total := params.TotalPairs()
	stride := 1 + numVars
	flat := getFlat(total * stride)
	for i := 0; i < total; i++ {
		rec := flat[i*stride : (i+1)*stride]
		raw := req.Packed[i*stride*limb.ElementLen:]
		for j := 0; j < stride; j++ {
			if err := rec[j].SetBytes(raw[j*limb.ElementLen : (j+1)*limb.ElementLen]); err != nil {
				putFlat(flat)
				if j == 0 {
					return nil, fmt.Errorf("%w: pair %d has invalid evaluation point", ErrBadRequest, i)
				}
				return nil, fmt.Errorf("%w: pair %d component %d not in field", ErrBadRequest, i, j-1)
			}
		}
		if rec[0].IsZero() {
			putFlat(flat)
			return nil, fmt.Errorf("%w: pair %d has invalid evaluation point", ErrBadRequest, i)
		}
		// Totals are a few dozen pairs; a linear rescan of the earlier
		// evaluation points is cheaper than a per-query dedup map.
		for k := 0; k < i; k++ {
			if flat[k*stride] == rec[0] {
				putFlat(flat)
				return nil, fmt.Errorf("%w: pair %d repeats evaluation point", ErrBadRequest, i)
			}
		}
	}
	return flat, nil
}

// maskedSampleLimb is the limb engine's sender core for one sample: parse
// and validate the packed request, draw the masking polynomial, and
// compute every pair's y_i = h(v_i) + amp·P(z_i) + shift into a single
// flat buffer (one 32-byte slot per pair).
func maskedSampleLimb(params Params, eval Evaluator, amplifier, shift *big.Int, req *EvalRequest, rng io.Reader) ([][]byte, error) {
	var zero limb.Element
	h, err := poly.RandomLimb(rng, params.ComposedDegree(), &zero)
	if err != nil {
		return nil, err
	}
	return maskedSampleLimbWith(params, eval, h, amplifier, shift, req, params.Parallelism)
}

// maskedSampleLimbWith is the pure half of maskedSampleLimb: every rng
// draw (the masking polynomial, the caller's amplifier) already happened,
// so it can run inside a parallel region — the batch path fans samples
// out across workers and passes parallelism 1 here to keep the worker
// pool flat.
func maskedSampleLimbWith(params Params, eval Evaluator, h *poly.LimbPoly, amplifier, shift *big.Int, req *EvalRequest, parallelism int) ([][]byte, error) {
	numVars := eval.NumVars()
	flat, err := parsePackedRequest(params, numVars, req)
	if err != nil {
		return nil, err
	}
	var amp, sh limb.Element
	amp.SetBigReduce(amplifier)
	sh.SetBigReduce(shift)

	stride := 1 + numVars
	total := params.TotalPairs()
	buf := make([]byte, total*limb.ElementLen)
	msgs := make([][]byte, total)
	le, native := eval.(LimbEvaluator)
	f := params.Field
	perr := parallel.For(parallelism, total, func(i int) error {
		rec := flat[i*stride : (i+1)*stride]
		var pv, y limb.Element
		if native {
			if err := le.EvalLimb(rec[1:], &pv); err != nil {
				return fmt.Errorf("ompe: evaluate pair %d: %w", i, err)
			}
		} else {
			x := make(field.Vec, numVars)
			for j := range x {
				x[j] = rec[1+j].ToBig()
			}
			v, err := eval.Eval(x)
			if err != nil {
				return fmt.Errorf("ompe: evaluate pair %d: %w", i, err)
			}
			pv.SetBigReduce(f.Reduce(v))
		}
		h.EvalInto(&y, &rec[0])
		pv.Mul(&pv, &amp)
		y.Add(&y, &pv)
		y.Add(&y, &sh)
		m := buf[i*limb.ElementLen : (i+1)*limb.ElementLen]
		y.PutBytes(m)
		msgs[i] = m
		return nil
	})
	putFlat(flat)
	if perr != nil {
		return nil, perr
	}
	return msgs, nil
}

// interpolateTransferredLimb decodes one sample's transferred values and
// interpolates B(0) on the limb engine. The interpolator's scratch is
// reused across the samples of a batch.
func interpolateTransferredLimb(raw [][]byte, lpoints []limb.Element, index []int, ip *poly.LimbInterpolator) (*big.Int, error) {
	m := len(raw)
	xs := make([]limb.Element, m)
	ys := make([]limb.Element, m)
	for i, b := range raw {
		if err := ys[i].SetBytes(b); err != nil {
			return nil, fmt.Errorf("ompe: transferred value %d: %w", i, err)
		}
		xs[i] = lpoints[index[i]]
	}
	res, err := ip.AtZero(xs, ys)
	if err != nil {
		return nil, err
	}
	return res.ToBig(), nil
}
