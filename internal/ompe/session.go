package ompe

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/poly"
)

// Session mode: after one IKNP base phase per (sender, receiver) session,
// every OMPE execution costs only field arithmetic and symmetric crypto —
// the m-out-of-M transfer runs over the OT extension (ot.ExtKofN) instead
// of per-query Naor–Pinkas. Two messages per query instead of four, and
// no public-key operations on the query path.
//
// Queries are strictly sequential within a session (the extension
// endpoints advance lockstep batch state), matching the transport layer's
// session model. Privacy is unchanged: fresh masking polynomial and
// amplifier per query, fresh covers and genuine positions per query, and
// the extension hides the genuine indices exactly as the base OT does.

// ErrSessionBusy reports an out-of-order query on a session.
var ErrSessionBusy = errors.New("ompe: session has a query in flight")

// FastRequest is the receiver's single per-query message.
type FastRequest struct {
	Eval *EvalRequest
	OT   *ot.ExtKofNRequest
}

// FastResponse is the sender's single per-query message.
type FastResponse struct {
	OT *ot.ExtKofNResponse
}

// SessionSender serves any number of fast queries for one evaluator.
type SessionSender struct {
	params Params
	eval   Evaluator
	iknp   *ot.IKNPSender
}

// SessionReceiver issues fast queries.
type SessionReceiver struct {
	params Params
	iknp   *ot.IKNPReceiver
	inQ    bool
}

// NewSessionReceiverBase starts a session from the receiver side,
// returning the IKNP base setup to send to the sender.
func NewSessionReceiverBase(params Params, rng io.Reader) (*SessionReceiver, *ot.IKNPBaseSetup, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	iknp, setup, err := ot.NewIKNPReceiverBase(params.Group, rng)
	if err != nil {
		return nil, nil, err
	}
	return &SessionReceiver{params: params, iknp: iknp}, setup, nil
}

// NewSessionSenderBase starts a session from the sender side, given the
// receiver's base setup; returns the base choice message.
func NewSessionSenderBase(params Params, eval Evaluator, setup *ot.IKNPBaseSetup, rng io.Reader) (*SessionSender, *ot.IKNPBaseChoice, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if eval == nil {
		return nil, nil, fmt.Errorf("%w: nil evaluator", ErrParams)
	}
	iknp, choice, err := ot.NewIKNPSenderBase(params.Group, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	return &SessionSender{params: params, eval: eval, iknp: iknp}, choice, nil
}

// FinishBaseReceiver completes the base phase on the receiver side.
func (sr *SessionReceiver) FinishBaseReceiver(choice *ot.IKNPBaseChoice, rng io.Reader) (*ot.IKNPBaseTransfer, error) {
	return sr.iknp.BaseRespond(choice, rng)
}

// FinishBaseSender completes the base phase on the sender side.
func (ss *SessionSender) FinishBaseSender(tr *ot.IKNPBaseTransfer) error {
	return ss.iknp.BaseFinish(tr)
}

// NewSession runs the base phase in memory and returns a paired session.
func NewSession(params Params, eval Evaluator, rng io.Reader) (*SessionSender, *SessionReceiver, error) {
	receiver, setup, err := NewSessionReceiverBase(params, rng)
	if err != nil {
		return nil, nil, err
	}
	sender, choice, err := NewSessionSenderBase(params, eval, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	tr, err := receiver.FinishBaseReceiver(choice, rng)
	if err != nil {
		return nil, nil, err
	}
	if err := sender.FinishBaseSender(tr); err != nil {
		return nil, nil, err
	}
	return sender, receiver, nil
}

// SessionQuery is one in-flight fast query on the receiver side.
type SessionQuery struct {
	sr     *SessionReceiver
	points []*big.Int
	index  []int
	ext    *ot.ExtKofNQuery
}

// NewQuery opens a fast query for one input vector.
func (sr *SessionReceiver) NewQuery(input field.Vec, rng io.Reader) (*SessionQuery, *FastRequest, error) {
	if sr.inQ {
		return nil, nil, ErrSessionBusy
	}
	// Reuse the standard receiver's cover/decoy construction; only the
	// transfer mechanism differs.
	recv, req, err := NewReceiver(sr.params, input, rng)
	if err != nil {
		return nil, nil, err
	}
	ext, otReq, err := ot.NewExtKofNQuery(sr.iknp, sr.params.TotalPairs(), recv.genuine)
	if err != nil {
		return nil, nil, err
	}
	sr.inQ = true
	q := &SessionQuery{
		sr:     sr,
		points: recv.points,
		index:  recv.genuine,
		ext:    ext,
	}
	return q, &FastRequest{Eval: req, OT: otReq}, nil
}

// HandleQuery answers one fast query: fresh mask and amplifier, masked
// evaluations of every pair, extension-based transfer.
func (ss *SessionSender) HandleQuery(req *FastRequest, rng io.Reader) (*FastResponse, error) {
	if req == nil || req.Eval == nil || req.OT == nil {
		return nil, fmt.Errorf("%w: nil fast request", ErrBadRequest)
	}
	if err := validateEvalRequest(ss.params, ss.eval.NumVars(), req.Eval); err != nil {
		return nil, err
	}
	f := ss.params.Field
	h, err := poly.Random(f, rng, ss.params.ComposedDegree(), f.Zero())
	if err != nil {
		return nil, err
	}
	amp, err := sampleAmplifier(rng, ss.params.amplifierBitsOrDefault())
	if err != nil {
		return nil, err
	}
	msgs, err := maskedEvaluations(f, ss.eval, h, amp, new(big.Int), req.Eval, ss.params.Parallelism)
	if err != nil {
		return nil, err
	}
	otResp, err := ot.ExtKofNRespond(ss.iknp, req.OT, msgs, rng)
	if err != nil {
		return nil, err
	}
	return &FastResponse{OT: otResp}, nil
}

// Finish recovers amp·P(α) from the sender's response.
func (q *SessionQuery) Finish(resp *FastResponse) (*big.Int, error) {
	if resp == nil || resp.OT == nil {
		return nil, fmt.Errorf("%w: nil fast response", ErrBadRequest)
	}
	raw, err := q.ext.Recover(resp.OT)
	if err != nil {
		return nil, err
	}
	f := q.sr.params.Field
	pts := make([]poly.Point, len(raw))
	for i, b := range raw {
		y, err := f.FromBytes(b)
		if err != nil {
			return nil, fmt.Errorf("ompe: transferred value %d: %w", i, err)
		}
		pts[i] = poly.Point{X: q.points[q.index[i]], Y: y}
	}
	q.sr.inQ = false
	return poly.InterpolateAtZero(f, pts)
}
