package ompe

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/field"
	"repro/internal/field/limb"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// Session mode: after one IKNP base phase per (sender, receiver) session,
// every OMPE execution costs only field arithmetic and symmetric crypto —
// the m-out-of-M transfer runs over the OT extension (ot.ExtKofN) instead
// of per-query Naor–Pinkas. Two messages per query instead of four, and
// no public-key operations on the query path.
//
// Several queries (or batches) may be in flight per session — each holds
// its own per-batch extension state — as long as the sender answers them
// in the order they were opened: the extension endpoints advance lockstep
// batch counters, so responses must come back FIFO. A single connection
// with a single server worker gives exactly that ordering. Privacy is
// unchanged: fresh masking polynomial and amplifier per query, fresh
// covers and genuine positions per query, and the extension hides the
// genuine indices exactly as the base OT does.

// FastRequest is the receiver's single per-query message.
type FastRequest struct {
	Eval *EvalRequest
	OT   *ot.ExtKofNRequest
}

// FastResponse is the sender's single per-query message.
type FastResponse struct {
	OT *ot.ExtKofNResponse
}

// SessionSender serves any number of fast queries for one evaluator.
type SessionSender struct {
	params Params
	eval   Evaluator
	iknp   *ot.IKNPSender
}

// SessionReceiver issues fast queries.
type SessionReceiver struct {
	params Params
	iknp   *ot.IKNPReceiver
}

// NewSessionReceiverBase starts a session from the receiver side,
// returning the IKNP base setup to send to the sender.
func NewSessionReceiverBase(params Params, rng io.Reader) (*SessionReceiver, *ot.IKNPBaseSetup, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	iknp, setup, err := ot.NewIKNPReceiverBase(params.Group, rng)
	if err != nil {
		return nil, nil, err
	}
	iknp.SetPad(params.Pad)
	iknp.SetParallelism(params.Parallelism)
	return &SessionReceiver{params: params, iknp: iknp}, setup, nil
}

// NewSessionSenderBase starts a session from the sender side, given the
// receiver's base setup; returns the base choice message.
func NewSessionSenderBase(params Params, eval Evaluator, setup *ot.IKNPBaseSetup, rng io.Reader) (*SessionSender, *ot.IKNPBaseChoice, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if eval == nil {
		return nil, nil, fmt.Errorf("%w: nil evaluator", ErrParams)
	}
	iknp, choice, err := ot.NewIKNPSenderBase(params.Group, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	iknp.SetPad(params.Pad)
	iknp.SetParallelism(params.Parallelism)
	return &SessionSender{params: params, eval: eval, iknp: iknp}, choice, nil
}

// ResumeSessionSender rebuilds a sender session from a snapshotted IKNP
// state instead of running the base phase: the restored extension carries
// its batch counter forward, so the session picks up exactly where the
// snapshotted one stopped and never reuses a PRG column or pad.
func ResumeSessionSender(params Params, eval Evaluator, state *ot.IKNPSenderState) (*SessionSender, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("%w: nil evaluator", ErrParams)
	}
	iknp, err := ot.RestoreIKNPSender(state)
	if err != nil {
		return nil, err
	}
	iknp.SetPad(params.Pad)
	iknp.SetParallelism(params.Parallelism)
	return &SessionSender{params: params, eval: eval, iknp: iknp}, nil
}

// ResumeSessionReceiver rebuilds a receiver session from a snapshotted
// IKNP state (see ResumeSessionSender).
func ResumeSessionReceiver(params Params, state *ot.IKNPReceiverState) (*SessionReceiver, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	iknp, err := ot.RestoreIKNPReceiver(state)
	if err != nil {
		return nil, err
	}
	iknp.SetPad(params.Pad)
	iknp.SetParallelism(params.Parallelism)
	return &SessionReceiver{params: params, iknp: iknp}, nil
}

// Snapshot captures the sender's IKNP position for resumption; it fails
// while the base phase is incomplete.
func (ss *SessionSender) Snapshot() (*ot.IKNPSenderState, error) { return ss.iknp.Snapshot() }

// Snapshot captures the receiver's IKNP position for resumption.
func (sr *SessionReceiver) Snapshot() (*ot.IKNPReceiverState, error) { return sr.iknp.Snapshot() }

// FinishBaseReceiver completes the base phase on the receiver side.
func (sr *SessionReceiver) FinishBaseReceiver(choice *ot.IKNPBaseChoice, rng io.Reader) (*ot.IKNPBaseTransfer, error) {
	return sr.iknp.BaseRespond(choice, rng)
}

// FinishBaseSender completes the base phase on the sender side.
func (ss *SessionSender) FinishBaseSender(tr *ot.IKNPBaseTransfer) error {
	return ss.iknp.BaseFinish(tr)
}

// NewSession runs the base phase in memory and returns a paired session.
func NewSession(params Params, eval Evaluator, rng io.Reader) (*SessionSender, *SessionReceiver, error) {
	receiver, setup, err := NewSessionReceiverBase(params, rng)
	if err != nil {
		return nil, nil, err
	}
	sender, choice, err := NewSessionSenderBase(params, eval, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	tr, err := receiver.FinishBaseReceiver(choice, rng)
	if err != nil {
		return nil, nil, err
	}
	if err := sender.FinishBaseSender(tr); err != nil {
		return nil, nil, err
	}
	return sender, receiver, nil
}

// SessionQuery is one in-flight fast query on the receiver side.
type SessionQuery struct {
	sr      *SessionReceiver
	points  []*big.Int
	lpoints []limb.Element
	index   []int
	ext     *ot.ExtKofNQuery
}

// NewQuery opens a fast query for one input vector.
func (sr *SessionReceiver) NewQuery(input field.Vec, rng io.Reader) (*SessionQuery, *FastRequest, error) {
	// Reuse the standard receiver's cover/decoy construction; only the
	// transfer mechanism differs.
	recv, req, err := NewReceiver(sr.params, input, rng)
	if err != nil {
		return nil, nil, err
	}
	ext, otReq, err := ot.NewExtKofNQuery(sr.iknp, sr.params.TotalPairs(), recv.genuine)
	if err != nil {
		return nil, nil, err
	}
	q := &SessionQuery{
		sr:      sr,
		points:  recv.points,
		lpoints: recv.lpoints,
		index:   recv.genuine,
		ext:     ext,
	}
	return q, &FastRequest{Eval: req, OT: otReq}, nil
}

// HandleQuery answers one fast query: fresh mask and amplifier, masked
// evaluations of every pair, extension-based transfer.
func (ss *SessionSender) HandleQuery(req *FastRequest, rng io.Reader) (*FastResponse, error) {
	if req == nil || req.Eval == nil || req.OT == nil {
		return nil, fmt.Errorf("%w: nil fast request", ErrBadRequest)
	}
	if err := validateEvalRequest(ss.params, ss.eval.NumVars(), req.Eval); err != nil {
		return nil, err
	}
	amp, err := sampleAmplifier(rng, ss.params.amplifierBitsOrDefault())
	if err != nil {
		return nil, err
	}
	msgs, err := maskedSample(ss.params, ss.eval, amp, zeroShift, req.Eval, rng)
	if err != nil {
		return nil, err
	}
	otResp, err := ot.ExtKofNRespond(ss.iknp, req.OT, msgs, rng)
	if err != nil {
		return nil, err
	}
	return &FastResponse{OT: otResp}, nil
}

// Finish recovers amp·P(α) from the sender's response.
func (q *SessionQuery) Finish(resp *FastResponse) (*big.Int, error) {
	if resp == nil || resp.OT == nil {
		return nil, fmt.Errorf("%w: nil fast response", ErrBadRequest)
	}
	raw, err := q.ext.Recover(resp.OT)
	if err != nil {
		return nil, err
	}
	if q.sr.params.limbBackend() {
		var ip poly.LimbInterpolator
		return interpolateTransferredLimb(raw, q.lpoints, q.index, &ip)
	}
	return interpolateTransferred(q.sr.params.Field, raw, q.points, q.index)
}

// interpolateTransferred decodes one query's transferred field elements
// and recovers amp·P(α) by Lagrange interpolation at zero.
func interpolateTransferred(f *field.Field, raw [][]byte, points []*big.Int, index []int) (*big.Int, error) {
	pts := make([]poly.Point, len(raw))
	for i, b := range raw {
		y, err := f.FromBytes(b)
		if err != nil {
			return nil, fmt.Errorf("ompe: transferred value %d: %w", i, err)
		}
		pts[i] = poly.Point{X: points[index[i]], Y: y}
	}
	return poly.InterpolateAtZero(f, pts)
}

// Batched fast queries: B samples ride one message pair. The receiver
// builds B independent cover/decoy constructions (serial randomness, so
// wire bytes stay deterministic under a fixed rng at any parallelism) and
// opens one k-of-n transfer per sample over a single IKNP extension round.
// The sender draws B fresh (mask, amplifier) pairs — per-sample masks are
// independent, so each sample's privacy argument is exactly the
// single-query one; batching shares only the (index-hiding) extension.

// FastBatchRequest is the receiver's single message for B samples.
type FastBatchRequest struct {
	Evals []*EvalRequest
	OT    *ot.ExtKofNBatchRequest
}

// FastBatchResponse is the sender's single message for B samples.
type FastBatchResponse struct {
	OT *ot.ExtKofNBatchResponse
}

// SessionBatch is one in-flight batched query on the receiver side.
type SessionBatch struct {
	sr      *SessionReceiver
	points  [][]*big.Int
	lpoints [][]limb.Element
	index   [][]int
	ext     *ot.ExtKofNBatchQuery
}

// Len returns the number of samples in the batch.
func (b *SessionBatch) Len() int { return len(b.index) }

// NewBatch opens one batched query covering all inputs.
func (sr *SessionReceiver) NewBatch(inputs []field.Vec, rng io.Reader) (*SessionBatch, *FastBatchRequest, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	evals := make([]*EvalRequest, len(inputs))
	points := make([][]*big.Int, len(inputs))
	lpoints := make([][]limb.Element, len(inputs))
	genuine := make([][]int, len(inputs))
	for i, input := range inputs {
		recv, req, err := NewReceiver(sr.params, input, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("ompe: batch sample %d: %w", i, err)
		}
		evals[i] = req
		points[i] = recv.points
		lpoints[i] = recv.lpoints
		genuine[i] = recv.genuine
	}
	ext, otReq, err := ot.NewExtKofNBatchQuery(sr.iknp, sr.params.TotalPairs(), genuine)
	if err != nil {
		return nil, nil, err
	}
	b := &SessionBatch{sr: sr, points: points, lpoints: lpoints, index: genuine, ext: ext}
	return b, &FastBatchRequest{Evals: evals, OT: otReq}, nil
}

// senderMask bundles one sample's serially-drawn sender randomness (the
// amplifier and the masking polynomial, on whichever field engine the
// session runs) so the pure evaluation half can run on any worker.
type senderMask struct {
	amp   *big.Int
	hBig  *poly.Poly
	hLimb *poly.LimbPoly
}

// drawSenderMask draws one sample's amplifier and masking polynomial from
// rng in exactly the order the serial sender does, preserving the
// serial-rng discipline that keeps wire bytes bit-identical at every
// parallelism degree.
func drawSenderMask(params Params, rng io.Reader) (senderMask, error) {
	var m senderMask
	amp, err := sampleAmplifier(rng, params.amplifierBitsOrDefault())
	if err != nil {
		return m, err
	}
	m.amp = amp
	if params.limbBackend() {
		var zero limb.Element
		h, err := poly.RandomLimb(rng, params.ComposedDegree(), &zero)
		if err != nil {
			return m, err
		}
		m.hLimb = h
		return m, nil
	}
	f := params.Field
	h, err := poly.Random(f, rng, params.ComposedDegree(), f.Zero())
	if err != nil {
		return m, err
	}
	m.hBig = h
	return m, nil
}

// maskedSampleWith is the pure evaluation half of maskedSample, given a
// pre-drawn senderMask. parallelism bounds the inner per-pair fan-out.
func maskedSampleWith(params Params, eval Evaluator, m senderMask, shift *big.Int, req *EvalRequest, parallelism int) ([][]byte, error) {
	if params.limbBackend() {
		return maskedSampleLimbWith(params, eval, m.hLimb, m.amp, shift, req, parallelism)
	}
	return maskedEvaluations(params.Field, eval, m.hBig, m.amp, shift, req, parallelism)
}

// HandleBatch answers one batched query. Randomness (per-sample mask,
// amplifier, and transfer keys) is drawn serially in sample order; the
// pure-arithmetic masked evaluations then fan the B samples out across
// the worker pool (each sample computed serially inside its worker, so
// the pool stays flat at Parallelism workers).
func (ss *SessionSender) HandleBatch(req *FastBatchRequest, rng io.Reader) (*FastBatchResponse, error) {
	if req == nil || req.OT == nil || len(req.Evals) == 0 {
		return nil, fmt.Errorf("%w: nil fast batch request", ErrBadRequest)
	}
	if len(req.Evals) != req.OT.B {
		return nil, fmt.Errorf("%w: %d eval requests for OT batch of %d", ErrBadRequest, len(req.Evals), req.OT.B)
	}
	span := obs.Start(obs.PhaseSenderMask)
	masks := make([]senderMask, len(req.Evals))
	for i, eval := range req.Evals {
		if eval == nil {
			return nil, fmt.Errorf("%w: nil eval request %d", ErrBadRequest, i)
		}
		if err := validateEvalRequest(ss.params, ss.eval.NumVars(), eval); err != nil {
			return nil, fmt.Errorf("ompe: batch sample %d: %w", i, err)
		}
		m, err := drawSenderMask(ss.params, rng)
		if err != nil {
			return nil, err
		}
		masks[i] = m
	}
	msgs := make([][][]byte, len(req.Evals))
	err := parallel.For(ss.params.Parallelism, len(req.Evals), func(i int) error {
		sample, err := maskedSampleWith(ss.params, ss.eval, masks[i], zeroShift, req.Evals[i], 1)
		if err != nil {
			return err
		}
		msgs[i] = sample
		return nil
	})
	span.End()
	if err != nil {
		return nil, err
	}
	otResp, err := ot.ExtKofNBatchRespond(ss.iknp, req.OT, msgs, rng)
	if err != nil {
		return nil, err
	}
	return &FastBatchResponse{OT: otResp}, nil
}

// Finish recovers every sample's amp·P(α), in batch order.
func (b *SessionBatch) Finish(resp *FastBatchResponse) ([]*big.Int, error) {
	if resp == nil || resp.OT == nil {
		return nil, fmt.Errorf("%w: nil fast batch response", ErrBadRequest)
	}
	raw, err := b.ext.Recover(resp.OT)
	if err != nil {
		return nil, err
	}
	span := obs.Start(obs.PhaseReceiverInterpolate)
	defer span.End()
	out := make([]*big.Int, len(raw))
	if b.sr.params.limbBackend() {
		// Decode every sample, then interpolate the whole batch with one
		// shared field inversion — the inversion is the dominant
		// interpolation cost, so it must not be paid per sample.
		total := 0
		for i := range raw {
			total += len(raw[i])
		}
		flat := make([]limb.Element, 2*total)
		nodes := make([]poly.LimbNodes, len(raw))
		off := 0
		for i := range raw {
			m := len(raw[i])
			xs := flat[off : off+m]
			ys := flat[total+off : total+off+m]
			for j, bs := range raw[i] {
				if err := ys[j].SetBytes(bs); err != nil {
					return nil, fmt.Errorf("ompe: batch sample %d: transferred value %d: %w", i, j, err)
				}
				xs[j] = b.lpoints[i][b.index[i][j]]
			}
			nodes[i] = poly.LimbNodes{Xs: xs, Ys: ys}
			off += m
		}
		res := make([]limb.Element, len(raw))
		var ip poly.LimbInterpolator
		if err := ip.AtZeroBatch(nodes, res); err != nil {
			return nil, err
		}
		for i := range res {
			out[i] = res[i].ToBig()
		}
		return out, nil
	}
	for i := range raw {
		v, err := interpolateTransferred(b.sr.params.Field, raw[i], b.points[i], b.index[i])
		if err != nil {
			return nil, fmt.Errorf("ompe: batch sample %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
