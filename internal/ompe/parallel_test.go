package ompe

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math/big"
	"sync/atomic"
	"testing"

	"repro/internal/field"
	"repro/internal/mvpoly"
	"repro/internal/ot"
)

// detReader is a deterministic byte stream (SHA-256 in counter mode) so two
// protocol runs can consume identical randomness.
type detReader struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newDetReader(seed string) *detReader {
	return &detReader{seed: sha256.Sum256([]byte(seed))}
}

func (d *detReader) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		h := sha256.New()
		h.Write(d.seed[:])
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], d.counter)
		d.counter++
		h.Write(c[:])
		d.buf = h.Sum(d.buf)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

func parallelTestParams(par int) Params {
	return Params{
		Field:       field.Default(),
		PolyDegree:  2,
		MaskDegree:  2,
		CoverFactor: 3,
		Group:       ot.Group512Test(),
		Parallelism: par,
	}
}

func quadEvaluator(t *testing.T, f *field.Field) Evaluator {
	t.Helper()
	// P(x) = x0² + 3·x0·x1 − 2·x1 + 7
	p, err := mvpoly.New(f, 2, []mvpoly.Term{
		{Coeff: big.NewInt(1), Exps: []uint{2, 0}},
		{Coeff: big.NewInt(3), Exps: []uint{1, 1}},
		{Coeff: big.NewInt(-2), Exps: []uint{0, 1}},
		{Coeff: big.NewInt(7), Exps: []uint{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParallelRoundTrip runs the full protocol across worker counts and
// checks the recovered value at each degree. Under -race this also
// exercises the concurrent masked evaluations, request construction, and
// batch OT for data races.
func TestParallelRoundTrip(t *testing.T) {
	f := field.Default()
	input := field.Vec{f.FromInt64(4), f.FromInt64(-3)}
	// P(α) = 16 − 36 + 6 + 7 = −7.
	wantPlain := f.FromInt64(-7)
	for _, par := range []int{0, 1, 2, 4, 8} {
		params := parallelTestParams(par)
		res, err := Run(params, quadEvaluator(t, f), input, rand.Reader)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		want := f.Mul(res.Amplifier, wantPlain)
		if res.Value.Cmp(want) != 0 {
			t.Fatalf("par=%d: got %v, want amp·P(α)=%v", par, res.Value, want)
		}
	}
}

// TestParallelDeterministic locks the rng stream and checks that the
// receiver's request and the final value are bit-identical at every
// parallelism degree: randomness is drawn serially in the serial-code
// order, only pure arithmetic fans out.
func TestParallelDeterministic(t *testing.T) {
	f := field.Default()
	input := field.Vec{f.FromInt64(9), f.FromInt64(2)}

	type trace struct {
		req   *EvalRequest
		value *big.Int
	}
	runOnce := func(par int) trace {
		params := parallelTestParams(par)
		rng := newDetReader("ompe-determinism")
		sender, err := NewSender(params, quadEvaluator(t, f))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		receiver, req, err := NewReceiver(params, input, rng)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		setup, err := sender.HandleRequest(req, rng)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		choice, err := receiver.HandleSetup(setup, rng)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		tr, err := sender.HandleChoice(choice, rng)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		value, err := receiver.Finish(tr)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return trace{req: req, value: value}
	}

	base := runOnce(1)
	for _, par := range []int{2, 4, 0} {
		got := runOnce(par)
		if base.value.Cmp(got.value) != 0 {
			t.Fatalf("par=%d: value %v differs from serial %v", par, got.value, base.value)
		}
		if len(base.req.Pairs) != len(got.req.Pairs) {
			t.Fatalf("par=%d: request length differs", par)
		}
		for i := range base.req.Pairs {
			if base.req.Pairs[i].V.Cmp(got.req.Pairs[i].V) != 0 {
				t.Fatalf("par=%d: pair %d evaluation point differs", par, i)
			}
			for j := range base.req.Pairs[i].Z {
				if base.req.Pairs[i].Z[j].Cmp(got.req.Pairs[i].Z[j]) != 0 {
					t.Fatalf("par=%d: pair %d component %d differs", par, i, j)
				}
			}
		}
	}
}

// TestParallelEvaluatorErrorPropagates checks deadlock-free error
// propagation when one pair's evaluation fails mid-batch: the sender's
// HandleRequest must return the error promptly at any parallelism degree.
func TestParallelEvaluatorErrorPropagates(t *testing.T) {
	f := field.Default()
	input := field.Vec{f.FromInt64(1), f.FromInt64(2)}
	boom := errors.New("evaluator exploded")

	for _, par := range []int{1, 4, 0} {
		params := parallelTestParams(par)
		var calls atomic.Int64
		eval := EvaluatorFunc(2, func(z field.Vec) (*big.Int, error) {
			if calls.Add(1) == 3 { // fail one evaluation mid-batch
				return nil, boom
			}
			return f.Dot(field.Vec{f.One(), f.One()}, z)
		})
		sender, err := NewSender(params, eval)
		if err != nil {
			t.Fatal(err)
		}
		_, req, err := NewReceiver(params, input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sender.HandleRequest(req, rand.Reader); !errors.Is(err, boom) {
			t.Fatalf("par=%d: got %v, want evaluator error", par, err)
		}
	}
}

// TestParallelSessionRoundTrip covers the extension-based fast path with a
// parallel worker pool (masked evaluations are the parallel region there).
func TestParallelSessionRoundTrip(t *testing.T) {
	f := field.Default()
	params := parallelTestParams(4)
	input := field.Vec{f.FromInt64(4), f.FromInt64(-3)}

	sender, receiver, err := NewSession(params, quadEvaluator(t, f), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		q, req, err := receiver.NewQuery(input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := sender.HandleQuery(req, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		value, err := q.Finish(resp)
		if err != nil {
			t.Fatal(err)
		}
		if f.Centered(value).Sign() >= 0 {
			t.Fatalf("query %d: amplified P(α)=−7 must stay negative, got %v", i, value)
		}
	}
}

// TestDistinctNonZeroKeyedByCanonicalBytes guards the dedup key: two
// big.Ints with equal canonical encodings must collide even if their
// String forms were produced differently.
func TestDistinctNonZeroKeyedByCanonicalBytes(t *testing.T) {
	f := field.Default()
	pts, err := distinctNonZero(f, 64, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(pts))
	for _, p := range pts {
		if p.Sign() == 0 {
			t.Fatal("zero evaluation point")
		}
		b, err := f.Bytes(p)
		if err != nil {
			t.Fatal(err)
		}
		if seen[string(b)] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[string(b)] = true
	}
}
