// Package ompe implements Oblivious Multivariate Polynomial Evaluation
// (paper §III-C, Tassa et al.), the primitive both of the paper's protocols
// are built on.
//
// The sender holds a secret r-variate polynomial P over a prime field and
// an amplifier; the receiver holds a secret input vector α. At the end the
// receiver learns amp·P(α)+shift and nothing else about P; the sender
// learns nothing about α.
//
// Construction, following §IV-A with the paper's variable names:
//
//  1. The receiver hides each input component α_i inside a random
//     degree-q cover polynomial g_i with g_i(0)=α_i, samples M = m·k
//     distinct evaluation points v_1..v_M, evaluates the cover tuple
//     z_i = G(v_i) at m secret genuine positions, and sends random decoy
//     vectors at the rest.
//  2. The sender draws a fresh masking polynomial h of degree D = p·q with
//     h(0)=0 and a fresh amplifier, computes y_i = h(v_i) + amp·P(z_i) +
//     shift for every pair, and the parties run an m-out-of-M oblivious
//     transfer of the y values.
//  3. The receiver interpolates the m genuine (v_i, y_i) points — they lie
//     on the degree-D univariate polynomial B(v) = h(v) + amp·P(G(v)) +
//     shift — and recovers B(0) = amp·P(α) + shift.
//
// Both roles are one-shot state machines that exchange plain message
// structs, so they run identically over in-memory pipes and real network
// transports.
package ompe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/field"
	"repro/internal/field/limb"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/parallel"
	"repro/internal/poly"
)

var (
	// ErrState reports a protocol method called out of order.
	ErrState = errors.New("ompe: protocol state violation")
	// ErrBadRequest reports a malformed evaluation request.
	ErrBadRequest = errors.New("ompe: malformed evaluation request")
	// ErrParams reports invalid protocol parameters.
	ErrParams = errors.New("ompe: invalid parameters")
)

// zeroShift is the shared shift for sessions that never shift (read-only).
var zeroShift = new(big.Int)

// Evaluator is the sender's secret function: a multivariate polynomial over
// the protocol field. Implementations include mvpoly.Poly, the kernel-form
// SVM decision functions in internal/classify, and the triangle-metric
// polynomial in internal/similarity.
type Evaluator interface {
	// NumVars returns the input arity.
	NumVars() int
	// Eval evaluates the polynomial at a field point. Eval must be safe
	// for concurrent use: the sender fans the M request pairs out across
	// Params.Parallelism workers. Every evaluator in this repository
	// qualifies — they read shared encoded state and allocate per-call
	// scratch.
	Eval(x field.Vec) (*big.Int, error)
}

// Params fixes one OMPE execution's public parameters. Both parties must
// agree on them.
type Params struct {
	// Field is the protocol field.
	Field *field.Field
	// PolyDegree is p, the total degree of the sender's polynomial.
	PolyDegree int
	// MaskDegree is q, the security parameter: the degree of the
	// receiver's cover polynomials.
	MaskDegree int
	// CoverFactor is k >= 2: the receiver hides its m genuine points among
	// M = m·k pairs.
	CoverFactor int
	// AmplifierBits bounds a freshly sampled amplifier to [1, 2^bits].
	// Zero selects DefaultAmplifierBits.
	AmplifierBits int
	// Group is the oblivious-transfer group.
	Group ot.Group
	// Backend selects the field-arithmetic engine (zero value: the
	// math/big path). field.BackendLimb runs every per-query hot loop on
	// fixed-width limb elements and carries the evaluation request in
	// packed form; it requires the 2^255−19 field. Both parties must
	// agree on it per session, like Group.
	Backend field.Backend
	// Parallelism bounds the worker pool used for the data-parallel hot
	// paths (masked evaluations, cover construction, batch OT): <= 0
	// selects GOMAXPROCS, 1 forces the serial path, larger values request
	// exactly that many workers. It is a local performance knob, not part
	// of the wire contract — the two parties may use different values.
	// Randomness is always drawn serially, so protocol messages and
	// results are bit-identical at every parallelism degree given the same
	// rng stream.
	Parallelism int
	// Pad selects the OT extension's symmetric pad family (row hashes and
	// tree-key pads) for fast sessions. Both parties must agree on it per
	// session, like Group; the zero value is the legacy SHA-256 pad, so
	// un-negotiated sessions interoperate with old peers byte-for-byte.
	Pad ot.PadFunc
}

// DefaultAmplifierBits bounds fresh amplifiers to 64 bits, large enough to
// hide the decision value's magnitude and small enough to keep amplified
// fixed-point values inside the field's centered range.
const DefaultAmplifierBits = 64

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch {
	case p.Field == nil:
		return fmt.Errorf("%w: nil field", ErrParams)
	case p.PolyDegree < 1:
		return fmt.Errorf("%w: poly degree %d", ErrParams, p.PolyDegree)
	case p.MaskDegree < 1:
		return fmt.Errorf("%w: mask degree %d", ErrParams, p.MaskDegree)
	case p.CoverFactor < 2:
		return fmt.Errorf("%w: cover factor %d (need >= 2)", ErrParams, p.CoverFactor)
	case p.AmplifierBits < 0 || p.AmplifierBits > p.Field.Bits()-2:
		return fmt.Errorf("%w: amplifier bits %d", ErrParams, p.AmplifierBits)
	case p.Group == nil:
		return fmt.Errorf("%w: nil OT group", ErrParams)
	}
	if err := p.Field.CheckBackend(p.Backend); err != nil {
		return fmt.Errorf("%w: %v", ErrParams, err)
	}
	if _, err := ot.ResolvePad(string(p.Pad)); err != nil {
		return fmt.Errorf("%w: %v", ErrParams, err)
	}
	return nil
}

// ComposedDegree returns D = p·q, the degree of B(v).
func (p Params) ComposedDegree() int { return p.PolyDegree * p.MaskDegree }

// GenuineCount returns m = D+1, the number of genuine evaluation points
// (the paper's m = q+1 for linear and m = pq+1 for nonlinear).
func (p Params) GenuineCount() int { return p.ComposedDegree() + 1 }

// TotalPairs returns M = m·k.
func (p Params) TotalPairs() int { return p.GenuineCount() * p.CoverFactor }

func (p Params) amplifierBitsOrDefault() int {
	if p.AmplifierBits == 0 {
		return DefaultAmplifierBits
	}
	return p.AmplifierBits
}

// sampleAmplifier draws a log-uniform positive amplifier: a uniform
// exponent e in [0, bits), then a uniform value in [2^e, 2^(e+1)). A
// log-uniform r_a makes the amplified value's magnitude scale-free, so a
// colluding client pool cannot even regress on expected magnitudes — the
// estimates of Fig. 5 "keep rambling" at every pool size.
func sampleAmplifier(rng io.Reader, bits int) (*big.Int, error) {
	eBig, err := rand.Int(rng, big.NewInt(int64(bits)))
	if err != nil {
		return nil, err
	}
	e := uint(eBig.Int64())
	lo := new(big.Int).Lsh(big.NewInt(1), e)
	span := new(big.Int).Set(lo) // [2^e, 2^(e+1)) has width 2^e
	off, err := rand.Int(rng, span)
	if err != nil {
		return nil, err
	}
	return lo.Add(lo, off), nil
}

// Pair is one (v_i, z_i) evaluation pair of the request.
type Pair struct {
	V *big.Int
	Z field.Vec
}

// EvalRequest is the receiver's first message: M pairs, of which only the
// receiver's secret m positions carry genuine cover evaluations. Exactly
// one representation is populated, determined by the session backend:
// Pairs on the math/big engine, Packed on the limb engine. Packed holds
// the M records back to back, each (1+numVars)·32 bytes of canonical
// fixed-width encodings — v_i first, then the z_i components — which
// keeps the gob payload a single byte slice instead of M·(1+numVars)
// big.Ints.
type EvalRequest struct {
	Pairs  []Pair
	Packed []byte
}

type senderState int

const (
	senderAwaitingRequest senderState = iota + 1
	senderAwaitingChoice
	senderDone
)

// Sender is the polynomial owner's one-shot protocol role.
type Sender struct {
	params Params
	eval   Evaluator

	fixedAmplifier *big.Int // nil => sample fresh per execution
	shift          *big.Int

	state     senderState
	amplifier *big.Int
	batch     *ot.BatchSender
}

// SenderOption configures a Sender.
type SenderOption func(*Sender)

// WithAmplifier pins the amplifier instead of sampling a fresh one. The
// similarity protocol uses this: Alice must know r_am and r_aw exactly to
// cancel them in the final round via modular inverses.
func WithAmplifier(amp *big.Int) SenderOption {
	return func(s *Sender) { s.fixedAmplifier = new(big.Int).Set(amp) }
}

// WithShift adds a constant after amplification (the paper's r_b in §V-B,
// which prevents the receiver from detecting amp·P(α) = 0).
func WithShift(shift *big.Int) SenderOption {
	return func(s *Sender) { s.shift = new(big.Int).Set(shift) }
}

// NewSender builds the sender role around a secret evaluator.
func NewSender(params Params, eval Evaluator, opts ...SenderOption) (*Sender, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("%w: nil evaluator", ErrParams)
	}
	s := &Sender{
		params: params,
		eval:   eval,
		shift:  new(big.Int),
		state:  senderAwaitingRequest,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Amplifier returns the amplifier used in this execution. It is valid
// after HandleRequest.
func (s *Sender) Amplifier() *big.Int {
	if s.amplifier == nil {
		return nil
	}
	return new(big.Int).Set(s.amplifier)
}

// HandleRequest consumes the receiver's evaluation request, computes the
// masked evaluations y_i = h(v_i) + amp·P(z_i) + shift, and opens the
// m-out-of-M oblivious transfer.
func (s *Sender) HandleRequest(req *EvalRequest, rng io.Reader) (*ot.BatchSetup, error) {
	if s.state != senderAwaitingRequest {
		return nil, ErrState
	}
	if err := s.validateRequest(req); err != nil {
		return nil, err
	}

	if s.fixedAmplifier != nil {
		s.amplifier = new(big.Int).Set(s.fixedAmplifier)
	} else {
		amp, err := sampleAmplifier(rng, s.params.amplifierBitsOrDefault())
		if err != nil {
			return nil, err
		}
		s.amplifier = amp
	}

	// Fresh masking polynomial h with h(0)=0 and degree D, so it cancels
	// at the interpolation point and drowns P's coefficients everywhere
	// else (§IV-A.1); maskedSample draws it on the session backend.
	maskSpan := obs.Start(obs.PhaseSenderMask)
	msgs, err := maskedSample(s.params, s.eval, s.amplifier, s.shift, req, rng)
	if err != nil {
		return nil, err
	}
	maskSpan.End()

	batch, setup, err := ot.NewBatchSenderParallel(s.params.Group, msgs, s.params.GenuineCount(), s.params.Parallelism, rng)
	if err != nil {
		return nil, err
	}
	s.batch = batch
	s.state = senderAwaitingChoice
	return setup, nil
}

// HandleChoice consumes the receiver's OT choice and returns the final
// transfer.
func (s *Sender) HandleChoice(choice *ot.BatchChoice, rng io.Reader) (*ot.BatchTransfer, error) {
	if s.state != senderAwaitingChoice {
		return nil, ErrState
	}
	tr, err := s.batch.Respond(choice, rng)
	if err != nil {
		return nil, err
	}
	s.state = senderDone
	return tr, nil
}

func (s *Sender) validateRequest(req *EvalRequest) error {
	return validateEvalRequest(s.params, s.eval.NumVars(), req)
}

// validateEvalRequest checks a receiver's evaluation request against the
// protocol parameters (shared by the one-shot and session senders). On
// the limb backend only the structure is checked here; the per-record
// canonical and dedup checks run inside the masking path, which decodes
// every record exactly once.
func validateEvalRequest(params Params, numVars int, req *EvalRequest) error {
	if params.limbBackend() {
		return checkPackedShape(params, numVars, req)
	}
	if req == nil {
		return fmt.Errorf("%w: nil request", ErrBadRequest)
	}
	if len(req.Packed) != 0 {
		return fmt.Errorf("%w: packed request on math/big backend", ErrBadRequest)
	}
	if len(req.Pairs) != params.TotalPairs() {
		return fmt.Errorf("%w: got %d pairs, want %d", ErrBadRequest, len(req.Pairs), params.TotalPairs())
	}
	f := params.Field
	seen := make(map[string]bool, len(req.Pairs))
	for i, pair := range req.Pairs {
		if pair.V == nil || !f.Contains(pair.V) || pair.V.Sign() == 0 {
			return fmt.Errorf("%w: pair %d has invalid evaluation point", ErrBadRequest, i)
		}
		// Key the dedup map on the fixed-width serialization: decimal
		// big.Int formatting is measurably slow at M ≈ 1k pairs.
		kb, err := f.Bytes(pair.V)
		if err != nil {
			return fmt.Errorf("%w: pair %d has invalid evaluation point", ErrBadRequest, i)
		}
		key := string(kb)
		if seen[key] {
			return fmt.Errorf("%w: pair %d repeats evaluation point", ErrBadRequest, i)
		}
		seen[key] = true
		if len(pair.Z) != numVars {
			return fmt.Errorf("%w: pair %d has arity %d, want %d", ErrBadRequest, i, len(pair.Z), numVars)
		}
		for j, z := range pair.Z {
			if z == nil || !f.Contains(z) {
				return fmt.Errorf("%w: pair %d component %d not in field", ErrBadRequest, i, j)
			}
		}
	}
	return nil
}

type receiverState int

const (
	receiverAwaitingSetup receiverState = iota + 1
	receiverAwaitingTransfer
	receiverDone
)

// Receiver is the input owner's one-shot protocol role.
type Receiver struct {
	params Params

	state   receiverState
	points  []*big.Int     // all M evaluation points v_i (math/big engine)
	lpoints []limb.Element // all M evaluation points v_i (limb engine)
	genuine []int          // indices of the m genuine positions
	batch   *ot.BatchReceiver
}

// NewReceiver builds the receiver role for a secret input vector and
// returns the evaluation request. numVars is the sender polynomial's arity
// and must equal len(input).
func NewReceiver(params Params, input field.Vec, rng io.Reader) (*Receiver, *EvalRequest, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if len(input) == 0 {
		return nil, nil, fmt.Errorf("%w: empty input", ErrParams)
	}
	f := params.Field
	for i, x := range input {
		if x == nil || !f.Contains(x) {
			return nil, nil, fmt.Errorf("%w: input component %d not in field", ErrParams, i)
		}
	}
	if params.limbBackend() {
		return newReceiverLimb(params, input, rng)
	}

	// Cover polynomials: g_i(0) = α_i, random elsewhere (§IV-A.2).
	maskSpan := obs.Start(obs.PhaseReceiverMask)
	covers := make([]*poly.Poly, len(input))
	for i := range input {
		g, err := poly.Random(f, rng, params.MaskDegree, input[i])
		if err != nil {
			return nil, nil, err
		}
		covers[i] = g
	}
	maskSpan.End()

	decoySpan := obs.Start(obs.PhaseReceiverDecoy)
	total := params.TotalPairs()
	points, err := distinctNonZero(f, total, rng)
	if err != nil {
		return nil, nil, err
	}
	genuine, err := randomSubset(total, params.GenuineCount(), rng)
	if err != nil {
		return nil, nil, err
	}
	isGenuine := make(map[int]bool, len(genuine))
	for _, idx := range genuine {
		isGenuine[idx] = true
	}

	// Draw every decoy component serially, in pair order — exactly the
	// stream the fully serial construction consumes — then evaluate the
	// genuine pairs' cover tuples across the worker pool. crypto/rand
	// draws never happen inside the parallel region, so the request is
	// deterministic given a locked rng at any parallelism degree.
	pairs := make([]Pair, total)
	for i := 0; i < total; i++ {
		z := make(field.Vec, len(input))
		if !isGenuine[i] {
			// Decoy: uniform garbage indistinguishable from cover values.
			for j := range z {
				x, err := f.Rand(rng)
				if err != nil {
					return nil, nil, err
				}
				z[j] = x
			}
		}
		pairs[i] = Pair{V: points[i], Z: z}
	}
	_ = parallel.For(params.Parallelism, total, func(i int) error {
		if !isGenuine[i] {
			return nil
		}
		for j, g := range covers {
			pairs[i].Z[j] = g.Eval(points[i])
		}
		return nil
	})
	decoySpan.End()

	r := &Receiver{
		params:  params,
		state:   receiverAwaitingSetup,
		points:  points,
		genuine: genuine,
	}
	return r, &EvalRequest{Pairs: pairs}, nil
}

// HandleSetup consumes the sender's OT setup and produces the receiver's
// choice of its genuine indices.
func (r *Receiver) HandleSetup(setup *ot.BatchSetup, rng io.Reader) (*ot.BatchChoice, error) {
	if r.state != receiverAwaitingSetup {
		return nil, ErrState
	}
	batch, choice, err := ot.NewBatchReceiverParallel(r.params.Group, r.params.TotalPairs(), r.genuine, setup, r.params.Parallelism, rng)
	if err != nil {
		return nil, err
	}
	r.batch = batch
	r.state = receiverAwaitingTransfer
	return choice, nil
}

// Finish decrypts the transferred evaluations and interpolates B at zero,
// returning amp·P(α) + shift.
func (r *Receiver) Finish(tr *ot.BatchTransfer) (*big.Int, error) {
	if r.state != receiverAwaitingTransfer {
		return nil, ErrState
	}
	raw, err := r.batch.Recover(tr)
	if err != nil {
		return nil, err
	}
	interpSpan := obs.Start(obs.PhaseReceiverInterpolate)
	var result *big.Int
	if r.params.limbBackend() {
		var ip poly.LimbInterpolator
		result, err = interpolateTransferredLimb(raw, r.lpoints, r.genuine, &ip)
		if err != nil {
			return nil, err
		}
	} else {
		f := r.params.Field
		pts := make([]poly.Point, len(raw))
		for i, b := range raw {
			y, err := f.FromBytes(b)
			if err != nil {
				return nil, fmt.Errorf("ompe: transferred value %d: %w", i, err)
			}
			pts[i] = poly.Point{X: r.points[r.genuine[i]], Y: y}
		}
		result, err = poly.InterpolateAtZero(f, pts)
		if err != nil {
			return nil, err
		}
	}
	interpSpan.End()
	r.state = receiverDone
	return result, nil
}

// distinctNonZero samples n distinct non-zero field elements. The dedup
// map is keyed on the fixed-width serialization rather than the decimal
// string (big.Int decimal formatting is measurably slow at M ≈ 1k pairs).
func distinctNonZero(f *field.Field, n int, rng io.Reader) ([]*big.Int, error) {
	out := make([]*big.Int, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		x, err := f.RandNonZero(rng)
		if err != nil {
			return nil, err
		}
		kb, err := f.Bytes(x)
		if err != nil {
			return nil, err
		}
		key := string(kb)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, x)
	}
	return out, nil
}

// randomSubset samples a uniform m-subset of [0, n) in increasing order
// via a partial Fisher–Yates shuffle with cryptographic randomness.
func randomSubset(n, m int, rng io.Reader) ([]int, error) {
	if m > n {
		return nil, fmt.Errorf("%w: subset %d of %d", ErrParams, m, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < m; i++ {
		jBig, err := rand.Int(rng, big.NewInt(int64(n-i)))
		if err != nil {
			return nil, err
		}
		j := i + int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:m], nil
}

// maskedEvaluations computes the sender's arithmetic core: one masked,
// amplified, shifted evaluation per request pair, serialized for OT. Each
// pair's h(v_i) + amp·P(z_i) + shift is independent, so the M pairs are
// chunked across the worker pool; a failing pair stops the batch and
// surfaces the lowest-indexed error without deadlocking the pool.
func maskedEvaluations(f *field.Field, eval Evaluator, h *poly.Poly, amplifier, shift *big.Int, req *EvalRequest, parallelism int) ([][]byte, error) {
	msgs := make([][]byte, len(req.Pairs))
	reducedShift := f.Reduce(shift)
	err := parallel.For(parallelism, len(req.Pairs), func(i int) error {
		pair := req.Pairs[i]
		pv, err := eval.Eval(pair.Z)
		if err != nil {
			return fmt.Errorf("ompe: evaluate pair %d: %w", i, err)
		}
		y := f.Add(h.Eval(pair.V), f.Add(f.Mul(amplifier, pv), reducedShift))
		b, err := f.Bytes(y)
		if err != nil {
			return err
		}
		msgs[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return msgs, nil
}

// maskedSample computes one sample's masked evaluations on the session
// backend, drawing the fresh degree-D masking polynomial from rng.
func maskedSample(params Params, eval Evaluator, amplifier, shift *big.Int, req *EvalRequest, rng io.Reader) ([][]byte, error) {
	if params.limbBackend() {
		return maskedSampleLimb(params, eval, amplifier, shift, req, rng)
	}
	f := params.Field
	h, err := poly.Random(f, rng, params.ComposedDegree(), f.Zero())
	if err != nil {
		return nil, err
	}
	return maskedEvaluations(f, eval, h, amplifier, shift, req, params.Parallelism)
}

// MaskedEvaluations exposes the sender's arithmetic core (fresh masking
// polynomial + amplified evaluation of every pair) WITHOUT the oblivious
// transfer, for micro-benchmarks that isolate the polynomial-masking cost
// the paper's Fig. 10 reports.
func MaskedEvaluations(params Params, eval Evaluator, req *EvalRequest, rng io.Reader) ([][]byte, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	amp, err := sampleAmplifier(rng, params.amplifierBitsOrDefault())
	if err != nil {
		return nil, err
	}
	return maskedSample(params, eval, amp, new(big.Int), req, rng)
}
