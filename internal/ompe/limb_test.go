package ompe

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"repro/internal/field"
	"repro/internal/field/limb"
	"repro/internal/mvpoly"
	"repro/internal/ot"
)

func limbParams(t *testing.T, polyDegree, parallelism int) Params {
	t.Helper()
	return Params{
		Field:       field.Default(),
		PolyDegree:  polyDegree,
		MaskDegree:  2,
		CoverFactor: 2,
		Group:       ot.Group512Test(),
		Backend:     field.BackendLimb,
		Parallelism: parallelism,
	}
}

// TestLimbBackendRequiresP25519: the limb engine must refuse any other
// field at parameter validation.
func TestLimbBackendRequiresP25519(t *testing.T) {
	f192, err := field.NewFromHex(field.P192Hex)
	if err != nil {
		t.Fatal(err)
	}
	params := limbParams(t, 1, 1)
	params.Field = f192
	if err := params.Validate(); !errors.Is(err, ErrParams) {
		t.Fatalf("P192+limb accepted: %v", err)
	}
	if err := limbParams(t, 1, 1).Validate(); err != nil {
		t.Fatalf("P25519+limb rejected: %v", err)
	}
	bad := limbParams(t, 1, 1)
	bad.Backend = field.Backend("vector")
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Fatalf("unknown backend accepted: %v", err)
	}
}

// TestLimbRunMatchesPlaintext runs the one-shot protocol end to end on the
// limb engine with a pinned amplifier and shift: the recovered value must
// equal amp·P(α) + shift exactly, matching the math/big semantics.
func TestLimbRunMatchesPlaintext(t *testing.T) {
	f := field.Default()
	params := limbParams(t, 1, 1)
	w := field.Vec{f.FromInt64(3), f.FromInt64(-5), f.FromInt64(7)}
	b := f.FromInt64(11)
	p, err := mvpoly.NewLinear(f, w, b)
	if err != nil {
		t.Fatal(err)
	}
	input := field.Vec{f.FromInt64(2), f.FromInt64(4), f.FromInt64(-1)}
	amp := big.NewInt(23)
	shift := f.FromInt64(-900)
	res, err := Run(params, p, input, rand.Reader, WithAmplifier(amp), WithShift(shift))
	if err != nil {
		t.Fatal(err)
	}
	// P(α) = 6 − 20 − 7 + 11 = −10; 23·(−10) − 900 = −1130.
	want := f.FromInt64(-1130)
	if res.Value.Cmp(want) != 0 {
		t.Fatalf("got %v, want %v", f.Centered(res.Value), f.Centered(want))
	}
}

// TestLimbRunProperty: random linear polynomials and inputs through the
// limb engine agree with direct evaluation up to the returned amplifier.
func TestLimbRunProperty(t *testing.T) {
	f := field.Default()
	params := limbParams(t, 1, 0)
	for trial := 0; trial < 6; trial++ {
		n := 1 + trial%3
		w, err := f.RandVec(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		p, err := mvpoly.NewLinear(f, w, b)
		if err != nil {
			t.Fatal(err)
		}
		input, err := f.RandVec(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(params, p, input, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := p.Eval(input)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value.Cmp(f.Mul(res.Amplifier, direct)) != 0 {
			t.Fatalf("trial %d: protocol value != amp·P(α)", trial)
		}
	}
}

// TestLimbSessionBatch runs the batched session path on the limb engine
// and checks every sample's implied amplifier is in range.
func TestLimbSessionBatch(t *testing.T) {
	f := field.Default()
	params := limbParams(t, 1, 0)
	w := field.Vec{f.FromInt64(2), f.FromInt64(-3)}
	p, err := mvpoly.NewLinear(f, w, f.FromInt64(1))
	if err != nil {
		t.Fatal(err)
	}
	sender, receiver, err := NewSession(params, p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]field.Vec, 5)
	for i := range inputs {
		inputs[i] = field.Vec{f.FromInt64(int64(i + 2)), f.FromInt64(int64(i))}
	}
	batch, req, err := receiver.NewBatch(inputs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range req.Evals {
		if len(ev.Pairs) != 0 || len(ev.Packed) == 0 {
			t.Fatalf("sample %d: limb request not in packed form", i)
		}
	}
	resp, err := sender.HandleBatch(req, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batch.Finish(resp)
	if err != nil {
		t.Fatal(err)
	}
	bound := new(big.Int).Lsh(big.NewInt(1), uint(DefaultAmplifierBits)+1)
	for i, input := range inputs {
		direct, err := p.Eval(input)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := f.Inv(direct)
		if err != nil {
			t.Fatal(err)
		}
		amp := f.Mul(got[i], inv)
		if amp.Sign() <= 0 || amp.Cmp(bound) > 0 {
			t.Fatalf("sample %d: implied amplifier %v out of range", i, amp)
		}
	}
}

// TestLimbParallelDeterministic: the packed request bytes must be
// bit-identical at every parallelism degree given the same rng stream —
// the limb engine's wire-determinism contract.
func TestLimbParallelDeterministic(t *testing.T) {
	f := field.Default()
	input := field.Vec{f.FromInt64(9), f.FromInt64(2), f.FromInt64(-4)}
	runOnce := func(par int) *EvalRequest {
		params := limbParams(t, 1, par)
		rng := newDetReader("ompe-limb-determinism")
		_, req, err := NewReceiver(params, input, rng)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return req
	}
	base := runOnce(1)
	for _, par := range []int{2, 4, 8} {
		got := runOnce(par)
		if string(base.Packed) != string(got.Packed) {
			t.Fatalf("par=%d: packed request bytes differ", par)
		}
	}
}

// TestLimbSenderRejectsMalformed exercises the packed-request validation:
// wrong sizes, non-canonical encodings, zero and duplicate evaluation
// points, and representation mismatches must all be rejected.
func TestLimbSenderRejectsMalformed(t *testing.T) {
	f := field.Default()
	params := limbParams(t, 1, 1)
	w := field.Vec{f.FromInt64(1), f.FromInt64(2)}
	p, err := mvpoly.NewLinear(f, w, f.FromInt64(3))
	if err != nil {
		t.Fatal(err)
	}
	input := field.Vec{f.FromInt64(5), f.FromInt64(6)}
	_, goodReq, err := NewReceiver(params, input, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	stride := packedStride(len(input))
	corrupt := func(mutate func(b []byte) *EvalRequest) error {
		cp := make([]byte, len(goodReq.Packed))
		copy(cp, goodReq.Packed)
		req := mutate(cp)
		sender, err := NewSender(params, p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sender.HandleRequest(req, rand.Reader)
		return err
	}
	cases := map[string]func(b []byte) *EvalRequest{
		"truncated": func(b []byte) *EvalRequest {
			return &EvalRequest{Packed: b[:len(b)-1]}
		},
		"nil": func(b []byte) *EvalRequest { return nil },
		"pair form on limb backend": func(b []byte) *EvalRequest {
			return &EvalRequest{Pairs: []Pair{{V: f.One(), Z: input}}}
		},
		"non-canonical point": func(b []byte) *EvalRequest {
			for i := 0; i < limb.ElementLen; i++ {
				b[i] = 0xff
			}
			return &EvalRequest{Packed: b}
		},
		"non-canonical component": func(b []byte) *EvalRequest {
			for i := 0; i < limb.ElementLen; i++ {
				b[limb.ElementLen+i] = 0xff
			}
			return &EvalRequest{Packed: b}
		},
		"zero point": func(b []byte) *EvalRequest {
			for i := 0; i < limb.ElementLen; i++ {
				b[i] = 0
			}
			return &EvalRequest{Packed: b}
		},
		"duplicate point": func(b []byte) *EvalRequest {
			copy(b[stride:stride+limb.ElementLen], b[:limb.ElementLen])
			return &EvalRequest{Packed: b}
		},
	}
	for name, mutate := range cases {
		if err := corrupt(mutate); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
	// The unmodified request must pass.
	sender, err := NewSender(params, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.HandleRequest(goodReq, rand.Reader); err != nil {
		t.Fatalf("well-formed packed request rejected: %v", err)
	}
}

// TestBigBackendRejectsPackedRequest: a packed request must not reach the
// math/big engine (the backends are negotiated, not mixed).
func TestBigBackendRejectsPackedRequest(t *testing.T) {
	f := field.Default()
	limbP := limbParams(t, 1, 1)
	input := field.Vec{f.FromInt64(5), f.FromInt64(6)}
	_, req, err := NewReceiver(limbP, input, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bigP := limbP
	bigP.Backend = field.BackendBig
	w := field.Vec{f.FromInt64(1), f.FromInt64(2)}
	p, err := mvpoly.NewLinear(f, w, f.FromInt64(3))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewSender(bigP, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.HandleRequest(req, rand.Reader); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("packed request on big backend: %v", err)
	}
}
