package ompe

import (
	"io"
	"math/big"

	"repro/internal/field"
)

// Result carries the outcome of a completed in-memory execution.
type Result struct {
	// Value is amp·P(α) + shift in the field.
	Value *big.Int
	// Amplifier is the amplifier the sender used.
	Amplifier *big.Int
}

// Run executes a complete OMPE exchange in memory: useful for tests,
// examples, and single-process experiments. Distributed deployments drive
// the Sender and Receiver state machines over a transport instead.
func Run(params Params, eval Evaluator, input field.Vec, rng io.Reader, opts ...SenderOption) (*Result, error) {
	sender, err := NewSender(params, eval, opts...)
	if err != nil {
		return nil, err
	}
	receiver, req, err := NewReceiver(params, input, rng)
	if err != nil {
		return nil, err
	}
	setup, err := sender.HandleRequest(req, rng)
	if err != nil {
		return nil, err
	}
	choice, err := receiver.HandleSetup(setup, rng)
	if err != nil {
		return nil, err
	}
	tr, err := sender.HandleChoice(choice, rng)
	if err != nil {
		return nil, err
	}
	value, err := receiver.Finish(tr)
	if err != nil {
		return nil, err
	}
	return &Result{Value: value, Amplifier: sender.Amplifier()}, nil
}

// EvaluatorFunc adapts a closure with a fixed arity into an Evaluator.
func EvaluatorFunc(numVars int, fn func(field.Vec) (*big.Int, error)) Evaluator {
	return &funcEvaluator{n: numVars, fn: fn}
}

type funcEvaluator struct {
	n  int
	fn func(field.Vec) (*big.Int, error)
}

func (e *funcEvaluator) NumVars() int { return e.n }

func (e *funcEvaluator) Eval(x field.Vec) (*big.Int, error) { return e.fn(x) }
