package ompe

import (
	"io"

	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/wire"
)

// Binary wire encodings for the OMPE message types (see internal/wire
// for the primitive formats and internal/transport for the frame layer).

// EncodeWire implements the wire codec.
func (p *Pair) EncodeWire(w *wire.Writer) {
	w.BigInt(p.V)
	w.Count(len(p.Z))
	for _, z := range p.Z {
		w.BigInt(z)
	}
}

// DecodeWire implements the wire codec.
func (p *Pair) DecodeWire(r *wire.Reader) {
	p.V = r.BigInt()
	n := r.Count()
	if r.Err() != nil {
		return
	}
	p.Z = make(field.Vec, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		p.Z = append(p.Z, r.BigInt())
		if r.Err() != nil {
			return
		}
	}
}

// EncodeWire implements the wire codec.
func (e *EvalRequest) EncodeWire(w *wire.Writer) {
	w.Count(len(e.Pairs))
	for i := range e.Pairs {
		e.Pairs[i].EncodeWire(w)
	}
	w.ByteSlice(e.Packed)
}

// DecodeWire implements the wire codec.
func (e *EvalRequest) DecodeWire(r *wire.Reader) {
	n := r.Count()
	if r.Err() != nil {
		return
	}
	if n > 0 {
		e.Pairs = make([]Pair, n)
		for i := range e.Pairs {
			e.Pairs[i].DecodeWire(r)
			if r.Err() != nil {
				return
			}
		}
	} else {
		e.Pairs = nil
	}
	e.Packed = r.ByteSlice()
	if len(e.Packed) == 0 {
		e.Packed = nil
	}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *EvalRequest) MarshalBinary() ([]byte, error) { return wire.Marshal(e) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *EvalRequest) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, e) }

// WriteTo implements io.WriterTo.
func (e *EvalRequest) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, e) }

// ReadFrom implements io.ReaderFrom.
func (e *EvalRequest) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, e) }

// encodeEval writes a required inner EvalRequest.
func encodeEval(w *wire.Writer, e *EvalRequest) {
	if e == nil {
		w.BigInt(nil) // typed ErrNilValue via the sticky writer
		return
	}
	e.EncodeWire(w)
}

func decodeEval(r *wire.Reader) *EvalRequest {
	e := new(EvalRequest)
	e.DecodeWire(r)
	if r.Err() != nil {
		return nil
	}
	return e
}

// EncodeWire implements the wire codec.
func (m *FastRequest) EncodeWire(w *wire.Writer) {
	encodeEval(w, m.Eval)
	if m.OT == nil {
		w.BigInt(nil)
		return
	}
	m.OT.EncodeWire(w)
}

// DecodeWire implements the wire codec.
func (m *FastRequest) DecodeWire(r *wire.Reader) {
	m.Eval = decodeEval(r)
	ot := new(ot.ExtKofNRequest)
	ot.DecodeWire(r)
	if r.Err() != nil {
		return
	}
	m.OT = ot
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FastRequest) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FastRequest) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *FastRequest) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *FastRequest) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *FastResponse) EncodeWire(w *wire.Writer) {
	if m.OT == nil {
		w.BigInt(nil)
		return
	}
	m.OT.EncodeWire(w)
}

// DecodeWire implements the wire codec.
func (m *FastResponse) DecodeWire(r *wire.Reader) {
	ot := new(ot.ExtKofNResponse)
	ot.DecodeWire(r)
	if r.Err() != nil {
		return
	}
	m.OT = ot
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FastResponse) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FastResponse) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *FastResponse) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *FastResponse) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *FastBatchRequest) EncodeWire(w *wire.Writer) {
	w.Count(len(m.Evals))
	for _, e := range m.Evals {
		encodeEval(w, e)
	}
	if m.OT == nil {
		w.BigInt(nil)
		return
	}
	m.OT.EncodeWire(w)
}

// DecodeWire implements the wire codec.
func (m *FastBatchRequest) DecodeWire(r *wire.Reader) {
	n := r.Count()
	if r.Err() != nil {
		return
	}
	m.Evals = make([]*EvalRequest, 0, wire.SliceCap(n))
	for i := 0; i < n; i++ {
		e := decodeEval(r)
		if r.Err() != nil {
			return
		}
		m.Evals = append(m.Evals, e)
	}
	ot := new(ot.ExtKofNBatchRequest)
	ot.DecodeWire(r)
	if r.Err() != nil {
		return
	}
	m.OT = ot
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FastBatchRequest) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FastBatchRequest) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *FastBatchRequest) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *FastBatchRequest) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }

// EncodeWire implements the wire codec.
func (m *FastBatchResponse) EncodeWire(w *wire.Writer) {
	if m.OT == nil {
		w.BigInt(nil)
		return
	}
	m.OT.EncodeWire(w)
}

// DecodeWire implements the wire codec.
func (m *FastBatchResponse) DecodeWire(r *wire.Reader) {
	ot := new(ot.ExtKofNBatchResponse)
	ot.DecodeWire(r)
	if r.Err() != nil {
		return
	}
	m.OT = ot
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *FastBatchResponse) MarshalBinary() ([]byte, error) { return wire.Marshal(m) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *FastBatchResponse) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, m) }

// WriteTo implements io.WriterTo.
func (m *FastBatchResponse) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, m) }

// ReadFrom implements io.ReaderFrom.
func (m *FastBatchResponse) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, m) }
