package ompe

import (
	"bytes"
	"encoding"
	"errors"
	"io"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/wire"
)

type wireMsg interface {
	wire.Msg
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	io.WriterTo
	io.ReaderFrom
}

func sampleEval() *EvalRequest {
	return &EvalRequest{
		Pairs: []Pair{
			{V: big.NewInt(77), Z: field.Vec{big.NewInt(1), big.NewInt(2)}},
			{V: new(big.Int).Lsh(big.NewInt(3), 200), Z: field.Vec{big.NewInt(0)}},
		},
		Packed: []byte{0xDE, 0xAD},
	}
}

func ompeWireSamples() map[string]wireMsg {
	return map[string]wireMsg{
		"EvalRequest": sampleEval(),
		"FastRequest": &FastRequest{
			Eval: sampleEval(),
			OT:   &ot.ExtKofNRequest{IKNP: &ot.IKNPReceiverMsg{U: []byte{1, 2}, M: 3}, K: 2, N: 4},
		},
		"FastResponse": &FastResponse{
			OT: &ot.ExtKofNResponse{IKNP: &ot.IKNPSenderMsg{Y0: []byte{5}, Y1: []byte{6}, MsgLen: 1}, Cts: []byte{9}, MsgLen: 1},
		},
		"FastBatchRequest": &FastBatchRequest{
			Evals: []*EvalRequest{sampleEval(), sampleEval()},
			OT:    &ot.ExtKofNBatchRequest{IKNP: &ot.IKNPReceiverMsg{U: []byte{7}, M: 1}, K: 1, N: 2, B: 2},
		},
		"FastBatchResponse": &FastBatchResponse{
			OT: &ot.ExtKofNBatchResponse{IKNP: &ot.IKNPSenderMsg{Y0: []byte{8}, Y1: []byte{9}, MsgLen: 1}, Cts: []byte{1, 1}, MsgLen: 1},
		},
	}
}

func reencode(t *testing.T, m wireMsg) []byte {
	t.Helper()
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return data
}

func TestOMPEWireRoundTrips(t *testing.T) {
	for name, in := range ompeWireSamples() {
		t.Run(name, func(t *testing.T) {
			data, err := in.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			var sb bytes.Buffer
			if _, err := in.WriteTo(&sb); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if !bytes.Equal(sb.Bytes(), data) {
				t.Fatalf("WriteTo and MarshalBinary disagree")
			}

			out := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if err := out.UnmarshalBinary(data); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			if !bytes.Equal(reencode(t, out), data) {
				t.Fatalf("slice round trip mismatch")
			}

			out2 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if _, err := out2.ReadFrom(bytes.NewReader(data)); err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if !bytes.Equal(reencode(t, out2), data) {
				t.Fatalf("stream round trip mismatch")
			}

			out3 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
			if err := out3.UnmarshalBinary(append(append([]byte{}, data...), 0xFF)); !errors.Is(err, wire.ErrTrailing) {
				t.Fatalf("trailing byte: got %v, want ErrTrailing", err)
			}

			for n := 0; n < len(data); n++ {
				out4 := reflect.New(reflect.TypeOf(in).Elem()).Interface().(wireMsg)
				if err := out4.UnmarshalBinary(data[:n]); err == nil {
					t.Fatalf("prefix %d/%d decoded cleanly", n, len(data))
				}
			}
		})
	}
}

func TestOMPEWireNilInner(t *testing.T) {
	cases := map[string]wireMsg{
		"FastRequest-nil-eval": &FastRequest{OT: &ot.ExtKofNRequest{IKNP: &ot.IKNPReceiverMsg{}, K: 1, N: 1}},
		"FastRequest-nil-ot":   &FastRequest{Eval: sampleEval()},
		"FastResponse-nil-ot":  &FastResponse{},
		"BatchRequest-nil-ot":  &FastBatchRequest{Evals: []*EvalRequest{sampleEval()}},
		"Pair-nil-v":           &EvalRequest{Pairs: []Pair{{Z: field.Vec{big.NewInt(1)}}}},
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := m.MarshalBinary(); !errors.Is(err, wire.ErrNilValue) {
				t.Fatalf("got %v, want ErrNilValue", err)
			}
		})
	}
}
