// Package registry versions trained SVM models for fleet serving: a
// trainer process publishes successive model versions into a Registry,
// and every serving session binds to exactly one published version for
// its whole lifetime (the transport server captures the current trainer
// once at handshake, see transport.TrainerSource). Publishing is an
// atomic hot-swap — new sessions pick the new version up immediately,
// in-flight sessions drain on the version they started with, and no
// session can ever observe a torn model (half old, half new).
package registry

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/svm"
)

// Entry is one published model version. Entries are immutable once
// published; the trainer inside is the long-lived protocol endpoint all
// sessions of that version share.
type Entry struct {
	// Version is the monotonically increasing publish sequence number,
	// starting at 1.
	Version uint64
	// Model is the published model (private trainer-side state).
	Model *svm.Model
	// Trainer is the serving endpoint built from Model.
	Trainer *classify.Trainer
}

// Registry holds the current model version. The zero value is not
// usable; call New. A Registry with no published model yet serves
// nothing (sessions are rejected until the first Publish succeeds).
type Registry struct {
	params classify.Params

	// publishMu serializes Publish calls: version numbers are assigned
	// under it, so versions observed through Current are monotonic.
	publishMu sync.Mutex
	version   atomic.Uint64
	current   atomic.Pointer[Entry]
}

// New builds a registry whose published models all serve under the given
// protocol parameters (group, field backend, mask degree, …).
func New(params classify.Params) *Registry {
	return &Registry{params: params}
}

// Publish validates the model, builds its serving trainer, and atomically
// installs it as the current version. It returns the new entry. The old
// version's sessions keep draining against the old trainer; only new
// sessions see the new one. A model that fails validation leaves the
// current version untouched.
func (r *Registry) Publish(model *svm.Model) (*Entry, error) {
	r.publishMu.Lock()
	defer r.publishMu.Unlock()
	trainer, err := classify.NewTrainer(model, r.params)
	if err != nil {
		return nil, fmt.Errorf("registry: publish: %w", err)
	}
	e := &Entry{
		Version: r.version.Add(1),
		Model:   model,
		Trainer: trainer,
	}
	r.current.Store(e)
	obs.Add(obs.CtrRegistrySwaps, 1)
	obs.Set(obs.GaugeRegistryVersion, int64(e.Version))
	return e, nil
}

// PublishFile loads a model from its JSON serialization and publishes it
// (the trainer cmd's SIGHUP hot-reload path).
func (r *Registry) PublishFile(path string) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("registry: publish %s: %w", path, err)
	}
	model, err := svm.ReadModel(f)
	closeErr := f.Close()
	if err != nil {
		return nil, fmt.Errorf("registry: publish %s: %w", path, err)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("registry: publish %s: %w", path, closeErr)
	}
	return r.Publish(model)
}

// Current returns the current entry, or nil before the first Publish.
func (r *Registry) Current() *Entry { return r.current.Load() }

// Version returns the current version number (0 before the first
// Publish).
func (r *Registry) Version() uint64 {
	if e := r.current.Load(); e != nil {
		return e.Version
	}
	return 0
}

// CurrentTrainer implements transport.TrainerSource: sessions handshaking
// now bind to the current version's trainer (nil before the first
// Publish, which the server rejects as "no model published").
func (r *Registry) CurrentTrainer() *classify.Trainer {
	if e := r.current.Load(); e != nil {
		return e.Trainer
	}
	return nil
}
