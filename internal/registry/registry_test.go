package registry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/ot"
	"repro/internal/svm"
)

func trainTestModel(t *testing.T, invert bool) *svm.Model {
	t.Helper()
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := dataset.Generate(spec, dataset.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	y := train.Y
	if invert {
		y = make([]int, len(train.Y))
		for i, v := range train.Y {
			y[i] = -v
		}
	}
	model, err := svm.Train(train.X, y, svm.Config{Kernel: svm.Linear(), C: spec.LinC})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func testParams() classify.Params {
	return classify.Params{Group: ot.Group512Test()}
}

func TestRegistryLifecycle(t *testing.T) {
	r := New(testParams())
	if r.Current() != nil || r.Version() != 0 || r.CurrentTrainer() != nil {
		t.Fatal("fresh registry should be empty")
	}

	m1 := trainTestModel(t, false)
	e1, err := r.Publish(m1)
	if err != nil {
		t.Fatalf("publish v1: %v", err)
	}
	if e1.Version != 1 || r.Version() != 1 {
		t.Fatalf("version = %d / %d, want 1", e1.Version, r.Version())
	}
	if r.CurrentTrainer() != e1.Trainer {
		t.Fatal("CurrentTrainer should be v1's trainer")
	}

	m2 := trainTestModel(t, true)
	e2, err := r.Publish(m2)
	if err != nil {
		t.Fatalf("publish v2: %v", err)
	}
	if e2.Version != 2 {
		t.Fatalf("version = %d, want 2", e2.Version)
	}
	// Hot-swap: the new version serves, the old entry is untouched (the
	// sessions that captured it keep a coherent v1 trainer).
	if r.CurrentTrainer() != e2.Trainer {
		t.Fatal("CurrentTrainer should be v2's trainer after swap")
	}
	if e1.Trainer == nil || e1.Model != m1 {
		t.Fatal("v1 entry mutated by v2 publish")
	}
}

func TestRegistryPublishInvalidKeepsCurrent(t *testing.T) {
	r := New(testParams())
	e1, err := r.Publish(trainTestModel(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(&svm.Model{}); err == nil {
		t.Fatal("publishing an invalid model should fail")
	}
	if r.Current() != e1 || r.Version() != 1 {
		t.Fatal("failed publish must leave the current version untouched")
	}
}

func TestRegistryPublishFile(t *testing.T) {
	model := trainTestModel(t, false)
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := svm.WriteModel(f, model); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := New(testParams())
	e, err := r.PublishFile(path)
	if err != nil {
		t.Fatalf("PublishFile: %v", err)
	}
	if e.Version != 1 || e.Model.NumSupportVectors() != model.NumSupportVectors() {
		t.Fatalf("loaded entry mismatches: version %d, %d SVs", e.Version, e.Model.NumSupportVectors())
	}

	if _, err := r.PublishFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	} else if !strings.Contains(err.Error(), "registry: publish") {
		t.Fatalf("err = %v", err)
	}
}

// TestRegistryConcurrentPublish hammers Publish from many goroutines
// (run under -race in CI): versions must come out dense and monotonic,
// and every reader must observe a fully-built entry.
func TestRegistryConcurrentPublish(t *testing.T) {
	r := New(testParams())
	m := trainTestModel(t, false)
	const publishers, perPublisher = 4, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e := r.Current(); e != nil && (e.Trainer == nil || e.Version == 0) {
					t.Error("observed torn entry")
					return
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for j := 0; j < perPublisher; j++ {
				if _, err := r.Publish(m); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}()
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	if got, want := r.Version(), uint64(publishers*perPublisher); got != want {
		t.Fatalf("final version = %d, want %d", got, want)
	}
}
