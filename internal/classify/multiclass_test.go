package classify_test

import (
	"crypto/rand"
	"math"
	mrand "math/rand/v2"
	"testing"

	"repro/internal/classify"
	"repro/internal/svm"
)

// threeBlobs builds a 3-class 2-D problem: one angular sector per class.
func threeBlobs(n int, seed uint64) ([][]float64, []int) {
	rng := mrand.New(mrand.NewPCG(seed, 99))
	var x [][]float64
	var y []int
	centers := [][2]float64{{0.7, 0.0}, {-0.4, 0.6}, {-0.4, -0.6}}
	for len(x) < n {
		c := rng.IntN(3)
		p := []float64{
			centers[c][0] + 0.25*rng.NormFloat64(),
			centers[c][1] + 0.25*rng.NormFloat64(),
		}
		if math.Abs(p[0]) > 1 || math.Abs(p[1]) > 1 {
			continue
		}
		x = append(x, p)
		y = append(y, c+10) // arbitrary non-contiguous labels
	}
	return x, y
}

func TestMulticlassTraining(t *testing.T) {
	x, y := threeBlobs(300, 1)
	model, err := svm.TrainMulticlass(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Classes) != 3 || len(model.Pairs) != 3 {
		t.Fatalf("classes %v, %d pairs", model.Classes, len(model.Pairs))
	}
	acc, err := model.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("training accuracy %.3f on well-separated blobs", acc)
	}
}

func TestMulticlassValidation(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	if _, err := svm.TrainMulticlass(x, []int{5, 5}, svm.Config{}); err == nil {
		t.Fatal("single class should fail")
	}
	if _, err := svm.TrainMulticlass(x, []int{5}, svm.Config{}); err == nil {
		t.Fatal("label count mismatch should fail")
	}
	bad := &svm.MulticlassModel{Classes: []int{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing pair models should fail")
	}
}

// TestPrivateMulticlassMatchesPlaintext: the ensemble of private binary
// protocols must vote exactly like the plaintext ensemble.
func TestPrivateMulticlassMatchesPlaintext(t *testing.T) {
	x, y := threeBlobs(240, 2)
	model, err := svm.TrainMulticlass(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := classify.NewMulticlassTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewMulticlassClient(trainer.Classes(),
		pairPos(model), pairNeg(model), trainer.Specs())
	if err != nil {
		t.Fatal(err)
	}
	testX, _ := threeBlobs(12, 3)
	for i, sample := range testX {
		want, err := model.Classify(sample)
		if err != nil {
			t.Fatal(err)
		}
		got, err := classify.ClassifyMulticlassWith(trainer, client, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			// Boundary-adjacent pairwise decisions can flip within
			// fixed-point precision; verify the plaintext decision was
			// genuinely borderline before failing.
			if !nearPairBoundary(t, model, sample) {
				t.Fatalf("sample %d: private class %d, plaintext %d", i, got, want)
			}
		}
	}
}

func TestClassifyMulticlassConvenience(t *testing.T) {
	x, y := threeBlobs(150, 4)
	model, err := svm.TrainMulticlass(x, y, svm.Config{Kernel: svm.Linear(), C: 10})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := classify.NewMulticlassTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	label, err := classify.ClassifyMulticlass(trainer, x[0], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range model.Classes {
		if label == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("label %d not among classes %v", label, model.Classes)
	}
}

func pairPos(m *svm.MulticlassModel) []int {
	out := make([]int, len(m.Pairs))
	for i, p := range m.Pairs {
		out[i] = p.ClassPos
	}
	return out
}

func pairNeg(m *svm.MulticlassModel) []int {
	out := make([]int, len(m.Pairs))
	for i, p := range m.Pairs {
		out[i] = p.ClassNeg
	}
	return out
}

func nearPairBoundary(t *testing.T, m *svm.MulticlassModel, sample []float64) bool {
	t.Helper()
	for _, p := range m.Pairs {
		d, err := p.Model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			return true
		}
	}
	return false
}
