// Package classify implements the paper's primary contribution, part 1:
// privacy-preserving SVM data classification (§IV). A trainer (Alice)
// holds a trained svm.Model; a client (Bob) holds an unlabeled sample. The
// client learns only the predicted class sign(d(t̃)); the trainer learns
// nothing about the sample, and the client learns nothing about the model
// beyond a freshly amplified decision value whose magnitude is meaningless
// (§VI-A, Fig. 5/6).
//
// Linear models run the §IV-A protocol (degree-q masking). Nonlinear
// models run §IV-B in one of two forms:
//
//   - ModeDirect follows the paper: the trainer evaluates the kernel-form
//     decision function on cover vectors over the raw n inputs, and the
//     composed masking degree is p·q. RBF and sigmoid kernels are first
//     truncated to Taylor polynomials (internal/kernel).
//   - ModeExpanded pre-expands the polynomial-kernel decision function
//     into its n' = C(n+p-1, n-1) monomial variates τ (§IV-B's
//     observation) and runs the *linear* protocol over τ-space. This
//     trades protocol degree for arity and is only tractable for small n.
//
// All protocol arithmetic is exact fixed-point over a prime field; see
// internal/fixedpoint and DESIGN.md §3.
package classify

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/svm"
)

// Mode selects the nonlinear evaluation form.
type Mode int

const (
	// ModeDirect evaluates the kernel-form decision function directly
	// (the paper's construction; masking degree p·q).
	ModeDirect Mode = iota + 1
	// ModeExpanded linearizes a polynomial-kernel model over its monomial
	// variates and runs the linear protocol (masking degree q).
	ModeExpanded
)

// Params fixes the public protocol parameters both parties agree on.
type Params struct {
	// Mode selects the nonlinear form (default ModeDirect). Linear models
	// ignore it.
	Mode Mode
	// MaskDegree is the security parameter q (default 2).
	MaskDegree int
	// CoverFactor is the decoy multiplier k >= 2 (default 2; M = m·k).
	CoverFactor int
	// AmplifierBits bounds the fresh amplifier r_a (default 64).
	AmplifierBits int
	// Group is the oblivious-transfer group (default ot.Group2048).
	Group ot.Group
	// FieldBackend selects the field-arithmetic engine (zero value: the
	// math/big path). field.BackendLimb pins the protocol field to
	// 2^255−19 and runs every per-query hot loop on fixed-width limb
	// elements; sessions from clients that do not request it still run on
	// math/big over the same field, so one trainer serves both.
	FieldBackend field.Backend
	// FracBits is the fixed-point precision (0 = auto from the protocol
	// degree so the field stays within the built-in primes).
	FracBits uint
	// TaylorTerms truncates RBF/sigmoid kernels (default 3).
	TaylorTerms int
	// InsecureUnitAmplifier pins r_a = 1, disabling result randomization.
	// FOR ATTACK DEMONSTRATIONS ONLY (Fig. 6): a client can then recover
	// the decision function from n+1 classified samples.
	InsecureUnitAmplifier bool
	// Parallelism bounds the worker pool for the trainer's masked
	// evaluations and batch OT (<= 0 selects GOMAXPROCS, 1 forces the
	// serial path). It is a local performance knob, not part of the
	// protocol contract: it does not appear in the Spec, and results are
	// bit-identical at any degree given the same randomness stream.
	Parallelism int
}

func (p Params) withDefaults() Params {
	if p.Mode == 0 {
		p.Mode = ModeDirect
	}
	if p.MaskDegree == 0 {
		p.MaskDegree = 2
	}
	if p.CoverFactor == 0 {
		p.CoverFactor = 2
	}
	if p.AmplifierBits == 0 {
		p.AmplifierBits = ompe.DefaultAmplifierBits
	}
	if p.Group == nil {
		p.Group = ot.Group2048()
	}
	if p.TaylorTerms == 0 {
		p.TaylorTerms = 3
	}
	return p
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Mode != ModeDirect && p.Mode != ModeExpanded:
		return fmt.Errorf("classify: unknown mode %d", int(p.Mode))
	case p.MaskDegree < 1:
		return fmt.Errorf("classify: mask degree %d", p.MaskDegree)
	case p.CoverFactor < 2:
		return fmt.Errorf("classify: cover factor %d", p.CoverFactor)
	case p.TaylorTerms < 1:
		return fmt.Errorf("classify: taylor terms %d", p.TaylorTerms)
	}
	if err := p.FieldBackend.Validate(); err != nil {
		return err
	}
	return nil
}

// autoFracBits picks a fixed-point precision that keeps the total scale
// within the built-in prime fields for the given scale exponent.
func autoFracBits(scaleExp uint) uint {
	switch {
	case scaleExp <= 4:
		return 40
	case scaleExp <= 10:
		return 24
	default:
		return 16
	}
}

// resolveCodec sizes the field from the protocol's scale exponent and a
// bound on the decision value's magnitude, then builds the codec.
func resolveCodec(p Params, scaleExp uint, valueBound float64) (*fixedpoint.Codec, error) {
	fracBits := p.FracBits
	if fracBits == 0 {
		fracBits = autoFracBits(scaleExp)
	}
	if valueBound < 1 {
		valueBound = 1
	}
	if math.IsInf(valueBound, 0) || math.IsNaN(valueBound) {
		return nil, errors.New("classify: model value bound is not finite")
	}
	valueBits := int(math.Ceil(math.Log2(valueBound+1))) + 1
	need := int(fracBits)*int(scaleExp) + valueBits + p.AmplifierBits + 24
	var f *field.Field
	var err error
	if p.FieldBackend.OrDefault() == field.BackendLimb {
		// The limb backend computes in 2^255−19 only, so pin that field
		// even when a smaller prime would do; protocols needing more
		// headroom cannot run on it.
		if need > 255 {
			return nil, fmt.Errorf("classify: limb backend caps the field at 255 bits, protocol needs %d", need)
		}
		f, err = field.NewFromHex(field.P25519Hex)
	} else {
		f, err = field.ByBits(need)
	}
	if err != nil {
		return nil, fmt.Errorf("classify: protocol needs %d-bit field: %w", need, err)
	}
	codec, err := fixedpoint.NewCodec(f, fracBits)
	if err != nil {
		return nil, err
	}
	return codec, nil
}

// decisionBound upper-bounds |d(t)| over t ∈ [−1,1]ⁿ for field sizing.
func decisionBound(m *svm.Model, taylorTerms int) (float64, error) {
	sumAbsAlpha := 0.0
	maxAbsRow := 0.0
	for i, sv := range m.SupportVectors {
		sumAbsAlpha += math.Abs(m.AlphaY[i])
		row := 0.0
		for _, v := range sv {
			row += math.Abs(v)
		}
		if row > maxAbsRow {
			maxAbsRow = row
		}
	}
	switch m.Kernel.Kind {
	case svm.KernelLinear:
		w, err := m.LinearWeights()
		if err != nil {
			return 0, err
		}
		s := math.Abs(m.Bias)
		for _, wi := range w {
			s += math.Abs(wi)
		}
		return s, nil
	case svm.KernelPolynomial:
		base := math.Abs(m.Kernel.A0)*maxAbsRow + math.Abs(m.Kernel.B0)
		return sumAbsAlpha*math.Pow(base, float64(m.Kernel.Degree)) + math.Abs(m.Bias), nil
	case svm.KernelRBF:
		// dist <= |x|² + |t|² + 2|x·t| <= 4n on the unit cube.
		maxDist := 4 * float64(m.Dim)
		acc := 0.0
		term := 1.0
		for i := 0; i <= taylorTerms; i++ {
			acc += term
			term *= m.Kernel.Gamma * maxDist / float64(i+1)
		}
		return sumAbsAlpha*acc + math.Abs(m.Bias), nil
	case svm.KernelSigmoid:
		maxU := math.Abs(m.Kernel.A0)*maxAbsRow + math.Abs(m.Kernel.C0)
		acc := 0.0
		pow := maxU
		for i := 1; i <= taylorTerms; i++ {
			acc += pow // |tanh series coeffs| <= 1
			pow *= maxU * maxU
		}
		return sumAbsAlpha*acc + math.Abs(m.Bias), nil
	default:
		return 0, fmt.Errorf("classify: unsupported kernel %v", m.Kernel.Kind)
	}
}
