package classify_test

import (
	"crypto/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/svm"
)

func TestParamsValidate(t *testing.T) {
	good := classify.Params{}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []classify.Params{
		{Mode: classify.Mode(9)},
		{MaskDegree: -1},
		{CoverFactor: 1},
		{TaylorTerms: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	model, _ := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	spec := trainer.Spec()
	// A client reconstructing the codec from the public spec must agree
	// with the trainer's field and precision.
	codec, err := spec.Codec()
	if err != nil {
		t.Fatal(err)
	}
	if codec.Field().Bits() != spec.FieldBits || codec.FracBits() != spec.FracBits {
		t.Fatalf("codec round-trip mismatch: %d/%d vs %d/%d",
			codec.Field().Bits(), codec.FracBits(), spec.FieldBits, spec.FracBits)
	}
	params, err := spec.OMPEParams()
	if err != nil {
		t.Fatal(err)
	}
	if params.PolyDegree != 1 || params.MaskDegree != spec.MaskDegree {
		t.Fatalf("OMPE params: %+v", params)
	}
	if _, err := classify.NewClient(spec); err != nil {
		t.Fatal(err)
	}
	// Corrupted spec: no built-in field with that exact width.
	spec.FieldBits = 300
	if _, err := classify.NewClient(spec); err == nil {
		t.Fatal("bad field bits should fail")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	if _, err := classify.NewTrainer(nil, fastParams()); err == nil {
		t.Fatal("nil model should fail")
	}
	model := &svm.Model{Kernel: svm.Linear(), Dim: 2}
	if _, err := classify.NewTrainer(model, fastParams()); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestExpandedModeArityGuard(t *testing.T) {
	// madelon-sized expansion (500 dims, p=3) must be rejected, not
	// attempted: C(502,499) ≈ 2·10⁷ variates.
	spec := classify.Spec{
		Kernel:        svm.PaperPolynomial(500),
		Dim:           500,
		Mode:          classify.ModeExpanded,
		MaskDegree:    2,
		CoverFactor:   2,
		AmplifierBits: 64,
		TaylorTerms:   3,
		FieldBits:     255,
		FracBits:      40,
		GroupName:     "512",
	}
	if _, err := classify.NewClient(spec); err == nil {
		t.Fatal("oversized expansion should fail")
	}
}

func TestClassifyBatch(t *testing.T) {
	model, test := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	labels, err := classify.ClassifyBatch(trainer, test.X[:5], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 5 {
		t.Fatalf("%d labels", len(labels))
	}
	for i, l := range labels {
		if l != 1 && l != -1 {
			t.Fatalf("label %d = %d", i, l)
		}
	}
}

func TestClientRejectsWrongDim(t *testing.T) {
	model, _ := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.NewSession([]float64{1, 2}, rand.Reader); err == nil {
		t.Fatal("wrong sample dim should fail")
	}
}

func TestFieldSizingGrowsWithDegree(t *testing.T) {
	linModel, _ := trainSmall(t, svm.Linear(), 1)
	polyModel, _ := trainSmall(t, svm.PaperPolynomial(8), 100)
	linTrainer, err := classify.NewTrainer(linModel, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	polyTrainer, err := classify.NewTrainer(polyModel, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if polyTrainer.Spec().FieldBits <= linTrainer.Spec().FieldBits {
		t.Fatalf("degree-7 scale should need a bigger field: %d vs %d",
			polyTrainer.Spec().FieldBits, linTrainer.Spec().FieldBits)
	}
}

func TestGroupSelectionSurfacesInSpec(t *testing.T) {
	model, _ := trainSmall(t, svm.Linear(), 1)
	params := fastParams()
	params.Group = ot.Group1024()
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Spec().GroupName != "modp1024" {
		t.Fatalf("group name %q", trainer.Spec().GroupName)
	}
}
