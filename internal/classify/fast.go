package classify

import (
	"fmt"
	"io"

	"repro/internal/field"
	"repro/internal/ompe"
	"repro/internal/ot"
)

// Fast sessions: one IKNP base phase per (trainer, client) session makes
// every subsequent classification query free of public-key operations —
// two messages of field arithmetic and symmetric crypto. This is the
// batch-serving mode; privacy guarantees are identical to the one-shot
// path (fresh masks, amplifiers, covers, and hidden genuine indices per
// query).

// FastTrainer is a trainer-side fast session.
type FastTrainer struct {
	session *ompe.SessionSender
}

// FastClient is a client-side fast session.
type FastClient struct {
	client  *Client
	session *ompe.SessionReceiver
}

// FastQuery is one in-flight query on a fast client.
type FastQuery struct {
	client *Client
	q      *ompe.SessionQuery
}

// NewFastClient opens a client session from a trainer's public spec,
// returning the base-phase setup message.
func NewFastClient(spec Spec, rng io.Reader) (*FastClient, *ot.IKNPBaseSetup, error) {
	client, err := NewClient(spec)
	if err != nil {
		return nil, nil, err
	}
	params, err := spec.OMPEParams()
	if err != nil {
		return nil, nil, err
	}
	session, setup, err := ompe.NewSessionReceiverBase(params, rng)
	if err != nil {
		return nil, nil, err
	}
	return &FastClient{client: client, session: session}, setup, nil
}

// NewFastSession opens the trainer side of a fast session from a client's
// base setup, returning the base choice message.
func (t *Trainer) NewFastSession(setup *ot.IKNPBaseSetup, rng io.Reader) (*FastTrainer, *ot.IKNPBaseChoice, error) {
	return t.NewFastSessionFor(t.spec, setup, rng)
}

// NewFastSessionFor opens the trainer side of a fast session bound to a
// negotiated session spec (normally the result of SessionSpec).
func (t *Trainer) NewFastSessionFor(spec Spec, setup *ot.IKNPBaseSetup, rng io.Reader) (*FastTrainer, *ot.IKNPBaseChoice, error) {
	params, err := t.sessionParams(spec)
	if err != nil {
		return nil, nil, err
	}
	session, choice, err := ompe.NewSessionSenderBase(params, t.eval, setup, rng)
	if err != nil {
		return nil, nil, err
	}
	return &FastTrainer{session: session}, choice, nil
}

// ResumeFastClient rebuilds a client session from a snapshotted OT state
// instead of running the base phase (session resumption: the transport
// pairs this with the server's sealed ticket).
func ResumeFastClient(spec Spec, state *ot.IKNPReceiverState) (*FastClient, error) {
	client, err := NewClient(spec)
	if err != nil {
		return nil, err
	}
	params, err := spec.OMPEParams()
	if err != nil {
		return nil, err
	}
	session, err := ompe.ResumeSessionReceiver(params, state)
	if err != nil {
		return nil, err
	}
	return &FastClient{client: client, session: session}, nil
}

// ResumeFastSessionFor rebuilds the trainer side of a fast session bound
// to a negotiated session spec from a snapshotted OT state (the state a
// sealed resumption ticket carried). The trainer is the CURRENT one: only
// crypto state resumes, never a stale model.
func (t *Trainer) ResumeFastSessionFor(spec Spec, state *ot.IKNPSenderState) (*FastTrainer, error) {
	params, err := t.sessionParams(spec)
	if err != nil {
		return nil, err
	}
	session, err := ompe.ResumeSessionSender(params, t.eval, state)
	if err != nil {
		return nil, err
	}
	return &FastTrainer{session: session}, nil
}

// Snapshot captures the trainer session's OT position for resumption.
func (ft *FastTrainer) Snapshot() (*ot.IKNPSenderState, error) { return ft.session.Snapshot() }

// Snapshot captures the client session's OT position for resumption.
func (fc *FastClient) Snapshot() (*ot.IKNPReceiverState, error) { return fc.session.Snapshot() }

// Spec reports the session spec the client was built from (including the
// negotiated wire codec and pad function).
func (fc *FastClient) Spec() Spec { return fc.client.Spec() }

// FinishBase completes the client's base phase.
func (fc *FastClient) FinishBase(choice *ot.IKNPBaseChoice, rng io.Reader) (*ot.IKNPBaseTransfer, error) {
	return fc.session.FinishBaseReceiver(choice, rng)
}

// FinishBase completes the trainer's base phase.
func (ft *FastTrainer) FinishBase(tr *ot.IKNPBaseTransfer) error {
	return ft.session.FinishBaseSender(tr)
}

// NewQuery opens one classification query, returning the single request
// message. Queries are sequential per session.
func (fc *FastClient) NewQuery(sample []float64, rng io.Reader) (*FastQuery, *ompe.FastRequest, error) {
	input, err := fc.client.EncodeSample(sample)
	if err != nil {
		return nil, nil, err
	}
	q, req, err := fc.session.NewQuery(input, rng)
	if err != nil {
		return nil, nil, err
	}
	return &FastQuery{client: fc.client, q: q}, req, nil
}

// HandleQuery answers one query on the trainer side.
func (ft *FastTrainer) HandleQuery(req *ompe.FastRequest, rng io.Reader) (*ompe.FastResponse, error) {
	return ft.session.HandleQuery(req, rng)
}

// Finish completes a query, returning the ±1 label.
func (fq *FastQuery) Finish(resp *ompe.FastResponse) (int, error) {
	value, err := fq.q.Finish(resp)
	if err != nil {
		return 0, err
	}
	return fq.client.Interpret(value)
}

// FastBatch is one in-flight batched query on a fast client: B samples,
// one message pair, one OT-extension round.
type FastBatch struct {
	client *Client
	b      *ompe.SessionBatch
}

// NewBatch opens one batched classification query covering all samples,
// returning the single request message. Batches (like queries) may overlap
// in flight as long as responses return in request order.
func (fc *FastClient) NewBatch(samples [][]float64, rng io.Reader) (*FastBatch, *ompe.FastBatchRequest, error) {
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("classify: empty batch")
	}
	inputs := make([]field.Vec, len(samples))
	for i, sample := range samples {
		input, err := fc.client.EncodeSample(sample)
		if err != nil {
			return nil, nil, fmt.Errorf("classify: batch sample %d: %w", i, err)
		}
		inputs[i] = input
	}
	b, req, err := fc.session.NewBatch(inputs, rng)
	if err != nil {
		return nil, nil, err
	}
	return &FastBatch{client: fc.client, b: b}, req, nil
}

// HandleBatch answers one batched query on the trainer side.
func (ft *FastTrainer) HandleBatch(req *ompe.FastBatchRequest, rng io.Reader) (*ompe.FastBatchResponse, error) {
	return ft.session.HandleBatch(req, rng)
}

// Finish completes a batch, returning the ±1 labels in sample order.
func (fb *FastBatch) Finish(resp *ompe.FastBatchResponse) ([]int, error) {
	values, err := fb.b.Finish(resp)
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(values))
	for i, v := range values {
		label, err := fb.client.Interpret(v)
		if err != nil {
			return nil, fmt.Errorf("classify: batch sample %d: %w", i, err)
		}
		labels[i] = label
	}
	return labels, nil
}

// ClassifyFastBatch runs one complete batched classification in memory.
func ClassifyFastBatch(ft *FastTrainer, fc *FastClient, samples [][]float64, rng io.Reader) ([]int, error) {
	batch, req, err := fc.NewBatch(samples, rng)
	if err != nil {
		return nil, err
	}
	resp, err := ft.HandleBatch(req, rng)
	if err != nil {
		return nil, fmt.Errorf("classify: fast batch: %w", err)
	}
	return batch.Finish(resp)
}

// NewFastPair runs the base phase in memory and returns a paired session
// (single-process use and benchmarks).
func NewFastPair(t *Trainer, rng io.Reader) (*FastTrainer, *FastClient, error) {
	fc, setup, err := NewFastClient(t.Spec(), rng)
	if err != nil {
		return nil, nil, err
	}
	ft, choice, err := t.NewFastSession(setup, rng)
	if err != nil {
		return nil, nil, err
	}
	tr, err := fc.FinishBase(choice, rng)
	if err != nil {
		return nil, nil, err
	}
	if err := ft.FinishBase(tr); err != nil {
		return nil, nil, err
	}
	return ft, fc, nil
}

// ClassifyFast runs one complete fast-path classification in memory.
func ClassifyFast(ft *FastTrainer, fc *FastClient, sample []float64, rng io.Reader) (int, error) {
	query, req, err := fc.NewQuery(sample, rng)
	if err != nil {
		return 0, err
	}
	resp, err := ft.HandleQuery(req, rng)
	if err != nil {
		return 0, fmt.Errorf("classify: fast query: %w", err)
	}
	return query.Finish(resp)
}
