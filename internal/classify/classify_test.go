package classify_test

import (
	"crypto/rand"
	"fmt"
	"math"
	mrand "math/rand/v2"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/ot"
	"repro/internal/svm"
)

// fastParams keeps protocol tests quick: toy OT group, small masking.
func fastParams() classify.Params {
	return classify.Params{
		MaskDegree:  2,
		CoverFactor: 2,
		Group:       ot.Group512Test(),
	}
}

func trainSmall(t *testing.T, k svm.Kernel, c float64) (*svm.Model, *dataset.Dataset) {
	t.Helper()
	spec, err := dataset.SpecByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainSize = 60
	spec.TestSize = 40
	train, test, err := dataset.Generate(spec, dataset.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	model, err := svm.Train(train.X, train.Y, svm.Config{Kernel: k, C: c})
	if err != nil {
		t.Fatal(err)
	}
	return model, test
}

// requireAgreement checks that the private protocol reproduces the
// plaintext model's label on every test sample whose decision value is
// comfortably away from zero (fixed-point rounding can legitimately flip
// samples within ~2^-fracBits of the boundary).
func requireAgreement(t *testing.T, model *svm.Model, test *dataset.Dataset, params classify.Params) {
	t.Helper()
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, sample := range test.X {
		d, err := model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyWith(trainer, client, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: private label %d, plaintext %d (d=%g)", i, got, want, d)
		}
		checked++
		if checked >= 12 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}

func TestPrivateLinearMatchesPlaintext(t *testing.T) {
	model, test := trainSmall(t, svm.Linear(), 1)
	requireAgreement(t, model, test, fastParams())
}

func TestPrivatePolyDirectMatchesPlaintext(t *testing.T) {
	model, test := trainSmall(t, svm.PaperPolynomial(8), 100)
	requireAgreement(t, model, test, fastParams())
}

func TestPrivatePolyExpandedMatchesPlaintext(t *testing.T) {
	model, test := trainSmall(t, svm.PaperPolynomial(8), 100)
	params := fastParams()
	params.Mode = classify.ModeExpanded
	requireAgreement(t, model, test, params)
}

// TestPrivateRBFMatchesTruncatedModel compares the protocol against the
// Taylor-truncated RBF decision function (the protocol's actual target;
// the truncation error itself is a property of internal/kernel).
func TestPrivateRBFMatchesTruncatedModel(t *testing.T) {
	model, test := trainSmall(t, svm.RBF(0.125), 10)
	params := fastParams()
	params.TaylorTerms = 3
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, sample := range test.X {
		d := truncatedRBFDecision(t, model, sample, params.TaylorTerms)
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyWith(trainer, client, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: private label %d, truncated-model label %d (d=%g)", i, got, want, d)
		}
		checked++
		if checked >= 6 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}

func TestPrivateSigmoidMatchesTruncatedModel(t *testing.T) {
	model, test := trainSmall(t, svm.Sigmoid(0.125, 0), 10)
	params := fastParams()
	params.TaylorTerms = 3
	trainer, err := classify.NewTrainer(model, params)
	if err != nil {
		t.Fatal(err)
	}
	client, err := classify.NewClient(trainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, sample := range test.X {
		d := truncatedSigmoidDecision(t, model, sample, params.TaylorTerms)
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyWith(trainer, client, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: private label %d, truncated-model label %d (d=%g)", i, got, want, d)
		}
		checked++
		if checked >= 6 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}

func truncatedRBFDecision(t *testing.T, m *svm.Model, sample []float64, terms int) float64 {
	t.Helper()
	acc := m.Bias
	for s, sv := range m.SupportVectors {
		d2 := 0.0
		for j := range sv {
			diff := sv[j] - sample[j]
			d2 += diff * diff
		}
		k, err := kernel.RBFApprox(m.Kernel.Gamma, d2, terms)
		if err != nil {
			t.Fatal(err)
		}
		acc += m.AlphaY[s] * k
	}
	return acc
}

func truncatedSigmoidDecision(t *testing.T, m *svm.Model, sample []float64, terms int) float64 {
	t.Helper()
	acc := m.Bias
	for s, sv := range m.SupportVectors {
		u := m.Kernel.C0
		for j := range sv {
			u += m.Kernel.A0 * sv[j] * sample[j]
		}
		k, err := kernel.TanhApprox(u, terms)
		if err != nil {
			t.Fatal(err)
		}
		acc += m.AlphaY[s] * k
	}
	return acc
}

// TestConcurrentClassification: one Trainer must serve concurrent sessions
// safely (each session is an independent one-shot sender; the trainer's
// evaluator is read-only).
func TestConcurrentClassification(t *testing.T) {
	model, test := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			client, err := classify.NewClient(trainer.Spec())
			if err != nil {
				errCh <- err
				return
			}
			sample := test.X[idx%len(test.X)]
			want, err := model.Classify(sample)
			if err != nil {
				errCh <- err
				return
			}
			d, err := model.Decision(sample)
			if err != nil {
				errCh <- err
				return
			}
			if math.Abs(d) < 1e-6 {
				return
			}
			got, err := classify.ClassifyWith(trainer, client, sample, rand.Reader)
			if err != nil {
				errCh <- err
				return
			}
			if got != want {
				errCh <- fmt.Errorf("worker %d: got %d want %d", idx, got, want)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestRandomLinearModelsProperty quick-checks the protocol across random
// model dimensions and coefficients: private sign must equal plaintext
// sign whenever the decision value is away from the rounding boundary.
func TestRandomLinearModelsProperty(t *testing.T) {
	rng := mrand.New(mrand.NewPCG(17, 23))
	for trial := 0; trial < 8; trial++ {
		dim := 2 + rng.IntN(5)
		sv := make([][]float64, 3)
		alphaY := make([]float64, 3)
		for i := range sv {
			sv[i] = make([]float64, dim)
			for j := range sv[i] {
				sv[i][j] = rng.Float64()*2 - 1
			}
			alphaY[i] = rng.Float64()*4 - 2
		}
		model := &svm.Model{
			Kernel:         svm.Linear(),
			SupportVectors: sv,
			AlphaY:         alphaY,
			Bias:           rng.Float64() - 0.5,
			Dim:            dim,
		}
		trainer, err := classify.NewTrainer(model, fastParams())
		if err != nil {
			t.Fatal(err)
		}
		client, err := classify.NewClient(trainer.Spec())
		if err != nil {
			t.Fatal(err)
		}
		sample := make([]float64, dim)
		for j := range sample {
			sample[j] = rng.Float64()*2 - 1
		}
		d, err := model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyWith(trainer, client, sample, rand.Reader)
		if err != nil {
			t.Fatalf("trial %d (dim %d): %v", trial, dim, err)
		}
		if got != want {
			t.Fatalf("trial %d (dim %d): private %d, plaintext %d (d=%g)", trial, dim, got, want, d)
		}
	}
}

// TestFastSessionMatchesPlaintext: the IKNP fast path must label exactly
// like the plaintext model across sequential queries on one session.
func TestFastSessionMatchesPlaintext(t *testing.T) {
	model, test := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	ft, fc, err := classify.NewFastPair(trainer, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, sample := range test.X {
		d, err := model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyFast(ft, fc, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: fast label %d, plaintext %d", i, got, want)
		}
		checked++
		if checked >= 15 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}

// TestFastSessionNonlinear: the fast path also serves kernel models.
func TestFastSessionNonlinear(t *testing.T) {
	model, test := trainSmall(t, svm.PaperPolynomial(8), 100)
	trainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	ft, fc, err := classify.NewFastPair(trainer, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, sample := range test.X {
		d, err := model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyFast(ft, fc, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: fast label %d, plaintext %d", i, got, want)
		}
		checked++
		if checked >= 6 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}
