package classify

import (
	"bytes"
	"testing"

	"repro/internal/svm"
)

func TestSpecWireRoundTrip(t *testing.T) {
	in := &Spec{
		Kernel:        svm.Polynomial(0.25, 1, 3),
		Dim:           8,
		Mode:          ModeExpanded,
		MaskDegree:    6,
		CoverFactor:   2,
		AmplifierBits: 40,
		TaylorTerms:   0,
		FieldBits:     512,
		FracBits:      16,
		GroupName:     "x25519",
		FieldBackend:  "limb",
		WireCodec:     "binary",
		PadFunc:       "aes",
		ResumeGranted: true,
	}
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var sb bytes.Buffer
	if _, err := in.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !bytes.Equal(sb.Bytes(), data) {
		t.Fatalf("WriteTo and MarshalBinary disagree")
	}
	var out Spec
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if out != *in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", *in, out)
	}
	var out2 Spec
	if _, err := out2.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if out2 != *in {
		t.Fatalf("stream round trip mismatch")
	}
	// The pad and resume fields are optional tails, append-only: cutting
	// the encoding exactly before the pad tail yields a legacy
	// (pre-negotiation) Spec encoding, and cutting before the resume tail
	// yields a pad-era encoding; both must decode cleanly to the
	// corresponding truncated spec. Every other prefix is a genuine
	// truncation and must fail.
	noPad := *in
	noPad.PadFunc = ""
	noPad.ResumeGranted = false
	base, err := noPad.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary (no pad): %v", err)
	}
	if !bytes.Equal(base, data[:len(base)]) {
		t.Fatalf("pad tail is not an append-only extension")
	}
	noResume := *in
	noResume.ResumeGranted = false
	padEra, err := noResume.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary (no resume): %v", err)
	}
	if !bytes.Equal(padEra, data[:len(padEra)]) {
		t.Fatalf("resume tail is not an append-only extension")
	}
	for n := 0; n < len(data); n++ {
		var tr Spec
		err := tr.UnmarshalBinary(data[:n])
		switch n {
		case len(base):
			if err != nil {
				t.Fatalf("legacy-layout prefix failed to decode: %v", err)
			}
			if tr != noPad {
				t.Fatalf("legacy-layout prefix decoded to %+v, want %+v", tr, noPad)
			}
		case len(padEra):
			if err != nil {
				t.Fatalf("pad-era prefix failed to decode: %v", err)
			}
			if tr != noResume {
				t.Fatalf("pad-era prefix decoded to %+v, want %+v", tr, noResume)
			}
		default:
			if err == nil {
				t.Fatalf("prefix %d/%d decoded cleanly", n, len(data))
			}
		}
	}
}
