package classify

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/svm"
)

// kernelPolynomial re-exports the polynomial kernel kind for local use.
const kernelPolynomial = svm.KernelPolynomial

// Classify runs one complete privacy-preserving classification in memory:
// the client side is built from the trainer's public spec, the four
// protocol messages are exchanged directly, and the predicted ±1 label is
// returned. Distributed deployments run the same state machines over a
// transport (internal/transport) instead.
func Classify(t *Trainer, sample []float64, rng io.Reader) (int, error) {
	client, err := NewClient(t.Spec())
	if err != nil {
		return 0, err
	}
	return ClassifyWith(t, client, sample, rng)
}

// ClassifyWith reuses an existing client (amortizing spec/codec setup over
// many samples, as a real client would).
func ClassifyWith(t *Trainer, client *Client, sample []float64, rng io.Reader) (int, error) {
	span := obs.Start(obs.PhaseClassifyRoundTrip)
	sender, err := t.NewSession()
	if err != nil {
		return 0, err
	}
	receiver, req, err := client.NewSession(sample, rng)
	if err != nil {
		return 0, err
	}
	setup, err := sender.HandleRequest(req, rng)
	if err != nil {
		return 0, err
	}
	choice, err := receiver.HandleSetup(setup, rng)
	if err != nil {
		return 0, err
	}
	tr, err := sender.HandleChoice(choice, rng)
	if err != nil {
		return 0, err
	}
	result, err := receiver.Finish(tr)
	if err != nil {
		return 0, err
	}
	label, err := client.Interpret(result)
	if err != nil {
		return 0, err
	}
	// Completed round trips only: failures abort before the span ends.
	span.End()
	obs.Add(obs.CtrClassifyQueries, 1)
	return label, nil
}

// ClassifyBatch classifies a set of samples, returning the predicted
// labels. Each sample runs its own session (fresh masks and amplifier).
func ClassifyBatch(t *Trainer, samples [][]float64, rng io.Reader) ([]int, error) {
	client, err := NewClient(t.Spec())
	if err != nil {
		return nil, err
	}
	out := make([]int, len(samples))
	for i, s := range samples {
		label, err := ClassifyWith(t, client, s, rng)
		if err != nil {
			return nil, fmt.Errorf("classify: sample %d: %w", i, err)
		}
		out[i] = label
	}
	return out, nil
}
