package classify

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/mvpoly"
	"repro/internal/ompe"
)

// fieldType aliases the protocol field for internal naming hygiene.
type fieldType = field.Field

func byBits(bits int) (*fieldType, error) { return field.ByBits(bits) }

// Client is the sample owner's protocol endpoint, built from a trainer's
// published Spec.
type Client struct {
	spec     Spec
	codec    *fixedpoint.Codec
	numVars  int
	scaleExp uint
	// tauExps enumerates the monomial variates for ModeExpanded; it is
	// public structure (it depends only on n and p), not model data.
	tauExps [][]uint
	// parallelism is the local worker-pool bound for request construction
	// (see Params.Parallelism); it never leaves this endpoint.
	parallelism int
}

// NewClient derives the client side of the protocol from a public spec.
func NewClient(spec Spec) (*Client, error) {
	if err := spec.Kernel.Validate(); err != nil {
		return nil, err
	}
	codec, err := spec.Codec()
	if err != nil {
		return nil, err
	}
	params := Params{Mode: spec.Mode, TaylorTerms: spec.TaylorTerms}
	_, scaleExp, numVars, err := protocolShape(spec.Kernel, spec.Dim, params)
	if err != nil {
		return nil, err
	}
	c := &Client{spec: spec, codec: codec, numVars: numVars, scaleExp: scaleExp}
	if spec.Mode == ModeExpanded && spec.Kernel.Kind == kernelPolynomial {
		if spec.Kernel.B0 == 0 {
			c.tauExps = mvpoly.Compositions(spec.Dim, spec.Kernel.Degree)
		} else {
			c.tauExps = mvpoly.CompositionsUpTo(spec.Dim, spec.Kernel.Degree)
		}
		if len(c.tauExps) != numVars {
			return nil, fmt.Errorf("classify: internal: %d variates enumerated, want %d", len(c.tauExps), numVars)
		}
	}
	return c, nil
}

// EncodeSample maps a raw sample into the protocol input vector: the
// fixed-point encodings of its features (direct modes) or of its monomial
// values τ̃ (expanded mode).
func (c *Client) EncodeSample(sample []float64) (field.Vec, error) {
	if len(sample) != c.spec.Dim {
		return nil, fmt.Errorf("classify: sample dim %d, want %d", len(sample), c.spec.Dim)
	}
	if c.tauExps == nil {
		return c.codec.EncodeVec(sample)
	}
	tau := make([]float64, len(c.tauExps))
	for j, exps := range c.tauExps {
		v := 1.0
		for i, e := range exps {
			for k := uint(0); k < e; k++ {
				v *= sample[i]
			}
		}
		tau[j] = v
	}
	return c.codec.EncodeVec(tau)
}

// NewSession opens a one-shot OMPE receiver for one sample, returning the
// evaluation request to send to the trainer.
func (c *Client) NewSession(sample []float64, rng io.Reader) (*ompe.Receiver, *ompe.EvalRequest, error) {
	input, err := c.EncodeSample(sample)
	if err != nil {
		return nil, nil, err
	}
	params, err := c.spec.OMPEParams()
	if err != nil {
		return nil, nil, err
	}
	params.Parallelism = c.parallelism
	return ompe.NewReceiver(params, input, rng)
}

// SetParallelism bounds the client-side worker pool (<= 0 selects
// GOMAXPROCS, 1 forces the serial path). Purely local: it does not change
// any protocol message given the same randomness stream.
func (c *Client) SetParallelism(n int) { c.parallelism = n }

// Interpret maps the OMPE result r_a·d(t̃)·scale to the predicted class
// label in {+1, −1} (the boundary maps to +1, matching svm.Model.Classify).
func (c *Client) Interpret(result *big.Int) (int, error) {
	sign, err := c.codec.Sign(result)
	if err != nil {
		return 0, err
	}
	if sign < 0 {
		return -1, nil
	}
	return 1, nil
}

// NumVars returns the protocol input arity (n, or n' in expanded mode).
func (c *Client) NumVars() int { return c.numVars }

// Spec returns the protocol contract the client was built from.
func (c *Client) Spec() Spec { return c.spec }

// Value decodes the OMPE result to the amplified decision value r_a·d(t̃)
// — the client's complete view of the model's answer. The privacy
// analysis (internal/attack, Fig. 5/6) works with these values.
func (c *Client) Value(result *big.Int) (float64, error) {
	return c.codec.DecodeAtScale(result, c.codec.ScalePow(c.scaleExp))
}
