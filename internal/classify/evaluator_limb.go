package classify

import (
	"fmt"
	"math/big"

	"repro/internal/field"
	"repro/internal/field/limb"
	"repro/internal/ompe"
)

// Limb evaluation paths. Whenever the protocol field is 2^255−19 the
// builders in evaluator.go also encode their constants as fixed-width limb
// elements and attach an allocation-free evalLimbFn, so a limb-backend
// session runs the trainer's entire arithmetic without math/big. The
// closures compute exactly the formulas of their math/big twins — same
// scale bookkeeping, same term order — on the same residues.

// evaluator implements ompe.LimbEvaluator; sessions on the big backend
// simply never call EvalLimb.
var _ ompe.LimbEvaluator = (*evaluator)(nil)

// EvalLimb evaluates the decision function on limb elements. When the
// kernel builder attached no native limb path (e.g. a field other than
// 2^255−19), it falls back to converting through math/big — correct but
// slow, and never hit by negotiated sessions.
func (e *evaluator) EvalLimb(z []limb.Element, out *limb.Element) error {
	if e.evalLimbFn != nil {
		return e.evalLimbFn(z, out)
	}
	x := make(field.Vec, len(z))
	for i := range z {
		x[i] = z[i].ToBig()
	}
	v, err := e.evalFn(x)
	if err != nil {
		return err
	}
	out.SetBigReduce(v)
	return nil
}

// limbVec encodes a vector of canonical field elements as limb elements.
func limbVec(xs field.Vec) ([]limb.Element, error) {
	out := make([]limb.Element, len(xs))
	for i, x := range xs {
		if err := out[i].SetBig(x); err != nil {
			return nil, fmt.Errorf("classify: limb-encode component %d: %w", i, err)
		}
	}
	return out, nil
}

func limbScalar(x *big.Int) (limb.Element, error) {
	var out limb.Element
	if err := out.SetBig(x); err != nil {
		return out, fmt.Errorf("classify: limb-encode constant: %w", err)
	}
	return out, nil
}

// attachLinearLimb mirrors buildLinearEvaluator's closure: w·z + b.
func attachLinearLimb(ev *evaluator, encW field.Vec, encB *big.Int) error {
	lw, err := limbVec(encW)
	if err != nil {
		return err
	}
	lb, err := limbScalar(encB)
	if err != nil {
		return err
	}
	n := ev.numVars
	ev.evalLimbFn = func(z []limb.Element, out *limb.Element) error {
		if len(z) != n {
			return fmt.Errorf("classify: arity %d, want %d", len(z), n)
		}
		acc := lb
		var t limb.Element
		for i := range lw {
			t.Mul(&lw[i], &z[i])
			acc.Add(&acc, &t)
		}
		out.Set(&acc)
		return nil
	}
	return nil
}

// attachPolyDirectLimb mirrors buildPolyDirectEvaluator's closure:
// Σ_s αy_s·(a0·x_s·z + b0)^p + b.
func attachPolyDirectLimb(ev *evaluator, encA0X []field.Vec, encB0 *big.Int, encAlphaY []*big.Int, encBias *big.Int, p int) error {
	lX := make([][]limb.Element, len(encA0X))
	for s, enc := range encA0X {
		v, err := limbVec(enc)
		if err != nil {
			return err
		}
		lX[s] = v
	}
	lB0, err := limbScalar(encB0)
	if err != nil {
		return err
	}
	lAlphaY, err := limbVec(encAlphaY)
	if err != nil {
		return err
	}
	lBias, err := limbScalar(encBias)
	if err != nil {
		return err
	}
	n := ev.numVars
	ev.evalLimbFn = func(z []limb.Element, out *limb.Element) error {
		if len(z) != n {
			return fmt.Errorf("classify: arity %d, want %d", len(z), n)
		}
		acc := lBias
		var inner, pow, t limb.Element
		for s := range lX {
			inner = lB0
			row := lX[s]
			for i := range row {
				t.Mul(&row[i], &z[i])
				inner.Add(&inner, &t)
			}
			pow.SetOne()
			for i := 0; i < p; i++ {
				pow.Mul(&pow, &inner)
			}
			t.Mul(&lAlphaY[s], &pow)
			acc.Add(&acc, &t)
		}
		out.Set(&acc)
		return nil
	}
	return nil
}

// attachRBFLimb mirrors buildRBFEvaluator's closure over the
// Taylor-truncated RBF series.
func attachRBFLimb(ev *evaluator, encX []field.Vec, encNorm []*big.Int, encCoeff [][]*big.Int, encBias *big.Int) error {
	lX := make([][]limb.Element, len(encX))
	for s, enc := range encX {
		v, err := limbVec(enc)
		if err != nil {
			return err
		}
		lX[s] = v
	}
	lNorm, err := limbVec(encNorm)
	if err != nil {
		return err
	}
	lCoeff := make([][]limb.Element, len(encCoeff))
	for s, cs := range encCoeff {
		v, err := limbVec(cs)
		if err != nil {
			return err
		}
		lCoeff[s] = v
	}
	lBias, err := limbScalar(encBias)
	if err != nil {
		return err
	}
	var lTwo limb.Element
	lTwo.SetUint64(2)
	n := ev.numVars
	ev.evalLimbFn = func(z []limb.Element, out *limb.Element) error {
		if len(z) != n {
			return fmt.Errorf("classify: arity %d, want %d", len(z), n)
		}
		var zNorm, t limb.Element
		for i := range z {
			t.Square(&z[i])
			zNorm.Add(&zNorm, &t)
		}
		acc := lBias
		var cross, dist, pow limb.Element
		for s := range lX {
			cross.SetZero()
			row := lX[s]
			for i := range row {
				t.Mul(&row[i], &z[i])
				cross.Add(&cross, &t)
			}
			dist.Add(&lNorm[s], &zNorm)
			t.Mul(&lTwo, &cross)
			dist.Sub(&dist, &t)
			pow.SetOne()
			cs := lCoeff[s]
			for i := range cs {
				t.Mul(&cs[i], &pow)
				acc.Add(&acc, &t)
				pow.Mul(&pow, &dist)
			}
		}
		out.Set(&acc)
		return nil
	}
	return nil
}

// attachSigmoidLimb mirrors buildSigmoidEvaluator's closure over the
// Taylor-truncated tanh series.
func attachSigmoidLimb(ev *evaluator, encA0X []field.Vec, encCoeff [][]*big.Int, encC0, encBias *big.Int) error {
	lX := make([][]limb.Element, len(encA0X))
	for s, enc := range encA0X {
		v, err := limbVec(enc)
		if err != nil {
			return err
		}
		lX[s] = v
	}
	lCoeff := make([][]limb.Element, len(encCoeff))
	for s, cs := range encCoeff {
		v, err := limbVec(cs)
		if err != nil {
			return err
		}
		lCoeff[s] = v
	}
	lC0, err := limbScalar(encC0)
	if err != nil {
		return err
	}
	lBias, err := limbScalar(encBias)
	if err != nil {
		return err
	}
	n := ev.numVars
	ev.evalLimbFn = func(z []limb.Element, out *limb.Element) error {
		if len(z) != n {
			return fmt.Errorf("classify: arity %d, want %d", len(z), n)
		}
		acc := lBias
		var u, u2, pow, t limb.Element
		for s := range lX {
			u = lC0
			row := lX[s]
			for i := range row {
				t.Mul(&row[i], &z[i])
				u.Add(&u, &t)
			}
			u2.Square(&u)
			pow = u
			cs := lCoeff[s]
			for i := range cs {
				t.Mul(&cs[i], &pow)
				acc.Add(&acc, &t)
				pow.Mul(&pow, &u2)
			}
		}
		out.Set(&acc)
		return nil
	}
	return nil
}
