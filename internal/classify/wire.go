package classify

import (
	"io"

	"repro/internal/wire"
)

// EncodeWire implements the wire codec. The Spec normally crosses the
// wire in gob (it is the message that negotiates the codec), but the
// binary form exists so golden transcripts and future protocol versions
// can carry it inside binary frames too.
func (s *Spec) EncodeWire(w *wire.Writer) {
	s.Kernel.EncodeWire(w)
	w.Int(s.Dim)
	w.Int(int(s.Mode))
	w.Int(s.MaskDegree)
	w.Int(s.CoverFactor)
	w.Int(s.AmplifierBits)
	w.Int(s.TaylorTerms)
	w.Int(s.FieldBits)
	w.Uint(s.FracBits)
	w.String(s.GroupName)
	w.String(s.FieldBackend)
	w.String(s.WireCodec)
	// Optional tails (see wire.Reader.More), append-only: the pad tail is
	// omitted for the legacy SHA-256 pad, so an un-negotiated Spec is
	// byte-identical to a pre-negotiation build's and old recordings
	// decode unchanged. The resume tail rides behind it; granting resume
	// forces the pad tail present (possibly empty) so the two stay
	// positionally unambiguous.
	if s.PadFunc != "" || s.ResumeGranted {
		w.String(s.PadFunc)
	}
	if s.ResumeGranted {
		w.Bool(true)
	}
}

// DecodeWire implements the wire codec.
func (s *Spec) DecodeWire(r *wire.Reader) {
	s.Kernel.DecodeWire(r)
	s.Dim = r.Int()
	s.Mode = Mode(r.Int())
	s.MaskDegree = r.Int()
	s.CoverFactor = r.Int()
	s.AmplifierBits = r.Int()
	s.TaylorTerms = r.Int()
	s.FieldBits = r.Int()
	s.FracBits = r.Uint()
	s.GroupName = r.String()
	s.FieldBackend = r.String()
	s.WireCodec = r.String()
	s.PadFunc = ""
	s.ResumeGranted = false
	if r.More() {
		s.PadFunc = r.String()
	}
	if r.More() {
		s.ResumeGranted = r.Bool()
	}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Spec) MarshalBinary() ([]byte, error) { return wire.Marshal(s) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Spec) UnmarshalBinary(data []byte) error { return wire.Unmarshal(data, s) }

// WriteTo implements io.WriterTo.
func (s *Spec) WriteTo(w io.Writer) (int64, error) { return wire.WriteTo(w, s) }

// ReadFrom implements io.ReaderFrom.
func (s *Spec) ReadFrom(r io.Reader) (int64, error) { return wire.ReadFrom(r, s) }
