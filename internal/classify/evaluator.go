package classify

import (
	"fmt"
	"math/big"

	"repro/internal/field"
	"repro/internal/field/limb"
	"repro/internal/fixedpoint"
	"repro/internal/kernel"
	"repro/internal/mvpoly"
	"repro/internal/svm"
)

// evaluator is the trainer's secret decision function encoded into the
// protocol field with scale-normalized coefficients: every monomial of the
// polynomial decodes at the common scale 2^(scaleExp·fracBits), so field
// addition is scale-consistent (DESIGN.md §3).
type evaluator struct {
	numVars  int
	degree   int  // total degree in protocol inputs
	scaleExp uint // result scale exponent, in fracBits units
	evalFn   func(z field.Vec) (*big.Int, error)
	// evalLimbFn is the fixed-width twin of evalFn, attached by the
	// builders whenever the protocol field is 2^255−19 (see
	// evaluator_limb.go); nil means EvalLimb falls back through math/big.
	evalLimbFn func(z []limb.Element, out *limb.Element) error
}

func (e *evaluator) NumVars() int { return e.numVars }

func (e *evaluator) Eval(z field.Vec) (*big.Int, error) { return e.evalFn(z) }

// scaleAt returns 2^(exp·fracBits).
func scaleAt(codec *fixedpoint.Codec, exp uint) *big.Int {
	return codec.ScalePow(exp)
}

// buildLinearEvaluator encodes d(t) = w·t + b. Inputs arrive at scale S,
// weights are encoded at S, the bias at S²; the result decodes at S².
func buildLinearEvaluator(codec *fixedpoint.Codec, w []float64, b float64) (*evaluator, error) {
	f := codec.Field()
	encW, err := codec.EncodeVec(w)
	if err != nil {
		return nil, fmt.Errorf("classify: encode weights: %w", err)
	}
	encB, err := codec.EncodeAtScale(b, scaleAt(codec, 2))
	if err != nil {
		return nil, fmt.Errorf("classify: encode bias: %w", err)
	}
	n := len(w)
	ev := &evaluator{
		numVars:  n,
		degree:   1,
		scaleExp: 2,
		evalFn: func(z field.Vec) (*big.Int, error) {
			if len(z) != n {
				return nil, fmt.Errorf("classify: arity %d, want %d", len(z), n)
			}
			dot, err := f.Dot(encW, z)
			if err != nil {
				return nil, err
			}
			return f.Add(dot, encB), nil
		},
	}
	if f.SupportsLimb() {
		if err := attachLinearLimb(ev, encW, encB); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// buildPolyDirectEvaluator encodes the kernel-form polynomial decision
// function d(t) = Σ_s αy_s·(a0·x_s·t + b0)^p + b for direct evaluation on
// arbitrary field vectors (the paper's nonlinear construction). The result
// decodes at scale exponent 2p+1.
func buildPolyDirectEvaluator(codec *fixedpoint.Codec, m *svm.Model) (*evaluator, error) {
	f := codec.Field()
	p := m.Kernel.Degree
	scaleExp := uint(2*p + 1)

	encA0X := make([]field.Vec, len(m.SupportVectors))
	for s, sv := range m.SupportVectors {
		scaled := make([]float64, len(sv))
		for j, v := range sv {
			scaled[j] = m.Kernel.A0 * v
		}
		enc, err := codec.EncodeVec(scaled)
		if err != nil {
			return nil, fmt.Errorf("classify: encode support vector %d: %w", s, err)
		}
		encA0X[s] = enc
	}
	encB0, err := codec.EncodeAtScale(m.Kernel.B0, scaleAt(codec, 2))
	if err != nil {
		return nil, err
	}
	encAlphaY := make([]*big.Int, len(m.AlphaY))
	for s, a := range m.AlphaY {
		enc, err := codec.EncodeAtScale(a, codec.Scale())
		if err != nil {
			return nil, fmt.Errorf("classify: encode multiplier %d: %w", s, err)
		}
		encAlphaY[s] = enc
	}
	encBias, err := codec.EncodeAtScale(m.Bias, scaleAt(codec, scaleExp))
	if err != nil {
		return nil, err
	}

	n := m.Dim
	ev := &evaluator{
		numVars:  n,
		degree:   p,
		scaleExp: scaleExp,
		evalFn: func(z field.Vec) (*big.Int, error) {
			if len(z) != n {
				return nil, fmt.Errorf("classify: arity %d, want %d", len(z), n)
			}
			acc := new(big.Int).Set(encBias)
			for s := range encA0X {
				inner, err := f.Dot(encA0X[s], z) // scale exp 2
				if err != nil {
					return nil, err
				}
				inner = f.Add(inner, encB0)
				pow := f.One()
				for i := 0; i < p; i++ {
					pow = f.Mul(pow, inner)
				} // scale exp 2p
				acc = f.Add(acc, f.Mul(encAlphaY[s], pow))
			}
			return acc, nil
		},
	}
	if f.SupportsLimb() {
		if err := attachPolyDirectLimb(ev, encA0X, encB0, encAlphaY, encBias, p); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// buildExpandedEvaluator linearizes a polynomial-kernel model over its τ
// monomial variates and encodes the resulting linear form. The client must
// send τ̃ covers (see ExpandSample).
func buildExpandedEvaluator(codec *fixedpoint.Codec, m *svm.Model) (*evaluator, *mvpoly.FloatExpansion, error) {
	exp, err := mvpoly.ExpandPolyKernel(m.SupportVectors, m.AlphaY, m.Kernel.A0, m.Kernel.B0, m.Kernel.Degree, m.Bias)
	if err != nil {
		return nil, nil, fmt.Errorf("classify: expand kernel: %w", err)
	}
	ev, err := buildLinearEvaluator(codec, exp.Coeffs, exp.Bias)
	if err != nil {
		return nil, nil, err
	}
	return ev, exp, nil
}

// buildRBFEvaluator encodes the Taylor-truncated RBF decision function
// d(t) ≈ Σ_s αy_s Σ_{i=0}^{T} c_i·dist_s(t)ⁱ + b with c_i = (−γ)ⁱ/i! and
// dist_s(t) = |x_s|² + |t|² − 2·x_s·t. The result decodes at scale
// exponent 2T+2; protocol degree is 2T.
func buildRBFEvaluator(codec *fixedpoint.Codec, m *svm.Model, terms int) (*evaluator, error) {
	f := codec.Field()
	coeffs, err := kernel.ExpSeries(-m.Kernel.Gamma, terms)
	if err != nil {
		return nil, err
	}
	scaleExp := uint(2*terms + 2)

	encX := make([]field.Vec, len(m.SupportVectors))
	encNorm := make([]*big.Int, len(m.SupportVectors))
	// encCoeff[s][i] carries αy_s·c_i at scale exponent scaleExp − 2i, so
	// each term αy·c_i·distⁱ lands at scaleExp.
	encCoeff := make([][]*big.Int, len(m.SupportVectors))
	for s, sv := range m.SupportVectors {
		enc, err := codec.EncodeVec(sv)
		if err != nil {
			return nil, fmt.Errorf("classify: encode support vector %d: %w", s, err)
		}
		encX[s] = enc
		norm := 0.0
		for _, v := range sv {
			norm += v * v
		}
		encNorm[s], err = codec.EncodeAtScale(norm, scaleAt(codec, 2))
		if err != nil {
			return nil, err
		}
		encCoeff[s] = make([]*big.Int, terms+1)
		for i := 0; i <= terms; i++ {
			encCoeff[s][i], err = codec.EncodeAtScale(m.AlphaY[s]*coeffs[i], scaleAt(codec, scaleExp-uint(2*i)))
			if err != nil {
				return nil, fmt.Errorf("classify: encode rbf coefficient (%d,%d): %w", s, i, err)
			}
		}
	}
	encBias, err := codec.EncodeAtScale(m.Bias, scaleAt(codec, scaleExp))
	if err != nil {
		return nil, err
	}
	two := big.NewInt(2)

	n := m.Dim
	ev := &evaluator{
		numVars:  n,
		degree:   2 * terms,
		scaleExp: scaleExp,
		evalFn: func(z field.Vec) (*big.Int, error) {
			if len(z) != n {
				return nil, fmt.Errorf("classify: arity %d, want %d", len(z), n)
			}
			zNorm, err := f.Dot(z, z) // scale exp 2
			if err != nil {
				return nil, err
			}
			acc := new(big.Int).Set(encBias)
			for s := range encX {
				cross, err := f.Dot(encX[s], z)
				if err != nil {
					return nil, err
				}
				dist := f.Sub(f.Add(encNorm[s], zNorm), f.Mul(two, cross)) // scale exp 2
				pow := f.One()
				for i := 0; i <= len(encCoeff[s])-1; i++ {
					acc = f.Add(acc, f.Mul(encCoeff[s][i], pow))
					pow = f.Mul(pow, dist)
				}
			}
			return acc, nil
		},
	}
	if f.SupportsLimb() {
		if err := attachRBFLimb(ev, encX, encNorm, encCoeff, encBias); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// buildSigmoidEvaluator encodes the Taylor-truncated sigmoid decision
// function d(t) ≈ Σ_s αy_s Σ_{i=1}^{T} tc_i·u_s(t)^{2i−1} + b with
// u_s(t) = a0·x_s·t + c0. The result decodes at scale exponent 4T;
// protocol degree is 2T−1.
func buildSigmoidEvaluator(codec *fixedpoint.Codec, m *svm.Model, terms int) (*evaluator, error) {
	f := codec.Field()
	tcoeffs, err := kernel.TanhSeries(terms)
	if err != nil {
		return nil, err
	}
	scaleExp := uint(4 * terms)

	encA0X := make([]field.Vec, len(m.SupportVectors))
	encCoeff := make([][]*big.Int, len(m.SupportVectors))
	for s, sv := range m.SupportVectors {
		scaled := make([]float64, len(sv))
		for j, v := range sv {
			scaled[j] = m.Kernel.A0 * v
		}
		enc, err := codec.EncodeVec(scaled)
		if err != nil {
			return nil, fmt.Errorf("classify: encode support vector %d: %w", s, err)
		}
		encA0X[s] = enc
		encCoeff[s] = make([]*big.Int, terms)
		for i := 1; i <= terms; i++ {
			// u^{2i-1} has scale exponent 2(2i-1); the coefficient tops it
			// up to scaleExp.
			encCoeff[s][i-1], err = codec.EncodeAtScale(m.AlphaY[s]*tcoeffs[i-1], scaleAt(codec, scaleExp-uint(2*(2*i-1))))
			if err != nil {
				return nil, fmt.Errorf("classify: encode sigmoid coefficient (%d,%d): %w", s, i, err)
			}
		}
	}
	encC0, err := codec.EncodeAtScale(m.Kernel.C0, scaleAt(codec, 2))
	if err != nil {
		return nil, err
	}
	encBias, err := codec.EncodeAtScale(m.Bias, scaleAt(codec, scaleExp))
	if err != nil {
		return nil, err
	}

	n := m.Dim
	ev := &evaluator{
		numVars:  n,
		degree:   2*terms - 1,
		scaleExp: scaleExp,
		evalFn: func(z field.Vec) (*big.Int, error) {
			if len(z) != n {
				return nil, fmt.Errorf("classify: arity %d, want %d", len(z), n)
			}
			acc := new(big.Int).Set(encBias)
			for s := range encA0X {
				u, err := f.Dot(encA0X[s], z)
				if err != nil {
					return nil, err
				}
				u = f.Add(u, encC0) // scale exp 2
				u2 := f.Mul(u, u)
				pow := new(big.Int).Set(u) // u^{2i-1}, starting at i=1
				for i := 0; i < len(encCoeff[s]); i++ {
					acc = f.Add(acc, f.Mul(encCoeff[s][i], pow))
					pow = f.Mul(pow, u2)
				}
			}
			return acc, nil
		},
	}
	if f.SupportsLimb() {
		if err := attachSigmoidLimb(ev, encA0X, encCoeff, encC0, encBias); err != nil {
			return nil, err
		}
	}
	return ev, nil
}

// buildEvaluator dispatches on the model's kernel and the protocol mode.
// It returns the evaluator and, for ModeExpanded, the float expansion the
// client needs to compute τ̃ (nil otherwise).
func buildEvaluator(codec *fixedpoint.Codec, m *svm.Model, params Params) (*evaluator, *mvpoly.FloatExpansion, error) {
	switch m.Kernel.Kind {
	case svm.KernelLinear:
		w, err := m.LinearWeights()
		if err != nil {
			return nil, nil, err
		}
		ev, err := buildLinearEvaluator(codec, w, m.Bias)
		return ev, nil, err
	case svm.KernelPolynomial:
		if params.Mode == ModeExpanded {
			return buildExpandedEvaluator(codec, m)
		}
		ev, err := buildPolyDirectEvaluator(codec, m)
		return ev, nil, err
	case svm.KernelRBF:
		ev, err := buildRBFEvaluator(codec, m, params.TaylorTerms)
		return ev, nil, err
	case svm.KernelSigmoid:
		ev, err := buildSigmoidEvaluator(codec, m, params.TaylorTerms)
		return ev, nil, err
	default:
		return nil, nil, fmt.Errorf("classify: unsupported kernel %v", m.Kernel.Kind)
	}
}

// protocolShape reports the evaluator shape (degree, scale exponent) a
// model/params combination will use, without building the evaluator. Both
// parties derive it independently from public knowledge.
func protocolShape(kind svm.Kernel, dim int, params Params) (degree int, scaleExp uint, numVars int, err error) {
	switch kind.Kind {
	case svm.KernelLinear:
		return 1, 2, dim, nil
	case svm.KernelPolynomial:
		if params.Mode == ModeExpanded {
			n := mvpoly.NumMonomials(dim, kind.Degree)
			if !n.IsInt64() || n.Int64() > 1<<20 {
				return 0, 0, 0, fmt.Errorf("classify: expansion too large (%v variates)", n)
			}
			vars := int(n.Int64())
			if kind.B0 != 0 {
				vars = len(mvpoly.CompositionsUpTo(dim, kind.Degree))
			}
			return 1, 2, vars, nil
		}
		return kind.Degree, uint(2*kind.Degree + 1), dim, nil
	case svm.KernelRBF:
		return 2 * params.TaylorTerms, uint(2*params.TaylorTerms + 2), dim, nil
	case svm.KernelSigmoid:
		return 2*params.TaylorTerms - 1, uint(4 * params.TaylorTerms), dim, nil
	default:
		return 0, 0, 0, fmt.Errorf("classify: unsupported kernel %v", kind.Kind)
	}
}
