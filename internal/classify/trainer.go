package classify

import (
	"fmt"
	"math/big"

	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/mvpoly"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/svm"
)

// Spec is the public protocol contract the trainer publishes and the
// client builds its side from: the kernel hyperparameters (a0, b0, p, γ —
// conventional public knowledge; the support vectors and multipliers stay
// private), the feature dimension, the protocol parameters, and the codec
// shape. Both parties derive identical field/codec/OMPE parameters from it.
type Spec struct {
	// Kernel carries the kernel family and hyperparameters (not the
	// trained coefficients).
	Kernel svm.Kernel
	// Dim is the feature dimension n.
	Dim int
	// Mode is the nonlinear evaluation form.
	Mode Mode
	// MaskDegree, CoverFactor, AmplifierBits and TaylorTerms mirror Params.
	MaskDegree    int
	CoverFactor   int
	AmplifierBits int
	TaylorTerms   int
	// FieldBits identifies the built-in protocol prime (field.ByBits).
	FieldBits int
	// FracBits is the fixed-point precision.
	FracBits uint
	// GroupName identifies the OT group (ot.GroupByName).
	GroupName string
	// FieldBackend names the field-arithmetic engine for this session
	// ("limb" or empty for math/big). Trainers advertise it when they
	// were built with the limb backend; session handshakes clear it for
	// clients that do not request it, so legacy peers — whose gob
	// decoders simply drop the unknown field — interoperate unchanged on
	// the math/big path.
	FieldBackend string
	// WireCodec names the envelope codec granted for the rest of the
	// session ("binary" or empty for gob). The Spec itself always
	// crosses in gob so legacy peers — whose decoders drop the unknown
	// field — stay on gob. See internal/transport.
	WireCodec string
	// PadFunc names the OT-extension pad family granted for this session
	// ("aes" or empty for the legacy SHA-256 pad). Like WireCodec it is
	// a per-session negotiation outcome, not part of the trainer's
	// contract: legacy peers drop the unknown field and run SHA-256.
	PadFunc string
	// ResumeGranted reports that the server accepted the client's
	// resumption ticket: both sides skip the base OT phase and restore
	// the extension state the ticket sealed. A per-session negotiation
	// outcome like WireCodec/PadFunc, never part of the trainer's
	// contract; legacy peers drop the unknown field and run full
	// handshakes.
	ResumeGranted bool
}

// Codec reconstructs the protocol codec from the spec.
func (s Spec) Codec() (*fixedpoint.Codec, error) {
	f, err := fieldByExactBits(s.FieldBits)
	if err != nil {
		return nil, err
	}
	return fixedpoint.NewCodec(f, s.FracBits)
}

// OMPEParams derives the OMPE parameters both parties must share.
func (s Spec) OMPEParams() (ompe.Params, error) {
	group, err := ot.GroupByName(s.GroupName)
	if err != nil {
		return ompe.Params{}, err
	}
	codec, err := s.Codec()
	if err != nil {
		return ompe.Params{}, err
	}
	degree, _, _, err := protocolShape(s.Kernel, s.Dim, Params{Mode: s.Mode, TaylorTerms: s.TaylorTerms})
	if err != nil {
		return ompe.Params{}, err
	}
	backend, err := field.ResolveBackend(s.FieldBackend)
	if err != nil {
		return ompe.Params{}, err
	}
	pad, err := ot.ResolvePad(s.PadFunc)
	if err != nil {
		return ompe.Params{}, err
	}
	return ompe.Params{
		Field:         codec.Field(),
		PolyDegree:    degree,
		MaskDegree:    s.MaskDegree,
		CoverFactor:   s.CoverFactor,
		AmplifierBits: s.AmplifierBits,
		Group:         group,
		Backend:       backend,
		Pad:           pad,
	}, nil
}

// Trainer is the model owner's long-lived protocol endpoint. One Trainer
// serves many classification sessions; each session draws a fresh masking
// polynomial and amplifier (required for Level-2 privacy — a fixed
// amplifier would let a colluding client reconstruct the model up to
// scale, §VI-A).
type Trainer struct {
	model     *svm.Model
	params    Params
	codec     *fixedpoint.Codec
	eval      *evaluator
	expansion *mvpoly.FloatExpansion
	spec      Spec
}

// NewTrainer wraps a trained model for privacy-preserving serving.
func NewTrainer(model *svm.Model, params Params) (*Trainer, error) {
	if model == nil {
		return nil, fmt.Errorf("classify: nil model")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()

	bound, err := decisionBound(model, params.TaylorTerms)
	if err != nil {
		return nil, err
	}
	_, scaleExp, _, err := protocolShape(model.Kernel, model.Dim, params)
	if err != nil {
		return nil, err
	}
	codec, err := resolveCodec(params, scaleExp, bound)
	if err != nil {
		return nil, err
	}
	eval, expansion, err := buildEvaluator(codec, model, params)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		model:     model,
		params:    params,
		codec:     codec,
		eval:      eval,
		expansion: expansion,
		spec: Spec{
			Kernel:        model.Kernel,
			Dim:           model.Dim,
			Mode:          params.Mode,
			MaskDegree:    params.MaskDegree,
			CoverFactor:   params.CoverFactor,
			AmplifierBits: params.AmplifierBits,
			TaylorTerms:   params.TaylorTerms,
			FieldBits:     codec.Field().Bits(),
			FracBits:      codec.FracBits(),
			GroupName:     params.Group.Name(),
			FieldBackend:  advertiseBackend(params.FieldBackend),
		},
	}
	return t, nil
}

// SessionSpec resolves the spec for one session given the backend a client
// requested in its hello. The limb backend is granted only when both sides
// support it — the client asked for it and this trainer was built with it;
// every other combination falls back to the math/big path over the same
// field, so the wire format and the result are unchanged.
func (t *Trainer) SessionSpec(requested field.Backend) Spec {
	spec := t.spec
	if requested.OrDefault() != field.BackendLimb ||
		field.Backend(t.spec.FieldBackend).OrDefault() != field.BackendLimb {
		spec.FieldBackend = ""
	}
	return spec
}

// Spec returns the public protocol contract for clients.
func (t *Trainer) Spec() Spec { return t.spec }

// Model returns the wrapped model (the trainer's own private state).
func (t *Trainer) Model() *svm.Model { return t.model }

// NewSession opens a one-shot OMPE sender for a single classification
// query, with a fresh amplifier (or a pinned unit amplifier when the
// insecure attack-demo knob is set).
func (t *Trainer) NewSession() (*ompe.Sender, error) {
	return t.NewSessionFor(t.spec)
}

// NewSessionFor opens a one-shot OMPE sender bound to a negotiated session
// spec (normally the result of SessionSpec). The spec selects the field
// backend; everything else must match the trainer's own contract.
func (t *Trainer) NewSessionFor(spec Spec) (*ompe.Sender, error) {
	params, err := t.sessionParams(spec)
	if err != nil {
		return nil, err
	}
	if t.params.InsecureUnitAmplifier {
		return ompe.NewSender(params, t.eval, ompe.WithAmplifier(big.NewInt(1)))
	}
	return ompe.NewSender(params, t.eval)
}

// sessionParams derives the trainer-side OMPE parameters for a session
// spec, rejecting specs that diverge from the published contract anywhere
// but the negotiable field backend and wire codec.
func (t *Trainer) sessionParams(spec Spec) (ompe.Params, error) {
	contract := spec
	contract.FieldBackend = t.spec.FieldBackend
	contract.WireCodec = t.spec.WireCodec
	contract.PadFunc = t.spec.PadFunc
	contract.ResumeGranted = t.spec.ResumeGranted
	if contract != t.spec {
		return ompe.Params{}, fmt.Errorf("classify: session spec does not match the trainer's contract")
	}
	if spec.FieldBackend != "" && spec.FieldBackend != t.spec.FieldBackend {
		return ompe.Params{}, fmt.Errorf("classify: trainer cannot serve the %q field backend", spec.FieldBackend)
	}
	params, err := spec.OMPEParams()
	if err != nil {
		return ompe.Params{}, err
	}
	params.Parallelism = t.params.Parallelism
	return params, nil
}

// advertiseBackend maps a trainer backend to its spec encoding: "limb"
// when the trainer runs limb arithmetic, empty for the default math/big
// path (so legacy peers see a zero value).
func advertiseBackend(b field.Backend) string {
	if b.OrDefault() == field.BackendLimb {
		return string(field.BackendLimb)
	}
	return ""
}

// fieldByExactBits resolves a built-in field and verifies the bit width
// matches exactly, so both parties agree on the modulus.
func fieldByExactBits(bits int) (*fieldType, error) {
	f, err := byBits(bits)
	if err != nil {
		return nil, err
	}
	if f.Bits() != bits {
		return nil, fmt.Errorf("classify: no built-in field with exactly %d bits", bits)
	}
	return f, nil
}
