package classify

import (
	"fmt"
	"io"

	"repro/internal/svm"
)

// Privacy-preserving multiclass classification (extension beyond the
// paper's binary protocols; see internal/svm/multiclass.go). The trainer
// serves one binary protocol endpoint per one-vs-one pair; the client runs
// all K(K-1)/2 binary classifications and tallies the majority vote
// locally. The trainer learns nothing about the sample (as before) and
// never sees the vote tally; the client learns the pairwise labels it
// would have learned from K-1 adaptive binary queries anyway, plus the
// final class.

// MulticlassTrainer serves a one-vs-one ensemble privately.
type MulticlassTrainer struct {
	classes  []int
	pairPos  []int
	pairNeg  []int
	trainers []*Trainer
}

// NewMulticlassTrainer wraps a trained ensemble.
func NewMulticlassTrainer(m *svm.MulticlassModel, params Params) (*MulticlassTrainer, error) {
	if m == nil {
		return nil, fmt.Errorf("classify: nil multiclass model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	mt := &MulticlassTrainer{classes: append([]int(nil), m.Classes...)}
	for _, p := range m.Pairs {
		trainer, err := NewTrainer(p.Model, params)
		if err != nil {
			return nil, fmt.Errorf("classify: pair (%d,%d): %w", p.ClassPos, p.ClassNeg, err)
		}
		mt.pairPos = append(mt.pairPos, p.ClassPos)
		mt.pairNeg = append(mt.pairNeg, p.ClassNeg)
		mt.trainers = append(mt.trainers, trainer)
	}
	return mt, nil
}

// Specs returns the per-pair public contracts, in pair order.
func (mt *MulticlassTrainer) Specs() []Spec {
	out := make([]Spec, len(mt.trainers))
	for i, tr := range mt.trainers {
		out[i] = tr.Spec()
	}
	return out
}

// Classes returns the label set.
func (mt *MulticlassTrainer) Classes() []int {
	return append([]int(nil), mt.classes...)
}

// MulticlassClient is the sample owner's ensemble endpoint.
type MulticlassClient struct {
	classes []int
	pairPos []int
	pairNeg []int
	clients []*Client
}

// NewMulticlassClient builds per-pair clients from the trainer's specs and
// pair labels.
func NewMulticlassClient(classes, pairPos, pairNeg []int, specs []Spec) (*MulticlassClient, error) {
	if len(pairPos) != len(specs) || len(pairNeg) != len(specs) {
		return nil, fmt.Errorf("classify: %d pair labels for %d specs", len(pairPos), len(specs))
	}
	mc := &MulticlassClient{
		classes: append([]int(nil), classes...),
		pairPos: append([]int(nil), pairPos...),
		pairNeg: append([]int(nil), pairNeg...),
	}
	for i, spec := range specs {
		c, err := NewClient(spec)
		if err != nil {
			return nil, fmt.Errorf("classify: pair %d: %w", i, err)
		}
		mc.clients = append(mc.clients, c)
	}
	return mc, nil
}

// ClassifyMulticlass runs one private binary classification per pair and
// returns the majority-vote class.
func ClassifyMulticlass(mt *MulticlassTrainer, sample []float64, rng io.Reader) (int, error) {
	mc, err := NewMulticlassClient(mt.classes, mt.pairPos, mt.pairNeg, mt.Specs())
	if err != nil {
		return 0, err
	}
	return ClassifyMulticlassWith(mt, mc, sample, rng)
}

// ClassifyMulticlassWith reuses a prepared client across samples.
func ClassifyMulticlassWith(mt *MulticlassTrainer, mc *MulticlassClient, sample []float64, rng io.Reader) (int, error) {
	if len(mc.clients) != len(mt.trainers) {
		return 0, fmt.Errorf("classify: client has %d pairs, trainer %d", len(mc.clients), len(mt.trainers))
	}
	votes := make(map[int]int, len(mt.classes))
	for i, trainer := range mt.trainers {
		label, err := ClassifyWith(trainer, mc.clients[i], sample, rng)
		if err != nil {
			return 0, fmt.Errorf("classify: pair (%d,%d): %w", mc.pairPos[i], mc.pairNeg[i], err)
		}
		if label > 0 {
			votes[mc.pairPos[i]]++
		} else {
			votes[mc.pairNeg[i]]++
		}
	}
	return svm.Vote(mc.classes, votes)
}
