package classify_test

import (
	"crypto/rand"
	"math"
	"testing"

	"repro/internal/classify"
	"repro/internal/field"
	"repro/internal/ot"
	"repro/internal/svm"
)

func limbParams() classify.Params {
	p := fastParams()
	p.FieldBackend = field.BackendLimb
	return p
}

func TestLimbTrainerPinsFieldAndAdvertisesBackend(t *testing.T) {
	model, _ := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, limbParams())
	if err != nil {
		t.Fatal(err)
	}
	spec := trainer.Spec()
	if spec.FieldBits != 255 {
		t.Fatalf("limb trainer picked a %d-bit field, want 255", spec.FieldBits)
	}
	if spec.FieldBackend != string(field.BackendLimb) {
		t.Fatalf("spec advertises backend %q, want %q", spec.FieldBackend, field.BackendLimb)
	}

	big, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := big.Spec().FieldBackend; got != "" {
		t.Fatalf("math/big trainer advertises backend %q, want empty", got)
	}
}

func TestSessionSpecNegotiation(t *testing.T) {
	model, _ := trainSmall(t, svm.Linear(), 1)
	limbTrainer, err := classify.NewTrainer(model, limbParams())
	if err != nil {
		t.Fatal(err)
	}
	bigTrainer, err := classify.NewTrainer(model, fastParams())
	if err != nil {
		t.Fatal(err)
	}

	if got := limbTrainer.SessionSpec(field.BackendLimb).FieldBackend; got != string(field.BackendLimb) {
		t.Fatalf("limb trainer + limb request granted %q, want limb", got)
	}
	if got := limbTrainer.SessionSpec("").FieldBackend; got != "" {
		t.Fatalf("limb trainer + default request granted %q, want big path", got)
	}
	if got := limbTrainer.SessionSpec(field.BackendBig).FieldBackend; got != "" {
		t.Fatalf("limb trainer + big request granted %q, want big path", got)
	}
	if got := bigTrainer.SessionSpec(field.BackendLimb).FieldBackend; got != "" {
		t.Fatalf("big trainer + limb request granted %q, want big path", got)
	}
}

func TestNewSessionForRejectsForeignSpec(t *testing.T) {
	model, _ := trainSmall(t, svm.Linear(), 1)
	trainer, err := classify.NewTrainer(model, limbParams())
	if err != nil {
		t.Fatal(err)
	}
	spec := trainer.Spec()
	spec.MaskDegree++
	if _, err := trainer.NewSessionFor(spec); err == nil {
		t.Fatal("divergent spec accepted")
	}
	spec = trainer.Spec()
	spec.FieldBackend = "vector"
	if _, err := trainer.NewSessionFor(spec); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// requireLimbAgreement runs the same samples through a limb-backend trainer
// and a math/big one over the identical model and asserts both reproduce
// the plaintext label.
func requireLimbAgreement(t *testing.T, k svm.Kernel, c float64, mutate func(*classify.Params)) {
	t.Helper()
	model, test := trainSmall(t, k, c)

	lp := limbParams()
	if mutate != nil {
		mutate(&lp)
	}
	limbTrainer, err := classify.NewTrainer(model, lp)
	if err != nil {
		t.Fatal(err)
	}
	limbClient, err := classify.NewClient(limbTrainer.SessionSpec(field.BackendLimb))
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for i, sample := range test.X {
		d, err := model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		want := 1
		if d < 0 {
			want = -1
		}
		got, err := classify.ClassifyWith(limbTrainer, limbClient, sample, rand.Reader)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("sample %d: limb label %d, plaintext %d (d=%g)", i, got, want, d)
		}
		checked++
		if checked >= 8 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
}

func TestLimbLinearMatchesPlaintext(t *testing.T) {
	requireLimbAgreement(t, svm.Linear(), 1, nil)
}

func TestLimbPolyDirectMatchesPlaintext(t *testing.T) {
	// The direct degree-2 protocol needs 267 bits at the auto precision;
	// trimming FracBits keeps it inside the limb backend's 255-bit cap.
	requireLimbAgreement(t, svm.PaperPolynomial(8), 100, func(p *classify.Params) {
		p.FracBits = 16
	})
}

func TestLimbRejectsOversizedProtocol(t *testing.T) {
	model, _ := trainSmall(t, svm.PaperPolynomial(8), 100)
	if _, err := classify.NewTrainer(model, limbParams()); err == nil {
		t.Fatal("limb trainer accepted a protocol needing more than 255 bits")
	}
}

func TestLimbPolyExpandedMatchesPlaintext(t *testing.T) {
	requireLimbAgreement(t, svm.PaperPolynomial(8), 100, func(p *classify.Params) {
		p.Mode = classify.ModeExpanded
	})
}

func TestLimbRBFMatchesBigLabels(t *testing.T) {
	model, test := trainSmall(t, svm.RBF(0.05), 100)

	lp := limbParams()
	lp.FracBits = 16
	limbTrainer, err := classify.NewTrainer(model, lp)
	if err != nil {
		t.Fatal(err)
	}
	bp := fastParams()
	bp.FracBits = 16
	bigTrainer, err := classify.NewTrainer(model, bp)
	if err != nil {
		t.Fatal(err)
	}
	limbClient, err := classify.NewClient(limbTrainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	bigClient, err := classify.NewClient(bigTrainer.Spec())
	if err != nil {
		t.Fatal(err)
	}
	for i, sample := range test.X[:6] {
		lg, err := classify.ClassifyWith(limbTrainer, limbClient, sample, rand.Reader)
		if err != nil {
			t.Fatalf("limb sample %d: %v", i, err)
		}
		bg, err := classify.ClassifyWith(bigTrainer, bigClient, sample, rand.Reader)
		if err != nil {
			t.Fatalf("big sample %d: %v", i, err)
		}
		if lg != bg {
			t.Fatalf("sample %d: limb label %d, big label %d", i, lg, bg)
		}
	}
}

// TestLimbFastBatchOverX25519 exercises the full fast-session stack on the
// target production configuration: limb field backend + X25519 base OT.
func TestLimbFastBatchOverX25519(t *testing.T) {
	model, test := trainSmall(t, svm.Linear(), 1)
	p := limbParams()
	p.Group = ot.X25519()
	trainer, err := classify.NewTrainer(model, p)
	if err != nil {
		t.Fatal(err)
	}

	spec := trainer.SessionSpec(field.BackendLimb)
	fc, setup, err := classify.NewFastClient(spec, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ft, choice, err := trainer.NewFastSessionFor(spec, setup, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := fc.FinishBase(choice, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.FinishBase(tr); err != nil {
		t.Fatal(err)
	}

	samples := make([][]float64, 0, 8)
	want := make([]int, 0, 8)
	for _, sample := range test.X {
		d, err := model.Decision(sample)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d) < 1e-6 {
			continue
		}
		label := 1
		if d < 0 {
			label = -1
		}
		samples = append(samples, sample)
		want = append(want, label)
		if len(samples) == 8 {
			break
		}
	}
	got, err := classify.ClassifyFastBatch(ft, fc, samples, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: batch label %d, plaintext %d", i, got[i], want[i])
		}
	}
}
