package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/big"
	"time"

	"repro/internal/classify"
	"repro/internal/entropy"
	"repro/internal/obs"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/svm"
)

// ClassifyClient drives the classification protocol over a connection.
type ClassifyClient struct {
	conn   *Conn
	client *classify.Client
	rand   io.Reader
}

// WireCodec reports the envelope codec negotiated for this session
// (CodecBinary or CodecGob).
func (c *ClassifyClient) WireCodec() string { return c.conn.Codec() }

// DialClassify connects to a trainer server over TCP and performs the
// handshake, retrying the dial with the default backoff policy.
func DialClassify(addr string, timeout time.Duration, rng io.Reader) (*ClassifyClient, error) {
	return DialClassifyContext(context.Background(), addr, Options{DialTimeout: timeout}, rng)
}

// DialClassifyContext dials with retry/backoff per opts and performs the
// handshake under ctx.
func DialClassifyContext(ctx context.Context, addr string, opts Options, rng io.Reader) (*ClassifyClient, error) {
	nc, err := dialRetry(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	cc, err := NewClassifyClientContext(ctx, nc, opts, rng)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	return cc, nil
}

// NewClassifyClient performs the handshake on an established stream with
// default options.
func NewClassifyClient(rw io.ReadWriteCloser, rng io.Reader) (*ClassifyClient, error) {
	return NewClassifyClientContext(context.Background(), rw, Options{}, rng)
}

// NewClassifyClientContext performs the handshake on an established
// stream, bounding each message by opts.MessageDeadline and the whole
// handshake by ctx.
func NewClassifyClientContext(ctx context.Context, rw io.ReadWriteCloser, opts Options, rng io.Reader) (*ClassifyClient, error) {
	rng = entropy.Buffered(rng)
	conn := newConnRole(rw, roleClient)
	conn.SetMessageDeadline(opts.messageDeadline())
	var client *classify.Client
	offered := opts.offeredCodecs()
	pads := opts.offeredPads()
	err := conn.RunContext(ctx, func() error {
		if err := conn.Send(&Hello{Service: "classify", FieldBackend: opts.requestedBackend(), WireCodecs: offered, PadFuncs: pads}); err != nil {
			return err
		}
		spec, err := Recv[*classify.Spec](conn)
		if err != nil {
			return err
		}
		if err := validateGrant(spec.WireCodec, offered); err != nil {
			return err
		}
		if err := validatePadGrant(spec.PadFunc, pads); err != nil {
			return err
		}
		if err := conn.UseCodec(spec.WireCodec); err != nil {
			return err
		}
		client, err = classify.NewClient(*spec)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &ClassifyClient{conn: conn, client: client, rand: rng}, nil
}

// Spec returns the trainer's published protocol contract.
func (c *ClassifyClient) Spec() classify.Spec { return c.client.Spec() }

// Classify runs one private classification round trip.
func (c *ClassifyClient) Classify(sample []float64) (int, error) {
	return c.ClassifyContext(context.Background(), sample)
}

// ClassifyContext runs one private classification round trip, abandoning
// the session if ctx is canceled mid-exchange.
func (c *ClassifyClient) ClassifyContext(ctx context.Context, sample []float64) (int, error) {
	span := obs.Start(obs.PhaseClassifyRoundTrip)
	receiver, req, err := c.client.NewSession(sample, c.rand)
	if err != nil {
		return 0, err
	}
	var result *big.Int
	err = c.conn.RunContext(ctx, func() error {
		if err := c.conn.Send(req); err != nil {
			return err
		}
		setup, err := Recv[*batchSetup](c.conn)
		if err != nil {
			return err
		}
		choice, err := receiver.HandleSetup(setup, c.rand)
		if err != nil {
			return err
		}
		if err := c.conn.Send(choice); err != nil {
			return err
		}
		tr, err := Recv[*batchTransfer](c.conn)
		if err != nil {
			return err
		}
		result, err = receiver.Finish(tr)
		return err
	})
	if err != nil {
		return 0, err
	}
	label, err := c.client.Interpret(result)
	if err != nil {
		return 0, err
	}
	span.End()
	obs.Add(obs.CtrClassifyQueries, 1)
	return label, nil
}

// Close ends the session cleanly.
func (c *ClassifyClient) Close() error {
	_ = c.conn.Send(&Done{})
	return c.conn.Close()
}

// EvaluateSimilarity runs a full linear similarity evaluation as Bob
// against a server hosting model A, using Bob's own model (wB, bB).
func EvaluateSimilarity(rw io.ReadWriteCloser, wB []float64, bB float64, rng io.Reader) (*similarity.Result, error) {
	return EvaluateSimilarityContext(context.Background(), rw, wB, bB, Options{}, rng)
}

// EvaluateSimilarityContext is EvaluateSimilarity with per-message
// deadlines from opts and cancellation via ctx.
func EvaluateSimilarityContext(ctx context.Context, rw io.ReadWriteCloser, wB []float64, bB float64, opts Options, rng io.Reader) (*similarity.Result, error) {
	rng = entropy.Buffered(rng)
	conn := newConnRole(rw, roleClient)
	conn.SetMessageDeadline(opts.messageDeadline())
	defer func() { _ = conn.Close() }()
	var out *similarity.Result
	offered := opts.offeredCodecs()
	err := conn.RunContext(ctx, func() error {
		if err := conn.Send(&Hello{Service: "similarity-linear", WireCodecs: offered}); err != nil {
			return err
		}
		spec, err := Recv[*similarity.Spec](conn)
		if err != nil {
			return err
		}
		if err := validateGrant(spec.WireCodec, offered); err != nil {
			return err
		}
		if err := conn.UseCodec(spec.WireCodec); err != nil {
			return err
		}
		bob, err := similarity.NewBob(*spec, wB, bB)
		if err != nil {
			return err
		}
		if err := conn.Send(bob.ClearShare()); err != nil {
			return err
		}
		rounds := []similarity.Round{similarity.RoundCentroid, similarity.RoundNormal, similarity.RoundArea}
		out, err = runBobRounds(conn, rounds, bob.StartRound, bob.HandleSetup, bob.FinishRound, rng)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runBobRounds drives Bob's per-round OMPE exchange for both the linear
// and kernelized similarity protocols; the final round yields the result.
func runBobRounds(
	conn *Conn,
	rounds []similarity.Round,
	start func(similarity.Round, io.Reader) (*evalRequest, error),
	handle func(similarity.Round, *batchSetup, io.Reader) (*batchChoice, error),
	finish func(similarity.Round, *batchTransfer) (*similarity.Result, error),
	rng io.Reader,
) (*similarity.Result, error) {
	for _, round := range rounds {
		if err := conn.Send(&RoundHeader{Round: round}); err != nil {
			return nil, err
		}
		req, err := start(round, rng)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(req); err != nil {
			return nil, err
		}
		setup, err := Recv[*batchSetup](conn)
		if err != nil {
			return nil, err
		}
		choice, err := handle(round, setup, rng)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(choice); err != nil {
			return nil, err
		}
		tr, err := Recv[*batchTransfer](conn)
		if err != nil {
			return nil, err
		}
		result, err := finish(round, tr)
		if err != nil {
			return nil, err
		}
		if round == similarity.RoundArea {
			return result, nil
		}
	}
	return nil, fmt.Errorf("transport: similarity protocol did not complete")
}

// EvaluateKernelSimilarity runs a full kernelized similarity evaluation
// as Bob against a server hosting a polynomial-kernel model, using Bob's
// own model.
func EvaluateKernelSimilarity(rw io.ReadWriteCloser, modelB *svm.Model, rng io.Reader) (*similarity.Result, error) {
	return EvaluateKernelSimilarityContext(context.Background(), rw, modelB, Options{}, rng)
}

// EvaluateKernelSimilarityContext is EvaluateKernelSimilarity with
// per-message deadlines from opts and cancellation via ctx.
func EvaluateKernelSimilarityContext(ctx context.Context, rw io.ReadWriteCloser, modelB *svm.Model, opts Options, rng io.Reader) (*similarity.Result, error) {
	rng = entropy.Buffered(rng)
	conn := newConnRole(rw, roleClient)
	conn.SetMessageDeadline(opts.messageDeadline())
	defer func() { _ = conn.Close() }()
	var out *similarity.Result
	offered := opts.offeredCodecs()
	err := conn.RunContext(ctx, func() error {
		if err := conn.Send(&Hello{Service: "similarity-kernel", WireCodecs: offered}); err != nil {
			return err
		}
		spec, err := Recv[*similarity.KernelSpec](conn)
		if err != nil {
			return err
		}
		if err := validateGrant(spec.WireCodec, offered); err != nil {
			return err
		}
		if err := conn.UseCodec(spec.WireCodec); err != nil {
			return err
		}
		bob, err := similarity.NewKernelBob(*spec, modelB)
		if err != nil {
			return err
		}
		if err := conn.Send(bob.ClearShare()); err != nil {
			return err
		}
		scale, err := Recv[*similarity.AreaScale](conn)
		if err != nil {
			return err
		}
		if err := bob.SetAreaScale(scale); err != nil {
			return err
		}
		rounds := []similarity.Round{similarity.RoundCentroid}
		for t := 0; t < len(modelB.SupportVectors); t++ {
			rounds = append(rounds, similarity.RoundNormal)
		}
		rounds = append(rounds, similarity.RoundArea)
		out, err = runBobRounds(conn, rounds, bob.StartRound, bob.HandleSetup, bob.FinishRound, rng)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DialSimilarity runs a similarity evaluation against a TCP server,
// retrying the dial with the default backoff policy.
func DialSimilarity(addr string, wB []float64, bB float64, timeout time.Duration, rng io.Reader) (*similarity.Result, error) {
	return DialSimilarityContext(context.Background(), addr, wB, bB, Options{DialTimeout: timeout}, rng)
}

// DialSimilarityContext dials with retry/backoff per opts and runs the
// evaluation under ctx.
func DialSimilarityContext(ctx context.Context, addr string, wB []float64, bB float64, opts Options, rng io.Reader) (*similarity.Result, error) {
	nc, err := dialRetry(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	return EvaluateSimilarityContext(ctx, nc, wB, bB, opts, rng)
}

// FastClassifyClient drives the IKNP fast classification session over a
// connection: one base phase at dial time, then two messages per query.
type FastClassifyClient struct {
	conn    *Conn
	session *classify.FastClient
	rand    io.Reader

	// resumeOffered records that the Hello asked for a ticket; Close then
	// waits for the server's SessionTicket answer to its Done.
	resumeOffered bool
	// resumed reports whether this session skipped the base phase.
	resumed bool
	// specSum digests the negotiated contract (for the next ticket).
	specSum []byte
	// resumeState is the harvested state after a clean Close.
	resumeState *ResumeState
}

// Resumed reports whether this session restored a ticket and skipped the
// base OT phase.
func (c *FastClassifyClient) Resumed() bool { return c.resumed }

// ResumeState returns the resumption state harvested at Close (nil when
// no ticket was offered, granted by the server, or delivered). The state
// is single-use: present it on exactly one redial.
func (c *FastClassifyClient) ResumeState() *ResumeState { return c.resumeState }

// WireCodec reports the envelope codec negotiated for this session
// (CodecBinary or CodecGob).
func (c *FastClassifyClient) WireCodec() string { return c.conn.Codec() }

// Spec reports the negotiated session spec, including the granted OT pad
// function ("" means the legacy SHA-256 pad).
func (c *FastClassifyClient) Spec() classify.Spec { return c.session.Spec() }

// NewFastClassifyClient performs the handshake and base phase on an
// established stream with default options.
func NewFastClassifyClient(rw io.ReadWriteCloser, rng io.Reader) (*FastClassifyClient, error) {
	return NewFastClassifyClientContext(context.Background(), rw, Options{}, rng)
}

// NewFastClassifyClientContext performs the handshake and base phase on
// an established stream under ctx and opts.
func NewFastClassifyClientContext(ctx context.Context, rw io.ReadWriteCloser, opts Options, rng io.Reader) (*FastClassifyClient, error) {
	rng = entropy.Buffered(rng)
	conn := newConnRole(rw, roleClient)
	conn.SetMessageDeadline(opts.messageDeadline())
	var session *classify.FastClient
	offered := opts.offeredCodecs()
	pads := opts.offeredPads()
	offerResume := opts.OfferResume || opts.Resume != nil
	var specSum []byte
	resumed := false
	start := time.Now()
	err := conn.RunContext(ctx, func() error {
		hello := &Hello{Service: "classify-fast", FieldBackend: opts.requestedBackend(), WireCodecs: offered, PadFuncs: pads, ResumeOffered: offerResume}
		if opts.Resume != nil {
			hello.ResumeTicket = opts.Resume.Ticket
		}
		if err := conn.Send(hello); err != nil {
			return err
		}
		spec, err := Recv[*classify.Spec](conn)
		if err != nil {
			return err
		}
		if err := validateGrant(spec.WireCodec, offered); err != nil {
			return err
		}
		if err := validatePadGrant(spec.PadFunc, pads); err != nil {
			return err
		}
		if err := conn.UseCodec(spec.WireCodec); err != nil {
			return err
		}
		specSum = specResumeSum(*spec)
		if spec.ResumeGranted {
			if opts.Resume == nil {
				return fmt.Errorf("%w: server granted resumption that was never offered", ErrResume)
			}
			if !bytes.Equal(specSum, opts.Resume.SpecSum) {
				return fmt.Errorf("%w: granted contract diverges from the ticket's", ErrResume)
			}
			session, err = classify.ResumeFastClient(*spec, opts.Resume.Receiver)
			if err != nil {
				return err
			}
			resumed = true
			return nil
		}
		var setup *ot.IKNPBaseSetup
		session, setup, err = classify.NewFastClient(*spec, rng)
		if err != nil {
			return err
		}
		if err := conn.Send(setup); err != nil {
			return err
		}
		choice, err := Recv[*ot.IKNPBaseChoice](conn)
		if err != nil {
			return err
		}
		baseTr, err := session.FinishBase(choice, rng)
		if err != nil {
			return err
		}
		return conn.Send(baseTr)
	})
	if err != nil {
		return nil, err
	}
	if resumed {
		obs.Observe(obs.PhaseHandshakeResumed, time.Since(start).Nanoseconds())
	} else {
		obs.Observe(obs.PhaseHandshakeFull, time.Since(start).Nanoseconds())
	}
	return &FastClassifyClient{conn: conn, session: session, rand: rng, resumeOffered: offerResume, resumed: resumed, specSum: specSum}, nil
}

// DialClassifyFast connects over TCP and runs the base phase, retrying
// the dial with the default backoff policy.
func DialClassifyFast(addr string, timeout time.Duration, rng io.Reader) (*FastClassifyClient, error) {
	return DialClassifyFastContext(context.Background(), addr, Options{DialTimeout: timeout}, rng)
}

// DialClassifyFastContext dials with retry/backoff per opts and runs the
// base phase under ctx.
func DialClassifyFastContext(ctx context.Context, addr string, opts Options, rng io.Reader) (*FastClassifyClient, error) {
	nc, err := dialRetry(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	fc, err := NewFastClassifyClientContext(ctx, nc, opts, rng)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	return fc, nil
}

// Classify runs one two-message fast query.
func (c *FastClassifyClient) Classify(sample []float64) (int, error) {
	return c.ClassifyContext(context.Background(), sample)
}

// ClassifyContext runs one two-message fast query under ctx.
func (c *FastClassifyClient) ClassifyContext(ctx context.Context, sample []float64) (int, error) {
	span := obs.Start(obs.PhaseClassifyRoundTrip)
	query, req, err := c.session.NewQuery(sample, c.rand)
	if err != nil {
		return 0, err
	}
	var resp *ompe.FastResponse
	err = c.conn.RunContext(ctx, func() error {
		if err := c.conn.Send(req); err != nil {
			return err
		}
		resp, err = Recv[*ompe.FastResponse](c.conn)
		return err
	})
	if err != nil {
		return 0, err
	}
	label, err := query.Finish(resp)
	if err != nil {
		return 0, err
	}
	span.End()
	obs.Add(obs.CtrClassifyQueries, 1)
	return label, nil
}

// Close ends the session cleanly. When the session offered resumption,
// Close waits for the server's ticket answer to the Done and harvests the
// ResumeState; a legacy server just closes, which reads as "no ticket".
func (c *FastClassifyClient) Close() error {
	err := c.conn.Send(&Done{})
	if err == nil && c.resumeOffered {
		if ticket, terr := Recv[*SessionTicket](c.conn); terr == nil && len(ticket.Ticket) > 0 {
			if st, serr := c.session.Snapshot(); serr == nil {
				c.resumeState = &ResumeState{
					Ticket:   ticket.Ticket,
					Receiver: st,
					SpecSum:  c.specSum,
					Service:  "classify-fast",
				}
			}
		}
	}
	return c.conn.Close()
}

// DialKernelSimilarity runs a kernelized similarity evaluation against a
// TCP server, retrying the dial with the default backoff policy.
func DialKernelSimilarity(addr string, modelB *svm.Model, timeout time.Duration, rng io.Reader) (*similarity.Result, error) {
	return DialKernelSimilarityContext(context.Background(), addr, modelB, Options{DialTimeout: timeout}, rng)
}

// DialKernelSimilarityContext dials with retry/backoff per opts and runs
// the evaluation under ctx.
func DialKernelSimilarityContext(ctx context.Context, addr string, modelB *svm.Model, opts Options, rng io.Reader) (*similarity.Result, error) {
	nc, err := dialRetry(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	return EvaluateKernelSimilarityContext(ctx, nc, modelB, opts, rng)
}

// ClassifyBatch runs B one-shot classifications in a single four-message
// exchange (amortizing round trips; the per-sample crypto is unchanged).
func (c *ClassifyClient) ClassifyBatch(samples [][]float64) ([]int, error) {
	return c.ClassifyBatchContext(context.Background(), samples)
}

// ClassifyBatchContext is ClassifyBatch under ctx.
func (c *ClassifyClient) ClassifyBatchContext(ctx context.Context, samples [][]float64) ([]int, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("transport: empty batch")
	}
	span := obs.Start(obs.PhaseClassifyBatch)
	receivers := make([]*ompe.Receiver, len(samples))
	req := &ClassifyBatchRequest{Evals: make([]*ompe.EvalRequest, len(samples))}
	for i, sample := range samples {
		receiver, eval, err := c.client.NewSession(sample, c.rand)
		if err != nil {
			return nil, fmt.Errorf("transport: batch sample %d: %w", i, err)
		}
		receivers[i] = receiver
		req.Evals[i] = eval
	}
	results := make([]*big.Int, len(samples))
	err := c.conn.RunContext(ctx, func() error {
		if err := c.conn.Send(req); err != nil {
			return err
		}
		setups, err := Recv[*ClassifyBatchSetups](c.conn)
		if err != nil {
			return err
		}
		if len(setups.Setups) != len(samples) {
			return fmt.Errorf("transport: %d setups for %d samples", len(setups.Setups), len(samples))
		}
		choices := &ClassifyBatchChoices{Choices: make([]*batchChoice, len(samples))}
		for i, setup := range setups.Setups {
			choice, err := receivers[i].HandleSetup(setup, c.rand)
			if err != nil {
				return err
			}
			choices.Choices[i] = choice
		}
		if err := c.conn.Send(choices); err != nil {
			return err
		}
		transfers, err := Recv[*ClassifyBatchTransfers](c.conn)
		if err != nil {
			return err
		}
		if len(transfers.Transfers) != len(samples) {
			return fmt.Errorf("transport: %d transfers for %d samples", len(transfers.Transfers), len(samples))
		}
		for i, tr := range transfers.Transfers {
			results[i], err = receivers[i].Finish(tr)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(results))
	for i, result := range results {
		label, err := c.client.Interpret(result)
		if err != nil {
			return nil, err
		}
		labels[i] = label
	}
	span.End()
	obs.Add(obs.CtrClassifyBatches, 1)
	obs.Add(obs.CtrClassifyQueries, int64(len(samples)))
	obs.Observe(obs.HistBatchSize, int64(len(samples)))
	return labels, nil
}

// ClassifyBatch runs B fast-path classifications in one message pair: all
// B samples' choice bits ride a single OT-extension round.
func (c *FastClassifyClient) ClassifyBatch(samples [][]float64) ([]int, error) {
	return c.ClassifyBatchContext(context.Background(), samples)
}

// ClassifyBatchContext is ClassifyBatch under ctx.
func (c *FastClassifyClient) ClassifyBatchContext(ctx context.Context, samples [][]float64) ([]int, error) {
	span := obs.Start(obs.PhaseClassifyBatch)
	batch, req, err := c.session.NewBatch(samples, c.rand)
	if err != nil {
		return nil, err
	}
	var resp *ompe.FastBatchResponse
	err = c.conn.RunContext(ctx, func() error {
		if err := c.conn.Send(req); err != nil {
			return err
		}
		resp, err = Recv[*ompe.FastBatchResponse](c.conn)
		return err
	})
	if err != nil {
		return nil, err
	}
	labels, err := batch.Finish(resp)
	if err != nil {
		return nil, err
	}
	span.End()
	obs.Add(obs.CtrClassifyBatches, 1)
	obs.Add(obs.CtrClassifyQueries, int64(len(samples)))
	obs.Observe(obs.HistBatchSize, int64(len(samples)))
	return labels, nil
}

// ClassifyPipelined classifies all samples in batches of batchSize while
// keeping up to inflight batches outstanding on the connection. Requests
// are tagged with stream IDs; the server answers them in order (its
// session worker is single-threaded), so the window advances one response
// at a time while later batches are already on the wire — the round-trip
// latency of a batch overlaps the server's crypto for its predecessors.
func (c *FastClassifyClient) ClassifyPipelined(ctx context.Context, samples [][]float64, batchSize, inflight int) ([]int, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("transport: empty batch")
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if inflight < 1 {
		inflight = 1
	}
	numBatches := (len(samples) + batchSize - 1) / batchSize
	labels := make([]int, 0, len(samples))
	err := c.conn.RunContext(ctx, func() error {
		type openBatch struct {
			batch  *classify.FastBatch
			stream uint32
			span   obs.Span
		}
		var open []openBatch
		next := 0
		for recvd := 0; recvd < numBatches; recvd++ {
			for next < numBatches && len(open) < inflight {
				lo := next * batchSize
				hi := lo + batchSize
				if hi > len(samples) {
					hi = len(samples)
				}
				span := obs.Start(obs.PhaseClassifyBatch)
				batch, req, err := c.session.NewBatch(samples[lo:hi], c.rand)
				if err != nil {
					return err
				}
				stream := uint32(next + 1)
				if err := c.conn.SendStream(stream, req); err != nil {
					return err
				}
				open = append(open, openBatch{batch: batch, stream: stream, span: span})
				next++
				obs.Observe(obs.HistInflightDepth, int64(len(open)))
			}
			payload, stream, err := c.conn.recvStreamAny()
			if err != nil {
				return err
			}
			resp, ok := payload.(*ompe.FastBatchResponse)
			if !ok {
				return fmt.Errorf("transport: unexpected message %T, want %T", payload, resp)
			}
			if stream != open[0].stream {
				return fmt.Errorf("transport: response for stream %d, want %d", stream, open[0].stream)
			}
			part, err := open[0].batch.Finish(resp)
			if err != nil {
				return err
			}
			open[0].span.End()
			open = open[1:]
			labels = append(labels, part...)
			obs.Add(obs.CtrClassifyBatches, 1)
			obs.Add(obs.CtrClassifyQueries, int64(len(part)))
			obs.Observe(obs.HistBatchSize, int64(len(part)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}
