package transport

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/classify"
	"repro/internal/ompe"
	"repro/internal/ot"
	"repro/internal/similarity"
	"repro/internal/svm"
)

// ClassifyClient drives the classification protocol over a connection.
type ClassifyClient struct {
	conn   *Conn
	client *classify.Client
	rand   io.Reader
}

// DialClassify connects to a trainer server over TCP and performs the
// handshake.
func DialClassify(addr string, timeout time.Duration, rng io.Reader) (*ClassifyClient, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	cc, err := NewClassifyClient(nc, rng)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	return cc, nil
}

// NewClassifyClient performs the handshake on an established stream.
func NewClassifyClient(rw io.ReadWriteCloser, rng io.Reader) (*ClassifyClient, error) {
	conn := NewConn(rw)
	conn.SetMessageDeadline(2 * time.Minute)
	if err := conn.Send(&Hello{Service: "classify"}); err != nil {
		return nil, err
	}
	spec, err := Recv[*classify.Spec](conn)
	if err != nil {
		return nil, err
	}
	client, err := classify.NewClient(*spec)
	if err != nil {
		return nil, err
	}
	return &ClassifyClient{conn: conn, client: client, rand: rng}, nil
}

// Spec returns the trainer's published protocol contract.
func (c *ClassifyClient) Spec() classify.Spec { return c.client.Spec() }

// Classify runs one private classification round trip.
func (c *ClassifyClient) Classify(sample []float64) (int, error) {
	receiver, req, err := c.client.NewSession(sample, c.rand)
	if err != nil {
		return 0, err
	}
	if err := c.conn.Send(req); err != nil {
		return 0, err
	}
	setup, err := Recv[*batchSetup](c.conn)
	if err != nil {
		return 0, err
	}
	choice, err := receiver.HandleSetup(setup, c.rand)
	if err != nil {
		return 0, err
	}
	if err := c.conn.Send(choice); err != nil {
		return 0, err
	}
	tr, err := Recv[*batchTransfer](c.conn)
	if err != nil {
		return 0, err
	}
	result, err := receiver.Finish(tr)
	if err != nil {
		return 0, err
	}
	return c.client.Interpret(result)
}

// Close ends the session cleanly.
func (c *ClassifyClient) Close() error {
	_ = c.conn.Send(&Done{})
	return c.conn.Close()
}

// EvaluateSimilarity runs a full linear similarity evaluation as Bob
// against a server hosting model A, using Bob's own model (wB, bB).
func EvaluateSimilarity(rw io.ReadWriteCloser, wB []float64, bB float64, rng io.Reader) (*similarity.Result, error) {
	conn := NewConn(rw)
	conn.SetMessageDeadline(2 * time.Minute)
	defer func() { _ = conn.Close() }()
	if err := conn.Send(&Hello{Service: "similarity-linear"}); err != nil {
		return nil, err
	}
	spec, err := Recv[*similarity.Spec](conn)
	if err != nil {
		return nil, err
	}
	bob, err := similarity.NewBob(*spec, wB, bB)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(bob.ClearShare()); err != nil {
		return nil, err
	}
	for _, round := range []similarity.Round{similarity.RoundCentroid, similarity.RoundNormal, similarity.RoundArea} {
		if err := conn.Send(&RoundHeader{Round: round}); err != nil {
			return nil, err
		}
		req, err := bob.StartRound(round, rng)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(req); err != nil {
			return nil, err
		}
		setup, err := Recv[*batchSetup](conn)
		if err != nil {
			return nil, err
		}
		choice, err := bob.HandleSetup(round, setup, rng)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(choice); err != nil {
			return nil, err
		}
		tr, err := Recv[*batchTransfer](conn)
		if err != nil {
			return nil, err
		}
		result, err := bob.FinishRound(round, tr)
		if err != nil {
			return nil, err
		}
		if round == similarity.RoundArea {
			return result, nil
		}
	}
	return nil, fmt.Errorf("transport: similarity protocol did not complete")
}

// EvaluateKernelSimilarity runs a full kernelized similarity evaluation
// as Bob against a server hosting a polynomial-kernel model, using Bob's
// own model.
func EvaluateKernelSimilarity(rw io.ReadWriteCloser, modelB *svm.Model, rng io.Reader) (*similarity.Result, error) {
	conn := NewConn(rw)
	conn.SetMessageDeadline(2 * time.Minute)
	defer func() { _ = conn.Close() }()
	if err := conn.Send(&Hello{Service: "similarity-kernel"}); err != nil {
		return nil, err
	}
	spec, err := Recv[*similarity.KernelSpec](conn)
	if err != nil {
		return nil, err
	}
	bob, err := similarity.NewKernelBob(*spec, modelB)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(bob.ClearShare()); err != nil {
		return nil, err
	}
	scale, err := Recv[*similarity.AreaScale](conn)
	if err != nil {
		return nil, err
	}
	if err := bob.SetAreaScale(scale); err != nil {
		return nil, err
	}
	rounds := []similarity.Round{similarity.RoundCentroid}
	for t := 0; t < len(modelB.SupportVectors); t++ {
		rounds = append(rounds, similarity.RoundNormal)
	}
	rounds = append(rounds, similarity.RoundArea)
	for _, round := range rounds {
		if err := conn.Send(&RoundHeader{Round: round}); err != nil {
			return nil, err
		}
		req, err := bob.StartRound(round, rng)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(req); err != nil {
			return nil, err
		}
		setup, err := Recv[*batchSetup](conn)
		if err != nil {
			return nil, err
		}
		choice, err := bob.HandleSetup(round, setup, rng)
		if err != nil {
			return nil, err
		}
		if err := conn.Send(choice); err != nil {
			return nil, err
		}
		tr, err := Recv[*batchTransfer](conn)
		if err != nil {
			return nil, err
		}
		result, err := bob.FinishRound(round, tr)
		if err != nil {
			return nil, err
		}
		if round == similarity.RoundArea {
			return result, nil
		}
	}
	return nil, fmt.Errorf("transport: kernel similarity protocol did not complete")
}

// DialSimilarity runs a similarity evaluation against a TCP server.
func DialSimilarity(addr string, wB []float64, bB float64, timeout time.Duration, rng io.Reader) (*similarity.Result, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return EvaluateSimilarity(nc, wB, bB, rng)
}

// FastClassifyClient drives the IKNP fast classification session over a
// connection: one base phase at dial time, then two messages per query.
type FastClassifyClient struct {
	conn    *Conn
	session *classify.FastClient
	rand    io.Reader
}

// NewFastClassifyClient performs the handshake and base phase on an
// established stream.
func NewFastClassifyClient(rw io.ReadWriteCloser, rng io.Reader) (*FastClassifyClient, error) {
	conn := NewConn(rw)
	conn.SetMessageDeadline(2 * time.Minute)
	if err := conn.Send(&Hello{Service: "classify-fast"}); err != nil {
		return nil, err
	}
	spec, err := Recv[*classify.Spec](conn)
	if err != nil {
		return nil, err
	}
	session, setup, err := classify.NewFastClient(*spec, rng)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(setup); err != nil {
		return nil, err
	}
	choice, err := Recv[*ot.IKNPBaseChoice](conn)
	if err != nil {
		return nil, err
	}
	baseTr, err := session.FinishBase(choice, rng)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(baseTr); err != nil {
		return nil, err
	}
	return &FastClassifyClient{conn: conn, session: session, rand: rng}, nil
}

// DialClassifyFast connects over TCP and runs the base phase.
func DialClassifyFast(addr string, timeout time.Duration, rng io.Reader) (*FastClassifyClient, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	fc, err := NewFastClassifyClient(nc, rng)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	return fc, nil
}

// Classify runs one two-message fast query.
func (c *FastClassifyClient) Classify(sample []float64) (int, error) {
	query, req, err := c.session.NewQuery(sample, c.rand)
	if err != nil {
		return 0, err
	}
	if err := c.conn.Send(req); err != nil {
		return 0, err
	}
	resp, err := Recv[*ompe.FastResponse](c.conn)
	if err != nil {
		return 0, err
	}
	return query.Finish(resp)
}

// Close ends the session cleanly.
func (c *FastClassifyClient) Close() error {
	_ = c.conn.Send(&Done{})
	return c.conn.Close()
}

// DialKernelSimilarity runs a kernelized similarity evaluation against a
// TCP server.
func DialKernelSimilarity(addr string, modelB *svm.Model, timeout time.Duration, rng io.Reader) (*similarity.Result, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return EvaluateKernelSimilarity(nc, modelB, rng)
}
