package transport_test

// Session-resumption negotiation, end to end: the offer/grant matrix
// over real sessions, ticket chains across redials, silent fallback for
// stale/tampered/replayed tickets, refusal of rogue grants with the
// typed ErrResume, and legacy interop. Ticketer-level lifecycle tests
// (expiry clock, replay ledger) live in resume_internal_test.go.

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/ot"
	"repro/internal/transport"
)

// resumeHarness owns one server instance and dials fresh in-memory
// sessions against it, so tickets minted in one session can be presented
// in the next (same process, same mint).
type resumeHarness struct {
	t       *testing.T
	trainer *classify.Trainer
	srv     *transport.Server
	samples [][]float64
	want    []int
}

func newResumeHarness(t *testing.T, seed uint64) *resumeHarness {
	t.Helper()
	model, test := trainLinear(t, seed)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	samples := test.X[:4]
	return &resumeHarness{
		t:       t,
		trainer: trainer,
		srv:     quietServer(t, trainer),
		samples: samples,
		want:    localReference(t, trainer, samples),
	}
}

// session runs one full query+close cycle with the given options and
// returns the client for post-close inspection (Resumed, ResumeState).
func (h *resumeHarness) session(opts transport.Options, rngSeed string) *transport.FastClassifyClient {
	h.t.Helper()
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.srv.ServeConn(serverSide)
	}()
	fc, err := transport.NewFastClassifyClientContext(h.t.Context(), clientSide, opts, newDetReader(rngSeed))
	if err != nil {
		h.t.Fatal(err)
	}
	got, err := fc.ClassifyBatch(h.samples)
	if err != nil {
		h.t.Fatal(err)
	}
	checkLabels(h.t, got, h.want, "resume session "+rngSeed)
	if err := fc.Close(); err != nil {
		h.t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		h.t.Fatal("server session did not end")
	}
	return fc
}

// TestResumeTicketChain drives the happy path across three dials: full
// handshake with an offer, then two resumed sessions each presenting the
// previous session's ticket. Correct labels on every hop prove the
// restored OT state stayed in lockstep; distinct tickets prove each
// clean close re-arms the chain.
func TestResumeTicketChain(t *testing.T) {
	h := newResumeHarness(t, 61)

	first := h.session(transport.Options{OfferResume: true}, "resume-chain-1")
	if first.Resumed() {
		t.Fatal("first session cannot be resumed")
	}
	st1 := first.ResumeState()
	if st1 == nil || len(st1.Ticket) == 0 || st1.Receiver == nil {
		t.Fatalf("no resume state harvested at clean close: %+v", st1)
	}

	second := h.session(transport.Options{Resume: st1}, "resume-chain-2")
	if !second.Resumed() {
		t.Fatal("second session did not resume")
	}
	st2 := second.ResumeState()
	if st2 == nil || len(st2.Ticket) == 0 {
		t.Fatal("resumed session did not re-arm the ticket chain")
	}
	if bytes.Equal(st1.Ticket, st2.Ticket) {
		t.Fatal("second ticket identical to the first (single-use discipline broken)")
	}
	// Counter monotonicity across the chain: the re-harvested receiver
	// state must be strictly past the first snapshot.
	if st2.Receiver.Batch <= st1.Receiver.Batch {
		t.Fatalf("receiver batch counter went %d -> %d; must be strictly monotonic", st1.Receiver.Batch, st2.Receiver.Batch)
	}

	third := h.session(transport.Options{Resume: st2}, "resume-chain-3")
	if !third.Resumed() {
		t.Fatal("third session did not resume")
	}
}

// TestResumeNegotiationMatrix covers the decline quadrants: no offer
// yields no ticket, an offer against a resumption-disabled server yields
// no ticket, and a ticket presented to a disabled server falls back to a
// full handshake instead of failing.
func TestResumeNegotiationMatrix(t *testing.T) {
	t.Run("no offer, no ticket", func(t *testing.T) {
		h := newResumeHarness(t, 62)
		fc := h.session(transport.Options{}, "resume-matrix-none")
		if fc.ResumeState() != nil {
			t.Fatal("un-offered session harvested a ticket")
		}
	})
	t.Run("offer against disabled server", func(t *testing.T) {
		h := newResumeHarness(t, 63)
		h.srv.DisableResume = true
		fc := h.session(transport.Options{OfferResume: true}, "resume-matrix-disabled")
		if fc.ResumeState() != nil {
			t.Fatal("disabled server minted a ticket")
		}
	})
	t.Run("ticket against disabled server", func(t *testing.T) {
		h := newResumeHarness(t, 64)
		first := h.session(transport.Options{OfferResume: true}, "resume-matrix-predisable")
		st := first.ResumeState()
		if st == nil {
			t.Fatal("no ticket to present")
		}
		h.srv.DisableResume = true
		second := h.session(transport.Options{Resume: st}, "resume-matrix-postdisable")
		if second.Resumed() {
			t.Fatal("disabled server resumed a session")
		}
	})
}

// TestResumeStaleTicketsFallBack: tampered and replayed tickets are
// silently declined into working full handshakes — a client holding a
// stale ticket did nothing wrong and must not see an error.
func TestResumeStaleTicketsFallBack(t *testing.T) {
	t.Run("tampered", func(t *testing.T) {
		h := newResumeHarness(t, 65)
		first := h.session(transport.Options{OfferResume: true}, "resume-stale-mint")
		st := first.ResumeState()
		if st == nil {
			t.Fatal("no ticket harvested")
		}
		bad := *st
		bad.Ticket = append([]byte(nil), st.Ticket...)
		bad.Ticket[len(bad.Ticket)-1] ^= 0x01
		second := h.session(transport.Options{Resume: &bad}, "resume-stale-tampered")
		if second.Resumed() {
			t.Fatal("tampered ticket resumed")
		}
	})
	t.Run("replayed", func(t *testing.T) {
		h := newResumeHarness(t, 66)
		first := h.session(transport.Options{OfferResume: true}, "resume-replay-mint")
		st := first.ResumeState()
		if st == nil {
			t.Fatal("no ticket harvested")
		}
		second := h.session(transport.Options{Resume: st}, "resume-replay-use")
		if !second.Resumed() {
			t.Fatal("first presentation did not resume")
		}
		// Same ticket again: the server's replay ledger declines it and
		// the session completes on a fresh base phase.
		third := h.session(transport.Options{Resume: st}, "resume-replay-again")
		if third.Resumed() {
			t.Fatal("replayed ticket resumed — pad reuse would follow")
		}
	})
}

// TestResumeGrantRefusedWhenUnoffered hand-rolls a misbehaving server
// that grants resumption to a client that never offered it. The client
// must refuse with the typed ErrResume instead of running a session
// whose state provenance it cannot account for.
func TestResumeGrantRefusedWhenUnoffered(t *testing.T) {
	model, _ := trainLinear(t, 67)
	trainer, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn := transport.NewConn(serverSide)
		if _, err := transport.Recv[*transport.Hello](conn); err != nil {
			return
		}
		spec := trainer.Spec()
		spec.ResumeGranted = true // never offered by this client
		_ = conn.Send(&spec)
	}()
	_, err = transport.NewFastClassifyClientContext(t.Context(), clientSide,
		transport.Options{}, newDetReader("resume-rogue-client"))
	if !errors.Is(err, transport.ErrResume) {
		t.Fatalf("handshake error = %v, want transport.ErrResume", err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("rogue server did not finish")
	}
}

// TestResumeDivergentContractRefused: a grant whose spec digest no
// longer matches the one the ticket was minted under must be refused by
// the client — reusing the cached receiver state under a different
// contract is exactly the bug ErrResume exists to catch.
func TestResumeDivergentContractRefused(t *testing.T) {
	h := newResumeHarness(t, 68)
	first := h.session(transport.Options{OfferResume: true}, "resume-diverge-mint")
	st := first.ResumeState()
	if st == nil {
		t.Fatal("no ticket harvested")
	}
	bad := *st
	bad.SpecSum = append([]byte(nil), st.SpecSum...)
	bad.SpecSum[0] ^= 0x01

	serverSide, clientSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.srv.ServeConn(serverSide)
	}()
	_, err := transport.NewFastClassifyClientContext(t.Context(), clientSide,
		transport.Options{Resume: &bad}, newDetReader("resume-diverge-client"))
	if !errors.Is(err, transport.ErrResume) {
		t.Fatalf("handshake error = %v, want transport.ErrResume", err)
	}
	_ = clientSide.Close()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("server session did not end")
	}
}

// swapSource is a hot-swappable TrainerSource for contract-drift tests.
type swapSource struct {
	tr atomic.Pointer[classify.Trainer]
}

func (s *swapSource) CurrentTrainer() *classify.Trainer { return s.tr.Load() }

// TestResumeHotSwapContractInvalidation: a hot-swap that changes the
// negotiated contract (here the amplifier width, i.e. a different Spec)
// must invalidate outstanding tickets — the redial silently declines
// into a full handshake under the NEW contract instead of restoring OT
// state minted under the old one.
func TestResumeHotSwapContractInvalidation(t *testing.T) {
	model, test := trainLinear(t, 70)
	tr1, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test()})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := classify.NewTrainer(model, classify.Params{Group: ot.Group512Test(), AmplifierBits: 32})
	if err != nil {
		t.Fatal(err)
	}
	src := &swapSource{}
	src.tr.Store(tr1)
	srv := transport.NewServerSource(src)
	srv.Logf = nil
	samples := test.X[:4]
	h := &resumeHarness{
		t:       t,
		trainer: tr1,
		srv:     srv,
		samples: samples,
		want:    localReference(t, tr1, samples),
	}
	first := h.session(transport.Options{OfferResume: true}, "resume-hotswap-mint")
	st := first.ResumeState()
	if st == nil {
		t.Fatal("no ticket harvested")
	}

	src.tr.Store(tr2)
	h.want = localReference(t, tr2, samples)
	second := h.session(transport.Options{Resume: st}, "resume-hotswap-redial")
	if second.Resumed() {
		t.Fatal("ticket survived a contract-changing hot-swap")
	}
}

// TestResumeLegacyClientUntouched: a client predating resumption (no
// offer, no ticket fields) against a resumption-enabled server runs the
// exact legacy handshake — covered byte-for-byte by the golden
// transcripts; here we pin the behavioral half: full session, correct
// labels, no ticket message after Done.
func TestResumeLegacyClientUntouched(t *testing.T) {
	h := newResumeHarness(t, 69)
	fc := h.session(transport.Options{}, "resume-legacy")
	if fc.Resumed() || fc.ResumeState() != nil {
		t.Fatal("legacy-shaped session saw resumption artifacts")
	}
}
